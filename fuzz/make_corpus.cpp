// Regenerates the checked-in fuzz seed corpus from the living sources of
// truth: every representative wire message (tests/message_corpus.h) and the
// serialized image of every bundled driver.  Run after adding a message type
// or a driver so the fuzzers start from valid inputs:
//
//   make_corpus <repo-root>/fuzz/corpus
//
// writes corpus/message_parse/msg_<type>.bin and
// corpus/image_verify/<driver>.img plus a couple of hand-rolled edge cases.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"
#include "src/dsl/driver_image.h"
#include "tests/message_corpus.h"

namespace {

bool WriteFile(const std::filesystem::path& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "make_corpus: cannot write %s\n", path.string().c_str());
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_corpus <corpus-dir>\n");
    return 2;
  }
  const std::filesystem::path root = argv[1];
  const std::filesystem::path msg_dir = root / "message_parse";
  const std::filesystem::path img_dir = root / "image_verify";
  std::filesystem::create_directories(msg_dir);
  std::filesystem::create_directories(img_dir);

  int written = 0;
  for (const micropnp::Message& m : micropnp::RepresentativeMessages()) {
    char name[32];
    std::snprintf(name, sizeof(name), "msg_%02u.bin", static_cast<unsigned>(m.type));
    if (!WriteFile(msg_dir / name, m.Serialize())) return 1;
    ++written;
  }
  // Truncation edge case: a bare header with no payload bytes.
  if (!WriteFile(msg_dir / "msg_header_only.bin", {0x01, 0x00, 0x00})) return 1;
  ++written;

  for (const micropnp::BundledDriver& d : micropnp::BundledDrivers()) {
    micropnp::Result<micropnp::DriverImage> image = micropnp::CompileDriver(d.source);
    if (!image.ok()) {
      std::fprintf(stderr, "make_corpus: %s does not compile: %s\n", d.name,
                   image.status().ToString().c_str());
      return 1;
    }
    if (!WriteFile(img_dir / (std::string(d.name) + ".img"), image->Serialize())) return 1;
    ++written;
  }
  // Header-only and empty inputs keep the parser's early-exit paths covered.
  if (!WriteFile(img_dir / "empty.img", {})) return 1;
  ++written;

  std::printf("make_corpus: wrote %d seed(s) under %s\n", written, root.string().c_str());
  return 0;
}
