// Standalone replay driver for the fuzz targets when libFuzzer is not
// available (gcc builds, and the deterministic CI fuzz-smoke job).
//
//   fuzz_<target> corpus/file...   run each file through the target once
//   fuzz_<target> corpus/dir       run every regular file in the directory
//
// Included at the bottom of each fuzz_*.cpp unless MICROPNP_FUZZ_LIBFUZZER
// is defined (in which case libFuzzer provides main).

#ifndef FUZZ_STANDALONE_MAIN_H_
#define FUZZ_STANDALONE_MAIN_H_

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace micropnp_fuzz {

inline int ReplayFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz: cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace micropnp_fuzz

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg = argv[i];
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (micropnp_fuzz::ReplayFile(entry.path().string()) != 0) return 1;
        ++replayed;
      }
    } else {
      if (micropnp_fuzz::ReplayFile(arg.string()) != 0) return 1;
      ++replayed;
    }
  }
  std::printf("fuzz: replayed %d input(s), no crashes\n", replayed);
  return 0;
}

#endif  // FUZZ_STANDALONE_MAIN_H_
