// Fuzz target: the driver-image deploy pipeline on arbitrary bytes.
// DriverImage::Parse handles the wire format; DecodedImage::Decode runs
// structural verification plus the abstract interpreter
// (src/rt/abstract_interp.h).  A Thing feeds reassembled chunk uploads
// straight into this path, so "reject, never crash" is a safety property.
//
// Built two ways (see fuzz/standalone_main.h): a libFuzzer binary under
// clang -DMICROPNP_FUZZ_LIBFUZZER, a corpus replayer otherwise.

#include <cstdint>

#include "src/common/bytes.h"
#include "src/dsl/driver_image.h"
#include "src/rt/decoded_image.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using micropnp::DriverImage;
  micropnp::Result<DriverImage> image = DriverImage::Parse(micropnp::ByteSpan(data, size));
  if (!image.ok()) {
    return 0;
  }
  // Exercise both decode modes: the deploy gate (rejects unsafe images,
  // specializes proven sites) and the lint mode (keeps every finding).
  (void)micropnp::DecodedImage::Decode(*image);
  (void)micropnp::DecodedImage::Decode(
      *image, std::nullopt, micropnp::DecodeOptions{.elide_proven_traps = false,
                                                    .reject_unsafe = false});
  return 0;
}

#ifndef MICROPNP_FUZZ_LIBFUZZER
#include "fuzz/standalone_main.h"
#endif
