// Fuzz target: Message::Parse must never crash, leak, or read out of
// bounds on arbitrary wire bytes — it is the first code that touches
// untrusted UDP payloads on both the gateway and the Things.
//
// Built two ways (see fuzz/standalone_main.h):
//   * clang + -DMICROPNP_FUZZ_LIBFUZZER: a real libFuzzer binary.
//   * gcc: a standalone replayer that runs every corpus file through the
//     target once (the CI fuzz-smoke job and a cheap regression harness).
//
// Round-trip property: when the bytes do parse, re-serializing the parsed
// message must reproduce them exactly — the parser accepts nothing the
// serializer cannot produce.

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "src/common/bytes.h"
#include "src/proto/messages.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using micropnp::Message;
  micropnp::Result<Message> parsed = Message::Parse(micropnp::ByteSpan(data, size));
  if (parsed.ok()) {
    std::vector<uint8_t> round = parsed->Serialize();
    if (round.size() != size ||
        !std::equal(round.begin(), round.end(), data)) {
      std::abort();  // parse/serialize disagree on the canonical encoding
    }
  }
  return 0;
}

#ifndef MICROPNP_FUZZ_LIBFUZZER
#include "fuzz/standalone_main.h"
#endif
