// Lossy-network plug-in flow: trickle re-advertisement, chunked
// selective-repeat driver transfer, CRC-resume, and the plug-flow edge cases
// (driver-request re-arm, per-type group membership, stream teardown).
//
// Everything here is deterministic: fixed deployment seeds, simulated time.
// The fake-manager tests bind a bare relay node to the manager anycast
// address so the test controls exactly which offer/chunk datagrams exist.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "src/common/crc.h"
#include "src/core/deployment.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"

namespace micropnp {
namespace {

DriverImage CompiledBundledDriver(DeviceTypeId device) {
  const BundledDriver* bundled = FindBundledDriver(device);
  EXPECT_NE(bundled, nullptr);
  Result<DriverImage> image = CompileDriver(bundled->source);
  EXPECT_TRUE(image.ok());
  return *image;
}

LinkModel LinkWithLoss(double loss_rate) {
  LinkModel link;
  link.loss_rate = loss_rate;
  return link;
}

DeploymentConfig SeededConfig(uint64_t seed) {
  DeploymentConfig config;
  config.seed = seed;
  return config;
}

// ------------------------------------------------ trickle re-advertisement ---

TEST(Readvertisement, ConvergesAfterTotalLossHeals) {
  DeploymentConfig config;
  config.seed = 71001;
  config.link = LinkWithLoss(1.0);  // nothing gets through initially
  Deployment deployment(config);
  MicroPnpThing& thing = deployment.AddThing("thing");
  MicroPnpClient& client = deployment.AddClient("client");

  // The driver is preinstalled, so the plug flow needs no network round
  // trip; only the advertisement has to reach the client.
  ASSERT_TRUE(thing.PreinstallDriver(CompiledBundledDriver(kTmp36TypeId)).ok());
  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(2500);
  EXPECT_EQ(client.advertisements_seen(), 0u);  // (1) and early ticks lost

  deployment.fabric().set_link(LinkWithLoss(0.0));
  deployment.RunForMillis(10'000);  // next trickle tick lands
  EXPECT_GE(client.advertisements_seen(), 1u);
  EXPECT_GE(thing.readvertisements_sent(), 1u);
}

TEST(Readvertisement, TrickleLadderIsBoundedAndGoesDormant) {
  Deployment deployment(SeededConfig(71002));
  MicroPnpThing& thing = deployment.AddThing("thing");
  deployment.AddManager();

  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  // Default schedule: +1s, +2s, +4s, ..., +64s after the peripheral change,
  // then dormant: 7 ticks total.
  deployment.RunForMillis(200'000);
  EXPECT_EQ(thing.readvertisements_sent(), 7u);

  const uint64_t after_ladder = thing.advertisements_sent();
  deployment.RunForMillis(200'000);
  EXPECT_EQ(thing.advertisements_sent(), after_ladder);  // dormant, no flood

  // Any peripheral change restarts the ladder from the minimum interval.
  ASSERT_TRUE(thing.Unplug(0).ok());
  deployment.RunForMillis(200'000);
  EXPECT_EQ(thing.readvertisements_sent(), 14u);
}

TEST(Readvertisement, SolicitedAdvertisementSuppressesNextTick) {
  Deployment deployment(SeededConfig(71003));
  MicroPnpThing& thing = deployment.AddThing("thing");
  MicroPnpClient& client = deployment.AddClient("client");
  deployment.AddManager();

  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(1500);  // install + advertise, first tick pending

  // A discovery answered with (3) counts as a fresh advertisement, so the
  // next trickle tick is suppressed instead of re-flooding.
  bool discovered = false;
  client.Discover(kTmp36TypeId, 500,
                  [&](Result<std::vector<MicroPnpClient::DiscoveredThing>> things) {
                    discovered = things.ok() && !things->empty();
                  });
  deployment.RunForMillis(200'000);
  EXPECT_TRUE(discovered);
  EXPECT_GE(thing.readvertisements_suppressed(), 1u);
  EXPECT_LT(thing.readvertisements_sent(), 7u);
}

// --------------------------------------------- chunked transfer under loss ---

TEST(ChunkedTransfer, SurvivesLossyMultihopFabric) {
  // Seed chosen so this run both completes within the window and loses
  // chunks on the way — the selective-repeat path is actually exercised.
  DeploymentConfig config;
  config.seed = 11003;
  config.link = LinkWithLoss(0.2);
  Deployment deployment(config);
  MicroPnpManager& manager = deployment.AddManager();
  NetNode* relay1 = deployment.AddRelayNode("relay-1");
  NetNode* relay2 = deployment.AddRelayNode("relay-2", relay1);
  MicroPnpThing& thing = deployment.AddThing("thing", relay2);

  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(16'000);

  EXPECT_TRUE(thing.drivers().HasDriverFor(kTmp36TypeId));
  EXPECT_NE(thing.drivers().HostForChannel(0), nullptr);
  EXPECT_EQ(thing.transfers_completed(), 1u);
  // The repair was selective: lost chunks were NACKed and re-served
  // individually, never as a monolithic image re-send.
  EXPECT_GE(thing.chunk_nacks_sent(), 1u);
  EXPECT_GE(manager.chunk_retransmissions(), 1u);
  EXPECT_LT(manager.chunk_retransmissions(), manager.chunks_sent());
}

// A scripted manager: a bare node bound to the manager anycast address whose
// offer/chunk behaviour the test controls datagram by datagram.
class FakeManager {
 public:
  FakeManager(Deployment& deployment, DeviceTypeId device)
      : node_(deployment.AddRelayNode("fake-manager")), device_(device) {
    image_bytes_ = CompiledBundledDriver(device).Serialize();
    crc_ = Crc32(image_bytes_);
    for (size_t off = 0; off < image_bytes_.size(); off += kChunkBytes) {
      const size_t len = std::min(kChunkBytes, image_bytes_.size() - off);
      chunks_.push_back({image_bytes_.begin() + off, image_bytes_.begin() + off + len});
    }
    node_->BindAnycast(ManagerAnycastAddress());
    node_->BindUdp(kMicroPnpUdpPort,
                   [this](const Ip6Address& src, const Ip6Address&, uint16_t,
                          const std::vector<uint8_t>& payload) { OnDatagram(src, payload); });
  }

  uint16_t chunk_count() const { return static_cast<uint16_t>(chunks_.size()); }
  uint32_t crc() const { return crc_; }
  int requests_seen() const { return static_cast<int>(requests_.size()); }
  int nacks_seen() const { return nacks_seen_; }
  int chunks_sent() const { return chunks_sent_; }
  const std::vector<DriverRequestPayload>& requests() const { return requests_; }

  // Test hooks: which chunk indices the next request serves, whether NACKs
  // are honoured, and how many copies of each chunk go out (duplication).
  std::function<std::vector<uint16_t>(const DriverRequestPayload&)> serve_plan;
  bool honour_nacks = false;
  int copies_per_chunk = 1;
  bool reverse_order = false;

 private:
  static constexpr size_t kChunkBytes = 56;

  void OnDatagram(const Ip6Address& src, const std::vector<uint8_t>& payload) {
    Result<Message> m = Message::Parse(payload);
    if (!m.ok()) return;
    if (m->type == MessageType::kDriverInstallRequest) {
      const auto* req = m->payload_as<DriverRequestPayload>();
      if (req == nullptr || req->device_id != device_) return;
      requests_.push_back(*req);
      DriverOfferPayload offer{device_, crc_, static_cast<uint32_t>(image_bytes_.size()),
                               kChunkBytes, chunk_count(), 0};
      node_->SendUdp(src, kMicroPnpUdpPort,
                     MakeMessage(MessageType::kDriverUploadOffer, m->sequence, offer).Serialize());
      std::vector<uint16_t> plan;
      for (uint16_t i = 0; i < chunk_count(); ++i) plan.push_back(i);
      if (serve_plan) plan = serve_plan(*req);
      SendChunks(src, plan);
    } else if (m->type == MessageType::kDriverChunkRequest) {
      ++nacks_seen_;
      const auto* nack = m->payload_as<DriverChunkRequestPayload>();
      if (honour_nacks && nack != nullptr && nack->image_crc == crc_) {
        SendChunks(src, nack->chunk_indices);
      }
    }
  }

  void SendChunks(const Ip6Address& dst, std::vector<uint16_t> indices) {
    if (reverse_order) std::reverse(indices.begin(), indices.end());
    for (uint16_t index : indices) {
      if (index >= chunk_count()) continue;
      DriverChunkPayload chunk{device_, crc_, index, chunk_count(), chunks_[index]};
      const std::vector<uint8_t> wire =
          MakeMessage(MessageType::kDriverChunk, 0, chunk).Serialize();
      for (int copy = 0; copy < copies_per_chunk; ++copy) {
        node_->SendUdp(dst, kMicroPnpUdpPort, wire);
        ++chunks_sent_;
      }
    }
  }

  NetNode* node_;
  DeviceTypeId device_;
  std::vector<uint8_t> image_bytes_;
  uint32_t crc_ = 0;
  std::vector<std::vector<uint8_t>> chunks_;
  std::vector<DriverRequestPayload> requests_;
  int nacks_seen_ = 0;
  int chunks_sent_ = 0;
};

TEST(ChunkedTransfer, DuplicatedAndReorderedChunksAssembleOnce) {
  Deployment deployment(SeededConfig(71004));
  MicroPnpThing& thing = deployment.AddThing("thing");
  FakeManager fake(deployment, kTmp36TypeId);
  fake.copies_per_chunk = 2;  // every chunk delivered twice...
  fake.reverse_order = true;  // ...and the whole stream backwards

  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(10'000);

  EXPECT_TRUE(thing.drivers().HasDriverFor(kTmp36TypeId));
  EXPECT_NE(thing.drivers().HostForChannel(0), nullptr);
  EXPECT_EQ(thing.transfers_completed(), 1u);
  EXPECT_GE(thing.duplicate_chunks(), fake.chunk_count());
  EXPECT_EQ(thing.chunks_received(), static_cast<uint64_t>(fake.chunks_sent()));
}

TEST(ChunkedTransfer, ResumeBitmapRequestsOnlyTheGaps) {
  // Shrink the repair timers so budget exhaustion and the (4)-level retry
  // happen within a short simulated window.
  ThingConfig tuning;
  tuning.chunk_nack_delay_ms = 100.0;
  tuning.chunk_nack_max_delay_ms = 200.0;
  tuning.chunk_nack_budget = 2;
  tuning.driver_retry_initial_ms = 500.0;

  Deployment deployment(SeededConfig(71005));
  MicroPnpThing& thing = deployment.AddThing("thing", nullptr, tuning);
  FakeManager fake(deployment, kBmp180TypeId);
  ASSERT_GE(fake.chunk_count(), 4) << "image too small to leave gaps";

  // The first request gets only the even chunks and every NACK is ignored:
  // the Thing's NACK budget runs dry and it falls back to a fresh (4)
  // carrying the resume bitmap, which is served honestly (gaps only).
  int resumed_round_chunks = -1;
  fake.serve_plan = [&](const DriverRequestPayload& req) {
    std::vector<uint16_t> indices;
    if (fake.requests_seen() == 1) {
      EXPECT_EQ(req.cached_crc, 0u);  // nothing held yet
      for (uint16_t i = 0; i < fake.chunk_count(); i += 2) indices.push_back(i);
      return indices;
    }
    EXPECT_EQ(req.cached_crc, fake.crc());
    EXPECT_EQ(req.cached_chunk_count, fake.chunk_count());
    for (uint16_t i = 0; i < fake.chunk_count(); ++i) {
      const bool held = (req.have_bitmap[i / 8] >> (i % 8)) & 1;
      EXPECT_EQ(held, i % 2 == 0) << "bitmap wrong for chunk " << i;
      if (!held) indices.push_back(i);
    }
    if (resumed_round_chunks < 0) resumed_round_chunks = static_cast<int>(indices.size());
    return indices;
  };
  // The BMP180 driver is the largest bundled image: plenty of chunks to
  // leave gaps in.
  Bmp180& sensor = deployment.MakeBmp180();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(15'000);

  ASSERT_GE(fake.requests_seen(), 2);
  EXPECT_GE(fake.nacks_seen(), 1);
  EXPECT_TRUE(thing.drivers().HasDriverFor(kBmp180TypeId));
  EXPECT_NE(thing.drivers().HostForChannel(0), nullptr);
  EXPECT_EQ(thing.transfers_completed(), 1u);
  // The resumed round moved only the odd chunks, not the whole image.
  EXPECT_EQ(resumed_round_chunks, fake.chunk_count() / 2);
}

TEST(ChunkedTransfer, ReplugOfCachedDriverTransfersZeroChunks) {
  Deployment deployment(SeededConfig(71006));
  MicroPnpManager& manager = deployment.AddManager();
  MicroPnpThing& thing = deployment.AddThing("thing");

  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(5000);
  ASSERT_TRUE(thing.drivers().HasDriverFor(kTmp36TypeId));
  const uint64_t chunks_after_install = manager.chunks_sent();

  // Remove the installed image but keep the transfer cache, then re-plug:
  // the (4) advertises a complete bitmap and the manager answers with an
  // up-to-date offer — zero chunks move.
  ASSERT_TRUE(thing.Unplug(0).ok());
  deployment.RunForMillis(1000);
  ASSERT_TRUE(thing.drivers().RemoveImage(kTmp36TypeId).ok());
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(5000);

  EXPECT_TRUE(thing.drivers().HasDriverFor(kTmp36TypeId));
  EXPECT_NE(thing.drivers().HostForChannel(0), nullptr);
  EXPECT_EQ(manager.chunks_sent(), chunks_after_install);
  EXPECT_EQ(manager.upload_short_circuits(), 1u);
}

// ------------------------------------------------------ plug-flow bugfixes ---

TEST(PlugFlowRecovery, DriverRequestRearmsAfterLinkHeals) {
  // Regression: a (4) that exhausted its deadline used to abandon the
  // channel forever.  Now it re-arms with capped backoff and completes once
  // the link heals.
  ThingConfig tuning;
  tuning.driver_request_deadline_ms = 1000.0;
  tuning.driver_request_retransmits = 2;
  tuning.driver_request_backoff_ms = 200.0;
  tuning.driver_retry_initial_ms = 500.0;
  tuning.driver_retry_max_ms = 2000.0;

  DeploymentConfig config;
  config.seed = 71007;
  config.link = LinkWithLoss(1.0);
  Deployment deployment(config);
  deployment.AddManager();
  MicroPnpThing& thing = deployment.AddThing("thing", nullptr, tuning);

  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(5000);
  EXPECT_GE(thing.driver_requests_failed(), 1u);
  EXPECT_FALSE(thing.drivers().HasDriverFor(kTmp36TypeId));

  deployment.fabric().set_link(LinkWithLoss(0.0));
  deployment.RunForMillis(10'000);
  EXPECT_TRUE(thing.drivers().HasDriverFor(kTmp36TypeId));
  EXPECT_NE(thing.drivers().HostForChannel(0), nullptr);
  EXPECT_GE(thing.driver_request_retries(), 1u);
}

TEST(PlugFlowRecovery, GroupMembershipSurvivesUnplugOfDuplicateType) {
  // Regression: unplugging one of two same-type peripherals used to leave
  // the shared multicast group, cutting off the remaining channel.
  Deployment deployment(SeededConfig(71008));
  deployment.AddManager();
  MicroPnpThing& thing = deployment.AddThing("thing");
  MicroPnpClient& client = deployment.AddClient("client");

  Tmp36& first = deployment.MakeTmp36();
  Tmp36& second = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &first).ok());
  ASSERT_TRUE(thing.Plug(1, &second).ok());
  deployment.RunForMillis(5000);
  const Ip6Address group = PeripheralGroup(thing.node().prefix(), kTmp36TypeId);
  ASSERT_TRUE(thing.node().InGroup(group));

  ASSERT_TRUE(thing.Unplug(0).ok());
  deployment.RunForMillis(1000);
  EXPECT_TRUE(thing.node().InGroup(group)) << "left group while channel 1 still serves the type";

  // The surviving channel still answers reads.
  std::optional<WireValue> value;
  client.Read(thing.node().address(), kTmp36TypeId,
              [&](Result<WireValue> result) {
                ASSERT_TRUE(result.ok()) << result.status().ToString();
                value = *result;
              });
  deployment.RunForMillis(1000);
  EXPECT_TRUE(value.has_value());

  // Unplugging the last one of the type finally leaves the group.
  ASSERT_TRUE(thing.Unplug(1).ok());
  deployment.RunForMillis(1000);
  EXPECT_FALSE(thing.node().InGroup(group));
}

TEST(PlugFlowRecovery, UnplugWhileStreamingClosesTheStream) {
  // Regression: unplug used to flip the stream off silently; clients kept a
  // dead subscription.  Now the Thing multicasts (15) on teardown.
  Deployment deployment(SeededConfig(71009));
  deployment.AddManager();
  MicroPnpThing& thing = deployment.AddThing("thing");
  MicroPnpClient& client = deployment.AddClient("client");

  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(5000);

  int values = 0;
  bool closed = false;
  client.StartStream(thing.node().address(), kTmp36TypeId, /*period_ms=*/500,
                     [&](const WireValue&) { ++values; }, [&] { closed = true; });
  deployment.RunForMillis(3000);
  ASSERT_GE(values, 2);
  ASSERT_FALSE(closed);

  ASSERT_TRUE(thing.Unplug(0).ok());
  deployment.RunForMillis(2000);
  EXPECT_TRUE(closed) << "client never learned the stream died";
}

TEST(PlugFlowRecovery, DuplicateStopStreamCompletesIdempotently) {
  // Regression: a StopStream for an already-closed stream used to go
  // unanswered, so the requester always ate the full deadline.
  Deployment deployment(SeededConfig(71010));
  deployment.AddManager();
  MicroPnpThing& thing = deployment.AddThing("thing");
  MicroPnpClient& client = deployment.AddClient("client");

  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(5000);

  client.StartStream(thing.node().address(), kTmp36TypeId, 500, [](const WireValue&) {});
  deployment.RunForMillis(2000);

  client.StopStream(thing.node().address(), kTmp36TypeId);
  deployment.RunForMillis(3000);
  client.StopStream(thing.node().address(), kTmp36TypeId);  // stream already gone
  deployment.RunForMillis(3000);

  // Both stops completed on a (15) answer, not by timing out.
  EXPECT_EQ(client.endpoint().counters().deadline_exceeded, 0u);
}

}  // namespace
}  // namespace micropnp
