// Tests for the network substrate: IPv6 addresses, the μPnP multicast
// schema (Figure 9), and the simulated 6LoWPAN/RPL fabric with SMRF.

#include <gtest/gtest.h>

#include "src/net/fabric.h"
#include "src/net/ip6.h"
#include "src/net/multicast_schema.h"

namespace micropnp {
namespace {

// ------------------------------------------------------------------ ip6 ----

TEST(Ip6, ParseAndFormatRoundTrip) {
  for (const char* text : {"2001:db8::1", "::", "::1", "ff3e:30:2001:db8::ed3f:ac1",
                           "fe80::1:2:3:4", "1:2:3:4:5:6:7:8"}) {
    std::optional<Ip6Address> addr = Ip6Address::Parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(addr->ToString(), text);
  }
}

TEST(Ip6, ParseRejectsMalformed) {
  for (const char* text : {"", ":::", "1:2:3:4:5:6:7:8:9", "g::1", "12345::", "1:2:3:4:5:6:7"}) {
    EXPECT_FALSE(Ip6Address::Parse(text).has_value()) << text;
  }
}

TEST(Ip6, CompressionPicksLongestZeroRun) {
  std::optional<Ip6Address> addr = Ip6Address::Parse("1:0:0:2:0:0:0:3");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ToString(), "1:0:0:2::3");
}

TEST(Ip6, MulticastClassification) {
  EXPECT_TRUE(Ip6Address::Parse("ff3e:30::1")->IsMulticast());
  EXPECT_FALSE(Ip6Address::Parse("2001:db8::1")->IsMulticast());
}

TEST(Ip6, PrefixContains) {
  Ip6Prefix prefix{*Ip6Address::Parse("2001:db8::"), 48};
  EXPECT_TRUE(prefix.Contains(*Ip6Address::Parse("2001:db8::42")));
  EXPECT_TRUE(prefix.Contains(*Ip6Address::Parse("2001:db8:0:1::9")));
  EXPECT_FALSE(prefix.Contains(*Ip6Address::Parse("2001:db9::1")));
}

// --------------------------------------------------------------- schema ----

TEST(MulticastSchema, MatchesFigure9Example) {
  // Figure 10: peripheral 0xed3f0ac1 in 2001:db8::/48 ->
  // ff3e:30:2001:db8::ed3f:ac1.
  const NetworkPrefix48 prefix = PrefixOf(*Ip6Address::Parse("2001:db8::1"));
  Ip6Address group = PeripheralGroup(prefix, 0xed3f0ac1);
  EXPECT_EQ(group.ToString(), "ff3e:30:2001:db8::ed3f:ac1");  // the paper's exact rendering
  EXPECT_EQ(*Ip6Address::Parse("ff3e:30:2001:db8::ed3f:ac1"), group);
}

TEST(MulticastSchema, ReservedGroups) {
  const NetworkPrefix48 prefix = PrefixOf(*Ip6Address::Parse("2001:db8::1"));
  EXPECT_EQ(GroupPeripheral(AllClientsGroup(prefix)), kDeviceTypeAllClients);
  EXPECT_EQ(GroupPeripheral(AllPeripheralsGroup(prefix)), kDeviceTypeAllPeripherals);
}

TEST(MulticastSchema, RoundTripsPeripheralAndPrefix) {
  const NetworkPrefix48 prefix = 0x20010db80000ull;
  Ip6Address group = PeripheralGroup(prefix, 0xad1c0001);
  EXPECT_EQ(GroupPeripheral(group), 0xad1c0001u);
  EXPECT_EQ(GroupPrefix(group), prefix);
  EXPECT_TRUE(group.IsMulticast());
  EXPECT_TRUE(IsMicroPnpGroup(group));
  EXPECT_FALSE(IsMicroPnpGroup(*Ip6Address::Parse("ff02::1")));
}

// --------------------------------------------------------------- fabric ----

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(sched_, 99) {
    root_ = fabric_.CreateNode("root", *Ip6Address::Parse("2001:db8::1"), NodeProfile::Server(),
                               nullptr);
    a_ = fabric_.CreateNode("a", *Ip6Address::Parse("2001:db8::2"), NodeProfile::Embedded(), root_);
    b_ = fabric_.CreateNode("b", *Ip6Address::Parse("2001:db8::3"), NodeProfile::Embedded(), root_);
    c_ = fabric_.CreateNode("c", *Ip6Address::Parse("2001:db8::4"), NodeProfile::Embedded(), a_);
  }

  Scheduler sched_;
  Fabric fabric_;
  NetNode* root_;
  NetNode* a_;
  NetNode* b_;
  NetNode* c_;
};

TEST_F(FabricTest, LinkModelFragmentation) {
  LinkModel link;
  EXPECT_EQ(link.FragmentsFor(10), 1u);    // 10 + 10 header < 88
  EXPECT_EQ(link.FragmentsFor(100), 2u);   // 110 -> 2 fragments
  EXPECT_GT(link.AirtimeMs(100), link.AirtimeMs(10));
  // 20 B payload + 10 B header + 23 B MAC = 53 B at 250 kbit/s ~ 1.7 ms.
  EXPECT_NEAR(link.AirtimeMs(20), 53.0 * 8.0 / 250e3 * 1e3, 1e-9);
}

TEST_F(FabricTest, UnicastDeliversAcrossTree) {
  std::vector<uint8_t> received;
  double arrival_ms = 0;
  b_->BindUdp(6030, [&](const Ip6Address& src, const Ip6Address&, uint16_t,
                        const std::vector<uint8_t>& payload) {
    EXPECT_EQ(src, a_->address());
    received = payload;
    arrival_ms = sched_.now().millis();
  });
  a_->SendUdp(b_->address(), 6030, {1, 2, 3});
  sched_.Run();
  EXPECT_EQ(received, (std::vector<uint8_t>{1, 2, 3}));
  // a -> root -> b: two hops, plus embedded tx and rx processing.
  EXPECT_GT(arrival_ms, 30.0);
  EXPECT_LT(arrival_ms, 60.0);
  EXPECT_EQ(fabric_.frames_transmitted(), 2u);
}

TEST_F(FabricTest, HopDistances) {
  EXPECT_EQ(fabric_.HopDistance(*a_, *root_), 1);
  EXPECT_EQ(fabric_.HopDistance(*a_, *b_), 2);
  EXPECT_EQ(fabric_.HopDistance(*c_, *b_), 3);
  EXPECT_EQ(fabric_.HopDistance(*c_, *c_), 0);
}

TEST_F(FabricTest, MulticastReachesOnlyMembers) {
  Ip6Address group = PeripheralGroup(PrefixOf(root_->address()), 0x1234);
  b_->JoinGroup(group);
  int b_received = 0, c_received = 0;
  b_->BindUdp(6030, [&](const Ip6Address&, const Ip6Address& dst, uint16_t,
                        const std::vector<uint8_t>&) {
    EXPECT_EQ(dst, group);
    ++b_received;
  });
  c_->BindUdp(6030,
              [&](const Ip6Address&, const Ip6Address&, uint16_t, const std::vector<uint8_t>&) {
                ++c_received;
              });
  a_->SendUdp(group, 6030, {0xaa});
  sched_.Run();
  EXPECT_EQ(b_received, 1);
  EXPECT_EQ(c_received, 0);
}

TEST_F(FabricTest, SmrfTransmitsFewerFramesThanFlooding) {
  // Build a wider tree: 3 more leaves under b, members only under a.
  for (int i = 0; i < 3; ++i) {
    std::array<uint8_t, 16> raw = b_->address().bytes();
    raw[15] = static_cast<uint8_t>(0x10 + i);
    fabric_.CreateNode("leaf" + std::to_string(i), Ip6Address(raw), NodeProfile::Embedded(), b_);
  }
  Ip6Address group = PeripheralGroup(PrefixOf(root_->address()), 0x77);
  c_->JoinGroup(group);  // only c (under a) is a member

  fabric_.set_multicast_mode(MulticastMode::kSmrf);
  fabric_.ResetStats();
  root_->SendUdp(group, 6030, {1});
  sched_.Run();
  const uint64_t smrf_frames = fabric_.frames_transmitted();

  fabric_.set_multicast_mode(MulticastMode::kFlooding);
  fabric_.ResetStats();
  root_->SendUdp(group, 6030, {1});
  sched_.Run();
  const uint64_t flood_frames = fabric_.frames_transmitted();

  EXPECT_LT(smrf_frames, flood_frames);
  EXPECT_EQ(smrf_frames, 2u);   // root->a, a->c
  EXPECT_EQ(flood_frames, 6u);  // every edge
}

TEST_F(FabricTest, AnycastRoutesToNearest) {
  Ip6Address anycast = *Ip6Address::Parse("2001:db8:aaaa::1");
  int at_root = 0, at_c = 0;
  root_->BindAnycast(anycast);
  c_->BindAnycast(anycast);
  root_->BindUdp(6030, [&](const Ip6Address&, const Ip6Address&, uint16_t,
                           const std::vector<uint8_t>&) { ++at_root; });
  c_->BindUdp(6030, [&](const Ip6Address&, const Ip6Address&, uint16_t,
                        const std::vector<uint8_t>&) { ++at_c; });
  // From b: root is 1 hop, c is 3 hops -> root wins.
  b_->SendUdp(anycast, 6030, {1});
  // From a: c is 1 hop, root is 1 hop -> first-registered wins ties (root).
  a_->SendUdp(anycast, 6030, {1});
  sched_.Run();
  EXPECT_EQ(at_root, 2);
  EXPECT_EQ(at_c, 0);
}

TEST_F(FabricTest, GroupMembershipPropagatesUpForSmrf) {
  Ip6Address group = PeripheralGroup(PrefixOf(root_->address()), 0x42);
  c_->JoinGroup(group);
  int received = 0;
  c_->BindUdp(6030, [&](const Ip6Address&, const Ip6Address&, uint16_t,
                        const std::vector<uint8_t>&) { ++received; });
  // Sender in a different subtree: must climb to root then descend via a.
  b_->SendUdp(group, 6030, {9});
  sched_.Run();
  EXPECT_EQ(received, 1);

  c_->LeaveGroup(group);
  b_->SendUdp(group, 6030, {9});
  sched_.Run();
  EXPECT_EQ(received, 1);  // no members left: pruned everywhere
}

TEST_F(FabricTest, LossDropsDatagrams) {
  LinkModel lossy;
  lossy.loss_rate = 1.0;  // every frame dies
  fabric_.set_link(lossy);
  int received = 0;
  b_->BindUdp(6030, [&](const Ip6Address&, const Ip6Address&, uint16_t,
                        const std::vector<uint8_t>&) { ++received; });
  a_->SendUdp(b_->address(), 6030, {1});
  sched_.Run();
  EXPECT_EQ(received, 0);
  EXPECT_GT(fabric_.frames_lost(), 0u);
}

TEST_F(FabricTest, ScratchReuseAcrossBackToBackRoutes) {
  // Regression for the routing scratch buffers (RouteContext): the fabric
  // reuses path/descent vectors across Route calls to avoid per-datagram
  // allocation.  A stale-length bug would surface exactly here: a long
  // multi-hop unicast, then a multicast descent, then a short unicast, all
  // from the same context — each must see only its own path.
  int at_b = 0, at_c = 0;
  b_->BindUdp(6030, [&](const Ip6Address&, const Ip6Address&, uint16_t,
                        const std::vector<uint8_t>&) { ++at_b; });
  c_->BindUdp(6030, [&](const Ip6Address&, const Ip6Address&, uint16_t,
                        const std::vector<uint8_t>&) { ++at_c; });
  Ip6Address group = PeripheralGroup(PrefixOf(root_->address()), 0x55);
  b_->JoinGroup(group);

  c_->SendUdp(b_->address(), 6030, {1});  // 3 hops: c -> a -> root -> b
  c_->SendUdp(group, 6030, {2});          // SMRF climb + descend
  a_->SendUdp(c_->address(), 6030, {3});  // 1 hop, shorter than the first path
  sched_.Run();
  EXPECT_EQ(at_b, 2);  // unicast + multicast
  EXPECT_EQ(at_c, 1);

  // Route-from-delivery (reply on receive) is the reentrancy pattern the
  // in_route assert guards: deliveries are scheduled, never inline, so the
  // reply's Route starts with clean scratch rather than clobbering the
  // in-progress descent.
  int replies = 0;
  b_->BindUdp(7001, [&](const Ip6Address& src, const Ip6Address&, uint16_t,
                        const std::vector<uint8_t>&) { b_->SendUdp(src, 7002, {0xcc}); });
  c_->BindUdp(7002, [&](const Ip6Address&, const Ip6Address&, uint16_t,
                        const std::vector<uint8_t>&) { ++replies; });
  c_->SendUdp(b_->address(), 7001, {0xaa});
  sched_.Run();
  EXPECT_EQ(replies, 1);
}

TEST_F(FabricTest, SelfSendLoopsBack) {
  int received = 0;
  a_->BindUdp(6030, [&](const Ip6Address&, const Ip6Address&, uint16_t,
                        const std::vector<uint8_t>&) { ++received; });
  a_->SendUdp(a_->address(), 6030, {1});
  sched_.Run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(fabric_.frames_transmitted(), 0u);  // never hits the radio
}

}  // namespace
}  // namespace micropnp
