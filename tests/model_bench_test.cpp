// Deterministic-replay guard for the model-gateway benchmark scenario.
//
// Same contract as gateway_bench_test: at threads == 1 a bench cell is a
// pure function of its options, so the deterministic JSON must be
// byte-identical across reruns and must match the committed golden string.
// This keeps BENCH_model.json diffable — a changed byte in the deterministic
// half is a behaviour change, not noise.

#include <string>

#include <gtest/gtest.h>

#include "src/core/model_bench.h"

namespace micropnp {
namespace {

ModelBenchOptions SmokeCell() {
  ModelBenchOptions opt;
  opt.num_things = 8;  // every 8th a relay: 7 sensors + 1 relay
  opt.num_clients = 50;
  opt.total_reads = 500;
  opt.read_window = 32;
  opt.stream_phase_ms = 500.0;
  opt.seed = 20150415;
  return opt;
}

// The committed single-threaded baseline for SmokeCell.  If a deliberate
// behaviour change moves these numbers, regenerate the string from
// ModelDeterministicCellsJson and say so in the commit.
constexpr const char* kSmokeCellGolden =
    "{\"cells\": [{\"num_things\": 8, \"num_clients\": 50, \"loss_rate\": 0.000000, "
    "\"seed\": 20150415, \"fleet_size\": 8, \"reads\": 519, \"cache_hits\": 450, "
    "\"cache_misses\": 69, \"coalesced_reads\": 61, \"device_reads\": 8, "
    "\"read_failures\": 0, \"writes\": 31, \"device_writes\": 31, \"write_failures\": 0, "
    "\"hit_rate\": 0.867052, \"amplification\": 0.015414, \"hotspot_reads\": 50, "
    "\"hotspot_device_reads\": 0, \"subscriptions\": 50, \"upstream_events\": 16, "
    "\"fanout_delivered\": 100, \"fanout_expected\": 100, \"fanout_exact\": 1, "
    "\"upstream_restarts\": 0, \"p50_ms\": 0.000000, \"p99_ms\": 52.430271, "
    "\"sim_duration_ms\": 1000.000000, \"scheduler_events\": 430}]}";

TEST(ModelBenchDeterminism, SameSeedSameDeterministicJsonAndGoldenPin) {
  const ModelBenchOptions opt = SmokeCell();
  const ModelBenchResult first = RunModelBench(opt);
  const ModelBenchResult second = RunModelBench(opt);

  const std::string json_first = ModelDeterministicCellsJson({first});
  const std::string json_second = ModelDeterministicCellsJson({second});
  EXPECT_EQ(json_first, json_second) << "simulation is not a pure function of the seed";
  EXPECT_EQ(json_first, kSmokeCellGolden)
      << "threads=1 output diverged from the committed baseline";

  // The scenario's accounting invariants, on top of replay equality.
  EXPECT_EQ(first.cache_hits + first.cache_misses, first.reads);
  EXPECT_EQ(first.coalesced_reads + first.device_reads, first.cache_misses);
  EXPECT_GE(first.hit_rate, 0.0);
  EXPECT_LE(first.hit_rate, 1.0);
  EXPECT_LE(first.amplification, 1.0);
  EXPECT_EQ(first.read_failures, 0u);
  EXPECT_EQ(first.write_failures, 0u);
  // Exactly-once fan-out at zero loss.
  EXPECT_EQ(first.fanout_exact, 1u);
  EXPECT_EQ(first.fanout_delivered, first.fanout_expected);
  EXPECT_GT(first.upstream_events, 0u);
}

TEST(ModelBenchDeterminism, DifferentSeedsDiverge) {
  ModelBenchOptions opt = SmokeCell();
  opt.num_clients = 20;
  opt.total_reads = 100;
  const ModelBenchResult a = RunModelBench(opt);
  opt.seed ^= 0xdecade;
  const ModelBenchResult b = RunModelBench(opt);
  // CSMA jitter draws from the deployment's seeded rng, so distinct seeds
  // must not collapse to identical percentile latencies.
  EXPECT_NE(ModelDeterministicCellsJson({a}), ModelDeterministicCellsJson({b}));
}

TEST(ModelBenchJsonSchema, EmitsExpectedKeys) {
  ModelBenchOptions opt = SmokeCell();
  opt.num_clients = 20;
  opt.total_reads = 100;
  const ModelBenchResult r = RunModelBench(opt);
  const std::string json = ModelBenchJson({r});
  for (const char* key :
       {"\"bench\": \"model\"", "\"schema_version\": 1", "\"deterministic\"", "\"wall_clock\"",
        "\"num_things\"", "\"num_clients\"", "\"threads\"", "\"reads\"", "\"cache_hits\"",
        "\"cache_misses\"", "\"coalesced_reads\"", "\"device_reads\"", "\"hit_rate\"",
        "\"amplification\"", "\"hotspot_reads\"", "\"hotspot_device_reads\"",
        "\"subscriptions\"", "\"upstream_events\"", "\"fanout_delivered\"",
        "\"fanout_expected\"", "\"fanout_exact\"", "\"p50_ms\"", "\"p99_ms\"",
        "\"scheduler_events\"", "\"reads_per_second\"", "\"fanout_events_per_second\"",
        "\"wall_seconds\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

TEST(ModelBenchSharded, MultiThreadedCellKeepsInvariantsAndStaysOutOfDeterministicJson) {
  ModelBenchOptions opt = SmokeCell();
  opt.num_things = 16;
  opt.num_clients = 40;
  opt.total_reads = 200;
  opt.threads = 2;
  const ModelBenchResult r = RunModelBench(opt);
  EXPECT_EQ(r.threads, 2);
  EXPECT_EQ(r.cache_hits + r.cache_misses, r.reads);
  EXPECT_EQ(r.coalesced_reads + r.device_reads, r.cache_misses);
  EXPECT_EQ(r.fanout_exact, 1u);
  // Multi-threaded cells are wall-clock-only.
  EXPECT_EQ(ModelDeterministicCellsJson({r}), "{\"cells\": []}");
  const std::string json = ModelBenchJson({r});
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos) << json;
}

}  // namespace
}  // namespace micropnp
