// MpscQueue: the bounded hand-off between runtime shards.  These tests pin
// the contract the conservative scheduler depends on: bounded capacity with
// counted rejections (an overflowing inbox must look like frame loss, not a
// deadlock), per-producer FIFO order, and drain-on-shutdown (Close stops
// producers but queued work remains drainable).  The multi-producer cases
// double as the TSan exercise for the queue's locking.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/rt/mpsc_queue.h"

namespace micropnp {
namespace {

TEST(MpscQueue, BoundedCapacityRejectsAndCounts) {
  MpscQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.TryPush(i));
  }
  EXPECT_FALSE(queue.TryPush(99));
  EXPECT_FALSE(queue.TryPush(100));
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.rejected_full(), 2u);

  // Draining frees the capacity again.
  std::vector<int> out;
  EXPECT_EQ(queue.DrainInto(out), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(queue.TryPush(5));
}

TEST(MpscQueue, DrainIntoEmptyVectorSwapsAndAppendOtherwise) {
  MpscQueue<int> queue(8);
  queue.TryPush(1);
  queue.TryPush(2);
  std::vector<int> out{7};
  EXPECT_EQ(queue.DrainInto(out), 2u);
  EXPECT_EQ(out, (std::vector<int>{7, 1, 2}));
  EXPECT_EQ(queue.DrainInto(out), 0u);
}

TEST(MpscQueue, FifoPerProducerUnderConcurrency) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  // Encode (producer, sequence) so the consumer can check each producer's
  // stream arrives in order regardless of interleaving.
  MpscQueue<uint32_t> queue(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!queue.TryPush(static_cast<uint32_t>(p) << 16 | static_cast<uint32_t>(i))) {
          std::this_thread::yield();
        }
      }
    });
  }
  // Consume concurrently with production (single consumer).
  std::vector<uint32_t> all;
  std::vector<uint32_t> batch;
  while (all.size() < static_cast<size_t>(kProducers) * kPerProducer) {
    batch.clear();
    if (queue.DrainInto(batch) == 0) {
      std::this_thread::yield();
    }
    all.insert(all.end(), batch.begin(), batch.end());
  }
  for (std::thread& producer : producers) {
    producer.join();
  }

  int next_seq[kProducers] = {};
  for (uint32_t item : all) {
    const int p = static_cast<int>(item >> 16);
    const int seq = static_cast<int>(item & 0xffff);
    EXPECT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
    next_seq[p] = seq + 1;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
  EXPECT_EQ(queue.rejected_full(), 0u);  // producers spun instead of dropping
}

TEST(MpscQueue, DrainOnShutdown) {
  MpscQueue<int> queue(8);
  queue.TryPush(1);
  queue.TryPush(2);
  queue.Close();
  EXPECT_TRUE(queue.closed());
  // Pushes after Close fail and are counted separately from overflow.
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.rejected_closed(), 1u);
  EXPECT_EQ(queue.rejected_full(), 0u);
  // Work enqueued before Close must still drain (no lost events at
  // shutdown).
  std::vector<int> out;
  EXPECT_EQ(queue.DrainInto(out), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(MpscQueue, CloseIsVisibleToConcurrentProducers) {
  MpscQueue<int> queue(1 << 16);
  std::atomic<bool> start{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&queue, &start] {
      while (!start.load()) {
        std::this_thread::yield();
      }
      // Attempt every push even after Close: each one must either land or be
      // counted as rejected_closed (capacity is large enough to never fill).
      for (int i = 0; i < 5000; ++i) {
        (void)queue.TryPush(i);
      }
    });
  }
  start.store(true);
  queue.Close();
  for (std::thread& producer : producers) {
    producer.join();
  }
  // Everything that made it in is still drainable; everything rejected was
  // counted.
  std::vector<int> out;
  const size_t drained = queue.DrainInto(out);
  EXPECT_EQ(drained + queue.rejected_closed(), 4u * 5000u);
}

}  // namespace
}  // namespace micropnp
