// Unit tests for the simulated peripherals: environment, TMP36, HIH-4030,
// ID-20LA, BMP180 (register-level + datasheet compensation), relay.

#include <gtest/gtest.h>

#include "src/bus/channel_bus.h"
#include "src/periph/bmp180.h"
#include "src/periph/bmp180_math.h"
#include "src/periph/environment.h"
#include "src/periph/hih4030.h"
#include "src/periph/id20la.h"
#include "src/periph/relay.h"
#include "src/periph/tmp36.h"

namespace micropnp {
namespace {

// ---------------------------------------------------------- environment ----

TEST(Environment, SignalsStayInPhysicalRanges) {
  Environment env;
  for (int hour = 0; hour < 48; ++hour) {
    SimTime t = SimTime::FromSeconds(hour * 3600.0);
    EXPECT_GT(env.TemperatureC(t), -20.0);
    EXPECT_LT(env.TemperatureC(t), 50.0);
    EXPECT_GE(env.HumidityPct(t), 1.0);
    EXPECT_LE(env.HumidityPct(t), 99.0);
    EXPECT_GT(env.PressurePa(t), 95000.0);
    EXPECT_LT(env.PressurePa(t), 107000.0);
  }
}

TEST(Environment, IsDeterministic) {
  Environment a, b;
  SimTime t = SimTime::FromSeconds(12345.0);
  EXPECT_DOUBLE_EQ(a.TemperatureC(t), b.TemperatureC(t));
  EXPECT_DOUBLE_EQ(a.PressurePa(t), b.PressurePa(t));
}

TEST(Environment, HasDiurnalVariation) {
  Environment env;
  // Coldest near t=0, warmest ~12h later with the default phase.
  double morning = env.TemperatureC(SimTime::FromSeconds(0.0));
  double noonish = env.TemperatureC(SimTime::FromSeconds(43200.0));
  EXPECT_GT(noonish - morning, 5.0);
}

// ---------------------------------------------------------------- tmp36 ----

TEST(Tmp36, TransferFunctionMatchesDatasheet) {
  EXPECT_NEAR(Tmp36::VoltsForTemperature(25.0), 0.750, 1e-9);
  EXPECT_NEAR(Tmp36::TemperatureForVolts(0.750), 25.0, 1e-9);
  EXPECT_NEAR(Tmp36::VoltsForTemperature(0.0), 0.5, 1e-9);
}

TEST(Tmp36, EndToEndThroughAdc) {
  Scheduler sched;
  ChannelBus bus(sched);
  Environment env;
  Tmp36 sensor(env);
  sensor.AttachTo(bus);
  ASSERT_TRUE(bus.adc().attached());

  Result<uint16_t> code = bus.adc().Sample();
  ASSERT_TRUE(code.ok());
  const double volts = bus.adc().CodeToVoltage(*code).value();
  const double measured = Tmp36::TemperatureForVolts(volts);
  // 10-bit quantization on 3.3 V -> ~0.32 degC per LSB.
  EXPECT_NEAR(measured, env.TemperatureC(sched.now()), 0.4);

  sensor.DetachFrom(bus);
  EXPECT_FALSE(bus.adc().attached());
}

TEST(Tmp36, Metadata) {
  Environment env;
  Tmp36 sensor(env);
  EXPECT_EQ(sensor.type_id(), kTmp36TypeId);
  EXPECT_EQ(sensor.bus(), BusKind::kAdc);
  EXPECT_EQ(sensor.name(), "TMP36");
}

// -------------------------------------------------------------- hih4030 ----

TEST(Hih4030, TransferFunctionRoundTrips) {
  for (double rh = 5.0; rh <= 95.0; rh += 10.0) {
    double v = Hih4030::VoltsForHumidity(rh, 3.3);
    EXPECT_NEAR(Hih4030::HumidityForVolts(v, 3.3), rh, 1e-9);
  }
}

TEST(Hih4030, EndToEndThroughAdc) {
  Scheduler sched;
  ChannelBus bus(sched);
  Environment env;
  Hih4030 sensor(env);
  sensor.AttachTo(bus);
  Result<uint16_t> code = bus.adc().Sample();
  ASSERT_TRUE(code.ok());
  const double volts = bus.adc().CodeToVoltage(*code).value();
  EXPECT_NEAR(Hih4030::HumidityForVolts(volts, 3.3), env.HumidityPct(sched.now()), 1.0);
}

TEST(Hih4030, TemperatureCompensationDirection) {
  // Warmer air -> sensor under-reads; compensation raises the value.
  const double raw = 50.0;
  EXPECT_GT(Hih4030::CompensateForTemperature(raw, 40.0),
            Hih4030::CompensateForTemperature(raw, 10.0));
}

// --------------------------------------------------------------- id20la ----

TEST(Id20La, FrameLayout) {
  RfidCard card = {0x4a, 0x00, 0xd2, 0x3f, 0x81};
  std::vector<uint8_t> frame = BuildId20LaFrame(card);
  ASSERT_EQ(frame.size(), 16u);
  EXPECT_EQ(frame.front(), 0x02);  // STX
  EXPECT_EQ(frame[13], 0x0d);      // CR
  EXPECT_EQ(frame[14], 0x0a);      // LF
  EXPECT_EQ(frame.back(), 0x03);   // ETX
}

TEST(Id20La, ChecksumIsXorOfDataBytes) {
  RfidCard card = {0x01, 0x02, 0x04, 0x08, 0x10};
  std::string payload = Id20LaPayload(card);
  ASSERT_EQ(payload.size(), 12u);
  EXPECT_EQ(payload.substr(10), "1F");  // 0x01^0x02^0x04^0x08^0x10 = 0x1f
  EXPECT_TRUE(ValidateId20LaPayload(payload));
}

TEST(Id20La, ValidateRejectsCorruptPayloads) {
  RfidCard card = {0xde, 0xad, 0xbe, 0xef, 0x42};
  std::string payload = Id20LaPayload(card);
  ASSERT_TRUE(ValidateId20LaPayload(payload));
  payload[3] = (payload[3] == 'A') ? 'B' : 'A';
  EXPECT_FALSE(ValidateId20LaPayload(payload));
  EXPECT_FALSE(ValidateId20LaPayload("short"));
  EXPECT_FALSE(ValidateId20LaPayload("GGGGGGGGGGGG"));  // non-hex
}

TEST(Id20La, PresentCardEmitsFrameOverUart) {
  Scheduler sched;
  ChannelBus bus(sched);
  Id20La reader;
  reader.AttachTo(bus);
  ASSERT_TRUE(bus.uart().Init(UartConfig{}).ok());

  std::vector<uint8_t> received;
  bus.uart().set_rx_handler([&](uint8_t b) { received.push_back(b); });

  RfidCard card = {0x4a, 0x00, 0xd2, 0x3f, 0x81};
  ASSERT_TRUE(reader.PresentCard(card));
  sched.Run();

  EXPECT_EQ(received, BuildId20LaFrame(card));
  EXPECT_EQ(reader.frames_sent(), 1u);
  // Frame takes 16 byte-times at 9600 8N1 ~ 16.67 ms.
  EXPECT_NEAR(sched.now().millis(), 16.0 * 10.0 / 9600.0 * 1e3, 0.1);
}

TEST(Id20La, PresentCardFailsWhenUnplugged) {
  Id20La reader;
  EXPECT_FALSE(reader.PresentCard(RfidCard{}));
}

// ------------------------------------------------------------ bmp180 math --

TEST(Bmp180Math, DatasheetWorkedExample) {
  // Bosch datasheet section 3.5: UT=27898, UP=23843, oss=0 with the example
  // calibration yields T=150 (15.0 degC) and p=69964 Pa.
  Bmp180Calibration cal;  // defaults are the datasheet example
  EXPECT_EQ(Bmp180CompensateTemperature(cal, 27898), 150);
  const int32_t b5 = Bmp180ComputeB5(cal, 27898);
  EXPECT_EQ(Bmp180CompensatePressure(cal, 23843, b5, 0), 69964);
}

TEST(Bmp180Math, InverseTemperatureRoundTrips) {
  Bmp180Calibration cal;
  for (double t = -10.0; t <= 40.0; t += 5.0) {
    int32_t ut = Bmp180RawFromTemperature(cal, t);
    EXPECT_NEAR(Bmp180CompensateTemperature(cal, ut) / 10.0, t, 0.15) << "t=" << t;
  }
}

TEST(Bmp180Math, InversePressureRoundTrips) {
  Bmp180Calibration cal;
  const int32_t b5 = Bmp180ComputeB5(cal, Bmp180RawFromTemperature(cal, 15.0));
  for (int oss = 0; oss <= 3; ++oss) {
    for (double p = 95000.0; p <= 105000.0; p += 2500.0) {
      int32_t up = Bmp180RawFromPressure(cal, p, b5, oss);
      EXPECT_NEAR(Bmp180CompensatePressure(cal, up, b5, oss), p, 6.0)
          << "p=" << p << " oss=" << oss;
    }
  }
}

TEST(Bmp180Math, ConversionTimesFollowDatasheet) {
  EXPECT_NEAR(Bmp180ConversionSeconds(false, 0), 4.5e-3, 1e-9);
  EXPECT_NEAR(Bmp180ConversionSeconds(true, 0), 4.5e-3, 1e-9);
  EXPECT_NEAR(Bmp180ConversionSeconds(true, 3), 25.5e-3, 1e-9);
}

TEST(Bmp180Math, AltitudeFormula) {
  EXPECT_NEAR(Bmp180AltitudeMeters(101325.0), 0.0, 1e-6);
  // ~8.3 m per hPa near sea level.
  EXPECT_NEAR(Bmp180AltitudeMeters(100225.0), 92.0, 3.0);
}

// ---------------------------------------------------------------- bmp180 ---

class Bmp180Test : public ::testing::Test {
 protected:
  Bmp180Test() : bus_(sched_), sensor_(env_) { sensor_.AttachTo(bus_); }

  // Helper: write register pointer then read back `n` bytes.
  std::vector<uint8_t> ReadRegs(uint8_t reg, size_t n) {
    const uint8_t ptr[] = {reg};
    Result<std::vector<uint8_t>> out = bus_.i2c().WriteRead(Bmp180::kI2cAddress,
                                                            ByteSpan(ptr, 1), n);
    EXPECT_TRUE(out.ok());
    return out.ok() ? *out : std::vector<uint8_t>{};
  }

  Status WriteReg(uint8_t reg, uint8_t value) {
    const uint8_t cmd[] = {reg, value};
    return bus_.i2c().Write(Bmp180::kI2cAddress, ByteSpan(cmd, 2));
  }

  Scheduler sched_;
  ChannelBus bus_;
  Environment env_;
  Bmp180 sensor_;
};

TEST_F(Bmp180Test, ChipIdReads0x55) {
  std::vector<uint8_t> id = ReadRegs(Bmp180::kRegChipId, 1);
  ASSERT_EQ(id.size(), 1u);
  EXPECT_EQ(id[0], 0x55);
}

TEST_F(Bmp180Test, CalibrationEepromMatchesConfiguredConstants) {
  std::vector<uint8_t> cal = ReadRegs(Bmp180::kRegCalibrationStart, 22);
  ASSERT_EQ(cal.size(), 22u);
  // AC1 = 408 = 0x0198, big-endian.
  EXPECT_EQ(cal[0], 0x01);
  EXPECT_EQ(cal[1], 0x98);
  // MD = 2868 = 0x0B34 at offset 20.
  EXPECT_EQ(cal[20], 0x0b);
  EXPECT_EQ(cal[21], 0x34);
}

TEST_F(Bmp180Test, TemperatureMeasurementMatchesEnvironment) {
  ASSERT_TRUE(WriteReg(Bmp180::kRegCtrlMeas, Bmp180::kCmdReadTemperature).ok());
  sched_.RunUntil(sched_.now() + SimTime::FromMillis(5));  // wait conversion

  std::vector<uint8_t> raw = ReadRegs(Bmp180::kRegOutMsb, 2);
  const int32_t ut = (raw[0] << 8) | raw[1];
  const double measured = Bmp180CompensateTemperature(sensor_.calibration(), ut) / 10.0;
  EXPECT_NEAR(measured, env_.TemperatureC(sched_.now()), 0.2);
}

TEST_F(Bmp180Test, PressureMeasurementMatchesEnvironment) {
  // Temperature first (for B5), then pressure at oss=0.
  ASSERT_TRUE(WriteReg(Bmp180::kRegCtrlMeas, Bmp180::kCmdReadTemperature).ok());
  sched_.RunUntil(sched_.now() + SimTime::FromMillis(5));
  std::vector<uint8_t> traw = ReadRegs(Bmp180::kRegOutMsb, 2);
  const int32_t ut = (traw[0] << 8) | traw[1];
  const int32_t b5 = Bmp180ComputeB5(sensor_.calibration(), ut);

  ASSERT_TRUE(WriteReg(Bmp180::kRegCtrlMeas, Bmp180::kCmdReadPressureBase).ok());
  sched_.RunUntil(sched_.now() + SimTime::FromMillis(5));
  std::vector<uint8_t> praw = ReadRegs(Bmp180::kRegOutMsb, 3);
  const int32_t up =
      static_cast<int32_t>(((praw[0] << 16) | (praw[1] << 8) | praw[2]) >> 8);  // oss=0

  const double measured = Bmp180CompensatePressure(sensor_.calibration(), up, b5, 0);
  EXPECT_NEAR(measured, env_.PressurePa(sched_.now()), 25.0);
}

TEST_F(Bmp180Test, OversamplingModesProduceConsistentPressure) {
  ASSERT_TRUE(WriteReg(Bmp180::kRegCtrlMeas, Bmp180::kCmdReadTemperature).ok());
  sched_.RunUntil(sched_.now() + SimTime::FromMillis(5));
  std::vector<uint8_t> traw = ReadRegs(Bmp180::kRegOutMsb, 2);
  const int32_t b5 = Bmp180ComputeB5(sensor_.calibration(), (traw[0] << 8) | traw[1]);

  for (int oss = 0; oss <= 3; ++oss) {
    const uint8_t cmd = static_cast<uint8_t>(Bmp180::kCmdReadPressureBase | (oss << 6));
    ASSERT_TRUE(WriteReg(Bmp180::kRegCtrlMeas, cmd).ok());
    sched_.RunUntil(sched_.now() + SimTime::FromMillis(30));
    std::vector<uint8_t> praw = ReadRegs(Bmp180::kRegOutMsb, 3);
    const int32_t up =
        static_cast<int32_t>(((praw[0] << 16) | (praw[1] << 8) | praw[2]) >> (8 - oss));
    const double p = Bmp180CompensatePressure(sensor_.calibration(), up, b5, oss);
    EXPECT_NEAR(p, env_.PressurePa(sched_.now()), 30.0) << "oss=" << oss;
  }
}

TEST_F(Bmp180Test, PrematureReadReturnsStaleDataAndCounts) {
  ASSERT_TRUE(WriteReg(Bmp180::kRegCtrlMeas, Bmp180::kCmdReadTemperature).ok());
  // Read immediately: conversion takes 4.5 ms, we are at +0.
  std::vector<uint8_t> raw = ReadRegs(Bmp180::kRegOutMsb, 2);
  EXPECT_EQ(raw, (std::vector<uint8_t>{0, 0}));  // nothing latched yet
  EXPECT_EQ(sensor_.premature_reads(), 1u);
}

TEST_F(Bmp180Test, CtrlMeasBusyBitWhileConverting) {
  ASSERT_TRUE(WriteReg(Bmp180::kRegCtrlMeas, Bmp180::kCmdReadTemperature).ok());
  std::vector<uint8_t> busy = ReadRegs(Bmp180::kRegCtrlMeas, 1);
  EXPECT_TRUE(busy[0] & 0x20);
  sched_.RunUntil(sched_.now() + SimTime::FromMillis(5));
  std::vector<uint8_t> idle = ReadRegs(Bmp180::kRegCtrlMeas, 1);
  EXPECT_FALSE(idle[0] & 0x20);
}

TEST_F(Bmp180Test, InvalidCommandNacks) {
  EXPECT_FALSE(WriteReg(Bmp180::kRegCtrlMeas, 0x00).ok());
  EXPECT_FALSE(WriteReg(0xaa, 0x12).ok());  // calibration EEPROM is read-only
}

TEST_F(Bmp180Test, SoftResetClearsState) {
  ASSERT_TRUE(WriteReg(Bmp180::kRegCtrlMeas, Bmp180::kCmdReadTemperature).ok());
  sched_.RunUntil(sched_.now() + SimTime::FromMillis(5));
  ASSERT_TRUE(WriteReg(Bmp180::kRegSoftReset, Bmp180::kCmdSoftReset).ok());
  std::vector<uint8_t> raw = ReadRegs(Bmp180::kRegOutMsb, 2);
  EXPECT_EQ(raw, (std::vector<uint8_t>{0, 0}));
}

// ----------------------------------------------------------------- relay ---

TEST(Relay, SetAndGetOverSpi) {
  Scheduler sched;
  ChannelBus bus(sched);
  Relay relay;
  relay.AttachTo(bus);

  const uint8_t set_on[] = {Relay::kCmdSet, 1};
  Result<std::vector<uint8_t>> r1 = bus.spi().Transfer(ByteSpan(set_on, 2));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)[0], Relay::kReadyMarker);
  EXPECT_EQ((*r1)[1], 1);
  EXPECT_TRUE(relay.closed());

  const uint8_t get[] = {Relay::kCmdGet, 0};
  Result<std::vector<uint8_t>> r2 = bus.spi().Transfer(ByteSpan(get, 2));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)[1], 1);

  const uint8_t set_off[] = {Relay::kCmdSet, 0};
  ASSERT_TRUE(bus.spi().Transfer(ByteSpan(set_off, 2)).ok());
  EXPECT_FALSE(relay.closed());
  EXPECT_EQ(relay.switch_count(), 2u);
}

TEST(Relay, ObserverFiresOnChangesOnly) {
  Scheduler sched;
  ChannelBus bus(sched);
  Relay relay;
  relay.AttachTo(bus);
  int notifications = 0;
  relay.set_observer([&](bool) { ++notifications; });

  const uint8_t set_on[] = {Relay::kCmdSet, 1};
  ASSERT_TRUE(bus.spi().Transfer(ByteSpan(set_on, 2)).ok());
  ASSERT_TRUE(bus.spi().Transfer(ByteSpan(set_on, 2)).ok());  // no change
  EXPECT_EQ(notifications, 1);
}

TEST(Relay, UnknownCommandReturnsError) {
  Scheduler sched;
  ChannelBus bus(sched);
  Relay relay;
  relay.AttachTo(bus);
  const uint8_t bad[] = {0x77, 0x01};
  Result<std::vector<uint8_t>> r = bus.spi().Transfer(ByteSpan(bad, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[1], 0xff);
}

}  // namespace
}  // namespace micropnp
