// Northbound model tier: typed model derivation from driver metadata, the
// ModelServer's last-value cache (single-flight, TTL, write-through),
// subscription fan-out over one shared upstream stream, and unplug teardown.
//
// Everything runs on seeded deployments in simulated time; every counter
// assertion below is exact, not a threshold.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/baseline/table3.h"
#include "src/core/deployment.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"
#include "src/model/model_server.h"
#include "src/rt/decoded_image.h"

namespace micropnp {
namespace {

// ------------------------------------------------------- model derivation ---

// Every bundled DSL driver derives the surface its source declares: a `read`
// handler makes a readable "value" property plus a telemetry channel, a
// `write` handler makes it writable, and custom handlers become commands in
// declaration order from kEventCustomBase.
TEST(ModelDerivation, EveryBundledDriverDerivesItsDeclaredSurface) {
  for (const BundledDriver& bundled : BundledDrivers()) {
    Result<DeviceModel> model = DeriveModelFromSource(bundled.source, bundled.name);
    ASSERT_TRUE(model.ok()) << bundled.name << ": " << model.status().message();
    EXPECT_EQ(model->device_id, bundled.device_id) << bundled.name;
    EXPECT_EQ(model->name, bundled.name);
    EXPECT_EQ(model->source, ModelSource::kDslSource);

    // All five bundled drivers have a `read` handler.
    ASSERT_EQ(model->properties.size(), 1u) << bundled.name;
    EXPECT_EQ(model->properties[0].name, "value");
    ASSERT_EQ(model->telemetry.size(), 1u) << bundled.name;
    EXPECT_EQ(model->telemetry[0].name, "value");
    EXPECT_TRUE(model->readable());
    EXPECT_TRUE(model->streamable());

    // Only the relay declares `write`.
    EXPECT_EQ(model->writable(), bundled.device_id == kRelayTypeId) << bundled.name;

    if (bundled.device_id == kBmp180TypeId) {
      // The BMP180 source declares measure, calword(w) and compensate(t) in
      // that order; the compiler allocates custom event ids the same way.
      const std::vector<ModelCommand> expected = {
          {"measure", kEventCustomBase + 0, 0},
          {"calword", kEventCustomBase + 1, 1},
          {"compensate", kEventCustomBase + 2, 1},
      };
      EXPECT_EQ(model->commands, expected);
    } else {
      EXPECT_TRUE(model->commands.empty()) << bundled.name;
    }
  }
}

// Deriving from the compiled image must agree with deriving from the AST on
// everything except names (the image only has event ids).
TEST(ModelDerivation, ImageDerivationMatchesSourceDerivation) {
  const BundledDriver* bundled = FindBundledDriver(kBmp180TypeId);
  ASSERT_NE(bundled, nullptr);
  Result<DeviceModel> from_source = DeriveModelFromSource(bundled->source);
  ASSERT_TRUE(from_source.ok());
  Result<DriverImage> image = CompileDriver(bundled->source);
  ASSERT_TRUE(image.ok());
  const DeviceModel from_image = DeriveModelFromImage(*image);

  EXPECT_EQ(from_image.device_id, from_source->device_id);
  EXPECT_EQ(from_image.source, ModelSource::kDslImage);
  EXPECT_EQ(from_image.properties, from_source->properties);
  EXPECT_EQ(from_image.telemetry, from_source->telemetry);
  ASSERT_EQ(from_image.commands.size(), from_source->commands.size());
  for (size_t i = 0; i < from_image.commands.size(); ++i) {
    EXPECT_EQ(from_image.commands[i].event, from_source->commands[i].event);
  }
  // Image-derived command names are synthesized from the event id.
  EXPECT_EQ(from_image.commands[0].name, "cmd_0x40");
  EXPECT_EQ(FacetsOf(from_image), FacetsOf(*from_source));
}

// All four Table 3 native rows expose a read entry point and no write.
TEST(ModelDerivation, NativeManifestRowsAreReadOnly) {
  ASSERT_EQ(NativeDrivers().size(), 4u);
  for (const NativeDriverInfo& native : NativeDrivers()) {
    const DeviceModel model = DeriveModelFromNative(native);
    EXPECT_EQ(model.source, ModelSource::kNativeManifest) << native.name;
    EXPECT_TRUE(model.readable()) << native.name;
    EXPECT_FALSE(model.writable()) << native.name;
    EXPECT_TRUE(model.streamable()) << native.name;
    EXPECT_TRUE(model.commands.empty()) << native.name;
  }
}

// ------------------------------------------------------------ model facets ---

TEST(ModelFacets, EncodeDecodeRoundTrip) {
  for (bool readable : {false, true}) {
    for (bool writable : {false, true}) {
      for (uint8_t commands : {uint8_t{0}, uint8_t{3}, uint8_t{255}}) {
        const ModelFacets facets{readable, writable, commands};
        EXPECT_EQ(ModelFacets::Decode(facets.Encode()), facets);
      }
    }
  }
}

TEST(ModelFacets, FacetsOfBundledModels) {
  const BundledDriver* relay = FindBundledDriver(kRelayTypeId);
  ASSERT_NE(relay, nullptr);
  Result<DeviceModel> relay_model = DeriveModelFromSource(relay->source);
  ASSERT_TRUE(relay_model.ok());
  EXPECT_EQ(FacetsOf(*relay_model), (ModelFacets{true, true, 0}));

  const BundledDriver* bmp = FindBundledDriver(kBmp180TypeId);
  ASSERT_NE(bmp, nullptr);
  Result<DeviceModel> bmp_model = DeriveModelFromSource(bmp->source);
  ASSERT_TRUE(bmp_model.ok());
  EXPECT_EQ(FacetsOf(*bmp_model), (ModelFacets{true, false, 3}));
}

// The runtime's metadata export (DecodedImage::HandledEvents) condenses into
// the same facets the AST derivation produces — this is the contract behind
// the kModelFacets TLV Things advertise.
TEST(ModelFacets, HandledEventsOfDecodedImageMatchAstFacets) {
  for (const BundledDriver& bundled : BundledDrivers()) {
    Result<DriverImage> image = CompileDriver(bundled.source);
    ASSERT_TRUE(image.ok()) << bundled.name;
    Result<DecodedImage> decoded = DecodedImage::Decode(*image);
    ASSERT_TRUE(decoded.ok()) << bundled.name;
    Result<DeviceModel> from_source = DeriveModelFromSource(bundled.source);
    ASSERT_TRUE(from_source.ok());
    const std::vector<EventId> events = decoded->HandledEvents();
    EXPECT_EQ(FacetsFromHandledEvents(events), FacetsOf(*from_source)) << bundled.name;
  }
}

TEST(ModelFacets, ModelFromFacetsExpandsCapabilities) {
  const DeviceModel rw = ModelFromFacets(0xdead0001, ModelFacets{true, true, 2});
  EXPECT_EQ(rw.source, ModelSource::kAdvertisement);
  EXPECT_TRUE(rw.readable());
  EXPECT_TRUE(rw.writable());
  EXPECT_TRUE(rw.streamable());
  EXPECT_EQ(rw.commands.size(), 2u);

  const DeviceModel none = ModelFromFacets(0xdead0002, ModelFacets{});
  EXPECT_FALSE(none.readable());
  EXPECT_FALSE(none.writable());
  EXPECT_FALSE(none.streamable());
}

TEST(ModelFacets, FindFacetsTlvAbsentAndPresent) {
  TlvList info;
  ModelFacets facets;
  EXPECT_FALSE(FindFacetsTlv(info, &facets));
  info.AddU16(TlvType::kModelFacets, ModelFacets{true, false, 1}.Encode());
  ASSERT_TRUE(FindFacetsTlv(info, &facets));
  EXPECT_EQ(facets, (ModelFacets{true, false, 1}));
}

// ------------------------------------------------------------ model catalog ---

TEST(ModelCatalogBuiltIn, CoversTheFleetAndPrefersDslModels) {
  const ModelCatalog catalog = ModelCatalog::BuiltIn();
  // Five bundled DSL drivers; the four Table 3 native rows share their ids.
  EXPECT_EQ(catalog.size(), 5u);

  const DeviceModel* tmp36 = catalog.Find(kTmp36TypeId);
  ASSERT_NE(tmp36, nullptr);
  EXPECT_EQ(tmp36->name, "TMP36");
  EXPECT_EQ(tmp36->source, ModelSource::kDslSource);

  // The BMP180 id exists in both the native manifest and the DSL bundle;
  // the catalog must keep the richer DSL model (3 named commands).
  const DeviceModel* bmp = catalog.Find(kBmp180TypeId);
  ASSERT_NE(bmp, nullptr);
  EXPECT_EQ(bmp->source, ModelSource::kDslSource);
  EXPECT_EQ(bmp->commands.size(), 3u);

  EXPECT_EQ(catalog.Find(0x12345678), nullptr);
}

// ------------------------------------------------------- ModelServer fleet ---

ModelServerConfig FastConfig() {
  ModelServerConfig config;
  config.default_ttl_ms = 500.0;
  config.stream_period_ms = 200;
  config.restream_backoff_min_ms = 100.0;
  config.restream_backoff_max_ms = 1000.0;
  return config;
}

// One manager, a TMP36 Thing and a Relay Thing, and a gateway client hosting
// the ModelServer under test.
class ModelGateway : public ::testing::Test {
 protected:
  ModelGateway()
      : manager_(deployment_.AddManager()),
        sensor_thing_(deployment_.AddThing("sensor-thing")),
        relay_thing_(deployment_.AddThing("relay-thing")),
        client_(deployment_.AddClient("gateway")),
        server_(deployment_.scheduler(), client_, ModelCatalog::BuiltIn(), FastConfig()) {}

  // Plugs both peripherals and runs until drivers install and the plug-time
  // (1) advertisements reach the gateway.
  void BringUp() {
    ASSERT_TRUE(sensor_thing_.Plug(0, &deployment_.MakeTmp36()).ok());
    ASSERT_TRUE(relay_thing_.Plug(0, &deployment_.MakeRelay()).ok());
    deployment_.RunForMillis(2000);
    ASSERT_EQ(server_.fleet_size(), 2u);
  }

  Ip6Address sensor_address() { return sensor_thing_.node().address(); }
  Ip6Address relay_address() { return relay_thing_.node().address(); }

  Deployment deployment_;
  MicroPnpManager& manager_;
  MicroPnpThing& sensor_thing_;
  MicroPnpThing& relay_thing_;
  MicroPnpClient& client_;
  ModelServer server_;
};

TEST_F(ModelGateway, AdvertisementsBuildTypedFleet) {
  BringUp();
  const DeviceModel* sensor = server_.ModelFor(sensor_address(), kTmp36TypeId);
  ASSERT_NE(sensor, nullptr);
  EXPECT_EQ(sensor->name, "TMP36");
  EXPECT_TRUE(sensor->readable());
  EXPECT_FALSE(sensor->writable());

  const DeviceModel* relay = server_.ModelFor(relay_address(), kRelayTypeId);
  ASSERT_NE(relay, nullptr);
  EXPECT_TRUE(relay->writable());

  EXPECT_EQ(server_.ModelFor(sensor_address(), kRelayTypeId), nullptr);
}

TEST_F(ModelGateway, FacetsTlvModelsUnknownDriver) {
  // A peripheral type absent from the catalog falls back to the advertised
  // kModelFacets TLV; with no TLV either, the protocol default is a
  // readable-only property (every installed driver answers (10)).
  AdvertisedPeripheral with_facets;
  with_facets.type = 0xdead0001;
  with_facets.info.AddU16(TlvType::kModelFacets, ModelFacets{true, true, 1}.Encode());
  AdvertisedPeripheral bare;
  bare.type = 0xdead0002;
  server_.ObserveAdvertisement(sensor_address(), {with_facets, bare});

  const DeviceModel* rich = server_.ModelFor(sensor_address(), 0xdead0001);
  ASSERT_NE(rich, nullptr);
  EXPECT_EQ(rich->source, ModelSource::kAdvertisement);
  EXPECT_TRUE(rich->writable());
  EXPECT_EQ(rich->commands.size(), 1u);

  const DeviceModel* plain = server_.ModelFor(sensor_address(), 0xdead0002);
  ASSERT_NE(plain, nullptr);
  EXPECT_TRUE(plain->readable());
  EXPECT_FALSE(plain->writable());
}

TEST_F(ModelGateway, RefreshFleetDiscoversActively) {
  // Suppress the listener path: this server only learns via RefreshFleet.
  ASSERT_TRUE(sensor_thing_.Plug(0, &deployment_.MakeTmp36()).ok());
  deployment_.RunForMillis(2000);

  ModelServerConfig config = FastConfig();
  config.hook_advertisements = false;
  MicroPnpClient& probe_client = deployment_.AddClient("probe");
  ModelServer probe(deployment_.scheduler(), probe_client, ModelCatalog::BuiltIn(), config);
  EXPECT_EQ(probe.fleet_size(), 0u);

  size_t answered = 0;
  probe.RefreshFleet(kTmp36TypeId, 500, [&](Result<size_t> count) {
    ASSERT_TRUE(count.ok());
    answered = *count;
  });
  deployment_.RunForMillis(800);
  EXPECT_EQ(answered, 1u);
  EXPECT_EQ(probe.fleet_size(), 1u);
  EXPECT_NE(probe.ModelFor(sensor_address(), kTmp36TypeId), nullptr);
}

// ------------------------------------------------------- last-value cache ---

TEST_F(ModelGateway, SingleFlightCoalescesConcurrentReads) {
  BringUp();
  // 8 reads of the same cold key issued back to back: one μPnP (10) goes on
  // the wire, the other 7 join its waiter cohort.
  int completed = 0;
  std::vector<int32_t> values;
  for (int i = 0; i < 8; ++i) {
    server_.ReadValue(sensor_address(), kTmp36TypeId, [&](Result<WireValue> value) {
      ASSERT_TRUE(value.ok());
      ++completed;
      values.push_back(value->scalar);
    });
  }
  deployment_.RunForMillis(300);  // fetch lands well inside the 500ms TTL
  EXPECT_EQ(completed, 8);
  // Every waiter saw the same fetched value.
  EXPECT_EQ(std::count(values.begin(), values.end(), values.front()), 8);

  const ModelServerCounters& counters = server_.counters();
  EXPECT_EQ(counters.reads, 8u);
  EXPECT_EQ(counters.cache_hits, 0u);
  EXPECT_EQ(counters.cache_misses, 8u);
  EXPECT_EQ(counters.device_reads, 1u);
  EXPECT_EQ(counters.coalesced_reads, 7u);

  // The fetch populated the cache: an immediate 9th read is a hit.
  bool hit = false;
  server_.ReadValue(sensor_address(), kTmp36TypeId,
                    [&](Result<WireValue> value) { hit = value.ok(); });
  EXPECT_TRUE(hit);  // synchronous: no simulation time needed
  EXPECT_EQ(server_.counters().cache_hits, 1u);
  EXPECT_EQ(server_.counters().device_reads, 1u);

  // Ledger invariants.
  EXPECT_EQ(counters.cache_hits + counters.cache_misses, counters.reads);
  EXPECT_EQ(counters.coalesced_reads + counters.device_reads, counters.cache_misses);
}

TEST_F(ModelGateway, TtlExpiryForcesRefetch) {
  BringUp();
  auto read_once = [&] {
    bool done = false;
    server_.ReadValue(sensor_address(), kTmp36TypeId,
                      [&](Result<WireValue> value) { done = value.ok(); });
    deployment_.RunForMillis(300);
    EXPECT_TRUE(done);
  };
  read_once();  // cold: device read #1
  EXPECT_EQ(server_.counters().device_reads, 1u);
  read_once();  // 300ms later, inside the 500ms TTL: hit
  EXPECT_EQ(server_.counters().cache_hits, 1u);
  EXPECT_EQ(server_.counters().device_reads, 1u);

  deployment_.RunForMillis(600);  // now stale
  read_once();  // device read #2
  EXPECT_EQ(server_.counters().device_reads, 2u);
  EXPECT_EQ(server_.counters().cache_misses, 2u);
}

TEST_F(ModelGateway, PerDeviceTtlOverrideWins) {
  BringUp();
  server_.SetTtl(kTmp36TypeId, 50.0);
  EXPECT_EQ(server_.TtlFor(kTmp36TypeId), 50.0);
  EXPECT_EQ(server_.TtlFor(kRelayTypeId), 500.0);

  bool done = false;
  server_.ReadValue(sensor_address(), kTmp36TypeId, [&](Result<WireValue>) { done = true; });
  deployment_.RunForMillis(200);  // fetch lands, then the 50ms TTL lapses
  ASSERT_TRUE(done);
  server_.ReadValue(sensor_address(), kTmp36TypeId, [](Result<WireValue>) {});
  deployment_.RunForMillis(200);
  EXPECT_EQ(server_.counters().device_reads, 2u);  // override expired the entry
}

TEST_F(ModelGateway, WriteThroughMakesNextReadAHit) {
  BringUp();
  bool written = false;
  server_.WriteValue(relay_address(), kRelayTypeId, 1, [&](Status status) {
    ASSERT_TRUE(status.ok());
    written = true;
  });
  deployment_.RunForMillis(500);
  ASSERT_TRUE(written);
  EXPECT_EQ(server_.counters().device_writes, 1u);

  // The acked write primed the cache: the read is a hit, no (10) issued.
  bool read_done = false;
  server_.ReadValue(relay_address(), kRelayTypeId, [&](Result<WireValue> value) {
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value->scalar, 1);
    read_done = true;
  });
  EXPECT_TRUE(read_done);
  EXPECT_EQ(server_.counters().cache_hits, 1u);
  EXPECT_EQ(server_.counters().device_reads, 0u);
}

TEST_F(ModelGateway, UnmodeledAndUnwritableTargetsRejectSynchronously) {
  BringUp();
  Status read_status = OkStatus();
  server_.ReadValue(sensor_address(), kBmp180TypeId,
                    [&](Result<WireValue> value) { read_status = value.status(); });
  EXPECT_EQ(read_status.code(), StatusCode::kNotFound);

  Status write_status = OkStatus();
  server_.WriteValue(sensor_address(), kTmp36TypeId, 7,
                     [&](Status status) { write_status = status; });
  EXPECT_EQ(write_status.code(), StatusCode::kFailedPrecondition);

  EXPECT_EQ(server_.counters().model_misses, 2u);
  EXPECT_EQ(server_.counters().reads, 0u);
  EXPECT_EQ(server_.counters().writes, 0u);
}

// ---------------------------------------------------- subscription fan-out ---

TEST_F(ModelGateway, OneUpstreamFansOutToAllSubscribers) {
  BringUp();
  int counts[3] = {0, 0, 0};
  SubscriptionId ids[3];
  for (int i = 0; i < 3; ++i) {
    Result<SubscriptionId> id = server_.Subscribe(
        sensor_address(), kTmp36TypeId, [&counts, i](const WireValue&) { ++counts[i]; });
    ASSERT_TRUE(id.ok());
    ids[i] = *id;
  }
  deployment_.RunForMillis(2000);

  std::vector<ModelServer::FanoutStat> stats = server_.FanoutStats();
  ASSERT_EQ(stats.size(), 1u);  // one upstream stream, three subscribers
  EXPECT_EQ(stats[0].subscribers, 3u);
  EXPECT_GT(stats[0].upstream_events, 0u);
  // Exactly-once: every received (14) reached every subscriber.
  for (int count : counts) {
    EXPECT_EQ(static_cast<uint64_t>(count), stats[0].upstream_events);
  }
  EXPECT_EQ(stats[0].delivered, 3 * stats[0].upstream_events);

  // Upstream telemetry feeds the cache: a read right after a (14) is a hit.
  bool hit = false;
  server_.ReadValue(sensor_address(), kTmp36TypeId,
                    [&](Result<WireValue> value) { hit = value.ok(); });
  EXPECT_TRUE(hit);
  EXPECT_EQ(server_.counters().device_reads, 0u);

  for (int i = 0; i < 3; ++i) {
    server_.Unsubscribe(sensor_address(), kTmp36TypeId, ids[i]);
  }
  EXPECT_TRUE(server_.FanoutStats().empty());
  const int after_teardown = counts[0];
  deployment_.RunForMillis(1000);
  EXPECT_EQ(counts[0], after_teardown);  // stream stopped, no stragglers
}

TEST_F(ModelGateway, FanOutSurvivesLossAndSubscriberChurn) {
  BringUp();
  LinkModel lossy;
  lossy.loss_rate = 0.2;
  deployment_.fabric().set_link(lossy);

  // One stable subscriber rides across five churn rounds of three
  // short-lived subscribers each.
  uint64_t stable_count = 0;
  Result<SubscriptionId> stable =
      server_.Subscribe(sensor_address(), kTmp36TypeId, [&](const WireValue&) { ++stable_count; });
  ASSERT_TRUE(stable.ok());

  for (int round = 0; round < 5; ++round) {
    SubscriptionId churned[3];
    for (int i = 0; i < 3; ++i) {
      Result<SubscriptionId> id =
          server_.Subscribe(sensor_address(), kTmp36TypeId, [](const WireValue&) {});
      ASSERT_TRUE(id.ok());
      churned[i] = *id;
    }
    deployment_.RunForMillis(600);
    for (SubscriptionId id : churned) {
      server_.Unsubscribe(sensor_address(), kTmp36TypeId, id);
    }
    deployment_.RunForMillis(200);
  }

  std::vector<ModelServer::FanoutStat> stats = server_.FanoutStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].subscribers, 1u);  // only the stable subscriber remains
  // Despite 20% loss and churn, the stable subscriber saw every (14) the
  // upstream delivered — exactly once each.
  EXPECT_GT(stable_count, 0u);
  EXPECT_EQ(stable_count, stats[0].upstream_events);
}

TEST_F(ModelGateway, UpstreamReestablishesAfterForeignStop) {
  BringUp();
  uint64_t received = 0;
  Result<SubscriptionId> id =
      server_.Subscribe(sensor_address(), kTmp36TypeId, [&](const WireValue&) { ++received; });
  ASSERT_TRUE(id.ok());
  deployment_.RunForMillis(1500);
  ASSERT_GT(received, 0u);
  const uint64_t before_stop = received;

  // Another client stops the Thing's stream ((12) period 0); the (15) goes
  // to the whole group, killing the gateway's upstream under it.  The
  // fan-out must re-establish on the backoff ladder and keep delivering.
  MicroPnpClient& other = deployment_.AddClient("other-client");
  other.StopStream(sensor_address(), kTmp36TypeId);
  deployment_.RunForMillis(3000);

  EXPECT_GE(server_.counters().upstream_restarts, 1u);
  EXPECT_GT(received, before_stop);
}

// ------------------------------------------------------------------ unplug ---

TEST_F(ModelGateway, UnplugDropsModelCacheAndSubscribers) {
  BringUp();
  Result<SubscriptionId> id =
      server_.Subscribe(sensor_address(), kTmp36TypeId, [](const WireValue&) {});
  ASSERT_TRUE(id.ok());
  deployment_.RunForMillis(1000);
  ASSERT_EQ(server_.FanoutStats().size(), 1u);

  // The unplug advertisement (empty peripheral list) must tear everything
  // down: model, cache entry, and the fan-out with its subscriber.
  ASSERT_TRUE(sensor_thing_.Unplug(0).ok());
  deployment_.RunForMillis(1000);
  EXPECT_EQ(server_.ModelFor(sensor_address(), kTmp36TypeId), nullptr);
  EXPECT_EQ(server_.fleet_size(), 1u);  // relay Thing remains
  EXPECT_TRUE(server_.FanoutStats().empty());
  EXPECT_EQ(server_.counters().dropped_subscribers, 1u);

  // Reads of the dropped device are model misses now.
  Status status = OkStatus();
  server_.ReadValue(sensor_address(), kTmp36TypeId,
                    [&](Result<WireValue> value) { status = value.status(); });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ModelGateway, UnplugFailsInFlightWaitersWithUnavailable) {
  BringUp();
  // Black-hole the network so the fetch stays in the air, then drop the
  // device via the listener path: the waiter cohort must fail immediately
  // with kUnavailable instead of dangling until the deadline.
  LinkModel black_hole;
  black_hole.loss_rate = 1.0;
  deployment_.fabric().set_link(black_hole);

  std::vector<StatusCode> codes;
  for (int i = 0; i < 3; ++i) {
    server_.ReadValue(sensor_address(), kTmp36TypeId,
                      [&](Result<WireValue> value) { codes.push_back(value.status().code()); });
  }
  EXPECT_TRUE(codes.empty());  // fetch pending
  server_.ObserveAdvertisement(sensor_address(), {});
  ASSERT_EQ(codes.size(), 3u);
  for (StatusCode code : codes) {
    EXPECT_EQ(code, StatusCode::kUnavailable);
  }
  // The orphaned μPnP read completing later must not resurrect the entry.
  deployment_.fabric().set_link(LinkModel{});
  deployment_.RunForMillis(3000);
  EXPECT_EQ(codes.size(), 3u);
}

// ------------------------------------------------------------- ModelClient ---

TEST_F(ModelGateway, ModelClientTeardownUnsubscribesEverything) {
  BringUp();
  {
    ModelClient consumer(server_);
    ASSERT_TRUE(consumer.Subscribe(sensor_address(), kTmp36TypeId, [](const WireValue&) {}).ok());
    ASSERT_TRUE(consumer.Subscribe(relay_address(), kRelayTypeId, [](const WireValue&) {}).ok());
    EXPECT_EQ(consumer.active_subscriptions(), 2u);
    EXPECT_EQ(server_.FanoutStats().size(), 2u);
  }  // ~ModelClient
  EXPECT_TRUE(server_.FanoutStats().empty());
  deployment_.RunForMillis(1000);  // stream stops drain cleanly
}

}  // namespace
}  // namespace micropnp
