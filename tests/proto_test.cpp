// Protocol-level tests: message codecs (1)..(17) and full-network
// integration of Thing / Client / Manager over the simulated fabric — the
// complete Figures 10 and 11 flows, plus the core facade (Deployment,
// AddressSpace).

#include <gtest/gtest.h>

#include "src/core/address_space.h"
#include "src/core/deployment.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"
#include "tests/message_corpus.h"

namespace micropnp {
namespace {

// ------------------------------------------------------------- messages ----

TEST(Messages, AdvertisementRoundTrip) {
  AdvertisedPeripheral p;
  p.type = kTmp36TypeId;
  p.info.AddString(TlvType::kFriendlyName, "TMP36");
  p.info.AddU8(TlvType::kChannel, 1);
  Message m = MakeAdvertisement(MessageType::kUnsolicitedAdvertisement, 7, {p});

  std::vector<uint8_t> wire = m.Serialize();
  Result<Message> parsed = Message::Parse(ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, m);
}

TEST(Messages, AllTwentyTypesRoundTrip) {
  std::vector<Message> corpus = RepresentativeMessages();
  ASSERT_EQ(corpus.size(), 20u);
  for (const Message& m : corpus) {
    std::vector<uint8_t> wire = m.Serialize();
    Result<Message> parsed = Message::Parse(ByteSpan(wire.data(), wire.size()));
    ASSERT_TRUE(parsed.ok()) << MessageTypeName(m.type) << ": " << parsed.status().ToString();
    EXPECT_EQ(*parsed, m) << MessageTypeName(m.type);
  }
}

TEST(Messages, ArrayValueRoundTrip) {
  WireValue value;
  value.is_array = true;
  value.bytes = {'4', 'A', '0', '0', 'D', '2', '3', 'F', '8', '1', '2', '6'};
  Message m = MakeMessage(MessageType::kData, 9, ValuePayload{kId20LaTypeId, value});
  std::vector<uint8_t> wire = m.Serialize();
  Result<Message> parsed = Message::Parse(ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->payload_as<ValuePayload>(), nullptr);
  EXPECT_EQ(parsed->payload_as<ValuePayload>()->value, value);
}

TEST(Messages, ParseRejectsGarbage) {
  std::vector<uint8_t> junk = {0x63, 0x00};
  EXPECT_FALSE(Message::Parse(ByteSpan(junk.data(), junk.size())).ok());
  std::vector<uint8_t> truncated = {static_cast<uint8_t>(MessageType::kRead), 0x00};
  EXPECT_FALSE(Message::Parse(ByteSpan(truncated.data(), truncated.size())).ok());
}

TEST(Messages, PayloadTypeConsistency) {
  EXPECT_TRUE(PayloadMatchesType(MessageType::kRead, DeviceTargetPayload{}));
  EXPECT_FALSE(PayloadMatchesType(MessageType::kRead, WritePayload{}));
  EXPECT_TRUE(PayloadMatchesType(MessageType::kWriteAck, StatusAckPayload{}));
  EXPECT_FALSE(PayloadMatchesType(MessageType::kData, StatusAckPayload{}));
}

// ------------------------------------------------- deployment integration ---

class NetworkedSystem : public ::testing::Test {
 protected:
  NetworkedSystem()
      : manager_(deployment_.AddManager()),
        thing_(deployment_.AddThing("thing-1")),
        client_(deployment_.AddClient("client-1")) {}

  // Plugs and runs until the advertisement lands.
  void PlugAndSettle(ChannelId ch, Peripheral& p) {
    ASSERT_TRUE(thing_.Plug(ch, &p).ok());
    deployment_.RunForMillis(1500);
  }

  Deployment deployment_;
  MicroPnpManager& manager_;
  MicroPnpThing& thing_;
  MicroPnpClient& client_;
};

TEST_F(NetworkedSystem, PlugInFlowInstallsDriverOverTheAir) {
  // The Thing starts with an empty driver store; the driver must arrive from
  // the Manager via messages (4) and (5).
  Tmp36& sensor = deployment_.MakeTmp36();
  EXPECT_FALSE(thing_.drivers().HasDriverFor(kTmp36TypeId));
  PlugAndSettle(0, sensor);

  EXPECT_TRUE(thing_.drivers().HasDriverFor(kTmp36TypeId));
  EXPECT_NE(thing_.drivers().HostForChannel(0), nullptr);
  EXPECT_EQ(manager_.uploads(), 1u);
  EXPECT_GE(thing_.advertisements_sent(), 1u);
  // The Thing joined the peripheral's multicast group.
  EXPECT_TRUE(thing_.node().InGroup(
      PeripheralGroup(thing_.node().prefix(), kTmp36TypeId)));
}

TEST_F(NetworkedSystem, UnsolicitedAdvertisementReachesClients) {
  std::vector<AdvertisedPeripheral> seen;
  client_.set_advertisement_listener(
      [&](const Ip6Address&, const std::vector<AdvertisedPeripheral>& ps) { seen = ps; });
  Tmp36& sensor = deployment_.MakeTmp36();
  PlugAndSettle(0, sensor);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].type, kTmp36TypeId);
  const Tlv* name = seen[0].info.Find(TlvType::kFriendlyName);
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->AsString(), "TMP36");
}

TEST_F(NetworkedSystem, DiscoveryFindsMatchingThings) {
  Tmp36& sensor = deployment_.MakeTmp36();
  PlugAndSettle(0, sensor);

  std::vector<MicroPnpClient::DiscoveredThing> found;
  client_.Discover(kTmp36TypeId, /*window_ms=*/500,
                   [&](Result<std::vector<MicroPnpClient::DiscoveredThing>> results) {
                     ASSERT_TRUE(results.ok());
                     found = std::move(*results);
                   });
  deployment_.RunForMillis(800);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].address, thing_.node().address());
  ASSERT_EQ(found[0].peripherals.size(), 1u);
  EXPECT_EQ(found[0].peripherals[0].type, kTmp36TypeId);
}

TEST_F(NetworkedSystem, DiscoveryForAbsentPeripheralFindsNothing) {
  Tmp36& sensor = deployment_.MakeTmp36();
  PlugAndSettle(0, sensor);
  std::vector<MicroPnpClient::DiscoveredThing> found;
  bool fired = false;
  client_.Discover(kBmp180TypeId, 500,
                   [&](Result<std::vector<MicroPnpClient::DiscoveredThing>> results) {
                     fired = true;
                     ASSERT_TRUE(results.ok());
                     found = std::move(*results);
                   });
  deployment_.RunForMillis(800);
  EXPECT_TRUE(fired);
  EXPECT_TRUE(found.empty());
}

TEST_F(NetworkedSystem, DiscoveryDeduplicatesRepeatedSolicitedReplies) {
  // A fake Thing that answers every (2) twice with the same (3) — what a
  // real Thing produces when a retransmitted discovery elicits a duplicate
  // reply.  The client must surface the Thing once, not once per datagram.
  NetNode* fake = deployment_.AddRelayNode("duplicator");
  fake->JoinGroup(PeripheralGroup(fake->prefix(), kTmp36TypeId));
  fake->BindUdp(kMicroPnpUdpPort, [fake](const Ip6Address& src, const Ip6Address&, uint16_t,
                                         const std::vector<uint8_t>& payload) {
    Result<Message> m = Message::Parse(ByteSpan(payload.data(), payload.size()));
    if (!m.ok() || m->type != MessageType::kPeripheralDiscovery) {
      return;
    }
    AdvertisedPeripheral p;
    p.type = kTmp36TypeId;
    const std::vector<uint8_t> wire =
        MakeAdvertisement(MessageType::kSolicitedAdvertisement, m->sequence, {p}).Serialize();
    fake->SendUdp(src, kMicroPnpUdpPort, wire);
    fake->SendUdp(src, kMicroPnpUdpPort, wire);
  });

  std::vector<MicroPnpClient::DiscoveredThing> found;
  client_.Discover(kTmp36TypeId, 500,
                   [&](Result<std::vector<MicroPnpClient::DiscoveredThing>> results) {
                     ASSERT_TRUE(results.ok());
                     found = std::move(*results);
                   });
  deployment_.RunForMillis(800);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].address, fake->address());
}

TEST_F(NetworkedSystem, RemoteReadReturnsEnvironmentTemperature) {
  Tmp36& sensor = deployment_.MakeTmp36();
  PlugAndSettle(0, sensor);

  std::optional<WireValue> value;
  client_.Read(thing_.node().address(), kTmp36TypeId, [&](Result<WireValue> result) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    value = *result;
  });
  deployment_.RunForMillis(500);
  ASSERT_TRUE(value.has_value());
  const double celsius = value->scalar / 10.0;
  EXPECT_NEAR(celsius, deployment_.environment().TemperatureC(deployment_.scheduler().now()), 0.6);
}

TEST_F(NetworkedSystem, RemoteReadOfRfidCardPayload) {
  Id20La& reader = deployment_.MakeId20La();
  PlugAndSettle(0, reader);

  std::optional<WireValue> value;
  client_.Read(thing_.node().address(), kId20LaTypeId,
               [&](Result<WireValue> result) {
                 if (result.ok()) {
                   value = *result;
                 }
               },
               /*timeout_ms=*/5000);
  deployment_.RunForMillis(200);  // read armed, no card yet
  RfidCard card = {0xde, 0xad, 0xbe, 0xef, 0x01};
  ASSERT_TRUE(reader.PresentCard(card));
  deployment_.RunForMillis(500);

  ASSERT_TRUE(value.has_value());
  ASSERT_TRUE(value->is_array);
  EXPECT_EQ(std::string(value->bytes.begin(), value->bytes.end()), Id20LaPayload(card));
}

TEST_F(NetworkedSystem, ReadTimesOutWhenPeripheralMissing) {
  std::optional<Status> outcome;
  client_.Read(thing_.node().address(), kBmp180TypeId,
               [&](Result<WireValue> result) { outcome = result.status(); },
               /*timeout_ms=*/300);
  deployment_.RunForMillis(600);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->code(), StatusCode::kDeadlineExceeded);
  // The transaction is gone: no pending entry survives its deadline.
  EXPECT_EQ(client_.endpoint().in_flight(), 0u);
}

TEST_F(NetworkedSystem, RemoteWriteActuatesRelay) {
  Relay& relay = deployment_.MakeRelay();
  PlugAndSettle(0, relay);

  std::optional<Status> ack;
  client_.Write(thing_.node().address(), kRelayTypeId, 1,
                [&](Status status) { ack = status; });
  deployment_.RunForMillis(500);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->ok());
  EXPECT_TRUE(relay.closed());

  client_.Write(thing_.node().address(), kRelayTypeId, 0, [](Status) {});
  deployment_.RunForMillis(500);
  EXPECT_FALSE(relay.closed());
}

TEST_F(NetworkedSystem, WriteToAbsentPeripheralReportsNotFound) {
  std::optional<Status> ack;
  client_.Write(thing_.node().address(), kRelayTypeId, 1, [&](Status status) { ack = status; });
  deployment_.RunForMillis(500);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->code(), StatusCode::kNotFound);
}

TEST_F(NetworkedSystem, StreamDeliversPeriodicValues) {
  Hih4030& sensor = deployment_.MakeHih4030();
  PlugAndSettle(0, sensor);

  std::vector<int32_t> values;
  bool closed = false;
  client_.StartStream(thing_.node().address(), kHih4030TypeId, /*period_ms=*/1000,
                      [&](const WireValue& v) { values.push_back(v.scalar); },
                      [&] { closed = true; });
  deployment_.RunForMillis(5600);
  EXPECT_GE(values.size(), 4u);
  EXPECT_LE(values.size(), 6u);
  for (int32_t v : values) {
    EXPECT_GT(v, 0);
    EXPECT_LT(v, 1000);  // 0.1 %RH units
  }

  client_.StopStream(thing_.node().address(), kHih4030TypeId);
  deployment_.RunForMillis(500);
  EXPECT_TRUE(closed);
  const size_t at_stop = values.size();
  deployment_.RunForMillis(3000);
  EXPECT_EQ(values.size(), at_stop);  // no data after (15) closed
}

TEST_F(NetworkedSystem, ManagerRemoteDriverManagement) {
  Tmp36& sensor = deployment_.MakeTmp36();
  PlugAndSettle(0, sensor);

  // (6)/(7) driver discovery.
  std::vector<DeviceTypeId> drivers;
  manager_.DiscoverDrivers(thing_.node().address(), [&](Result<std::vector<DeviceTypeId>> ids) {
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    drivers = std::move(*ids);
  });
  deployment_.RunForMillis(500);
  ASSERT_EQ(drivers.size(), 1u);
  EXPECT_EQ(drivers[0], kTmp36TypeId);

  // (8)/(9) removal is refused while the driver is active.
  std::optional<Status> removal;
  manager_.RemoveDriver(thing_.node().address(), kTmp36TypeId,
                        [&](Status status) { removal = status; });
  deployment_.RunForMillis(500);
  ASSERT_TRUE(removal.has_value());
  EXPECT_FALSE(removal->ok());

  // After unplugging, removal succeeds.
  ASSERT_TRUE(thing_.Unplug(0).ok());
  deployment_.RunForMillis(1000);
  removal.reset();
  manager_.RemoveDriver(thing_.node().address(), kTmp36TypeId,
                        [&](Status status) { removal = status; });
  deployment_.RunForMillis(500);
  ASSERT_TRUE(removal.has_value());
  EXPECT_TRUE(removal->ok());
}

TEST_F(NetworkedSystem, UnplugAdvertisesEmptyPeripheralSet) {
  Tmp36& sensor = deployment_.MakeTmp36();
  PlugAndSettle(0, sensor);
  std::optional<std::vector<AdvertisedPeripheral>> last;
  client_.set_advertisement_listener(
      [&](const Ip6Address&, const std::vector<AdvertisedPeripheral>& ps) { last = ps; });
  ASSERT_TRUE(thing_.Unplug(0).ok());
  deployment_.RunForMillis(1000);
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(last->empty());
}

TEST_F(NetworkedSystem, CachedDriverSkipsManagerRoundTrip) {
  Result<DriverImage> image = CompileDriver(FindBundledDriver(kTmp36TypeId)->source);
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(thing_.PreinstallDriver(*image).ok());

  Tmp36& sensor = deployment_.MakeTmp36();
  PlugAndSettle(0, sensor);
  EXPECT_EQ(manager_.uploads(), 0u);
  EXPECT_NE(thing_.drivers().HostForChannel(0), nullptr);
  ASSERT_TRUE(thing_.last_plug_flow().has_value());
  EXPECT_TRUE(thing_.last_plug_flow()->driver_was_cached);
}

TEST_F(NetworkedSystem, PlugFlowMarksAreOrdered) {
  Tmp36& sensor = deployment_.MakeTmp36();
  PlugAndSettle(0, sensor);
  const PlugFlowMarks& marks = *thing_.last_plug_flow();
  EXPECT_LT(marks.plugged, marks.identified);
  EXPECT_LT(marks.identified, marks.address_generated);
  EXPECT_LT(marks.address_generated, marks.group_joined);
  EXPECT_LE(marks.group_joined, marks.driver_requested);
  EXPECT_LT(marks.driver_requested, marks.driver_received);
  EXPECT_LT(marks.driver_received, marks.driver_installed);
  EXPECT_LT(marks.driver_installed, marks.advertised);
  // Section 6.1 identification window.
  const double ident_ms = (marks.identified - marks.plugged).millis();
  EXPECT_GE(ident_ms, 220.0);
  EXPECT_LE(ident_ms, 300.0);
}

TEST_F(NetworkedSystem, TwoThingsServeTwoClients) {
  MicroPnpThing& thing2 = deployment_.AddThing("thing-2");
  MicroPnpClient& client2 = deployment_.AddClient("client-2");
  Tmp36& t1 = deployment_.MakeTmp36();
  Bmp180& p2 = deployment_.MakeBmp180();
  ASSERT_TRUE(thing_.Plug(0, &t1).ok());
  ASSERT_TRUE(thing2.Plug(0, &p2).ok());
  deployment_.RunForMillis(2000);

  std::optional<WireValue> temperature, pressure;
  client_.Read(thing_.node().address(), kTmp36TypeId, [&](Result<WireValue> r) {
    if (r.ok()) temperature = *r;
  });
  client2.Read(thing2.node().address(), kBmp180TypeId, [&](Result<WireValue> r) {
    if (r.ok()) pressure = *r;
  });
  deployment_.RunForMillis(1000);
  ASSERT_TRUE(temperature.has_value());
  ASSERT_TRUE(pressure.has_value());
  EXPECT_GT(pressure->scalar, 95000);
  EXPECT_LT(pressure->scalar, 107000);
}

// -------------------------------------------------------- address space ----

TEST(AddressSpace, ProvisionalToPermanentLifecycle) {
  AddressSpace space;
  Result<AddressRecord> record =
      space.RequestProvisionalAddress("TMP36", "Analog Devices", "dev@example.com",
                                      "https://example.com/tmp36");
  ASSERT_TRUE(record.ok());
  EXPECT_FALSE(record->permanent);
  // The online tool generated a resistor set for the assigned id.
  IdentCodec codec{IdentCircuitConfig{}};
  EXPECT_EQ(record->resistors, codec.ResistorsForId(record->id));

  // Upload a driver for a *different* device id: rejected.
  Result<DriverImage> tmp36 = CompileDriver(FindBundledDriver(kTmp36TypeId)->source);
  ASSERT_TRUE(tmp36.ok());
  EXPECT_FALSE(space.UploadDriver(record->id, *tmp36).ok());

  // Register the bundled TMP36 id and upload its matching driver: permanent.
  Result<AddressRecord> reg =
      space.RegisterAddress(kTmp36TypeId, "TMP36", "Analog Devices", "a@b.c", "url");
  ASSERT_TRUE(reg.ok());
  ASSERT_TRUE(space.UploadDriver(kTmp36TypeId, *tmp36).ok());
  EXPECT_TRUE(space.Lookup(kTmp36TypeId)->permanent);
  // Immutable: re-registration refused; driver updates still allowed.
  EXPECT_FALSE(space.RegisterAddress(kTmp36TypeId, "X", "Y", "Z", "W").ok());
  EXPECT_TRUE(space.UploadDriver(kTmp36TypeId, *tmp36).ok());
}

TEST(AddressSpace, RejectsReservedAndIncompleteRequests) {
  AddressSpace space;
  EXPECT_FALSE(space.RegisterAddress(kDeviceTypeAllPeripherals, "a", "b", "c", "d").ok());
  EXPECT_FALSE(space.RegisterAddress(kDeviceTypeAllClients, "a", "b", "c", "d").ok());
  EXPECT_FALSE(space.RequestProvisionalAddress("", "org", "mail", "url").ok());
}

}  // namespace
}  // namespace micropnp
