// Tests for the μPnP execution environment: event router, VM, native
// libraries, driver manager, peripheral controller, footprint model — plus
// end-to-end runs of every bundled driver against its simulated peripheral.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"
#include "src/periph/bmp180.h"
#include "src/periph/hih4030.h"
#include "src/periph/id20la.h"
#include "src/periph/relay.h"
#include "src/periph/tmp36.h"
#include "src/rt/driver_manager.h"
#include "src/rt/event_router.h"
#include "src/rt/footprint.h"
#include "src/rt/peripheral_controller.h"
#include "src/rt/vm.h"

namespace micropnp {
namespace {

// --------------------------------------------------------------- router ----

TEST(EventRouter, FifoOrderForRegularEvents) {
  EventRouter router;
  for (int i = 0; i < 5; ++i) {
    router.Post(0, Event::Of(kEventRead, i));
  }
  std::vector<int32_t> order;
  router.ProcessAll([&](int, const Event& e) { order.push_back(e.args[0]); });
  EXPECT_EQ(order, (std::vector<int32_t>{0, 1, 2, 3, 4}));
}

TEST(EventRouter, ErrorEventsPreempt) {
  // Section 4.2: "a regular FIFO queue for event processing and a priority
  // queue for dispatching error messages".
  EventRouter router;
  router.Post(0, Event::Of(kEventRead));
  router.Post(0, Event::Of(kErrorTimeout));  // auto-routes to priority queue
  std::vector<EventId> order;
  router.ProcessAll([&](int, const Event& e) { order.push_back(e.id); });
  EXPECT_EQ(order, (std::vector<EventId>{kErrorTimeout, kEventRead}));
}

TEST(EventRouter, QueueOverflowDropsAndCounts) {
  EventRouter router;
  for (size_t i = 0; i < EventRouter::kQueueDepth + 3; ++i) {
    router.Post(0, Event::Of(kEventRead));
  }
  EXPECT_EQ(router.pending(), EventRouter::kQueueDepth);
  EXPECT_EQ(router.events_dropped(), 3u);
}

TEST(EventRouter, PerEventCostMatchesSection62) {
  // 77.79 us per routed event at 16 MHz.
  EventRouter router;
  const int kEvents = 1000;
  for (int batch = 0; batch < kEvents / 8; ++batch) {
    for (int i = 0; i < 8; ++i) {
      router.Post(0, Event::Of(kEventRead));
    }
    router.ProcessAll([](int, const Event&) {});
  }
  const double us_per_event = router.MicrosAtMcuClock() / kEvents;
  EXPECT_NEAR(us_per_event, 77.79, 1.0);
}

TEST(EventRouter, CostScalesLinearly) {
  EventRouter a, b;
  auto run = [](EventRouter& r, int n) {
    for (int i = 0; i < n; ++i) {
      r.Post(0, Event::Of(kEventRead));
      r.ProcessAll([](int, const Event&) {});
    }
  };
  run(a, 100);
  run(b, 1000);
  EXPECT_NEAR(static_cast<double>(b.cycles()) / static_cast<double>(a.cycles()), 10.0, 0.01);
}

TEST(EventRouter, WakeupHookFiresOnPost) {
  EventRouter router;
  int wakeups = 0;
  router.set_on_post([&] { ++wakeups; });
  router.Post(0, Event::Of(kEventRead));
  router.PostError(0, Event::Of(kErrorTimeout));
  EXPECT_EQ(wakeups, 2);
}

TEST(EventRouter, ProcessAllBoundedByEntriesAtEntry) {
  // A sink that posts a new event on every dispatch must not livelock the
  // drain: ProcessAll handles only what was pending when it was called.
  EventRouter router;
  router.Post(0, Event::Of(kEventRead));
  router.Post(0, Event::Of(kEventRead));
  size_t reposts = 0;
  const size_t drained = router.ProcessAll([&](int, const Event&) {
    router.Post(0, Event::Of(kEventTick));
    ++reposts;
  });
  EXPECT_EQ(drained, 2u);
  EXPECT_EQ(reposts, 2u);
  EXPECT_EQ(router.pending(), 2u);  // the re-posts wait for the next drain
}

TEST(EventRouter, SelfRepostingDriverDrainTerminates) {
  // End-to-end shape of the livelock: a driver whose handler re-signals
  // itself on every dispatch.  Each drain terminates; pending work carries
  // over instead of spinning forever inside one call.
  Scheduler sched;
  EventRouter router;
  DriverManager manager(sched, router);
  ChannelBus bus(sched);
  Result<DriverImage> image = CompileDriver(R"(
device 1;
int32_t n;
event init():
    signal this.spin();
event destroy():
    n = 0;
event spin():
    n += 1;
    signal this.spin();
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  ASSERT_TRUE(manager.InstallImage(*image).ok());
  ASSERT_TRUE(manager.Activate(0, image->device_id, bus).ok());

  // Every pump must return after a bounded number of dispatches.
  for (int pump = 0; pump < 10; ++pump) {
    EXPECT_LE(manager.DispatchPending(), EventRouter::kQueueDepth);
  }
  EXPECT_GE(manager.HostForChannel(0)->vm().global(0), 9);  // it did make progress
  ASSERT_TRUE(manager.Deactivate(0).ok());
}

// ------------------------------------------------------------------- vm ----

// Compiles a snippet wrapped in a minimal driver, decodes it, and runs
// handlers against a recording VmHost.
class VmFixture : public VmHost {
 public:
  explicit VmFixture(const std::string& source) {
    Result<DriverImage> image = CompileDriver(source);
    EXPECT_TRUE(image.ok()) << image.status().ToString();
    if (!image.ok()) {
      return;
    }
    Result<std::shared_ptr<const DecodedImage>> decoded = DecodedImage::DecodeShared(*image);
    EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
    if (decoded.ok()) {
      vm_ = std::make_unique<Vm>(*decoded);
    }
  }

  Vm::ExecResult Run(const Event& event) { return vm_->Dispatch(event, this); }

  void OnSelfSignal(const Event& e) override { self_signals_.push_back(e); }
  void OnLibSignal(LibraryId lib, LibraryFunctionId fn,
                   std::span<const int32_t> args) override {
    lib_calls_.push_back({lib, fn, std::vector<int32_t>(args.begin(), args.end())});
  }

  struct LibCall {
    LibraryId lib;
    LibraryFunctionId fn;
    std::vector<int32_t> args;
  };

  std::unique_ptr<Vm> vm_;
  std::vector<Event> self_signals_;
  std::vector<LibCall> lib_calls_;
};

TEST(Vm, ArithmeticAndReturn) {
  VmFixture fx(R"(
device 1;
int32_t r;
event init():
    r = (7 * 6 - 2) / 4;
event destroy():
    r = 0;
event read():
    return r % 7;
)");
  ASSERT_NE(fx.vm_, nullptr);
  EXPECT_EQ(fx.Run(Event::Of(kEventInit)).outcome, Vm::Outcome::kDone);
  EXPECT_EQ(fx.vm_->global(0), 10);
  Vm::ExecResult r = fx.Run(Event::Of(kEventRead));
  EXPECT_EQ(r.outcome, Vm::Outcome::kValue);
  EXPECT_EQ(r.value, 3);
}

TEST(Vm, TypeTruncationOnStore) {
  VmFixture fx(R"(
device 1;
uint8_t u8;
int8_t s8;
int16_t s16;
bool b;
event init():
    u8 = 260;
    s8 = 130;
    s16 = 70000;
    b = 42;
event destroy():
    u8 = 0;
)");
  fx.Run(Event::Of(kEventInit));
  EXPECT_EQ(fx.vm_->global(0), 4);       // 260 & 0xff
  EXPECT_EQ(fx.vm_->global(1), -126);    // 130 as int8
  EXPECT_EQ(fx.vm_->global(2), 4464);    // 70000 as int16
  EXPECT_EQ(fx.vm_->global(3), 1);       // bool normalizes
}

TEST(Vm, ControlFlowLoops) {
  VmFixture fx(R"(
device 1;
int32_t sum, i;
event init():
    sum = 0;
    i = 1;
    while i <= 10:
        sum += i;
        i += 1;
event destroy():
    sum = 0;
event read():
    return sum;
)");
  fx.Run(Event::Of(kEventInit));
  EXPECT_EQ(fx.Run(Event::Of(kEventRead)).value, 55);
}

TEST(Vm, ShortCircuitLogic) {
  VmFixture fx(R"(
device 1;
int32_t r;
event init():
    if 1 == 1 or 1 / 0 == 0:
        r = 1;
event destroy():
    r = 0;
)");
  // Without short-circuit, `1/0` would trap.
  Vm::ExecResult result = fx.Run(Event::Of(kEventInit));
  EXPECT_EQ(result.outcome, Vm::Outcome::kDone);
  EXPECT_EQ(fx.vm_->global(0), 1);
}

TEST(Vm, ArrayStoreLoadWithPostIncrement) {
  VmFixture fx(R"(
device 1;
uint8_t idx, buf[4];
event init():
    idx = 0;
    buf[idx++] = 10;
    buf[idx++] = 20;
event destroy():
    idx = 0;
event read():
    return buf[0] + buf[1] + idx;
)");
  fx.Run(Event::Of(kEventInit));
  EXPECT_EQ(fx.Run(Event::Of(kEventRead)).value, 32);
}

TEST(Vm, ReturnArrayViewsVmBuffer) {
  VmFixture fx(R"(
device 1;
uint8_t buf[3];
event init():
    buf[0] = 1;
    buf[1] = 2;
    buf[2] = 3;
event destroy():
    buf[0] = 0;
event read():
    return buf;
)");
  fx.Run(Event::Of(kEventInit));
  Vm::ExecResult r = fx.Run(Event::Of(kEventRead));
  EXPECT_EQ(r.outcome, Vm::Outcome::kArray);
  // Zero-allocation result: a view into the VM's own array storage.
  EXPECT_EQ(std::vector<uint8_t>(r.array.begin(), r.array.end()),
            (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.array.data(), fx.vm_->array(0).data());
}

// The runtime traps below use an event argument as the dangerous value: the
// abstract interpreter cannot prove the site unsafe (the argument is
// arbitrary), so the image installs and the check stays as a runtime trap.
// The provable variants (a constant zero divisor, a constant out-of-bounds
// index, `while true:`) are now rejected at decode time — see
// tests/abstract_interp_test.cpp.

TEST(Vm, DivisionByZeroTraps) {
  VmFixture fx(R"(
device 1;
int32_t r;
event init():
    r = 0;
event destroy():
    r = 0;
event write(int32_t value):
    r = 5 / value;
)");
  EXPECT_EQ(fx.Run(Event::Of(kEventWrite, 5)).outcome, Vm::Outcome::kDone);
  Vm::ExecResult result = fx.Run(Event::Of(kEventWrite, 0));
  EXPECT_EQ(result.outcome, Vm::Outcome::kTrap);
  EXPECT_NE(result.trap.message().find("division by zero"), std::string::npos);
}

TEST(Vm, ArrayBoundsTrap) {
  VmFixture fx(R"(
device 1;
uint8_t buf[2];
event init():
    buf[0] = 0;
event destroy():
    buf[0] = 0;
event write(int32_t value):
    buf[value] = 1;
)");
  EXPECT_EQ(fx.Run(Event::Of(kEventWrite, 1)).outcome, Vm::Outcome::kDone);
  EXPECT_EQ(fx.Run(Event::Of(kEventWrite, 9)).outcome, Vm::Outcome::kTrap);
}

TEST(Vm, WatchdogStopsRunawayHandler) {
  VmFixture fx(R"(
device 1;
int32_t i;
event init():
    i = 0;
event destroy():
    i = 0;
event write(int32_t value):
    while value != 0:
        i += 1;
)");
  EXPECT_EQ(fx.Run(Event::Of(kEventWrite, 0)).outcome, Vm::Outcome::kDone);
  Vm::ExecResult result = fx.Run(Event::Of(kEventWrite, 1));
  EXPECT_EQ(result.outcome, Vm::Outcome::kTrap);
  EXPECT_NE(result.trap.message().find("watchdog"), std::string::npos);
}

TEST(Vm, NoHandlerOutcome) {
  VmFixture fx(R"(
device 1;
int32_t x;
event init():
    x = 0;
event destroy():
    x = 0;
)");
  EXPECT_EQ(fx.Run(Event::Of(kEventRead)).outcome, Vm::Outcome::kNoHandler);
}

TEST(Vm, SignalsReachSinks) {
  VmFixture fx(R"(
device 1;
import adc;
event init():
    signal adc.init(ADC_REF_VDD, ADC_RES_10BIT);
    signal this.helper();
event destroy():
    signal adc.reset();
event helper():
    signal adc.read();
)");
  fx.Run(Event::Of(kEventInit));
  ASSERT_EQ(fx.lib_calls_.size(), 1u);
  EXPECT_EQ(fx.lib_calls_[0].lib, kLibAdc);
  EXPECT_EQ(fx.lib_calls_[0].fn, kAdcInit);
  EXPECT_EQ(fx.lib_calls_[0].args, (std::vector<int32_t>{0, 10}));
  ASSERT_EQ(fx.self_signals_.size(), 1u);
  EXPECT_EQ(fx.self_signals_[0].id, kEventCustomBase);
}

TEST(Vm, CycleAccountingAccumulates) {
  VmFixture fx(R"(
device 1;
int32_t x;
event init():
    x = 1 + 2;
event destroy():
    x = 0;
)");
  Vm::ExecResult r = fx.Run(Event::Of(kEventInit));
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.cycles, r.instructions);  // every op costs > 1 cycle
  EXPECT_EQ(fx.vm_->total_instructions(), r.instructions);
}

// Section 6.2 guard: the decoded fast path must charge exactly the same
// instruction and cycle counts as the seed byte-walking interpreter, for
// every bundled driver and the whole lifecycle event vocabulary.
TEST(Vm, DecodedAccountingBitIdenticalToReference) {
  // A null host: signals vanish, which keeps both paths deterministic.
  struct NullHost final : VmHost {
    void OnSelfSignal(const Event&) override {}
    void OnLibSignal(LibraryId, LibraryFunctionId, std::span<const int32_t>) override {}
  } host;

  for (const BundledDriver& d : BundledDrivers()) {
    Result<DriverImage> image = CompileDriver(d.source);
    ASSERT_TRUE(image.ok()) << d.name;
    Result<std::shared_ptr<const DecodedImage>> decoded = DecodedImage::DecodeShared(*image);
    ASSERT_TRUE(decoded.ok()) << d.name << ": " << decoded.status().ToString();

    Vm fast(*decoded);
    Vm reference(*decoded);
    const Event events[] = {Event::Of(kEventInit),        Event::Of(kEventRead),
                            Event::Of(kEventWrite, 1),    Event::Of(kEventNewData, 512),
                            Event::Of(kEventTick),        Event::Of(kEventDestroy)};
    for (const Event& event : events) {
      Vm::ExecResult a = fast.Dispatch(event, &host);
      Vm::ExecResult b = reference.DispatchReference(event, &host);
      EXPECT_EQ(a.instructions, b.instructions) << d.name << " event " << int(event.id);
      EXPECT_EQ(a.cycles, b.cycles) << d.name << " event " << int(event.id);
      EXPECT_EQ(a.outcome, b.outcome) << d.name << " event " << int(event.id);
      EXPECT_EQ(a.value, b.value) << d.name << " event " << int(event.id);
    }
    EXPECT_EQ(fast.total_instructions(), reference.total_instructions()) << d.name;
    EXPECT_EQ(fast.total_cycles(), reference.total_cycles()) << d.name;
  }
}

// Regression for the seed's handler-argument copy: the loop guarded on
// event.args.size() but consulted event.argc, and never clamped the
// handler's declared count to the 4 local slots.  An event claiming more
// arguments than it carries must bind only what exists; extras read as zero.
TEST(Vm, HandlerArgumentBindingClampsToLocalsAndEvent) {
  VmFixture fx(R"(
device 1;
event init():
    signal this.sum(1, 2, 3, 4);
event destroy():
    signal this.sum(0, 0, 0, 0);
event sum(int32_t a, int32_t b, int32_t c, int32_t d):
    return a + b + c + d;
)");
  ASSERT_NE(fx.vm_, nullptr);

  // Four declared, four provided.
  Event full;
  full.id = kEventCustomBase;
  full.argc = 4;
  full.args = {10, 20, 30, 40};
  EXPECT_EQ(fx.Run(full).value, 100);

  // An event whose argc over-claims what the 4-slot payload can carry.
  Event overclaimed = full;
  overclaimed.argc = 9;
  EXPECT_EQ(fx.Run(overclaimed).value, 100);

  // Fewer arguments than the handler declares: missing ones read as zero.
  Event partial;
  partial.id = kEventCustomBase;
  partial.argc = 2;
  partial.args = {10, 20, 999, 999};
  EXPECT_EQ(fx.Run(partial).value, 30);

  // The reference path applies the same clamp.
  struct NullHost final : VmHost {
    void OnSelfSignal(const Event&) override {}
    void OnLibSignal(LibraryId, LibraryFunctionId, std::span<const int32_t>) override {}
  } host;
  EXPECT_EQ(fx.vm_->DispatchReference(overclaimed, &host).value, 100);
  EXPECT_EQ(fx.vm_->DispatchReference(partial, &host).value, 30);
}

// ----------------------------------------------- end-to-end driver runs ----

// Full runtime harness: controller + manager with all bundled drivers
// installed; plugging a peripheral auto-activates its driver.
class RuntimeHarness {
 public:
  RuntimeHarness() : rng_(42), manager_(scheduler_, router_), controller_(scheduler_, {}, rng_) {
    for (const BundledDriver& d : BundledDrivers()) {
      Result<DriverImage> image = CompileDriver(d.source);
      EXPECT_TRUE(image.ok()) << d.name << ": " << image.status().ToString();
      if (image.ok()) {
        EXPECT_TRUE(manager_.InstallImage(*image).ok());
      }
    }
    controller_.set_change_listener([this](ChannelId ch, DeviceTypeId id, bool connected) {
      if (connected) {
        EXPECT_TRUE(manager_.Activate(ch, id, controller_.bus(ch)).ok());
      } else {
        EXPECT_TRUE(manager_.Deactivate(ch).ok());
      }
    });
  }

  // Plugs and waits for identification + driver init.
  void PlugAndSettle(ChannelId ch, Peripheral* p) {
    ASSERT_TRUE(controller_.Plug(ch, p).ok());
    scheduler_.RunUntil(scheduler_.now() + SimTime::FromMillis(400));
    ASSERT_NE(manager_.HostForChannel(ch), nullptr) << "driver did not activate";
  }

  // Issues a remote-style read and runs the simulation until a value is
  // produced or the deadline passes.
  std::optional<ProducedValue> Read(ChannelId ch, double deadline_ms = 1000.0) {
    DriverHost* host = manager_.HostForChannel(ch);
    if (host == nullptr) {
      return std::nullopt;
    }
    std::optional<ProducedValue> produced;
    host->set_result_handler([&](const ProducedValue& v) { produced = v; });
    router_.Post(ch, Event::Of(kEventRead));
    const SimTime deadline = scheduler_.now() + SimTime::FromMillis(deadline_ms);
    while (!produced.has_value() && (scheduler_.now() < deadline) && !scheduler_.empty()) {
      scheduler_.Step();
    }
    return produced;
  }

  Scheduler scheduler_;
  EventRouter router_;
  Rng rng_;
  Environment env_;
  DriverManager manager_;
  PeripheralController controller_;
};

TEST(EndToEnd, Tmp36DriverMeasuresEnvironmentTemperature) {
  RuntimeHarness h;
  Tmp36 sensor(h.env_);
  h.PlugAndSettle(0, &sensor);
  std::optional<ProducedValue> v = h.Read(0);
  ASSERT_TRUE(v.has_value());
  const double celsius = static_cast<double>(v->scalar) / 10.0;  // driver returns 0.1 degC
  EXPECT_NEAR(celsius, h.env_.TemperatureC(h.scheduler_.now()), 0.5);
}

TEST(EndToEnd, Hih4030DriverMeasuresHumidity) {
  RuntimeHarness h;
  Hih4030 sensor(h.env_);
  h.PlugAndSettle(0, &sensor);
  std::optional<ProducedValue> v = h.Read(0);
  ASSERT_TRUE(v.has_value());
  const double rh = static_cast<double>(v->scalar) / 10.0;
  EXPECT_NEAR(rh, h.env_.HumidityPct(h.scheduler_.now()), 1.5);
}

TEST(EndToEnd, Bmp180DriverRunsFullCompensationPipeline) {
  RuntimeHarness h;
  Bmp180 sensor(h.env_);
  h.PlugAndSettle(0, &sensor);
  std::optional<ProducedValue> v = h.Read(0);
  ASSERT_TRUE(v.has_value());
  // First read includes full calibration readout (11 register reads).
  EXPECT_NEAR(static_cast<double>(v->scalar), h.env_.PressurePa(h.scheduler_.now()), 40.0);

  // Second read skips calibration and still works.
  std::optional<ProducedValue> v2 = h.Read(0);
  ASSERT_TRUE(v2.has_value());
  EXPECT_NEAR(static_cast<double>(v2->scalar), h.env_.PressurePa(h.scheduler_.now()), 40.0);
}

TEST(EndToEnd, Id20LaDriverAssemblesCardFrames) {
  RuntimeHarness h;
  Id20La reader;
  h.PlugAndSettle(0, &reader);

  DriverHost* host = h.manager_.HostForChannel(0);
  std::optional<ProducedValue> produced;
  host->set_result_handler([&](const ProducedValue& v) { produced = v; });

  h.router_.Post(0, Event::Of(kEventRead));  // arm the reader
  h.scheduler_.RunUntil(h.scheduler_.now() + SimTime::FromMillis(5));

  RfidCard card = {0x4a, 0x00, 0xd2, 0x3f, 0x81};
  ASSERT_TRUE(reader.PresentCard(card));
  h.scheduler_.RunUntil(h.scheduler_.now() + SimTime::FromMillis(50));

  ASSERT_TRUE(produced.has_value());
  ASSERT_TRUE(produced->is_array);
  const std::string payload(produced->bytes.begin(), produced->bytes.end());
  EXPECT_EQ(payload, Id20LaPayload(card));
  EXPECT_TRUE(ValidateId20LaPayload(payload));
}

TEST(EndToEnd, RelayDriverWritesAndReadsBack) {
  RuntimeHarness h;
  Relay relay;
  h.PlugAndSettle(0, &relay);

  h.router_.Post(0, Event::Of(kEventWrite, 1));
  h.scheduler_.RunUntil(h.scheduler_.now() + SimTime::FromMillis(5));
  EXPECT_TRUE(relay.closed());

  std::optional<ProducedValue> v = h.Read(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->scalar, 1);

  h.router_.Post(0, Event::Of(kEventWrite, 0));
  h.scheduler_.RunUntil(h.scheduler_.now() + SimTime::FromMillis(5));
  EXPECT_FALSE(relay.closed());
  EXPECT_EQ(relay.switch_count(), 2u);
}

TEST(EndToEnd, UnplugFiresDestroyAndReleasesUart) {
  RuntimeHarness h;
  Id20La reader;
  h.PlugAndSettle(0, &reader);
  EXPECT_TRUE(h.controller_.bus(0).uart().initialized());  // driver claimed it

  ASSERT_TRUE(h.controller_.Unplug(0).ok());
  h.scheduler_.RunUntil(h.scheduler_.now() + SimTime::FromMillis(400));
  EXPECT_EQ(h.manager_.HostForChannel(0), nullptr);
  EXPECT_FALSE(h.controller_.bus(0).uart().initialized());  // destroy released it
}

TEST(EndToEnd, HotSwapBetweenPeripheralTypes) {
  RuntimeHarness h;
  Tmp36 temp(h.env_);
  h.PlugAndSettle(0, &temp);
  EXPECT_EQ(h.manager_.HostForChannel(0)->device_id(), kTmp36TypeId);

  ASSERT_TRUE(h.controller_.Unplug(0).ok());
  h.scheduler_.RunUntil(h.scheduler_.now() + SimTime::FromMillis(400));

  Bmp180 pressure(h.env_);
  h.PlugAndSettle(0, &pressure);
  EXPECT_EQ(h.manager_.HostForChannel(0)->device_id(), kBmp180TypeId);
  std::optional<ProducedValue> v = h.Read(0);
  ASSERT_TRUE(v.has_value());
}

TEST(EndToEnd, ThreePeripheralsConcurrently) {
  RuntimeHarness h;
  Tmp36 temp(h.env_);
  Hih4030 humidity(h.env_);
  Relay relay;
  ASSERT_TRUE(h.controller_.Plug(0, &temp).ok());
  ASSERT_TRUE(h.controller_.Plug(1, &humidity).ok());
  ASSERT_TRUE(h.controller_.Plug(2, &relay).ok());
  h.scheduler_.RunUntil(h.scheduler_.now() + SimTime::FromMillis(800));
  EXPECT_EQ(h.manager_.active_hosts(), 3u);
  EXPECT_TRUE(h.Read(0).has_value());
  EXPECT_TRUE(h.Read(1).has_value());
  EXPECT_TRUE(h.Read(2).has_value());
}

TEST(EndToEnd, UartInUseErrorReachesSecondDriver) {
  // Two UART drivers on the same channel bus cannot coexist; the second
  // init must raise uartInUse (Listing 1's error path).  We simulate by
  // claiming the port before the driver initializes.
  RuntimeHarness h;
  Id20La reader;
  ASSERT_TRUE(h.controller_.Plug(0, &reader).ok());
  ASSERT_TRUE(h.controller_.bus(0).uart().Init(UartConfig{}).ok());  // usurp the port
  h.scheduler_.RunUntil(h.scheduler_.now() + SimTime::FromMillis(400));
  // Driver activated but its init hit uartInUse -> driver signalled destroy.
  DriverHost* host = h.manager_.HostForChannel(0);
  ASSERT_NE(host, nullptr);
  EXPECT_GE(host->events_handled(), 2u);  // init + uartInUse at minimum
}

// ------------------------------------------------------- driver manager ----

TEST(DriverManager, InstallRemoveDiscover) {
  Scheduler sched;
  EventRouter router;
  DriverManager manager(sched, router);
  Result<DriverImage> image = CompileDriver(BundledDrivers()[0].source);
  ASSERT_TRUE(image.ok());

  EXPECT_FALSE(manager.HasDriverFor(image->device_id));
  ASSERT_TRUE(manager.InstallImage(*image).ok());
  EXPECT_TRUE(manager.HasDriverFor(image->device_id));
  EXPECT_EQ(manager.InstalledDrivers().size(), 1u);
  ASSERT_TRUE(manager.RemoveImage(image->device_id).ok());
  EXPECT_EQ(manager.RemoveImage(image->device_id).code(), StatusCode::kNotFound);
}

TEST(DriverManager, RejectsReservedDeviceIds) {
  Scheduler sched;
  EventRouter router;
  DriverManager manager(sched, router);
  DriverImage image;
  image.device_id = kDeviceTypeAllPeripherals;
  EXPECT_FALSE(manager.InstallImage(image).ok());
  image.device_id = kDeviceTypeAllClients;
  EXPECT_FALSE(manager.InstallImage(image).ok());
}

TEST(DriverManager, CannotRemoveImageInUse) {
  Scheduler sched;
  EventRouter router;
  DriverManager manager(sched, router);
  ChannelBus bus(sched);
  Result<DriverImage> image = CompileDriver(BundledDrivers()[0].source);
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(manager.InstallImage(*image).ok());
  ASSERT_TRUE(manager.Activate(0, image->device_id, bus).ok());
  EXPECT_EQ(manager.RemoveImage(image->device_id).code(), StatusCode::kBusy);
  ASSERT_TRUE(manager.Deactivate(0).ok());
  EXPECT_TRUE(manager.RemoveImage(image->device_id).ok());
}

TEST(DriverManager, DecodeCacheSkipsVerifyOnReinstall) {
  Scheduler sched;
  EventRouter router;
  DriverManager manager(sched, router);
  Result<DriverImage> image = CompileDriver(BundledDrivers()[0].source);
  ASSERT_TRUE(image.ok());

  ASSERT_TRUE(manager.InstallImage(*image).ok());
  EXPECT_EQ(manager.decode_cache_hits(), 0u);

  // Re-deploying byte-identical bytes hits the CRC-keyed cache...
  ASSERT_TRUE(manager.InstallImage(*image).ok());
  EXPECT_EQ(manager.decode_cache_hits(), 1u);

  // ...even across a remove (re-plugging the same device type is free).
  ASSERT_TRUE(manager.RemoveImage(image->device_id).ok());
  ASSERT_TRUE(manager.InstallImage(*image).ok());
  EXPECT_EQ(manager.decode_cache_hits(), 2u);

  // Every host for the device type shares one decoded image.
  ChannelBus bus_a(sched), bus_b(sched);
  ASSERT_TRUE(manager.Activate(0, image->device_id, bus_a).ok());
  ASSERT_TRUE(manager.Activate(1, image->device_id, bus_b).ok());
  EXPECT_EQ(&manager.HostForChannel(0)->vm().decoded(),
            &manager.HostForChannel(1)->vm().decoded());
}

TEST(DriverManager, InstallRejectsStaticallyInvalidImage) {
  // Load-time verification: a corrupt image is refused at DEPLOY time with a
  // Status, never discovered mid-handler.
  Scheduler sched;
  EventRouter router;
  DriverManager manager(sched, router);
  Result<DriverImage> image = CompileDriver(BundledDrivers()[0].source);
  ASSERT_TRUE(image.ok());
  DriverImage corrupt = *image;
  corrupt.code[0] = 0xee;  // not an opcode
  const Status status = manager.InstallImage(corrupt);
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
  EXPECT_NE(status.message().find("invalid opcode"), std::string::npos);
  EXPECT_FALSE(manager.HasDriverFor(corrupt.device_id));
}

TEST(DriverManager, ActivateWithoutImageFails) {
  Scheduler sched;
  EventRouter router;
  DriverManager manager(sched, router);
  ChannelBus bus(sched);
  EXPECT_EQ(manager.Activate(0, 0xdeadbeef, bus).code(), StatusCode::kNotFound);
}

// -------------------------------------------------- peripheral controller --

TEST(PeripheralController, ScanTakesIdentificationTime) {
  Scheduler sched;
  Rng rng(7);
  PeripheralController controller(sched, ControlBoardConfig{}, rng);
  Environment env;
  Tmp36 sensor(env);

  bool connected = false;
  double connect_time_ms = 0;
  controller.set_change_listener([&](ChannelId, DeviceTypeId id, bool is_connected) {
    connected = is_connected;
    connect_time_ms = sched.now().millis();
    EXPECT_EQ(id, kTmp36TypeId);
  });
  ASSERT_TRUE(controller.Plug(0, &sensor).ok());
  sched.Run();
  EXPECT_TRUE(connected);
  // Section 6.1: identification takes 220..300 ms.
  EXPECT_GE(connect_time_ms, 220.0);
  EXPECT_LE(connect_time_ms, 300.0);
}

TEST(PeripheralController, MuxesBusAfterIdentification) {
  Scheduler sched;
  Rng rng(8);
  PeripheralController controller(sched, ControlBoardConfig{}, rng);
  Id20La reader;
  ASSERT_TRUE(controller.Plug(1, &reader).ok());
  EXPECT_EQ(controller.bus(1).selected(), std::nullopt);  // not yet identified
  sched.Run();
  EXPECT_TRUE(controller.bus(1).IsSelected(BusKind::kUart));
  EXPECT_EQ(controller.identified(1), kId20LaTypeId);
}

TEST(PeripheralController, UnplugNotifiesDisconnect) {
  Scheduler sched;
  Rng rng(9);
  PeripheralController controller(sched, ControlBoardConfig{}, rng);
  Environment env;
  Tmp36 sensor(env);
  std::vector<bool> notifications;
  controller.set_change_listener(
      [&](ChannelId, DeviceTypeId, bool is_connected) { notifications.push_back(is_connected); });
  ASSERT_TRUE(controller.Plug(0, &sensor).ok());
  sched.Run();
  ASSERT_TRUE(controller.Unplug(0).ok());
  sched.Run();
  EXPECT_EQ(notifications, (std::vector<bool>{true, false}));
  EXPECT_EQ(controller.identified(0), std::nullopt);
}

// ------------------------------------------------------------ footprint ----

TEST(Footprint, MatchesTable2Structure) {
  std::vector<FootprintEntry> rows = EmbeddedFootprint();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].component, "Peripheral Controller");
  EXPECT_EQ(rows[1].component, "uPnP Virtual Machine");

  FootprintEntry total = EmbeddedFootprintTotal();
  // Paper totals: 14231 B flash (10.8 %), 1518 B RAM (9.2 %).  The model is
  // calibrated, so require agreement within 10 %.
  EXPECT_NEAR(static_cast<double>(total.flash_bytes), 14231.0, 1423.0);
  EXPECT_NEAR(static_cast<double>(total.ram_bytes), 1518.0, 152.0);
  EXPECT_LT(total.flash_pct(), 12.0);
  EXPECT_LT(total.ram_pct(), 11.0);
}

TEST(Footprint, VmRowTracksRealDimensions) {
  // The VM row derives from the real opcode count and stack depth; moving
  // either must move the row.  (Guard against the model drifting from the
  // implementation.)
  std::vector<FootprintEntry> rows = EmbeddedFootprint();
  const FootprintEntry& vm = rows[1];
  EXPECT_EQ(vm.flash_bytes, 40u * 160u + 628u);
  EXPECT_GE(vm.ram_bytes, kVmStackDepth * 4);
}

}  // namespace
}  // namespace micropnp
