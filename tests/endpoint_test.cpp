// ProtoEndpoint: the typed request/response core of the interaction
// protocol.  Covers the transaction lifecycle (exactly-once completion,
// deadlines, cancellation, retransmit-with-backoff), the (peer, sequence)
// matching rules (stale, duplicate and wrapped-sequence replies), the
// regression tests for the seed's pending-table leaks (manager driver
// operations, client stream requests), and wire robustness: truncated and
// garbage datagrams must parse-fail cleanly and never crash or corrupt
// endpoint state.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <optional>
#include <set>

#include "src/common/rng.h"
#include "src/core/deployment.h"
#include "src/proto/endpoint.h"
#include "tests/message_corpus.h"

namespace micropnp {
namespace {

// --------------------------------------------------------------- harness ----
// Two bare fabric nodes with a ProtoEndpoint on the requester and a
// scriptable responder, for precise control over replies.

class EndpointHarness : public ::testing::Test {
 protected:
  static constexpr size_t kCapacity = 4;

  EndpointHarness() {
    requester_node_ = deployment_.AddRelayNode("requester");
    responder_node_ = deployment_.AddRelayNode("responder");
    endpoint_ = std::make_unique<ProtoEndpoint>(deployment_.scheduler(), requester_node_,
                                                kCapacity);
    requester_node_->BindUdp(
        kMicroPnpUdpPort, [this](const Ip6Address& src, const Ip6Address&, uint16_t,
                                 const std::vector<uint8_t>& payload) {
          Result<Message> m = Message::Parse(ByteSpan(payload.data(), payload.size()));
          if (m.ok()) {
            (void)endpoint_->HandleReply(src, *m);
          }
        });
    responder_node_->BindUdp(
        kMicroPnpUdpPort, [this](const Ip6Address& src, const Ip6Address&, uint16_t,
                                 const std::vector<uint8_t>& payload) {
          Result<Message> m = Message::Parse(ByteSpan(payload.data(), payload.size()));
          if (!m.ok()) {
            return;
          }
          requests_seen_.push_back(*m);
          if (responder_) {
            responder_(src, *m);
          }
        });
  }

  // Sends a read request; the returned flag counts handler invocations.
  ProtoEndpoint::RequestId SendRead(std::shared_ptr<int> fires,
                                    std::shared_ptr<Status> last_status,
                                    const RequestOptions& options = RequestOptions{}) {
    return endpoint_->SendRequest(
        responder_node_->address(), MessageType::kRead, DeviceTargetPayload{kTmp36TypeId},
        {MessageType::kData},
        [fires, last_status](Result<Message> reply) {
          ++*fires;
          *last_status = reply.status();
        },
        options);
  }

  // A well-formed (11) data reply with the given sequence.
  std::vector<uint8_t> DataReply(SequenceNumber seq) {
    WireValue v;
    v.scalar = 215;
    return MakeMessage(MessageType::kData, seq, ValuePayload{kTmp36TypeId, v}).Serialize();
  }

  Deployment deployment_;
  NetNode* requester_node_ = nullptr;
  NetNode* responder_node_ = nullptr;
  std::unique_ptr<ProtoEndpoint> endpoint_;
  std::vector<Message> requests_seen_;
  std::function<void(const Ip6Address&, const Message&)> responder_;
};

TEST_F(EndpointHarness, CompletesExactlyOnceWithReply) {
  responder_ = [this](const Ip6Address& src, const Message& m) {
    responder_node_->SendUdp(src, kMicroPnpUdpPort, DataReply(m.sequence));
  };
  auto fires = std::make_shared<int>(0);
  auto status = std::make_shared<Status>();
  SendRead(fires, status);
  deployment_.RunForMillis(3000);
  EXPECT_EQ(*fires, 1);
  EXPECT_TRUE(status->ok());
  EXPECT_EQ(endpoint_->in_flight(), 0u);
  EXPECT_EQ(endpoint_->counters().completed_ok, 1u);
}

TEST_F(EndpointHarness, DuplicateReplyDroppedAsStale) {
  responder_ = [this](const Ip6Address& src, const Message& m) {
    responder_node_->SendUdp(src, kMicroPnpUdpPort, DataReply(m.sequence));
    responder_node_->SendUdp(src, kMicroPnpUdpPort, DataReply(m.sequence));
  };
  auto fires = std::make_shared<int>(0);
  auto status = std::make_shared<Status>();
  SendRead(fires, status);
  deployment_.RunForMillis(3000);
  EXPECT_EQ(*fires, 1);
  EXPECT_EQ(endpoint_->counters().stale_replies_dropped, 1u);
}

TEST_F(EndpointHarness, DeadlineExceededFiresOnceAndClearsEntry) {
  // Responder stays silent.
  auto fires = std::make_shared<int>(0);
  auto status = std::make_shared<Status>();
  RequestOptions options;
  options.deadline_ms = 400.0;
  SendRead(fires, status, options);
  EXPECT_EQ(endpoint_->in_flight(), 1u);
  deployment_.RunForMillis(2000);
  EXPECT_EQ(*fires, 1);
  EXPECT_EQ(status->code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(endpoint_->in_flight(), 0u);
  EXPECT_EQ(endpoint_->counters().deadline_exceeded, 1u);
}

TEST_F(EndpointHarness, LateReplyAfterDeadlineIsStale) {
  responder_ = [this](const Ip6Address& src, const Message& m) {
    // Answer far past the requester's deadline.
    deployment_.scheduler().ScheduleAfter(SimTime::FromMillis(1500), [this, src, seq = m.sequence] {
      responder_node_->SendUdp(src, kMicroPnpUdpPort, DataReply(seq));
    });
  };
  auto fires = std::make_shared<int>(0);
  auto status = std::make_shared<Status>();
  RequestOptions options;
  options.deadline_ms = 300.0;
  SendRead(fires, status, options);
  deployment_.RunForMillis(4000);
  EXPECT_EQ(*fires, 1);
  EXPECT_EQ(status->code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(endpoint_->counters().stale_replies_dropped, 1u);
}

TEST_F(EndpointHarness, WrongReplyTypeDoesNotComplete) {
  responder_ = [this](const Ip6Address& src, const Message& m) {
    // A write-ack cannot complete a read, even with a matching sequence.
    responder_node_->SendUdp(
        src, kMicroPnpUdpPort,
        MakeMessage(MessageType::kWriteAck, m.sequence, StatusAckPayload{kTmp36TypeId, 0})
            .Serialize());
  };
  auto fires = std::make_shared<int>(0);
  auto status = std::make_shared<Status>();
  RequestOptions options;
  options.deadline_ms = 500.0;
  SendRead(fires, status, options);
  deployment_.RunForMillis(2000);
  EXPECT_EQ(*fires, 1);
  EXPECT_EQ(status->code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(endpoint_->counters().stale_replies_dropped, 1u);
}

TEST_F(EndpointHarness, AcceptPredicateRejectsWithoutConsumingTransaction) {
  // First reply carries the right type and sequence but the wrong device;
  // the predicate must drop it (stale) and leave the transaction pending
  // for the correct reply.
  responder_ = [this](const Ip6Address& src, const Message& m) {
    WireValue v;
    v.scalar = 1;
    responder_node_->SendUdp(
        src, kMicroPnpUdpPort,
        MakeMessage(MessageType::kData, m.sequence, ValuePayload{kBmp180TypeId, v}).Serialize());
    deployment_.scheduler().ScheduleAfter(SimTime::FromMillis(200), [this, src, seq = m.sequence] {
      responder_node_->SendUdp(src, kMicroPnpUdpPort, DataReply(seq));
    });
  };
  auto fires = std::make_shared<int>(0);
  auto status = std::make_shared<Status>();
  RequestOptions options;
  options.accept = [](const Message& reply) {
    const auto* data = reply.payload_as<ValuePayload>();
    return data != nullptr && data->device_id == kTmp36TypeId;
  };
  SendRead(fires, status, options);
  deployment_.RunForMillis(3000);
  EXPECT_EQ(*fires, 1);
  EXPECT_TRUE(status->ok()) << status->ToString();
  EXPECT_EQ(endpoint_->counters().stale_replies_dropped, 1u);
}

TEST_F(EndpointHarness, RetransmitsWithBackoffUntilAnswered) {
  // Responder ignores the first two copies of the request.
  responder_ = [this](const Ip6Address& src, const Message& m) {
    if (requests_seen_.size() < 3) {
      return;
    }
    responder_node_->SendUdp(src, kMicroPnpUdpPort, DataReply(m.sequence));
  };
  auto fires = std::make_shared<int>(0);
  auto status = std::make_shared<Status>();
  RequestOptions options;
  options.deadline_ms = 5000.0;
  options.max_retransmits = 4;
  options.initial_backoff_ms = 100.0;
  SendRead(fires, status, options);
  deployment_.RunForMillis(6000);
  EXPECT_EQ(*fires, 1);
  EXPECT_TRUE(status->ok()) << status->ToString();
  // Initial send + 2 ignored retransmits before the answered third copy.
  EXPECT_GE(endpoint_->counters().retransmits, 2u);
  // All copies carried the same sequence (one transaction on the wire).
  ASSERT_GE(requests_seen_.size(), 3u);
  EXPECT_EQ(requests_seen_[0].sequence, requests_seen_[1].sequence);
  EXPECT_EQ(requests_seen_[0].sequence, requests_seen_[2].sequence);
}

TEST_F(EndpointHarness, CancellationCompletesWithCancelled) {
  auto fires = std::make_shared<int>(0);
  auto status = std::make_shared<Status>();
  ProtoEndpoint::RequestId id = SendRead(fires, status);
  deployment_.RunForMillis(10);
  ASSERT_TRUE(endpoint_->Cancel(id));
  EXPECT_EQ(*fires, 1);
  EXPECT_EQ(status->code(), StatusCode::kCancelled);
  EXPECT_EQ(endpoint_->in_flight(), 0u);
  // Cancelling again is a no-op.
  EXPECT_FALSE(endpoint_->Cancel(id));
  deployment_.RunForMillis(5000);
  EXPECT_EQ(*fires, 1);  // the dead transaction's deadline never fires
}

TEST_F(EndpointHarness, CapacityBoundRejectsExcessRequests) {
  auto fires = std::make_shared<int>(0);
  auto status = std::make_shared<Status>();
  for (size_t i = 0; i < kCapacity; ++i) {
    SendRead(fires, status);
  }
  EXPECT_EQ(endpoint_->in_flight(), kCapacity);
  auto rejected_status = std::make_shared<Status>();
  auto rejected_fires = std::make_shared<int>(0);
  EXPECT_EQ(SendRead(rejected_fires, rejected_status), ProtoEndpoint::kInvalidRequest);
  EXPECT_EQ(*rejected_fires, 1);  // fails fast, same turn
  EXPECT_EQ(rejected_status->code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(endpoint_->counters().rejected_capacity, 1u);
  // The table never exceeds its bound and drains at the deadline.
  deployment_.RunForMillis(5000);
  EXPECT_EQ(endpoint_->in_flight(), 0u);
  EXPECT_EQ(*fires, static_cast<int>(kCapacity));
}

TEST_F(EndpointHarness, WrappedSequenceNeverAliasesPendingTransaction) {
  // Force the allocator to the top of the 16-bit space, with a silent
  // responder keeping every transaction pending.
  endpoint_->SetNextSequenceForTest(65534);
  auto fires = std::make_shared<int>(0);
  auto status = std::make_shared<Status>();
  RequestOptions options;
  options.deadline_ms = 4000.0;
  SendRead(fires, status, options);  // 65534
  SendRead(fires, status, options);  // 65535
  SendRead(fires, status, options);  // wraps to 0
  deployment_.RunForMillis(200);
  ASSERT_EQ(requests_seen_.size(), 3u);
  // CSMA jitter may reorder same-instant datagrams; compare as a set.
  std::multiset<SequenceNumber> seen{requests_seen_[0].sequence, requests_seen_[1].sequence,
                                     requests_seen_[2].sequence};
  EXPECT_EQ(seen, (std::multiset<SequenceNumber>{65534, 65535, 0}));
  // Wind the allocator back onto the still-pending sequences: allocation
  // must skip all three and hand out 1.
  endpoint_->SetNextSequenceForTest(65534);
  SendRead(fires, status, options);
  deployment_.RunForMillis(200);
  ASSERT_EQ(requests_seen_.size(), 4u);
  EXPECT_EQ(requests_seen_[3].sequence, 1);
  EXPECT_EQ(endpoint_->in_flight(), 4u);
  // A stale reply for a sequence that was never allocated is rejected.
  responder_node_->SendUdp(requester_node_->address(), kMicroPnpUdpPort, DataReply(777));
  deployment_.RunForMillis(200);
  EXPECT_EQ(*fires, 0);
  EXPECT_EQ(endpoint_->counters().stale_replies_dropped, 1u);
}

// ------------------------------------------------- lossy-fabric end to end ----

// The acceptance scenario: a burst of reads over a lossy fabric.  Every
// operation completes exactly once — reply or deadline — and no pending
// entry survives past its deadline.
TEST(EndpointLossy, EveryOperationCompletesExactlyOnce) {
  DeploymentConfig config;
  config.seed = 20150405;
  Deployment deployment(config);
  deployment.AddManager();
  MicroPnpThing& thing = deployment.AddThing("thing");
  MicroPnpClient& client = deployment.AddClient("client");
  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(2000);
  ASSERT_NE(thing.drivers().HostForChannel(0), nullptr);

  // Turn the links lossy for the read burst.
  LinkModel lossy = config.link;
  lossy.loss_rate = 0.25;
  deployment.fabric().set_link(lossy);

  constexpr int kReads = 20;
  std::array<int, kReads> fires{};
  RequestOptions options;
  options.deadline_ms = 1500.0;
  options.max_retransmits = 3;
  options.initial_backoff_ms = 150.0;
  for (int i = 0; i < kReads; ++i) {
    client.Read(thing.node().address(), kTmp36TypeId,
                [&fires, i](Result<WireValue>) { ++fires[i]; }, options);
    deployment.RunForMillis(40);
  }
  deployment.RunForMillis(5000);  // far past every deadline

  for (int i = 0; i < kReads; ++i) {
    EXPECT_EQ(fires[i], 1) << "read " << i;
  }
  EXPECT_EQ(client.endpoint().in_flight(), 0u);
  const EndpointCounters& counters = client.endpoint().counters();
  EXPECT_EQ(counters.completed_ok + counters.deadline_exceeded, kReads);
  EXPECT_GT(counters.retransmits, 0u);
}

// ------------------------------------------ pending-table leak regressions ----

// Seed bug: DiscoverDrivers/RemoveDriver toward an unreachable Thing left a
// pending-table entry (and a never-invoked callback) forever.
TEST(ManagerTimeouts, DiscoverAndRemoveCompleteWhenThingUnreachable) {
  Deployment deployment;
  MicroPnpManager& manager = deployment.AddManager();
  const Ip6Address unplugged = *Ip6Address::Parse("2001:db8::dead");

  RequestOptions options;
  options.deadline_ms = 500.0;
  std::optional<Status> discover_status;
  manager.DiscoverDrivers(
      unplugged,
      [&](Result<std::vector<DeviceTypeId>> ids) { discover_status = ids.status(); }, options);
  std::optional<Status> removal_status;
  manager.RemoveDriver(unplugged, kTmp36TypeId,
                       [&](Status status) { removal_status = status; }, options);
  EXPECT_EQ(manager.endpoint().in_flight(), 2u);
  deployment.RunForMillis(2000);

  ASSERT_TRUE(discover_status.has_value());
  EXPECT_EQ(discover_status->code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(removal_status.has_value());
  EXPECT_EQ(removal_status->code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(manager.endpoint().in_flight(), 0u);
}

// Seed bug: a StartStream whose (13) never arrives left a stream_requests_
// entry forever and on_closed never fired.
TEST(ClientStreamExpiry, UnansweredStartStreamExpiresAndCloses) {
  Deployment deployment;
  MicroPnpClient& client = deployment.AddClient("client");
  const Ip6Address unplugged = *Ip6Address::Parse("2001:db8::dead");

  RequestOptions options;
  options.deadline_ms = 400.0;
  int values = 0;
  int closed = 0;
  client.StartStream(
      unplugged, kHih4030TypeId, 1000, [&](const WireValue&) { ++values; }, [&] { ++closed; },
      options);
  EXPECT_EQ(client.endpoint().in_flight(), 1u);
  deployment.RunForMillis(2000);

  EXPECT_EQ(closed, 1);
  EXPECT_EQ(values, 0);
  EXPECT_EQ(client.endpoint().in_flight(), 0u);
}

// A StopStream whose (15) is lost still tears the subscription down at the
// deadline: no leaked group membership, on_closed fires exactly once.
TEST(ClientStreamExpiry, StopStreamUnderTotalLossStillClosesLocally) {
  DeploymentConfig config;
  Deployment deployment(config);
  deployment.AddManager();
  MicroPnpThing& thing = deployment.AddThing("thing");
  MicroPnpClient& client = deployment.AddClient("client");
  Hih4030& sensor = deployment.MakeHih4030();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(2000);

  int closed = 0;
  client.StartStream(thing.node().address(), kHih4030TypeId, 500, [](const WireValue&) {},
                     [&] { ++closed; });
  deployment.RunForMillis(1500);
  const Ip6Address group = PeripheralGroup(client.node().prefix(), kHih4030TypeId);
  ASSERT_TRUE(client.node().InGroup(group));

  // Black out the network, then stop the stream: the (12) and any (15) are
  // all lost, but the local subscription must still close at the deadline.
  LinkModel blackout = config.link;
  blackout.loss_rate = 1.0;
  deployment.fabric().set_link(blackout);
  RequestOptions options;
  options.deadline_ms = 400.0;
  client.StopStream(thing.node().address(), kHih4030TypeId, options);
  deployment.RunForMillis(2000);

  EXPECT_EQ(closed, 1);
  EXPECT_FALSE(client.node().InGroup(group));
  EXPECT_EQ(client.endpoint().in_flight(), 0u);
}

// A StartStream rejected for capacity never went on the wire, so it must
// NOT send the best-effort shutdown that would tear down a healthy stream
// other subscribers may be using.
TEST(ClientStreamExpiry, CapacityRejectedStartStreamLeavesActiveStreamAlone) {
  Deployment deployment;
  deployment.AddManager();
  MicroPnpThing& thing = deployment.AddThing("thing");
  // Capacity 1: one pending transaction saturates the client's endpoint.
  MicroPnpClient& client = deployment.AddClient("client", nullptr, /*max_in_flight=*/1);
  Hih4030& sensor = deployment.MakeHih4030();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(2000);

  int values = 0;
  client.StartStream(thing.node().address(), kHih4030TypeId, 500,
                     [&](const WireValue&) { ++values; });
  deployment.RunForMillis(2000);
  ASSERT_GT(values, 0);

  // Saturate the table, then ask for the same stream again: rejected for
  // capacity, on_closed fires for the *new* request only.
  const Ip6Address unreachable = *Ip6Address::Parse("2001:db8::dead");
  RequestOptions slow;
  slow.deadline_ms = 60'000.0;
  client.Read(unreachable, kTmp36TypeId, [](Result<WireValue>) {}, slow);
  int rejected_closed = 0;
  client.StartStream(thing.node().address(), kHih4030TypeId, 250, [](const WireValue&) {},
                     [&] { ++rejected_closed; });
  EXPECT_EQ(rejected_closed, 1);

  // The established stream keeps flowing: no shutdown was sent.
  const int before = values;
  deployment.RunForMillis(3000);
  EXPECT_GT(values, before);
}

// A retransmitted (4) with the same (thing, sequence) is re-served its (18)
// offer from the manager's cache: the Thing recovers a lost offer, uploads()
// still counts distinct transactions, and the chunk stream is not replayed —
// the selective-repeat NACK path owns gap recovery.
TEST(ManagerDedup, DuplicateInstallRequestsReServeWithoutRecount) {
  Deployment deployment;
  MicroPnpManager& manager = deployment.AddManager();
  NetNode* thing_node = deployment.AddRelayNode("fake-thing");
  std::vector<Message> offers_received;
  size_t chunks_received = 0;
  thing_node->BindUdp(kMicroPnpUdpPort,
                      [&](const Ip6Address&, const Ip6Address&, uint16_t,
                          const std::vector<uint8_t>& payload) {
                        Result<Message> m = Message::Parse(ByteSpan(payload.data(), payload.size()));
                        if (!m.ok()) {
                          return;
                        }
                        if (m->type == MessageType::kDriverUploadOffer) {
                          offers_received.push_back(*m);
                        } else if (m->type == MessageType::kDriverChunk) {
                          ++chunks_received;
                        }
                      });

  const Message request = MakeMessage(MessageType::kDriverInstallRequest, 42,
                                      DriverRequestPayload{kTmp36TypeId, 0, 0, {}});
  thing_node->SendUdp(ManagerAnycastAddress(), kMicroPnpUdpPort, request.Serialize());
  deployment.RunForMillis(500);
  const size_t chunks_after_first = chunks_received;
  thing_node->SendUdp(ManagerAnycastAddress(), kMicroPnpUdpPort, request.Serialize());
  deployment.RunForMillis(500);

  ASSERT_EQ(offers_received.size(), 2u);  // both copies answered (recovery)
  EXPECT_EQ(offers_received[0], offers_received[1]);
  const auto* offer = offers_received[0].payload_as<DriverOfferPayload>();
  ASSERT_NE(offer, nullptr);
  EXPECT_EQ(offer->device_id, kTmp36TypeId);
  EXPECT_GT(offer->chunk_count, 1u);  // the image really is split
  EXPECT_EQ(chunks_after_first, offer->chunk_count);  // full stream once...
  EXPECT_EQ(chunks_received, chunks_after_first);     // ...not replayed
  EXPECT_EQ(manager.uploads(), 1u);  // but only one distinct transaction
  EXPECT_EQ(manager.upload_retransmissions(), 1u);
}

// --------------------------------------------------------- wire robustness ----

// Every strict prefix of every valid message must fail to parse: the wire
// format has no optional trailing fields, so truncation is always corrupt.
TEST(WireRobustness, TruncatedDatagramsAlwaysParseFail) {
  for (const Message& m : RepresentativeMessages()) {
    const std::vector<uint8_t> wire = m.Serialize();
    for (size_t len = 0; len < wire.size(); ++len) {
      Result<Message> parsed = Message::Parse(ByteSpan(wire.data(), len));
      EXPECT_FALSE(parsed.ok()) << MessageTypeName(m.type) << " truncated to " << len << "/"
                                << wire.size() << " bytes";
    }
  }
}

TEST(WireRobustness, TrailingBytesAreRejected) {
  for (const Message& m : RepresentativeMessages()) {
    std::vector<uint8_t> wire = m.Serialize();
    wire.push_back(0x00);
    EXPECT_FALSE(Message::Parse(ByteSpan(wire.data(), wire.size())).ok())
        << MessageTypeName(m.type);
  }
}

// Deterministic garbage sweep: random bytes (with a valid type byte forced
// half the time, to get past the header check) must never crash.  Run under
// the ASan+UBSan CI job, this is the memory-safety net for Parse.
TEST(WireRobustness, GarbageDatagramsNeverCrash) {
  Rng rng(0xf00dface);
  for (int i = 0; i < 5000; ++i) {
    const size_t len = rng.UniformInt(0, 96);
    std::vector<uint8_t> bytes(len);
    for (uint8_t& b : bytes) {
      b = static_cast<uint8_t>(rng.NextU32() & 0xff);
    }
    if (!bytes.empty() && rng.Bernoulli(0.5)) {
      bytes[0] = static_cast<uint8_t>(rng.UniformInt(1, kMessageTypeMax));
    }
    (void)Message::Parse(ByteSpan(bytes.data(), bytes.size()));  // must not crash
  }
}

// Garbage and truncated datagrams delivered to live nodes on port 6030 are
// dropped without mutating endpoint state, and the system keeps serving.
TEST(WireRobustness, LiveNodesSurviveGarbageOnPort6030) {
  Deployment deployment;
  deployment.AddManager();
  MicroPnpThing& thing = deployment.AddThing("thing");
  MicroPnpClient& client = deployment.AddClient("client");
  NetNode* attacker = deployment.AddRelayNode("attacker");
  Tmp36& sensor = deployment.MakeTmp36();
  ASSERT_TRUE(thing.Plug(0, &sensor).ok());
  deployment.RunForMillis(1500);
  ASSERT_NE(thing.drivers().HostForChannel(0), nullptr);

  const EndpointCounters thing_before = thing.endpoint().counters();
  const EndpointCounters client_before = client.endpoint().counters();

  Rng rng(0xbadbeef);
  for (int i = 0; i < 200; ++i) {
    const size_t len = rng.UniformInt(0, 48);
    std::vector<uint8_t> bytes(len);
    for (uint8_t& b : bytes) {
      b = static_cast<uint8_t>(rng.NextU32() & 0xff);
    }
    attacker->SendUdp(i % 2 == 0 ? thing.node().address() : client.node().address(),
                      kMicroPnpUdpPort, bytes);
  }
  // Truncated copies of every valid message, too.
  for (const Message& m : RepresentativeMessages()) {
    std::vector<uint8_t> wire = m.Serialize();
    wire.resize(wire.size() / 2);
    attacker->SendUdp(thing.node().address(), kMicroPnpUdpPort, wire);
    attacker->SendUdp(client.node().address(), kMicroPnpUdpPort, wire);
  }
  deployment.RunForMillis(2000);

  // Malformed datagrams never reach the endpoints: counters unchanged.
  EXPECT_EQ(thing.endpoint().counters().stale_replies_dropped,
            thing_before.stale_replies_dropped);
  EXPECT_EQ(thing.endpoint().in_flight(), 0u);
  EXPECT_EQ(client.endpoint().counters().requests_started, client_before.requests_started);
  EXPECT_EQ(client.endpoint().in_flight(), 0u);

  // And the system still works.
  std::optional<Status> outcome;
  client.Read(thing.node().address(), kTmp36TypeId,
              [&](Result<WireValue> value) { outcome = value.status(); });
  deployment.RunForMillis(500);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok()) << outcome->ToString();
}

// ------------------------------------------------------- fleet-scale soak ----

// 10k concurrent requests across 1k peers over a lossy fabric, with
// randomized responder behaviour (reply, stay silent, duplicate the reply,
// delay past the deadline) plus client-side cancellations racing completions.
// Every request resolves exactly once, the accounting balances
// (completed + deadline_exceeded + cancelled == issued), and the pending
// table — sized for the burst, high-water mark 10k — drains back to zero.
TEST(EndpointSoak, TenThousandConcurrentRequestsAcrossThousandPeers) {
  constexpr int kPeers = 1000;
  constexpr int kRequests = 10000;

  DeploymentConfig config;
  config.seed = 20150607;
  Deployment deployment(config);
  Scheduler& scheduler = deployment.scheduler();
  Rng rng(config.seed);

  NetNode* requester = deployment.AddRelayNode("requester");
  ProtoEndpoint endpoint(scheduler, requester, /*max_in_flight=*/16384);
  requester->BindUdp(kMicroPnpUdpPort,
                     [&](const Ip6Address& src, const Ip6Address&, uint16_t,
                         const std::vector<uint8_t>& payload) {
                       Result<Message> m = Message::Parse(ByteSpan(payload.data(), payload.size()));
                       if (m.ok()) {
                         (void)endpoint.HandleReply(src, *m);
                       }
                     });

  // Peers with scripted behaviour drawn per incoming request.
  std::vector<NetNode*> peers;
  peers.reserve(kPeers);
  for (int i = 0; i < kPeers; ++i) {
    NetNode* peer = deployment.AddRelayNode("peer-" + std::to_string(i));
    peer->BindUdp(kMicroPnpUdpPort,
                  [&, peer](const Ip6Address& src, const Ip6Address&, uint16_t,
                            const std::vector<uint8_t>& payload) {
                    Result<Message> m = Message::Parse(ByteSpan(payload.data(), payload.size()));
                    if (!m.ok()) {
                      return;
                    }
                    const double roll = rng.NextDouble();
                    if (roll < 0.10) {
                      return;  // silent: the requester's deadline resolves it
                    }
                    const int copies = roll < 0.25 ? 2 : 1;  // duplicates
                    // Delays up to 2.5 s straddle the 1.5 s deadline, so some
                    // replies arrive stale on purpose.
                    const double delay_ms = rng.Uniform(1.0, 2500.0);
                    const SequenceNumber seq = m->sequence;
                    scheduler.ScheduleAfter(SimTime::FromMillis(delay_ms), [&, peer, src, seq,
                                                                            copies] {
                      WireValue v;
                      v.scalar = 215;
                      const std::vector<uint8_t> reply =
                          MakeMessage(MessageType::kData, seq, ValuePayload{kTmp36TypeId, v})
                              .Serialize();
                      for (int c = 0; c < copies; ++c) {
                        peer->SendUdp(src, kMicroPnpUdpPort, reply);
                      }
                    });
                  });
    peers.push_back(peer);
  }

  LinkModel lossy = config.link;
  lossy.loss_rate = 0.05;
  deployment.fabric().set_link(lossy);

  RequestOptions options;
  options.deadline_ms = 1500.0;
  options.max_retransmits = 2;
  options.initial_backoff_ms = 300.0;

  int handler_fires = 0;
  std::vector<ProtoEndpoint::RequestId> ids;
  ids.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ProtoEndpoint::RequestId id = endpoint.SendRequest(
        peers[static_cast<size_t>(i) % kPeers]->address(), MessageType::kRead,
        DeviceTargetPayload{kTmp36TypeId}, {MessageType::kData},
        [&handler_fires](Result<Message>) { ++handler_fires; }, options);
    ASSERT_NE(id, ProtoEndpoint::kInvalidRequest) << "request " << i;
    ids.push_back(id);
  }
  ASSERT_EQ(endpoint.in_flight(), static_cast<size_t>(kRequests));
  EXPECT_EQ(endpoint.counters().peak_in_flight, static_cast<uint64_t>(kRequests));

  // Cancel ~5% at random times while completions race in.
  for (const ProtoEndpoint::RequestId id : ids) {
    if (rng.Bernoulli(0.05)) {
      scheduler.ScheduleAfter(SimTime::FromMillis(rng.Uniform(0.0, 1200.0)),
                              [&endpoint, id] { (void)endpoint.Cancel(id); });
    }
  }

  deployment.RunForMillis(10000);  // far past every deadline and stale reply

  EXPECT_EQ(endpoint.in_flight(), 0u) << "pending table did not drain";
  EXPECT_EQ(handler_fires, kRequests);
  const EndpointCounters& c = endpoint.counters();
  EXPECT_EQ(c.requests_started, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(c.completed_ok + c.deadline_exceeded + c.cancelled,
            static_cast<uint64_t>(kRequests));
  EXPECT_EQ(c.rejected_capacity, 0u);
  // The randomized mix must actually exercise each outcome.
  EXPECT_GT(c.completed_ok, 0u);
  EXPECT_GT(c.deadline_exceeded, 0u);
  EXPECT_GT(c.cancelled, 0u);
  EXPECT_GT(c.retransmits, 0u);
  EXPECT_GT(c.stale_replies_dropped, 0u);

  // The endpoint is still fully serviceable after the storm.
  int after_fires = 0;
  (void)endpoint.SendRequest(peers[0]->address(), MessageType::kRead,
                             DeviceTargetPayload{kTmp36TypeId}, {MessageType::kData},
                             [&after_fires](Result<Message>) { ++after_fires; }, options);
  deployment.RunForMillis(5000);
  EXPECT_EQ(after_fires, 1);
  EXPECT_EQ(endpoint.in_flight(), 0u);
}

}  // namespace
}  // namespace micropnp
