// Differential and algorithmic tests for the timing-wheel Scheduler.
//
// The wheel (src/sim/scheduler.h) must be observationally identical to the
// seed heap (src/sim/reference_scheduler.h): same execution order, same clock,
// same executed()/pending() counts, same Cancel() verdicts — for any trace of
// ScheduleAt / ScheduleAfter / Cancel / Step / RunUntil / Run, including
// actions that schedule or cancel from inside the callback.  The property
// test below replays >= 1000 seeded random traces against both.
//
// The algorithmic half pins the wheel's complexity: a 100k schedule+cancel
// workload must cascade nothing (SchedulerStats) and finish in time linear in
// the operation count — the seed's linear-scan tombstone vector was quadratic
// here, which is the regression this guards against.

#include <chrono>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/reference_scheduler.h"
#include "src/sim/scheduler.h"

namespace micropnp {
namespace {

// ---------------------------------------------------------- deterministic ---

TEST(TimingWheelTest, EqualTimesRunFifo) {
  Scheduler s;
  std::vector<int> order;
  const SimTime t = SimTime::FromMillis(5.0);
  s.ScheduleAt(t, [&] { order.push_back(1); });
  s.ScheduleAt(t, [&] { order.push_back(2); });
  s.ScheduleAt(t, [&] { order.push_back(3); });
  EXPECT_EQ(s.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), t);
}

TEST(TimingWheelTest, PastTimesClampToNow) {
  Scheduler s;
  s.ScheduleAt(SimTime::FromMillis(10.0), [] {});
  s.RunUntil(SimTime::FromMillis(20.0));
  std::vector<int> order;
  s.ScheduleAt(SimTime::FromMillis(3.0), [&] { order.push_back(1); });  // in the past
  s.ScheduleAfter(SimTime::FromNanos(0), [&] { order.push_back(2); });
  EXPECT_EQ(s.Run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), SimTime::FromMillis(20.0));
}

TEST(TimingWheelTest, RunUntilIsInclusiveAndAdvancesClock) {
  Scheduler s;
  int ran = 0;
  s.ScheduleAt(SimTime::FromMillis(10.0), [&] { ++ran; });
  s.ScheduleAt(SimTime::FromMillis(10.0) + SimTime::FromNanos(1), [&] { ++ran; });
  EXPECT_EQ(s.RunUntil(SimTime::FromMillis(10.0)), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), SimTime::FromMillis(10.0));
  EXPECT_EQ(s.pending(), 1u);
}

TEST(TimingWheelTest, CancelRemovesPendingEvent) {
  Scheduler s;
  int ran = 0;
  Scheduler::EventId id = s.ScheduleAt(SimTime::FromMillis(1.0), [&] { ++ran; });
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));  // already cancelled
  EXPECT_EQ(s.Run(), 0u);
  EXPECT_EQ(ran, 0);
  EXPECT_TRUE(s.empty());
}

TEST(TimingWheelTest, CancelAfterExecutionReturnsFalse) {
  Scheduler s;
  Scheduler::EventId id = s.ScheduleAt(SimTime::FromMillis(1.0), [] {});
  EXPECT_EQ(s.Run(), 1u);
  EXPECT_FALSE(s.Cancel(id));
}

TEST(TimingWheelTest, FarFutureEventsBeyondWheelSpanStillRun) {
  Scheduler s;
  // 2^60 ns is the wheel span; schedule past it so the overflow map engages.
  const uint64_t span_ns = uint64_t{1} << 60;
  int ran = 0;
  s.ScheduleAt(SimTime::FromNanos(span_ns + 12345), [&] { ++ran; });
  s.ScheduleAt(SimTime::FromNanos(17), [&] { ++ran; });
  EXPECT_EQ(s.Run(), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.now(), SimTime::FromNanos(span_ns + 12345));
}

TEST(TimingWheelTest, CancelThenCascadePreservesFifoAtSlotAlignedTimes) {
  // Regression: Excise's swap-and-pop perturbs a wheel slot's vector order.
  // When a cascade later advances the origin exactly onto the entries'
  // timestamp (any 64-aligned time slots above level 0), the entries land
  // straight on the ready list and must still run in schedule order.
  Scheduler s;
  std::vector<int> order;
  const SimTime t = SimTime::FromNanos(64);  // level-1 slot, 64-aligned
  const Scheduler::EventId first = s.ScheduleAt(t, [&] { order.push_back(1); });
  s.ScheduleAt(t, [&] { order.push_back(2); });
  s.ScheduleAt(t, [&] { order.push_back(3); });
  EXPECT_TRUE(s.Cancel(first));
  EXPECT_EQ(s.Run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{2, 3}));

  // Larger pattern at a whole-millisecond time (64-aligned in ns), with
  // cancels interleaved through the batch.
  order.clear();
  const SimTime t2 = SimTime::FromMillis(5.0);
  std::vector<Scheduler::EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(s.ScheduleAt(t2, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 16; i += 3) {
    EXPECT_TRUE(s.Cancel(ids[i]));
  }
  EXPECT_EQ(s.Run(), 10u);
  std::vector<int> expected;
  for (int i = 0; i < 16; ++i) {
    if (i % 3 != 0) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(TimingWheelTest, CancelThenOverflowMigrationPreservesFifo) {
  // Same corner via the overflow spill map: events beyond the 2^60 ns span
  // migrate into the wheel when the origin jumps to their window, and a
  // bucket due exactly at the new origin lands straight on the ready list.
  Scheduler s;
  std::vector<int> order;
  const SimTime t = SimTime::FromNanos(uint64_t{1} << 60);
  const Scheduler::EventId first = s.ScheduleAt(t, [&] { order.push_back(1); });
  s.ScheduleAt(t, [&] { order.push_back(2); });
  s.ScheduleAt(t, [&] { order.push_back(3); });
  EXPECT_TRUE(s.Cancel(first));
  EXPECT_EQ(s.Run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(TimingWheelTest, ActionsCanScheduleAndCancelReentrantly) {
  Scheduler s;
  std::vector<int> order;
  Scheduler::EventId victim = s.ScheduleAt(SimTime::FromMillis(5.0), [&] { order.push_back(99); });
  s.ScheduleAt(SimTime::FromMillis(1.0), [&] {
    order.push_back(1);
    EXPECT_TRUE(s.Cancel(victim));
    s.ScheduleAfter(SimTime::FromMillis(1.0), [&] { order.push_back(2); });
    s.ScheduleAfter(SimTime::FromNanos(0), [&] { order.push_back(3); });  // same-instant
  });
  EXPECT_EQ(s.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

// ----------------------------------------------------------- differential ---

// Applies an identical random trace to both schedulers, comparing every
// observable after every operation.  Both allocate EventIds sequentially from
// 1, so ids correspond across the pair and Cancel() can target "the same"
// event in each.
template <typename S>
struct Replica {
  S sched;
  std::vector<uint64_t> log;           // tags of executed events, in order
  std::vector<typename S::EventId> ids;  // top-level events, for Cancel
};

void RunTrace(uint64_t seed) {
  Replica<Scheduler> wheel;
  Replica<ReferenceScheduler> heap;
  Rng rng(seed);

  uint64_t next_tag = 1;
  const int ops = static_cast<int>(rng.UniformInt(20, 120));
  for (int op = 0; op < ops; ++op) {
    const uint64_t kind = rng.UniformInt(0, 99);
    if (kind < 45) {  // schedule
      const uint64_t tag = next_tag++;
      // Mostly near-future delays; occasionally zero-delay, far-future, or
      // beyond the 2^60 ns wheel span to hit ready/overflow paths.
      uint64_t delay_ns;
      const uint64_t shape = rng.UniformInt(0, 9);
      bool align64 = false;
      if (shape == 0) {
        delay_ns = 0;
      } else if (shape == 1) {
        delay_ns = rng.UniformInt(uint64_t{1} << 40, uint64_t{1} << 45);
      } else if (shape == 2) {
        delay_ns = (uint64_t{1} << 60) + rng.UniformInt(0, 1u << 20);
      } else if (shape == 3) {
        // 64-aligned absolute targets: equal-time batches with zero low bits
        // reach the ready list via cascade/migration rather than a level-0
        // collection — the FIFO-after-Cancel corner.
        delay_ns = rng.UniformInt(0, 1'000'000);
        align64 = true;
      } else {
        delay_ns = rng.UniformInt(0, 10'000'000);  // <= 10 ms
      }
      const bool absolute = align64 || rng.Bernoulli(0.3);
      // Some actions schedule a follow-up from inside the callback.
      const bool nested = rng.Bernoulli(0.2);
      const uint64_t nested_delay = rng.UniformInt(0, 1'000'000);
      auto make_action = [&](auto& replica) {
        auto* r = &replica;
        return [r, tag, nested, nested_delay] {
          r->log.push_back(tag);
          if (nested) {
            r->sched.ScheduleAfter(SimTime::FromNanos(nested_delay),
                                   [r, tag] { r->log.push_back(tag | (uint64_t{1} << 63)); });
          }
        };
      };
      if (absolute) {
        SimTime when = wheel.sched.now() + SimTime::FromNanos(delay_ns);
        if (align64) {
          when = SimTime::FromNanos(when.nanos() & ~uint64_t{63});  // may clamp to now
        }
        wheel.ids.push_back(wheel.sched.ScheduleAt(when, make_action(wheel)));
        heap.ids.push_back(heap.sched.ScheduleAt(when, make_action(heap)));
      } else {
        wheel.ids.push_back(wheel.sched.ScheduleAfter(SimTime::FromNanos(delay_ns),
                                                      make_action(wheel)));
        heap.ids.push_back(heap.sched.ScheduleAfter(SimTime::FromNanos(delay_ns),
                                                    make_action(heap)));
      }
      ASSERT_EQ(wheel.ids.back(), heap.ids.back()) << "seed " << seed;
    } else if (kind < 60) {  // cancel a previously issued id (maybe stale)
      if (!wheel.ids.empty()) {
        const size_t pick = rng.UniformInt(0, wheel.ids.size() - 1);
        ASSERT_EQ(wheel.sched.Cancel(wheel.ids[pick]), heap.sched.Cancel(heap.ids[pick]))
            << "seed " << seed << " op " << op;
      }
    } else if (kind < 75) {  // step
      ASSERT_EQ(wheel.sched.Step(), heap.sched.Step()) << "seed " << seed << " op " << op;
    } else if (kind < 95) {  // bounded run
      const uint64_t horizon = rng.UniformInt(0, 20'000'000);
      const SimTime deadline = wheel.sched.now() + SimTime::FromNanos(horizon);
      ASSERT_EQ(wheel.sched.RunUntil(deadline), heap.sched.RunUntil(deadline))
          << "seed " << seed << " op " << op;
    } else {  // full drain
      ASSERT_EQ(wheel.sched.Run(), heap.sched.Run()) << "seed " << seed << " op " << op;
    }
    ASSERT_EQ(wheel.sched.now().nanos(), heap.sched.now().nanos())
        << "seed " << seed << " op " << op;
    ASSERT_EQ(wheel.sched.pending(), heap.sched.pending()) << "seed " << seed << " op " << op;
    ASSERT_EQ(wheel.sched.executed(), heap.sched.executed()) << "seed " << seed << " op " << op;
    ASSERT_EQ(wheel.log, heap.log) << "seed " << seed << " op " << op;
  }
  // Drain completely: the tail must agree too.
  ASSERT_EQ(wheel.sched.Run(), heap.sched.Run()) << "seed " << seed;
  ASSERT_EQ(wheel.log, heap.log) << "seed " << seed;
  ASSERT_TRUE(wheel.sched.empty());
  ASSERT_EQ(wheel.sched.now().nanos(), heap.sched.now().nanos()) << "seed " << seed;
}

TEST(TimingWheelDifferentialTest, MatchesReferenceSchedulerOnRandomTraces) {
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    RunTrace(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// ------------------------------------------------------------- complexity ---

TEST(TimingWheelLinearityTest, HundredThousandScheduleCancelIsLinear) {
  constexpr int kOps = 100'000;
  Scheduler s;
  Rng rng(0x5eed);
  std::vector<Scheduler::EventId> ids;
  ids.reserve(kOps);

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    ids.push_back(s.ScheduleAfter(SimTime::FromNanos(rng.UniformInt(1, 100'000'000)), [] {}));
  }
  for (Scheduler::EventId id : ids) {
    EXPECT_TRUE(s.Cancel(id));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
  const SchedulerStats& stats = s.stats();
  EXPECT_EQ(stats.scheduled, static_cast<uint64_t>(kOps));
  EXPECT_EQ(stats.cancelled, static_cast<uint64_t>(kOps));
  // Pure schedule+cancel never advances the wheel, so nothing may cascade —
  // this is the deterministic linearity witness (the seed implementation did
  // O(pending) work per Cancel here, ~10^10 operations for this workload).
  EXPECT_EQ(stats.cascaded_entries, 0u);
  EXPECT_EQ(stats.slot_collections, 0u);
  // Generous wall-clock ceiling: linear runs in well under a second even
  // under sanitizers; the quadratic seed took minutes.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 20.0);

  // The wheel must still be fully functional afterwards.
  int ran = 0;
  s.ScheduleAfter(SimTime::FromMillis(1.0), [&] { ++ran; });
  EXPECT_EQ(s.Run(), 1u);
  EXPECT_EQ(ran, 1);
}

TEST(TimingWheelLinearityTest, InterleavedScheduleCancelExecuteStaysBounded) {
  // Mixed workload: schedule bursts, cancel half, drain by deadline — the
  // gateway endpoint's timer pattern (every request arms a timer; most are
  // cancelled on completion, few fire).  Each entry cascades at most once per
  // level, so cascaded_entries is bounded by ops * levels; in practice the
  // bound below is far looser than observed.
  constexpr int kRounds = 200;
  constexpr int kPerRound = 500;
  Scheduler s;
  Rng rng(0xcafe);
  uint64_t fired = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Scheduler::EventId> ids;
    ids.reserve(kPerRound);
    for (int i = 0; i < kPerRound; ++i) {
      ids.push_back(s.ScheduleAfter(SimTime::FromNanos(rng.UniformInt(1, 2'000'000'000)),
                                    [&] { ++fired; }));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      s.Cancel(ids[i]);
    }
    s.RunUntil(s.now() + SimTime::FromMillis(100.0));
  }
  s.Run();
  const uint64_t total_ops = uint64_t{kRounds} * kPerRound;
  EXPECT_EQ(s.stats().scheduled, total_ops);
  EXPECT_EQ(fired + s.stats().cancelled, total_ops);
  EXPECT_LE(s.stats().cascaded_entries, total_ops * 10);  // <= once per level
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace micropnp
