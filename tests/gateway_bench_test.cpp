// Deterministic-replay guard for the gateway benchmark scenario.
//
// Every stochastic input of the simulation draws from the seeded SplitMix64
// streams, so a bench cell is a pure function of its options: running the
// same cell twice must produce byte-identical deterministic JSON (wall-clock
// fields are emitted in a separate object and excluded by construction).
// This is what makes BENCH_gateway.json diffable across commits — a changed
// byte in the deterministic half is a behaviour change, not noise.

#include <string>

#include <gtest/gtest.h>

#include "src/core/gateway_bench.h"

namespace micropnp {
namespace {

GatewayBenchOptions ThousandThingCell() {
  GatewayBenchOptions opt;
  opt.num_things = 1000;
  opt.total_reads = 500;  // bounded for test runtime; still a 1k-Thing fleet
  opt.window = 128;
  opt.loss_rate = 0.02;
  opt.seed = 20150415;
  return opt;
}

TEST(GatewayBenchDeterminism, SameSeedSameDeterministicJsonAtThousandThings) {
  const GatewayBenchOptions opt = ThousandThingCell();
  const GatewayBenchResult first = RunGatewayBench(opt);
  const GatewayBenchResult second = RunGatewayBench(opt);

  const std::string json_first = DeterministicCellsJson({first});
  const std::string json_second = DeterministicCellsJson({second});
  EXPECT_EQ(json_first, json_second) << "simulation is not a pure function of the seed";

  // The scenario's own invariants, on top of replay equality.
  EXPECT_EQ(first.issued, 500u);
  EXPECT_EQ(first.completed + first.deadline_exceeded, first.issued);
  EXPECT_EQ(first.final_in_flight, 0u);
  EXPECT_GT(first.completed, 0u);
  EXPECT_LE(first.peak_in_flight, 128u);
  EXPECT_GT(first.p99_ms, 0.0);
  EXPECT_GE(first.p99_ms, first.p50_ms);
}

TEST(GatewayBenchDeterminism, DifferentSeedsDiverge) {
  GatewayBenchOptions opt = ThousandThingCell();
  opt.num_things = 64;
  opt.total_reads = 64;
  opt.window = 16;
  const GatewayBenchResult a = RunGatewayBench(opt);
  opt.seed ^= 0xdecade;
  const GatewayBenchResult b = RunGatewayBench(opt);
  // Latency jitter derives from the rng stream, so distinct seeds must not
  // collapse to identical percentiles (a frozen rng would fake determinism).
  EXPECT_NE(DeterministicCellsJson({a}), DeterministicCellsJson({b}));
}

TEST(GatewayBenchJsonSchema, EmitsExpectedKeys) {
  GatewayBenchOptions opt;
  opt.num_things = 8;
  opt.total_reads = 16;
  opt.window = 8;
  opt.seed = 7;
  const GatewayBenchResult r = RunGatewayBench(opt);
  const std::string json = GatewayBenchJson({r});
  for (const char* key :
       {"\"bench\": \"gateway\"", "\"schema_version\": 1", "\"deterministic\"", "\"wall_clock\"",
        "\"num_things\"", "\"issued\"", "\"completed\"", "\"deadline_exceeded\"",
        "\"peak_in_flight\"", "\"final_in_flight\"", "\"scheduler_events\"", "\"p50_ms\"",
        "\"p99_ms\"", "\"events_per_second\"", "\"wall_seconds\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

}  // namespace
}  // namespace micropnp
