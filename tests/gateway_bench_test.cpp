// Deterministic-replay guard for the gateway benchmark scenario.
//
// Every stochastic input of the simulation draws from the seeded SplitMix64
// streams, so a bench cell is a pure function of its options: running the
// same cell twice must produce byte-identical deterministic JSON (wall-clock
// fields are emitted in a separate object and excluded by construction).
// This is what makes BENCH_gateway.json diffable across commits — a changed
// byte in the deterministic half is a behaviour change, not noise.

#include <string>

#include <gtest/gtest.h>

#include "src/core/gateway_bench.h"

namespace micropnp {
namespace {

GatewayBenchOptions ThousandThingCell() {
  GatewayBenchOptions opt;
  opt.num_things = 1000;
  opt.total_reads = 500;  // bounded for test runtime; still a 1k-Thing fleet
  opt.window = 128;
  opt.loss_rate = 0.02;
  opt.seed = 20150415;
  return opt;
}

// The committed single-threaded baseline for ThousandThingCell.  threads=1
// runs take the historical single-scheduler code path, so their output must
// stay byte-identical across the parallel-runtime refactor (and any future
// one).  If a deliberate behaviour change moves these numbers, regenerate
// the string from DeterministicCellsJson and say so in the commit.
constexpr const char* kThousandThingGolden =
    "{\"cells\": [{\"num_things\": 1000, \"loss_rate\": 0.020000, \"seed\": 20150415, "
    "\"issued\": 500, \"completed\": 500, \"deadline_exceeded\": 0, \"retransmits\": 44, "
    "\"peak_in_flight\": 128, \"final_in_flight\": 0, \"scheduler_events\": 3119, "
    "\"sim_duration_ms\": 1000.000000, \"p50_ms\": 51.260965, \"p99_ms\": 253.187077}]}";

TEST(GatewayBenchDeterminism, SameSeedSameDeterministicJsonAtThousandThings) {
  const GatewayBenchOptions opt = ThousandThingCell();
  const GatewayBenchResult first = RunGatewayBench(opt);
  const GatewayBenchResult second = RunGatewayBench(opt);

  const std::string json_first = DeterministicCellsJson({first});
  const std::string json_second = DeterministicCellsJson({second});
  EXPECT_EQ(json_first, json_second) << "simulation is not a pure function of the seed";
  EXPECT_EQ(json_first, kThousandThingGolden)
      << "threads=1 output diverged from the committed single-threaded baseline";

  // The scenario's own invariants, on top of replay equality.
  EXPECT_EQ(first.issued, 500u);
  EXPECT_EQ(first.completed + first.deadline_exceeded, first.issued);
  EXPECT_EQ(first.final_in_flight, 0u);
  EXPECT_GT(first.completed, 0u);
  EXPECT_LE(first.peak_in_flight, 128u);
  EXPECT_GT(first.p99_ms, 0.0);
  EXPECT_GE(first.p99_ms, first.p50_ms);
}

TEST(GatewayBenchDeterminism, DifferentSeedsDiverge) {
  GatewayBenchOptions opt = ThousandThingCell();
  opt.num_things = 64;
  opt.total_reads = 64;
  opt.window = 16;
  const GatewayBenchResult a = RunGatewayBench(opt);
  opt.seed ^= 0xdecade;
  const GatewayBenchResult b = RunGatewayBench(opt);
  // Latency jitter derives from the rng stream, so distinct seeds must not
  // collapse to identical percentiles (a frozen rng would fake determinism).
  EXPECT_NE(DeterministicCellsJson({a}), DeterministicCellsJson({b}));
}

TEST(GatewayBenchJsonSchema, EmitsExpectedKeys) {
  GatewayBenchOptions opt;
  opt.num_things = 8;
  opt.total_reads = 16;
  opt.window = 8;
  opt.seed = 7;
  const GatewayBenchResult r = RunGatewayBench(opt);
  const std::string json = GatewayBenchJson({r});
  for (const char* key :
       {"\"bench\": \"gateway\"", "\"schema_version\": 2", "\"deterministic\"", "\"wall_clock\"",
        "\"num_things\"", "\"threads\"", "\"issued\"", "\"completed\"", "\"deadline_exceeded\"",
        "\"peak_in_flight\"", "\"final_in_flight\"", "\"scheduler_events\"", "\"p50_ms\"",
        "\"p99_ms\"", "\"events_per_second\"", "\"wall_seconds\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

TEST(GatewayBenchSharded, MultiThreadedCellDrainsAndDropsNothing) {
  GatewayBenchOptions opt;
  opt.num_things = 64;
  opt.total_reads = 128;
  opt.window = 32;
  opt.seed = 20150415;
  opt.threads = 2;
  const GatewayBenchResult r = RunGatewayBench(opt);
  EXPECT_EQ(r.threads, 2);
  EXPECT_EQ(r.issued, 128u);
  EXPECT_EQ(r.completed + r.deadline_exceeded, r.issued);
  EXPECT_EQ(r.final_in_flight, 0u);
  EXPECT_GT(r.scheduler_events, 0u);
  EXPECT_GE(r.p99_ms, r.p50_ms);
  // Multi-threaded cells are wall-clock-only: the deterministic JSON must
  // contain no cells for them.
  EXPECT_EQ(DeterministicCellsJson({r}), "{\"cells\": []}");
  // But they do appear in the full document's wall_clock section.
  const std::string json = GatewayBenchJson({r});
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos) << json;
}

}  // namespace
}  // namespace micropnp
