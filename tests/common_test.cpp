// Unit tests for src/common: types, status/result, bytes, TLV, CRC, RNG,
// units, SLoC counting.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/crc.h"
#include "src/common/rng.h"
#include "src/common/sloc.h"
#include "src/common/status.h"
#include "src/common/tlv.h"
#include "src/common/types.h"
#include "src/common/units.h"

namespace micropnp {
namespace {

// ---------------------------------------------------------------- types ----

TEST(Types, FormatDeviceTypeId) {
  EXPECT_EQ(FormatDeviceTypeId(0xad1cbe01u), "0xad1cbe01");
  EXPECT_EQ(FormatDeviceTypeId(0x0u), "0x00000000");
  EXPECT_EQ(FormatDeviceTypeId(0xffffffffu), "0xffffffff");
}

TEST(Types, DeviceTypeByteRoundTrip) {
  const DeviceTypeId id = 0x12345678u;
  EXPECT_EQ(DeviceTypeByte(id, 0), 0x12);
  EXPECT_EQ(DeviceTypeByte(id, 1), 0x34);
  EXPECT_EQ(DeviceTypeByte(id, 2), 0x56);
  EXPECT_EQ(DeviceTypeByte(id, 3), 0x78);
  EXPECT_EQ(MakeDeviceTypeId(0x12, 0x34, 0x56, 0x78), id);
}

TEST(Types, ReservedIds) {
  EXPECT_EQ(kDeviceTypeAllPeripherals, 0x00000000u);
  EXPECT_EQ(kDeviceTypeAllClients, 0xffffffffu);
}

// --------------------------------------------------------------- status ----

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = DeadlineExceeded("uart rx");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.ToString(), "deadline_exceeded: uart rx");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kCancelled); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

// ---------------------------------------------------------------- bytes ----

TEST(Bytes, WriterRoundTripsAllWidths) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0102030405060708ull);
  w.WriteI16(-2);
  w.WriteI32(-100000);

  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(r.ReadU8(), 0xab);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0102030405060708ull);
  EXPECT_EQ(r.ReadI16(), -2);
  EXPECT_EQ(r.ReadI32(), -100000);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.WriteU16(0x0102);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

TEST(Bytes, ReaderPoisonsOnUnderrun) {
  const uint8_t data[] = {0x01};
  ByteReader r(ByteSpan(data, 1));
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_FALSE(r.ok());
  // Further reads stay poisoned and return zero.
  EXPECT_EQ(r.ReadU8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, String8RoundTrip) {
  ByteWriter w;
  w.WriteString8("TMP36");
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(r.ReadString8(), "TMP36");
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.WriteU16(0);
  w.WriteU8(7);
  w.PatchU16(0, 0xbeef);
  EXPECT_EQ(w.bytes()[0], 0xbe);
  EXPECT_EQ(w.bytes()[1], 0xef);
}

TEST(Bytes, HexFormatting) {
  const uint8_t data[] = {0xde, 0xad, 0x01};
  EXPECT_EQ(BytesToHex(ByteSpan(data, 3)), "dead01");
}

// ------------------------------------------------------------------ tlv ----

TEST(Tlv, ScalarAccessors) {
  Tlv t8 = Tlv::OfU8(TlvType::kChannel, 2);
  EXPECT_EQ(t8.AsU8(), 2);
  EXPECT_EQ(t8.AsU16(), std::nullopt);

  Tlv t16 = Tlv::OfU16(TlvType::kDriverVersion, 0x0102);
  EXPECT_EQ(t16.AsU16(), 0x0102);

  Tlv t32 = Tlv::OfU32(TlvType::kStreamPeriodMs, 10'000u);
  EXPECT_EQ(t32.AsU32(), 10'000u);

  Tlv ts = Tlv::OfString(TlvType::kFriendlyName, "BMP180");
  EXPECT_EQ(ts.AsString(), "BMP180");
}

TEST(Tlv, ListSerializeParseRoundTrip) {
  TlvList list;
  list.AddString(TlvType::kFriendlyName, "HIH-4030");
  list.AddU8(TlvType::kChannel, 1);
  list.AddU32(TlvType::kStreamPeriodMs, 10'000u);

  ByteWriter w;
  list.Serialize(w);
  EXPECT_EQ(w.size(), list.SerializedSize());

  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  Result<TlvList> parsed = TlvList::Parse(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, list);
}

TEST(Tlv, FindReturnsFirstMatch) {
  TlvList list;
  list.AddU8(TlvType::kChannel, 1);
  list.AddU8(TlvType::kChannel, 2);
  const Tlv* found = list.Find(TlvType::kChannel);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->AsU8(), 1);
  EXPECT_EQ(list.Find(TlvType::kVendor), nullptr);
}

TEST(Tlv, ParseRejectsTruncatedInput) {
  // Claims 1 tuple of length 10 but provides 2 bytes of value.
  const uint8_t data[] = {0x01, 0x01, 0x0a, 0xaa, 0xbb};
  ByteReader r(ByteSpan(data, sizeof(data)));
  Result<TlvList> parsed = TlvList::Parse(r);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorrupt);
}

// ------------------------------------------------------------------ crc ----

TEST(Crc, Crc16CcittCheckValue) {
  const char* check = "123456789";
  EXPECT_EQ(Crc16Ccitt(ByteSpan(reinterpret_cast<const uint8_t*>(check), 9)), 0x29b1);
}

TEST(Crc, Crc32CheckValue) {
  const char* check = "123456789";
  EXPECT_EQ(Crc32(ByteSpan(reinterpret_cast<const uint8_t*>(check), 9)), 0xcbf43926u);
}

TEST(Crc, EmptyInput) {
  EXPECT_EQ(Crc16Ccitt(ByteSpan()), 0xffff);
  EXPECT_EQ(Crc32(ByteSpan()), 0u);
}

TEST(Crc, DetectsSingleBitFlip) {
  std::vector<uint8_t> data = {0x10, 0x20, 0x30, 0x40};
  const uint16_t original = Crc16Ccitt(ByteSpan(data.data(), data.size()));
  data[2] ^= 0x01;
  EXPECT_NE(Crc16Ccitt(ByteSpan(data.data(), data.size())), original);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

// ---------------------------------------------------------------- units ----

TEST(Units, PulseLengthDimensionalFormula) {
  // T = k R C: 1.1 * 10k * 100nF = 1.1 ms.
  Seconds t = PulseLength(1.1, KiloOhms(10), NanoFarads(100));
  EXPECT_NEAR(t.value(), 1.1e-3, 1e-12);
}

TEST(Units, EnergyFromPower) {
  Joules e = Energy(Power(Volts(3.3), MilliAmps(7.0)), MilliSeconds(300));
  EXPECT_NEAR(e.value(), 3.3 * 7e-3 * 0.3, 1e-12);
}

TEST(Units, QuantityComparisonsAndArithmetic) {
  EXPECT_LT(MilliSeconds(1), MilliSeconds(2));
  EXPECT_NEAR((MilliSeconds(3) - MilliSeconds(1)).value(), 2e-3, 1e-15);
  EXPECT_NEAR(MilliSeconds(4) / MilliSeconds(2), 2.0, 1e-12);
}

// ----------------------------------------------------------------- sloc ----

TEST(Sloc, DslCountsCodeLinesOnly) {
  const char* src =
      "import uart;\n"
      "\n"
      "# full-line comment\n"
      "uint8_t idx;   # trailing comment\n"
      "   \n"
      "event init():\n";
  EXPECT_EQ(CountSloc(src, SlocLanguage::kMicroPnpDsl), 3);
}

TEST(Sloc, CHandlesBlockComments) {
  const char* src =
      "/* header\n"
      "   comment */\n"
      "int x = 1;  // trailing\n"
      "/* inline */ int y = 2;\n"
      "// only comment\n"
      "\n";
  EXPECT_EQ(CountSloc(src, SlocLanguage::kC), 2);
}

TEST(Sloc, EmptySourceIsZero) {
  EXPECT_EQ(CountSloc("", SlocLanguage::kC), 0);
  EXPECT_EQ(CountSloc("\n\n", SlocLanguage::kMicroPnpDsl), 0);
}

}  // namespace
}  // namespace micropnp
