// Shared test corpus: one representative message per wire type (1)..(20),
// with every payload field populated.  proto_test uses it for round-trip
// coverage; endpoint_test drives its truncation/garbage robustness sweeps
// over the same list, so a new message type added here is automatically
// covered by both suites.

#ifndef TESTS_MESSAGE_CORPUS_H_
#define TESTS_MESSAGE_CORPUS_H_

#include <vector>

#include "src/net/multicast_schema.h"
#include "src/periph/peripheral.h"
#include "src/proto/messages.h"

namespace micropnp {

inline std::vector<Message> RepresentativeMessages() {
  AdvertisedPeripheral p;
  p.type = kTmp36TypeId;
  p.info.AddString(TlvType::kFriendlyName, "TMP36");
  p.info.AddU8(TlvType::kChannel, 1);
  WireValue scalar;
  scalar.scalar = -42;
  WireValue array;
  array.is_array = true;
  array.bytes = {'4', 'A', '0', '0', 'D', '2'};
  const Ip6Address group = PeripheralGroup(0x20010db80000ull, 0xad1c0001);
  return {
      MakeAdvertisement(MessageType::kUnsolicitedAdvertisement, 101, {p}),
      MakeMessage(MessageType::kPeripheralDiscovery, 102, PeripheralDiscoveryPayload{}),
      MakeAdvertisement(MessageType::kSolicitedAdvertisement, 103, {p}),
      MakeMessage(MessageType::kDriverInstallRequest, 104,
                  DriverRequestPayload{0xad1c0001, 0xdeadbeef, 12, {0xff, 0x0f}}),
      MakeMessage(MessageType::kDriverUpload, 105, DriverUploadPayload{0xad1c0001, {1, 2, 3}}),
      MakeDeviceMessage(MessageType::kDriverDiscovery, 106, kDeviceTypeAllPeripherals),
      MakeMessage(MessageType::kDriverAdvertisement, 107,
                  DriverAdvertisementPayload{{0xad1c0001, 0x0a0b0004}}),
      MakeDeviceMessage(MessageType::kDriverRemovalRequest, 108, 0xad1c0001),
      MakeMessage(MessageType::kDriverRemovalAck, 109, StatusAckPayload{0xad1c0001, 1}),
      MakeDeviceMessage(MessageType::kRead, 110, 0xad1c0001),
      MakeMessage(MessageType::kData, 111, ValuePayload{0xad1c0001, scalar}),
      MakeMessage(MessageType::kStream, 112, StreamRequestPayload{0xad1c0001, 10'000}),
      MakeMessage(MessageType::kStreamEstablished, 113,
                  StreamEstablishedPayload{0xad1c0001, group}),
      MakeMessage(MessageType::kStreamData, 114, ValuePayload{0xad1c0001, array}),
      MakeDeviceMessage(MessageType::kStreamClosed, 115, 0xad1c0001),
      MakeMessage(MessageType::kWrite, 116, WritePayload{0xad1c0001, 17}),
      MakeMessage(MessageType::kWriteAck, 117, StatusAckPayload{0xad1c0001, 0}),
      MakeMessage(MessageType::kDriverUploadOffer, 118,
                  DriverOfferPayload{0xad1c0001, 0xdeadbeef, 670, 56, 12, 0}),
      MakeMessage(MessageType::kDriverChunk, 119,
                  DriverChunkPayload{0xad1c0001, 0xdeadbeef, 11, 12, {9, 8, 7, 6}}),
      MakeMessage(MessageType::kDriverChunkRequest, 120,
                  DriverChunkRequestPayload{0xad1c0001, 0xdeadbeef, {0, 3, 11}}),
  };
}

}  // namespace micropnp

#endif  // TESTS_MESSAGE_CORPUS_H_
