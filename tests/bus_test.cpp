// Unit tests for the interconnect simulations (ADC, I2C, SPI, UART) and the
// per-channel bus mux.

#include <gtest/gtest.h>

#include <vector>

#include "src/bus/adc.h"
#include "src/bus/channel_bus.h"
#include "src/bus/i2c.h"
#include "src/bus/spi.h"
#include "src/bus/uart.h"

namespace micropnp {
namespace {

// ------------------------------------------------------------------ adc ----

class FixedSource : public AnalogSource {
 public:
  explicit FixedSource(double volts) : volts_(volts) {}
  Volts VoltageAt(SimTime /*now*/) override { return Volts(volts_); }
  double volts_;
};

TEST(Adc, SampleQuantizesVoltage) {
  Scheduler sched;
  AdcPort adc(sched);
  FixedSource source(1.65);  // half of vref 3.3
  adc.AttachSource(&source);
  Result<uint16_t> code = adc.Sample();
  ASSERT_TRUE(code.ok());
  EXPECT_NEAR(*code, 511.5, 1.0);  // mid-scale of 10 bits
  EXPECT_NEAR(adc.CodeToVoltage(*code).value(), 1.65, 0.01);
}

TEST(Adc, SampleWithoutSourceFails) {
  Scheduler sched;
  AdcPort adc(sched);
  EXPECT_EQ(adc.Sample().status().code(), StatusCode::kUnavailable);
}

TEST(Adc, ClipsOutOfRangeVoltages) {
  Scheduler sched;
  AdcPort adc(sched);
  FixedSource source(5.0);
  adc.AttachSource(&source);
  EXPECT_EQ(*adc.Sample(), 1023);
  source.volts_ = -1.0;
  EXPECT_EQ(*adc.Sample(), 0);
}

TEST(Adc, ResolutionConfigurable) {
  Scheduler sched;
  AdcPort adc(sched);
  AdcConfig config;
  config.resolution_bits = 12;
  adc.Configure(config);
  FixedSource source(3.3);
  adc.AttachSource(&source);
  EXPECT_EQ(*adc.Sample(), 4095);
}

TEST(Adc, CountsConversions) {
  Scheduler sched;
  AdcPort adc(sched);
  FixedSource source(1.0);
  adc.AttachSource(&source);
  (void)adc.Sample();
  (void)adc.Sample();
  EXPECT_EQ(adc.conversions(), 2u);
}

// ------------------------------------------------------------------ i2c ----

// Echo device: stores last write, serves it back on read.
class EchoI2cDevice : public I2cDevice {
 public:
  explicit EchoI2cDevice(uint8_t addr) : addr_(addr) {}
  uint8_t address() const override { return addr_; }
  Status OnWrite(ByteSpan data, SimTime /*now*/) override {
    last_write_.assign(data.begin(), data.end());
    return OkStatus();
  }
  Result<std::vector<uint8_t>> OnRead(size_t count, SimTime /*now*/) override {
    std::vector<uint8_t> out = last_write_;
    out.resize(count, 0xee);
    return out;
  }
  std::vector<uint8_t> last_write_;

 private:
  uint8_t addr_;
};

TEST(I2c, WriteReadRoundTrip) {
  Scheduler sched;
  I2cPort i2c(sched);
  EchoI2cDevice dev(0x42);
  ASSERT_TRUE(i2c.Attach(&dev).ok());

  const uint8_t payload[] = {0x10, 0x20};
  ASSERT_TRUE(i2c.Write(0x42, ByteSpan(payload, 2)).ok());
  EXPECT_EQ(dev.last_write_, (std::vector<uint8_t>{0x10, 0x20}));

  Result<std::vector<uint8_t>> read = i2c.Read(0x42, 2);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (std::vector<uint8_t>{0x10, 0x20}));
}

TEST(I2c, AbsentAddressNacks) {
  Scheduler sched;
  I2cPort i2c(sched);
  const uint8_t payload[] = {0x00};
  EXPECT_EQ(i2c.Write(0x50, ByteSpan(payload, 1)).code(), StatusCode::kUnavailable);
  EXPECT_EQ(i2c.Read(0x50, 1).status().code(), StatusCode::kUnavailable);
}

TEST(I2c, AddressCollisionRejected) {
  Scheduler sched;
  I2cPort i2c(sched);
  EchoI2cDevice a(0x42), b(0x42);
  ASSERT_TRUE(i2c.Attach(&a).ok());
  EXPECT_EQ(i2c.Attach(&b).code(), StatusCode::kAlreadyExists);
}

TEST(I2c, MultipleDevicesCoexist) {
  Scheduler sched;
  I2cPort i2c(sched);
  EchoI2cDevice a(0x42), b(0x43);
  ASSERT_TRUE(i2c.Attach(&a).ok());
  ASSERT_TRUE(i2c.Attach(&b).ok());
  const uint8_t pa[] = {0xaa};
  const uint8_t pb[] = {0xbb};
  ASSERT_TRUE(i2c.Write(0x42, ByteSpan(pa, 1)).ok());
  ASSERT_TRUE(i2c.Write(0x43, ByteSpan(pb, 1)).ok());
  EXPECT_EQ(a.last_write_[0], 0xaa);
  EXPECT_EQ(b.last_write_[0], 0xbb);
  ASSERT_TRUE(i2c.Detach(&a).ok());
  EXPECT_EQ(i2c.Write(0x42, ByteSpan(pa, 1)).code(), StatusCode::kUnavailable);
}

TEST(I2c, WriteReadUsesRepeatedStart) {
  Scheduler sched;
  I2cPort i2c(sched);
  EchoI2cDevice dev(0x10);
  ASSERT_TRUE(i2c.Attach(&dev).ok());
  const uint8_t reg[] = {0xf6};
  Result<std::vector<uint8_t>> out = i2c.WriteRead(0x10, ByteSpan(reg, 1), 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], 0xf6);
}

TEST(I2c, TransactionTimeScalesWithBytes) {
  Scheduler sched;
  I2cPort i2c(sched);
  // 100 kHz: 1 byte + address = 2 * 9 + 2 cycles = 200 us.
  EXPECT_NEAR(i2c.TransactionTime(1).millis(), 0.2, 0.01);
  EXPECT_GT(i2c.TransactionTime(16).nanos(), i2c.TransactionTime(1).nanos());
}

// ------------------------------------------------------------------ spi ----

class AddOneSpiDevice : public SpiDevice {
 public:
  uint8_t Exchange(uint8_t mosi, SimTime /*now*/) override {
    return static_cast<uint8_t>(mosi + 1);
  }
  void OnSelect(SimTime /*now*/) override { ++selects_; }
  void OnDeselect(SimTime /*now*/) override { ++deselects_; }
  int selects_ = 0;
  int deselects_ = 0;
};

TEST(Spi, FullDuplexTransfer) {
  Scheduler sched;
  SpiPort spi(sched);
  AddOneSpiDevice dev;
  spi.AttachDevice(&dev);
  const uint8_t tx[] = {1, 2, 3};
  Result<std::vector<uint8_t>> rx = spi.Transfer(ByteSpan(tx, 3));
  ASSERT_TRUE(rx.ok());
  EXPECT_EQ(*rx, (std::vector<uint8_t>{2, 3, 4}));
  EXPECT_EQ(dev.selects_, 1);
  EXPECT_EQ(dev.deselects_, 1);
}

TEST(Spi, TransferWithoutDeviceFails) {
  Scheduler sched;
  SpiPort spi(sched);
  const uint8_t tx[] = {1};
  EXPECT_EQ(spi.Transfer(ByteSpan(tx, 1)).status().code(), StatusCode::kUnavailable);
}

TEST(Spi, TransferTimeFollowsClock) {
  Scheduler sched;
  SpiPort spi(sched);
  // 4 bytes at 1 MHz = 32 us.
  EXPECT_NEAR(spi.TransferTime(4).micros(), 32.0, 0.1);
}

// ----------------------------------------------------------------- uart ----

TEST(UartConfig, ValidityAndByteTime) {
  UartConfig config;  // 9600 8N1
  EXPECT_TRUE(config.Valid());
  // 10 bits at 9600 baud ~ 1.0417 ms.
  EXPECT_NEAR(config.ByteTimeSeconds(), 10.0 / 9600.0, 1e-9);

  config.parity = UartParity::kEven;
  config.stop_bits = UartStopBits::kTwo;
  EXPECT_NEAR(config.ByteTimeSeconds(), 12.0 / 9600.0, 1e-9);

  config.baud = 0;
  EXPECT_FALSE(config.Valid());
  config.baud = 9600;
  config.data_bits = 9;
  EXPECT_FALSE(config.Valid());
}

TEST(Uart, InitClaimsExclusively) {
  Scheduler sched;
  UartPort uart(sched);
  ASSERT_TRUE(uart.Init(UartConfig{}).ok());
  EXPECT_EQ(uart.Init(UartConfig{}).code(), StatusCode::kBusy);  // `uartInUse`
  uart.Reset();
  EXPECT_TRUE(uart.Init(UartConfig{}).ok());
}

TEST(Uart, InitRejectsInvalidConfig) {
  Scheduler sched;
  UartPort uart(sched);
  UartConfig bad;
  bad.baud = 0;
  EXPECT_EQ(uart.Init(bad).code(), StatusCode::kInvalidArgument);
}

TEST(Uart, DeviceBytesArriveAtWireSpeed) {
  Scheduler sched;
  UartPort uart(sched);
  ASSERT_TRUE(uart.Init(UartConfig{}).ok());

  std::vector<std::pair<uint8_t, double>> received;  // byte, arrival ms
  uart.set_rx_handler([&](uint8_t b) { received.emplace_back(b, sched.now().millis()); });

  uart.DeviceSend('A');
  uart.DeviceSend('B');
  sched.Run();

  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].first, 'A');
  EXPECT_EQ(received[1].first, 'B');
  const double byte_ms = 10.0 / 9600.0 * 1e3;
  EXPECT_NEAR(received[0].second, byte_ms, 0.01);
  EXPECT_NEAR(received[1].second, 2 * byte_ms, 0.01);  // serialized on the wire
}

TEST(Uart, FifoBuffersWhenNoHandler) {
  Scheduler sched;
  UartPort uart(sched);
  ASSERT_TRUE(uart.Init(UartConfig{}).ok());
  uart.DeviceSend(0x11);
  uart.DeviceSend(0x22);
  sched.Run();
  EXPECT_EQ(uart.rx_available(), 2u);
  EXPECT_EQ(*uart.ReadByte(), 0x11);
  EXPECT_EQ(*uart.ReadByte(), 0x22);
  EXPECT_EQ(uart.ReadByte().status().code(), StatusCode::kUnavailable);
}

TEST(Uart, FifoOverrunDropsAndCounts) {
  Scheduler sched;
  UartPort uart(sched);
  ASSERT_TRUE(uart.Init(UartConfig{}).ok());
  for (size_t i = 0; i < UartPort::kRxFifoDepth + 5; ++i) {
    uart.DeviceSend(static_cast<uint8_t>(i));
  }
  sched.Run();
  EXPECT_EQ(uart.rx_available(), UartPort::kRxFifoDepth);
  EXPECT_EQ(uart.overruns(), 5u);
}

TEST(Uart, BytesLostWhenUninitialized) {
  Scheduler sched;
  UartPort uart(sched);
  uart.DeviceSend(0x7f);  // nobody configured the port
  sched.Run();
  EXPECT_EQ(uart.rx_available(), 0u);
}

class CaptureEndpoint : public UartEndpoint {
 public:
  void OnHostByte(uint8_t byte, SimTime /*now*/) override { bytes_.push_back(byte); }
  std::vector<uint8_t> bytes_;
};

TEST(Uart, HostToDeviceDirection) {
  Scheduler sched;
  UartPort uart(sched);
  CaptureEndpoint device;
  uart.AttachDevice(&device);
  ASSERT_TRUE(uart.Init(UartConfig{}).ok());
  ASSERT_TRUE(uart.HostSend('x').ok());
  sched.Run();
  EXPECT_EQ(device.bytes_, (std::vector<uint8_t>{'x'}));
}

TEST(Uart, HostSendRequiresInit) {
  Scheduler sched;
  UartPort uart(sched);
  EXPECT_EQ(uart.HostSend('x').code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------- channel bus ----

TEST(ChannelBus, MuxSelectsOneKind) {
  Scheduler sched;
  ChannelBus bus(sched);
  EXPECT_EQ(bus.selected(), std::nullopt);
  bus.Select(BusKind::kUart);
  EXPECT_TRUE(bus.IsSelected(BusKind::kUart));
  EXPECT_FALSE(bus.IsSelected(BusKind::kAdc));
  bus.Select(std::nullopt);
  EXPECT_FALSE(bus.IsSelected(BusKind::kUart));
}

}  // namespace
}  // namespace micropnp
