// Tests for the load-time verifier / pre-decoder (src/rt/decoded_image.h):
// every statically detectable fault is rejected at Decode time with a
// Status, hand-built image by hand-built image; faults that depend on
// runtime state (division by zero, dynamic array subscripts, the watchdog)
// still trap in the VM.

#include <gtest/gtest.h>

#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"
#include "src/rt/decoded_image.h"
#include "src/rt/vm.h"

namespace micropnp {
namespace {

uint8_t B(Op op) { return static_cast<uint8_t>(op); }

// A minimal image around raw code bytes: one init handler at offset 0.
DriverImage MakeImage(std::vector<uint8_t> code) {
  DriverImage image;
  image.device_id = 1;
  image.handlers.push_back(HandlerEntry{kEventInit, 0, 0});
  image.code = std::move(code);
  return image;
}

Status DecodeStatus(const DriverImage& image) {
  Result<DecodedImage> decoded = DecodedImage::Decode(image);
  return decoded.ok() ? OkStatus() : decoded.status();
}

void ExpectRejected(const DriverImage& image, const std::string& message_fragment) {
  const Status status = DecodeStatus(image);
  ASSERT_FALSE(status.ok()) << "expected rejection for: " << message_fragment;
  EXPECT_NE(status.message().find(message_fragment), std::string::npos)
      << "got: " << status.ToString();
}

// ---------------------------------------------- load-time rejections --------

TEST(DecodedImage, RejectsInvalidOpcode) {
  ExpectRejected(MakeImage({0xee}), "invalid opcode");
}

TEST(DecodedImage, RejectsTruncatedInstruction) {
  // push.i16 wants two operand bytes; only one is present.
  ExpectRejected(MakeImage({B(Op::kPushI16), 0x01}), "truncated instruction");
}

TEST(DecodedImage, RejectsBranchOffInstructionBoundary) {
  // jmp +1 lands inside the push.i16 that follows it.
  ExpectRejected(MakeImage({B(Op::kJmp), 0x00, 0x01,        //
                            B(Op::kPushI16), 0x00, 0x07,    //
                            B(Op::kPop), B(Op::kRet)}),
                 "branch target off instruction boundary");
}

TEST(DecodedImage, RejectsBranchOutOfCode) {
  ExpectRejected(MakeImage({B(Op::kJmp), 0x00, 0x40, B(Op::kRet)}), "branch target out of code");
  // Backward past the start of code.
  ExpectRejected(MakeImage({B(Op::kJmp), 0xff, 0x80, B(Op::kRet)}), "branch target out of code");
}

TEST(DecodedImage, RejectsFallingOffTheEndOfCode) {
  ExpectRejected(MakeImage({B(Op::kNop)}), "falls off the end");
}

TEST(DecodedImage, RejectsStaticStackOverflow) {
  // One push deeper than the VM stack, all statically visible.
  std::vector<uint8_t> code(kVmStackDepth + 1, B(Op::kPush0));
  code.push_back(B(Op::kRet));
  ExpectRejected(MakeImage(std::move(code)), "static stack overflow");
}

TEST(DecodedImage, AcceptsExactlyFullStack) {
  std::vector<uint8_t> code(kVmStackDepth, B(Op::kPush0));
  code.push_back(B(Op::kRet));
  EXPECT_TRUE(DecodeStatus(MakeImage(std::move(code))).ok());
}

TEST(DecodedImage, RejectsStaticStackUnderflow) {
  ExpectRejected(MakeImage({B(Op::kPop), B(Op::kRet)}), "static stack underflow");
  // A binary op with a single operand underflows too.
  ExpectRejected(MakeImage({B(Op::kPush1), B(Op::kAdd), B(Op::kPop), B(Op::kRet)}),
                 "static stack underflow");
  // ret.val with nothing to return.
  ExpectRejected(MakeImage({B(Op::kRetVal)}), "static stack underflow");
}

TEST(DecodedImage, RejectsStackOverflowAroundLoop) {
  // A loop whose body has a net positive stack effect: depth grows each
  // iteration, so the interval analysis must flag it even though a single
  // pass over the body fits.
  ExpectRejected(MakeImage({B(Op::kPush0),                //
                            B(Op::kJmp), 0xff, 0xfc,      // back to the push
                            B(Op::kRet)}),
                 "static stack overflow");
}

TEST(DecodedImage, RejectsOutOfRangeGlobalSlot) {
  DriverImage image = MakeImage({B(Op::kPush0), B(Op::kStoreG), 0x02, B(Op::kRet)});
  image.scalar_types = {DslType::kInt32};  // slot 2 does not exist
  ExpectRejected(image, "global slot out of range");
}

TEST(DecodedImage, RejectsOutOfRangeArrayIndex) {
  // No arrays declared: every static array reference is invalid.
  ExpectRejected(MakeImage({B(Op::kRetArr), 0x00}), "array index out of range");
  ExpectRejected(MakeImage({B(Op::kPush0), B(Op::kLoadA), 0x03, B(Op::kPop), B(Op::kRet)}),
                 "array index out of range");
}

TEST(DecodedImage, RejectsOutOfRangeLocalIndex) {
  ExpectRejected(MakeImage({B(Op::kLoadL), 0x04, B(Op::kPop), B(Op::kRet)}),
                 "local index out of range");
}

TEST(DecodedImage, RejectsSignalToUnhandledEvent) {
  ExpectRejected(MakeImage({B(Op::kSignalSelf), 0x50, B(Op::kRet)}), "signal to unhandled event");
}

TEST(DecodedImage, RejectsSignalToUnknownNativeFunction) {
  ExpectRejected(MakeImage({B(Op::kSignalLib), 0x09, 0x09, B(Op::kRet)}),
                 "signal to unknown native function");
}

TEST(DecodedImage, RejectsSignalToUnimportedLibrary) {
  // timer.stop exists globally but the image never imported the library:
  // a configuration fault caught at load time, not per-dispatch.
  DriverImage image = MakeImage({B(Op::kSignalLib), kLibTimer, kTimerStop, B(Op::kRet)});
  image.imports = {kLibAdc};
  ExpectRejected(image, "signal to library not in imports");
  image.imports = {kLibAdc, kLibTimer};
  EXPECT_TRUE(DecodeStatus(image).ok());
}

TEST(DecodedImage, RejectsHandlerOffInstructionBoundary) {
  DriverImage image = MakeImage({B(Op::kPushI16), 0x00, 0x07, B(Op::kPop), B(Op::kRet)});
  image.handlers.push_back(HandlerEntry{kEventRead, 0, 1});  // inside the push
  ExpectRejected(image, "handler entry off instruction boundary");
}

TEST(DecodedImage, RejectsHandlerOffsetOutOfRange) {
  DriverImage image = MakeImage({B(Op::kRet)});
  image.handlers.push_back(HandlerEntry{kEventRead, 0, 9});
  ExpectRejected(image, "handler offset out of range");

  DriverImage empty;
  empty.device_id = 1;
  empty.handlers.push_back(HandlerEntry{kEventInit, 0, 0});  // but no code at all
  ExpectRejected(empty, "handler offset out of range");
}

TEST(DecodedImage, RejectsHandlerWithTooManyArguments) {
  DriverImage image = MakeImage({B(Op::kRet)});
  image.handlers[0].argc = 5;  // locals has 4 slots
  ExpectRejected(image, "declares 5 arguments");
}

// ------------------------------------------------------ decoded form --------

TEST(DecodedImage, ResolvesBranchesConstantsAndHandlerTable) {
  // init: push.i16 300; jz +1; nop; ret   (jz lands on ret)
  DriverImage image = MakeImage({B(Op::kPushI16), 0x01, 0x2c,  //
                                 B(Op::kJz), 0x00, 0x01,       //
                                 B(Op::kNop),                  //
                                 B(Op::kRet)});
  Result<DecodedImage> decoded = DecodedImage::Decode(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  ASSERT_EQ(decoded->code().size(), 4u);
  EXPECT_EQ(decoded->code()[0].imm, 300);
  EXPECT_EQ(decoded->code()[1].imm, 3);  // decoded index of ret, not a byte offset
  EXPECT_EQ(decoded->code()[1].cycles, OpCycleCost(Op::kJz));

  const DecodedHandler* handler = decoded->FindHandler(kEventInit);
  ASSERT_NE(handler, nullptr);
  EXPECT_EQ(handler->entry, 0u);
  EXPECT_EQ(handler->max_stack, 1u);
  EXPECT_EQ(decoded->FindHandler(kEventRead), nullptr);
  EXPECT_EQ(decoded->max_stack_depth(), 1u);
}

TEST(DecodedImage, EveryBundledDriverVerifies) {
  // The compiler's output must always satisfy the verifier — the pipeline
  // would otherwise reject its own drivers.
  for (const BundledDriver& d : BundledDrivers()) {
    Result<DriverImage> image = CompileDriver(d.source);
    ASSERT_TRUE(image.ok()) << d.name;
    Result<DecodedImage> decoded = DecodedImage::Decode(*image);
    EXPECT_TRUE(decoded.ok()) << d.name << ": " << decoded.status().ToString();
    EXPECT_LE(decoded->max_stack_depth(), kVmStackDepth) << d.name;
    EXPECT_EQ(decoded->crc(), image->ImageCrc());
  }
}

// ------------------------------------------------- runtime traps stay -------
//
// The dangerous value in each test below arrives as an event argument, which
// the abstract interpreter must treat as arbitrary: the image is accepted
// and the check stays as a runtime trap.  The provable counterparts (a
// constant zero divisor, a constant out-of-bounds subscript, a loop with no
// exit) are rejected at Decode — see tests/abstract_interp_test.cpp.

TEST(DecodedImage, WatchdogStillTrapsAtRuntime) {
  // Loops while the event argument is nonzero: an infinite but stack-balanced
  // loop the analyzer cannot rule out, so the watchdog catches it executing.
  DriverImage image = MakeImage({B(Op::kLoadL), 0x00,         //
                                 B(Op::kJnz), 0xff, 0xfb,     // back to the load
                                 B(Op::kRet)});
  image.handlers[0].argc = 1;
  Result<std::shared_ptr<const DecodedImage>> decoded = DecodedImage::DecodeShared(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  Vm vm(*decoded);
  EXPECT_EQ(vm.Dispatch(Event::Of(kEventInit, 0), nullptr).outcome, Vm::Outcome::kDone);
  Vm::ExecResult r = vm.Dispatch(Event::Of(kEventInit, 1), nullptr);
  EXPECT_EQ(r.outcome, Vm::Outcome::kTrap);
  EXPECT_NE(r.trap.message().find("watchdog"), std::string::npos);
  EXPECT_EQ(r.instructions, kVmWatchdogInstructions + 1);
}

TEST(DecodedImage, DynamicArraySubscriptStillTrapsAtRuntime) {
  // The array *index* operand is static (and verified); the subscript comes
  // in as runtime data and still traps out of bounds.
  DriverImage image = MakeImage({B(Op::kLoadL), 0x00,        //
                                 B(Op::kLoadA), 0x00,        //
                                 B(Op::kPop), B(Op::kRet)});
  image.array_sizes = {4};
  image.handlers[0].argc = 1;
  Result<std::shared_ptr<const DecodedImage>> decoded = DecodedImage::DecodeShared(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  Vm vm(*decoded);
  EXPECT_EQ(vm.Dispatch(Event::Of(kEventInit, 3), nullptr).outcome, Vm::Outcome::kDone);
  Vm::ExecResult r = vm.Dispatch(Event::Of(kEventInit, 5), nullptr);
  EXPECT_EQ(r.outcome, Vm::Outcome::kTrap);
  EXPECT_NE(r.trap.message().find("array subscript out of bounds"), std::string::npos);
}

TEST(DecodedImage, DivisionByZeroStillTrapsAtRuntime) {
  DriverImage image = MakeImage({B(Op::kPush1), B(Op::kLoadL), 0x00, B(Op::kDiv),  //
                                 B(Op::kPop), B(Op::kRet)});
  image.handlers[0].argc = 1;
  Result<std::shared_ptr<const DecodedImage>> decoded = DecodedImage::DecodeShared(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  Vm vm(*decoded);
  EXPECT_EQ(vm.Dispatch(Event::Of(kEventInit, 2), nullptr).outcome, Vm::Outcome::kDone);
  Vm::ExecResult r = vm.Dispatch(Event::Of(kEventInit, 0), nullptr);
  EXPECT_EQ(r.outcome, Vm::Outcome::kTrap);
  EXPECT_NE(r.trap.message().find("division by zero"), std::string::npos);
  EXPECT_EQ(r.instructions, 3u);  // push, push, div — all charged
}

}  // namespace
}  // namespace micropnp
