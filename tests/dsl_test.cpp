// Tests for the μPnP driver DSL toolchain: lexer, parser, compiler, driver
// image format, disassembler, and the bundled driver sources.

#include <gtest/gtest.h>

#include "src/common/sloc.h"
#include "src/core/driver_sources.h"
#include "src/periph/peripheral.h"
#include "src/dsl/bytecode.h"
#include "src/dsl/compiler.h"
#include "src/dsl/lexer.h"
#include "src/dsl/parser.h"

namespace micropnp {
namespace {

// A minimal valid driver scaffold used by many tests.
constexpr const char* kMinimalDriver = R"(
device 0x11223344;
import adc;

event init():
    signal adc.init(ADC_REF_VDD, ADC_RES_10BIT);

event destroy():
    signal adc.reset();
)";

// ---------------------------------------------------------------- lexer ----

TEST(Lexer, TokenizesListingOneFragment) {
  Result<std::vector<Token>> tokens = Tokenize("uint8_t idx, rfid[12];\n");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 8u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kTypeUint8);
  EXPECT_EQ((*tokens)[1].text, "idx");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kComma);
  EXPECT_EQ((*tokens)[3].text, "rfid");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kLBracket);
  EXPECT_EQ((*tokens)[5].int_value, 12);
}

TEST(Lexer, HexAndCharLiterals) {
  Result<std::vector<Token>> tokens = Tokenize("0x0d 'A' '\\n'\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 0x0d);
  EXPECT_EQ((*tokens)[1].int_value, 'A');
  EXPECT_EQ((*tokens)[2].int_value, '\n');
}

TEST(Lexer, IndentationProducesIndentDedent) {
  Result<std::vector<Token>> tokens = Tokenize(
      "event init():\n"
      "    idx = 0;\n"
      "idx = 1;\n");
  ASSERT_TRUE(tokens.ok());
  int indents = 0, dedents = 0;
  for (const Token& t : *tokens) {
    indents += (t.kind == TokenKind::kIndent);
    dedents += (t.kind == TokenKind::kDedent);
  }
  EXPECT_EQ(indents, 1);
  EXPECT_EQ(dedents, 1);
}

TEST(Lexer, CommentsAndBlankLinesIgnored) {
  Result<std::vector<Token>> tokens = Tokenize(
      "# a comment line\n"
      "\n"
      "   \n"
      "idx = 0;  # trailing\n");
  ASSERT_TRUE(tokens.ok());
  // identifier, '=', 0, ';', eof
  EXPECT_EQ(tokens->size(), 5u);
}

TEST(Lexer, ReportsErrorsWithLineNumbers) {
  Result<std::vector<Token>> tokens = Tokenize("ok = 1;\nbad = $;\n");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 2"), std::string::npos);
}

TEST(Lexer, RejectsOverflowingLiterals) {
  EXPECT_FALSE(Tokenize("x = 4294967296;\n").ok());     // 2^32
  EXPECT_FALSE(Tokenize("x = 0x1ffffffff;\n").ok());
  EXPECT_TRUE(Tokenize("x = 0xffffffff;\n").ok());      // 2^32-1 fits
}

TEST(Lexer, TwoCharacterOperators) {
  Result<std::vector<Token>> tokens = Tokenize("a == b != c <= d >= e << f >> g && h || i\n");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) {
    if (t.kind != TokenKind::kIdentifier && t.kind != TokenKind::kEndOfFile) {
      kinds.push_back(t.kind);
    }
  }
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{TokenKind::kEq, TokenKind::kNe, TokenKind::kLe, TokenKind::kGe,
                                    TokenKind::kShl, TokenKind::kShr, TokenKind::kAnd,
                                    TokenKind::kOr}));
}

// --------------------------------------------------------------- parser ----

TEST(Parser, ParsesDeclarationsAndHandlers) {
  Result<DriverAst> ast = ParseDriver(R"(
device 0xad1c0001;
import uart;
const LIMIT = 10 + 2;
uint8_t idx, rfid[12];
bool busy;

event init():
    idx = 0;

event destroy():
    busy = false;
)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_TRUE(ast->has_device_id);
  EXPECT_EQ(ast->device_id, 0xad1c0001u);
  ASSERT_EQ(ast->imports.size(), 1u);
  EXPECT_EQ(ast->imports[0], "uart");
  ASSERT_EQ(ast->consts.size(), 1u);
  EXPECT_EQ(ast->consts[0].value, 12);
  ASSERT_EQ(ast->vars.size(), 3u);
  EXPECT_EQ(ast->vars[1].array_size, 12);
  ASSERT_EQ(ast->handlers.size(), 2u);
}

TEST(Parser, ParsesIfElifElseAndWhile) {
  Result<DriverAst> ast = ParseDriver(R"(
device 1;
uint8_t x;
event init():
    if x == 1:
        x = 2;
    elif x == 2:
        x = 3;
    else:
        while x < 10:
            x += 1;
event destroy():
    x = 0;
)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const Handler& init = ast->handlers[0];
  ASSERT_EQ(init.body.size(), 1u);
  const Stmt& if_stmt = *init.body[0];
  EXPECT_EQ(if_stmt.kind, Stmt::Kind::kIf);
  EXPECT_EQ(if_stmt.branches.size(), 2u);
  ASSERT_EQ(if_stmt.else_body.size(), 1u);
  EXPECT_EQ(if_stmt.else_body[0]->kind, Stmt::Kind::kWhile);
}

TEST(Parser, ParsesSignalTargets) {
  Result<DriverAst> ast = ParseDriver(R"(
device 1;
import uart;
event init():
    signal uart.init(9600, 0, 1, 8);
event destroy():
    signal this.init();
)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const Stmt& lib_signal = *ast->handlers[0].body[0];
  EXPECT_FALSE(lib_signal.signal_this);
  EXPECT_EQ(lib_signal.signal_target, "uart");
  EXPECT_EQ(lib_signal.args.size(), 4u);
  const Stmt& self_signal = *ast->handlers[1].body[0];
  EXPECT_TRUE(self_signal.signal_this);
  EXPECT_EQ(self_signal.signal_name, "init");
}

TEST(Parser, OperatorPrecedence) {
  Result<DriverAst> ast = ParseDriver(R"(
device 1;
int32_t r;
event init():
    r = 2 + 3 * 4;
event destroy():
    r = 0;
)");
  ASSERT_TRUE(ast.ok());
  const Stmt& assign = *ast->handlers[0].body[0];
  // Must parse as 2 + (3*4): top node is kAdd.
  ASSERT_EQ(assign.value->kind, Expr::Kind::kBinary);
  EXPECT_EQ(assign.value->bin_op, BinOp::kAdd);
  EXPECT_EQ(assign.value->rhs->bin_op, BinOp::kMul);
}

TEST(Parser, PostIncrementInArrayIndex) {
  Result<DriverAst> ast = ParseDriver(R"(
device 1;
uint8_t idx, buf[4];
event init():
    buf[idx++] = 7;
event destroy():
    idx = 0;
)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const Stmt& assign = *ast->handlers[0].body[0];
  ASSERT_NE(assign.index, nullptr);
  EXPECT_EQ(assign.index->kind, Expr::Kind::kPostIncDec);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  Result<DriverAst> ast = ParseDriver("device 1;\nevent init(:\n");
  ASSERT_FALSE(ast.ok());
  EXPECT_NE(ast.status().message().find("line 2"), std::string::npos);
}

TEST(Parser, RejectsDuplicateDevice) {
  EXPECT_FALSE(ParseDriver("device 1;\ndevice 2;\n").ok());
}

// ------------------------------------------------------------- compiler ----

TEST(Compiler, CompilesMinimalDriver) {
  Result<DriverImage> image = CompileDriver(kMinimalDriver);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->device_id, 0x11223344u);
  ASSERT_EQ(image->imports.size(), 1u);
  EXPECT_EQ(image->imports[0], kLibAdc);
  EXPECT_NE(image->FindHandler(kEventInit), nullptr);
  EXPECT_NE(image->FindHandler(kEventDestroy), nullptr);
  EXPECT_EQ(image->FindHandler(kEventRead), nullptr);
}

TEST(Compiler, RequiresDeviceDeclaration) {
  Result<DriverImage> image = CompileDriver("event init():\n    x = 0;\n");
  EXPECT_FALSE(image.ok());
}

TEST(Compiler, RequiresInitAndDestroy) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
uint8_t x;
event init():
    x = 0;
)");
  ASSERT_FALSE(image.ok());
  EXPECT_NE(image.status().message().find("destroy"), std::string::npos);
}

TEST(Compiler, RejectsUnknownImport) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
import pcie;
event init():
    signal pcie.init();
event destroy():
    signal pcie.reset();
)");
  ASSERT_FALSE(image.ok());
  EXPECT_NE(image.status().message().find("pcie"), std::string::npos);
}

TEST(Compiler, RejectsUndeclaredVariable) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
event init():
    missing = 3;
event destroy():
    missing = 0;
)");
  EXPECT_FALSE(image.ok());
}

TEST(Compiler, RejectsArityMismatch) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
import adc;
event init():
    signal adc.init(1);
event destroy():
    signal adc.reset();
)");
  ASSERT_FALSE(image.ok());
  EXPECT_NE(image.status().message().find("2 argument"), std::string::npos);
}

TEST(Compiler, RejectsSignalToMissingHandler) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
uint8_t x;
event init():
    signal this.helper();
event destroy():
    x = 0;
)");
  EXPECT_FALSE(image.ok());
}

TEST(Compiler, RejectsWrongArgcOnWellKnownEvent) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
uint8_t x;
event init(int32_t nope):
    x = 0;
event destroy():
    x = 0;
)");
  EXPECT_FALSE(image.ok());
}

TEST(Compiler, ErrorHandlersRequireErrorKeyword) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
uint8_t x;
event init():
    x = 0;
event destroy():
    x = 0;
event timeOut():
    x = 1;
)");
  ASSERT_FALSE(image.ok());
  EXPECT_NE(image.status().message().find("error"), std::string::npos);
}

TEST(Compiler, CustomEventsGetCustomIds) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
uint8_t x;
event init():
    signal this.helper();
event destroy():
    x = 0;
event helper():
    x = 1;
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  const HandlerEntry* helper = image->FindHandler(kEventCustomBase);
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->argc, 0);
}

TEST(Compiler, LibraryConstantsResolve) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
import uart;
event init():
    signal uart.init(USART_BAUD_9600, USART_PARITY_NONE, USART_STOP_BITS_1, USART_DATA_BITS_8);
event destroy():
    signal uart.reset();
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
}

TEST(Compiler, ArraysMustBeByteSized) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
int32_t big[4];
event init():
    big[0] = 1;
event destroy():
    big[0] = 0;
)");
  ASSERT_FALSE(image.ok());
  EXPECT_NE(image.status().message().find("uint8_t or char"), std::string::npos);
}

// -------------------------------------------------------------- image ------

TEST(DriverImage, SerializeParseRoundTrip) {
  Result<DriverImage> image = CompileDriver(kMinimalDriver);
  ASSERT_TRUE(image.ok());
  std::vector<uint8_t> bytes = image->Serialize();
  EXPECT_EQ(bytes.size(), image->SerializedSize());

  Result<DriverImage> parsed = DriverImage::Parse(ByteSpan(bytes.data(), bytes.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, *image);
}

TEST(DriverImage, ParseRejectsCorruption) {
  Result<DriverImage> image = CompileDriver(kMinimalDriver);
  ASSERT_TRUE(image.ok());
  std::vector<uint8_t> bytes = image->Serialize();
  bytes[bytes.size() / 2] ^= 0xff;
  Result<DriverImage> parsed = DriverImage::Parse(ByteSpan(bytes.data(), bytes.size()));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorrupt);
}

TEST(DriverImage, ParseRejectsBadMagicAndShortInput) {
  std::vector<uint8_t> junk = {1, 2, 3};
  EXPECT_FALSE(DriverImage::Parse(ByteSpan(junk.data(), junk.size())).ok());
}

// --------------------------------------------------------------- disasm ----

TEST(Disassemble, RendersInstructions) {
  Result<DriverImage> image = CompileDriver(kMinimalDriver);
  ASSERT_TRUE(image.ok());
  std::string listing = Disassemble(ByteSpan(image->code.data(), image->code.size()));
  EXPECT_NE(listing.find("signal.lib"), std::string::npos);
  EXPECT_NE(listing.find("ret"), std::string::npos);
}

TEST(Bytecode, OperandSizesConsistent) {
  EXPECT_EQ(OpOperandBytes(Op::kPush0), 0);
  EXPECT_EQ(OpOperandBytes(Op::kPushI16), 2);
  EXPECT_EQ(OpOperandBytes(Op::kPushI32), 4);
  EXPECT_EQ(OpOperandBytes(Op::kSignalLib), 2);
  EXPECT_EQ(OpOperandBytes(static_cast<Op>(0xfe)), -1);
}

TEST(Bytecode, CycleCostsMatchPaperStackOperations) {
  // Section 6.2: push() 11.1 us, pop() 8.9 us at 16 MHz -> 178 / 142 cycles.
  // push.0 = dispatch + push; pop = dispatch + pop; their difference is the
  // push/pop cost difference.
  const uint32_t push_cost = OpCycleCost(Op::kPush0);
  const uint32_t pop_cost = OpCycleCost(Op::kPop);
  EXPECT_EQ(push_cost - pop_cost, 178u - 142u);
}

// ------------------------------------------------------ bundled drivers ----

class BundledDriverTest : public ::testing::TestWithParam<BundledDriver> {};

TEST_P(BundledDriverTest, CompilesAndMatchesMetadata) {
  const BundledDriver& driver = GetParam();
  Result<DriverImage> image = CompileDriver(driver.source);
  ASSERT_TRUE(image.ok()) << driver.name << ": " << image.status().ToString();
  EXPECT_EQ(image->device_id, driver.device_id);
  EXPECT_NE(image->FindHandler(kEventInit), nullptr);
  EXPECT_NE(image->FindHandler(kEventDestroy), nullptr);
  // Table 3's claim: μPnP drivers are compact.  Every bundled driver's image
  // fits in a single 6LoWPAN-fragmented UDP transfer (< 1 KiB).
  EXPECT_LT(image->SerializedSize(), 1024u);
}

TEST_P(BundledDriverTest, ImageRoundTripsOverTheWire) {
  const BundledDriver& driver = GetParam();
  Result<DriverImage> image = CompileDriver(driver.source);
  ASSERT_TRUE(image.ok());
  std::vector<uint8_t> wire = image->Serialize();
  Result<DriverImage> parsed = DriverImage::Parse(ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, *image);
}

INSTANTIATE_TEST_SUITE_P(AllBundled, BundledDriverTest,
                         ::testing::ValuesIn(BundledDrivers().begin(), BundledDrivers().end()),
                         [](const ::testing::TestParamInfo<BundledDriver>& param_info) {
                           std::string name = param_info.param.name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(BundledDrivers, SensorDriversAreLeanerThanNativeOnes) {
  // Table 3 shape check at the source level: the ID-20LA DSL driver of the
  // paper is 43 SLoC; ours should be in that ballpark.
  const BundledDriver* id20la = FindBundledDriver(kId20LaTypeId);
  ASSERT_NE(id20la, nullptr);
  const int sloc = CountSloc(id20la->source, SlocLanguage::kMicroPnpDsl);
  EXPECT_GE(sloc, 20);
  EXPECT_LE(sloc, 50);
}

}  // namespace
}  // namespace micropnp
