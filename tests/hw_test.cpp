// Unit + property tests for the hardware identification substrate (Section 3
// of the paper): E-series ladders, multivibrator pulses, the pulse codec, the
// control board scan, and the Section 6.1 timing/energy windows.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/hw/control_board.h"
#include "src/hw/energy_model.h"
#include "src/hw/eseries.h"
#include "src/hw/id_codec.h"
#include "src/hw/multivibrator.h"
#include "src/hw/pinout.h"

namespace micropnp {
namespace {

// -------------------------------------------------------------- eseries ----

TEST(ESeries, SizesMatchStandard) {
  EXPECT_EQ(ESeriesSize(ESeries::kE12), 12);
  EXPECT_EQ(ESeriesSize(ESeries::kE24), 24);
  EXPECT_EQ(ESeriesSize(ESeries::kE48), 48);
  EXPECT_EQ(ESeriesSize(ESeries::kE96), 96);
}

TEST(ESeries, NearestStandardValuePicksExactMember) {
  EXPECT_NEAR(NearestStandardValue(ESeries::kE96, Ohms(3480)).value(), 3480, 1e-9);
  EXPECT_NEAR(NearestStandardValue(ESeries::kE24, KiloOhms(4.7)).value(), 4700, 1e-9);
}

TEST(ESeries, NearestStandardValueRoundsInLogSpace) {
  // 1.011 is between 1.00 and 1.02 in E96; log-nearest is 1.02? log mid is
  // sqrt(1.00*1.02)=1.00995, so 1.011 -> 1.02.
  EXPECT_NEAR(NearestStandardValue(ESeries::kE96, Ohms(1.011)).value(), 1.02, 1e-9);
  EXPECT_NEAR(NearestStandardValue(ESeries::kE96, Ohms(1.009)).value(), 1.00, 1e-9);
}

TEST(ESeries, LadderWrapsDecades) {
  // Index 96 of an E96 ladder starting at 1.0 Ohm is 10.0 Ohm.
  EXPECT_NEAR(LadderValue(ESeries::kE96, Ohms(1.0), 96).value(), 10.0, 1e-9);
  EXPECT_NEAR(LadderValue(ESeries::kE96, Ohms(1.0), 97).value(), 10.2, 1e-9);
}

TEST(ESeries, LadderIndexIsInverseOfLadderValue) {
  for (int i = 0; i < 256; i += 7) {
    Ohms v = LadderValue(ESeries::kE96, Ohms(3480), i);
    EXPECT_EQ(LadderIndex(ESeries::kE96, Ohms(3480), v), i) << "index " << i;
  }
}

TEST(ESeries, ToleranceValues) {
  EXPECT_DOUBLE_EQ(ESeriesTolerance(ESeries::kE96), 0.01);
  EXPECT_DOUBLE_EQ(ESeriesTolerance(ESeries::kE12), 0.10);
}

// -------------------------------------------------------- multivibrator ----

TEST(Multivibrator, NominalPulseFollowsKRC) {
  MultivibratorSpec spec;
  spec.k_tolerance = 0.0;
  spec.c_tolerance = 0.0;
  spec.calibration_tolerance = 0.0;
  Rng rng(1);
  MonostableMultivibrator vib(spec, rng);
  // T = 1.1 * 10k * 10nF = 110 us.
  EXPECT_NEAR(vib.PulseFor(KiloOhms(10)).value(), 110e-6, 1e-12);
}

TEST(Multivibrator, ManufacturingVariationWithinTolerance) {
  MultivibratorSpec spec;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    MonostableMultivibrator vib(spec, rng);
    EXPECT_LE(std::fabs(vib.actual_k() - spec.k) / spec.k, spec.k_tolerance + 1e-12);
    EXPECT_LE(std::fabs(vib.actual_c().value() - spec.c.value()) / spec.c.value(),
              spec.c_tolerance + 1e-12);
  }
}

TEST(Multivibrator, PulseScalesLinearlyWithResistance) {
  MultivibratorSpec spec;
  Rng rng(3);
  MonostableMultivibrator vib(spec, rng);
  double t1 = vib.PulseFor(KiloOhms(10)).value();
  double t2 = vib.PulseFor(KiloOhms(20)).value();
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(SampleToleranced, TruncatesAtTolerance) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    double v = SampleToleranced(100.0, 0.01, rng);
    EXPECT_GE(v, 99.0 - 1e-9);
    EXPECT_LE(v, 101.0 + 1e-9);
  }
}

// --------------------------------------------------------------- codec ----

TEST(IdentCodec, ResistorLadderIsMonotonic) {
  IdentCodec codec{IdentCircuitConfig{}};
  for (int b = 1; b < 256; ++b) {
    EXPECT_GT(codec.ResistorForByte(static_cast<uint8_t>(b)).value(),
              codec.ResistorForByte(static_cast<uint8_t>(b - 1)).value());
  }
}

TEST(IdentCodec, ByteForResistorInvertsResistorForByte) {
  IdentCodec codec{IdentCircuitConfig{}};
  for (int b = 0; b < 256; ++b) {
    auto back = codec.ByteForResistor(codec.ResistorForByte(static_cast<uint8_t>(b)));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, b);
  }
}

TEST(IdentCodec, ByteForResistorRejectsOutOfLadder) {
  IdentCodec codec{IdentCircuitConfig{}};
  EXPECT_FALSE(codec.ByteForResistor(Ohms(100.0)).has_value());   // below base
  EXPECT_FALSE(codec.ByteForResistor(Ohms(50e6)).has_value());    // above top
}

TEST(IdentCodec, PulseRangeMatchesDesignBudget) {
  IdentCodec codec{IdentCircuitConfig{}};
  // Base pulse ~38.3 us (1.1 * 3.48k * 10nF), top pulse below 18 ms so a
  // worst-case 4-pulse sequence fits the 74 ms channel slot.
  EXPECT_NEAR(codec.NominalPulseForByte(0).value(), 38.28e-6, 0.5e-6);
  EXPECT_LT(codec.NominalPulseForByte(255).value(), 18e-3);
  EXPECT_GT(codec.NominalPulseForByte(255).value(), 15e-3);
}

TEST(IdentCodec, DecodeNominalPulsesExactly) {
  IdentCodec codec{IdentCircuitConfig{}};
  const Seconds ref = codec.NominalPulseForByte(0);
  for (int b = 0; b < 256; ++b) {
    auto decoded = codec.DecodePulse(codec.NominalPulseForByte(static_cast<uint8_t>(b)), ref);
    ASSERT_TRUE(decoded.has_value()) << "byte " << b;
    EXPECT_EQ(*decoded, b);
  }
}

TEST(IdentCodec, DecodeRejectsGuardBandPulses) {
  IdentCodec codec{IdentCircuitConfig{}};
  const Seconds ref = codec.NominalPulseForByte(0);
  // A pulse exactly halfway (in log space) between levels 10 and 11 must be
  // rejected rather than guessed.
  const double g = codec.level_ratio();
  Seconds halfway = Seconds(ref.value() * std::pow(g, 10.5));
  EXPECT_FALSE(codec.DecodePulse(halfway, ref).has_value());
}

TEST(IdentCodec, DecodeRejectsNonPositive) {
  IdentCodec codec{IdentCircuitConfig{}};
  EXPECT_FALSE(codec.DecodePulse(Seconds(0.0), Seconds(1e-3)).has_value());
  EXPECT_FALSE(codec.DecodePulse(Seconds(1e-3), Seconds(0.0)).has_value());
}

TEST(IdentCodec, SinglePulseEncodingIsInfeasibleFor32Bits) {
  // The Figure 3 rationale: one pulse holding 32 bits with E96-style level
  // spacing needs a component span beyond any physical resistor.
  double worst = SinglePulseWorstCaseSeconds(38e-6, 1.0243, 32);
  EXPECT_TRUE(std::isinf(worst));
  // 8 bits per pulse stays in the tens of milliseconds.
  double per_byte = SinglePulseWorstCaseSeconds(38e-6, 1.0243, 8);
  EXPECT_LT(per_byte, 25e-3);
}

// -------------------------------------------------------- control board ----

class ControlBoardTest : public ::testing::Test {
 protected:
  ControlBoardTest() : rng_(12345), board_(ControlBoardConfig{}, rng_) {}

  PeripheralPlug PlugFor(DeviceTypeId id, BusKind bus = BusKind::kAdc) {
    return MakePlugForId(board_.codec(), id, bus, rng_);
  }

  Rng rng_;
  ControlBoard board_;
};

TEST_F(ControlBoardTest, ConnectRaisesInterrupt) {
  int interrupts = 0;
  board_.set_interrupt_handler([&] { ++interrupts; });
  ASSERT_TRUE(board_.Connect(0, PlugFor(0xad1cbe01)).ok());
  EXPECT_EQ(interrupts, 1);
  EXPECT_TRUE(board_.interrupt_pending());
  ASSERT_TRUE(board_.Disconnect(0).ok());
  EXPECT_EQ(interrupts, 2);
}

TEST_F(ControlBoardTest, ScanIdentifiesConnectedPeripheral) {
  ASSERT_TRUE(board_.Connect(1, PlugFor(0xad1cbe01)).ok());
  ScanResult scan = board_.Scan();
  ASSERT_EQ(scan.channels.size(), 3u);
  EXPECT_FALSE(scan.channels[0].occupied);
  ASSERT_TRUE(scan.channels[1].occupied);
  ASSERT_TRUE(scan.channels[1].id.has_value());
  EXPECT_EQ(*scan.channels[1].id, 0xad1cbe01u);
  EXPECT_FALSE(board_.interrupt_pending());
}

TEST_F(ControlBoardTest, ScanIdentifiesMultiplePeripherals) {
  ASSERT_TRUE(board_.Connect(0, PlugFor(0x0a0bbf03, BusKind::kI2c)).ok());
  ASSERT_TRUE(board_.Connect(2, PlugFor(0xbe03af0e, BusKind::kUart)).ok());
  ScanResult scan = board_.Scan();
  EXPECT_EQ(scan.channels[0].id.value_or(0), 0x0a0bbf03u);
  EXPECT_FALSE(scan.channels[1].occupied);
  EXPECT_EQ(scan.channels[2].id.value_or(0), 0xbe03af0eu);
}

TEST_F(ControlBoardTest, ConnectErrors) {
  EXPECT_EQ(board_.Connect(7, PlugFor(1)).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(board_.Connect(0, PlugFor(1)).ok());
  EXPECT_EQ(board_.Connect(0, PlugFor(2)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(board_.Disconnect(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(board_.Disconnect(9).code(), StatusCode::kOutOfRange);
}

TEST_F(ControlBoardTest, BusMuxFollowsDetectedPeripheral) {
  ASSERT_TRUE(board_.Connect(0, PlugFor(0x1, BusKind::kUart)).ok());
  EXPECT_EQ(board_.bus_for_channel(0), BusKind::kUart);
  EXPECT_EQ(board_.bus_for_channel(1), std::nullopt);
}

TEST_F(ControlBoardTest, LifetimeEnergyAccumulates) {
  ASSERT_TRUE(board_.Connect(0, PlugFor(0x01020304)).ok());
  EXPECT_NEAR(board_.lifetime_energy().value(), 0.0, 1e-15);  // power gated
  ScanResult first = board_.Scan();
  ScanResult second = board_.Scan();
  EXPECT_NEAR(board_.lifetime_energy().value(), first.energy.value() + second.energy.value(),
              1e-12);
  EXPECT_EQ(board_.scan_count(), 2u);
}

// Property: identification is correct across many random ids and
// manufacturing instances (tolerances on).
TEST(ControlBoardProperty, IdentificationIsReliableAcrossRandomIds) {
  Rng rng(777);
  ControlBoardConfig config;
  ControlBoard board(config, rng);
  int correct = 0, guard_rejects = 0, wrong = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    DeviceTypeId id = rng.NextU32();
    ASSERT_TRUE(board.Connect(0, MakePlugForId(board.codec(), id, BusKind::kAdc, rng)).ok());
    ScanResult scan = board.Scan();
    ASSERT_TRUE(board.Disconnect(0).ok());
    if (!scan.channels[0].id.has_value()) {
      ++guard_rejects;  // safe failure: rescan
    } else if (*scan.channels[0].id == id) {
      ++correct;
    } else {
      ++wrong;
    }
  }
  // Wrong identifications are the dangerous case; the guard band keeps them
  // essentially impossible with E96 1% parts plus calibration.
  EXPECT_EQ(wrong, 0);
  EXPECT_GE(correct, kTrials * 99 / 100);
  EXPECT_LE(guard_rejects, kTrials / 100);
}

// Section 6.1: "the time required varies between 220 ms and 300 ms" and
// "energy ... minimum value of 2.48e-3 J and a maximum value of 6.756e-3 J".
TEST(ControlBoardPaper, IdentificationWindowsMatchSection61) {
  IdentStats stats = SampleIdentification(500, 2024);
  EXPECT_GE(stats.min_duration.value(), 0.220);
  EXPECT_LE(stats.max_duration.value(), 0.300);
  EXPECT_GE(stats.min_energy.value(), 2.3e-3);
  EXPECT_LE(stats.max_energy.value(), 6.9e-3);
  EXPECT_EQ(stats.decode_errors, 0);
}

// Extremes: the all-zeros and all-ones ids bound the window.
TEST(ControlBoardPaper, ExtremeIdsBoundTheWindows) {
  Rng rng(5);
  IdentCircuitConfig circuit;
  circuit.resistor_tolerance = 0.0;
  circuit.vib.k_tolerance = 0.0;
  circuit.vib.c_tolerance = 0.0;
  circuit.vib.calibration_tolerance = 0.0;
  ControlBoardConfig config;
  config.circuit = circuit;
  ControlBoard board(config, rng);

  ASSERT_TRUE(board.Connect(0, MakePlugForId(board.codec(), 0x00000000u, BusKind::kAdc, rng)).ok());
  ScanResult lo = board.Scan();
  ASSERT_TRUE(board.Disconnect(0).ok());
  ASSERT_TRUE(board.Connect(0, MakePlugForId(board.codec(), 0xffffffffu, BusKind::kAdc, rng)).ok());
  ScanResult hi = board.Scan();

  EXPECT_NEAR(lo.energy.value(), 2.48e-3, 0.15e-3);
  EXPECT_NEAR(hi.energy.value(), 6.756e-3, 0.25e-3);
  EXPECT_GT(hi.duration.value(), lo.duration.value());
}

// --------------------------------------------------------- energy model ----

TEST(EnergyModel, InterconnectOrderingDrivesFigure12Divergence) {
  EXPECT_LT(InterconnectEnergyPerOperation(BusKind::kAdc).value(),
            InterconnectEnergyPerOperation(BusKind::kSpi).value());
  EXPECT_LT(InterconnectEnergyPerOperation(BusKind::kSpi).value(),
            InterconnectEnergyPerOperation(BusKind::kI2c).value());
  EXPECT_LT(InterconnectEnergyPerOperation(BusKind::kI2c).value(),
            InterconnectEnergyPerOperation(BusKind::kUart).value());
}

TEST(EnergyModel, UsbIdleDominatesItsYearlyEnergy) {
  UsbHostBaseline usb;
  Joules idle_only = usb.YearlyEnergy(0.0, 0.0);
  Joules busy = usb.YearlyEnergy(525960.0, 3.15e6);
  // Attach/transfer costs are real but small next to idling all year.
  EXPECT_LT(busy.value() / idle_only.value(), 1.2);
  EXPECT_GT(idle_only.value(), 5e5);  // hundreds of kJ per year
}

TEST(EnergyModel, MicroPnpScalesLinearlyWithChangeRate) {
  IdentStats stats = SampleIdentification(200, 99);
  UsbHostBaseline usb;
  YearlyEnergyPoint fast = ComputeYearlyEnergy(10, 10.0, BusKind::kAdc, stats, usb);
  YearlyEnergyPoint slow = ComputeYearlyEnergy(100, 10.0, BusKind::kAdc, stats, usb);
  // 10x fewer changes -> ~10x less identification energy (minus the shared
  // interconnect floor).
  const double comm_floor = InterconnectEnergyPerOperation(BusKind::kAdc).value() *
                            (kSecondsPerYear / 10.0);
  const double fast_ident = fast.upnp_mean.value() - comm_floor;
  const double slow_ident = slow.upnp_mean.value() - comm_floor;
  EXPECT_NEAR(fast_ident / slow_ident, 10.0, 0.01);
}

// The paper's headline: at hourly changes μPnP (ADC) is >4 orders of
// magnitude below the USB host shield.
TEST(EnergyModel, FourOrdersOfMagnitudeAtHourlyChanges) {
  IdentStats stats = SampleIdentification(200, 7);
  UsbHostBaseline usb;
  YearlyEnergyPoint hourly = ComputeYearlyEnergy(60, 10.0, BusKind::kAdc, stats, usb);
  EXPECT_GT(hourly.usb.value() / hourly.upnp_mean.value(), 1e4);
}

TEST(EnergyModel, ErrorBarsBracketMean) {
  IdentStats stats = SampleIdentification(200, 13);
  UsbHostBaseline usb;
  YearlyEnergyPoint p = ComputeYearlyEnergy(60, 10.0, BusKind::kUart, stats, usb);
  EXPECT_LE(p.upnp_min.value(), p.upnp_mean.value());
  EXPECT_GE(p.upnp_max.value(), p.upnp_mean.value());
}

// --------------------------------------------------------------- pinout ----

TEST(Pinout, Table1Rows) {
  EXPECT_EQ(CommPinRow(BusKind::kAdc), (std::array<std::string, 3>{"Analog Signal", "N/C", "N/C"}));
  EXPECT_EQ(CommPinRow(BusKind::kI2c), (std::array<std::string, 3>{"SDA", "SCL", "N/C"}));
  EXPECT_EQ(CommPinRow(BusKind::kSpi), (std::array<std::string, 3>{"MOSI", "MISO", "SCK"}));
  EXPECT_EQ(CommPinRow(BusKind::kUart), (std::array<std::string, 3>{"TX", "RX", "N/C"}));
}

TEST(Pinout, NonCommPinsAreNotConnected) {
  EXPECT_EQ(CommPinSignal(BusKind::kSpi, 1), "N/C");
  EXPECT_EQ(CommPinSignal(BusKind::kSpi, 19), "N/C");
}

}  // namespace
}  // namespace micropnp
