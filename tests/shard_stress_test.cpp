// Multi-threaded stress of the sharded runtime: 4 shards running in
// parallel while peripherals churn (plug/unplug/re-plug) and pinned gateway
// clients keep closed read loops in flight across shard boundaries.
//
// This is the concurrency regression suite — it is meant to run under
// ThreadSanitizer (-DMICROPNP_SANITIZE=thread in CI), where it exercises:
//  * cross-shard datagram hand-off through the MPSC inboxes,
//  * concurrent routing on distinct per-shard RouteContexts (the scratch
//    buffers that used to be fabric-global: shared scratch would be an
//    immediate TSan report here),
//  * membership writes (Join/LeaveGroup on churn) racing SMRF descents on
//    other shards, serialized by the fabric's shared_mutex,
//  * the shared decode cache fed from multiple shards at once.
//
// Everything the main thread asserts on is read either between lockstep
// quanta (ordered by the runtime's barriers) or after StopShardWorkers.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/deployment.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"

namespace micropnp {
namespace {

TEST(ShardStress, ConcurrentPlugsReadsAndUnplugsDrainClean) {
  constexpr int kShards = 4;
  constexpr int kThings = 120;
  constexpr int kReadsPerClient = 40;
  constexpr int kWindow = 8;

  DeploymentConfig config;
  config.seed = 20150931;
  config.num_shards = kShards;
  Deployment deployment(config);
  ASSERT_NE(deployment.runtime(), nullptr);
  ShardedRuntime& runtime = *deployment.runtime();
  (void)deployment.AddManager();

  struct ClientLoop {
    MicroPnpClient* client = nullptr;
    int issued = 0;
    int resolved = 0;
    int ok = 0;
    std::function<void()> issue_next;
  };
  std::vector<std::unique_ptr<ClientLoop>> loops;
  for (int i = 0; i < kShards; ++i) {
    auto loop = std::make_unique<ClientLoop>();
    loop->client = &deployment.AddClient("stress-client-" + std::to_string(i), nullptr,
                                         /*max_in_flight=*/kWindow + 8, /*shard_pin=*/i);
    loops.push_back(std::move(loop));
  }

  ThingConfig thing_config;
  thing_config.readvertise_min_ms = 0.0;
  Result<DriverImage> image = CompileDriver(FindBundledDriver(kTmp36TypeId)->source);
  ASSERT_TRUE(image.ok());
  struct ThingSlot {
    MicroPnpThing* thing = nullptr;
    Tmp36* sensor = nullptr;
  };
  std::vector<ThingSlot> slots;
  slots.reserve(kThings);
  for (int i = 0; i < kThings; ++i) {
    MicroPnpThing& thing =
        deployment.AddThing("stress-thing-" + std::to_string(i), nullptr, thing_config);
    ASSERT_TRUE(thing.PreinstallDriver(*image).ok());
    Tmp36& sensor = deployment.MakeTmp36();
    ASSERT_TRUE(thing.Plug(0, &sensor).ok());
    slots.push_back({&thing, &sensor});
  }
  deployment.RunForMillis(1000);  // bring-up: sequential lockstep quanta

  // Churn: every third thing unplugs mid-run and re-plugs later.  The
  // closures are scheduled on each thing's OWN shard scheduler before the
  // workers start, so the mutation runs on the owner thread.
  for (int i = 0; i < kThings; i += 3) {
    MicroPnpThing* thing = slots[static_cast<size_t>(i)].thing;
    Tmp36* sensor = slots[static_cast<size_t>(i)].sensor;
    Scheduler& owner = runtime.shard(thing->node().shard()).scheduler();
    const double unplug_at = 200.0 + static_cast<double>(i) * 7.0;
    owner.ScheduleAt(owner.now() + SimTime::FromMillis(unplug_at),
                     [thing] { (void)thing->Unplug(0); });
    owner.ScheduleAt(owner.now() + SimTime::FromMillis(unplug_at + 900.0),
                     [thing, sensor] { (void)thing->Plug(0, sensor); });
  }

  RequestOptions read_options;
  read_options.deadline_ms = 1500.0;
  read_options.max_retransmits = 2;
  read_options.initial_backoff_ms = 150.0;
  for (int i = 0; i < kShards; ++i) {
    ClientLoop& loop = *loops[static_cast<size_t>(i)];
    loop.issue_next = [&loop, &slots, i, read_options] {
      if (loop.issued >= kReadsPerClient) {
        return;
      }
      const ThingSlot& slot =
          slots[static_cast<size_t>(i + loop.issued * kShards) % slots.size()];
      ++loop.issued;
      loop.client->Read(
          slot.thing->node().address(), kTmp36TypeId,
          [&loop](Result<WireValue> value) {
            ++loop.resolved;
            if (value.ok()) {
              ++loop.ok;
            }
            loop.issue_next();
          },
          read_options);
    };
  }
  for (auto& loop : loops) {
    for (int i = 0; i < kWindow; ++i) {
      loop->issue_next();
    }
  }

  deployment.StartShardWorkers();
  const double guard_ms = deployment.NowMillis() + 120000.0;
  auto total_resolved = [&loops] {
    int total = 0;
    for (const auto& loop : loops) {
      total += loop->resolved;
    }
    return total;
  };
  while (total_resolved() < kShards * kReadsPerClient && deployment.NowMillis() < guard_ms) {
    deployment.RunForMillis(250.0);
  }
  // Reads typically drain before the churn window closes; keep the workers
  // running through the last re-plug (and its advertisement burst) so the
  // plug-flow/membership/decode-cache paths all execute in parallel too.
  deployment.RunForMillis(3000.0);
  deployment.StopShardWorkers();

  // Every read resolved (reply or deadline: reads racing an unplug may
  // legitimately fail, but none may be lost), nothing left in flight, and
  // no cross-shard post was dropped anywhere.
  EXPECT_EQ(total_resolved(), kShards * kReadsPerClient);
  int total_ok = 0;
  for (const auto& loop : loops) {
    EXPECT_EQ(loop->resolved, kReadsPerClient);
    EXPECT_EQ(loop->client->endpoint().in_flight(), 0u);
    total_ok += loop->ok;
  }
  EXPECT_GT(total_ok, 0);
  EXPECT_EQ(runtime.TotalDroppedPosts(), 0u);
  for (uint32_t s = 0; s < runtime.num_shards(); ++s) {
    EXPECT_EQ(runtime.shard(s).inbox_rejected_full(), 0u) << "shard " << s;
  }
  // The decode cache saw one unique image; every re-plug hit it.
  EXPECT_EQ(deployment.decode_cache().misses(), 1u);
  EXPECT_GT(deployment.decode_cache().hits(), 0u);
}

// The lookahead that makes the conservative quantum sound: the derived
// quantum must never exceed the fabric's minimum cross-node latency.
TEST(ShardStress, QuantumRespectsLinkModelLookahead) {
  DeploymentConfig config;
  config.num_shards = 2;
  Deployment deployment(config);
  (void)deployment.AddManager();
  (void)deployment.AddThing("t", nullptr);
  const double min_latency = deployment.fabric().MinCrossShardLatencyMs();
  EXPECT_GT(min_latency, 0.0);
  deployment.StartShardWorkers();
  EXPECT_LE(deployment.runtime()->quantum_ms(), min_latency);
  EXPECT_GT(deployment.runtime()->quantum_ms(), 0.0);
  deployment.StopShardWorkers();
}

}  // namespace
}  // namespace micropnp
