// Tests for the abstract interpreter (src/rt/abstract_interp.h): one
// hand-built image per finding class asserting the deploy-time rejection
// Status, accept-tests proving every bundled driver passes, opcode
// specialization at proven trap sites, and a differential test holding the
// trap-free dispatch path to bit-identical accounting against the fully
// checked one.

#include <gtest/gtest.h>

#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"
#include "src/rt/abstract_interp.h"
#include "src/rt/decoded_image.h"
#include "src/rt/driver_manager.h"
#include "src/rt/event_router.h"
#include "src/rt/vm.h"

namespace micropnp {
namespace {

uint8_t B(Op op) { return static_cast<uint8_t>(op); }

// A minimal image around raw code bytes: one init handler at offset 0.
DriverImage MakeImage(std::vector<uint8_t> code) {
  DriverImage image;
  image.device_id = 1;
  image.handlers.push_back(HandlerEntry{kEventInit, 0, 0});
  image.code = std::move(code);
  return image;
}

void ExpectRejected(const DriverImage& image, const std::string& fragment) {
  Result<DecodedImage> decoded = DecodedImage::Decode(image);
  ASSERT_FALSE(decoded.ok()) << "expected rejection for: " << fragment;
  EXPECT_NE(decoded.status().message().find("unsafe driver image"), std::string::npos)
      << decoded.status().ToString();
  EXPECT_NE(decoded.status().message().find(fragment), std::string::npos)
      << "got: " << decoded.status().ToString();
}

// Counts decoded instructions with opcode `op`.
size_t CountOps(const DecodedImage& decoded, Op op) {
  size_t n = 0;
  for (const DecodedInsn& insn : decoded.code()) {
    n += insn.op == op ? 1 : 0;
  }
  return n;
}

// ------------------------------------------- per-class rejection tests ------

TEST(AbstractInterp, RejectsProvableDivisionByZero) {
  ExpectRejected(MakeImage({B(Op::kPush1), B(Op::kPush0), B(Op::kDiv),  //
                            B(Op::kPop), B(Op::kRet)}),
                 "division by zero");
}

TEST(AbstractInterp, RejectsProvableModByZero) {
  ExpectRejected(MakeImage({B(Op::kPush1), B(Op::kPush0), B(Op::kMod),  //
                            B(Op::kPop), B(Op::kRet)}),
                 "division by zero");
}

TEST(AbstractInterp, RejectsProvableOutOfBoundsSubscript) {
  DriverImage image = MakeImage({B(Op::kPushI8), 0x05,  //
                                 B(Op::kLoadA), 0x00,   //
                                 B(Op::kPop), B(Op::kRet)});
  image.array_sizes = {4};  // index is always 5: disjoint from [0, 4)
  ExpectRejected(image, "array subscript always out of bounds");
}

TEST(AbstractInterp, RejectsProvableNegativeSubscriptStore) {
  DriverImage image = MakeImage({B(Op::kPushI8), 0xff,  // index -1
                                 B(Op::kPush1),         // value
                                 B(Op::kStoreA), 0x00,  //
                                 B(Op::kRet)});
  image.array_sizes = {4};
  ExpectRejected(image, "array subscript always out of bounds");
}

TEST(AbstractInterp, RejectsUninitializedLocalRead) {
  // The init handler declares no parameters; load.l 0 reads a slot no event
  // argument ever binds.
  ExpectRejected(MakeImage({B(Op::kLoadL), 0x00, B(Op::kPop), B(Op::kRet)}),
                 "read of uninitialized local");
}

TEST(AbstractInterp, RejectsUninitializedGlobalRead) {
  DriverImage image = MakeImage({B(Op::kLoadG), 0x00, B(Op::kPop), B(Op::kRet)});
  image.scalar_types = {DslType::kInt32};  // declared but never stored
  ExpectRejected(image, "which no handler ever stores");
}

TEST(AbstractInterp, RejectsGuaranteedWatchdogLoop) {
  // An infinite stack-balanced loop with no feasible path to a return: the
  // old "watchdog still traps at runtime" shape, now refused at deploy time.
  ExpectRejected(MakeImage({B(Op::kNop), B(Op::kJmp), 0xff, 0xfc}), "watchdog");
}

TEST(AbstractInterp, RejectsConstantConditionInfiniteLoop) {
  // while (1) { } — the branch condition is constant, so the exit edge is
  // infeasible and no return is reachable.
  ExpectRejected(MakeImage({B(Op::kPush1),             //
                            B(Op::kJnz), 0xff, 0xfc,   // always taken, back to push
                            B(Op::kRet)}),
                 "watchdog");
}

TEST(AbstractInterp, InstallImageRejectsUnsafeAtDeployTime) {
  // The same gate fires on the DriverManager install path (local or OTA).
  Scheduler sched;
  EventRouter router;
  DriverManager manager(sched, router);
  const Status status = manager.InstallImage(
      MakeImage({B(Op::kPush1), B(Op::kPush0), B(Op::kDiv), B(Op::kPop), B(Op::kRet)}));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unsafe driver image"), std::string::npos)
      << status.ToString();
}

// --------------------------------------------------- warnings and notes -----

TEST(AbstractInterp, WarnsOnDeadCustomHandler) {
  DriverImage image = MakeImage({B(Op::kRet)});
  image.handlers.push_back(HandlerEntry{0x41, 0, 0});  // custom, never signalled
  Result<DecodedImage> decoded = DecodedImage::Decode(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();  // warning, not error
  bool found = false;
  for (const Finding& f : decoded->analysis().findings) {
    if (f.kind == FindingKind::kDeadHandler) {
      EXPECT_EQ(f.severity, FindingSeverity::kWarning);
      EXPECT_EQ(f.event, 0x41);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AbstractInterp, WarnsOnUnreachableCode) {
  // jmp over a nop nothing branches back to.
  Result<DecodedImage> decoded = DecodedImage::Decode(
      MakeImage({B(Op::kJmp), 0x00, 0x01, B(Op::kNop), B(Op::kRet)}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  bool found = false;
  for (const Finding& f : decoded->analysis().findings) {
    if (f.kind == FindingKind::kUnreachableCode) {
      EXPECT_EQ(f.severity, FindingSeverity::kWarning);
      EXPECT_EQ(f.pc, 3u);  // the skipped nop
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AbstractInterp, BailsToStructuralFactsOnDepthMismatchJoin) {
  // Two paths meet at the ret with different operand-stack depths (0 and 1).
  // PR-2's depth-interval verifier accepts this, the value analysis cannot
  // model it: the handler must degrade to structural facts (a kAnalysisLimit
  // note) instead of rejecting or crashing.
  DriverImage image = MakeImage({B(Op::kLoadL), 0x00,      // arbitrary condition
                                 B(Op::kJz), 0x00, 0x01,   // skip the push
                                 B(Op::kPush0),            //
                                 B(Op::kRet)});
  image.handlers[0].argc = 1;
  Result<DecodedImage> decoded = DecodedImage::Decode(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  bool noted = false;
  for (const Finding& f : decoded->analysis().findings) {
    noted |= f.kind == FindingKind::kAnalysisLimit;
  }
  EXPECT_TRUE(noted);
  // No value proofs may survive a bail: every trap site keeps its runtime
  // check.  The structural WCET is still sound (it bounds a superset of the
  // feasible paths), so this acyclic handler keeps its watchdog proof.
  EXPECT_EQ(decoded->analysis().proven_div_sites, 0u);
  EXPECT_EQ(decoded->analysis().proven_subscript_sites, 0u);
  EXPECT_TRUE(decoded->handlers()[0].watchdog_safe);
}

// ------------------------------------------------ proofs and elision --------

TEST(AbstractInterp, SpecializesProvenSitesAndKeepsGuardedOnes) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
int32_t r, i;
uint8_t buf[8];
event init():
    r = 100 / 3;
    i = 0;
    while i < 8:
        buf[i] = i;
        i += 1;
event destroy():
    r = 0;
event write(int32_t v):
    if v != 0:
        r = 100 / v;
    r = r / (v + 1);
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  Result<DecodedImage> decoded = DecodedImage::Decode(*image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  const ImageAnalysis& analysis = decoded->analysis();
  // 100/3 is proven; the loop subscript buf[i] with i in [0, 7] is proven;
  // 100/v under `v != 0` is proven by branch refinement; r/(v+1) can wrap to
  // zero and stays guarded.
  EXPECT_EQ(analysis.proven_div_sites, 2u);
  EXPECT_EQ(analysis.guarded_div_sites, 1u);
  EXPECT_GE(analysis.proven_subscript_sites, 1u);
  EXPECT_EQ(analysis.guarded_subscript_sites, 0u);
  EXPECT_EQ(CountOps(*decoded, Op::kDivUnchecked), 2u);
  EXPECT_EQ(CountOps(*decoded, Op::kDiv), 1u);
  EXPECT_EQ(CountOps(*decoded, Op::kStoreA), 0u);  // the loop store specialized
  EXPECT_GE(CountOps(*decoded, Op::kStoreAUnchecked), 1u);

  // The same image decoded with elision off keeps every wire opcode.
  Result<DecodedImage> checked =
      DecodedImage::Decode(*image, std::nullopt, DecodeOptions{.elide_proven_traps = false});
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(CountOps(*checked, Op::kDivUnchecked), 0u);
  EXPECT_EQ(CountOps(*checked, Op::kStoreAUnchecked), 0u);
  EXPECT_EQ(CountOps(*checked, Op::kDiv), 3u);
}

TEST(AbstractInterp, ProvesWcetForStraightLineHandlers) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
int32_t r;
event init():
    r = 2 + 3;
event destroy():
    r = 0;
event write(int32_t v):
    while v != 0:
        r += 1;
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  Result<DecodedImage> decoded = DecodedImage::Decode(*image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  const DecodedHandler* init = decoded->FindHandler(kEventInit);
  ASSERT_NE(init, nullptr);
  EXPECT_TRUE(init->watchdog_safe);
  EXPECT_GT(init->wcet_instructions, 0u);
  EXPECT_LE(init->wcet_instructions, kVmWatchdogInstructions);

  // The argument-controlled loop is feasible and unbounded: the watchdog
  // counter must stay on that handler.
  const DecodedHandler* write = decoded->FindHandler(kEventWrite);
  ASSERT_NE(write, nullptr);
  EXPECT_FALSE(write->watchdog_safe);
  EXPECT_EQ(write->wcet_instructions, 0u);

  for (const HandlerWcet& wcet : decoded->analysis().wcet) {
    if (wcet.event == kEventInit) {
      EXPECT_TRUE(wcet.bounded);
      EXPECT_GT(wcet.cycles, wcet.instructions);  // every op costs > 1 cycle
    }
    if (wcet.event == kEventWrite) {
      EXPECT_FALSE(wcet.bounded);
    }
  }
}

TEST(AbstractInterp, BundledDriversAllPassWithProvenSites) {
  for (const BundledDriver& d : BundledDrivers()) {
    Result<DriverImage> image = CompileDriver(d.source);
    ASSERT_TRUE(image.ok()) << d.name;
    Result<DecodedImage> decoded = DecodedImage::Decode(*image);
    ASSERT_TRUE(decoded.ok()) << d.name << ": " << decoded.status().ToString();
    const ImageAnalysis& analysis = decoded->analysis();
    EXPECT_FALSE(analysis.has_errors()) << d.name;
    // The bundled drivers are lint-clean: not even warnings (the compiler no
    // longer emits dead code after terminating `return` statements).
    EXPECT_TRUE(analysis.findings.empty())
        << d.name << ": " << (analysis.findings.empty()
                                  ? ""
                                  : analysis.findings.front().message);
    // Every handler got a WCET verdict.
    EXPECT_EQ(analysis.wcet.size(), decoded->handlers().size()) << d.name;
  }
}

// Regression: a handler body ending in `return` used to get an unreachable
// implicit kRet appended; an if-branch ending in `return` used to emit an
// unreachable jump over the remaining branches.  Both are warnings the
// analyzer reports, so "no findings" is the regression assertion.
TEST(AbstractInterp, CompilerEmitsNoDeadCodeAfterReturns) {
  constexpr const char* kSource = R"(
device 1;
int32_t mode;
event init():
    mode = 1;
event destroy():
    mode = 0;
event write(int32_t v):
    if v == 0:
        return 1;
    elif v == 1:
        mode = 2;
    else:
        return mode;
    return v * 2;
event read():
    return mode + 1;
)";
  Result<DriverImage> image = CompileDriver(kSource);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  Result<DecodedImage> decoded = DecodedImage::Decode(*image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const ImageAnalysis& analysis = decoded->analysis();
  for (const Finding& f : analysis.findings) {
    EXPECT_NE(f.kind, FindingKind::kUnreachableCode)
        << f.message << " at pc " << f.pc;
  }
}

// ------------------------------------------------------- differential -------

// Recording host so the differential covers signal traffic too.
class RecordingHost : public VmHost {
 public:
  void OnSelfSignal(const Event& e) override { self_signals_.push_back(e.id); }
  void OnLibSignal(LibraryId lib, LibraryFunctionId fn,
                   std::span<const int32_t> args) override {
    lib_calls_.push_back(static_cast<int32_t>(lib) * 1000 + fn +
                         (args.empty() ? 0 : args[0]));
  }
  std::vector<EventId> self_signals_;
  std::vector<int32_t> lib_calls_;
};

TEST(AbstractInterp, TrapFreeDispatchIsBitIdenticalToCheckedPath) {
  Result<DriverImage> image = CompileDriver(R"(
device 1;
int32_t sum, i;
uint8_t buf[8];
event init():
    sum = 0;
    i = 0;
    while i < 8:
        buf[i] = i * 3;
        i += 1;
event destroy():
    sum = 0;
event write(int32_t v):
    sum = 0;
    i = 0;
    while i < 8:
        sum += buf[i] / 3;
        i += 1;
    sum = sum / (v + 1);
event read():
    return sum;
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  Result<std::shared_ptr<const DecodedImage>> elided = DecodedImage::DecodeShared(*image);
  Result<std::shared_ptr<const DecodedImage>> checked = DecodedImage::DecodeShared(
      *image, std::nullopt, DecodeOptions{.elide_proven_traps = false});
  ASSERT_TRUE(elided.ok());
  ASSERT_TRUE(checked.ok());
  ASSERT_GT(CountOps(**elided, Op::kDivUnchecked), 0u);  // elision actually happened
  ASSERT_EQ(CountOps(**checked, Op::kDivUnchecked), 0u);

  Vm fast(*elided);
  Vm slow(*checked);
  RecordingHost fast_host, slow_host;
  // A mix of safe dispatches and one that traps at the guarded site
  // (v = -1 makes the divisor v + 1 zero): accounting must match bit for bit
  // on every path, including the trapping one.
  const std::vector<Event> events = {Event::Of(kEventInit),      Event::Of(kEventWrite, 3),
                                     Event::Of(kEventRead),      Event::Of(kEventWrite, -7),
                                     Event::Of(kEventRead),      Event::Of(kEventWrite, -1),
                                     Event::Of(kEventRead),      Event::Of(kEventDestroy)};
  for (const Event& event : events) {
    Vm::ExecResult a = fast.Dispatch(event, &fast_host);
    Vm::ExecResult b = slow.Dispatch(event, &slow_host);
    EXPECT_EQ(a.outcome, b.outcome) << "event " << int(event.id);
    EXPECT_EQ(a.value, b.value) << "event " << int(event.id);
    EXPECT_EQ(a.instructions, b.instructions) << "event " << int(event.id);
    EXPECT_EQ(a.cycles, b.cycles) << "event " << int(event.id);
    EXPECT_EQ(a.trap.ok(), b.trap.ok()) << "event " << int(event.id);
  }
  EXPECT_EQ(fast.total_instructions(), slow.total_instructions());
  EXPECT_EQ(fast.total_cycles(), slow.total_cycles());
  for (size_t g = 0; g < image->scalar_types.size(); ++g) {
    EXPECT_EQ(fast.global(g), slow.global(g)) << "global " << g;
  }
  EXPECT_EQ(fast_host.self_signals_, slow_host.self_signals_);
  EXPECT_EQ(fast_host.lib_calls_, slow_host.lib_calls_);
}

TEST(AbstractInterp, WatchdogElisionKeepsAccountingIdentical) {
  // A handler with a proven bound runs without the watchdog counter; the
  // reference interpreter still counts — results must agree exactly.
  // Straight-line handlers only: a loop keeps the feasible subgraph cyclic,
  // so the WCET stays unbounded even when the trip count is provably small
  // (a documented limitation — see docs/ANALYSIS.md).
  Result<DriverImage> image = CompileDriver(R"(
device 1;
int32_t sum, i;
event init():
    i = 6;
    sum = i * 7 + 100 / i;
event destroy():
    sum = 0;
event read():
    return sum;
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  Result<std::shared_ptr<const DecodedImage>> decoded = DecodedImage::DecodeShared(*image);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE((*decoded)->FindHandler(kEventInit)->watchdog_safe);

  Vm fast(*decoded);
  Vm reference(*decoded);
  for (EventId id : {kEventInit, kEventRead, kEventDestroy}) {
    Vm::ExecResult a = fast.Dispatch(Event::Of(id), nullptr);
    Vm::ExecResult b = reference.DispatchReference(Event::Of(id), nullptr);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
  }
}

}  // namespace
}  // namespace micropnp
