// Baseline tests: the native C-style drivers (Table 3 comparators) work and
// are behaviourally equivalent to their μPnP DSL counterparts.

#include <gtest/gtest.h>

#include "src/baseline/native_bmp180.h"
#include "src/baseline/native_hih4030.h"
#include "src/baseline/native_id20la.h"
#include "src/baseline/native_tmp36.h"
#include "src/baseline/table3.h"
#include "src/common/sloc.h"
#include "src/periph/bmp180.h"
#include "src/periph/bmp180_math.h"
#include "src/periph/environment.h"
#include "src/periph/hih4030.h"
#include "src/periph/id20la.h"
#include "src/periph/tmp36.h"

namespace micropnp {
namespace {

class NativeDriverFixture : public ::testing::Test {
 protected:
  NativeDriverFixture() : bus_(sched_) {}

  Scheduler sched_;
  ChannelBus bus_;
  Environment env_;
};

// ---------------------------------------------------------------- tmp36 ----

TEST_F(NativeDriverFixture, Tmp36ReadsEnvironment) {
  Tmp36 sensor(env_);
  bus_.Select(BusKind::kAdc);
  sensor.AttachTo(bus_);

  NativeTmp36State state{};
  ASSERT_EQ(native_tmp36_init(&state, &bus_, 0), TMP36_OK);
  double celsius = 0;
  ASSERT_EQ(native_tmp36_read_celsius(&state, &celsius), TMP36_OK);
  EXPECT_NEAR(celsius, env_.TemperatureC(sched_.now()), 0.4);
  native_tmp36_destroy(&state);
  EXPECT_EQ(native_tmp36_read_celsius(&state, &celsius), TMP36_ERR_NOT_INITIALIZED);
}

TEST_F(NativeDriverFixture, Tmp36RejectsBadSetup) {
  NativeTmp36State state{};
  EXPECT_EQ(native_tmp36_init(&state, nullptr, 0), TMP36_ERR_NOT_INITIALIZED);
  EXPECT_EQ(native_tmp36_init(&state, &bus_, 9), TMP36_ERR_BAD_CHANNEL);
  // Bus not muxed to ADC:
  bus_.Select(BusKind::kUart);
  EXPECT_EQ(native_tmp36_init(&state, &bus_, 0), TMP36_ERR_BAD_CHANNEL);
}

TEST(NativeTmp36, ConversionMatchesDatasheet) {
  // 750 mV -> 25 degC on a 10-bit, 3.3 V scale.
  const uint16_t code = static_cast<uint16_t>(0.75 / 3.3 * 1023.0 + 0.5);
  EXPECT_NEAR(native_tmp36_code_to_celsius(code, 3.3, 10), 25.0, 0.2);
}

// -------------------------------------------------------------- hih4030 ----

TEST_F(NativeDriverFixture, Hih4030ReadsEnvironment) {
  Hih4030 sensor(env_);
  bus_.Select(BusKind::kAdc);
  sensor.AttachTo(bus_);
  NativeHih4030State state{};
  ASSERT_EQ(native_hih4030_init(&state, &bus_, 1), HIH4030_OK);
  double rh = 0;
  ASSERT_EQ(native_hih4030_read_rh(&state, &rh), HIH4030_OK);
  EXPECT_NEAR(rh, env_.HumidityPct(sched_.now()), 1.0);

  double compensated = 0;
  ASSERT_EQ(native_hih4030_read_rh_compensated(&state, 25.0, &compensated), HIH4030_OK);
  EXPECT_NEAR(compensated, rh / (1.0546 - 0.00216 * 25.0), 1e-9);
}

// --------------------------------------------------------------- id20la ----

TEST_F(NativeDriverFixture, Id20LaReadsCards) {
  Id20La reader;
  bus_.Select(BusKind::kUart);
  reader.AttachTo(bus_);
  NativeId20LaState state{};
  ASSERT_EQ(native_id20la_init(&state, &bus_), ID20LA_OK);
  ASSERT_EQ(native_id20la_start_read(&state), ID20LA_OK);
  EXPECT_EQ(native_id20la_poll(&state, nullptr), ID20LA_ERR_NO_CARD);

  RfidCard card = {0x4a, 0x00, 0xd2, 0x3f, 0x81};
  ASSERT_TRUE(reader.PresentCard(card));
  sched_.Run();

  NativeId20LaCard out{};
  ASSERT_EQ(native_id20la_poll(&state, &out), ID20LA_OK);
  EXPECT_EQ(std::string(out.payload), Id20LaPayload(card));
  EXPECT_TRUE(out.valid);
  native_id20la_destroy(&state);
  EXPECT_FALSE(bus_.uart().initialized());
}

TEST_F(NativeDriverFixture, Id20LaDetectsUartInUse) {
  bus_.Select(BusKind::kUart);
  ASSERT_TRUE(bus_.uart().Init(UartConfig{}).ok());
  NativeId20LaState state{};
  EXPECT_EQ(native_id20la_init(&state, &bus_), ID20LA_ERR_UART_IN_USE);
}

TEST(NativeId20La, ChecksumVerification) {
  EXPECT_TRUE(native_id20la_verify_checksum("4A00D23F8126"));
  EXPECT_FALSE(native_id20la_verify_checksum("4A00D23F8127"));
  EXPECT_FALSE(native_id20la_verify_checksum("GG00D23F8126"));
}

// --------------------------------------------------------------- bmp180 ----

TEST_F(NativeDriverFixture, Bmp180FullPipelineMatchesEnvironment) {
  Bmp180 sensor(env_);
  bus_.Select(BusKind::kI2c);
  sensor.AttachTo(bus_);

  NativeBmp180State state{};
  ASSERT_EQ(native_bmp180_init(&state, &bus_, &sched_, /*oss=*/0), BMP180_OK);
  // The calibration EEPROM round-tripped correctly.
  EXPECT_EQ(state.calib.ac1, sensor.calibration().ac1);
  EXPECT_EQ(state.calib.md, sensor.calibration().md);

  int32_t deci_celsius = 0;
  ASSERT_EQ(native_bmp180_read_temperature(&state, &deci_celsius), BMP180_OK);
  EXPECT_NEAR(deci_celsius / 10.0, env_.TemperatureC(sched_.now()), 0.2);

  int32_t pascal = 0;
  ASSERT_EQ(native_bmp180_read_pressure(&state, &pascal), BMP180_OK);
  EXPECT_NEAR(static_cast<double>(pascal), env_.PressurePa(sched_.now()), 30.0);
}

TEST_F(NativeDriverFixture, Bmp180AllOversamplingModes) {
  Bmp180 sensor(env_);
  bus_.Select(BusKind::kI2c);
  sensor.AttachTo(bus_);
  for (uint8_t oss = 0; oss <= 3; ++oss) {
    NativeBmp180State state{};
    ASSERT_EQ(native_bmp180_init(&state, &bus_, &sched_, oss), BMP180_OK);
    int32_t pascal = 0;
    ASSERT_EQ(native_bmp180_read_pressure(&state, &pascal), BMP180_OK);
    EXPECT_NEAR(static_cast<double>(pascal), env_.PressurePa(sched_.now()), 35.0)
        << "oss=" << static_cast<int>(oss);
  }
}

TEST(NativeBmp180, CompensationMatchesDatasheetExample) {
  NativeBmp180Calib calib{408, -72, -14383, 32741, 32757, 23153, 6190, 4, -32768, -8711, 2868};
  int32_t b5 = 0;
  EXPECT_EQ(native_bmp180_compensate_temperature(&calib, 27898, &b5), 150);
  EXPECT_EQ(native_bmp180_compensate_pressure(&calib, 23843, b5, 0), 69964);
}

TEST_F(NativeDriverFixture, Bmp180RejectsWrongBusOrOss) {
  NativeBmp180State state{};
  bus_.Select(BusKind::kAdc);
  EXPECT_EQ(native_bmp180_init(&state, &bus_, &sched_, 0), BMP180_ERR_BUS);
  bus_.Select(BusKind::kI2c);
  EXPECT_EQ(native_bmp180_init(&state, &bus_, &sched_, 4), BMP180_ERR_BAD_OSS);
  // No device attached: address NACKs.
  EXPECT_EQ(native_bmp180_init(&state, &bus_, &sched_, 0), BMP180_ERR_BUS);
}

// ------------------------------------------------------------- manifest ----

TEST(Table3Manifest, CoversAllFourPaperDrivers) {
  std::span<const NativeDriverInfo> drivers = NativeDrivers();
  ASSERT_EQ(drivers.size(), 4u);
  // SLoC is measured from the real embedded sources; all are non-trivial and
  // larger than their DSL equivalents per the Table 3 shape.
  for (const NativeDriverInfo& d : drivers) {
    EXPECT_GT(CountSloc(d.source, SlocLanguage::kC), 40) << d.name;
    EXPECT_GT(d.avr_flash_bytes, 500u);
  }
  // ADC drivers pay the soft-float tax (the paper's explanation for the
  // "large size discrepancy between different C device drivers").
  EXPECT_TRUE(drivers[0].uses_software_float);
  EXPECT_TRUE(drivers[1].uses_software_float);
  EXPECT_FALSE(drivers[2].uses_software_float);
  EXPECT_GT(drivers[0].avr_flash_bytes, 4 * drivers[2].avr_flash_bytes);
}

}  // namespace
}  // namespace micropnp
