// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/clock.h"
#include "src/sim/scheduler.h"

namespace micropnp {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(SimTime::FromMillis(1.5).nanos(), 1'500'000u);
  EXPECT_EQ(SimTime::FromMicros(2.0).nanos(), 2'000u);
  EXPECT_NEAR(SimTime::FromSeconds(0.25).seconds(), 0.25, 1e-12);
  EXPECT_NEAR(SimTime::FromMillis(10).micros(), 10'000.0, 1e-9);
}

TEST(SimTime, ArithmeticSaturatesAtZero) {
  SimTime a = SimTime::FromMillis(1);
  SimTime b = SimTime::FromMillis(2);
  EXPECT_EQ((b - a).nanos(), 1'000'000u);
  EXPECT_EQ((a - b).nanos(), 0u);  // saturating subtraction
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::FromNanos(10).ToString(), "10ns");
  EXPECT_EQ(SimTime::FromMillis(12.345).ToString(), "12.345ms");
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(SimTime::FromMillis(3), [&] { order.push_back(3); });
  sched.ScheduleAt(SimTime::FromMillis(1), [&] { order.push_back(1); });
  sched.ScheduleAt(SimTime::FromMillis(2), [&] { order.push_back(2); });
  EXPECT_EQ(sched.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), SimTime::FromMillis(3));
}

TEST(Scheduler, EqualTimeEventsRunFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.ScheduleAt(SimTime::FromMillis(1), [&order, i] { order.push_back(i); });
  }
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler sched;
  SimTime seen;
  sched.ScheduleAt(SimTime::FromMillis(10), [&] {
    sched.ScheduleAfter(SimTime::FromMillis(5), [&] { seen = sched.now(); });
  });
  sched.Run();
  EXPECT_EQ(seen, SimTime::FromMillis(15));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  auto id = sched.ScheduleAt(SimTime::FromMillis(1), [&] { ran = true; });
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(id));  // double-cancel reports failure
  sched.Run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, RunUntilLeavesLaterEventsPending) {
  Scheduler sched;
  int count = 0;
  sched.ScheduleAt(SimTime::FromMillis(1), [&] { ++count; });
  sched.ScheduleAt(SimTime::FromMillis(10), [&] { ++count; });
  EXPECT_EQ(sched.RunUntil(SimTime::FromMillis(5)), 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sched.now(), SimTime::FromMillis(5));
  EXPECT_EQ(sched.pending(), 1u);
  sched.Run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) {
      sched.ScheduleAfter(SimTime::FromMicros(1), chain);
    }
  };
  sched.ScheduleAfter(SimTime::FromMicros(1), chain);
  sched.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sched.now(), SimTime::FromMicros(10));
}

TEST(Scheduler, PastEventsClampToNow) {
  Scheduler sched;
  SimTime when;
  sched.ScheduleAt(SimTime::FromMillis(5), [&] {
    // Scheduling "in the past" runs at the current time, never earlier.
    sched.ScheduleAt(SimTime::FromMillis(1), [&] { when = sched.now(); });
  });
  sched.Run();
  EXPECT_EQ(when, SimTime::FromMillis(5));
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.Step());
  EXPECT_TRUE(sched.empty());
}

// Regression: a cancelled event before the deadline must not cause RunUntil
// to execute a live event scheduled *after* the deadline.
TEST(Scheduler, RunUntilDoesNotOvershootPastCancelledEvents) {
  Scheduler sched;
  bool late_ran = false;
  auto cancelled = sched.ScheduleAt(SimTime::FromMillis(1), [] {});
  sched.ScheduleAt(SimTime::FromMillis(100), [&] { late_ran = true; });
  sched.Cancel(cancelled);
  sched.RunUntil(SimTime::FromMillis(10));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sched.now(), SimTime::FromMillis(10));
  sched.Run();
  EXPECT_TRUE(late_ran);
}

}  // namespace
}  // namespace micropnp
