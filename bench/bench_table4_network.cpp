// Table 4: "Detailed analysis of peripheral announcement and driver
// installation" — per-operation timings of the plug-in network flow in an
// uncongested one-hop network, 10 repetitions, mean +/- stddev:
//
//   Generate Multicast Address   2.59 ms +/- 0.03
//   Join Multicast Group         5.44 ms +/- 0.01
//   Request driver              53.91 ms +/- 1.98
//   Install 80 Byte Driver      59.50 ms +/- 9.97
//   Advertise Peripheral        45.37 ms +/- 0.28
//   Total time                 188.53 ms +/- 10.97
//
// Section 8 adds: "the complete peripheral discovery process, i.e.
// peripheral identification, driver installation and joining of multicast
// groups takes only 488.53 ms in a one-hop network" (= Table 4 total plus
// the ~300 ms worst-case identification).

#include <cmath>
#include <cstdio>

#include "src/core/deployment.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"

namespace micropnp {
namespace {

struct Samples {
  std::vector<double> values;
  void Add(double v) { values.push_back(v); }
  double Mean() const {
    double s = 0;
    for (double v : values) {
      s += v;
    }
    return values.empty() ? 0 : s / static_cast<double>(values.size());
  }
  double Stddev() const {
    if (values.size() < 2) {
      return 0;
    }
    const double m = Mean();
    double s = 0;
    for (double v : values) {
      s += (v - m) * (v - m);
    }
    return std::sqrt(s / static_cast<double>(values.size() - 1));
  }
};

void Run() {
  std::printf("=== Table 4: peripheral announcement and driver installation ===\n");
  std::printf("(one-hop uncongested network, 10 repetitions)\n\n");

  Samples generate, join, request, install, advertise, total, ident, end_to_end;
  size_t driver_bytes = 0;

  const int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    DeploymentConfig config;
    config.seed = 20150421 + static_cast<uint64_t>(trial);
    Deployment deployment(config);
    MicroPnpManager& manager = deployment.AddManager();
    MicroPnpThing& thing = deployment.AddThing("thing");
    MicroPnpClient& client = deployment.AddClient("client");
    (void)manager;

    // The advertisement's arrival at a client closes the flow.
    double advert_arrival_ms = -1;
    client.set_advertisement_listener(
        [&](const Ip6Address&, const std::vector<AdvertisedPeripheral>&) {
          if (advert_arrival_ms < 0) {
            advert_arrival_ms = deployment.NowMillis();
          }
        });

    Tmp36& sensor = deployment.MakeTmp36();
    driver_bytes = CompileDriver(FindBundledDriver(kTmp36TypeId)->source)->SerializedSize();
    if (!thing.Plug(0, &sensor).ok()) {
      continue;
    }
    deployment.RunForMillis(2000);
    if (!thing.last_plug_flow().has_value() || advert_arrival_ms < 0) {
      std::printf("trial %d: flow did not complete\n", trial);
      continue;
    }
    const PlugFlowMarks& marks = *thing.last_plug_flow();
    ident.Add((marks.identified - marks.plugged).millis());
    generate.Add((marks.address_generated - marks.identified).millis());
    join.Add((marks.group_joined - marks.address_generated).millis());
    request.Add((marks.driver_received - marks.group_joined).millis());
    install.Add((marks.driver_installed - marks.driver_received).millis());
    advertise.Add(advert_arrival_ms - marks.driver_installed.millis());
    total.Add(advert_arrival_ms - marks.identified.millis());
    end_to_end.Add(advert_arrival_ms - marks.plugged.millis());
  }

  std::printf("%-28s | %10s | %10s %8s\n", "operation", "paper (ms)", "mean (ms)", "stddev");
  auto row = [](const char* name, const char* paper, const Samples& s) {
    std::printf("%-28s | %10s | %10.2f %8.2f\n", name, paper, s.Mean(), s.Stddev());
  };
  row("Generate Multicast Address", "2.59", generate);
  row("Join Multicast Group", "5.44", join);
  row("Request driver", "53.91", request);
  std::printf("%-28s | %10s | %10.2f %8.2f   (driver image: %zu bytes)\n",
              "Install driver", "59.50", install.Mean(), install.Stddev(), driver_bytes);
  row("Advertise Peripheral", "45.37", advertise);
  row("Total time", "188.53", total);
  std::printf("\nnote: the paper's five rows sum to 166.81 ms while its Total row reports\n");
  std::printf("188.53 ms (+21.7 ms of unattributed overhead); our measured total matches the\n");
  std::printf("row sum because the simulated flow has no unaccounted gaps.\n\n");
  row("identification (Section 6.1)", "220-300", ident);
  row("complete process (Section 8)", "488.53", end_to_end);
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::Run();
  return 0;
}
