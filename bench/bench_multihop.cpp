// A4: multi-hop and lossy-network behaviour (the paper's Section 9 future
// work: "an analysis of multicast performance in multi-hop network
// topologies and unreliable network environments is left for future work").
//
// Measures the complete plug-in flow (identify + join + OTA driver install +
// advertise) with the Thing placed 1..4 hops from the border router, and the
// flow success rate under increasing frame loss.
//
// Flags:
//   --smoke   reduced trial counts (CI-sized run)
//   --check   exit non-zero when the lossy-flow success rate falls below the
//             regression threshold (19/20 at 20% loss; 7/8 in smoke mode)

#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/core/deployment.h"

namespace micropnp {
namespace {

struct FlowResult {
  bool completed = false;
  double total_ms = 0;
};

FlowResult RunFlow(int hops, double loss_rate, uint64_t seed) {
  DeploymentConfig config;
  config.seed = seed;
  config.link.loss_rate = loss_rate;
  Deployment deployment(config);
  MicroPnpManager& manager = deployment.AddManager();
  (void)manager;
  MicroPnpClient& client = deployment.AddClient("client");

  // Chain of relay nodes pushes the Thing `hops` hops from the root.
  NetNode* parent = nullptr;
  for (int i = 0; i < hops - 1; ++i) {
    parent = deployment.AddRelayNode("relay" + std::to_string(i), parent);
  }
  MicroPnpThing& thing = deployment.AddThing("thing", parent);

  double advert_ms = -1;
  client.set_advertisement_listener(
      [&](const Ip6Address&, const std::vector<AdvertisedPeripheral>&) {
        if (advert_ms < 0) {
          advert_ms = deployment.NowMillis();
        }
      });
  Tmp36& sensor = deployment.MakeTmp36();
  if (!thing.Plug(0, &sensor).ok()) {
    return {};
  }
  // Wide enough for the driver request's full retransmit schedule, the
  // chunked transfer's NACK repair, and the early trickle re-advertisement
  // ticks (+1s, +2s, +4s, +8s) to play out.
  deployment.RunForMillis(16000);

  FlowResult result;
  result.completed = advert_ms > 0 && thing.drivers().HostForChannel(0) != nullptr;
  if (result.completed && thing.last_plug_flow().has_value()) {
    result.total_ms = advert_ms - thing.last_plug_flow()->plugged.millis();
  }
  return result;
}

int Run(bool smoke, bool check) {
  std::printf("=== A4: plug-in flow vs hop count and frame loss (paper future work) ===\n\n");

  const int hop_trials = smoke ? 2 : 5;
  std::printf("--- complete plug-in flow vs hops (lossless; %d trials each) ---\n", hop_trials);
  std::printf("%8s %18s %14s\n", "hops", "end-to-end (ms)", "completed");
  for (int hops = 1; hops <= 4; ++hops) {
    double sum = 0;
    int completed = 0;
    for (int t = 0; t < hop_trials; ++t) {
      FlowResult r = RunFlow(hops, 0.0, 7000 + static_cast<uint64_t>(hops * 100 + t));
      if (r.completed) {
        sum += r.total_ms;
        ++completed;
      }
    }
    std::printf("%8d %18.1f %11d/%d\n", hops, completed > 0 ? sum / completed : -1.0, completed,
                hop_trials);
  }

  const int loss_trials = smoke ? 8 : 20;
  const std::vector<double> losses =
      smoke ? std::vector<double>{0.0, 0.20} : std::vector<double>{0.0, 0.01, 0.05, 0.10, 0.20};
  // The hard floor this bench regresses against: the worst sweep point, 20%
  // frame loss at 2 hops (three 0.8-survival links per datagram direction).
  const int required = smoke ? 7 : 19;
  int worst_completed = loss_trials;
  std::printf("\n--- flow success rate vs frame loss (2 hops; %d trials each) ---\n", loss_trials);
  std::printf("%12s %14s\n", "loss rate", "success");
  for (double loss : losses) {
    int completed = 0;
    for (int t = 0; t < loss_trials; ++t) {
      if (RunFlow(2, loss, 9000 + static_cast<uint64_t>(loss * 1e4) + t).completed) {
        ++completed;
      }
    }
    if (loss >= 0.20) {
      worst_completed = completed;
    }
    std::printf("%11.0f%% %11d/%d\n", loss * 100.0, completed, loss_trials);
  }
  std::printf("\n-> latency grows roughly linearly with hop count.  Under loss the flow\n");
  std::printf("   leans on three repair layers: the driver request (4) retransmits with\n");
  std::printf("   backoff and re-arms after a failed deadline; the image moves as\n");
  std::printf("   single-fragment (19) chunks with selective-repeat (20) NACKs (plus the\n");
  std::printf("   (4)'s resume bitmap), so one lost frame re-sends one chunk, never the\n");
  std::printf("   image; and lost one-shot advertisements (1) are repaired by the bounded\n");
  std::printf("   trickle re-advertisement schedule.  bench_gateway measures the pure\n");
  std::printf("   request/response path under the same loss rates.\n");

  if (check && worst_completed < required) {
    std::printf("\nCHECK FAILED: %d/%d flows completed at 20%% loss (required >= %d)\n",
                worst_completed, loss_trials, required);
    return 1;
  }
  if (check) {
    std::printf("\nCHECK OK: %d/%d flows completed at 20%% loss (required >= %d)\n",
                worst_completed, loss_trials, required);
  }
  return 0;
}

}  // namespace
}  // namespace micropnp

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check]\n", argv[0]);
      return 2;
    }
  }
  return micropnp::Run(smoke, check);
}
