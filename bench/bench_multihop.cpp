// A4: multi-hop and lossy-network behaviour (the paper's Section 9 future
// work: "an analysis of multicast performance in multi-hop network
// topologies and unreliable network environments is left for future work").
//
// Measures the complete plug-in flow (identify + join + OTA driver install +
// advertise) with the Thing placed 1..4 hops from the border router, and the
// flow success rate under increasing frame loss.

#include <cmath>
#include <cstdio>

#include "src/core/deployment.h"

namespace micropnp {
namespace {

struct FlowResult {
  bool completed = false;
  double total_ms = 0;
};

FlowResult RunFlow(int hops, double loss_rate, uint64_t seed) {
  DeploymentConfig config;
  config.seed = seed;
  config.link.loss_rate = loss_rate;
  Deployment deployment(config);
  MicroPnpManager& manager = deployment.AddManager();
  (void)manager;
  MicroPnpClient& client = deployment.AddClient("client");

  // Chain of relay nodes pushes the Thing `hops` hops from the root.
  NetNode* parent = nullptr;
  for (int i = 0; i < hops - 1; ++i) {
    parent = deployment.AddRelayNode("relay" + std::to_string(i), parent);
  }
  MicroPnpThing& thing = deployment.AddThing("thing", parent);

  double advert_ms = -1;
  client.set_advertisement_listener(
      [&](const Ip6Address&, const std::vector<AdvertisedPeripheral>&) {
        if (advert_ms < 0) {
          advert_ms = deployment.NowMillis();
        }
      });
  Tmp36& sensor = deployment.MakeTmp36();
  if (!thing.Plug(0, &sensor).ok()) {
    return {};
  }
  // Wide enough for the driver request's full retransmit schedule (up to
  // 15 s deadline with exponential backoff) to play out.
  deployment.RunForMillis(16000);

  FlowResult result;
  result.completed = advert_ms > 0 && thing.drivers().HostForChannel(0) != nullptr;
  if (result.completed && thing.last_plug_flow().has_value()) {
    result.total_ms = advert_ms - thing.last_plug_flow()->plugged.millis();
  }
  return result;
}

void Run() {
  std::printf("=== A4: plug-in flow vs hop count and frame loss (paper future work) ===\n\n");

  std::printf("--- complete plug-in flow vs hops (lossless; 5 trials each) ---\n");
  std::printf("%8s %18s %14s\n", "hops", "end-to-end (ms)", "completed");
  for (int hops = 1; hops <= 4; ++hops) {
    double sum = 0;
    int completed = 0;
    const int kTrials = 5;
    for (int t = 0; t < kTrials; ++t) {
      FlowResult r = RunFlow(hops, 0.0, 7000 + static_cast<uint64_t>(hops * 100 + t));
      if (r.completed) {
        sum += r.total_ms;
        ++completed;
      }
    }
    std::printf("%8d %18.1f %11d/%d\n", hops, completed > 0 ? sum / completed : -1.0, completed,
                kTrials);
  }

  std::printf("\n--- flow success rate vs frame loss (2 hops; 20 trials each) ---\n");
  std::printf("%12s %14s\n", "loss rate", "success");
  for (double loss : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    int completed = 0;
    const int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      if (RunFlow(2, loss, 9000 + static_cast<uint64_t>(loss * 1e4) + t).completed) {
        ++completed;
      }
    }
    std::printf("%11.0f%% %11d/%d\n", loss * 100.0, completed, kTrials);
  }
  std::printf("\n-> latency grows roughly linearly with hop count.  The driver request (4)\n");
  std::printf("   now retransmits with backoff (ProtoEndpoint), so installation survives\n");
  std::printf("   moderate loss; remaining failures are the one-shot advertisement (1),\n");
  std::printf("   which has no reply to retry against, plus multi-fragment driver uploads\n");
  std::printf("   lost past the retransmit budget.  bench_gateway measures the pure\n");
  std::printf("   request/response path under the same loss rates.\n");
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::Run();
  return 0;
}
