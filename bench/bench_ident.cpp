// Section 6.1 (hardware energy analysis, prose results):
//   "For each identification process, the time required varies between
//    220 ms and 300 ms.  The energy consumption therefore has a minimum
//    value of 2.48e-3 J and a maximum value of 6.756e-3 J."
//
// Reproduces the identification timing/energy windows by simulating many
// random device ids on the modeled control board, plus the two extreme ids.

#include <cstdio>

#include "src/hw/control_board.h"
#include "src/hw/energy_model.h"

namespace micropnp {
namespace {

void Run() {
  std::printf("=== Section 6.1: identification time and energy ===\n\n");

  const int kSamples = 5000;
  IdentStats stats = SampleIdentification(kSamples, /*seed=*/20150421);

  std::printf("%-28s %14s %14s\n", "metric", "paper", "measured");
  std::printf("%-28s %14s %11.1f ms\n", "min identification time", "220 ms",
              stats.min_duration.value() * 1e3);
  std::printf("%-28s %14s %11.1f ms\n", "max identification time", "300 ms",
              stats.max_duration.value() * 1e3);
  std::printf("%-28s %14s %11.2f mJ\n", "min identification energy", "2.48 mJ",
              stats.min_energy.value() * 1e3);
  std::printf("%-28s %14s %11.2f mJ\n", "max identification energy", "6.756 mJ",
              stats.max_energy.value() * 1e3);
  std::printf("%-28s %14s %11.2f mJ\n", "mean identification energy", "-",
              stats.mean_energy.value() * 1e3);
  std::printf("\nreliability over %d random ids: %d wrong, %d guard-band rescans\n", kSamples,
              stats.decode_errors, stats.decode_failures);

  // Extreme ids with ideal components bound the window.
  Rng rng(5);
  IdentCircuitConfig circuit;
  circuit.resistor_tolerance = 0.0;
  circuit.vib.k_tolerance = 0.0;
  circuit.vib.c_tolerance = 0.0;
  circuit.vib.calibration_tolerance = 0.0;
  ControlBoardConfig config;
  config.circuit = circuit;
  ControlBoard board(config, rng);

  std::printf("\nextreme identifiers (nominal components):\n");
  for (DeviceTypeId id : {DeviceTypeId{0x00000000}, DeviceTypeId{0xffffffff}}) {
    (void)board.Connect(0, MakePlugForId(board.codec(), id, BusKind::kAdc, rng));
    ScanResult scan = board.Scan();
    (void)board.Disconnect(0);
    std::printf("  id=0x%08x  time=%6.1f ms  energy=%5.2f mJ\n", id, scan.duration.value() * 1e3,
                scan.energy.value() * 1e3);
  }
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::Run();
  return 0;
}
