// A5: peripheral churn under loss — what the resume machinery buys.
//
// A small fleet of Things keeps plugging, unplugging and re-plugging
// peripherals over a lossy multi-hop fabric.  Every re-plug issues a fresh
// driver request (4), but the Thing's transfer cache survives the unplug, so
// the request carries a resume bitmap: a re-plug with a complete cached
// image costs zero chunks (the manager short-circuits with an up-to-date
// offer), and an interrupted transfer resumes from its gaps instead of
// restarting.  The run reports how much image traffic that saves.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/deployment.h"

namespace micropnp {
namespace {

struct ChurnStats {
  int plugs = 0;
  int settled = 0;  // plug flows that ended with an active driver host
};

void Run() {
  std::printf("=== A5: plug/unplug churn under loss (resume machinery) ===\n\n");

  DeploymentConfig config;
  config.seed = 52015;
  config.link.loss_rate = 0.10;
  Deployment deployment(config);
  MicroPnpManager& manager = deployment.AddManager();

  // Six Things at one to three hops from the border router.
  std::vector<MicroPnpThing*> things;
  NetNode* relay1 = deployment.AddRelayNode("relay-1");
  NetNode* relay2 = deployment.AddRelayNode("relay-2", relay1);
  for (int i = 0; i < 6; ++i) {
    NetNode* parent = (i % 3 == 0) ? nullptr : (i % 3 == 1) ? relay1 : relay2;
    things.push_back(&deployment.AddThing("thing-" + std::to_string(i), parent));
  }
  std::vector<Peripheral*> sensors;
  for (int i = 0; i < 6; ++i) {
    if (i % 2 == 0) {
      sensors.push_back(&deployment.MakeTmp36());
    } else {
      sensors.push_back(&deployment.MakeBmp180());
    }
  }

  ChurnStats stats;
  auto settle_and_count = [&](double window_ms) {
    deployment.RunForMillis(window_ms);
    for (MicroPnpThing* thing : things) {
      if (thing->drivers().HostForChannel(0) != nullptr) {
        ++stats.settled;
      }
    }
  };

  // Round 0: cold start — every driver image crosses the network chunked.
  for (size_t i = 0; i < things.size(); ++i) {
    ++stats.plugs;
    (void)things[i]->Plug(0, sensors[i]);
  }
  settle_and_count(20'000);
  const uint64_t cold_chunks = manager.chunks_sent();
  std::printf("cold start:    %llu chunks over the air (%llu retransmitted)\n",
              static_cast<unsigned long long>(cold_chunks),
              static_cast<unsigned long long>(manager.chunk_retransmissions()));

  // Rounds 1..4: churn.  Each round unplugs every Thing, removes the
  // installed image on half of them (forcing a fresh (4) on re-plug — but
  // the chunk cache still answers it), then re-plugs.
  for (int round = 1; round <= 4; ++round) {
    for (size_t i = 0; i < things.size(); ++i) {
      (void)things[i]->Unplug(0);
    }
    deployment.RunForMillis(2000);
    for (size_t i = 0; i < things.size(); ++i) {
      if ((static_cast<int>(i) + round) % 2 == 0) {
        DeviceTypeId type = (i % 2 == 0) ? kTmp36TypeId : kBmp180TypeId;
        (void)things[i]->drivers().RemoveImage(type);
      }
      ++stats.plugs;
      (void)things[i]->Plug(0, sensors[i]);
    }
    settle_and_count(20'000);
  }

  const uint64_t churn_chunks = manager.chunks_sent() - cold_chunks;
  uint64_t transfers = 0;
  uint64_t nacks = 0;
  uint64_t readverts = 0;
  for (MicroPnpThing* thing : things) {
    transfers += thing->transfers_completed();
    nacks += thing->chunk_nacks_sent();
    readverts += thing->readvertisements_sent();
  }

  std::printf("churn rounds:  %llu chunks over the air for %d re-plugs\n",
              static_cast<unsigned long long>(churn_chunks), stats.plugs - 6);
  std::printf("\n%28s %10d\n", "plug events", stats.plugs);
  std::printf("%28s %10d\n", "flows settled (driver live)", stats.settled);
  std::printf("%28s %10llu\n", "uploads served (4)",
              static_cast<unsigned long long>(manager.uploads()));
  std::printf("%28s %10llu\n", "up-to-date short circuits",
              static_cast<unsigned long long>(manager.upload_short_circuits()));
  std::printf("%28s %10llu\n", "resumed from bitmap",
              static_cast<unsigned long long>(manager.resumed_uploads()));
  std::printf("%28s %10llu\n", "chunks sent",
              static_cast<unsigned long long>(manager.chunks_sent()));
  std::printf("%28s %10llu\n", "chunk retransmissions",
              static_cast<unsigned long long>(manager.chunk_retransmissions()));
  std::printf("%28s %10llu\n", "chunk NACKs (20)", static_cast<unsigned long long>(nacks));
  std::printf("%28s %10llu\n", "transfers completed",
              static_cast<unsigned long long>(transfers));
  std::printf("%28s %10llu\n", "trickle re-advertisements",
              static_cast<unsigned long long>(readverts));

  std::printf("\n-> a re-plug whose cached image still matches the repository transfers\n");
  std::printf("   zero chunks (the (18) offer answers \"up to date\"), so sustained churn\n");
  std::printf("   costs advertisement and offer traffic only — the image crosses the\n");
  std::printf("   lossy fabric once per Thing, not once per plug.\n");
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::Run();
  return 0;
}
