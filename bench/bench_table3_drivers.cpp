// Table 3: "Development efforts and memory footprint of device drivers" —
// SLoC and bytes of the μPnP DSL drivers vs the native C variants, for the
// four prototype peripherals.
//
// Measured here:
//   * DSL SLoC        — counted from the real bundled .updl sources;
//   * DSL bytes       — real compiled bytecode (code) and full OTA image;
//   * native SLoC     — counted from the real native driver sources in
//                        src/baseline/ (compiled into this repository);
//   * native bytes    — manifest: the paper's avr-gcc measurements (no AVR
//                        toolchain offline; see DESIGN.md).
//
// Headline claims: "µPnP drivers contain 52% fewer source lines of code and
// have a 94% smaller memory footprint."

#include <cstdio>

#include "src/baseline/table3.h"
#include "src/common/sloc.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"
#include "src/periph/peripheral.h"

namespace micropnp {
namespace {

struct PaperRow {
  DeviceTypeId device;
  int dsl_sloc;
  int dsl_bytes;
  int native_sloc;
  int native_bytes;
};

constexpr PaperRow kPaper[] = {
    {kTmp36TypeId, 15, 30, 64, 2956},
    {kHih4030TypeId, 19, 55, 65, 3304},
    {kId20LaTypeId, 43, 150, 89, 592},
    {kBmp180TypeId, 122, 234, 193, 652},
};

const PaperRow* PaperFor(DeviceTypeId id) {
  for (const PaperRow& row : kPaper) {
    if (row.device == id) {
      return &row;
    }
  }
  return nullptr;
}

void Run() {
  std::printf("=== Table 3: DSL vs native driver development effort and footprint ===\n\n");
  std::printf("%-22s | %-21s | %-21s | %-23s\n", "", "SLoC (paper/measured)", "DSL bytes (paper/",
              "native bytes (paper=");
  std::printf("%-22s | %-10s %-10s | %-10s %-10s | %-11s %-11s\n", "driver", "DSL", "native",
              "code", "OTA image", "manifest)", "(float lib?)");

  double dsl_sloc_sum = 0, native_sloc_sum = 0, dsl_bytes_sum = 0, native_bytes_sum = 0;
  int rows = 0;

  for (const NativeDriverInfo& native : NativeDrivers()) {
    const BundledDriver* dsl = FindBundledDriver(native.device_id);
    const PaperRow* paper = PaperFor(native.device_id);
    if (dsl == nullptr || paper == nullptr) {
      continue;
    }
    Result<DriverImage> image = CompileDriver(dsl->source);
    if (!image.ok()) {
      std::printf("%s: COMPILE FAILED: %s\n", dsl->name, image.status().ToString().c_str());
      continue;
    }
    const int dsl_sloc = CountSloc(dsl->source, SlocLanguage::kMicroPnpDsl);
    const int native_sloc = CountSloc(native.source, SlocLanguage::kC);

    std::printf("%-22s | %3d/%-6d %3d/%-6d | %3d/%-6zu %4zu       | %5zu %13s\n", native.name,
                paper->dsl_sloc, dsl_sloc, paper->native_sloc, native_sloc, paper->dsl_bytes,
                image->CodeSize(), image->SerializedSize(), native.avr_flash_bytes,
                native.uses_software_float ? "yes" : "no");

    dsl_sloc_sum += dsl_sloc;
    native_sloc_sum += native_sloc;
    dsl_bytes_sum += static_cast<double>(image->CodeSize());
    native_bytes_sum += static_cast<double>(native.avr_flash_bytes);
    ++rows;
  }

  const double sloc_reduction = 100.0 * (1.0 - dsl_sloc_sum / native_sloc_sum);
  const double bytes_reduction = 100.0 * (1.0 - dsl_bytes_sum / native_bytes_sum);
  std::printf("\naverages over %d drivers:\n", rows);
  std::printf("  paper:    DSL 50 SLoC / 117 B   vs native 103 SLoC / 1876 B\n");
  std::printf("  measured: DSL %.0f SLoC / %.0f B   vs native %.0f SLoC / %.0f B\n",
              dsl_sloc_sum / rows, dsl_bytes_sum / rows, native_sloc_sum / rows,
              native_bytes_sum / rows);
  std::printf("  paper claim:    52%% fewer SLoC, 94%% smaller footprint\n");
  std::printf("  measured claim: %.0f%% fewer SLoC, %.0f%% smaller footprint  [%s]\n",
              sloc_reduction, bytes_reduction,
              (sloc_reduction > 30.0 && bytes_reduction > 80.0) ? "shape holds" : "VIOLATED");
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::Run();
  return 0;
}
