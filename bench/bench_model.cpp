// Northbound model-gateway sweep: M ModelClients over per-shard ModelServers
// against N Things (see src/core/model_bench.h for the scenario and phases).
//
// Reports the last-value-cache hit rate, device-transaction amplification
// (device reads per client read; the no-cache path is 1.0), the hotspot
// slice (every client reads ONE sensor), and the fan-out exactly-once
// ledger, and writes the same data machine-readably to BENCH_model.json
// (schema in docs/BENCHMARKS.md).
//
//   bench_model [--smoke] [--threads LIST] [--out PATH]
//
//   --smoke     tiny sweep (CI: validates the scenario + JSON end to end)
//   --threads   comma-separated worker-thread axis, e.g. 1,2,4 (default 1;
//               threads=1 is the deterministic single-threaded runtime)
//   --out       JSON output path (default BENCH_model.json)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/model_bench.h"

namespace micropnp {
namespace {

// A cell fails the run when its accounting breaks: the cache ledger must
// balance, the hit rate must be a probability, a cached read mix must not
// amplify into more device transactions than client reads, and fan-out must
// deliver exactly once per subscriber.
bool CheckInvariants(const ModelBenchResult& r) {
  bool ok = true;
  if (r.cache_hits + r.cache_misses != r.reads) {
    std::printf("!! cache ledger broken: %llu hits + %llu misses != %llu reads\n",
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses),
                static_cast<unsigned long long>(r.reads));
    ok = false;
  }
  if (r.coalesced_reads + r.device_reads != r.cache_misses) {
    std::printf("!! miss ledger broken: %llu coalesced + %llu device != %llu misses\n",
                static_cast<unsigned long long>(r.coalesced_reads),
                static_cast<unsigned long long>(r.device_reads),
                static_cast<unsigned long long>(r.cache_misses));
    ok = false;
  }
  if (r.hit_rate < 0.0 || r.hit_rate > 1.0 || r.amplification < 0.0 ||
      r.amplification > 1.0) {
    std::printf("!! hit_rate %.6f / amplification %.6f out of range\n", r.hit_rate,
                r.amplification);
    ok = false;
  }
  if (r.fanout_exact != 1) {
    std::printf("!! fan-out not exactly-once: delivered %llu != expected %llu\n",
                static_cast<unsigned long long>(r.fanout_delivered),
                static_cast<unsigned long long>(r.fanout_expected));
    ok = false;
  }
  return ok;
}

int Run(bool smoke, const std::vector<int>& threads_axis, const std::string& out_path) {
  std::vector<ModelBenchOptions> cells;
  if (smoke) {
    ModelBenchOptions tiny;
    tiny.num_things = 8;
    tiny.num_clients = 100;
    tiny.total_reads = 2000;
    tiny.read_window = 64;
    tiny.stream_phase_ms = 1000.0;
    cells.push_back(tiny);
    ModelBenchOptions lossy = tiny;
    lossy.loss_rate = 0.1;
    cells.push_back(lossy);
  } else {
    // The M sweep from the ISSUE: {100, 1k, 10k} clients over 64 Things.
    for (int m : {100, 1000, 10000}) {
      ModelBenchOptions opt;
      opt.num_clients = m;
      opt.num_things = 64;
      opt.total_reads = m <= 1000 ? 10 * m : 100000;
      opt.read_window = 256;
      // TTL sized above the phase-1 simulated duration: the sweep measures
      // the read-heavy steady state (cold misses + single-flight joins
      // only); TTL-expiry behavior is exercised by the smoke cells and the
      // model tests.
      opt.ttl_ms = 10000.0;
      opt.seed = 2015 + static_cast<uint64_t>(m);
      cells.push_back(opt);
    }
  }

  int max_threads = 1;
  for (int t : threads_axis) {
    max_threads = std::max(max_threads, t);
  }
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores != 0 && static_cast<unsigned>(max_threads) > cores) {
    std::printf("!! warning: %d threads requested but only %u hardware core%s available —\n"
                "   multi-threaded cells will time-share and speedups will not be "
                "representative\n",
                max_threads, cores, cores == 1 ? "" : "s");
  }

  std::printf("=== model: M clients x N things — cache, single-flight, fan-out ===\n");
  std::printf("%7s %7s %4s %6s | %8s %9s %9s | %8s %10s | %12s %12s\n", "clients", "things",
              "thr", "loss", "reads", "hit rate", "amplif.", "dev rds", "hot dev", "fanout evts",
              "reads/s");
  std::vector<ModelBenchResult> results;
  bool ok = true;
  for (const ModelBenchOptions& base : cells) {
    for (int threads : threads_axis) {
      ModelBenchOptions opt = base;
      opt.threads = threads;
      ModelBenchResult r = RunModelBench(opt);
      std::printf("%7d %7d %4d %5.0f%% | %8llu %9.4f %9.5f | %8llu %10llu | %12llu %12.0f\n",
                  r.num_clients, r.num_things, r.threads, r.loss_rate * 100.0,
                  static_cast<unsigned long long>(r.reads), r.hit_rate, r.amplification,
                  static_cast<unsigned long long>(r.device_reads),
                  static_cast<unsigned long long>(r.hotspot_device_reads),
                  static_cast<unsigned long long>(r.fanout_delivered), r.reads_per_second);
      ok = CheckInvariants(r) && ok;
      results.push_back(r);
    }
  }

  const std::string json = ModelBenchJson(results);
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::printf("!! could not write %s\n", out_path.c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}

bool ParseThreadsList(const char* arg, std::vector<int>* out) {
  out->clear();
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const long value = std::strtol(p, &end, 10);
    if (end == p || value < 1 || value > 64) {
      return false;
    }
    out->push_back(static_cast<int>(value));
    p = end;
    if (*p == ',') {
      ++p;
    } else if (*p != '\0') {
      return false;
    }
  }
  return !out->empty();
}

}  // namespace
}  // namespace micropnp

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<int> threads_axis{1};
  std::string out_path = "BENCH_model.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!micropnp::ParseThreadsList(argv[++i], &threads_axis)) {
        std::printf("bad --threads list (expected e.g. 1,2,4)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: bench_model [--smoke] [--threads LIST] [--out PATH]\n");
      return 2;
    }
  }
  return micropnp::Run(smoke, threads_axis, out_path);
}
