// Figure 12: "Energy consumption of USB versus µPnP combined with ADC, I2C,
// and UART interconnects" — one-year energy vs. the rate at which
// peripherals are plugged/unplugged (log-log).  Peripherals communicate once
// every ten seconds; the peripheral itself is ideal (consumes nothing beyond
// communication), the worst case for μPnP.
//
// Shape checks from the paper:
//   * USB host is flat (idle power dominates);
//   * μPnP scales linearly with the change rate;
//   * at hourly changes μPnP+ADC is >4 orders of magnitude below USB;
//   * the μPnP curves diverge at low change rates (interconnect floor).

#include <cmath>
#include <cstdio>

#include "src/hw/energy_model.h"

namespace micropnp {
namespace {

void Run() {
  std::printf("=== Figure 12: one-year energy, USB host vs uPnP+{ADC,I2C,UART} ===\n");
  std::printf("(comm period 10 s; energy in Joules per year; log-spaced change rates)\n\n");

  IdentStats ident = SampleIdentification(2000, 20150421);
  UsbHostBaseline usb;

  std::printf("%14s %14s | %12s %12s %12s | %12s %12s\n", "rate (min)", "USB host", "uPnP+ADC",
              "uPnP+I2C", "uPnP+UART", "uPnP+ADC min", "uPnP+ADC max");
  for (double rate = 1.0; rate <= 1.1e6; rate *= 10.0) {
    YearlyEnergyPoint adc = ComputeYearlyEnergy(rate, 10.0, BusKind::kAdc, ident, usb);
    YearlyEnergyPoint i2c = ComputeYearlyEnergy(rate, 10.0, BusKind::kI2c, ident, usb);
    YearlyEnergyPoint uart = ComputeYearlyEnergy(rate, 10.0, BusKind::kUart, ident, usb);
    std::printf("%14.0f %14.3g | %12.4g %12.4g %12.4g | %12.4g %12.4g\n", rate, adc.usb.value(),
                adc.upnp_mean.value(), i2c.upnp_mean.value(), uart.upnp_mean.value(),
                adc.upnp_min.value(), adc.upnp_max.value());
  }

  YearlyEnergyPoint hourly = ComputeYearlyEnergy(60.0, 10.0, BusKind::kAdc, ident, usb);
  const double orders = std::log10(hourly.usb.value() / hourly.upnp_mean.value());
  std::printf("\npaper: 'in a situation where peripherals are changed on an hourly basis, the\n");
  std::printf("energy consumption of uPnP is over four orders of magnitude lower than USB'\n");
  std::printf("measured at 60 min: USB/uPnP+ADC = %.2g (%.2f orders of magnitude)  [%s]\n",
              hourly.usb.value() / hourly.upnp_mean.value(), orders,
              orders > 4.0 ? "holds" : "VIOLATED");

  YearlyEnergyPoint fast = ComputeYearlyEnergy(1.0, 10.0, BusKind::kAdc, ident, usb);
  YearlyEnergyPoint slow = ComputeYearlyEnergy(1000.0, 10.0, BusKind::kAdc, ident, usb);
  const double comm_floor =
      InterconnectEnergyPerOperation(BusKind::kAdc).value() * (kSecondsPerYear / 10.0);
  std::printf("linearity: ident-only energy ratio over 1000x rate change = %.1f (expect ~1000)\n",
              (fast.upnp_mean.value() - comm_floor) / (slow.upnp_mean.value() - comm_floor));
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::Run();
  return 0;
}
