// Table 2: "Detailed breakdown of µPnP's memory footprint" — flash and RAM
// of each software stack component on the ATMega128RFA1 (128 KB flash,
// 16 KB RAM), absolute and as a percentage of the platform.
//
// Measured values come from the footprint model in src/rt/footprint.cpp:
// real dimensioning of this implementation (opcode count, queue depths,
// buffer sizes) with documented per-unit AVR code-size constants (see
// DESIGN.md substitution table).

#include <cstdio>

#include "src/rt/footprint.h"

namespace micropnp {
namespace {

struct PaperRow {
  const char* component;
  size_t flash;
  size_t ram;
};

constexpr PaperRow kPaper[] = {
    {"Peripheral Controller", 2243, 465}, {"uPnP Virtual Machine", 7028, 450},
    {"ADC Native Library", 2034, 268},    {"UART Native Library", 466, 15},
    {"I2C Native Library", 436, 18},      {"uPnP Network Stack", 2024, 302},
};

void Run() {
  std::printf("=== Table 2: uPnP software stack memory footprint ===\n\n");
  std::printf("%-24s | %21s | %21s\n", "", "Flash (bytes, %)", "RAM (bytes, %)");
  std::printf("%-24s | %10s %10s | %10s %10s\n", "component", "paper", "measured", "paper",
              "measured");

  std::vector<FootprintEntry> rows = EmbeddedFootprint();
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-24s | %10zu %6zu(%.1f%%) | %10zu %5zu(%.1f%%)\n", rows[i].component.c_str(),
                kPaper[i].flash, rows[i].flash_bytes, rows[i].flash_pct(), kPaper[i].ram,
                rows[i].ram_bytes, rows[i].ram_pct());
  }
  FootprintEntry total = EmbeddedFootprintTotal();
  std::printf("%-24s | %10d %6zu(%.1f%%) | %10d %5zu(%.1f%%)\n", "Total", 14231,
              total.flash_bytes, total.flash_pct(), 1518, total.ram_bytes, total.ram_pct());
  std::printf("\npaper total: 14231 B flash (10.8%%), 1518 B RAM (9.2%%)\n");
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::Run();
  return 0;
}
