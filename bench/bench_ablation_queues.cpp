// Ablation A3 (Section 4.2 design choice): the error priority queue.
//
// "Regular events in µPnP are handled on a first-come, first-served (FIFO)
// basis, while error events are prioritized."  This bench measures the
// queueing delay (in dispatched events ahead of it) an error event
// experiences with and without the priority queue, under increasing regular
// event backlogs.

#include <cstdio>

#include "src/rt/event_router.h"

namespace micropnp {
namespace {

// Dispatch position of an error event posted behind `backlog` regular
// events.  `prioritized=false` simulates a single shared FIFO by posting the
// error as a regular event.
int ErrorDispatchPosition(size_t backlog, bool prioritized) {
  EventRouter router;
  for (size_t i = 0; i < backlog; ++i) {
    router.Post(0, Event::Of(kEventRead));
  }
  if (prioritized) {
    router.PostError(0, Event::Of(kErrorTimeout));
  } else {
    // Strip the priority: enqueue a non-error stand-in at the FIFO tail.
    router.Post(0, Event::Of(kEventTick));
  }
  int position = 0;
  int error_at = -1;
  router.ProcessAll([&](int, const Event& e) {
    if ((prioritized && e.id == kErrorTimeout) || (!prioritized && e.id == kEventTick)) {
      error_at = position;
    }
    ++position;
  });
  return error_at;
}

void Run() {
  std::printf("=== A3: error priority queue vs single FIFO ===\n\n");
  std::printf("%12s | %22s | %22s\n", "backlog", "priority queue", "single FIFO");
  std::printf("%12s | %10s %10s | %10s %11s\n", "(events)", "position", "delay(us)", "position",
              "delay(us)");
  const double per_event_us =
      static_cast<double>(kRouterEnqueueCycles + kRouterDispatchCycles) / kMcuClockHz * 1e6;
  for (size_t backlog : {0u, 2u, 4u, 8u, 15u}) {
    const int with = ErrorDispatchPosition(backlog, true);
    const int without = ErrorDispatchPosition(backlog, false);
    std::printf("%12zu | %10d %10.1f | %10d %11.1f\n", backlog, with,
                (with + 1) * per_event_us, without, (without + 1) * per_event_us);
  }
  std::printf("\n-> with the priority queue an error is always dispatched next (position 0),\n");
  std::printf("   bounding error latency at one router cycle (~%.1f us at 16 MHz) regardless\n",
              per_event_us);
  std::printf("   of backlog; a shared FIFO delays errors linearly behind pending I/O.\n");
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::Run();
  return 0;
}
