// Gateway scenario: one manager + one gateway client serving N Things over
// an increasingly lossy fabric — the fleet-scale workload the typed
// ProtoEndpoint (deadlines + bounded retransmit-with-backoff) exists for.
//
// For each (N, loss_rate) cell the gateway issues rounds of reads across
// every Thing and we report the operation completion rate, p50/p99 latency
// of completed operations, and the endpoint's retransmit counter.  Without
// retransmissions (seed behaviour, cf. bench_multihop) completion collapses
// beyond ~5% frame loss; with the endpoint the gateway rides out 20% loss
// at the cost of latency.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/deployment.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"

namespace micropnp {
namespace {

struct CellResult {
  int attempted = 0;
  int completed = 0;
  std::vector<double> latencies_ms;  // completed operations only
  uint64_t retransmits = 0;
  uint64_t deadline_exceeded = 0;

  double Percentile(double p) const {
    if (latencies_ms.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  }
};

CellResult RunCell(int num_things, double loss_rate, int rounds, uint64_t seed) {
  DeploymentConfig config;
  config.seed = seed;
  Deployment deployment(config);
  MicroPnpManager& manager = deployment.AddManager();
  (void)manager;
  // Headroom above the largest round (N=64 concurrent reads), so nothing is
  // rejected for capacity; the diagnostic below guards the invariant.
  MicroPnpClient& gateway = deployment.AddClient("gateway", nullptr, /*max_in_flight=*/256);

  // Bring the fleet up on lossless links (driver install is bench_multihop's
  // story; this bench measures steady-state operations).
  Result<DriverImage> image = CompileDriver(FindBundledDriver(kTmp36TypeId)->source);
  std::vector<MicroPnpThing*> things;
  std::vector<Tmp36*> sensors;
  for (int i = 0; i < num_things; ++i) {
    MicroPnpThing& thing = deployment.AddThing("thing-" + std::to_string(i));
    (void)thing.PreinstallDriver(*image);
    Tmp36& sensor = deployment.MakeTmp36();
    if (!thing.Plug(0, &sensor).ok()) {
      continue;
    }
    things.push_back(&thing);
    sensors.push_back(&sensor);
  }
  deployment.RunForMillis(3000);

  LinkModel lossy = config.link;
  lossy.loss_rate = loss_rate;
  deployment.fabric().set_link(lossy);

  RequestOptions options;
  options.deadline_ms = 2000.0;
  options.max_retransmits = 3;
  options.initial_backoff_ms = 200.0;

  CellResult result;
  const uint64_t retransmits_before = gateway.endpoint().counters().retransmits;
  const uint64_t deadlines_before = gateway.endpoint().counters().deadline_exceeded;
  for (int round = 0; round < rounds; ++round) {
    int outstanding = 0;
    for (MicroPnpThing* thing : things) {
      const double started_ms = deployment.NowMillis();
      ++result.attempted;
      ++outstanding;
      gateway.Read(
          thing->node().address(), kTmp36TypeId,
          [&result, &outstanding, &deployment, started_ms](Result<WireValue> value) {
            --outstanding;
            if (value.ok()) {
              ++result.completed;
              result.latencies_ms.push_back(deployment.NowMillis() - started_ms);
            }
          },
          options);
    }
    // Let the round drain fully (every operation completes by its deadline).
    deployment.RunForMillis(options.deadline_ms + 500.0);
    if (outstanding != 0) {
      std::printf("!! round did not drain: %d outstanding\n", outstanding);
    }
  }
  result.retransmits = gateway.endpoint().counters().retransmits - retransmits_before;
  result.deadline_exceeded =
      gateway.endpoint().counters().deadline_exceeded - deadlines_before;
  if (gateway.endpoint().counters().rejected_capacity != 0) {
    std::printf("!! %llu operations rejected for capacity — results understate completion\n",
                static_cast<unsigned long long>(gateway.endpoint().counters().rejected_capacity));
  }
  return result;
}

void Run() {
  std::printf("=== gateway: 1 manager + N things, reads over a lossy fabric ===\n");
  std::printf("(deadline 2000 ms, <=3 retransmits, 200 ms initial backoff; 5 rounds)\n\n");
  std::printf("%7s %7s | %10s %10s %10s | %12s %10s\n", "things", "loss", "completed",
              "p50 (ms)", "p99 (ms)", "retransmits", "deadline");
  for (int num_things : {4, 16, 64}) {
    for (double loss : {0.0, 0.05, 0.2}) {
      CellResult cell = RunCell(num_things, loss, /*rounds=*/5,
                                20150428 + static_cast<uint64_t>(num_things * 1000 + loss * 100));
      std::printf("%7d %6.0f%% | %6d/%-3d %10.1f %10.1f | %12llu %10llu\n", num_things,
                  loss * 100.0, cell.completed, cell.attempted, cell.Percentile(0.5),
                  cell.Percentile(0.99), static_cast<unsigned long long>(cell.retransmits),
                  static_cast<unsigned long long>(cell.deadline_exceeded));
    }
  }
  std::printf("\n-> every operation completes exactly once (reply or deadline); retransmit-\n");
  std::printf("   with-backoff holds the completion rate high at 20%% frame loss, where the\n");
  std::printf("   seed's single-shot requests lost ~%d%% of operations (cf. bench_multihop).\n",
              100 - static_cast<int>(100 * 0.8 * 0.8 * 0.8 * 0.8));
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::Run();
  return 0;
}
