// Fleet-scale gateway sweep: one manager + one gateway client, closed-loop
// reads over N Things (see src/core/gateway_bench.h for the scenario).
//
// Reports p50/p99 simulated read latency, scheduler events per wall second,
// and the pending-table high-water mark per cell, and writes the same data
// machine-readably to BENCH_gateway.json (schema in docs/BENCHMARKS.md).
//
//   bench_gateway [--smoke] [--full] [--out PATH]
//
//   --smoke   tiny fleet (CI: validates the scenario + JSON end to end)
//   --full    adds the N=100k stretch cell to the default {1k, 10k} sweep
//   --out     JSON output path (default BENCH_gateway.json)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/gateway_bench.h"

namespace micropnp {
namespace {

int Run(bool smoke, bool full, const std::string& out_path) {
  std::vector<GatewayBenchOptions> cells;
  if (smoke) {
    GatewayBenchOptions tiny;
    tiny.num_things = 16;
    tiny.total_reads = 64;
    tiny.window = 16;
    cells.push_back(tiny);
    GatewayBenchOptions lossy = tiny;
    lossy.loss_rate = 0.1;
    cells.push_back(lossy);
  } else {
    for (int n : full ? std::vector<int>{1000, 10000, 100000}
                      : std::vector<int>{1000, 10000}) {
      GatewayBenchOptions opt;
      opt.num_things = n;
      // Each Thing is read once, capped so the 100k stretch cell samples the
      // fleet (round-robin from thing 0) instead of running for hours.
      opt.total_reads = n <= 20000 ? n : 20000;
      opt.window = 256;
      opt.seed = 2015 + static_cast<uint64_t>(n);
      cells.push_back(opt);
    }
  }

  std::printf("=== gateway: closed-loop reads, window-bounded, N things ===\n");
  std::printf("%8s %6s %7s | %9s %9s | %8s %12s | %12s\n", "things", "loss", "reads", "p50 (ms)",
              "p99 (ms)", "peak", "sim events", "events/s");
  std::vector<GatewayBenchResult> results;
  bool ok = true;
  for (const GatewayBenchOptions& opt : cells) {
    GatewayBenchResult r = RunGatewayBench(opt);
    std::printf("%8d %5.0f%% %7llu | %9.1f %9.1f | %8llu %12llu | %12.0f\n", r.num_things,
                r.loss_rate * 100.0, static_cast<unsigned long long>(r.issued), r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.peak_in_flight),
                static_cast<unsigned long long>(r.scheduler_events), r.events_per_second);
    if (r.completed + r.deadline_exceeded != r.issued || r.final_in_flight != 0) {
      std::printf("!! cell did not drain: %llu issued, %llu completed, %llu deadline, "
                  "%llu still in flight\n",
                  static_cast<unsigned long long>(r.issued),
                  static_cast<unsigned long long>(r.completed),
                  static_cast<unsigned long long>(r.deadline_exceeded),
                  static_cast<unsigned long long>(r.final_in_flight));
      ok = false;
    }
    results.push_back(r);
  }

  const std::string json = GatewayBenchJson(results);
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::printf("!! could not write %s\n", out_path.c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace micropnp

int main(int argc, char** argv) {
  bool smoke = false;
  bool full = false;
  std::string out_path = "BENCH_gateway.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: bench_gateway [--smoke] [--full] [--out PATH]\n");
      return 2;
    }
  }
  return micropnp::Run(smoke, full, out_path);
}
