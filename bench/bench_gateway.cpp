// Fleet-scale gateway sweep: one manager + gateway clients running
// closed-loop reads over N Things (see src/core/gateway_bench.h for the
// scenario).
//
// Reports p50/p99 simulated read latency, scheduler events per wall second,
// and the pending-table high-water mark per cell, and writes the same data
// machine-readably to BENCH_gateway.json (schema in docs/BENCHMARKS.md).
//
//   bench_gateway [--smoke] [--full] [--threads LIST] [--out PATH]
//
//   --smoke     tiny fleet (CI: validates the scenario + JSON end to end)
//   --full      adds the N=100k stretch cell to the default {1k, 10k} sweep
//   --threads   comma-separated worker-thread axis, e.g. 1,2,4,8 (default 1;
//               threads=1 is the deterministic single-threaded runtime)
//   --out       JSON output path (default BENCH_gateway.json)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/gateway_bench.h"

namespace micropnp {
namespace {

int Run(bool smoke, bool full, const std::vector<int>& threads_axis,
        const std::string& out_path) {
  std::vector<GatewayBenchOptions> cells;
  if (smoke) {
    GatewayBenchOptions tiny;
    tiny.num_things = 16;
    tiny.total_reads = 64;
    tiny.window = 16;
    cells.push_back(tiny);
    GatewayBenchOptions lossy = tiny;
    lossy.loss_rate = 0.1;
    cells.push_back(lossy);
  } else {
    for (int n : full ? std::vector<int>{1000, 10000, 100000}
                      : std::vector<int>{1000, 10000}) {
      GatewayBenchOptions opt;
      opt.num_things = n;
      // Each Thing is read once, capped so the 100k stretch cell samples the
      // fleet (round-robin from thing 0) instead of running for hours.
      opt.total_reads = n <= 20000 ? n : 20000;
      opt.window = 256;
      opt.seed = 2015 + static_cast<uint64_t>(n);
      cells.push_back(opt);
    }
  }

  int max_threads = 1;
  for (int t : threads_axis) {
    max_threads = std::max(max_threads, t);
  }
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores != 0 && static_cast<unsigned>(max_threads) > cores) {
    std::printf("!! warning: %d threads requested but only %u hardware core%s available —\n"
                "   multi-threaded cells will time-share and speedups will not be "
                "representative\n",
                max_threads, cores, cores == 1 ? "" : "s");
  }

  std::printf("=== gateway: closed-loop reads, window-bounded, N things ===\n");
  std::printf("%8s %4s %6s %7s | %9s %9s | %8s %12s | %12s\n", "things", "thr", "loss", "reads",
              "p50 (ms)", "p99 (ms)", "peak", "sim events", "events/s");
  std::vector<GatewayBenchResult> results;
  bool ok = true;
  for (const GatewayBenchOptions& base : cells) {
    for (int threads : threads_axis) {
      GatewayBenchOptions opt = base;
      opt.threads = threads;
      GatewayBenchResult r = RunGatewayBench(opt);
      std::printf("%8d %4d %5.0f%% %7llu | %9.1f %9.1f | %8llu %12llu | %12.0f\n", r.num_things,
                  r.threads, r.loss_rate * 100.0, static_cast<unsigned long long>(r.issued),
                  r.p50_ms, r.p99_ms, static_cast<unsigned long long>(r.peak_in_flight),
                  static_cast<unsigned long long>(r.scheduler_events), r.events_per_second);
      if (r.completed + r.deadline_exceeded != r.issued || r.final_in_flight != 0) {
        std::printf("!! cell did not drain: %llu issued, %llu completed, %llu deadline, "
                    "%llu still in flight\n",
                    static_cast<unsigned long long>(r.issued),
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.deadline_exceeded),
                    static_cast<unsigned long long>(r.final_in_flight));
        ok = false;
      }
      results.push_back(r);
    }
  }

  if (threads_axis.size() > 1) {
    std::printf("\n--- scaling vs threads=1 (events/s) ---\n");
    for (const GatewayBenchResult& base : results) {
      if (base.threads != 1) {
        continue;
      }
      for (const GatewayBenchResult& r : results) {
        if (r.num_things == base.num_things && r.loss_rate == base.loss_rate &&
            r.threads != 1 && base.events_per_second > 0.0) {
          std::printf("  N=%d: %dx threads -> %.2fx throughput\n", r.num_things, r.threads,
                      r.events_per_second / base.events_per_second);
        }
      }
    }
  }

  const std::string json = GatewayBenchJson(results);
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::printf("!! could not write %s\n", out_path.c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}

bool ParseThreadsList(const char* arg, std::vector<int>* out) {
  out->clear();
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const long value = std::strtol(p, &end, 10);
    if (end == p || value < 1 || value > 64) {
      return false;
    }
    out->push_back(static_cast<int>(value));
    p = end;
    if (*p == ',') {
      ++p;
    } else if (*p != '\0') {
      return false;
    }
  }
  return !out->empty();
}

}  // namespace
}  // namespace micropnp

int main(int argc, char** argv) {
  bool smoke = false;
  bool full = false;
  std::vector<int> threads_axis{1};
  std::string out_path = "BENCH_gateway.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!micropnp::ParseThreadsList(argv[++i], &threads_axis)) {
        std::printf("bad --threads list (expected e.g. 1,2,4,8)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: bench_gateway [--smoke] [--full] [--threads LIST] [--out PATH]\n");
      return 2;
    }
  }
  return micropnp::Run(smoke, full, threads_axis, out_path);
}
