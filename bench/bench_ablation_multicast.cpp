// Ablation A2 (Section 5 / SMRF choice): frames transmitted per discovery,
// SMRF vs classic flooding, across tree sizes and member densities.
//
// μPnP's discovery rides on SMRF over the RPL DODAG; the win over flooding
// is that packets only descend into subtrees containing group members.

#include <cstdio>
#include <string>
#include <vector>

#include "src/net/fabric.h"

namespace micropnp {
namespace {

// Builds a complete tree with `fanout` children per node and `depth` levels
// below the root.  Returns all nodes, root first.
std::vector<NetNode*> BuildTree(Fabric& fabric, int fanout, int depth) {
  std::vector<NetNode*> nodes;
  uint16_t host = 1;
  auto address = [&host] {
    Ip6Address a = *Ip6Address::Parse("2001:db8::");
    a.set_group(7, host++);
    return a;
  };
  NetNode* root = fabric.CreateNode("root", address(), NodeProfile::Server(), nullptr);
  nodes.push_back(root);
  std::vector<NetNode*> frontier{root};
  for (int level = 0; level < depth; ++level) {
    std::vector<NetNode*> next;
    for (NetNode* parent : frontier) {
      for (int c = 0; c < fanout; ++c) {
        NetNode* child = fabric.CreateNode("n" + std::to_string(nodes.size()), address(),
                                           NodeProfile::Embedded(), parent);
        nodes.push_back(child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return nodes;
}

void Run() {
  std::printf("=== A2: SMRF vs flooding — frames per multicast discovery ===\n\n");
  std::printf("%8s %8s %8s | %10s | %12s %12s %10s\n", "fanout", "depth", "nodes", "members",
              "SMRF frames", "flood frames", "saving");

  for (int fanout : {2, 3, 4}) {
    for (int depth : {2, 3}) {
      for (int member_every : {1, 4, 16}) {
        Scheduler sched;
        Fabric fabric(sched, 7);
        std::vector<NetNode*> nodes = BuildTree(fabric, fanout, depth);
        // Subscribe every k-th non-root node to the group.
        Ip6Address group = PeripheralGroup(PrefixOf(nodes[0]->address()), 0xad1c0001);
        int members = 0;
        for (size_t i = 1; i < nodes.size(); i += member_every) {
          nodes[i]->JoinGroup(group);
          ++members;
        }

        uint64_t smrf = 0, flood = 0;
        for (MulticastMode mode : {MulticastMode::kSmrf, MulticastMode::kFlooding}) {
          fabric.set_multicast_mode(mode);
          fabric.ResetStats();
          nodes[0]->SendUdp(group, kMicroPnpUdpPort, {0x02, 0x00, 0x01, 0x00});
          sched.Run();
          (mode == MulticastMode::kSmrf ? smrf : flood) = fabric.frames_transmitted();
        }
        std::printf("%8d %8d %8zu | %10d | %12llu %12llu %9.0f%%\n", fanout, depth, nodes.size(),
                    members, static_cast<unsigned long long>(smrf),
                    static_cast<unsigned long long>(flood),
                    100.0 * (1.0 - static_cast<double>(smrf) / static_cast<double>(flood)));
      }
    }
  }
  std::printf("\n-> SMRF saves the most when group members are sparse; with every node a\n");
  std::printf("   member the two modes converge (every edge must carry the packet anyway).\n");
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::Run();
  return 0;
}
