// Ablation A1 (Section 3 design rationale): four short pulses vs one long
// pulse, and robustness vs component tolerance.
//
// The paper: "To avoid the pulse length becoming too long, µPnP uses a
// series of 4 short pulses instead of one long pulse to identify each
// sensor.  This approach keeps the worst-case pulse length short, while
// accounting for the inherent inaccuracy of passive components."
//
// Part 1 quantifies the worst-case pulse budget of k-bits-per-pulse designs;
// part 2 sweeps resistor tolerance and reports identification reliability,
// locating the failure onset of the default E96 design.

#include <cmath>
#include <cstdio>

#include "src/hw/control_board.h"
#include "src/hw/id_codec.h"

namespace micropnp {
namespace {

void PulseBudget() {
  std::printf("=== A1a: worst-case pulse budget vs bits encoded per pulse ===\n");
  std::printf("(geometric level spacing 1.0243 = E96; base pulse 38.3 us)\n\n");
  std::printf("%8s %10s %18s %22s\n", "bits", "pulses", "levels/pulse", "worst-case total time");
  for (int bits_per_pulse : {1, 2, 4, 8, 16, 32}) {
    const int pulses = 32 / bits_per_pulse;
    const double worst_one = SinglePulseWorstCaseSeconds(38.3e-6, 1.0243, bits_per_pulse);
    const double total = worst_one * pulses;
    if (std::isinf(total)) {
      std::printf("%8d %10d %18.0f %22s\n", bits_per_pulse, pulses,
                  std::pow(2.0, bits_per_pulse), "infeasible (overflow)");
    } else if (total > 86400.0) {
      std::printf("%8d %10d %18.0f %19.1f days\n", bits_per_pulse, pulses,
                  std::pow(2.0, bits_per_pulse), total / 86400.0);
    } else if (total > 1.0) {
      std::printf("%8d %10d %18.0f %20.2f s\n", bits_per_pulse, pulses,
                  std::pow(2.0, bits_per_pulse), total);
    } else {
      std::printf("%8d %10d %18.0f %19.1f ms\n", bits_per_pulse, pulses,
                  std::pow(2.0, bits_per_pulse), total * 1e3);
    }
  }
  std::printf("\n-> 8 bits/pulse (the paper's four-pulse design) is the largest feasible choice.\n");
}

void ToleranceSweep() {
  std::printf("\n=== A1b: identification reliability vs resistor tolerance ===\n");
  std::printf("(2000 random ids per point; guard-band rejections trigger a safe rescan)\n\n");
  std::printf("%12s %12s %14s %12s\n", "tolerance", "correct", "guard-rescan", "WRONG id");
  for (double tol : {0.001, 0.0025, 0.005, 0.0075, 0.010, 0.015, 0.020}) {
    Rng rng(42);
    ControlBoardConfig config;
    config.circuit.resistor_tolerance = tol;
    ControlBoard board(config, rng);
    int correct = 0, rescan = 0, wrong = 0;
    const int kTrials = 2000;
    for (int i = 0; i < kTrials; ++i) {
      const DeviceTypeId id = rng.NextU32();
      (void)board.Connect(0, MakePlugForId(board.codec(), id, BusKind::kAdc, rng));
      ScanResult scan = board.Scan();
      (void)board.Disconnect(0);
      if (!scan.channels[0].id.has_value()) {
        ++rescan;
      } else if (*scan.channels[0].id == id) {
        ++correct;
      } else {
        ++wrong;
      }
    }
    std::printf("%11.2f%% %11.1f%% %13.1f%% %11.2f%%\n", tol * 100.0, 100.0 * correct / kTrials,
                100.0 * rescan / kTrials, 100.0 * wrong / kTrials);
  }
  std::printf("\n-> 0.5%%-grade E96 parts (the default) decode reliably; ~1.5-2%% parts break\n");
  std::printf("   the E96-step spacing, matching the paper's Section 3 tolerance argument.\n");
}

}  // namespace
}  // namespace micropnp

int main() {
  micropnp::PulseBudget();
  micropnp::ToleranceSweep();
  return 0;
}
