// Section 6.2 runtime performance:
//   "We executed each bytecode instruction 500 times.  On average, the
//    execution of an instruction takes 39.7 us.  A push() operation takes on
//    average 11.1 us, while a pop() operation requires 8.9 us. ...
//    [The event router] takes 77.79 us to process each event [and] scales
//    linearly."
//
// Two clocks are reported: the modeled 16 MHz AVR cycle clock (comparable to
// the paper) and the host wall clock (google-benchmark), which demonstrates
// the interpreter's native throughput.  The wall-clock section pits the
// pre-decoded execution pipeline (Vm::Dispatch) against the seed
// byte-walking interpreter (Vm::DispatchReference) — same driver, same
// accounting, different amounts of per-instruction work — and adds an
// event-storm throughput benchmark (N drivers x M events through
// EventRouter -> DriverHost).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/dsl/bytecode.h"
#include "src/dsl/compiler.h"
#include "src/rt/decoded_image.h"
#include "src/rt/driver_host.h"
#include "src/rt/event_router.h"
#include "src/rt/vm.h"
#include "src/sim/scheduler.h"

namespace micropnp {
namespace {

// A driver exercising a representative instruction mix.
constexpr const char* kMixDriver = R"(
device 1;
int32_t acc, i;
uint8_t buf[8];
event init():
    acc = 0;
    i = 0;
    while i < 8:
        buf[i] = i * 3;
        acc += buf[i] - (i << 1);
        i++;
    if acc > 4 and acc < 1000:
        acc = (acc * 7) / 3 % 97;
event destroy():
    acc = 0;
event read():
    return acc;
)";

std::shared_ptr<const DecodedImage> DecodeMixDriver() {
  Result<DriverImage> image = CompileDriver(kMixDriver);
  if (!image.ok()) {
    return nullptr;
  }
  Result<std::shared_ptr<const DecodedImage>> decoded = DecodedImage::DecodeShared(*image);
  return decoded.ok() ? *decoded : nullptr;
}

// ---- paper-comparable numbers (AVR cycle model) ----------------------------

// Deterministic cycle-model metrics, also written to BENCH_vm.json so
// regressions in modeled cost are machine-checkable (wall-clock numbers are
// google-benchmark's, available via --benchmark_out).  Schema documented in
// docs/BENCHMARKS.md.
struct CycleModelMetrics {
  double avg_instruction_us = 0.0;
  double push_us = 0.0;
  double pop_us = 0.0;
  double router_us_per_event = 0.0;  // at n=10000
  uint64_t handler_instructions = 0;
  double handler_us = 0.0;
};

// One cell of the multi-threaded handler-mix sweep: T threads, each with a
// private Vm, dispatching from ONE shared immutable DecodedImage.
struct ThreadSweepCell {
  int threads = 1;
  uint64_t dispatches = 0;
  double wall_seconds = 0.0;
  double dispatches_per_second = 0.0;
};

void WriteVmJson(const CycleModelMetrics& m, const std::vector<ThreadSweepCell>& sweep,
                 const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("!! could not write %s\n", path);
    return;
  }
  // Schema 2: the deterministic object is unchanged from schema 1; the new
  // wall_clock section carries the per-thread-count dispatch throughput.
  std::fprintf(f,
               "{\"bench\": \"vm\", \"schema_version\": 2, \"deterministic\": "
               "{\"avg_instruction_us\": %.6f, \"push_us\": %.6f, \"pop_us\": %.6f, "
               "\"router_us_per_event\": %.6f, \"handler_instructions\": %llu, "
               "\"handler_us\": %.6f}, \"wall_clock\": {\"cells\": [",
               m.avg_instruction_us, m.push_us, m.pop_us, m.router_us_per_event,
               static_cast<unsigned long long>(m.handler_instructions), m.handler_us);
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(f,
                 "%s{\"threads\": %d, \"dispatches\": %llu, \"wall_seconds\": %.6f, "
                 "\"dispatches_per_second\": %.6f}",
                 i == 0 ? "" : ", ", sweep[i].threads,
                 static_cast<unsigned long long>(sweep[i].dispatches), sweep[i].wall_seconds,
                 sweep[i].dispatches_per_second);
  }
  std::fprintf(f, "]}}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

// Fixed total work split across T threads: each worker owns a Vm but all
// execute the same decoded image, exercising the verify-once / shared
// read-only image path the sharded runtime relies on.
std::vector<ThreadSweepCell> RunThreadSweep(const std::vector<int>& axis) {
  std::vector<ThreadSweepCell> cells;
  std::shared_ptr<const DecodedImage> decoded = DecodeMixDriver();
  if (decoded == nullptr) {
    std::printf("!! thread sweep skipped: compile/decode failed\n");
    return cells;
  }
  constexpr uint64_t kTotalDispatches = 1ull << 18;
  std::printf("\n--- handler-mix dispatch, %llu total dispatches, shared decoded image ---\n",
              static_cast<unsigned long long>(kTotalDispatches));
  const unsigned cores = std::thread::hardware_concurrency();
  for (int threads : axis) {
    std::atomic<uint64_t> instructions{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      const uint64_t budget = kTotalDispatches / static_cast<uint64_t>(threads) +
                              (static_cast<uint64_t>(t) < kTotalDispatches %
                                                              static_cast<uint64_t>(threads)
                                   ? 1
                                   : 0);
      workers.emplace_back([&decoded, &instructions, budget] {
        Vm vm(decoded);
        uint64_t local = 0;
        for (uint64_t i = 0; i < budget; ++i) {
          Vm::ExecResult r = vm.Dispatch(Event::Of(kEventInit), nullptr);
          local += r.instructions;
        }
        instructions.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    const auto end = std::chrono::steady_clock::now();
    ThreadSweepCell cell;
    cell.threads = threads;
    cell.dispatches = kTotalDispatches;
    cell.wall_seconds = std::chrono::duration<double>(end - start).count();
    cell.dispatches_per_second =
        cell.wall_seconds > 0.0 ? static_cast<double>(kTotalDispatches) / cell.wall_seconds : 0.0;
    std::printf("  threads=%d: %.3f s, %.0f dispatches/s%s\n", threads, cell.wall_seconds,
                cell.dispatches_per_second,
                (cores != 0 && static_cast<unsigned>(threads) > cores)
                    ? "  (more threads than cores: time-shared)"
                    : "");
    cells.push_back(cell);
  }
  return cells;
}

CycleModelMetrics ReportCycleModel() {
  std::printf("=== Section 6.2: VM and event router performance ===\n\n");

  // "Executed each bytecode instruction 500 times": average the modeled cost
  // across the whole ISA, 500 instances each.
  const Op all_ops[] = {
      Op::kNop,    Op::kPush0,  Op::kPush1,      Op::kPushI8, Op::kPushI16, Op::kPushI32,
      Op::kDup,    Op::kPop,    Op::kLoadG,      Op::kStoreG, Op::kLoadL,   Op::kLoadA,
      Op::kStoreA, Op::kAdd,    Op::kSub,        Op::kMul,    Op::kDiv,     Op::kMod,
      Op::kNeg,    Op::kShl,    Op::kShr,        Op::kBitAnd, Op::kBitOr,   Op::kBitXor,
      Op::kBitNot, Op::kLogicalNot, Op::kEq,     Op::kNe,     Op::kLt,      Op::kLe,
      Op::kGt,     Op::kGe,     Op::kJmp,        Op::kJz,     Op::kJnz,     Op::kSignalSelf,
      Op::kSignalLib, Op::kRet, Op::kRetVal,     Op::kRetArr,
  };
  uint64_t total_cycles = 0;
  uint64_t count = 0;
  for (Op op : all_ops) {
    total_cycles += 500ull * OpCycleCost(op);
    count += 500;
  }
  const double avg_us = static_cast<double>(total_cycles) / static_cast<double>(count) /
                        kMcuClockHz * 1e6;
  const double push_us = OpCycleCost(Op::kPush0) / kMcuClockHz * 1e6 -
                         160.0 / kMcuClockHz * 1e6;  // subtract dispatch
  const double pop_us =
      OpCycleCost(Op::kPop) / kMcuClockHz * 1e6 - 160.0 / kMcuClockHz * 1e6;

  std::printf("%-40s %10s %10s\n", "metric (16 MHz AVR cycle model)", "paper", "measured");
  std::printf("%-40s %10s %8.1f us\n", "avg bytecode instruction (500x each)", "39.7 us", avg_us);
  std::printf("%-40s %10s %8.2f us\n", "push() stack operation", "11.1 us", push_us);
  std::printf("%-40s %10s %8.2f us\n", "pop() stack operation", "8.9 us", pop_us);

  CycleModelMetrics metrics;
  metrics.avg_instruction_us = avg_us;
  metrics.push_us = push_us;
  metrics.pop_us = pop_us;

  // Event router: per-event cost and linear scaling.
  for (int n : {100, 1000, 10000}) {
    EventRouter router;
    for (int i = 0; i < n; ++i) {
      router.Post(0, Event::Of(kEventRead));
      router.ProcessAll([](int, const Event&) {});
    }
    std::printf("%-28s n=%-10d %10s %8.2f us/event\n", "event router", n,
                n == 100 ? "77.79 us" : "(linear)", router.MicrosAtMcuClock() / n);
    metrics.router_us_per_event = router.MicrosAtMcuClock() / n;
  }

  // Whole-driver sanity: the representative mix on the cycle clock, via both
  // execution paths (accounting must agree — see rt_test's differential
  // test; this prints the decoded path's numbers).
  std::shared_ptr<const DecodedImage> decoded = DecodeMixDriver();
  if (decoded != nullptr) {
    Vm vm(decoded);
    Vm::ExecResult r = vm.Dispatch(Event::Of(kEventInit), nullptr);
    std::printf("\nrepresentative handler: %llu instructions, %.1f us on the modeled AVR\n",
                static_cast<unsigned long long>(r.instructions),
                static_cast<double>(r.cycles) / kMcuClockHz * 1e6);
    metrics.handler_instructions = r.instructions;
    metrics.handler_us = static_cast<double>(r.cycles) / kMcuClockHz * 1e6;
  }
  return metrics;
}

bool ParseThreadsList(const char* arg, std::vector<int>* out) {
  out->clear();
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const long value = std::strtol(p, &end, 10);
    if (end == p || value < 1 || value > 64) {
      return false;
    }
    out->push_back(static_cast<int>(value));
    p = end;
    if (*p == ',') {
      ++p;
    } else if (*p != '\0') {
      return false;
    }
  }
  return !out->empty();
}

// ---- host wall-clock benchmarks ---------------------------------------------

// The decoded execution pipeline (load-time verify + pre-decode, no per-step
// checks).  Keeps the seed benchmark's name so throughput is comparable
// across commits.
void BM_VmHandlerMix(benchmark::State& state) {
  std::shared_ptr<const DecodedImage> decoded = DecodeMixDriver();
  if (decoded == nullptr) {
    state.SkipWithError("compile/decode failed");
    return;
  }
  Vm vm(decoded);
  uint64_t instructions = 0;
  for (auto _ : state) {
    Vm::ExecResult r = vm.Dispatch(Event::Of(kEventInit), nullptr);
    instructions += r.instructions;
    benchmark::DoNotOptimize(r);
  }
  state.counters["instructions/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmHandlerMix);

// Same driver decoded with trap elision disabled: every div/mod keeps its
// zero check and every subscript its bounds check, even where the abstract
// interpreter proved them dead (src/rt/abstract_interp.h).  The delta
// against BM_VmHandlerMix is the measured cost of the runtime checks the
// deploy-time proofs remove.
void BM_VmHandlerMixCheckedTraps(benchmark::State& state) {
  Result<DriverImage> image = CompileDriver(kMixDriver);
  if (!image.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  Result<std::shared_ptr<const DecodedImage>> decoded = DecodedImage::DecodeShared(
      *image, std::nullopt, DecodeOptions{.elide_proven_traps = false});
  if (!decoded.ok()) {
    state.SkipWithError("decode failed");
    return;
  }
  Vm vm(*decoded);
  uint64_t instructions = 0;
  for (auto _ : state) {
    Vm::ExecResult r = vm.Dispatch(Event::Of(kEventInit), nullptr);
    instructions += r.instructions;
    benchmark::DoNotOptimize(r);
  }
  state.counters["instructions/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmHandlerMixCheckedTraps);

// The seed interpreter over the same driver: re-validates opcodes, bounds
// and stack depth and re-decodes operands on every instruction.
void BM_VmHandlerMixSeedInterpreter(benchmark::State& state) {
  std::shared_ptr<const DecodedImage> decoded = DecodeMixDriver();
  if (decoded == nullptr) {
    state.SkipWithError("compile/decode failed");
    return;
  }
  Vm vm(decoded);
  uint64_t instructions = 0;
  for (auto _ : state) {
    Vm::ExecResult r = vm.DispatchReference(Event::Of(kEventInit), nullptr);
    instructions += r.instructions;
    benchmark::DoNotOptimize(r);
  }
  state.counters["instructions/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmHandlerMixSeedInterpreter);

// Load-time cost the pipeline pays once per image install (amortized away
// entirely by DriverManager's CRC-keyed decode cache on re-installs).
void BM_DecodeMixDriver(benchmark::State& state) {
  Result<DriverImage> image = CompileDriver(kMixDriver);
  if (!image.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  for (auto _ : state) {
    Result<DecodedImage> decoded = DecodedImage::Decode(*image);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecodeMixDriver);

// Event storm: N drivers, each fed a batch of events per iteration through
// EventRouter -> DriverHost -> Vm — the full runtime dispatch stack.
void BM_EventStorm(benchmark::State& state) {
  const int num_drivers = static_cast<int>(state.range(0));
  Scheduler scheduler;
  EventRouter router;
  std::shared_ptr<const DecodedImage> decoded = DecodeMixDriver();
  if (decoded == nullptr) {
    state.SkipWithError("compile/decode failed");
    return;
  }
  std::vector<std::unique_ptr<ChannelBus>> buses;
  std::vector<std::unique_ptr<DriverHost>> hosts;
  for (int slot = 0; slot < num_drivers; ++slot) {
    buses.push_back(std::make_unique<ChannelBus>(scheduler));
    hosts.push_back(std::make_unique<DriverHost>(decoded, slot, scheduler, *buses.back(), router));
  }

  uint64_t events = 0;
  for (auto _ : state) {
    for (int slot = 0; slot < num_drivers; ++slot) {
      router.Post(slot, Event::Of(kEventInit));
    }
    events += router.ProcessAll([&](int slot, const Event& event) {
      hosts[static_cast<size_t>(slot)]->HandleEvent(event);
    });
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventStorm)->Arg(1)->Arg(4)->Arg(16);

void BM_EventRouterPostDispatch(benchmark::State& state) {
  EventRouter router;
  for (auto _ : state) {
    router.Post(0, Event::Of(kEventRead));
    router.DispatchOne([](int, const Event&) {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventRouterPostDispatch);

void BM_CompileTmp36Driver(benchmark::State& state) {
  const char* source = R"(
device 0xad1c0001;
import adc;
event init():
    signal adc.init(ADC_REF_VDD, ADC_RES_10BIT);
event destroy():
    signal adc.reset();
event read():
    signal adc.read();
event newdata(int32_t code):
    return (code * 3300) / 1023 - 500;
)";
  for (auto _ : state) {
    Result<DriverImage> image = CompileDriver(source);
    benchmark::DoNotOptimize(image);
  }
}
BENCHMARK(BM_CompileTmp36Driver);

}  // namespace
}  // namespace micropnp

int main(int argc, char** argv) {
  // Strip --threads before google-benchmark sees the argv (it rejects
  // unknown flags).
  std::vector<int> threads_axis{1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!micropnp::ParseThreadsList(argv[i + 1], &threads_axis)) {
        std::printf("bad --threads list (expected e.g. 1,2,4,8)\n");
        return 2;
      }
      for (int j = i + 2; j < argc; ++j) {
        argv[j - 2] = argv[j];
      }
      argc -= 2;
      break;
    }
  }
  micropnp::CycleModelMetrics metrics = micropnp::ReportCycleModel();
  std::vector<micropnp::ThreadSweepCell> sweep = micropnp::RunThreadSweep(threads_axis);
  micropnp::WriteVmJson(metrics, sweep, "BENCH_vm.json");
  std::printf("\n--- host wall-clock throughput (google-benchmark) ---\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
