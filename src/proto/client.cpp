#include "src/proto/client.h"

#include <algorithm>

#include "src/common/logging.h"

namespace micropnp {

MicroPnpClient::MicroPnpClient(Scheduler& scheduler, NetNode* node, size_t max_in_flight)
    : node_(node), endpoint_(scheduler, node, max_in_flight) {
  node_->JoinGroup(AllClientsGroup(node_->prefix()));
  node_->BindUdp(kMicroPnpUdpPort,
                 [this](const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                        const std::vector<uint8_t>& payload) { OnDatagram(src, dst, port, payload); });
}

void MicroPnpClient::Discover(DeviceTypeId device, double window_ms, DiscoveryCallback callback) {
  endpoint_.SendGather(
      PeripheralGroup(node_->prefix(), device), MessageType::kPeripheralDiscovery,
      PeripheralDiscoveryPayload{}, {MessageType::kSolicitedAdvertisement}, window_ms,
      [callback = std::move(callback)](Result<ProtoEndpoint::GatherReplies> replies) {
        if (!callback) {
          return;
        }
        if (!replies.ok()) {
          callback(replies.status());
          return;
        }
        std::vector<DiscoveredThing> results;
        results.reserve(replies->size());
        for (auto& [src, reply] : *replies) {
          const auto* ad = reply.payload_as<AdvertisementPayload>();
          if (ad == nullptr) {
            continue;
          }
          // A retransmitted (2) can elicit a second (3) from the same Thing;
          // surface each Thing once (first reply wins).
          const bool seen = std::any_of(
              results.begin(), results.end(),
              [&src = src](const DiscoveredThing& t) { return t.address == src; });
          if (!seen) {
            results.push_back(DiscoveredThing{src, ad->peripherals});
          }
        }
        callback(std::move(results));
      });
}

void MicroPnpClient::Read(const Ip6Address& thing, DeviceTypeId device, ReadCallback callback,
                          const RequestOptions& options) {
  endpoint_.SendRequest(
      thing, MessageType::kRead, DeviceTargetPayload{device}, {MessageType::kData},
      [callback = std::move(callback)](Result<Message> reply) {
        if (!callback) {
          return;
        }
        if (!reply.ok()) {
          callback(reply.status());
          return;
        }
        const auto* data = reply->payload_as<ValuePayload>();
        callback(data != nullptr ? Result<WireValue>(data->value)
                                 : Result<WireValue>(CorruptError("malformed data reply")));
      },
      options);
}

void MicroPnpClient::Write(const Ip6Address& thing, DeviceTypeId device, int32_t value,
                           WriteCallback callback, const RequestOptions& options) {
  endpoint_.SendRequest(
      thing, MessageType::kWrite, WritePayload{device, value}, {MessageType::kWriteAck},
      [callback = std::move(callback)](Result<Message> reply) {
        if (!callback) {
          return;
        }
        if (!reply.ok()) {
          callback(reply.status());
          return;
        }
        const auto* ack = reply->payload_as<StatusAckPayload>();
        if (ack == nullptr) {
          callback(CorruptError("malformed write ack"));
          return;
        }
        callback(ack->status == 0 ? OkStatus() : NotFound("peripheral not present"));
      },
      options);
}

void MicroPnpClient::StartStream(const Ip6Address& thing, DeviceTypeId device, uint32_t period_ms,
                                 StreamCallback on_value, StreamClosedCallback on_closed,
                                 const RequestOptions& options) {
  RequestOptions stream_options = options;
  // Sequence + type alone cannot prove a (13) answers *this* request (other
  // clients' sequences toward the same Thing may collide): require the
  // device to match too.
  stream_options.accept = [device](const Message& reply) {
    const auto* established = reply.payload_as<StreamEstablishedPayload>();
    return established != nullptr && established->device_id == device;
  };
  endpoint_.SendRequest(
      thing, MessageType::kStream, StreamRequestPayload{device, period_ms},
      {MessageType::kStreamEstablished},
      [this, thing, device, on_value = std::move(on_value),
       on_closed = std::move(on_closed)](Result<Message> reply) mutable {
        if (!reply.ok()) {
          // (13) never arrived: the subscription expires instead of
          // leaking.  After a deadline the (12) may still have reached the
          // Thing and activated the stream, so send a best-effort shutdown
          // to keep it from streaming to a memberless group forever.  The
          // Thing's stream is a shared per-device resource (any client's
          // stop closes it for all, with (15) notifying the group), so
          // this recovery mirrors an explicit StopStream.  On capacity
          // rejection or cancellation nothing went on the wire — no
          // recovery needed.
          if (reply.status().code() == StatusCode::kDeadlineExceeded) {
            endpoint_.SendOneWay(thing, MessageType::kStream, StreamRequestPayload{device, 0});
          }
          if (on_closed) {
            on_closed();
          }
          return;
        }
        // Re-establishing over an existing subscription closes the old one
        // (its on_closed fires) rather than silently dropping its callbacks.
        CloseStream(thing, device);
        const auto* established = reply->payload_as<StreamEstablishedPayload>();
        StreamSub sub;
        sub.group = established->group;
        sub.on_value = std::move(on_value);
        sub.on_closed = std::move(on_closed);
        RefGroup(sub.group);
        streams_[StreamKey{thing, device}] = std::move(sub);
      },
      stream_options);
}

void MicroPnpClient::StopStream(const Ip6Address& thing, DeviceTypeId device,
                                const RequestOptions& options) {
  // Period 0 requests shutdown.  The Thing answers with (15) to the stream
  // group; our copy arrives from the Thing's unicast address with this
  // request's sequence, completing the transaction.  Whether the reply
  // arrives or the deadline fires, the local subscription is closed.  The
  // predicate keeps another client's (15) for a different device (multicast,
  // possibly sequence-colliding) from completing this transaction.
  RequestOptions stop_options = options;
  stop_options.accept = [device](const Message& reply) {
    const auto* closed = reply.payload_as<DeviceTargetPayload>();
    return closed != nullptr && closed->device_id == device;
  };
  endpoint_.SendRequest(
      thing, MessageType::kStream, StreamRequestPayload{device, 0},
      {MessageType::kStreamClosed},
      [this, thing, device](Result<Message> reply) {
        // On capacity rejection the (12) never went on the wire, and after
        // a deadline it may have been lost: re-send the shutdown one-way
        // (capacity-exempt, idempotent) so the Thing cannot keep streaming
        // to a memberless group.  Cancellation is teardown — skip.
        if (!reply.ok() && reply.status().code() != StatusCode::kCancelled) {
          endpoint_.SendOneWay(thing, MessageType::kStream, StreamRequestPayload{device, 0});
        }
        CloseStream(thing, device);
      },
      stop_options);
}

void MicroPnpClient::CloseStream(const Ip6Address& thing, DeviceTypeId device) {
  auto it = streams_.find(StreamKey{thing, device});
  if (it == streams_.end()) {
    return;
  }
  StreamSub sub = std::move(it->second);
  streams_.erase(it);
  UnrefGroup(sub.group);
  if (sub.on_closed) {
    sub.on_closed();
  }
}

void MicroPnpClient::RefGroup(const Ip6Address& group) {
  if (++group_refs_[group] == 1) {
    node_->JoinGroup(group);
  }
}

void MicroPnpClient::UnrefGroup(const Ip6Address& group) {
  auto it = group_refs_.find(group);
  if (it == group_refs_.end()) {
    return;
  }
  if (--it->second <= 0) {
    group_refs_.erase(it);
    node_->LeaveGroup(group);
  }
}

void MicroPnpClient::OnDatagram(const Ip6Address& src, const Ip6Address& /*dst*/,
                                uint16_t /*port*/, const std::vector<uint8_t>& payload) {
  Result<Message> parsed = Message::Parse(ByteSpan(payload.data(), payload.size()));
  if (!parsed.ok()) {
    MLOG(kDebug, "client") << "dropping malformed datagram from " << src.ToString();
    return;
  }
  const Message& m = *parsed;
  if (endpoint_.HandleReply(src, m)) {
    return;
  }
  switch (m.type) {
    case MessageType::kUnsolicitedAdvertisement: {
      ++advertisements_seen_;
      if (advertisement_listener_) {
        const auto* ad = m.payload_as<AdvertisementPayload>();
        advertisement_listener_(src, ad->peripherals);
      }
      return;
    }
    case MessageType::kStreamData: {
      // (14)s reach the shared per-device-type group; the sending Thing's
      // unicast source selects the subscription.
      const auto* data = m.payload_as<ValuePayload>();
      auto it = streams_.find(StreamKey{src, data->device_id});
      if (it != streams_.end() && it->second.on_value) {
        it->second.on_value(data->value);
      }
      return;
    }
    case MessageType::kStreamClosed: {
      // A (15) we did not request (another client stopped the stream, or
      // the peripheral was unplugged) — closes only the sender's stream.
      CloseStream(src, m.payload_as<DeviceTargetPayload>()->device_id);
      return;
    }
    default:
      return;  // stale replies already counted by the endpoint
  }
}

}  // namespace micropnp
