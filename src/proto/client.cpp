#include "src/proto/client.h"

#include "src/common/logging.h"

namespace micropnp {

MicroPnpClient::MicroPnpClient(Scheduler& scheduler, NetNode* node)
    : scheduler_(scheduler), node_(node) {
  node_->JoinGroup(AllClientsGroup(node_->prefix()));
  node_->BindUdp(kMicroPnpUdpPort,
                 [this](const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                        const std::vector<uint8_t>& payload) { OnDatagram(src, dst, port, payload); });
}

void MicroPnpClient::Discover(DeviceTypeId device, double window_ms, DiscoveryCallback callback) {
  const SequenceNumber seq = sequence_++;
  discoveries_[seq] = PendingDiscovery{{}, std::move(callback)};

  Message m;
  m.type = MessageType::kPeripheralDiscovery;
  m.sequence = seq;
  node_->SendUdp(PeripheralGroup(node_->prefix(), device), kMicroPnpUdpPort, m.Serialize());

  scheduler_.ScheduleAfter(SimTime::FromMillis(window_ms), [this, seq] {
    auto it = discoveries_.find(seq);
    if (it == discoveries_.end()) {
      return;
    }
    PendingDiscovery pending = std::move(it->second);
    discoveries_.erase(it);
    pending.callback(std::move(pending.results));
  });
}

void MicroPnpClient::Read(const Ip6Address& thing, DeviceTypeId device, ReadCallback callback,
                          double timeout_ms) {
  const SequenceNumber seq = sequence_++;
  Message m = MakeDeviceMessage(MessageType::kRead, seq, device);
  PendingRead pending;
  pending.callback = std::move(callback);
  pending.timeout = scheduler_.ScheduleAfter(SimTime::FromMillis(timeout_ms), [this, seq] {
    auto it = reads_.find(seq);
    if (it == reads_.end()) {
      return;
    }
    ReadCallback cb = std::move(it->second.callback);
    reads_.erase(it);
    cb(TimeoutError("read timed out"));
  });
  reads_[seq] = std::move(pending);
  node_->SendUdp(thing, kMicroPnpUdpPort, m.Serialize());
}

void MicroPnpClient::Write(const Ip6Address& thing, DeviceTypeId device, int32_t value,
                           WriteCallback callback, double timeout_ms) {
  const SequenceNumber seq = sequence_++;
  Message m = MakeDeviceMessage(MessageType::kWrite, seq, device);
  m.write_value = value;
  PendingWrite pending;
  pending.callback = std::move(callback);
  pending.timeout = scheduler_.ScheduleAfter(SimTime::FromMillis(timeout_ms), [this, seq] {
    auto it = writes_.find(seq);
    if (it == writes_.end()) {
      return;
    }
    WriteCallback cb = std::move(it->second.callback);
    writes_.erase(it);
    cb(TimeoutError("write timed out"));
  });
  writes_[seq] = std::move(pending);
  node_->SendUdp(thing, kMicroPnpUdpPort, m.Serialize());
}

void MicroPnpClient::StartStream(const Ip6Address& thing, DeviceTypeId device, uint32_t period_ms,
                                 StreamCallback on_value, StreamClosedCallback on_closed) {
  const SequenceNumber seq = sequence_++;
  StreamSub sub;
  sub.device = device;
  sub.on_value = std::move(on_value);
  sub.on_closed = std::move(on_closed);
  stream_requests_[seq] = std::move(sub);

  Message m = MakeDeviceMessage(MessageType::kStream, seq, device);
  m.stream_period_ms = period_ms;
  node_->SendUdp(thing, kMicroPnpUdpPort, m.Serialize());
}

void MicroPnpClient::StopStream(const Ip6Address& thing, DeviceTypeId device) {
  Message m = MakeDeviceMessage(MessageType::kStream, sequence_++, device);
  m.stream_period_ms = 0;  // shutdown request
  node_->SendUdp(thing, kMicroPnpUdpPort, m.Serialize());
}

void MicroPnpClient::OnDatagram(const Ip6Address& src, const Ip6Address& /*dst*/,
                                uint16_t /*port*/, const std::vector<uint8_t>& payload) {
  Result<Message> parsed = Message::Parse(ByteSpan(payload.data(), payload.size()));
  if (!parsed.ok()) {
    return;
  }
  const Message& m = *parsed;
  switch (m.type) {
    case MessageType::kUnsolicitedAdvertisement:
      ++advertisements_seen_;
      if (advertisement_listener_) {
        advertisement_listener_(src, m.peripherals);
      }
      return;
    case MessageType::kSolicitedAdvertisement: {
      auto it = discoveries_.find(m.sequence);
      if (it != discoveries_.end()) {
        it->second.results.push_back(DiscoveredThing{src, m.peripherals});
      }
      return;
    }
    case MessageType::kData: {
      auto it = reads_.find(m.sequence);
      if (it == reads_.end()) {
        return;
      }
      ReadCallback cb = std::move(it->second.callback);
      scheduler_.Cancel(it->second.timeout);
      reads_.erase(it);
      cb(m.value);
      return;
    }
    case MessageType::kWriteAck: {
      auto it = writes_.find(m.sequence);
      if (it == writes_.end()) {
        return;
      }
      WriteCallback cb = std::move(it->second.callback);
      scheduler_.Cancel(it->second.timeout);
      writes_.erase(it);
      cb(m.status == 0 ? OkStatus() : NotFound("peripheral not present"));
      return;
    }
    case MessageType::kStreamEstablished: {
      auto it = stream_requests_.find(m.sequence);
      if (it == stream_requests_.end()) {
        return;
      }
      StreamSub sub = std::move(it->second);
      stream_requests_.erase(it);
      sub.group = m.stream_group;
      sub.joined = true;
      node_->JoinGroup(sub.group);
      streams_[m.device_id] = std::move(sub);
      return;
    }
    case MessageType::kStreamData: {
      auto it = streams_.find(m.device_id);
      if (it != streams_.end() && it->second.on_value) {
        it->second.on_value(m.value);
      }
      return;
    }
    case MessageType::kStreamClosed: {
      auto it = streams_.find(m.device_id);
      if (it == streams_.end()) {
        return;
      }
      StreamSub sub = std::move(it->second);
      streams_.erase(it);
      if (sub.joined) {
        node_->LeaveGroup(sub.group);
      }
      if (sub.on_closed) {
        sub.on_closed();
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace micropnp
