// ProtoEndpoint: the shared request/response core of the μPnP interaction
// protocol (Section 5.2).
//
// The paper matches requests to replies by the 16-bit sequence number every
// message carries.  The seed reproduction hand-rolled that matching three
// times (client, manager, Thing), each with its own pending map and its own
// — or no — timeout handling.  This class centralizes the transaction
// lifecycle so every remote operation completes exactly once with a
// Result<Message>:
//
//  * per-peer sequence allocation (16-bit, wrapping; an allocation never
//    collides with a transaction still pending toward the same peer);
//  * a bounded pending table keyed by (peer, sequence), so stale replies —
//    late, duplicated, or from a previous wrapped transaction — can never
//    complete the wrong request;
//  * a deadline per request (completion with kDeadlineExceeded);
//  * bounded retransmit-with-backoff over the lossy fabric (the paper's
//    Section 9 "unreliable network environments" future work);
//  * cancellation (completion with kCancelled), and
//  * counters for every drop/timeout/retransmit decision.
//
// Multicast fan-out requests (peripheral discovery's collect-replies-for-a-
// window pattern) ride the same table via SendGather.

#ifndef SRC_PROTO_ENDPOINT_H_
#define SRC_PROTO_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/net/fabric.h"
#include "src/proto/messages.h"
#include "src/proto/pending_index.h"

namespace micropnp {

// Per-request deadline and retransmission policy.
struct RequestOptions {
  // Absolute budget for the whole transaction, retransmissions included.
  double deadline_ms = 2000.0;
  // Extra sends beyond the initial one (0 = never retransmit).
  int max_retransmits = 0;
  // Delay before the first retransmission; doubles each time (capped by the
  // deadline, which always wins).
  double initial_backoff_ms = 250.0;
  double backoff_multiplier = 2.0;
  // Accept the reply from any source address.  Required for requests sent
  // to an anycast or multicast destination, where the replier's unicast
  // address differs from the destination the request was sent to.
  bool match_any_source = false;
  // Optional payload-level acceptance check, evaluated after source /
  // sequence / type matching.  A reply it rejects does NOT complete the
  // transaction (it is dropped as stale and retransmits continue) — use it
  // when type + sequence alone cannot prove the reply answers this request,
  // e.g. multicast (15)s or anycast uploads carrying a device id.
  std::function<bool(const Message&)> accept;

  // Defaults with only the deadline overridden — the common caller shape
  // ("this operation, with this timeout"), shared by every MicroPnpClient
  // convenience overload.
  static RequestOptions WithDeadline(double deadline_ms) {
    RequestOptions options;
    options.deadline_ms = deadline_ms;
    return options;
  }
};

// Monotonic counters of every transaction outcome and drop decision.
struct EndpointCounters {
  uint64_t requests_started = 0;
  uint64_t completed_ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t retransmits = 0;
  uint64_t rejected_capacity = 0;      // pending table full or index insert failed
  uint64_t stale_replies_dropped = 0;  // no pending transaction matched
  uint64_t replies_matched = 0;
  uint64_t peak_in_flight = 0;         // high-water mark of the pending table
};

class ProtoEndpoint {
 public:
  using RequestId = uint64_t;
  inline static constexpr RequestId kInvalidRequest = 0;

  // Exactly-once completion: a reply message, or kDeadlineExceeded /
  // kCancelled / kResourceExhausted.
  using ResponseHandler = std::function<void(Result<Message>)>;
  // Gather completion: every (source, reply) observed within the window
  // (possibly none), or kCancelled / kResourceExhausted.
  using GatherReplies = std::vector<std::pair<Ip6Address, Message>>;
  using GatherHandler = std::function<void(Result<GatherReplies>)>;

  ProtoEndpoint(Scheduler& scheduler, NetNode* node, size_t max_in_flight = 64);
  ~ProtoEndpoint();

  ProtoEndpoint(const ProtoEndpoint&) = delete;
  ProtoEndpoint& operator=(const ProtoEndpoint&) = delete;

  // Allocates a sequence toward `peer`, sends `type`+`payload`, and arms the
  // deadline/retransmit machinery.  `handler` is invoked exactly once: with
  // the first reply whose type is in `accepted_replies` and whose
  // (source, sequence) matches, or with an error Status.  When the pending
  // table is full the handler fires immediately (same turn) with
  // kResourceExhausted and kInvalidRequest is returned.  (If the pending
  // index ever rejects a freshly allocated key — an invariant violation —
  // the handler likewise fires immediately, with kInternal, rather than
  // leaving a request no reply could match.)
  RequestId SendRequest(const Ip6Address& peer, MessageType type, MessagePayload payload,
                        std::vector<MessageType> accepted_replies, ResponseHandler handler,
                        const RequestOptions& options = RequestOptions{});

  // Sends a message with a freshly allocated per-peer sequence and no
  // transaction state: fire-and-forget notifications (advertisements,
  // stream data) and requests whose effect is observed out-of-band (stream
  // shutdown).  Returns the sequence used.
  SequenceNumber SendOneWay(const Ip6Address& peer, MessageType type, MessagePayload payload);

  // Multicast request collecting every matching reply for `window_ms`, then
  // completing once with the collection (possibly empty).  Replies match on
  // sequence + accepted type from any source.
  RequestId SendGather(const Ip6Address& group, MessageType type, MessagePayload payload,
                       std::vector<MessageType> accepted_replies, double window_ms,
                       GatherHandler handler);

  // Completes a pending request with kCancelled.  Returns false if the
  // transaction already completed.
  bool Cancel(RequestId id);
  // Cancels every transaction currently pending (requests submitted by the
  // handlers it invokes are left in flight).  Destruction does NOT run
  // this: the destructor drops pending transactions without invoking their
  // handlers, since the state they capture may already be torn down.
  void CancelAll();

  // Reply ingestion: the owner's datagram dispatcher hands every parsed
  // message here first.  Returns true if a pending transaction consumed it.
  // Unmatched messages of reply-looking types are counted as stale only
  // when some transaction could plausibly have produced them (the type is
  // awaited by nothing and the message is not a request type).
  bool HandleReply(const Ip6Address& src, const Message& message);

  size_t in_flight() const { return active_requests_ + gathers_.size(); }
  size_t max_in_flight() const { return max_in_flight_; }
  const EndpointCounters& counters() const { return counters_; }

  // Test hook: forces the next sequence the shared counter hands out,
  // making 16-bit wrap-around scenarios cheap to construct.
  void SetNextSequenceForTest(SequenceNumber next) { next_sequence_ = next; }

 private:
  // Requests live in a slot arena: a slot is reused (freelist) once its
  // transaction completes, its wire/reply-type buffers keeping their
  // capacity, so a steady stream of requests recycles storage instead of
  // allocating.  A RequestId encodes (generation << 32) | (slot + 1); the
  // generation is bumped on release so a stale id can never resolve to a
  // recycled slot.  Gather transactions are rare (discovery windows) and
  // carry the tag bit instead.
  inline static constexpr RequestId kGatherTag = RequestId{1} << 63;

  struct PendingRequest {
    bool active = false;
    uint32_t generation = 0;
    Ip6Address peer;
    SequenceNumber sequence = 0;
    std::vector<MessageType> accepted_replies;
    ResponseHandler handler;
    std::vector<uint8_t> wire;  // serialized request, for retransmission
    RequestOptions options;
    SimTime deadline;
    double next_backoff_ms = 0.0;
    int retransmits_left = 0;
    Scheduler::EventId timer = 0;  // the armed retransmit-or-deadline event
  };
  struct PendingGather {
    Ip6Address group;
    SequenceNumber sequence = 0;
    std::vector<MessageType> accepted_replies;
    GatherHandler handler;
    GatherReplies replies;
    Scheduler::EventId timer = 0;
  };

  SequenceNumber AllocateSequence(const Ip6Address& peer);
  // Resolves an id to its live arena entry; nullptr when the transaction
  // already completed (stale id, or generation mismatch on a reused slot).
  PendingRequest* Resolve(RequestId id);
  // Claims a free slot (growing the arena only when all slots are busy) and
  // returns its id.
  RequestId ClaimSlot();
  // Returns the slot behind `id` to the freelist, dropping per-transaction
  // state but keeping buffer capacity for the next occupant.
  void ReleaseSlot(RequestId id, PendingRequest& entry);
  void ArmTimer(RequestId id);
  void OnTimer(RequestId id);
  // Removes the entry and invokes its handler with `result`.
  void Complete(RequestId id, Result<Message> result);
  void NoteInFlight();

  Scheduler& scheduler_;
  NetNode* node_;
  size_t max_in_flight_;
  // One wrapping counter for all peers: per-(peer, sequence) uniqueness is
  // enforced at allocation time against the pending table, so no per-peer
  // state accumulates for peers ever contacted.
  SequenceNumber next_sequence_ = 1;
  std::vector<PendingRequest> slots_;
  std::vector<uint32_t> free_slots_;
  size_t active_requests_ = 0;
  std::unordered_map<RequestId, PendingGather> gathers_;
  // (peer, sequence) -> transaction id, the O(1) matching index for incoming
  // replies.  Gather entries index under (group, sequence) and additionally
  // match any source.
  PendingIndex by_key_;
  RequestId next_gather_id_ = 1;
  EndpointCounters counters_;
};

}  // namespace micropnp

#endif  // SRC_PROTO_ENDPOINT_H_
