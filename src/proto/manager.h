// The μPnP Manager (Section 5): a server-class node holding the driver
// repository and managing driver deployment on Things.
//
// "The µPnP Manager runs on a server-class device and manages the deployment
// and remote configuration of device drivers on µPnP Things."  It answers
// driver installation requests (4) with uploads (5) and can remotely
// discover (6)/(7) and remove (8)/(9) drivers.
//
// Remote operations ride the shared ProtoEndpoint: DiscoverDrivers and
// RemoveDriver complete exactly once — with the Thing's answer or with
// kDeadlineExceeded when the Thing is unreachable (the seed leaked a
// pending-table entry forever in that case).

#ifndef SRC_PROTO_MANAGER_H_
#define SRC_PROTO_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/dsl/driver_image.h"
#include "src/net/fabric.h"
#include "src/proto/endpoint.h"
#include "src/proto/messages.h"

namespace micropnp {

class MicroPnpManager {
 public:
  // Binds the node to the well-known manager anycast address.
  MicroPnpManager(Scheduler& scheduler, NetNode* node);

  // --- repository (the micropnp.com driver store, Section 3.3) --------------
  Status AddDriver(const DriverImage& image);
  Status AddDriverSource(const std::string& dsl_source);  // compiles then adds
  // Compiles and adds every bundled driver (TMP36, HIH-4030, ...).
  Status PreloadBundledDrivers();
  bool HasDriver(DeviceTypeId id) const { return repository_.count(id) != 0; }
  size_t repository_size() const { return repository_.size(); }

  // --- remote driver management (Figure 11 messages 6..9) -------------------
  using DriverListCallback = std::function<void(Result<std::vector<DeviceTypeId>>)>;
  void DiscoverDrivers(const Ip6Address& thing, DriverListCallback callback,
                       const RequestOptions& options = RequestOptions{});
  using AckCallback = std::function<void(Status)>;
  void RemoveDriver(const Ip6Address& thing, DeviceTypeId id, AckCallback callback,
                    const RequestOptions& options = RequestOptions{});

  NetNode& node() { return *node_; }
  ProtoEndpoint& endpoint() { return endpoint_; }
  const ProtoEndpoint& endpoint() const { return endpoint_; }
  // Distinct install transactions served; retransmitted copies of a (4)
  // already answered are re-served from cache and counted separately.
  uint64_t uploads() const { return uploads_; }
  uint64_t upload_retransmissions() const { return upload_retransmissions_; }

 private:
  void OnDatagram(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                  const std::vector<uint8_t>& payload);
  void SendUploadAfterLookup(const Ip6Address& thing, std::vector<uint8_t> wire);

  Scheduler& scheduler_;
  NetNode* node_;
  ProtoEndpoint endpoint_;
  std::map<DeviceTypeId, DriverImage> repository_;
  // Recently served (4)s, keyed by (thing, sequence), with the serialized
  // (5) kept for cheap re-serve when the Thing retransmits.  Bounded FIFO.
  struct ServedUpload {
    Ip6Address thing;
    SequenceNumber sequence = 0;
    DeviceTypeId device = 0;
    std::vector<uint8_t> wire;
  };
  std::deque<ServedUpload> recent_uploads_;
  uint64_t uploads_ = 0;
  uint64_t upload_retransmissions_ = 0;
  // Repository lookup time on the server (milliseconds).
  double lookup_cpu_ms_ = 0.6;
};

}  // namespace micropnp

#endif  // SRC_PROTO_MANAGER_H_
