// The μPnP Manager (Section 5): a server-class node holding the driver
// repository and managing driver deployment on Things.
//
// "The µPnP Manager runs on a server-class device and manages the deployment
// and remote configuration of device drivers on µPnP Things."  It answers
// driver installation requests (4) with uploads (5) and can remotely
// discover (6)/(7) and remove (8)/(9) drivers.

#ifndef SRC_PROTO_MANAGER_H_
#define SRC_PROTO_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/dsl/driver_image.h"
#include "src/net/fabric.h"
#include "src/proto/messages.h"

namespace micropnp {

class MicroPnpManager {
 public:
  // Binds the node to the well-known manager anycast address.
  MicroPnpManager(Scheduler& scheduler, NetNode* node);

  // --- repository (the micropnp.com driver store, Section 3.3) --------------
  Status AddDriver(const DriverImage& image);
  Status AddDriverSource(const std::string& dsl_source);  // compiles then adds
  // Compiles and adds every bundled driver (TMP36, HIH-4030, ...).
  Status PreloadBundledDrivers();
  bool HasDriver(DeviceTypeId id) const { return repository_.count(id) != 0; }
  size_t repository_size() const { return repository_.size(); }

  // --- remote driver management (Figure 11 messages 6..9) -------------------
  using DriverListCallback = std::function<void(std::vector<DeviceTypeId>)>;
  void DiscoverDrivers(const Ip6Address& thing, DriverListCallback callback);
  using AckCallback = std::function<void(Status)>;
  void RemoveDriver(const Ip6Address& thing, DeviceTypeId id, AckCallback callback);

  NetNode& node() { return *node_; }
  uint64_t uploads() const { return uploads_; }

 private:
  void OnDatagram(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                  const std::vector<uint8_t>& payload);

  Scheduler& scheduler_;
  NetNode* node_;
  std::map<DeviceTypeId, DriverImage> repository_;
  std::map<SequenceNumber, DriverListCallback> pending_discoveries_;
  std::map<SequenceNumber, AckCallback> pending_removals_;
  SequenceNumber sequence_ = 1;
  uint64_t uploads_ = 0;
  // Repository lookup time on the server (milliseconds).
  double lookup_cpu_ms_ = 0.6;
};

}  // namespace micropnp

#endif  // SRC_PROTO_MANAGER_H_
