// The μPnP Manager (Section 5): a server-class node holding the driver
// repository and managing driver deployment on Things.
//
// "The µPnP Manager runs on a server-class device and manages the deployment
// and remote configuration of device drivers on µPnP Things."  It answers
// driver installation requests (4) and can remotely discover (6)/(7) and
// remove (8)/(9) drivers.
//
// Driver delivery is chunked: a (4) is answered with an (18) upload offer
// (image CRC-32 + chunk geometry, echoing the request's sequence so the
// Thing's endpoint transaction completes on it) followed by paced (19)
// chunks, each sized to fit a single 6LoWPAN fragment.  The Thing NACKs
// gaps with (20) selective-repeat chunk requests and the manager re-serves
// exactly those chunks.  A (4) that carries the CRC of an image the Thing
// already holds — fully or partially — short-circuits to an up-to-date
// offer or resumes from the request's chunk bitmap, so a re-plug transfers
// only the delta.
//
// Remote operations ride the shared ProtoEndpoint: DiscoverDrivers and
// RemoveDriver complete exactly once — with the Thing's answer or with
// kDeadlineExceeded when the Thing is unreachable (the seed leaked a
// pending-table entry forever in that case).

#ifndef SRC_PROTO_MANAGER_H_
#define SRC_PROTO_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/dsl/driver_image.h"
#include "src/net/fabric.h"
#include "src/proto/endpoint.h"
#include "src/proto/messages.h"

namespace micropnp {

class MicroPnpManager {
 public:
  // Binds the node to the well-known manager anycast address.
  MicroPnpManager(Scheduler& scheduler, NetNode* node);

  // --- repository (the micropnp.com driver store, Section 3.3) --------------
  Status AddDriver(const DriverImage& image);
  Status AddDriverSource(const std::string& dsl_source);  // compiles then adds
  // Compiles and adds every bundled driver (TMP36, HIH-4030, ...).
  Status PreloadBundledDrivers();
  bool HasDriver(DeviceTypeId id) const { return repository_.count(id) != 0; }
  size_t repository_size() const { return repository_.size(); }

  // --- remote driver management (Figure 11 messages 6..9) -------------------
  using DriverListCallback = std::function<void(Result<std::vector<DeviceTypeId>>)>;
  void DiscoverDrivers(const Ip6Address& thing, DriverListCallback callback,
                       const RequestOptions& options = RequestOptions{});
  using AckCallback = std::function<void(Status)>;
  void RemoveDriver(const Ip6Address& thing, DeviceTypeId id, AckCallback callback,
                    const RequestOptions& options = RequestOptions{});

  NetNode& node() { return *node_; }
  ProtoEndpoint& endpoint() { return endpoint_; }
  const ProtoEndpoint& endpoint() const { return endpoint_; }
  // Distinct install transactions served; retransmitted copies of a (4)
  // already answered are re-served their offer and counted separately.
  uint64_t uploads() const { return uploads_; }
  uint64_t upload_retransmissions() const { return upload_retransmissions_; }
  // Chunk datagrams sent, total and NACK-served, plus the resume/cache-hit
  // split of uploads(): resumed (partial bitmap honoured) and short-circuited
  // (Thing's cached image already matched — zero chunks moved).
  uint64_t chunks_sent() const { return chunks_sent_; }
  uint64_t chunk_retransmissions() const { return chunk_retransmissions_; }
  uint64_t resumed_uploads() const { return resumed_uploads_; }
  uint64_t upload_short_circuits() const { return upload_short_circuits_; }

 private:
  // A repository entry lowered to its wire form once: serialized bytes,
  // their CRC-32 and the chunk geometry every offer/chunk for this device
  // quotes.  Invalidated when AddDriver replaces the image.
  struct PreparedImage {
    std::vector<uint8_t> bytes;
    uint32_t crc = 0;
    uint16_t chunk_size = 0;
    uint16_t chunk_count = 0;
  };

  void OnDatagram(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                  const std::vector<uint8_t>& payload);
  void HandleInstallRequest(const Ip6Address& src, const Message& m);
  void HandleChunkRequest(const Ip6Address& src, const Message& m);
  const PreparedImage* Prepare(DeviceTypeId id);
  std::vector<uint8_t> ChunkWire(DeviceTypeId id, const PreparedImage& img, uint16_t index) const;
  void SendWireAfter(double delay_ms, const Ip6Address& thing, std::vector<uint8_t> wire);

  Scheduler& scheduler_;
  NetNode* node_;
  ProtoEndpoint endpoint_;
  std::map<DeviceTypeId, DriverImage> repository_;
  std::map<DeviceTypeId, PreparedImage> prepared_;
  // Recently served (4)s, keyed by (thing, sequence), with the serialized
  // (18) offer kept for cheap re-serve when the Thing retransmits.  The
  // chunks themselves are not replayed on a duplicate (4): the Thing's
  // selective-repeat NACK asks for exactly the gaps.  Bounded FIFO.
  struct ServedOffer {
    Ip6Address thing;
    SequenceNumber sequence = 0;
    DeviceTypeId device = 0;
    std::vector<uint8_t> offer_wire;
  };
  std::deque<ServedOffer> recent_offers_;
  uint64_t uploads_ = 0;
  uint64_t upload_retransmissions_ = 0;
  uint64_t chunks_sent_ = 0;
  uint64_t chunk_retransmissions_ = 0;
  uint64_t resumed_uploads_ = 0;
  uint64_t upload_short_circuits_ = 0;
  // Repository lookup time on the server (milliseconds).
  double lookup_cpu_ms_ = 0.6;
  // Pacing between consecutive chunk datagrams: keeps a multi-chunk stream
  // from bursting into one radio queue and lets forwarding nodes drain.
  double chunk_interval_ms_ = 2.0;
  // Chunk payload sized so header + chunk framing + data fit one 88-byte
  // 6LoWPAN fragment (17 bytes of framing leaves <= 61; 56 keeps margin).
  uint16_t chunk_payload_bytes_ = 56;
};

}  // namespace micropnp

#endif  // SRC_PROTO_MANAGER_H_
