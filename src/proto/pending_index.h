// Flat hash index for in-flight transactions, keyed by (peer, sequence).
//
// The seed endpoint kept this mapping in a std::map: O(log n) with a pointer
// chase per level and a node allocation per request — measurable at gateway
// scale where every datagram in and out touches the table.  This is the
// replacement: a fixed-capacity open-addressing table (linear probing,
// backward-shift deletion, power-of-two sizing) allocated once at endpoint
// construction.  Insert/Find/Erase are O(1) expected with load factor <= 0.5
// (capacity is sized to twice the endpoint's max_in_flight bound), and the
// steady state performs zero heap allocations.
//
// Backward-shift deletion keeps probe chains dense without tombstones, so
// lookup cost cannot degrade over a long-lived endpoint's lifetime.

#ifndef SRC_PROTO_PENDING_INDEX_H_
#define SRC_PROTO_PENDING_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/net/ip6.h"

namespace micropnp {

class PendingIndex {
 public:
  // Sizes the table to the smallest power of two holding `max_entries` at
  // <= 50% occupancy.  Insert beyond max_entries still works (up to the
  // table's physical capacity); the endpoint's own in-flight bound is what
  // keeps occupancy in the fast regime.
  explicit PendingIndex(size_t max_entries);

  // Returns false when the key is already present (or the table is
  // physically full); the caller allocates sequences to avoid duplicates.
  bool Insert(const Ip6Address& peer, uint16_t sequence, uint64_t value);
  // Returns the mapped value, or 0 when absent (0 is never a valid id).
  uint64_t Find(const Ip6Address& peer, uint16_t sequence) const;
  bool Contains(const Ip6Address& peer, uint16_t sequence) const {
    return Find(peer, sequence) != 0;
  }
  // Returns false when the key was absent.
  bool Erase(const Ip6Address& peer, uint16_t sequence);

  size_t size() const { return size_; }
  size_t capacity() const { return cells_.size(); }

 private:
  struct Cell {
    Ip6Address peer;
    uint64_t value = 0;  // 0 = empty
    uint16_t sequence = 0;
  };

  size_t Home(const Ip6Address& peer, uint16_t sequence) const {
    return static_cast<size_t>(HashIp6(peer) + 0x9e3779b97f4a7c15ull * sequence) & mask_;
  }
  // Index of the cell holding the key, or of the first empty cell in its
  // probe chain when absent.
  size_t Probe(const Ip6Address& peer, uint16_t sequence) const;

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace micropnp

#endif  // SRC_PROTO_PENDING_INDEX_H_
