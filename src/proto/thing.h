// The μPnP Thing (Section 5): an embedded IoT device with locally connected
// μPnP hardware, exposing its peripherals to the network.
//
// The Thing composes the whole paper: control board + peripheral controller
// (Section 3), driver runtime (Section 4), and the interaction protocol
// (Section 5).  When a peripheral is plugged in it executes the flow that
// Table 4 measures:
//
//   identify -> generate multicast address -> join group ->
//   [request driver -> install driver]     -> advertise (1)
//
// and afterwards serves discovery (2)/(3), read (10)/(11), stream
// (12)..(15) and write (16)/(17), plus the manager-facing driver operations
// (5)..(9).
//
// The driver request (4) is a ProtoEndpoint transaction toward the Manager
// anycast address: it retransmits with backoff over lossy links and
// completes exactly once — with the (5) upload or with kDeadlineExceeded.

#ifndef SRC_PROTO_THING_H_
#define SRC_PROTO_THING_H_

#include <cstdint>
#include <deque>
#include <map>

#include "src/net/fabric.h"
#include "src/proto/endpoint.h"
#include "src/proto/messages.h"
#include "src/rt/driver_manager.h"
#include "src/rt/peripheral_controller.h"

namespace micropnp {

// CPU cost model of the embedded protocol operations (calibration knobs for
// the Table 4 reproduction; milliseconds on the 16 MHz AVR).
struct ThingConfig {
  double generate_address_cpu_ms = 2.58;   // Table 4 row 1
  double join_group_cpu_ms = 5.43;         // Table 4 row 2 (MLD + RPL DAO)
  double request_build_cpu_ms = 0.4;
  double install_parse_cpu_ms = 6.0;       // image parse + CRC check
  double flash_write_ms_per_byte = 0.58;   // driver write to internal flash
  double flash_jitter_fraction = 0.35;     // page-boundary/erase variance
  double install_activate_cpu_ms = 9.0;    // VM setup + init dispatch
  double advert_build_cpu_ms = 18.0;       // TLV serialization on the AVR
  double reply_build_cpu_ms = 6.0;         // read/data response construction
  double cpu_jitter_fraction = 0.012;
  // Driver request (4) transaction policy toward the Manager anycast
  // address: bounded retransmit-with-backoff, then give up.
  double driver_request_deadline_ms = 15000.0;
  int driver_request_retransmits = 5;
  double driver_request_backoff_ms = 400.0;
};

// Simulation-time marks of the most recent plug-in flow (consumed by the
// Table 4 bench).
struct PlugFlowMarks {
  ChannelId channel = 0;
  DeviceTypeId device = 0;
  bool driver_was_cached = false;
  SimTime plugged;            // physical connect (interrupt)
  SimTime identified;         // identification scan complete
  SimTime address_generated;  // multicast address derived
  SimTime group_joined;       // group membership active
  SimTime driver_requested;   // (4) sent (equals group_joined when cached)
  SimTime driver_received;    // (5) arrived
  SimTime driver_installed;   // image activated
  SimTime advertised;         // (1) handed to the network stack
};

class MicroPnpThing {
 public:
  MicroPnpThing(Scheduler& scheduler, NetNode* node, const ControlBoardConfig& board_config,
                uint64_t seed, const ThingConfig& config = ThingConfig{});

  // --- local hardware access ------------------------------------------------
  Status Plug(ChannelId channel, Peripheral* peripheral);
  Status Unplug(ChannelId channel);
  PeripheralController& controller() { return controller_; }
  DriverManager& drivers() { return driver_manager_; }
  NetNode& node() { return *node_; }
  ProtoEndpoint& endpoint() { return endpoint_; }
  const ProtoEndpoint& endpoint() const { return endpoint_; }

  // Pre-provisions a driver image locally (no over-the-air request needed).
  Status PreinstallDriver(const DriverImage& image);

  // --- instrumentation --------------------------------------------------------
  const std::optional<PlugFlowMarks>& last_plug_flow() const { return last_flow_; }
  uint64_t advertisements_sent() const { return advertisements_sent_; }
  uint64_t reads_served() const { return reads_served_; }
  uint64_t writes_served() const { return writes_served_; }
  uint64_t driver_requests_failed() const { return driver_requests_failed_; }

 private:
  struct PendingRead {
    Ip6Address client;
    SequenceNumber sequence;
  };
  struct StreamState {
    bool active = false;
    uint32_t period_ms = 0;
    Ip6Address group;
    uint64_t generation = 0;
  };

  // Plug-in network flow (Figure 10/11), chained on the scheduler.
  void OnPeripheralChange(ChannelId channel, DeviceTypeId id, bool connected);
  void ContinueFlowJoinGroup(ChannelId channel, DeviceTypeId id);
  void ContinueFlowEnsureDriver(ChannelId channel, DeviceTypeId id);
  void OnDriverRequestComplete(ChannelId channel, DeviceTypeId id, Result<Message> reply);
  void InstallReceivedDriver(ChannelId channel, DeviceTypeId id, std::vector<uint8_t> image);
  void ActivateAndAdvertise(ChannelId channel, DeviceTypeId id);
  void SendUnsolicitedAdvertisement();
  void SendSolicitedAdvertisement(const Ip6Address& client, SequenceNumber seq);

  // Message handling.
  void OnDatagram(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                  const std::vector<uint8_t>& payload);
  void HandleDiscovery(const Ip6Address& src, const Message& m, const Ip6Address& group);
  void HandleRead(const Ip6Address& src, const Message& m);
  void HandleStream(const Ip6Address& src, const Message& m);
  void HandleWrite(const Ip6Address& src, const Message& m);
  void HandleDriverDiscovery(const Ip6Address& src, const Message& m);
  void HandleDriverRemoval(const Ip6Address& src, const Message& m);

  // Driver result routing (read replies and stream data).
  void OnProduced(ChannelId channel, const ProducedValue& value);
  void StreamTick(ChannelId channel, uint64_t generation);

  std::vector<AdvertisedPeripheral> ConnectedPeripherals() const;
  double Jitter(double nominal_ms);

  Scheduler& scheduler_;
  NetNode* node_;
  ThingConfig config_;
  Rng rng_;
  EventRouter router_;
  DriverManager driver_manager_;
  PeripheralController controller_;
  ProtoEndpoint endpoint_;

  std::map<ChannelId, std::deque<PendingRead>> pending_reads_;
  std::map<ChannelId, StreamState> streams_;
  std::optional<PlugFlowMarks> last_flow_;
  uint64_t advertisements_sent_ = 0;
  uint64_t reads_served_ = 0;
  uint64_t writes_served_ = 0;
  uint64_t driver_requests_failed_ = 0;
};

}  // namespace micropnp

#endif  // SRC_PROTO_THING_H_
