// The μPnP Thing (Section 5): an embedded IoT device with locally connected
// μPnP hardware, exposing its peripherals to the network.
//
// The Thing composes the whole paper: control board + peripheral controller
// (Section 3), driver runtime (Section 4), and the interaction protocol
// (Section 5).  When a peripheral is plugged in it executes the flow that
// Table 4 measures:
//
//   identify -> generate multicast address -> join group ->
//   [request driver -> install driver]     -> advertise (1)
//
// and afterwards serves discovery (2)/(3), read (10)/(11), stream
// (12)..(15) and write (16)/(17), plus the manager-facing driver operations
// (5)..(9).
//
// Lossy-network hardening on top of the paper's flow:
//  - Advertisements repeat on a bounded trickle schedule: after any
//    peripheral change the interval restarts at readvertise_min_ms and
//    doubles up to readvertise_max_ms, whose tick is the last.  A solicited
//    advertisement (3) suppresses the next tick.  Clients that missed the
//    one-shot (1) converge without flooding the fabric.
//  - The driver request (4) is a ProtoEndpoint transaction toward the
//    Manager anycast address carrying the resume state of any held partial
//    image.  It is answered by an (18) upload offer followed by (19) chunks
//    sized to single 6LoWPAN fragments; the Thing NACKs gaps with (20)
//    selective-repeat requests, and assembles + CRC-verifies the image.  A
//    failed request re-arms with capped exponential backoff instead of
//    giving up, and a re-plug resumes from the held chunk bitmap.

#ifndef SRC_PROTO_THING_H_
#define SRC_PROTO_THING_H_

#include <cstdint>
#include <deque>
#include <map>

#include "src/net/fabric.h"
#include "src/proto/endpoint.h"
#include "src/proto/messages.h"
#include "src/rt/driver_manager.h"
#include "src/rt/peripheral_controller.h"

namespace micropnp {

// CPU cost model of the embedded protocol operations (calibration knobs for
// the Table 4 reproduction; milliseconds on the 16 MHz AVR).
struct ThingConfig {
  double generate_address_cpu_ms = 2.58;   // Table 4 row 1
  double join_group_cpu_ms = 5.43;         // Table 4 row 2 (MLD + RPL DAO)
  double request_build_cpu_ms = 0.4;
  double install_parse_cpu_ms = 6.0;       // image parse + CRC check
  double flash_write_ms_per_byte = 0.58;   // driver write to internal flash
  double flash_jitter_fraction = 0.35;     // page-boundary/erase variance
  double install_activate_cpu_ms = 9.0;    // VM setup + init dispatch
  double advert_build_cpu_ms = 18.0;       // TLV serialization on the AVR
  double reply_build_cpu_ms = 6.0;         // read/data response construction
  double cpu_jitter_fraction = 0.012;
  // Driver request (4) transaction policy toward the Manager anycast
  // address: bounded retransmit-with-backoff per attempt.
  double driver_request_deadline_ms = 15000.0;
  int driver_request_retransmits = 7;
  double driver_request_backoff_ms = 400.0;
  // Sub-doubling growth packs more attempts into the deadline: at 20% frame
  // loss over multiple hops, attempt count dominates convergence.
  double driver_request_backoff_multiplier = 1.7;
  // A failed (4) re-arms with capped exponential backoff — the link may
  // heal — instead of leaving the channel identified-but-driverless
  // forever.  Bounded so a manager-less deployment still drains.
  double driver_retry_initial_ms = 2000.0;
  double driver_retry_max_ms = 30000.0;
  int driver_retry_limit = 100;
  // Chunked transfer gap repair: after the offer arrives, a NACK timer with
  // capped exponential backoff requests the missing chunks, up to a bounded
  // budget per attempt (then the (4)-level retry takes over, resuming from
  // the bitmap).
  double chunk_nack_delay_ms = 250.0;
  double chunk_nack_max_delay_ms = 2000.0;
  int chunk_nack_budget = 8;
  // Trickle-style re-advertisement: interval restarts at min after any
  // peripheral change, doubles to max, then goes dormant.  min <= 0
  // disables the schedule (benchmarks that only measure the read path).
  double readvertise_min_ms = 1000.0;
  double readvertise_max_ms = 64000.0;
};

// Simulation-time marks of the most recent plug-in flow (consumed by the
// Table 4 bench).
struct PlugFlowMarks {
  ChannelId channel = 0;
  DeviceTypeId device = 0;
  bool driver_was_cached = false;
  SimTime plugged;            // physical connect (interrupt)
  SimTime identified;         // identification scan complete
  SimTime address_generated;  // multicast address derived
  SimTime group_joined;       // group membership active
  SimTime driver_requested;   // (4) sent (equals group_joined when cached)
  SimTime driver_received;    // full image held (offer/chunks or legacy (5))
  SimTime driver_installed;   // image activated
  SimTime advertised;         // (1) handed to the network stack
};

class MicroPnpThing {
 public:
  // `decode_cache` (optional) shares verified decoded driver images across
  // all Things in the process (see SharedDecodeCache); it must outlive the
  // Thing.
  MicroPnpThing(Scheduler& scheduler, NetNode* node, const ControlBoardConfig& board_config,
                uint64_t seed, const ThingConfig& config = ThingConfig{},
                SharedDecodeCache* decode_cache = nullptr);

  // --- local hardware access ------------------------------------------------
  Status Plug(ChannelId channel, Peripheral* peripheral);
  Status Unplug(ChannelId channel);
  PeripheralController& controller() { return controller_; }
  DriverManager& drivers() { return driver_manager_; }
  NetNode& node() { return *node_; }
  ProtoEndpoint& endpoint() { return endpoint_; }
  const ProtoEndpoint& endpoint() const { return endpoint_; }

  // Pre-provisions a driver image locally (no over-the-air request needed).
  Status PreinstallDriver(const DriverImage& image);

  // --- instrumentation --------------------------------------------------------
  const std::optional<PlugFlowMarks>& last_plug_flow() const { return last_flow_; }
  uint64_t advertisements_sent() const { return advertisements_sent_; }
  uint64_t reads_served() const { return reads_served_; }
  uint64_t writes_served() const { return writes_served_; }
  uint64_t driver_requests_failed() const { return driver_requests_failed_; }
  uint64_t driver_request_retries() const { return driver_request_retries_; }
  uint64_t readvertisements_sent() const { return readvertisements_sent_; }
  uint64_t readvertisements_suppressed() const { return readvertisements_suppressed_; }
  uint64_t chunks_received() const { return chunks_received_; }
  uint64_t duplicate_chunks() const { return duplicate_chunks_; }
  uint64_t chunk_nacks_sent() const { return chunk_nacks_sent_; }
  uint64_t transfers_completed() const { return transfers_completed_; }

 private:
  struct PendingRead {
    Ip6Address client;
    SequenceNumber sequence;
  };
  struct StreamState {
    bool active = false;
    uint32_t period_ms = 0;
    Ip6Address group;
    uint64_t generation = 0;
  };
  // One chunked driver transfer, which doubles as the resume cache: chunks
  // survive unplug/deadline, so the next (4) advertises them in its bitmap
  // and only the gaps move again.
  struct DriverTransfer {
    uint32_t crc = 0;  // CRC-32 the offer/chunks quote for the full image
    uint16_t chunk_count = 0;
    std::vector<std::vector<uint8_t>> chunks;
    std::vector<bool> have;
    uint16_t have_count = 0;
    ChannelId channel = kInvalidChannel;  // most recent requesting channel
    bool offer_seen = false;
    bool complete = false;  // all chunks held and CRC verified
    bool install_started = false;
    bool nack_armed = false;
    int nacks_sent = 0;
    double nack_delay_ms = 0.0;
    uint64_t generation = 0;  // bump invalidates armed NACK timers
  };
  // Per-channel plug-flow bookkeeping: the generation invalidates stale
  // request completions and scheduled retries across unplug/re-plug; the
  // retry backoff resets on every (re-)plug.
  struct FlowState {
    uint64_t generation = 0;
    double retry_delay_ms = 0.0;
    int retries = 0;
  };

  // Plug-in network flow (Figure 10/11), chained on the scheduler.
  void OnPeripheralChange(ChannelId channel, DeviceTypeId id, bool connected);
  void ContinueFlowJoinGroup(ChannelId channel, DeviceTypeId id);
  void ContinueFlowEnsureDriver(ChannelId channel, DeviceTypeId id);
  void OnDriverRequestComplete(ChannelId channel, DeviceTypeId id, uint64_t flow_generation,
                               Result<Message> reply);
  void ScheduleDriverRetry(ChannelId channel, DeviceTypeId id);
  void InstallReceivedDriver(ChannelId channel, DeviceTypeId id, std::vector<uint8_t> image);
  void ActivateAndAdvertise(ChannelId channel, DeviceTypeId id);
  void SendUnsolicitedAdvertisement();
  void SendSolicitedAdvertisement(const Ip6Address& client, SequenceNumber seq);

  // Chunked driver transfer (18)/(19)/(20).
  void ProcessOffer(ChannelId channel, DeviceTypeId id, const DriverOfferPayload& offer);
  void HandleDriverChunk(const Message& m);
  void ResetTransfer(DriverTransfer& t, uint32_t crc, uint16_t chunk_count);
  void MaybeCompleteTransfer(DeviceTypeId id, DriverTransfer& t);
  ChannelId ChannelFor(DeviceTypeId id);
  std::vector<uint8_t> AssembleTransfer(const DriverTransfer& t) const;
  void ArmNackTimer(DeviceTypeId id);
  void NackTick(DeviceTypeId id, uint64_t generation);

  // Trickle re-advertisement.
  void ResetTrickle();
  void TrickleTick(uint64_t generation);

  // Message handling.
  void OnDatagram(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                  const std::vector<uint8_t>& payload);
  void HandleDiscovery(const Ip6Address& src, const Message& m, const Ip6Address& group);
  void HandleRead(const Ip6Address& src, const Message& m);
  void HandleStream(const Ip6Address& src, const Message& m);
  void HandleWrite(const Ip6Address& src, const Message& m);
  void HandleDriverDiscovery(const Ip6Address& src, const Message& m);
  void HandleDriverRemoval(const Ip6Address& src, const Message& m);

  // Driver result routing (read replies and stream data).
  void OnProduced(ChannelId channel, const ProducedValue& value);
  void StreamTick(ChannelId channel, uint64_t generation);

  std::vector<AdvertisedPeripheral> ConnectedPeripherals() const;
  double Jitter(double nominal_ms);

  Scheduler& scheduler_;
  NetNode* node_;
  ThingConfig config_;
  Rng rng_;
  EventRouter router_;
  DriverManager driver_manager_;
  PeripheralController controller_;
  ProtoEndpoint endpoint_;

  std::map<ChannelId, std::deque<PendingRead>> pending_reads_;
  std::map<ChannelId, StreamState> streams_;
  std::map<ChannelId, FlowState> flows_;
  std::map<DeviceTypeId, DriverTransfer> transfers_;
  std::optional<PlugFlowMarks> last_flow_;
  // Trickle state: 0 interval = dormant; the generation invalidates
  // scheduled ticks after a reset.
  double advert_interval_ms_ = 0.0;
  bool advert_suppressed_ = false;
  uint64_t advert_generation_ = 0;
  uint64_t advertisements_sent_ = 0;
  uint64_t readvertisements_sent_ = 0;
  uint64_t readvertisements_suppressed_ = 0;
  uint64_t reads_served_ = 0;
  uint64_t writes_served_ = 0;
  uint64_t driver_requests_failed_ = 0;
  uint64_t driver_request_retries_ = 0;
  uint64_t chunks_received_ = 0;
  uint64_t duplicate_chunks_ = 0;
  uint64_t chunk_nacks_sent_ = 0;
  uint64_t transfers_completed_ = 0;
};

}  // namespace micropnp

#endif  // SRC_PROTO_THING_H_
