// The μPnP Client (Section 5): discovers Things' peripherals and uses them.
//
// "The µPnP Client software may run on both embedded IoT devices and
// standard computing platforms.  It allows for remote discovery and
// interaction with µPnP Things."  The client joins the all-clients group to
// receive unsolicited advertisements, issues discovery (2), and performs
// read (10)/(11), stream (12)..(15) and write (16)/(17) operations.
//
// Every request/response transaction rides the shared ProtoEndpoint:
// sequence matching, deadlines, retransmission and exactly-once completion
// live there, not here.  The client keeps only the state that outlives a
// transaction (established stream subscriptions).

#ifndef SRC_PROTO_CLIENT_H_
#define SRC_PROTO_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/net/fabric.h"
#include "src/proto/endpoint.h"
#include "src/proto/messages.h"

namespace micropnp {

class MicroPnpClient {
 public:
  // `max_in_flight` bounds the endpoint's pending table; requests beyond it
  // fail fast with kResourceExhausted.
  MicroPnpClient(Scheduler& scheduler, NetNode* node, size_t max_in_flight = 64);

  // --- discovery --------------------------------------------------------------
  struct DiscoveredThing {
    Ip6Address address;
    std::vector<AdvertisedPeripheral> peripherals;
  };
  using DiscoveryCallback = std::function<void(Result<std::vector<DiscoveredThing>>)>;
  // Multicasts (2) to the group of Things carrying `device`, collects (3)
  // responses for `window_ms`, then invokes the callback exactly once: with
  // the Things found (possibly none), or with a non-OK Status (capacity,
  // cancellation) when the discovery never went on the wire.  Responses are
  // deduplicated by Thing address — a retransmitted (2) eliciting duplicate
  // (3)s surfaces each Thing once (first reply wins).
  void Discover(DeviceTypeId device, double window_ms, DiscoveryCallback callback);

  // Unsolicited advertisements ((1), pushed on plug/unplug) surface here.
  using AdvertisementListener =
      std::function<void(const Ip6Address& thing, const std::vector<AdvertisedPeripheral>&)>;
  void set_advertisement_listener(AdvertisementListener listener) {
    advertisement_listener_ = std::move(listener);
  }

  // --- remote operations (Section 5.3.1) ---------------------------------------
  // Every operation completes exactly once: with the value/ack, or with
  // kDeadlineExceeded / kCancelled / kResourceExhausted.

  using ReadCallback = std::function<void(Result<WireValue>)>;
  void Read(const Ip6Address& thing, DeviceTypeId device, ReadCallback callback,
            const RequestOptions& options);
  void Read(const Ip6Address& thing, DeviceTypeId device, ReadCallback callback,
            double timeout_ms = 2000.0) {
    Read(thing, device, std::move(callback), RequestOptions::WithDeadline(timeout_ms));
  }

  using WriteCallback = std::function<void(Status)>;
  void Write(const Ip6Address& thing, DeviceTypeId device, int32_t value, WriteCallback callback,
             const RequestOptions& options);
  void Write(const Ip6Address& thing, DeviceTypeId device, int32_t value, WriteCallback callback,
             double timeout_ms = 2000.0) {
    Write(thing, device, value, std::move(callback), RequestOptions::WithDeadline(timeout_ms));
  }

  using StreamCallback = std::function<void(const WireValue&)>;
  using StreamClosedCallback = std::function<void()>;
  // Subscribes to a value stream: sends (12), joins the group from (13), and
  // invokes `on_value` for every (14) until (15) closes the stream.  When
  // (13) never arrives within the deadline the subscription expires and
  // `on_closed` fires — a stream request cannot leak.
  void StartStream(const Ip6Address& thing, DeviceTypeId device, uint32_t period_ms,
                   StreamCallback on_value, StreamClosedCallback on_closed = nullptr,
                   const RequestOptions& options = RequestOptions{});
  // Requests stream shutdown ((12) with period 0, answered by (15) to the
  // group).  The local subscription is torn down exactly once — on the
  // (15), or at the deadline if it never arrives — so a lost datagram
  // cannot leak the subscription or the group membership.
  void StopStream(const Ip6Address& thing, DeviceTypeId device,
                  const RequestOptions& options = RequestOptions{});

  NetNode& node() { return *node_; }
  ProtoEndpoint& endpoint() { return endpoint_; }
  const ProtoEndpoint& endpoint() const { return endpoint_; }
  uint64_t advertisements_seen() const { return advertisements_seen_; }

 private:
  struct StreamSub {
    Ip6Address group;
    StreamCallback on_value;
    StreamClosedCallback on_closed;
  };
  // Subscriptions are keyed per (Thing, device): the stream group
  // PeripheralGroup(prefix, device) is shared by every Thing carrying that
  // device type, so (14)/(15) are demultiplexed by their unicast source.
  // This is what lets one client hold concurrent streams to many Things of
  // the same type (the model layer's fan-out upstream).
  using StreamKey = std::pair<Ip6Address, DeviceTypeId>;

  // Removes the subscription (if any), releases its group reference, and
  // fires on_closed.
  void CloseStream(const Ip6Address& thing, DeviceTypeId device);
  // Group membership is reference-counted across subscriptions because
  // NetNode::JoinGroup/LeaveGroup are set-based: two streams of the same
  // device type share one membership, dropped only with the last stream.
  void RefGroup(const Ip6Address& group);
  void UnrefGroup(const Ip6Address& group);
  void OnDatagram(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                  const std::vector<uint8_t>& payload);

  NetNode* node_;
  ProtoEndpoint endpoint_;
  std::map<StreamKey, StreamSub> streams_;  // established subscriptions
  std::map<Ip6Address, int> group_refs_;
  AdvertisementListener advertisement_listener_;
  uint64_t advertisements_seen_ = 0;
};

}  // namespace micropnp

#endif  // SRC_PROTO_CLIENT_H_
