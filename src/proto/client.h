// The μPnP Client (Section 5): discovers Things' peripherals and uses them.
//
// "The µPnP Client software may run on both embedded IoT devices and
// standard computing platforms.  It allows for remote discovery and
// interaction with µPnP Things."  The client joins the all-clients group to
// receive unsolicited advertisements, issues discovery (2), and performs
// read (10)/(11), stream (12)..(15) and write (16)/(17) operations with
// sequence-number matching and timeouts.

#ifndef SRC_PROTO_CLIENT_H_
#define SRC_PROTO_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/net/fabric.h"
#include "src/proto/messages.h"

namespace micropnp {

class MicroPnpClient {
 public:
  MicroPnpClient(Scheduler& scheduler, NetNode* node);

  // --- discovery --------------------------------------------------------------
  struct DiscoveredThing {
    Ip6Address address;
    std::vector<AdvertisedPeripheral> peripherals;
  };
  using DiscoveryCallback = std::function<void(std::vector<DiscoveredThing>)>;
  // Multicasts (2) to the group of Things carrying `device`, collects (3)
  // responses for `window_ms`, then invokes the callback once.
  void Discover(DeviceTypeId device, double window_ms, DiscoveryCallback callback);

  // Unsolicited advertisements ((1), pushed on plug/unplug) surface here.
  using AdvertisementListener =
      std::function<void(const Ip6Address& thing, const std::vector<AdvertisedPeripheral>&)>;
  void set_advertisement_listener(AdvertisementListener listener) {
    advertisement_listener_ = std::move(listener);
  }

  // --- remote operations (Section 5.3.1) ---------------------------------------
  using ReadCallback = std::function<void(Result<WireValue>)>;
  void Read(const Ip6Address& thing, DeviceTypeId device, ReadCallback callback,
            double timeout_ms = 2000.0);

  using WriteCallback = std::function<void(Status)>;
  void Write(const Ip6Address& thing, DeviceTypeId device, int32_t value, WriteCallback callback,
             double timeout_ms = 2000.0);

  using StreamCallback = std::function<void(const WireValue&)>;
  using StreamClosedCallback = std::function<void()>;
  // Subscribes to a value stream: sends (12), joins the group from (13), and
  // invokes `on_value` for every (14) until (15) closes the stream.
  void StartStream(const Ip6Address& thing, DeviceTypeId device, uint32_t period_ms,
                   StreamCallback on_value, StreamClosedCallback on_closed = nullptr);
  void StopStream(const Ip6Address& thing, DeviceTypeId device);

  NetNode& node() { return *node_; }
  uint64_t advertisements_seen() const { return advertisements_seen_; }

 private:
  struct PendingDiscovery {
    std::vector<DiscoveredThing> results;
    DiscoveryCallback callback;
  };
  struct PendingRead {
    ReadCallback callback;
    Scheduler::EventId timeout;
  };
  struct PendingWrite {
    WriteCallback callback;
    Scheduler::EventId timeout;
  };
  struct StreamSub {
    DeviceTypeId device = 0;
    Ip6Address group;
    bool joined = false;
    StreamCallback on_value;
    StreamClosedCallback on_closed;
  };

  void OnDatagram(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                  const std::vector<uint8_t>& payload);

  Scheduler& scheduler_;
  NetNode* node_;
  SequenceNumber sequence_ = 1;
  std::map<SequenceNumber, PendingDiscovery> discoveries_;
  std::map<SequenceNumber, PendingRead> reads_;
  std::map<SequenceNumber, PendingWrite> writes_;
  std::map<SequenceNumber, StreamSub> stream_requests_;  // awaiting (13)
  std::map<DeviceTypeId, StreamSub> streams_;            // established
  AdvertisementListener advertisement_listener_;
  uint64_t advertisements_seen_ = 0;
};

}  // namespace micropnp

#endif  // SRC_PROTO_CLIENT_H_
