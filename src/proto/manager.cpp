#include "src/proto/manager.h"

#include <algorithm>

#include "src/common/crc.h"
#include "src/common/logging.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"

namespace micropnp {

MicroPnpManager::MicroPnpManager(Scheduler& scheduler, NetNode* node)
    : scheduler_(scheduler), node_(node), endpoint_(scheduler, node) {
  node_->BindAnycast(ManagerAnycastAddress());
  node_->BindUdp(kMicroPnpUdpPort,
                 [this](const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                        const std::vector<uint8_t>& payload) { OnDatagram(src, dst, port, payload); });
}

Status MicroPnpManager::AddDriver(const DriverImage& image) {
  if (image.device_id == kDeviceTypeAllPeripherals || image.device_id == kDeviceTypeAllClients) {
    return InvalidArgument("reserved device type id");
  }
  repository_[image.device_id] = image;
  prepared_.erase(image.device_id);  // geometry/CRC must match the new image
  return OkStatus();
}

Status MicroPnpManager::AddDriverSource(const std::string& dsl_source) {
  Result<DriverImage> image = CompileDriver(dsl_source);
  if (!image.ok()) {
    return image.status();
  }
  return AddDriver(*image);
}

Status MicroPnpManager::PreloadBundledDrivers() {
  for (const BundledDriver& d : BundledDrivers()) {
    MICROPNP_RETURN_IF_ERROR(AddDriverSource(d.source));
  }
  return OkStatus();
}

void MicroPnpManager::DiscoverDrivers(const Ip6Address& thing, DriverListCallback callback,
                                      const RequestOptions& options) {
  endpoint_.SendRequest(
      thing, MessageType::kDriverDiscovery, DeviceTargetPayload{kDeviceTypeAllPeripherals},
      {MessageType::kDriverAdvertisement},
      [callback = std::move(callback)](Result<Message> reply) {
        if (!callback) {
          return;
        }
        if (!reply.ok()) {
          callback(reply.status());
          return;
        }
        const auto* ad = reply->payload_as<DriverAdvertisementPayload>();
        callback(ad != nullptr
                     ? Result<std::vector<DeviceTypeId>>(ad->driver_ids)
                     : Result<std::vector<DeviceTypeId>>(
                           CorruptError("malformed driver advertisement")));
      },
      options);
}

void MicroPnpManager::RemoveDriver(const Ip6Address& thing, DeviceTypeId id, AckCallback callback,
                                   const RequestOptions& options) {
  endpoint_.SendRequest(
      thing, MessageType::kDriverRemovalRequest, DeviceTargetPayload{id},
      {MessageType::kDriverRemovalAck},
      [callback = std::move(callback)](Result<Message> reply) {
        if (!callback) {
          return;
        }
        if (!reply.ok()) {
          callback(reply.status());
          return;
        }
        const auto* ack = reply->payload_as<StatusAckPayload>();
        if (ack == nullptr) {
          callback(CorruptError("malformed removal ack"));
          return;
        }
        callback(ack->status == 0 ? OkStatus() : InternalError("removal refused"));
      },
      options);
}

void MicroPnpManager::OnDatagram(const Ip6Address& src, const Ip6Address& /*dst*/,
                                 uint16_t /*port*/, const std::vector<uint8_t>& payload) {
  Result<Message> parsed = Message::Parse(ByteSpan(payload.data(), payload.size()));
  if (!parsed.ok()) {
    MLOG(kDebug, "manager") << "dropping malformed datagram from " << src.ToString();
    return;
  }
  const Message& m = *parsed;
  if (endpoint_.HandleReply(src, m)) {
    return;
  }
  switch (m.type) {
    case MessageType::kDriverInstallRequest:
      HandleInstallRequest(src, m);
      break;
    case MessageType::kDriverChunkRequest:
      HandleChunkRequest(src, m);
      break;
    default:
      break;  // not addressed to managers
  }
}

void MicroPnpManager::HandleInstallRequest(const Ip6Address& src, const Message& m) {
  const auto* request = m.payload_as<DriverRequestPayload>();
  // A retransmitted copy of a (4) already answered (its (18) offer was lost
  // or is still in flight): re-serve the cached offer bytes, don't recount
  // and don't replay the chunk stream — once the Thing holds the offer, its
  // selective-repeat NACK pulls exactly the chunks that were lost.  The
  // device check keeps a peer whose sequence counter restarted from being
  // handed a stale entry for a different device.
  for (const ServedOffer& served : recent_offers_) {
    if (served.thing == src && served.sequence == m.sequence &&
        served.device == request->device_id) {
      ++upload_retransmissions_;
      SendWireAfter(lookup_cpu_ms_, src, served.offer_wire);
      return;
    }
  }
  const PreparedImage* img = Prepare(request->device_id);
  if (img == nullptr) {
    MLOG(kWarning, "manager") << "no driver in repository for "
                              << FormatDeviceTypeId(request->device_id);
    return;
  }
  // Which chunks the Thing still needs.  The bitmap is only honoured when
  // the request's CRC and geometry match the repository's current image —
  // a partial transfer of a since-replaced image restarts from scratch.
  std::vector<uint16_t> missing;
  const bool resume =
      request->cached_crc == img->crc && request->cached_chunk_count == img->chunk_count;
  if (resume) {
    for (uint16_t i = 0; i < img->chunk_count; ++i) {
      const size_t byte = i / 8u;
      const bool have = byte < request->have_bitmap.size() &&
                        ((request->have_bitmap[byte] >> (i % 8u)) & 1u) != 0;
      if (!have) {
        missing.push_back(i);
      }
    }
  } else {
    missing.resize(img->chunk_count);
    for (uint16_t i = 0; i < img->chunk_count; ++i) {
      missing[i] = i;
    }
  }
  // (18) upload offer, echoing the request's sequence so the Thing's
  // endpoint can match it.
  DriverOfferPayload offer;
  offer.device_id = request->device_id;
  offer.image_crc = img->crc;
  offer.total_size = static_cast<uint32_t>(img->bytes.size());
  offer.chunk_size = img->chunk_size;
  offer.chunk_count = img->chunk_count;
  if (resume && missing.empty()) {
    offer.flags = kDriverOfferUpToDate;  // re-plug with a complete cache: zero chunks
    ++upload_short_circuits_;
  } else if (resume) {
    ++resumed_uploads_;
  }
  std::vector<uint8_t> offer_wire =
      MakeMessage(MessageType::kDriverUploadOffer, m.sequence, offer).Serialize();
  recent_offers_.push_back(ServedOffer{src, m.sequence, request->device_id, offer_wire});
  if (recent_offers_.size() > 64) {
    recent_offers_.pop_front();
  }
  ++uploads_;
  SendWireAfter(lookup_cpu_ms_, src, std::move(offer_wire));
  double at_ms = lookup_cpu_ms_;
  for (uint16_t index : missing) {
    at_ms += chunk_interval_ms_;
    ++chunks_sent_;
    SendWireAfter(at_ms, src, ChunkWire(request->device_id, *img, index));
  }
}

void MicroPnpManager::HandleChunkRequest(const Ip6Address& src, const Message& m) {
  const auto* request = m.payload_as<DriverChunkRequestPayload>();
  const PreparedImage* img = Prepare(request->device_id);
  if (img == nullptr || img->crc != request->image_crc) {
    // Stale NACK for an image no longer (or never) served; the Thing's own
    // (4) retry machinery restarts the transfer against the current image.
    MLOG(kDebug, "manager") << "ignoring stale chunk request for "
                            << FormatDeviceTypeId(request->device_id);
    return;
  }
  double at_ms = 0.0;
  for (uint16_t index : request->chunk_indices) {
    if (index >= img->chunk_count) {
      continue;
    }
    at_ms += chunk_interval_ms_;
    ++chunks_sent_;
    ++chunk_retransmissions_;
    SendWireAfter(at_ms, src, ChunkWire(request->device_id, *img, index));
  }
}

const MicroPnpManager::PreparedImage* MicroPnpManager::Prepare(DeviceTypeId id) {
  auto cached = prepared_.find(id);
  if (cached != prepared_.end()) {
    return &cached->second;
  }
  auto repo = repository_.find(id);
  if (repo == repository_.end()) {
    return nullptr;
  }
  PreparedImage img;
  img.bytes = repo->second.Serialize();
  img.crc = Crc32(ByteSpan(img.bytes.data(), img.bytes.size()));
  img.chunk_size = chunk_payload_bytes_;
  img.chunk_count =
      static_cast<uint16_t>((img.bytes.size() + img.chunk_size - 1) / img.chunk_size);
  return &(prepared_[id] = std::move(img));
}

std::vector<uint8_t> MicroPnpManager::ChunkWire(DeviceTypeId id, const PreparedImage& img,
                                                uint16_t index) const {
  const size_t begin = static_cast<size_t>(index) * img.chunk_size;
  const size_t len = std::min<size_t>(img.chunk_size, img.bytes.size() - begin);
  DriverChunkPayload chunk;
  chunk.device_id = id;
  chunk.image_crc = img.crc;
  chunk.chunk_index = index;
  chunk.chunk_count = img.chunk_count;
  chunk.data.assign(img.bytes.begin() + static_cast<std::ptrdiff_t>(begin),
                    img.bytes.begin() + static_cast<std::ptrdiff_t>(begin + len));
  // Chunks are notifications outside any endpoint transaction; sequence 0.
  return MakeMessage(MessageType::kDriverChunk, 0, std::move(chunk)).Serialize();
}

void MicroPnpManager::SendWireAfter(double delay_ms, const Ip6Address& thing,
                                    std::vector<uint8_t> wire) {
  scheduler_.ScheduleAfter(SimTime::FromMillis(delay_ms),
                           [this, thing, wire = std::move(wire)] {
                             node_->SendUdp(thing, kMicroPnpUdpPort, wire);
                           });
}

}  // namespace micropnp
