#include "src/proto/manager.h"

#include "src/common/logging.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"

namespace micropnp {

MicroPnpManager::MicroPnpManager(Scheduler& scheduler, NetNode* node)
    : scheduler_(scheduler), node_(node), endpoint_(scheduler, node) {
  node_->BindAnycast(ManagerAnycastAddress());
  node_->BindUdp(kMicroPnpUdpPort,
                 [this](const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                        const std::vector<uint8_t>& payload) { OnDatagram(src, dst, port, payload); });
}

Status MicroPnpManager::AddDriver(const DriverImage& image) {
  if (image.device_id == kDeviceTypeAllPeripherals || image.device_id == kDeviceTypeAllClients) {
    return InvalidArgument("reserved device type id");
  }
  repository_[image.device_id] = image;
  return OkStatus();
}

Status MicroPnpManager::AddDriverSource(const std::string& dsl_source) {
  Result<DriverImage> image = CompileDriver(dsl_source);
  if (!image.ok()) {
    return image.status();
  }
  return AddDriver(*image);
}

Status MicroPnpManager::PreloadBundledDrivers() {
  for (const BundledDriver& d : BundledDrivers()) {
    MICROPNP_RETURN_IF_ERROR(AddDriverSource(d.source));
  }
  return OkStatus();
}

void MicroPnpManager::DiscoverDrivers(const Ip6Address& thing, DriverListCallback callback,
                                      const RequestOptions& options) {
  endpoint_.SendRequest(
      thing, MessageType::kDriverDiscovery, DeviceTargetPayload{kDeviceTypeAllPeripherals},
      {MessageType::kDriverAdvertisement},
      [callback = std::move(callback)](Result<Message> reply) {
        if (!callback) {
          return;
        }
        if (!reply.ok()) {
          callback(reply.status());
          return;
        }
        const auto* ad = reply->payload_as<DriverAdvertisementPayload>();
        callback(ad != nullptr
                     ? Result<std::vector<DeviceTypeId>>(ad->driver_ids)
                     : Result<std::vector<DeviceTypeId>>(
                           CorruptError("malformed driver advertisement")));
      },
      options);
}

void MicroPnpManager::RemoveDriver(const Ip6Address& thing, DeviceTypeId id, AckCallback callback,
                                   const RequestOptions& options) {
  endpoint_.SendRequest(
      thing, MessageType::kDriverRemovalRequest, DeviceTargetPayload{id},
      {MessageType::kDriverRemovalAck},
      [callback = std::move(callback)](Result<Message> reply) {
        if (!callback) {
          return;
        }
        if (!reply.ok()) {
          callback(reply.status());
          return;
        }
        const auto* ack = reply->payload_as<StatusAckPayload>();
        if (ack == nullptr) {
          callback(CorruptError("malformed removal ack"));
          return;
        }
        callback(ack->status == 0 ? OkStatus() : InternalError("removal refused"));
      },
      options);
}

void MicroPnpManager::OnDatagram(const Ip6Address& src, const Ip6Address& /*dst*/,
                                 uint16_t /*port*/, const std::vector<uint8_t>& payload) {
  Result<Message> parsed = Message::Parse(ByteSpan(payload.data(), payload.size()));
  if (!parsed.ok()) {
    MLOG(kDebug, "manager") << "dropping malformed datagram from " << src.ToString();
    return;
  }
  const Message& m = *parsed;
  if (endpoint_.HandleReply(src, m)) {
    return;
  }
  if (m.type != MessageType::kDriverInstallRequest) {
    return;
  }
  const auto* request = m.payload_as<DeviceTargetPayload>();
  // A retransmitted copy of a (4) already answered (its (5) was lost or is
  // still in flight): re-serve the cached bytes, don't recount.  The device
  // check keeps a peer whose sequence counter restarted from being handed a
  // stale entry for a different device.
  for (const ServedUpload& served : recent_uploads_) {
    if (served.thing == src && served.sequence == m.sequence &&
        served.device == request->device_id) {
      ++upload_retransmissions_;
      SendUploadAfterLookup(src, served.wire);
      return;
    }
  }
  auto it = repository_.find(request->device_id);
  if (it == repository_.end()) {
    MLOG(kWarning, "manager") << "no driver in repository for "
                              << FormatDeviceTypeId(request->device_id);
    return;
  }
  // (5) driver upload, echoing the request's sequence so the Thing's
  // endpoint can match it.
  Message upload = MakeMessage(MessageType::kDriverUpload, m.sequence,
                               DriverUploadPayload{request->device_id, it->second.Serialize()});
  std::vector<uint8_t> wire = upload.Serialize();
  recent_uploads_.push_back(ServedUpload{src, m.sequence, request->device_id, wire});
  if (recent_uploads_.size() > 64) {
    recent_uploads_.pop_front();
  }
  ++uploads_;
  SendUploadAfterLookup(src, std::move(wire));
}

void MicroPnpManager::SendUploadAfterLookup(const Ip6Address& thing, std::vector<uint8_t> wire) {
  scheduler_.ScheduleAfter(SimTime::FromMillis(lookup_cpu_ms_),
                           [this, thing, wire = std::move(wire)] {
                             node_->SendUdp(thing, kMicroPnpUdpPort, wire);
                           });
}

}  // namespace micropnp
