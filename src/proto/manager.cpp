#include "src/proto/manager.h"

#include "src/common/logging.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"

namespace micropnp {

MicroPnpManager::MicroPnpManager(Scheduler& scheduler, NetNode* node)
    : scheduler_(scheduler), node_(node) {
  node_->BindAnycast(ManagerAnycastAddress());
  node_->BindUdp(kMicroPnpUdpPort,
                 [this](const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                        const std::vector<uint8_t>& payload) { OnDatagram(src, dst, port, payload); });
}

Status MicroPnpManager::AddDriver(const DriverImage& image) {
  if (image.device_id == kDeviceTypeAllPeripherals || image.device_id == kDeviceTypeAllClients) {
    return InvalidArgument("reserved device type id");
  }
  repository_[image.device_id] = image;
  return OkStatus();
}

Status MicroPnpManager::AddDriverSource(const std::string& dsl_source) {
  Result<DriverImage> image = CompileDriver(dsl_source);
  if (!image.ok()) {
    return image.status();
  }
  return AddDriver(*image);
}

Status MicroPnpManager::PreloadBundledDrivers() {
  for (const BundledDriver& d : BundledDrivers()) {
    MICROPNP_RETURN_IF_ERROR(AddDriverSource(d.source));
  }
  return OkStatus();
}

void MicroPnpManager::DiscoverDrivers(const Ip6Address& thing, DriverListCallback callback) {
  const SequenceNumber seq = sequence_++;
  pending_discoveries_[seq] = std::move(callback);
  Message m = MakeDeviceMessage(MessageType::kDriverDiscovery, seq, kDeviceTypeAllPeripherals);
  node_->SendUdp(thing, kMicroPnpUdpPort, m.Serialize());
}

void MicroPnpManager::RemoveDriver(const Ip6Address& thing, DeviceTypeId id,
                                   AckCallback callback) {
  const SequenceNumber seq = sequence_++;
  pending_removals_[seq] = std::move(callback);
  Message m = MakeDeviceMessage(MessageType::kDriverRemovalRequest, seq, id);
  node_->SendUdp(thing, kMicroPnpUdpPort, m.Serialize());
}

void MicroPnpManager::OnDatagram(const Ip6Address& src, const Ip6Address& /*dst*/,
                                 uint16_t /*port*/, const std::vector<uint8_t>& payload) {
  Result<Message> parsed = Message::Parse(ByteSpan(payload.data(), payload.size()));
  if (!parsed.ok()) {
    return;
  }
  const Message& m = *parsed;
  switch (m.type) {
    case MessageType::kDriverInstallRequest: {
      auto it = repository_.find(m.device_id);
      if (it == repository_.end()) {
        MLOG(kWarning, "manager") << "no driver in repository for "
                                  << FormatDeviceTypeId(m.device_id);
        return;
      }
      // (5) driver upload after the repository lookup.
      Message upload = MakeDeviceMessage(MessageType::kDriverUpload, m.sequence, m.device_id);
      upload.driver_image = it->second.Serialize();
      scheduler_.ScheduleAfter(SimTime::FromMillis(lookup_cpu_ms_), [this, src, upload] {
        node_->SendUdp(src, kMicroPnpUdpPort, upload.Serialize());
        ++uploads_;
      });
      return;
    }
    case MessageType::kDriverAdvertisement: {
      auto it = pending_discoveries_.find(m.sequence);
      if (it != pending_discoveries_.end()) {
        DriverListCallback callback = std::move(it->second);
        pending_discoveries_.erase(it);
        callback(m.driver_ids);
      }
      return;
    }
    case MessageType::kDriverRemovalAck: {
      auto it = pending_removals_.find(m.sequence);
      if (it != pending_removals_.end()) {
        AckCallback callback = std::move(it->second);
        pending_removals_.erase(it);
        callback(m.status == 0 ? OkStatus() : InternalError("removal refused"));
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace micropnp
