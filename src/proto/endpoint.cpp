#include "src/proto/endpoint.h"

#include <algorithm>

#include "src/common/logging.h"

namespace micropnp {

namespace {

// Pure reply types: these only ever exist as the answer to a request, so an
// unmatched one is by definition stale (late, duplicated, or addressed to a
// transaction that already completed).  Notification types (advertisements,
// stream data/closed) are legitimately unsolicited and are not counted.
bool IsPureReplyType(MessageType type) {
  switch (type) {
    case MessageType::kSolicitedAdvertisement:
    case MessageType::kDriverUpload:
    case MessageType::kDriverAdvertisement:
    case MessageType::kDriverRemovalAck:
    case MessageType::kData:
    case MessageType::kStreamEstablished:
    case MessageType::kWriteAck:
      return true;
    default:
      return false;
  }
}

bool Accepts(const std::vector<MessageType>& accepted, MessageType type) {
  return std::find(accepted.begin(), accepted.end(), type) != accepted.end();
}

// All any-source transactions (anycast requests, multicast gathers) draw
// sequences from one shared counter keyed by the unspecified address, so no
// two of them are ever pending with the same sequence.
const Ip6Address& AnySourceKey() {
  static const Ip6Address kKey{};
  return kKey;
}

}  // namespace

ProtoEndpoint::ProtoEndpoint(Scheduler& scheduler, NetNode* node, size_t max_in_flight)
    : scheduler_(scheduler), node_(node), max_in_flight_(max_in_flight) {}

ProtoEndpoint::~ProtoEndpoint() {
  // Drop pending transactions without invoking handlers: during teardown the
  // captured state may already be gone.  Live-session cancellation (which
  // does complete handlers) is CancelAll().
  for (auto& [id, entry] : pending_) {
    scheduler_.Cancel(entry.timer);
  }
  for (auto& [id, gather] : gathers_) {
    scheduler_.Cancel(gather.timer);
  }
}

SequenceNumber ProtoEndpoint::AllocateSequence(const Ip6Address& peer) {
  // The pending table is bounded far below 65536 entries, so a free
  // sequence always exists; skipping pending ones guarantees a wrapped
  // counter can never alias a transaction still in flight toward this peer.
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const SequenceNumber seq = next_sequence_++;
    if (by_key_.find({peer, seq}) == by_key_.end()) {
      return seq;
    }
  }
  return next_sequence_++;
}

ProtoEndpoint::RequestId ProtoEndpoint::SendRequest(const Ip6Address& peer, MessageType type,
                                                    MessagePayload payload,
                                                    std::vector<MessageType> accepted_replies,
                                                    ResponseHandler handler,
                                                    const RequestOptions& options) {
  if (in_flight() >= max_in_flight_) {
    ++counters_.rejected_capacity;
    if (handler) {
      handler(ResourceExhausted("endpoint pending table full"));
    }
    return kInvalidRequest;
  }
  const Ip6Address& key_peer = options.match_any_source ? AnySourceKey() : peer;
  const SequenceNumber seq = AllocateSequence(key_peer);
  const RequestId id = next_request_id_++;

  PendingRequest entry;
  entry.peer = peer;
  entry.sequence = seq;
  entry.accepted_replies = std::move(accepted_replies);
  entry.handler = std::move(handler);
  entry.wire = MakeMessage(type, seq, std::move(payload)).Serialize();
  entry.options = options;
  entry.deadline = scheduler_.now() + SimTime::FromMillis(options.deadline_ms);
  entry.next_backoff_ms = options.initial_backoff_ms;
  entry.retransmits_left = options.max_retransmits;

  node_->SendUdp(peer, kMicroPnpUdpPort, entry.wire);
  ++counters_.requests_started;

  by_key_[{key_peer, seq}] = id;
  pending_[id] = std::move(entry);
  ArmTimer(id);
  return id;
}

SequenceNumber ProtoEndpoint::SendOneWay(const Ip6Address& peer, MessageType type,
                                         MessagePayload payload) {
  const SequenceNumber seq = AllocateSequence(peer);
  node_->SendUdp(peer, kMicroPnpUdpPort, MakeMessage(type, seq, std::move(payload)).Serialize());
  return seq;
}

ProtoEndpoint::RequestId ProtoEndpoint::SendGather(const Ip6Address& group, MessageType type,
                                                   MessagePayload payload,
                                                   std::vector<MessageType> accepted_replies,
                                                   double window_ms, GatherHandler handler) {
  if (in_flight() >= max_in_flight_) {
    ++counters_.rejected_capacity;
    if (handler) {
      handler(ResourceExhausted("endpoint pending table full"));
    }
    return kInvalidRequest;
  }
  const SequenceNumber seq = AllocateSequence(AnySourceKey());
  const RequestId id = next_request_id_++;

  PendingGather gather;
  gather.group = group;
  gather.sequence = seq;
  gather.accepted_replies = std::move(accepted_replies);
  gather.handler = std::move(handler);

  node_->SendUdp(group, kMicroPnpUdpPort, MakeMessage(type, seq, std::move(payload)).Serialize());
  ++counters_.requests_started;

  by_key_[{AnySourceKey(), seq}] = id;
  gather.timer = scheduler_.ScheduleAfter(SimTime::FromMillis(window_ms), [this, id] {
    auto it = gathers_.find(id);
    if (it == gathers_.end()) {
      return;
    }
    PendingGather done = std::move(it->second);
    by_key_.erase({AnySourceKey(), done.sequence});
    gathers_.erase(it);
    ++counters_.completed_ok;
    if (done.handler) {
      done.handler(std::move(done.replies));
    }
  });
  gathers_[id] = std::move(gather);
  return id;
}

void ProtoEndpoint::ArmTimer(RequestId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  PendingRequest& entry = it->second;
  SimTime next = entry.deadline;
  if (entry.retransmits_left > 0) {
    const SimTime retransmit_at = scheduler_.now() + SimTime::FromMillis(entry.next_backoff_ms);
    if (retransmit_at < next) {
      next = retransmit_at;
    }
  }
  entry.timer = scheduler_.ScheduleAt(next, [this, id] { OnTimer(id); });
}

void ProtoEndpoint::OnTimer(RequestId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  PendingRequest& entry = it->second;
  if (scheduler_.now() >= entry.deadline) {
    Complete(id, DeadlineExceeded(std::string("no reply from peer for ") +
                                  MessageTypeName(static_cast<MessageType>(entry.wire[0]))));
    return;
  }
  // Retransmit the stored wire bytes and back off.
  node_->SendUdp(entry.peer, kMicroPnpUdpPort, entry.wire);
  ++counters_.retransmits;
  --entry.retransmits_left;
  entry.next_backoff_ms *= entry.options.backoff_multiplier;
  ArmTimer(id);
}

void ProtoEndpoint::Complete(RequestId id, Result<Message> result) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  PendingRequest entry = std::move(it->second);
  scheduler_.Cancel(entry.timer);
  const Ip6Address& key_peer = entry.options.match_any_source ? AnySourceKey() : entry.peer;
  by_key_.erase({key_peer, entry.sequence});
  pending_.erase(it);

  if (result.ok()) {
    ++counters_.completed_ok;
  } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
    ++counters_.deadline_exceeded;
  } else if (result.status().code() == StatusCode::kCancelled) {
    ++counters_.cancelled;
  }
  if (entry.handler) {
    entry.handler(std::move(result));
  }
}

bool ProtoEndpoint::Cancel(RequestId id) {
  if (pending_.count(id) != 0) {
    Complete(id, CancelledError("request cancelled"));
    return true;
  }
  auto g = gathers_.find(id);
  if (g != gathers_.end()) {
    PendingGather done = std::move(g->second);
    scheduler_.Cancel(done.timer);
    by_key_.erase({AnySourceKey(), done.sequence});
    gathers_.erase(g);
    ++counters_.cancelled;
    if (done.handler) {
      done.handler(CancelledError("gather cancelled"));
    }
    return true;
  }
  return false;
}

void ProtoEndpoint::CancelAll() {
  // Snapshot first: a handler reacting to kCancelled may submit new
  // requests, which must survive this sweep (and must not loop it forever).
  std::vector<RequestId> ids;
  ids.reserve(in_flight());
  for (const auto& [id, entry] : pending_) {
    ids.push_back(id);
  }
  for (const auto& [id, gather] : gathers_) {
    ids.push_back(id);
  }
  for (RequestId id : ids) {
    Cancel(id);
  }
}

bool ProtoEndpoint::HandleReply(const Ip6Address& src, const Message& message) {
  auto request_accepts = [&](const PendingRequest& entry) {
    return Accepts(entry.accepted_replies, message.type) &&
           (!entry.options.accept || entry.options.accept(message));
  };
  // Exact (peer, sequence) match for unicast transactions.
  auto key = by_key_.find({src, message.sequence});
  if (key != by_key_.end()) {
    auto it = pending_.find(key->second);
    if (it != pending_.end() && request_accepts(it->second)) {
      ++counters_.replies_matched;
      Complete(key->second, message);
      return true;
    }
  }
  // Any-source transactions (anycast requests, multicast gathers) are all
  // indexed under the shared sentinel key.
  auto any = by_key_.find({AnySourceKey(), message.sequence});
  if (any != by_key_.end()) {
    auto it = pending_.find(any->second);
    if (it != pending_.end() && request_accepts(it->second)) {
      ++counters_.replies_matched;
      Complete(any->second, message);
      return true;
    }
    auto g = gathers_.find(any->second);
    if (g != gathers_.end() && Accepts(g->second.accepted_replies, message.type)) {
      ++counters_.replies_matched;
      g->second.replies.emplace_back(src, message);
      return true;
    }
  }
  if (IsPureReplyType(message.type)) {
    ++counters_.stale_replies_dropped;
    MLOG(kDebug, "endpoint") << "dropping stale " << MessageTypeName(message.type) << " seq "
                             << message.sequence << " from " << src.ToString();
  }
  return false;
}

}  // namespace micropnp
