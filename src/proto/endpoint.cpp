#include "src/proto/endpoint.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace micropnp {

namespace {

// Pure reply types: these only ever exist as the answer to a request, so an
// unmatched one is by definition stale (late, duplicated, or addressed to a
// transaction that already completed).  Notification types (advertisements,
// stream data/closed) are legitimately unsolicited and are not counted.
bool IsPureReplyType(MessageType type) {
  switch (type) {
    case MessageType::kSolicitedAdvertisement:
    case MessageType::kDriverUpload:
    case MessageType::kDriverUploadOffer:
    case MessageType::kDriverAdvertisement:
    case MessageType::kDriverRemovalAck:
    case MessageType::kData:
    case MessageType::kStreamEstablished:
    case MessageType::kWriteAck:
      return true;
    default:
      return false;
  }
}

bool Accepts(const std::vector<MessageType>& accepted, MessageType type) {
  return std::find(accepted.begin(), accepted.end(), type) != accepted.end();
}

// All any-source transactions (anycast requests, multicast gathers) draw
// sequences from one shared counter keyed by the unspecified address, so no
// two of them are ever pending with the same sequence.
const Ip6Address& AnySourceKey() {
  static const Ip6Address kKey{};
  return kKey;
}

}  // namespace

ProtoEndpoint::ProtoEndpoint(Scheduler& scheduler, NetNode* node, size_t max_in_flight)
    : scheduler_(scheduler),
      node_(node),
      max_in_flight_(max_in_flight),
      by_key_(max_in_flight) {}

ProtoEndpoint::~ProtoEndpoint() {
  // Drop pending transactions without invoking handlers: during teardown the
  // captured state may already be gone.  Live-session cancellation (which
  // does complete handlers) is CancelAll().
  for (PendingRequest& entry : slots_) {
    if (entry.active) {
      scheduler_.Cancel(entry.timer);
    }
  }
  for (auto& [id, gather] : gathers_) {
    scheduler_.Cancel(gather.timer);
  }
}

SequenceNumber ProtoEndpoint::AllocateSequence(const Ip6Address& peer) {
  // The pending table is bounded far below 65536 entries, so a free
  // sequence always exists; skipping pending ones guarantees a wrapped
  // counter can never alias a transaction still in flight toward this peer.
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const SequenceNumber seq = next_sequence_++;
    if (!by_key_.Contains(peer, seq)) {
      return seq;
    }
  }
  return next_sequence_++;
}

ProtoEndpoint::PendingRequest* ProtoEndpoint::Resolve(RequestId id) {
  if (id == kInvalidRequest || (id & kGatherTag) != 0) {
    return nullptr;
  }
  const uint64_t slot = (id & 0xffffffffull) - 1;
  if (slot >= slots_.size()) {
    return nullptr;
  }
  PendingRequest& entry = slots_[slot];
  if (!entry.active || entry.generation != static_cast<uint32_t>(id >> 32)) {
    return nullptr;
  }
  return &entry;
}

ProtoEndpoint::RequestId ProtoEndpoint::ClaimSlot() {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_.back().generation = 1;
  }
  PendingRequest& entry = slots_[slot];
  entry.active = true;
  ++active_requests_;
  return (uint64_t{entry.generation} << 32) | (slot + 1);
}

void ProtoEndpoint::ReleaseSlot(RequestId id, PendingRequest& entry) {
  entry.active = false;
  ++entry.generation;
  entry.accepted_replies.clear();
  entry.handler = nullptr;
  entry.wire.clear();  // capacity kept for the slot's next occupant
  entry.options = RequestOptions{};
  entry.timer = 0;
  --active_requests_;
  free_slots_.push_back(static_cast<uint32_t>((id & 0xffffffffull) - 1));
}

void ProtoEndpoint::NoteInFlight() {
  counters_.peak_in_flight = std::max<uint64_t>(counters_.peak_in_flight, in_flight());
}

ProtoEndpoint::RequestId ProtoEndpoint::SendRequest(const Ip6Address& peer, MessageType type,
                                                    MessagePayload payload,
                                                    std::vector<MessageType> accepted_replies,
                                                    ResponseHandler handler,
                                                    const RequestOptions& options) {
  if (in_flight() >= max_in_flight_) {
    ++counters_.rejected_capacity;
    if (handler) {
      handler(ResourceExhausted("endpoint pending table full"));
    }
    return kInvalidRequest;
  }
  const Ip6Address& key_peer = options.match_any_source ? AnySourceKey() : peer;
  const SequenceNumber seq = AllocateSequence(key_peer);
  const RequestId id = ClaimSlot();

  PendingRequest& entry = *Resolve(id);
  entry.peer = peer;
  entry.sequence = seq;
  entry.accepted_replies = std::move(accepted_replies);
  entry.handler = std::move(handler);
  MakeMessage(type, seq, std::move(payload)).SerializeInto(entry.wire);
  entry.options = options;
  entry.deadline = scheduler_.now() + SimTime::FromMillis(options.deadline_ms);
  entry.next_backoff_ms = options.initial_backoff_ms;
  entry.retransmits_left = options.max_retransmits;

  if (!by_key_.Insert(key_peer, seq, id)) {
    // AllocateSequence just verified (key_peer, seq) is free and the index
    // is sized for max_in_flight_, so this should be unreachable — but an
    // unindexed request can never match a reply, so fail it loudly now
    // rather than let it silently burn its whole retransmit/deadline budget.
    assert(false && "pending index rejected a freshly allocated key");
    MLOG(kError, "endpoint") << "pending index rejected seq " << seq
                             << "; failing request instead of leaving it unmatchable";
    ResponseHandler failed_handler = std::move(entry.handler);
    ReleaseSlot(id, entry);
    ++counters_.rejected_capacity;
    if (failed_handler) {
      failed_handler(InternalError("pending index insert failed"));
    }
    return kInvalidRequest;
  }

  node_->SendUdp(peer, kMicroPnpUdpPort, entry.wire);
  ++counters_.requests_started;
  NoteInFlight();
  ArmTimer(id);
  return id;
}

SequenceNumber ProtoEndpoint::SendOneWay(const Ip6Address& peer, MessageType type,
                                         MessagePayload payload) {
  const SequenceNumber seq = AllocateSequence(peer);
  node_->SendUdp(peer, kMicroPnpUdpPort, MakeMessage(type, seq, std::move(payload)).Serialize());
  return seq;
}

ProtoEndpoint::RequestId ProtoEndpoint::SendGather(const Ip6Address& group, MessageType type,
                                                   MessagePayload payload,
                                                   std::vector<MessageType> accepted_replies,
                                                   double window_ms, GatherHandler handler) {
  if (in_flight() >= max_in_flight_) {
    ++counters_.rejected_capacity;
    if (handler) {
      handler(ResourceExhausted("endpoint pending table full"));
    }
    return kInvalidRequest;
  }
  const SequenceNumber seq = AllocateSequence(AnySourceKey());
  const RequestId id = kGatherTag | next_gather_id_++;

  PendingGather gather;
  gather.group = group;
  gather.sequence = seq;
  gather.accepted_replies = std::move(accepted_replies);
  gather.handler = std::move(handler);

  if (!by_key_.Insert(AnySourceKey(), seq, id)) {
    // Same invariant as SendRequest: the sequence was just checked free and
    // the index has capacity headroom, so surface any violation immediately.
    assert(false && "pending index rejected a freshly allocated key");
    MLOG(kError, "endpoint") << "pending index rejected gather seq " << seq
                             << "; failing request instead of leaving it unmatchable";
    ++counters_.rejected_capacity;
    if (gather.handler) {
      gather.handler(InternalError("pending index insert failed"));
    }
    return kInvalidRequest;
  }

  node_->SendUdp(group, kMicroPnpUdpPort, MakeMessage(type, seq, std::move(payload)).Serialize());
  ++counters_.requests_started;
  gather.timer = scheduler_.ScheduleAfter(SimTime::FromMillis(window_ms), [this, id] {
    auto it = gathers_.find(id);
    if (it == gathers_.end()) {
      return;
    }
    PendingGather done = std::move(it->second);
    by_key_.Erase(AnySourceKey(), done.sequence);
    gathers_.erase(it);
    ++counters_.completed_ok;
    if (done.handler) {
      done.handler(std::move(done.replies));
    }
  });
  gathers_[id] = std::move(gather);
  NoteInFlight();
  return id;
}

void ProtoEndpoint::ArmTimer(RequestId id) {
  PendingRequest* entry = Resolve(id);
  if (entry == nullptr) {
    return;
  }
  SimTime next = entry->deadline;
  if (entry->retransmits_left > 0) {
    const SimTime retransmit_at = scheduler_.now() + SimTime::FromMillis(entry->next_backoff_ms);
    if (retransmit_at < next) {
      next = retransmit_at;
    }
  }
  entry->timer = scheduler_.ScheduleAt(next, [this, id] { OnTimer(id); });
}

void ProtoEndpoint::OnTimer(RequestId id) {
  PendingRequest* entry = Resolve(id);
  if (entry == nullptr) {
    return;
  }
  if (scheduler_.now() >= entry->deadline) {
    Complete(id, DeadlineExceeded(std::string("no reply from peer for ") +
                                  MessageTypeName(static_cast<MessageType>(entry->wire[0]))));
    return;
  }
  // Retransmit the stored wire bytes and back off.
  node_->SendUdp(entry->peer, kMicroPnpUdpPort, entry->wire);
  ++counters_.retransmits;
  --entry->retransmits_left;
  entry->next_backoff_ms *= entry->options.backoff_multiplier;
  ArmTimer(id);
}

void ProtoEndpoint::Complete(RequestId id, Result<Message> result) {
  PendingRequest* entry = Resolve(id);
  if (entry == nullptr) {
    return;
  }
  scheduler_.Cancel(entry->timer);
  const Ip6Address& key_peer = entry->options.match_any_source ? AnySourceKey() : entry->peer;
  by_key_.Erase(key_peer, entry->sequence);

  if (result.ok()) {
    ++counters_.completed_ok;
  } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
    ++counters_.deadline_exceeded;
  } else if (result.status().code() == StatusCode::kCancelled) {
    ++counters_.cancelled;
  }
  // Release the slot before invoking the handler: handlers routinely submit
  // follow-up requests, which may legitimately reuse it (the bumped
  // generation retires this id).
  ResponseHandler handler = std::move(entry->handler);
  ReleaseSlot(id, *entry);
  if (handler) {
    handler(std::move(result));
  }
}

bool ProtoEndpoint::Cancel(RequestId id) {
  if (Resolve(id) != nullptr) {
    Complete(id, CancelledError("request cancelled"));
    return true;
  }
  auto g = gathers_.find(id);
  if (g != gathers_.end()) {
    PendingGather done = std::move(g->second);
    scheduler_.Cancel(done.timer);
    by_key_.Erase(AnySourceKey(), done.sequence);
    gathers_.erase(g);
    ++counters_.cancelled;
    if (done.handler) {
      done.handler(CancelledError("gather cancelled"));
    }
    return true;
  }
  return false;
}

void ProtoEndpoint::CancelAll() {
  // Snapshot first: a handler reacting to kCancelled may submit new
  // requests, which must survive this sweep (and must not loop it forever).
  std::vector<RequestId> ids;
  ids.reserve(in_flight());
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].active) {
      ids.push_back((uint64_t{slots_[slot].generation} << 32) | (slot + 1));
    }
  }
  for (const auto& [id, gather] : gathers_) {
    ids.push_back(id);
  }
  for (RequestId id : ids) {
    Cancel(id);
  }
}

bool ProtoEndpoint::HandleReply(const Ip6Address& src, const Message& message) {
  auto request_accepts = [&](const PendingRequest& entry) {
    return Accepts(entry.accepted_replies, message.type) &&
           (!entry.options.accept || entry.options.accept(message));
  };
  // Exact (peer, sequence) match for unicast transactions.
  if (const RequestId id = by_key_.Find(src, message.sequence); id != 0) {
    PendingRequest* entry = Resolve(id);
    if (entry != nullptr && request_accepts(*entry)) {
      ++counters_.replies_matched;
      Complete(id, message);
      return true;
    }
  }
  // Any-source transactions (anycast requests, multicast gathers) are all
  // indexed under the shared sentinel key.
  if (const RequestId id = by_key_.Find(AnySourceKey(), message.sequence); id != 0) {
    PendingRequest* entry = Resolve(id);
    if (entry != nullptr && request_accepts(*entry)) {
      ++counters_.replies_matched;
      Complete(id, message);
      return true;
    }
    auto g = gathers_.find(id);
    if (g != gathers_.end() && Accepts(g->second.accepted_replies, message.type)) {
      ++counters_.replies_matched;
      g->second.replies.emplace_back(src, message);
      return true;
    }
  }
  if (IsPureReplyType(message.type)) {
    ++counters_.stale_replies_dropped;
    MLOG(kDebug, "endpoint") << "dropping stale " << MessageTypeName(message.type) << " seq "
                             << message.sequence << " from " << src.ToString();
  }
  return false;
}

}  // namespace micropnp
