#include "src/proto/messages.h"

#include <cassert>
#include <type_traits>

namespace micropnp {

const Ip6Address& ManagerAnycastAddress() {
  static const Ip6Address kAddress = *Ip6Address::Parse("2001:db8:aaaa::1");
  return kAddress;
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kUnsolicitedAdvertisement:
      return "unsolicited-advertisement";
    case MessageType::kPeripheralDiscovery:
      return "peripheral-discovery";
    case MessageType::kSolicitedAdvertisement:
      return "solicited-advertisement";
    case MessageType::kDriverInstallRequest:
      return "driver-install-request";
    case MessageType::kDriverUpload:
      return "driver-upload";
    case MessageType::kDriverDiscovery:
      return "driver-discovery";
    case MessageType::kDriverAdvertisement:
      return "driver-advertisement";
    case MessageType::kDriverRemovalRequest:
      return "driver-removal-request";
    case MessageType::kDriverRemovalAck:
      return "driver-removal-ack";
    case MessageType::kRead:
      return "read";
    case MessageType::kData:
      return "data";
    case MessageType::kStream:
      return "stream";
    case MessageType::kStreamEstablished:
      return "stream-established";
    case MessageType::kStreamData:
      return "stream-data";
    case MessageType::kStreamClosed:
      return "stream-closed";
    case MessageType::kWrite:
      return "write";
    case MessageType::kWriteAck:
      return "write-ack";
    case MessageType::kDriverUploadOffer:
      return "driver-upload-offer";
    case MessageType::kDriverChunk:
      return "driver-chunk";
    case MessageType::kDriverChunkRequest:
      return "driver-chunk-request";
  }
  return "unknown";
}

// ------------------------------------------------------------- payloads ----
// Length prefixes clamp the element count they describe AND the elements
// written, so an oversized payload serializes to a well-formed (truncated)
// datagram instead of one the receiver's trailing-bytes check rejects.

namespace {

template <typename T>
size_t ClampedCount(const std::vector<T>& items, size_t limit) {
  return items.size() < limit ? items.size() : limit;
}

}  // namespace

void AdvertisementPayload::Serialize(ByteWriter& w) const {
  const size_t count = ClampedCount(peripherals, 255);
  w.WriteU8(static_cast<uint8_t>(count));
  for (size_t i = 0; i < count; ++i) {
    w.WriteU32(peripherals[i].type);
    peripherals[i].info.Serialize(w);
  }
}

Result<AdvertisementPayload> AdvertisementPayload::Parse(ByteReader& r) {
  AdvertisementPayload out;
  const uint8_t count = r.ReadU8();
  for (uint8_t i = 0; i < count && r.ok(); ++i) {
    AdvertisedPeripheral p;
    p.type = r.ReadU32();
    Result<TlvList> info = TlvList::Parse(r);
    if (!info.ok()) {
      return info.status();
    }
    p.info = std::move(*info);
    out.peripherals.push_back(std::move(p));
  }
  if (!r.ok()) {
    return CorruptError("truncated advertisement");
  }
  return out;
}

void PeripheralDiscoveryPayload::Serialize(ByteWriter& w) const { filters.Serialize(w); }

Result<PeripheralDiscoveryPayload> PeripheralDiscoveryPayload::Parse(ByteReader& r) {
  Result<TlvList> filters = TlvList::Parse(r);
  if (!filters.ok()) {
    return filters.status();
  }
  PeripheralDiscoveryPayload out;
  out.filters = std::move(*filters);
  return out;
}

void DeviceTargetPayload::Serialize(ByteWriter& w) const { w.WriteU32(device_id); }

Result<DeviceTargetPayload> DeviceTargetPayload::Parse(ByteReader& r) {
  DeviceTargetPayload out;
  out.device_id = r.ReadU32();
  if (!r.ok()) {
    return CorruptError("truncated device target");
  }
  return out;
}

void DriverRequestPayload::Serialize(ByteWriter& w) const {
  w.WriteU32(device_id);
  w.WriteU32(cached_crc);
  w.WriteU16(cached_chunk_count);
  const size_t len = ClampedCount(have_bitmap, 255);
  w.WriteU8(static_cast<uint8_t>(len));
  w.WriteBytes(ByteSpan(have_bitmap.data(), len));
}

Result<DriverRequestPayload> DriverRequestPayload::Parse(ByteReader& r) {
  DriverRequestPayload out;
  out.device_id = r.ReadU32();
  out.cached_crc = r.ReadU32();
  out.cached_chunk_count = r.ReadU16();
  const uint8_t len = r.ReadU8();
  out.have_bitmap = r.ReadBytes(len);
  if (!r.ok()) {
    return CorruptError("truncated driver request");
  }
  return out;
}

void DriverUploadPayload::Serialize(ByteWriter& w) const {
  w.WriteU32(device_id);
  const size_t len = ClampedCount(driver_image, 65535);
  w.WriteU16(static_cast<uint16_t>(len));
  w.WriteBytes(ByteSpan(driver_image.data(), len));
}

Result<DriverUploadPayload> DriverUploadPayload::Parse(ByteReader& r) {
  DriverUploadPayload out;
  out.device_id = r.ReadU32();
  const uint16_t len = r.ReadU16();
  out.driver_image = r.ReadBytes(len);
  if (!r.ok()) {
    return CorruptError("truncated driver upload");
  }
  return out;
}

void DriverAdvertisementPayload::Serialize(ByteWriter& w) const {
  const size_t count = ClampedCount(driver_ids, 255);
  w.WriteU8(static_cast<uint8_t>(count));
  for (size_t i = 0; i < count; ++i) {
    w.WriteU32(driver_ids[i]);
  }
}

Result<DriverAdvertisementPayload> DriverAdvertisementPayload::Parse(ByteReader& r) {
  DriverAdvertisementPayload out;
  const uint8_t count = r.ReadU8();
  for (uint8_t i = 0; i < count && r.ok(); ++i) {
    out.driver_ids.push_back(r.ReadU32());
  }
  if (!r.ok()) {
    return CorruptError("truncated driver advertisement");
  }
  return out;
}

void StatusAckPayload::Serialize(ByteWriter& w) const {
  w.WriteU32(device_id);
  w.WriteU8(status);
}

Result<StatusAckPayload> StatusAckPayload::Parse(ByteReader& r) {
  StatusAckPayload out;
  out.device_id = r.ReadU32();
  out.status = r.ReadU8();
  if (!r.ok()) {
    return CorruptError("truncated ack");
  }
  return out;
}

void ValuePayload::Serialize(ByteWriter& w) const {
  w.WriteU32(device_id);
  w.WriteU8(value.is_array ? 1 : 0);
  if (value.is_array) {
    const size_t len = ClampedCount(value.bytes, 255);
    w.WriteU8(static_cast<uint8_t>(len));
    w.WriteBytes(ByteSpan(value.bytes.data(), len));
  } else {
    w.WriteI32(value.scalar);
  }
}

Result<ValuePayload> ValuePayload::Parse(ByteReader& r) {
  ValuePayload out;
  out.device_id = r.ReadU32();
  out.value.is_array = (r.ReadU8() != 0);
  if (out.value.is_array) {
    const uint8_t len = r.ReadU8();
    out.value.bytes = r.ReadBytes(len);
  } else {
    out.value.scalar = r.ReadI32();
  }
  if (!r.ok()) {
    return CorruptError("truncated value");
  }
  return out;
}

void StreamRequestPayload::Serialize(ByteWriter& w) const {
  w.WriteU32(device_id);
  w.WriteU32(period_ms);
}

Result<StreamRequestPayload> StreamRequestPayload::Parse(ByteReader& r) {
  StreamRequestPayload out;
  out.device_id = r.ReadU32();
  out.period_ms = r.ReadU32();
  if (!r.ok()) {
    return CorruptError("truncated stream request");
  }
  return out;
}

void StreamEstablishedPayload::Serialize(ByteWriter& w) const {
  w.WriteU32(device_id);
  w.WriteBytes(ByteSpan(group.bytes().data(), 16));
}

Result<StreamEstablishedPayload> StreamEstablishedPayload::Parse(ByteReader& r) {
  StreamEstablishedPayload out;
  out.device_id = r.ReadU32();
  std::vector<uint8_t> raw = r.ReadBytes(16);
  if (!r.ok() || raw.size() != 16) {
    return CorruptError("truncated stream group");
  }
  std::array<uint8_t, 16> arr{};
  std::copy(raw.begin(), raw.end(), arr.begin());
  out.group = Ip6Address(arr);
  return out;
}

void WritePayload::Serialize(ByteWriter& w) const {
  w.WriteU32(device_id);
  w.WriteI32(value);
}

Result<WritePayload> WritePayload::Parse(ByteReader& r) {
  WritePayload out;
  out.device_id = r.ReadU32();
  out.value = r.ReadI32();
  if (!r.ok()) {
    return CorruptError("truncated write");
  }
  return out;
}

void DriverOfferPayload::Serialize(ByteWriter& w) const {
  w.WriteU32(device_id);
  w.WriteU32(image_crc);
  w.WriteU32(total_size);
  w.WriteU16(chunk_size);
  w.WriteU16(chunk_count);
  w.WriteU8(flags);
}

Result<DriverOfferPayload> DriverOfferPayload::Parse(ByteReader& r) {
  DriverOfferPayload out;
  out.device_id = r.ReadU32();
  out.image_crc = r.ReadU32();
  out.total_size = r.ReadU32();
  out.chunk_size = r.ReadU16();
  out.chunk_count = r.ReadU16();
  out.flags = r.ReadU8();
  if (!r.ok()) {
    return CorruptError("truncated driver offer");
  }
  // Internal consistency: chunk geometry must cover the image exactly, so a
  // receiver never has to re-derive (and mistrust) buffer sizes per chunk.
  if (out.chunk_count > 0) {
    if (out.chunk_size == 0) {
      return CorruptError("driver offer with zero chunk size");
    }
    const uint32_t covered = static_cast<uint32_t>(out.chunk_size) * out.chunk_count;
    const uint32_t prev = static_cast<uint32_t>(out.chunk_size) * (out.chunk_count - 1);
    if (out.total_size > covered || out.total_size <= prev) {
      return CorruptError("driver offer chunk geometry mismatch");
    }
  } else if (out.total_size != 0 && (out.flags & kDriverOfferUpToDate) == 0) {
    return CorruptError("driver offer with no chunks for a non-empty image");
  }
  return out;
}

void DriverChunkPayload::Serialize(ByteWriter& w) const {
  w.WriteU32(device_id);
  w.WriteU32(image_crc);
  w.WriteU16(chunk_index);
  w.WriteU16(chunk_count);
  const size_t len = ClampedCount(data, 65535);
  w.WriteU16(static_cast<uint16_t>(len));
  w.WriteBytes(ByteSpan(data.data(), len));
}

Result<DriverChunkPayload> DriverChunkPayload::Parse(ByteReader& r) {
  DriverChunkPayload out;
  out.device_id = r.ReadU32();
  out.image_crc = r.ReadU32();
  out.chunk_index = r.ReadU16();
  out.chunk_count = r.ReadU16();
  const uint16_t len = r.ReadU16();
  out.data = r.ReadBytes(len);
  if (!r.ok()) {
    return CorruptError("truncated driver chunk");
  }
  if (out.chunk_index >= out.chunk_count) {
    return CorruptError("driver chunk index out of range");
  }
  return out;
}

void DriverChunkRequestPayload::Serialize(ByteWriter& w) const {
  w.WriteU32(device_id);
  w.WriteU32(image_crc);
  const size_t count = ClampedCount(chunk_indices, 255);
  w.WriteU8(static_cast<uint8_t>(count));
  for (size_t i = 0; i < count; ++i) {
    w.WriteU16(chunk_indices[i]);
  }
}

Result<DriverChunkRequestPayload> DriverChunkRequestPayload::Parse(ByteReader& r) {
  DriverChunkRequestPayload out;
  out.device_id = r.ReadU32();
  out.image_crc = r.ReadU32();
  const uint8_t count = r.ReadU8();
  for (uint8_t i = 0; i < count && r.ok(); ++i) {
    out.chunk_indices.push_back(r.ReadU16());
  }
  if (!r.ok()) {
    return CorruptError("truncated driver chunk request");
  }
  return out;
}

// -------------------------------------------------------------- message ----

namespace {

// The variant alternative index that each wire type carries, resolved at
// compile time (no payload object is constructed).
template <typename T, typename Variant>
struct AlternativeIndexImpl;
template <typename T, typename... Ts>
struct AlternativeIndexImpl<T, std::variant<Ts...>> {
  static constexpr size_t value = [] {
    size_t index = 0;
    const bool found = ((std::is_same_v<T, Ts> ? true : (++index, false)) || ...);
    return found ? index : std::variant_npos;
  }();
};
template <typename T>
constexpr size_t AlternativeIndex() {
  return AlternativeIndexImpl<T, MessagePayload>::value;
}

size_t ExpectedAlternative(MessageType type) {
  switch (type) {
    case MessageType::kUnsolicitedAdvertisement:
    case MessageType::kSolicitedAdvertisement:
      return AlternativeIndex<AdvertisementPayload>();
    case MessageType::kPeripheralDiscovery:
      return AlternativeIndex<PeripheralDiscoveryPayload>();
    case MessageType::kDriverDiscovery:
    case MessageType::kDriverRemovalRequest:
    case MessageType::kRead:
    case MessageType::kStreamClosed:
      return AlternativeIndex<DeviceTargetPayload>();
    case MessageType::kDriverInstallRequest:
      return AlternativeIndex<DriverRequestPayload>();
    case MessageType::kDriverUpload:
      return AlternativeIndex<DriverUploadPayload>();
    case MessageType::kDriverUploadOffer:
      return AlternativeIndex<DriverOfferPayload>();
    case MessageType::kDriverChunk:
      return AlternativeIndex<DriverChunkPayload>();
    case MessageType::kDriverChunkRequest:
      return AlternativeIndex<DriverChunkRequestPayload>();
    case MessageType::kDriverAdvertisement:
      return AlternativeIndex<DriverAdvertisementPayload>();
    case MessageType::kDriverRemovalAck:
    case MessageType::kWriteAck:
      return AlternativeIndex<StatusAckPayload>();
    case MessageType::kData:
    case MessageType::kStreamData:
      return AlternativeIndex<ValuePayload>();
    case MessageType::kStream:
      return AlternativeIndex<StreamRequestPayload>();
    case MessageType::kStreamEstablished:
      return AlternativeIndex<StreamEstablishedPayload>();
    case MessageType::kWrite:
      return AlternativeIndex<WritePayload>();
  }
  return std::variant_npos;
}

Result<MessagePayload> ParsePayload(MessageType type, ByteReader& r) {
  // Adapts each typed Parse into the common variant result.
  auto lift = [](auto parsed) -> Result<MessagePayload> {
    if (!parsed.ok()) {
      return parsed.status();
    }
    return MessagePayload(std::move(*parsed));
  };
  switch (type) {
    case MessageType::kUnsolicitedAdvertisement:
    case MessageType::kSolicitedAdvertisement:
      return lift(AdvertisementPayload::Parse(r));
    case MessageType::kPeripheralDiscovery:
      return lift(PeripheralDiscoveryPayload::Parse(r));
    case MessageType::kDriverDiscovery:
    case MessageType::kDriverRemovalRequest:
    case MessageType::kRead:
    case MessageType::kStreamClosed:
      return lift(DeviceTargetPayload::Parse(r));
    case MessageType::kDriverInstallRequest:
      return lift(DriverRequestPayload::Parse(r));
    case MessageType::kDriverUpload:
      return lift(DriverUploadPayload::Parse(r));
    case MessageType::kDriverUploadOffer:
      return lift(DriverOfferPayload::Parse(r));
    case MessageType::kDriverChunk:
      return lift(DriverChunkPayload::Parse(r));
    case MessageType::kDriverChunkRequest:
      return lift(DriverChunkRequestPayload::Parse(r));
    case MessageType::kDriverAdvertisement:
      return lift(DriverAdvertisementPayload::Parse(r));
    case MessageType::kDriverRemovalAck:
    case MessageType::kWriteAck:
      return lift(StatusAckPayload::Parse(r));
    case MessageType::kData:
    case MessageType::kStreamData:
      return lift(ValuePayload::Parse(r));
    case MessageType::kStream:
      return lift(StreamRequestPayload::Parse(r));
    case MessageType::kStreamEstablished:
      return lift(StreamEstablishedPayload::Parse(r));
    case MessageType::kWrite:
      return lift(WritePayload::Parse(r));
  }
  return CorruptError("unknown message type");
}

}  // namespace

bool PayloadMatchesType(MessageType type, const MessagePayload& payload) {
  return payload.index() == ExpectedAlternative(type);
}

std::vector<uint8_t> Message::Serialize() const {
  std::vector<uint8_t> out;
  SerializeInto(out);
  return out;
}

void Message::SerializeInto(std::vector<uint8_t>& out) const {
  assert(PayloadMatchesType(type, payload) && "message payload does not match wire type");
  ByteWriter w(std::move(out));
  w.WriteU8(static_cast<uint8_t>(type));
  w.WriteU16(sequence);
  if (PayloadMatchesType(type, payload)) {
    std::visit([&w](const auto& p) { p.Serialize(w); }, payload);
  }
  out = w.Take();
}

Result<Message> Message::Parse(ByteSpan bytes) {
  ByteReader r(bytes);
  const uint8_t raw_type = r.ReadU8();
  const SequenceNumber sequence = r.ReadU16();
  if (!r.ok()) {
    return CorruptError("truncated message header");
  }
  if (raw_type < 1 || raw_type > kMessageTypeMax) {
    return CorruptError("unknown message type");
  }
  Message m;
  m.type = static_cast<MessageType>(raw_type);
  m.sequence = sequence;
  Result<MessagePayload> payload = ParsePayload(m.type, r);
  if (!payload.ok()) {
    return payload.status();
  }
  m.payload = std::move(*payload);
  if (!r.ok()) {
    return CorruptError("truncated message");
  }
  if (r.remaining() != 0) {
    return CorruptError("trailing bytes after payload");
  }
  return m;
}

Message MakeMessage(MessageType type, SequenceNumber seq, MessagePayload payload) {
  assert(PayloadMatchesType(type, payload) && "message payload does not match wire type");
  Message m;
  m.type = type;
  m.sequence = seq;
  m.payload = std::move(payload);
  return m;
}

Message MakeAdvertisement(MessageType type, SequenceNumber seq,
                          std::vector<AdvertisedPeripheral> peripherals) {
  return MakeMessage(type, seq, AdvertisementPayload{std::move(peripherals)});
}

Message MakeDeviceMessage(MessageType type, SequenceNumber seq, DeviceTypeId device) {
  return MakeMessage(type, seq, DeviceTargetPayload{device});
}

}  // namespace micropnp
