#include "src/proto/messages.h"

namespace micropnp {

const Ip6Address& ManagerAnycastAddress() {
  static const Ip6Address kAddress = *Ip6Address::Parse("2001:db8:aaaa::1");
  return kAddress;
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kUnsolicitedAdvertisement:
      return "unsolicited-advertisement";
    case MessageType::kPeripheralDiscovery:
      return "peripheral-discovery";
    case MessageType::kSolicitedAdvertisement:
      return "solicited-advertisement";
    case MessageType::kDriverInstallRequest:
      return "driver-install-request";
    case MessageType::kDriverUpload:
      return "driver-upload";
    case MessageType::kDriverDiscovery:
      return "driver-discovery";
    case MessageType::kDriverAdvertisement:
      return "driver-advertisement";
    case MessageType::kDriverRemovalRequest:
      return "driver-removal-request";
    case MessageType::kDriverRemovalAck:
      return "driver-removal-ack";
    case MessageType::kRead:
      return "read";
    case MessageType::kData:
      return "data";
    case MessageType::kStream:
      return "stream";
    case MessageType::kStreamEstablished:
      return "stream-established";
    case MessageType::kStreamData:
      return "stream-data";
    case MessageType::kStreamClosed:
      return "stream-closed";
    case MessageType::kWrite:
      return "write";
    case MessageType::kWriteAck:
      return "write-ack";
  }
  return "unknown";
}

namespace {

void SerializeValue(ByteWriter& w, const WireValue& value) {
  w.WriteU8(value.is_array ? 1 : 0);
  if (value.is_array) {
    w.WriteU8(static_cast<uint8_t>(value.bytes.size()));
    w.WriteBytes(ByteSpan(value.bytes.data(), value.bytes.size()));
  } else {
    w.WriteI32(value.scalar);
  }
}

Result<WireValue> ParseValue(ByteReader& r) {
  WireValue value;
  value.is_array = (r.ReadU8() != 0);
  if (value.is_array) {
    const uint8_t len = r.ReadU8();
    value.bytes = r.ReadBytes(len);
  } else {
    value.scalar = r.ReadI32();
  }
  if (!r.ok()) {
    return CorruptError("truncated value");
  }
  return value;
}

}  // namespace

std::vector<uint8_t> Message::Serialize() const {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(type));
  w.WriteU16(sequence);
  switch (type) {
    case MessageType::kUnsolicitedAdvertisement:
    case MessageType::kSolicitedAdvertisement:
      w.WriteU8(static_cast<uint8_t>(peripherals.size()));
      for (const AdvertisedPeripheral& p : peripherals) {
        w.WriteU32(p.type);
        p.info.Serialize(w);
      }
      break;
    case MessageType::kPeripheralDiscovery:
      filters.Serialize(w);
      break;
    case MessageType::kDriverInstallRequest:
    case MessageType::kDriverRemovalRequest:
    case MessageType::kDriverDiscovery:
    case MessageType::kRead:
      w.WriteU32(device_id);
      break;
    case MessageType::kDriverUpload:
      w.WriteU32(device_id);
      w.WriteU16(static_cast<uint16_t>(driver_image.size()));
      w.WriteBytes(ByteSpan(driver_image.data(), driver_image.size()));
      break;
    case MessageType::kDriverAdvertisement:
      w.WriteU8(static_cast<uint8_t>(driver_ids.size()));
      for (DeviceTypeId id : driver_ids) {
        w.WriteU32(id);
      }
      break;
    case MessageType::kDriverRemovalAck:
    case MessageType::kWriteAck:
      w.WriteU32(device_id);
      w.WriteU8(status);
      break;
    case MessageType::kData:
    case MessageType::kStreamData:
      w.WriteU32(device_id);
      SerializeValue(w, value);
      break;
    case MessageType::kStream:
      w.WriteU32(device_id);
      w.WriteU32(stream_period_ms);
      break;
    case MessageType::kStreamEstablished:
      w.WriteU32(device_id);
      w.WriteBytes(ByteSpan(stream_group.bytes().data(), 16));
      break;
    case MessageType::kStreamClosed:
      w.WriteU32(device_id);
      break;
    case MessageType::kWrite:
      w.WriteU32(device_id);
      w.WriteI32(write_value);
      break;
  }
  return w.Take();
}

Result<Message> Message::Parse(ByteSpan bytes) {
  ByteReader r(bytes);
  Message m;
  const uint8_t raw_type = r.ReadU8();
  if (raw_type < 1 || raw_type > 17) {
    return CorruptError("unknown message type");
  }
  m.type = static_cast<MessageType>(raw_type);
  m.sequence = r.ReadU16();

  switch (m.type) {
    case MessageType::kUnsolicitedAdvertisement:
    case MessageType::kSolicitedAdvertisement: {
      const uint8_t count = r.ReadU8();
      for (uint8_t i = 0; i < count; ++i) {
        AdvertisedPeripheral p;
        p.type = r.ReadU32();
        Result<TlvList> info = TlvList::Parse(r);
        if (!info.ok()) {
          return info.status();
        }
        p.info = std::move(*info);
        m.peripherals.push_back(std::move(p));
      }
      break;
    }
    case MessageType::kPeripheralDiscovery: {
      Result<TlvList> filters = TlvList::Parse(r);
      if (!filters.ok()) {
        return filters.status();
      }
      m.filters = std::move(*filters);
      break;
    }
    case MessageType::kDriverInstallRequest:
    case MessageType::kDriverRemovalRequest:
    case MessageType::kDriverDiscovery:
    case MessageType::kRead:
    case MessageType::kStreamClosed:
      m.device_id = r.ReadU32();
      break;
    case MessageType::kDriverUpload: {
      m.device_id = r.ReadU32();
      const uint16_t len = r.ReadU16();
      m.driver_image = r.ReadBytes(len);
      break;
    }
    case MessageType::kDriverAdvertisement: {
      const uint8_t count = r.ReadU8();
      for (uint8_t i = 0; i < count; ++i) {
        m.driver_ids.push_back(r.ReadU32());
      }
      break;
    }
    case MessageType::kDriverRemovalAck:
    case MessageType::kWriteAck:
      m.device_id = r.ReadU32();
      m.status = r.ReadU8();
      break;
    case MessageType::kData:
    case MessageType::kStreamData: {
      m.device_id = r.ReadU32();
      Result<WireValue> value = ParseValue(r);
      if (!value.ok()) {
        return value.status();
      }
      m.value = std::move(*value);
      break;
    }
    case MessageType::kStream:
      m.device_id = r.ReadU32();
      m.stream_period_ms = r.ReadU32();
      break;
    case MessageType::kStreamEstablished: {
      m.device_id = r.ReadU32();
      std::vector<uint8_t> raw = r.ReadBytes(16);
      if (raw.size() == 16) {
        std::array<uint8_t, 16> arr{};
        std::copy(raw.begin(), raw.end(), arr.begin());
        m.stream_group = Ip6Address(arr);
      }
      break;
    }
    case MessageType::kWrite:
      m.device_id = r.ReadU32();
      m.write_value = r.ReadI32();
      break;
  }
  if (!r.ok()) {
    return CorruptError("truncated message");
  }
  return m;
}

Message MakeAdvertisement(MessageType type, SequenceNumber seq,
                          std::vector<AdvertisedPeripheral> peripherals) {
  Message m;
  m.type = type;
  m.sequence = seq;
  m.peripherals = std::move(peripherals);
  return m;
}

Message MakeDeviceMessage(MessageType type, SequenceNumber seq, DeviceTypeId device) {
  Message m;
  m.type = type;
  m.sequence = seq;
  m.device_id = device;
  return m;
}

}  // namespace micropnp
