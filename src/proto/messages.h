// μPnP interaction protocol messages (Section 5.2, Figures 10 and 11).
//
// "All messages are sent as UDP packets to port 6030. ... All messages carry
// a unique 16-bit unsigned sequence number which is used to associate
// request and reply messages."  Message numbering follows the paper's
// (1)..(17) annotations exactly; (18)..(20) extend the vocabulary with the
// chunked driver-transfer shapes for lossy multi-hop networks (the paper's
// Section 9 future work).
//
// Wire format: u8 type | u16 sequence | type-specific payload (big-endian).
//
// Each of the paper's message shapes is a distinct payload struct with its
// own Serialize/Parse round trip; a Message is the (type, sequence) header
// plus a std::variant over those shapes.  Several wire types share a shape —
// e.g. (6)(8)(10)(15) all carry just a device id — so the header type
// stays explicit and Parse/Serialize enforce that it matches the payload
// alternative.

#ifndef SRC_PROTO_MESSAGES_H_
#define SRC_PROTO_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/common/tlv.h"
#include "src/common/types.h"
#include "src/net/ip6.h"

namespace micropnp {

// Well-known anycast address of the μPnP Manager (Figure 11's
// 2001:db8:aaaa::1): "the µPnP manager is assigned an anycast IPv6 address
// to allow for network-level redundancy and scalability".
const Ip6Address& ManagerAnycastAddress();

enum class MessageType : uint8_t {
  kUnsolicitedAdvertisement = 1,  // Thing -> all-clients group
  kPeripheralDiscovery = 2,       // client -> peripheral group
  kSolicitedAdvertisement = 3,    // Thing -> client (unicast)
  kDriverInstallRequest = 4,      // Thing -> manager (anycast)
  kDriverUpload = 5,              // manager -> Thing (monolithic, legacy)
  kDriverDiscovery = 6,           // manager -> Thing
  kDriverAdvertisement = 7,       // Thing -> manager
  kDriverRemovalRequest = 8,      // manager -> Thing
  kDriverRemovalAck = 9,          // Thing -> manager
  kRead = 10,                     // client -> Thing
  kData = 11,                     // Thing -> client
  kStream = 12,                   // client -> Thing
  kStreamEstablished = 13,        // Thing -> client
  kStreamData = 14,               // Thing -> stream group
  kStreamClosed = 15,             // Thing -> stream group
  kWrite = 16,                    // client -> Thing
  kWriteAck = 17,                 // Thing -> client
  // Chunked driver transfer (the (5) upload split for lossy multi-hop
  // fabrics: one lost 6LoWPAN fragment no longer re-sends the whole image).
  kDriverUploadOffer = 18,   // manager -> Thing: transfer preamble, answers (4)
  kDriverChunk = 19,         // manager -> Thing: one MTU-sized image slice
  kDriverChunkRequest = 20,  // Thing -> manager: selective-repeat NACK
};

inline constexpr uint8_t kMessageTypeMax = 20;

const char* MessageTypeName(MessageType type);

// One peripheral entry inside an advertisement: "(a) the type of sensor
// (fixed length of 4 bytes) and (b) a set of type-length-value (TLV) encoded
// tuples" (Section 5.2.1).
struct AdvertisedPeripheral {
  DeviceTypeId type = 0;
  TlvList info;

  bool operator==(const AdvertisedPeripheral&) const = default;
};

// A value produced by a driver, carried by Data / StreamData messages.
struct WireValue {
  bool is_array = false;
  int32_t scalar = 0;
  std::vector<uint8_t> bytes;

  bool operator==(const WireValue&) const = default;
};

// --------------------------------------------------------------------------
// Typed payloads, one struct per wire shape.  Each serializes into / parses
// out of the bytes that follow the u8 type + u16 sequence header.

// (1) unsolicited and (3) solicited advertisements.
struct AdvertisementPayload {
  std::vector<AdvertisedPeripheral> peripherals;

  void Serialize(ByteWriter& w) const;
  static Result<AdvertisementPayload> Parse(ByteReader& r);
  bool operator==(const AdvertisementPayload&) const = default;
};

// (2) peripheral discovery: TLV filters (the destination group selects the
// wanted device type).
struct PeripheralDiscoveryPayload {
  TlvList filters;

  void Serialize(ByteWriter& w) const;
  static Result<PeripheralDiscoveryPayload> Parse(ByteReader& r);
  bool operator==(const PeripheralDiscoveryPayload&) const = default;
};

// (6) driver discovery, (8) driver removal request, (10) read, (15) stream
// closed: the target device type alone.
struct DeviceTargetPayload {
  DeviceTypeId device_id = 0;

  void Serialize(ByteWriter& w) const;
  static Result<DeviceTargetPayload> Parse(ByteReader& r);
  bool operator==(const DeviceTargetPayload&) const = default;
};

// (4) driver install request: the target device type plus the resume state
// of any partially (or fully) held image from an interrupted transfer.
// `cached_crc == 0` means "nothing held, send everything"; otherwise the
// bitmap says which chunks of the image with that CRC-32 the Thing already
// has, and the manager streams only the gaps (re-plug -> delta, not
// re-send).
struct DriverRequestPayload {
  DeviceTypeId device_id = 0;
  uint32_t cached_crc = 0;         // CRC-32 of the held image bytes; 0 = none
  uint16_t cached_chunk_count = 0; // chunk count of the held partial transfer
  std::vector<uint8_t> have_bitmap;  // bit i set = chunk i held (LSB first)

  void Serialize(ByteWriter& w) const;
  static Result<DriverRequestPayload> Parse(ByteReader& r);
  bool operator==(const DriverRequestPayload&) const = default;
};

// (5) driver upload: the serialized DriverImage for one device type.
struct DriverUploadPayload {
  DeviceTypeId device_id = 0;
  std::vector<uint8_t> driver_image;

  void Serialize(ByteWriter& w) const;
  static Result<DriverUploadPayload> Parse(ByteReader& r);
  bool operator==(const DriverUploadPayload&) const = default;
};

// (7) driver advertisement: the installed driver ids.
struct DriverAdvertisementPayload {
  std::vector<DeviceTypeId> driver_ids;

  void Serialize(ByteWriter& w) const;
  static Result<DriverAdvertisementPayload> Parse(ByteReader& r);
  bool operator==(const DriverAdvertisementPayload&) const = default;
};

// (9) driver removal ack and (17) write ack: device + status (0 = ok).
struct StatusAckPayload {
  DeviceTypeId device_id = 0;
  uint8_t status = 0;

  void Serialize(ByteWriter& w) const;
  static Result<StatusAckPayload> Parse(ByteReader& r);
  bool operator==(const StatusAckPayload&) const = default;
};

// (11) data and (14) stream data: a produced value.
struct ValuePayload {
  DeviceTypeId device_id = 0;
  WireValue value;

  void Serialize(ByteWriter& w) const;
  static Result<ValuePayload> Parse(ByteReader& r);
  bool operator==(const ValuePayload&) const = default;
};

// (12) stream request: period in ms; 0 requests stream shutdown.
struct StreamRequestPayload {
  DeviceTypeId device_id = 0;
  uint32_t period_ms = 0;

  void Serialize(ByteWriter& w) const;
  static Result<StreamRequestPayload> Parse(ByteReader& r);
  bool operator==(const StreamRequestPayload&) const = default;
};

// (13) stream established: the multicast group carrying the values.
struct StreamEstablishedPayload {
  DeviceTypeId device_id = 0;
  Ip6Address group;

  void Serialize(ByteWriter& w) const;
  static Result<StreamEstablishedPayload> Parse(ByteReader& r);
  bool operator==(const StreamEstablishedPayload&) const = default;
};

// (16) write: the value to establish.
struct WritePayload {
  DeviceTypeId device_id = 0;
  int32_t value = 0;

  void Serialize(ByteWriter& w) const;
  static Result<WritePayload> Parse(ByteReader& r);
  bool operator==(const WritePayload&) const = default;
};

// Offer flag: the Thing's cached image is byte-identical to the repository's
// current image — no chunks follow, install from the local copy.
inline constexpr uint8_t kDriverOfferUpToDate = 0x01;

// (18) driver upload offer: the chunked-transfer preamble, echoing the (4)'s
// sequence so the Thing's endpoint transaction completes on it.  Everything
// the receiver needs to size buffers and detect gaps before a single chunk
// arrives.
struct DriverOfferPayload {
  DeviceTypeId device_id = 0;
  uint32_t image_crc = 0;   // CRC-32 of the full serialized image
  uint32_t total_size = 0;  // serialized image size in bytes
  uint16_t chunk_size = 0;  // bytes per chunk (last chunk may be shorter)
  uint16_t chunk_count = 0;
  uint8_t flags = 0;        // kDriverOfferUpToDate

  void Serialize(ByteWriter& w) const;
  static Result<DriverOfferPayload> Parse(ByteReader& r);
  bool operator==(const DriverOfferPayload&) const = default;
};

// (19) one image chunk.  Sized so the whole message fits a single 6LoWPAN
// fragment: losing one frame costs one chunk, never the whole image.
struct DriverChunkPayload {
  DeviceTypeId device_id = 0;
  uint32_t image_crc = 0;
  uint16_t chunk_index = 0;
  uint16_t chunk_count = 0;
  std::vector<uint8_t> data;

  void Serialize(ByteWriter& w) const;
  static Result<DriverChunkPayload> Parse(ByteReader& r);
  bool operator==(const DriverChunkPayload&) const = default;
};

// (20) selective-repeat chunk request: the Thing NACKs only the gaps.
struct DriverChunkRequestPayload {
  DeviceTypeId device_id = 0;
  uint32_t image_crc = 0;
  std::vector<uint16_t> chunk_indices;

  void Serialize(ByteWriter& w) const;
  static Result<DriverChunkRequestPayload> Parse(ByteReader& r);
  bool operator==(const DriverChunkRequestPayload&) const = default;
};

using MessagePayload =
    std::variant<AdvertisementPayload, PeripheralDiscoveryPayload, DeviceTargetPayload,
                 DriverUploadPayload, DriverAdvertisementPayload, StatusAckPayload, ValuePayload,
                 StreamRequestPayload, StreamEstablishedPayload, WritePayload,
                 DriverRequestPayload, DriverOfferPayload, DriverChunkPayload,
                 DriverChunkRequestPayload>;

// True iff `payload` holds the variant alternative that wire type `type`
// carries.
bool PayloadMatchesType(MessageType type, const MessagePayload& payload);

struct Message {
  // Defaults are mutually consistent: the default-constructed payload holds
  // the first variant alternative (AdvertisementPayload), which is what an
  // unsolicited advertisement carries.
  MessageType type = MessageType::kUnsolicitedAdvertisement;
  SequenceNumber sequence = 0;
  MessagePayload payload;

  // Typed access; nullptr when the payload is a different shape.
  template <typename T>
  const T* payload_as() const {
    return std::get_if<T>(&payload);
  }
  template <typename T>
  T* payload_as() {
    return std::get_if<T>(&payload);
  }

  // Serializes header + payload.  The payload alternative must match `type`
  // (checked; a mismatched message serializes as an empty-payload header in
  // release builds and asserts in debug builds).
  std::vector<uint8_t> Serialize() const;
  // Serializes into `out` (cleared first, capacity reused) — the endpoint's
  // retransmit buffers go through this to avoid per-request allocation.
  void SerializeInto(std::vector<uint8_t>& out) const;
  // Parses and validates: unknown types, payload/type mismatches and
  // truncated or trailing bytes are all parse errors, never crashes.
  static Result<Message> Parse(ByteSpan bytes);

  bool operator==(const Message&) const = default;
};

// Builds a message, asserting the payload shape matches the wire type.
Message MakeMessage(MessageType type, SequenceNumber seq, MessagePayload payload);

// Convenience constructors for the common shapes.
Message MakeAdvertisement(MessageType type, SequenceNumber seq,
                          std::vector<AdvertisedPeripheral> peripherals);
// For the four device-target-only types ((6)(8)(10)(15)).
Message MakeDeviceMessage(MessageType type, SequenceNumber seq, DeviceTypeId device);

}  // namespace micropnp

#endif  // SRC_PROTO_MESSAGES_H_
