// μPnP interaction protocol messages (Section 5.2, Figures 10 and 11).
//
// "All messages are sent as UDP packets to port 6030. ... All messages carry
// a unique 16-bit unsigned sequence number which is used to associate
// request and reply messages."  Message numbering follows the paper's
// (1)..(17) annotations exactly.
//
// Wire format: u8 type | u16 sequence | type-specific payload (big-endian).

#ifndef SRC_PROTO_MESSAGES_H_
#define SRC_PROTO_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/common/tlv.h"
#include "src/common/types.h"
#include "src/net/ip6.h"

namespace micropnp {

// Well-known anycast address of the μPnP Manager (Figure 11's
// 2001:db8:aaaa::1): "the µPnP manager is assigned an anycast IPv6 address
// to allow for network-level redundancy and scalability".
const Ip6Address& ManagerAnycastAddress();

enum class MessageType : uint8_t {
  kUnsolicitedAdvertisement = 1,  // Thing -> all-clients group
  kPeripheralDiscovery = 2,       // client -> peripheral group
  kSolicitedAdvertisement = 3,    // Thing -> client (unicast)
  kDriverInstallRequest = 4,      // Thing -> manager (anycast)
  kDriverUpload = 5,              // manager -> Thing
  kDriverDiscovery = 6,           // manager -> Thing
  kDriverAdvertisement = 7,       // Thing -> manager
  kDriverRemovalRequest = 8,      // manager -> Thing
  kDriverRemovalAck = 9,          // Thing -> manager
  kRead = 10,                     // client -> Thing
  kData = 11,                     // Thing -> client
  kStream = 12,                   // client -> Thing
  kStreamEstablished = 13,        // Thing -> client
  kStreamData = 14,               // Thing -> stream group
  kStreamClosed = 15,             // Thing -> stream group
  kWrite = 16,                    // client -> Thing
  kWriteAck = 17,                 // Thing -> client
};

const char* MessageTypeName(MessageType type);

// One peripheral entry inside an advertisement: "(a) the type of sensor
// (fixed length of 4 bytes) and (b) a set of type-length-value (TLV) encoded
// tuples" (Section 5.2.1).
struct AdvertisedPeripheral {
  DeviceTypeId type = 0;
  TlvList info;

  bool operator==(const AdvertisedPeripheral&) const = default;
};

// A value produced by a driver, carried by Data / StreamData messages.
struct WireValue {
  bool is_array = false;
  int32_t scalar = 0;
  std::vector<uint8_t> bytes;

  bool operator==(const WireValue&) const = default;
};

struct Message {
  MessageType type = MessageType::kRead;
  SequenceNumber sequence = 0;

  // (1)(3) advertisement payload.
  std::vector<AdvertisedPeripheral> peripherals;
  // (2) discovery filters.
  TlvList filters;
  // (4)(5)(8)(9)(10)..(17): the peripheral the operation targets.
  DeviceTypeId device_id = 0;
  // (5) driver upload: serialized DriverImage.
  std::vector<uint8_t> driver_image;
  // (7) driver advertisement: installed driver ids.
  std::vector<DeviceTypeId> driver_ids;
  // (9)(17) status: 0 = ok.
  uint8_t status = 0;
  // (11)(14) value payload.
  WireValue value;
  // (12) stream period in ms; 0 requests stream shutdown.
  uint32_t stream_period_ms = 0;
  // (13) stream group to join.
  Ip6Address stream_group;
  // (16) write value.
  int32_t write_value = 0;

  std::vector<uint8_t> Serialize() const;
  static Result<Message> Parse(ByteSpan bytes);

  bool operator==(const Message&) const = default;
};

// Convenience constructors for the common shapes.
Message MakeAdvertisement(MessageType type, SequenceNumber seq,
                          std::vector<AdvertisedPeripheral> peripherals);
Message MakeDeviceMessage(MessageType type, SequenceNumber seq, DeviceTypeId device);

}  // namespace micropnp

#endif  // SRC_PROTO_MESSAGES_H_
