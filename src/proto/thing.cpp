#include "src/proto/thing.h"

#include "src/common/logging.h"

namespace micropnp {

MicroPnpThing::MicroPnpThing(Scheduler& scheduler, NetNode* node,
                             const ControlBoardConfig& board_config, uint64_t seed,
                             const ThingConfig& config)
    : scheduler_(scheduler),
      node_(node),
      config_(config),
      rng_(seed),
      driver_manager_(scheduler, router_),
      controller_(scheduler, board_config, rng_),
      endpoint_(scheduler, node) {
  controller_.set_change_listener([this](ChannelId ch, DeviceTypeId id, bool connected) {
    OnPeripheralChange(ch, id, connected);
  });
  node_->BindUdp(kMicroPnpUdpPort,
                 [this](const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                        const std::vector<uint8_t>& payload) { OnDatagram(src, dst, port, payload); });
}

double MicroPnpThing::Jitter(double nominal_ms) {
  return nominal_ms * (1.0 + config_.cpu_jitter_fraction * rng_.Uniform(-1.0, 1.0));
}

Status MicroPnpThing::Plug(ChannelId channel, Peripheral* peripheral) {
  PlugFlowMarks marks;
  marks.channel = channel;
  marks.device = peripheral != nullptr ? peripheral->type_id() : 0;
  marks.plugged = scheduler_.now();
  MICROPNP_RETURN_IF_ERROR(controller_.Plug(channel, peripheral));
  last_flow_ = marks;
  return OkStatus();
}

Status MicroPnpThing::Unplug(ChannelId channel) { return controller_.Unplug(channel); }

Status MicroPnpThing::PreinstallDriver(const DriverImage& image) {
  return driver_manager_.InstallImage(image);
}

std::vector<AdvertisedPeripheral> MicroPnpThing::ConnectedPeripherals() const {
  std::vector<AdvertisedPeripheral> out;
  auto& self = const_cast<MicroPnpThing&>(*this);
  for (ChannelId ch = 0; ch < self.controller_.num_channels(); ++ch) {
    std::optional<DeviceTypeId> id = self.controller_.identified(ch);
    if (!id.has_value()) {
      continue;
    }
    AdvertisedPeripheral p;
    p.type = *id;
    p.info.AddU8(TlvType::kChannel, ch);
    Peripheral* peripheral = self.controller_.peripheral(ch);
    if (peripheral != nullptr) {
      p.info.AddString(TlvType::kFriendlyName, peripheral->name());
      p.info.AddU8(TlvType::kBusKind, static_cast<uint8_t>(peripheral->bus()));
    }
    out.push_back(std::move(p));
  }
  return out;
}

// --------------------------------------------------------- plug-in flow ----

void MicroPnpThing::OnPeripheralChange(ChannelId channel, DeviceTypeId id, bool connected) {
  if (!connected) {
    streams_[channel].active = false;
    streams_[channel].generation++;
    pending_reads_[channel].clear();
    if (driver_manager_.HostForChannel(channel) != nullptr) {
      (void)driver_manager_.Deactivate(channel);
    }
    node_->LeaveGroup(PeripheralGroup(node_->prefix(), id));
    // Unsolicited advertisement reflecting the new peripheral set
    // (Section 5.2.1: generated on connect *or* disconnect).
    scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.advert_build_cpu_ms)),
                             [this] { SendUnsolicitedAdvertisement(); });
    return;
  }

  if (last_flow_.has_value() && last_flow_->channel == channel) {
    last_flow_->device = id;
    last_flow_->identified = scheduler_.now();
  }
  // Step 1: derive the peripheral's multicast address (Table 4 row 1).
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.generate_address_cpu_ms)),
                           [this, channel, id] {
                             if (last_flow_.has_value() && last_flow_->channel == channel) {
                               last_flow_->address_generated = scheduler_.now();
                             }
                             ContinueFlowJoinGroup(channel, id);
                           });
}

void MicroPnpThing::ContinueFlowJoinGroup(ChannelId channel, DeviceTypeId id) {
  // Step 2: join the peripheral group (Table 4 row 2).
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.join_group_cpu_ms)),
                           [this, channel, id] {
                             node_->JoinGroup(PeripheralGroup(node_->prefix(), id));
                             if (last_flow_.has_value() && last_flow_->channel == channel) {
                               last_flow_->group_joined = scheduler_.now();
                             }
                             ContinueFlowEnsureDriver(channel, id);
                           });
}

void MicroPnpThing::ContinueFlowEnsureDriver(ChannelId channel, DeviceTypeId id) {
  if (driver_manager_.HasDriverFor(id)) {
    if (last_flow_.has_value() && last_flow_->channel == channel) {
      last_flow_->driver_was_cached = true;
      last_flow_->driver_requested = scheduler_.now();
      last_flow_->driver_received = scheduler_.now();
    }
    ActivateAndAdvertise(channel, id);
    return;
  }
  // Step 3: request the driver from the manager's anycast address (4).  The
  // endpoint owns the transaction: the reply (5) comes from the manager's
  // unicast address, hence match_any_source, and lossy links are covered by
  // retransmit-with-backoff up to the deadline.
  scheduler_.ScheduleAfter(
      SimTime::FromMillis(Jitter(config_.request_build_cpu_ms)), [this, channel, id] {
        if (last_flow_.has_value() && last_flow_->channel == channel) {
          last_flow_->driver_requested = scheduler_.now();
        }
        RequestOptions options;
        options.deadline_ms = config_.driver_request_deadline_ms;
        options.max_retransmits = config_.driver_request_retransmits;
        options.initial_backoff_ms = config_.driver_request_backoff_ms;
        options.match_any_source = true;
        // A (5) for a different device (e.g. a stale manager-side cache
        // entry) must not consume this transaction — drop it and keep
        // retransmitting.
        options.accept = [id](const Message& reply) {
          const auto* upload = reply.payload_as<DriverUploadPayload>();
          return upload != nullptr && upload->device_id == id;
        };
        endpoint_.SendRequest(
            ManagerAnycastAddress(), MessageType::kDriverInstallRequest, DeviceTargetPayload{id},
            {MessageType::kDriverUpload},
            [this, channel, id](Result<Message> reply) {
              OnDriverRequestComplete(channel, id, std::move(reply));
            },
            options);
      });
}

void MicroPnpThing::OnDriverRequestComplete(ChannelId channel, DeviceTypeId id,
                                            Result<Message> reply) {
  if (!reply.ok()) {
    ++driver_requests_failed_;
    MLOG(kWarning, "thing") << "driver request for " << FormatDeviceTypeId(id)
                            << " failed: " << reply.status().ToString();
    return;
  }
  // The accept predicate guarantees a matching device id here.
  const auto* upload = reply->payload_as<DriverUploadPayload>();
  if (last_flow_.has_value() && last_flow_->channel == channel) {
    last_flow_->driver_received = scheduler_.now();
  }
  InstallReceivedDriver(channel, id, upload->driver_image);
}

void MicroPnpThing::InstallReceivedDriver(ChannelId channel, DeviceTypeId id,
                                          std::vector<uint8_t> image_bytes) {
  // Step 4: parse, CRC-check and flash the image (Table 4 row 4).  Flash
  // writes carry high variance (page boundaries, erase cycles), which is
  // what drives Table 4's large install stddev.
  const double flash_ms = config_.flash_write_ms_per_byte *
                          static_cast<double>(image_bytes.size()) *
                          (1.0 + config_.flash_jitter_fraction * rng_.Uniform(-1.0, 1.0));
  const double install_ms = Jitter(config_.install_parse_cpu_ms) + flash_ms;
  scheduler_.ScheduleAfter(
      SimTime::FromMillis(install_ms), [this, channel, id, image_bytes = std::move(image_bytes)] {
        Result<DriverImage> image = DriverImage::Parse(ByteSpan(image_bytes.data(), image_bytes.size()));
        if (!image.ok()) {
          MLOG(kWarning, "thing") << "driver image rejected: " << image.status().ToString();
          return;
        }
        if (image->device_id != id) {
          MLOG(kWarning, "thing") << "driver image device mismatch";
          return;
        }
        Status installed = driver_manager_.InstallImage(*image);
        if (!installed.ok()) {
          MLOG(kWarning, "thing") << "driver install failed: " << installed.ToString();
          return;
        }
        if (channel != kInvalidChannel && controller_.identified(channel) == id) {
          ActivateAndAdvertise(channel, id);
        }
      });
}

void MicroPnpThing::ActivateAndAdvertise(ChannelId channel, DeviceTypeId id) {
  scheduler_.ScheduleAfter(
      SimTime::FromMillis(Jitter(config_.install_activate_cpu_ms)), [this, channel, id] {
        Status activated = driver_manager_.Activate(channel, id, controller_.bus(channel));
        if (!activated.ok()) {
          MLOG(kWarning, "thing") << "driver activation failed: " << activated.ToString();
          return;
        }
        DriverHost* host = driver_manager_.HostForChannel(channel);
        host->set_result_handler(
            [this, channel](const ProducedValue& v) { OnProduced(channel, v); });
        if (last_flow_.has_value() && last_flow_->channel == channel) {
          last_flow_->driver_installed = scheduler_.now();
        }
        // Step 5: unsolicited advertisement to all μPnP clients (Table 4
        // row 5, message (1) of Figure 10).
        scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.advert_build_cpu_ms)),
                                 [this, channel] {
                                   SendUnsolicitedAdvertisement();
                                   if (last_flow_.has_value() && last_flow_->channel == channel) {
                                     last_flow_->advertised = scheduler_.now();
                                   }
                                 });
      });
}

void MicroPnpThing::SendUnsolicitedAdvertisement() {
  endpoint_.SendOneWay(AllClientsGroup(node_->prefix()), MessageType::kUnsolicitedAdvertisement,
                       AdvertisementPayload{ConnectedPeripherals()});
  ++advertisements_sent_;
}

void MicroPnpThing::SendSolicitedAdvertisement(const Ip6Address& client, SequenceNumber seq) {
  // (3) echoes the discovery's sequence so the client's gather matches it.
  Message m = MakeAdvertisement(MessageType::kSolicitedAdvertisement, seq, ConnectedPeripherals());
  node_->SendUdp(client, kMicroPnpUdpPort, m.Serialize());
  ++advertisements_sent_;
}

// ------------------------------------------------------ message handling ----

void MicroPnpThing::OnDatagram(const Ip6Address& src, const Ip6Address& dst, uint16_t /*port*/,
                               const std::vector<uint8_t>& payload) {
  Result<Message> parsed = Message::Parse(ByteSpan(payload.data(), payload.size()));
  if (!parsed.ok()) {
    MLOG(kDebug, "thing") << "dropping malformed datagram from " << src.ToString();
    return;
  }
  const Message& m = *parsed;
  if (endpoint_.HandleReply(src, m)) {
    return;  // (5) driver uploads complete their endpoint transaction
  }
  switch (m.type) {
    case MessageType::kPeripheralDiscovery:
      HandleDiscovery(src, m, dst);
      break;
    case MessageType::kRead:
      HandleRead(src, m);
      break;
    case MessageType::kStream:
      HandleStream(src, m);
      break;
    case MessageType::kWrite:
      HandleWrite(src, m);
      break;
    case MessageType::kDriverDiscovery:
      HandleDriverDiscovery(src, m);
      break;
    case MessageType::kDriverRemovalRequest:
      HandleDriverRemoval(src, m);
      break;
    default:
      break;  // not addressed to Things
  }
}

void MicroPnpThing::HandleDiscovery(const Ip6Address& src, const Message& m,
                                    const Ip6Address& group) {
  // The destination group names the wanted peripheral type (Section 5.2.1).
  std::optional<DeviceTypeId> wanted = GroupPeripheral(group);
  if (!wanted.has_value()) {
    return;
  }
  bool match = (*wanted == kDeviceTypeAllPeripherals);
  for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
    if (controller_.identified(ch) == *wanted) {
      match = true;
    }
  }
  if (!match) {
    return;
  }
  // (3) solicited advertisement, unicast back to the discovering client.
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.advert_build_cpu_ms)),
                           [this, src, seq = m.sequence] {
                             SendSolicitedAdvertisement(src, seq);
                           });
}

void MicroPnpThing::HandleRead(const Ip6Address& src, const Message& m) {
  const auto* target = m.payload_as<DeviceTargetPayload>();
  // Locate the channel serving this device type.
  for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
    if (controller_.identified(ch) == target->device_id &&
        driver_manager_.HostForChannel(ch) != nullptr) {
      pending_reads_[ch].push_back(PendingRead{src, m.sequence});
      router_.Post(ch, Event::Of(kEventRead));
      return;
    }
  }
  // No such peripheral: the paper defines no negative response; we simply
  // stay silent, as a real Thing would, and the client's deadline fires.
}

void MicroPnpThing::OnProduced(ChannelId channel, const ProducedValue& value) {
  WireValue wire;
  wire.is_array = value.is_array;
  wire.scalar = value.scalar;
  wire.bytes = value.bytes;
  const std::optional<DeviceTypeId> id = controller_.identified(channel);
  if (!id.has_value()) {
    return;
  }

  auto& queue = pending_reads_[channel];
  if (!queue.empty()) {
    PendingRead pending = queue.front();
    queue.pop_front();
    ++reads_served_;
    scheduler_.ScheduleAfter(
        SimTime::FromMillis(Jitter(config_.reply_build_cpu_ms)), [this, pending, id, wire] {
          // (11) echoes the read's sequence.
          Message reply =
              MakeMessage(MessageType::kData, pending.sequence, ValuePayload{*id, wire});
          node_->SendUdp(pending.client, kMicroPnpUdpPort, reply.Serialize());
        });
    return;
  }
  StreamState& stream = streams_[channel];
  if (stream.active) {
    scheduler_.ScheduleAfter(
        SimTime::FromMillis(Jitter(config_.reply_build_cpu_ms)),
        [this, group = stream.group, id, wire] {
          endpoint_.SendOneWay(group, MessageType::kStreamData, ValuePayload{*id, wire});
        });
  }
}

void MicroPnpThing::HandleStream(const Ip6Address& src, const Message& m) {
  const auto* request = m.payload_as<StreamRequestPayload>();
  for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
    if (controller_.identified(ch) != request->device_id ||
        driver_manager_.HostForChannel(ch) == nullptr) {
      continue;
    }
    StreamState& stream = streams_[ch];
    if (request->period_ms == 0) {
      // Stream shutdown: notify the group with (15) closed.
      if (stream.active) {
        stream.active = false;
        ++stream.generation;
        Message closed = MakeDeviceMessage(MessageType::kStreamClosed, m.sequence,
                                           request->device_id);
        node_->SendUdp(stream.group, kMicroPnpUdpPort, closed.Serialize());
      }
      return;
    }
    stream.active = true;
    stream.period_ms = request->period_ms;
    stream.group = PeripheralGroup(node_->prefix(), request->device_id);
    const uint64_t generation = ++stream.generation;
    // (13) established: tell the client which group carries the values.
    Message established =
        MakeMessage(MessageType::kStreamEstablished, m.sequence,
                    StreamEstablishedPayload{request->device_id, stream.group});
    node_->SendUdp(src, kMicroPnpUdpPort, established.Serialize());
    // Periodic reads drive (14) data messages.
    scheduler_.ScheduleAfter(SimTime::FromMillis(stream.period_ms),
                             [this, ch, generation] { StreamTick(ch, generation); });
    return;
  }
}

void MicroPnpThing::StreamTick(ChannelId channel, uint64_t generation) {
  StreamState& stream = streams_[channel];
  if (!stream.active || stream.generation != generation) {
    return;
  }
  router_.Post(channel, Event::Of(kEventRead));
  scheduler_.ScheduleAfter(SimTime::FromMillis(stream.period_ms),
                           [this, channel, generation] { StreamTick(channel, generation); });
}

void MicroPnpThing::HandleWrite(const Ip6Address& src, const Message& m) {
  const auto* write = m.payload_as<WritePayload>();
  uint8_t status = 1;  // not found
  for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
    if (controller_.identified(ch) == write->device_id &&
        driver_manager_.HostForChannel(ch) != nullptr) {
      router_.Post(ch, Event::Of(kEventWrite, write->value));
      ++writes_served_;
      status = 0;
      break;
    }
  }
  // (17) acknowledgement confirming the establishment of the new value.
  scheduler_.ScheduleAfter(
      SimTime::FromMillis(Jitter(config_.reply_build_cpu_ms)),
      [this, src, seq = m.sequence, device = write->device_id, status] {
        Message ack =
            MakeMessage(MessageType::kWriteAck, seq, StatusAckPayload{device, status});
        node_->SendUdp(src, kMicroPnpUdpPort, ack.Serialize());
      });
}

void MicroPnpThing::HandleDriverDiscovery(const Ip6Address& src, const Message& m) {
  Message reply = MakeMessage(MessageType::kDriverAdvertisement, m.sequence,
                              DriverAdvertisementPayload{driver_manager_.InstalledDrivers()});
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.reply_build_cpu_ms)),
                           [this, src, reply] {
                             node_->SendUdp(src, kMicroPnpUdpPort, reply.Serialize());
                           });
}

void MicroPnpThing::HandleDriverRemoval(const Ip6Address& src, const Message& m) {
  const auto* target = m.payload_as<DeviceTargetPayload>();
  Status removed = driver_manager_.RemoveImage(target->device_id);
  Message ack = MakeMessage(MessageType::kDriverRemovalAck, m.sequence,
                            StatusAckPayload{target->device_id,
                                             static_cast<uint8_t>(removed.ok() ? 0 : 1)});
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.reply_build_cpu_ms)),
                           [this, src, ack] {
                             node_->SendUdp(src, kMicroPnpUdpPort, ack.Serialize());
                           });
}

}  // namespace micropnp
