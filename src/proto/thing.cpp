#include "src/proto/thing.h"

#include <algorithm>

#include "src/common/crc.h"
#include "src/common/logging.h"
#include "src/model/device_model.h"

namespace micropnp {

MicroPnpThing::MicroPnpThing(Scheduler& scheduler, NetNode* node,
                             const ControlBoardConfig& board_config, uint64_t seed,
                             const ThingConfig& config, SharedDecodeCache* decode_cache)
    : scheduler_(scheduler),
      node_(node),
      config_(config),
      rng_(seed),
      driver_manager_(scheduler, router_, decode_cache),
      controller_(scheduler, board_config, rng_),
      endpoint_(scheduler, node) {
  controller_.set_change_listener([this](ChannelId ch, DeviceTypeId id, bool connected) {
    OnPeripheralChange(ch, id, connected);
  });
  node_->BindUdp(kMicroPnpUdpPort,
                 [this](const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                        const std::vector<uint8_t>& payload) { OnDatagram(src, dst, port, payload); });
}

double MicroPnpThing::Jitter(double nominal_ms) {
  return nominal_ms * (1.0 + config_.cpu_jitter_fraction * rng_.Uniform(-1.0, 1.0));
}

Status MicroPnpThing::Plug(ChannelId channel, Peripheral* peripheral) {
  PlugFlowMarks marks;
  marks.channel = channel;
  marks.device = peripheral != nullptr ? peripheral->type_id() : 0;
  marks.plugged = scheduler_.now();
  MICROPNP_RETURN_IF_ERROR(controller_.Plug(channel, peripheral));
  last_flow_ = marks;
  return OkStatus();
}

Status MicroPnpThing::Unplug(ChannelId channel) { return controller_.Unplug(channel); }

Status MicroPnpThing::PreinstallDriver(const DriverImage& image) {
  return driver_manager_.InstallImage(image);
}

std::vector<AdvertisedPeripheral> MicroPnpThing::ConnectedPeripherals() const {
  std::vector<AdvertisedPeripheral> out;
  auto& self = const_cast<MicroPnpThing&>(*this);
  for (ChannelId ch = 0; ch < self.controller_.num_channels(); ++ch) {
    std::optional<DeviceTypeId> id = self.controller_.identified(ch);
    if (!id.has_value()) {
      continue;
    }
    AdvertisedPeripheral p;
    p.type = *id;
    p.info.AddU8(TlvType::kChannel, ch);
    Peripheral* peripheral = self.controller_.peripheral(ch);
    if (peripheral != nullptr) {
      p.info.AddString(TlvType::kFriendlyName, peripheral->name());
      p.info.AddU8(TlvType::kBusKind, static_cast<uint8_t>(peripheral->bus()));
    }
    // Model facets from the installed driver's handled events, so a gateway
    // can type this peripheral without ever having seen its driver.
    const std::vector<EventId> events = self.driver_manager_.HandledEventsFor(*id);
    if (!events.empty()) {
      p.info.AddU16(TlvType::kModelFacets, FacetsFromHandledEvents(events).Encode());
    }
    out.push_back(std::move(p));
  }
  return out;
}

// --------------------------------------------------------- plug-in flow ----

void MicroPnpThing::OnPeripheralChange(ChannelId channel, DeviceTypeId id, bool connected) {
  FlowState& flow = flows_[channel];
  ++flow.generation;  // stale request completions and retries die here
  flow.retry_delay_ms = 0.0;
  flow.retries = 0;
  ResetTrickle();  // any peripheral change restarts the re-advertisement ladder

  if (!connected) {
    StreamState& stream = streams_[channel];
    if (stream.active) {
      // Subscribers would otherwise wait until their deadlines:
      // disconnect-while-streaming notifies the group with (15).
      Message closed = MakeDeviceMessage(MessageType::kStreamClosed, 0, id);
      node_->SendUdp(stream.group, kMicroPnpUdpPort, closed.Serialize());
    }
    stream.active = false;
    stream.generation++;
    pending_reads_[channel].clear();
    if (driver_manager_.HostForChannel(channel) != nullptr) {
      (void)driver_manager_.Deactivate(channel);
    }
    // Leave the peripheral group only when no other connected channel still
    // serves this device type — otherwise the Thing goes deaf to
    // discovery/read for the remaining peripheral.
    bool type_still_served = false;
    for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
      if (ch != channel && controller_.identified(ch) == id) {
        type_still_served = true;
        break;
      }
    }
    if (!type_still_served) {
      node_->LeaveGroup(PeripheralGroup(node_->prefix(), id));
    }
    // Unsolicited advertisement reflecting the new peripheral set
    // (Section 5.2.1: generated on connect *or* disconnect).
    scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.advert_build_cpu_ms)),
                             [this] { SendUnsolicitedAdvertisement(); });
    return;
  }

  if (last_flow_.has_value() && last_flow_->channel == channel) {
    last_flow_->device = id;
    last_flow_->identified = scheduler_.now();
  }
  // Step 1: derive the peripheral's multicast address (Table 4 row 1).
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.generate_address_cpu_ms)),
                           [this, channel, id] {
                             if (last_flow_.has_value() && last_flow_->channel == channel) {
                               last_flow_->address_generated = scheduler_.now();
                             }
                             ContinueFlowJoinGroup(channel, id);
                           });
}

void MicroPnpThing::ContinueFlowJoinGroup(ChannelId channel, DeviceTypeId id) {
  // Step 2: join the peripheral group (Table 4 row 2).
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.join_group_cpu_ms)),
                           [this, channel, id] {
                             node_->JoinGroup(PeripheralGroup(node_->prefix(), id));
                             if (last_flow_.has_value() && last_flow_->channel == channel) {
                               last_flow_->group_joined = scheduler_.now();
                             }
                             ContinueFlowEnsureDriver(channel, id);
                           });
}

void MicroPnpThing::ContinueFlowEnsureDriver(ChannelId channel, DeviceTypeId id) {
  if (driver_manager_.HasDriverFor(id)) {
    if (driver_manager_.HostForChannel(channel) != nullptr) {
      return;  // a late (4) retry landed after the channel was fully plumbed
    }
    if (last_flow_.has_value() && last_flow_->channel == channel) {
      last_flow_->driver_was_cached = true;
      last_flow_->driver_requested = scheduler_.now();
      last_flow_->driver_received = scheduler_.now();
    }
    ActivateAndAdvertise(channel, id);
    return;
  }
  // Step 3: request the driver from the manager's anycast address (4).  The
  // endpoint owns the transaction: the reply — an (18) offer, or a legacy
  // monolithic (5) — comes from the manager's unicast address, hence
  // match_any_source, and lossy links are covered by retransmit-with-backoff
  // up to the deadline.
  scheduler_.ScheduleAfter(
      SimTime::FromMillis(Jitter(config_.request_build_cpu_ms)), [this, channel, id] {
        if (controller_.identified(channel) != id) {
          return;  // unplugged while the request was being built
        }
        if (last_flow_.has_value() && last_flow_->channel == channel) {
          last_flow_->driver_requested = scheduler_.now();
        }
        RequestOptions options;
        options.deadline_ms = config_.driver_request_deadline_ms;
        options.max_retransmits = config_.driver_request_retransmits;
        options.initial_backoff_ms = config_.driver_request_backoff_ms;
        options.backoff_multiplier = config_.driver_request_backoff_multiplier;
        options.match_any_source = true;
        // A reply for a different device (e.g. a stale manager-side cache
        // entry) must not consume this transaction — drop it and keep
        // retransmitting.
        options.accept = [id](const Message& reply) {
          if (const auto* offer = reply.payload_as<DriverOfferPayload>()) {
            return offer->device_id == id;
          }
          const auto* upload = reply.payload_as<DriverUploadPayload>();
          return upload != nullptr && upload->device_id == id;
        };
        // The (4) carries the resume state of any held partial (or full)
        // image: the manager streams only the gaps, or short-circuits to
        // "already up to date" with zero chunks.
        DriverRequestPayload request;
        request.device_id = id;
        auto held = transfers_.find(id);
        if (held != transfers_.end() && held->second.have_count > 0) {
          DriverTransfer& t = held->second;
          t.channel = channel;
          // Reaching here means no driver is installed for `id`, so even a
          // complete cached image needs (re-)installation once validated.
          t.install_started = false;
          request.cached_crc = t.crc;
          request.cached_chunk_count = t.chunk_count;
          request.have_bitmap.assign((t.chunk_count + 7u) / 8u, 0);
          for (uint16_t i = 0; i < t.chunk_count; ++i) {
            if (t.have[i]) {
              request.have_bitmap[i / 8u] |= static_cast<uint8_t>(1u << (i % 8u));
            }
          }
        }
        const uint64_t flow_generation = flows_[channel].generation;
        endpoint_.SendRequest(
            ManagerAnycastAddress(), MessageType::kDriverInstallRequest, std::move(request),
            {MessageType::kDriverUploadOffer, MessageType::kDriverUpload},
            [this, channel, id, flow_generation](Result<Message> reply) {
              OnDriverRequestComplete(channel, id, flow_generation, std::move(reply));
            },
            options);
      });
}

void MicroPnpThing::OnDriverRequestComplete(ChannelId channel, DeviceTypeId id,
                                            uint64_t flow_generation, Result<Message> reply) {
  if (flows_[channel].generation != flow_generation) {
    return;  // the channel was unplugged (or re-plugged) since this (4) went out
  }
  if (!reply.ok()) {
    ++driver_requests_failed_;
    MLOG(kWarning, "thing") << "driver request for " << FormatDeviceTypeId(id)
                            << " failed: " << reply.status().ToString();
    // The manager (or the path to it) may heal: re-arm with capped
    // exponential backoff rather than staying identified-but-driverless
    // forever.  Any chunks that did arrive are kept and resumed.
    ScheduleDriverRetry(channel, id);
    return;
  }
  if (const auto* offer = reply->payload_as<DriverOfferPayload>()) {
    ProcessOffer(channel, id, *offer);
    return;
  }
  // Legacy monolithic (5): the whole image in one datagram.
  const auto* upload = reply->payload_as<DriverUploadPayload>();
  if (last_flow_.has_value() && last_flow_->channel == channel) {
    last_flow_->driver_received = scheduler_.now();
  }
  InstallReceivedDriver(channel, id, upload->driver_image);
}

void MicroPnpThing::ScheduleDriverRetry(ChannelId channel, DeviceTypeId id) {
  FlowState& flow = flows_[channel];
  if (flow.retries >= config_.driver_retry_limit) {
    MLOG(kWarning, "thing") << "driver retry budget exhausted for " << FormatDeviceTypeId(id);
    return;
  }
  ++flow.retries;
  ++driver_request_retries_;
  flow.retry_delay_ms = flow.retry_delay_ms <= 0.0
                            ? config_.driver_retry_initial_ms
                            : std::min(flow.retry_delay_ms * 2.0, config_.driver_retry_max_ms);
  const uint64_t flow_generation = flow.generation;
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(flow.retry_delay_ms)),
                           [this, channel, id, flow_generation] {
                             if (flows_[channel].generation != flow_generation ||
                                 controller_.identified(channel) != id) {
                               return;
                             }
                             ContinueFlowEnsureDriver(channel, id);
                           });
}

// --------------------------------------------- chunked driver transfer ----

void MicroPnpThing::ProcessOffer(ChannelId channel, DeviceTypeId id,
                                 const DriverOfferPayload& offer) {
  DriverTransfer& t = transfers_[id];
  if (t.crc != offer.image_crc || t.chunk_count != offer.chunk_count) {
    // First offer, or the repository image changed since our cache was
    // built: what we hold is useless, restart from scratch.
    ResetTransfer(t, offer.image_crc, offer.chunk_count);
  }
  t.channel = channel;
  t.offer_seen = true;
  if ((offer.flags & kDriverOfferUpToDate) != 0) {
    if (t.complete) {
      // Our cached image is current: install from the local copy.  Zero
      // chunks crossed the network for this re-plug.
      if (!t.install_started) {
        t.install_started = true;
        if (last_flow_.has_value() && last_flow_->channel == channel) {
          last_flow_->driver_was_cached = true;
          last_flow_->driver_received = scheduler_.now();
        }
        InstallReceivedDriver(channel, id, AssembleTransfer(t));
      } else if (driver_manager_.HasDriverFor(id)) {
        // Another channel's flow already installed this image (two
        // same-type peripherals plugged concurrently): this channel only
        // needs activation.
        if (driver_manager_.HostForChannel(channel) == nullptr) {
          ActivateAndAdvertise(channel, id);
        }
      } else {
        // The install is still in flight (flash write): retry later; by
        // then the cached-driver fast path activates this channel.
        ScheduleDriverRetry(channel, id);
      }
      return;
    }
    // The manager judged us complete but we are not (cache lost between
    // the (4) and its answer): drop the claim and request again.
    transfers_.erase(id);
    ScheduleDriverRetry(channel, id);
    return;
  }
  if (t.complete) {
    // All chunks arrived (and verified) before the offer did — reordering.
    if (!t.install_started) {
      t.install_started = true;
      if (last_flow_.has_value() && last_flow_->channel == channel) {
        last_flow_->driver_received = scheduler_.now();
      }
      InstallReceivedDriver(channel, id, AssembleTransfer(t));
    } else if (driver_manager_.HasDriverFor(id)) {
      if (driver_manager_.HostForChannel(channel) == nullptr) {
        ActivateAndAdvertise(channel, id);  // installed by a sibling channel's flow
      }
    } else {
      ScheduleDriverRetry(channel, id);  // sibling's install still in flight
    }
    return;
  }
  // Chunks are streaming (or already lost): arm the gap-repair NACK timer
  // with a fresh budget for this attempt.
  t.nacks_sent = 0;
  t.nack_delay_ms = config_.chunk_nack_delay_ms;
  ArmNackTimer(id);
}

void MicroPnpThing::HandleDriverChunk(const Message& m) {
  const auto* chunk = m.payload_as<DriverChunkPayload>();
  ++chunks_received_;
  DriverTransfer& t = transfers_[chunk->device_id];
  if (t.crc != chunk->image_crc || t.chunk_count != chunk->chunk_count) {
    if (t.complete) {
      return;  // a stale chunk must not wipe the verified resume cache
    }
    // Latest image wins (the repository was replaced mid-transfer); an (18)
    // offer for the new CRC follows via the (4) machinery.
    ResetTransfer(t, chunk->image_crc, chunk->chunk_count);
  }
  if (t.have[chunk->chunk_index]) {
    ++duplicate_chunks_;
    return;
  }
  t.chunks[chunk->chunk_index] = chunk->data;
  t.have[chunk->chunk_index] = true;
  ++t.have_count;
  MaybeCompleteTransfer(chunk->device_id, t);
  // A chunk carries everything needed to detect gaps (CRC + chunk count),
  // so repair does not wait for the offer — at high loss the offer and the
  // chunk stream fail independently, and whichever arrives first drives
  // the transfer forward.
  if (!t.complete && !t.nack_armed) {
    ArmNackTimer(chunk->device_id);
  }
}

void MicroPnpThing::ResetTransfer(DriverTransfer& t, uint32_t crc, uint16_t chunk_count) {
  t.crc = crc;
  t.chunk_count = chunk_count;
  t.chunks.assign(chunk_count, {});
  t.have.assign(chunk_count, false);
  t.have_count = 0;
  t.offer_seen = false;
  t.complete = false;
  t.install_started = false;
  t.nack_armed = false;
  t.nacks_sent = 0;
  t.nack_delay_ms = config_.chunk_nack_delay_ms;
  ++t.generation;  // armed NACK timers for the old image die silently
}

void MicroPnpThing::MaybeCompleteTransfer(DeviceTypeId id, DriverTransfer& t) {
  if (t.complete || t.chunk_count == 0 || t.have_count != t.chunk_count) {
    return;
  }
  std::vector<uint8_t> image = AssembleTransfer(t);
  if (Crc32(ByteSpan(image.data(), image.size())) != t.crc) {
    MLOG(kWarning, "thing") << "assembled driver image failed CRC; restarting transfer";
    const ChannelId channel = t.channel;
    ResetTransfer(t, 0, 0);
    if (channel != kInvalidChannel && controller_.identified(channel).has_value()) {
      ScheduleDriverRetry(channel, *controller_.identified(channel));
    }
    return;
  }
  t.complete = true;
  t.nack_armed = false;
  ++t.generation;  // cancels any armed NACK tick
  ++transfers_completed_;
  // A transfer created by chunks alone (the offer never arrived) has no
  // channel binding yet: find the channel serving this device type.
  if (t.channel == kInvalidChannel || controller_.identified(t.channel) != id) {
    t.channel = ChannelFor(id);
  }
  if (t.channel == kInvalidChannel) {
    return;  // peripheral gone; the verified cache waits for the next plug
  }
  if (!t.install_started) {
    t.install_started = true;
    if (last_flow_.has_value() && last_flow_->channel == t.channel) {
      last_flow_->driver_received = scheduler_.now();
    }
    InstallReceivedDriver(t.channel, id, std::move(image));
  }
}

ChannelId MicroPnpThing::ChannelFor(DeviceTypeId id) {
  for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
    if (controller_.identified(ch) == id) {
      return ch;
    }
  }
  return kInvalidChannel;
}

std::vector<uint8_t> MicroPnpThing::AssembleTransfer(const DriverTransfer& t) const {
  size_t total = 0;
  for (const std::vector<uint8_t>& c : t.chunks) {
    total += c.size();
  }
  std::vector<uint8_t> image;
  image.reserve(total);
  for (const std::vector<uint8_t>& c : t.chunks) {
    image.insert(image.end(), c.begin(), c.end());
  }
  return image;
}

void MicroPnpThing::ArmNackTimer(DeviceTypeId id) {
  DriverTransfer& t = transfers_[id];
  if (t.complete || t.nack_armed) {
    return;
  }
  t.nack_armed = true;
  const uint64_t generation = t.generation;
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(t.nack_delay_ms)),
                           [this, id, generation] { NackTick(id, generation); });
}

void MicroPnpThing::NackTick(DeviceTypeId id, uint64_t generation) {
  auto it = transfers_.find(id);
  if (it == transfers_.end() || it->second.generation != generation || it->second.complete) {
    return;
  }
  DriverTransfer& t = it->second;
  t.nack_armed = false;
  if (t.nacks_sent >= config_.chunk_nack_budget) {
    // Gap repair exhausted its budget; fall back to a fresh (4), which
    // resumes from the bitmap under the capped-backoff retry policy.
    if (t.channel == kInvalidChannel || controller_.identified(t.channel) != id) {
      t.channel = ChannelFor(id);
    }
    if (t.channel != kInvalidChannel) {
      ScheduleDriverRetry(t.channel, id);
    }
    return;
  }
  // (20) selective-repeat: ask only for the gaps (bounded by the payload's
  // 255-index clamp; a following NACK collects the remainder).
  DriverChunkRequestPayload nack;
  nack.device_id = id;
  nack.image_crc = t.crc;
  for (uint16_t i = 0; i < t.chunk_count && nack.chunk_indices.size() < 255; ++i) {
    if (!t.have[i]) {
      nack.chunk_indices.push_back(i);
    }
  }
  if (nack.chunk_indices.empty()) {
    return;  // nothing missing; the completion path owns the rest
  }
  ++t.nacks_sent;
  ++chunk_nacks_sent_;
  endpoint_.SendOneWay(ManagerAnycastAddress(), MessageType::kDriverChunkRequest,
                       std::move(nack));
  t.nack_delay_ms = std::min(t.nack_delay_ms * 2.0, config_.chunk_nack_max_delay_ms);
  ArmNackTimer(id);
}

// ----------------------------------------------------- install/advertise ----

void MicroPnpThing::InstallReceivedDriver(ChannelId channel, DeviceTypeId id,
                                          std::vector<uint8_t> image_bytes) {
  // Step 4: parse, CRC-check and flash the image (Table 4 row 4).  Flash
  // writes carry high variance (page boundaries, erase cycles), which is
  // what drives Table 4's large install stddev.
  const double flash_ms = config_.flash_write_ms_per_byte *
                          static_cast<double>(image_bytes.size()) *
                          (1.0 + config_.flash_jitter_fraction * rng_.Uniform(-1.0, 1.0));
  const double install_ms = Jitter(config_.install_parse_cpu_ms) + flash_ms;
  scheduler_.ScheduleAfter(
      SimTime::FromMillis(install_ms), [this, channel, id, image_bytes = std::move(image_bytes)] {
        Result<DriverImage> image = DriverImage::Parse(ByteSpan(image_bytes.data(), image_bytes.size()));
        if (!image.ok()) {
          MLOG(kWarning, "thing") << "driver image rejected: " << image.status().ToString();
          return;
        }
        if (image->device_id != id) {
          MLOG(kWarning, "thing") << "driver image device mismatch";
          return;
        }
        Status installed = driver_manager_.InstallImage(*image);
        if (!installed.ok()) {
          MLOG(kWarning, "thing") << "driver install failed: " << installed.ToString();
          return;
        }
        // Activate every channel waiting on this image — two same-type
        // peripherals plugged concurrently share one transfer, and only one
        // channel's flow carried the install.
        for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
          if (controller_.identified(ch) == id && driver_manager_.HostForChannel(ch) == nullptr) {
            ActivateAndAdvertise(ch, id);
          }
        }
      });
}

void MicroPnpThing::ActivateAndAdvertise(ChannelId channel, DeviceTypeId id) {
  scheduler_.ScheduleAfter(
      SimTime::FromMillis(Jitter(config_.install_activate_cpu_ms)), [this, channel, id] {
        Status activated = driver_manager_.Activate(channel, id, controller_.bus(channel));
        if (!activated.ok()) {
          MLOG(kWarning, "thing") << "driver activation failed: " << activated.ToString();
          return;
        }
        DriverHost* host = driver_manager_.HostForChannel(channel);
        host->set_result_handler(
            [this, channel](const ProducedValue& v) { OnProduced(channel, v); });
        if (last_flow_.has_value() && last_flow_->channel == channel) {
          last_flow_->driver_installed = scheduler_.now();
        }
        // Step 5: unsolicited advertisement to all μPnP clients (Table 4
        // row 5, message (1) of Figure 10).
        scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.advert_build_cpu_ms)),
                                 [this, channel] {
                                   SendUnsolicitedAdvertisement();
                                   if (last_flow_.has_value() && last_flow_->channel == channel) {
                                     last_flow_->advertised = scheduler_.now();
                                   }
                                 });
      });
}

void MicroPnpThing::SendUnsolicitedAdvertisement() {
  endpoint_.SendOneWay(AllClientsGroup(node_->prefix()), MessageType::kUnsolicitedAdvertisement,
                       AdvertisementPayload{ConnectedPeripherals()});
  ++advertisements_sent_;
}

void MicroPnpThing::SendSolicitedAdvertisement(const Ip6Address& client, SequenceNumber seq) {
  // (3) echoes the discovery's sequence so the client's gather matches it.
  Message m = MakeAdvertisement(MessageType::kSolicitedAdvertisement, seq, ConnectedPeripherals());
  node_->SendUdp(client, kMicroPnpUdpPort, m.Serialize());
  ++advertisements_sent_;
  // The neighbourhood just heard our inventory: suppress the next trickle
  // tick (the interval keeps doubling regardless).
  advert_suppressed_ = true;
}

// -------------------------------------------------- trickle re-advertise ----

void MicroPnpThing::ResetTrickle() {
  if (config_.readvertise_min_ms <= 0.0) {
    return;  // re-advertisement disabled
  }
  advert_interval_ms_ = config_.readvertise_min_ms;
  advert_suppressed_ = false;
  const uint64_t generation = ++advert_generation_;
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(advert_interval_ms_)),
                           [this, generation] { TrickleTick(generation); });
}

void MicroPnpThing::TrickleTick(uint64_t generation) {
  if (generation != advert_generation_) {
    return;  // the ladder restarted after this tick was scheduled
  }
  if (advert_suppressed_) {
    advert_suppressed_ = false;
    ++readvertisements_suppressed_;
  } else {
    SendUnsolicitedAdvertisement();
    ++readvertisements_sent_;
  }
  if (advert_interval_ms_ >= config_.readvertise_max_ms) {
    return;  // ladder complete: dormant until the next peripheral change
  }
  advert_interval_ms_ = std::min(advert_interval_ms_ * 2.0, config_.readvertise_max_ms);
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(advert_interval_ms_)),
                           [this, generation] { TrickleTick(generation); });
}

// ------------------------------------------------------ message handling ----

void MicroPnpThing::OnDatagram(const Ip6Address& src, const Ip6Address& dst, uint16_t /*port*/,
                               const std::vector<uint8_t>& payload) {
  Result<Message> parsed = Message::Parse(ByteSpan(payload.data(), payload.size()));
  if (!parsed.ok()) {
    MLOG(kDebug, "thing") << "dropping malformed datagram from " << src.ToString();
    return;
  }
  const Message& m = *parsed;
  if (endpoint_.HandleReply(src, m)) {
    return;  // (18) offers / legacy (5) uploads complete their transaction
  }
  switch (m.type) {
    case MessageType::kPeripheralDiscovery:
      HandleDiscovery(src, m, dst);
      break;
    case MessageType::kRead:
      HandleRead(src, m);
      break;
    case MessageType::kStream:
      HandleStream(src, m);
      break;
    case MessageType::kWrite:
      HandleWrite(src, m);
      break;
    case MessageType::kDriverDiscovery:
      HandleDriverDiscovery(src, m);
      break;
    case MessageType::kDriverRemovalRequest:
      HandleDriverRemoval(src, m);
      break;
    case MessageType::kDriverChunk:
      HandleDriverChunk(m);
      break;
    default:
      break;  // not addressed to Things
  }
}

void MicroPnpThing::HandleDiscovery(const Ip6Address& src, const Message& m,
                                    const Ip6Address& group) {
  // The destination group names the wanted peripheral type (Section 5.2.1).
  std::optional<DeviceTypeId> wanted = GroupPeripheral(group);
  if (!wanted.has_value()) {
    return;
  }
  bool match = (*wanted == kDeviceTypeAllPeripherals);
  for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
    if (controller_.identified(ch) == *wanted) {
      match = true;
    }
  }
  if (!match) {
    return;
  }
  // (3) solicited advertisement, unicast back to the discovering client.
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.advert_build_cpu_ms)),
                           [this, src, seq = m.sequence] {
                             SendSolicitedAdvertisement(src, seq);
                           });
}

void MicroPnpThing::HandleRead(const Ip6Address& src, const Message& m) {
  const auto* target = m.payload_as<DeviceTargetPayload>();
  // Locate the channel serving this device type.
  for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
    if (controller_.identified(ch) == target->device_id &&
        driver_manager_.HostForChannel(ch) != nullptr) {
      pending_reads_[ch].push_back(PendingRead{src, m.sequence});
      router_.Post(ch, Event::Of(kEventRead));
      return;
    }
  }
  // No such peripheral: the paper defines no negative response; we simply
  // stay silent, as a real Thing would, and the client's deadline fires.
}

void MicroPnpThing::OnProduced(ChannelId channel, const ProducedValue& value) {
  WireValue wire;
  wire.is_array = value.is_array;
  wire.scalar = value.scalar;
  wire.bytes = value.bytes;
  const std::optional<DeviceTypeId> id = controller_.identified(channel);
  if (!id.has_value()) {
    return;
  }

  auto& queue = pending_reads_[channel];
  if (!queue.empty()) {
    PendingRead pending = queue.front();
    queue.pop_front();
    ++reads_served_;
    scheduler_.ScheduleAfter(
        SimTime::FromMillis(Jitter(config_.reply_build_cpu_ms)), [this, pending, id, wire] {
          // (11) echoes the read's sequence.
          Message reply =
              MakeMessage(MessageType::kData, pending.sequence, ValuePayload{*id, wire});
          node_->SendUdp(pending.client, kMicroPnpUdpPort, reply.Serialize());
        });
    return;
  }
  StreamState& stream = streams_[channel];
  if (stream.active) {
    scheduler_.ScheduleAfter(
        SimTime::FromMillis(Jitter(config_.reply_build_cpu_ms)),
        [this, group = stream.group, id, wire] {
          endpoint_.SendOneWay(group, MessageType::kStreamData, ValuePayload{*id, wire});
        });
  }
}

void MicroPnpThing::HandleStream(const Ip6Address& src, const Message& m) {
  const auto* request = m.payload_as<StreamRequestPayload>();
  if (request->period_ms == 0) {
    // Stream shutdown.  Stop is idempotent: a client whose first (15) was
    // lost retransmits the (12), and an unanswered retransmit would stall
    // it until its deadline — so a reply is always produced, active stream
    // or not.
    for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
      if (controller_.identified(ch) != request->device_id) {
        continue;
      }
      StreamState& stream = streams_[ch];
      if (stream.active) {
        stream.active = false;
        ++stream.generation;
        // (15) to the group: every subscriber learns the stream is gone.
        Message closed = MakeDeviceMessage(MessageType::kStreamClosed, m.sequence,
                                           request->device_id);
        node_->SendUdp(stream.group, kMicroPnpUdpPort, closed.Serialize());
      }
    }
    // Direct reply to the requester (it may no longer — or never — be a
    // group member); its endpoint drops the group copy as a duplicate.
    Message closed = MakeDeviceMessage(MessageType::kStreamClosed, m.sequence,
                                       request->device_id);
    node_->SendUdp(src, kMicroPnpUdpPort, closed.Serialize());
    return;
  }
  for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
    if (controller_.identified(ch) != request->device_id ||
        driver_manager_.HostForChannel(ch) == nullptr) {
      continue;
    }
    StreamState& stream = streams_[ch];
    stream.active = true;
    stream.period_ms = request->period_ms;
    stream.group = PeripheralGroup(node_->prefix(), request->device_id);
    const uint64_t generation = ++stream.generation;
    // (13) established: tell the client which group carries the values.
    Message established =
        MakeMessage(MessageType::kStreamEstablished, m.sequence,
                    StreamEstablishedPayload{request->device_id, stream.group});
    node_->SendUdp(src, kMicroPnpUdpPort, established.Serialize());
    // Periodic reads drive (14) data messages.
    scheduler_.ScheduleAfter(SimTime::FromMillis(stream.period_ms),
                             [this, ch, generation] { StreamTick(ch, generation); });
    return;
  }
}

void MicroPnpThing::StreamTick(ChannelId channel, uint64_t generation) {
  StreamState& stream = streams_[channel];
  if (!stream.active || stream.generation != generation) {
    return;
  }
  router_.Post(channel, Event::Of(kEventRead));
  scheduler_.ScheduleAfter(SimTime::FromMillis(stream.period_ms),
                           [this, channel, generation] { StreamTick(channel, generation); });
}

void MicroPnpThing::HandleWrite(const Ip6Address& src, const Message& m) {
  const auto* write = m.payload_as<WritePayload>();
  uint8_t status = 1;  // not found
  for (ChannelId ch = 0; ch < controller_.num_channels(); ++ch) {
    if (controller_.identified(ch) == write->device_id &&
        driver_manager_.HostForChannel(ch) != nullptr) {
      router_.Post(ch, Event::Of(kEventWrite, write->value));
      ++writes_served_;
      status = 0;
      break;
    }
  }
  // (17) acknowledgement confirming the establishment of the new value.
  scheduler_.ScheduleAfter(
      SimTime::FromMillis(Jitter(config_.reply_build_cpu_ms)),
      [this, src, seq = m.sequence, device = write->device_id, status] {
        Message ack =
            MakeMessage(MessageType::kWriteAck, seq, StatusAckPayload{device, status});
        node_->SendUdp(src, kMicroPnpUdpPort, ack.Serialize());
      });
}

void MicroPnpThing::HandleDriverDiscovery(const Ip6Address& src, const Message& m) {
  Message reply = MakeMessage(MessageType::kDriverAdvertisement, m.sequence,
                              DriverAdvertisementPayload{driver_manager_.InstalledDrivers()});
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.reply_build_cpu_ms)),
                           [this, src, reply] {
                             node_->SendUdp(src, kMicroPnpUdpPort, reply.Serialize());
                           });
}

void MicroPnpThing::HandleDriverRemoval(const Ip6Address& src, const Message& m) {
  const auto* target = m.payload_as<DeviceTargetPayload>();
  Status removed = driver_manager_.RemoveImage(target->device_id);
  Message ack = MakeMessage(MessageType::kDriverRemovalAck, m.sequence,
                            StatusAckPayload{target->device_id,
                                             static_cast<uint8_t>(removed.ok() ? 0 : 1)});
  scheduler_.ScheduleAfter(SimTime::FromMillis(Jitter(config_.reply_build_cpu_ms)),
                           [this, src, ack] {
                             node_->SendUdp(src, kMicroPnpUdpPort, ack.Serialize());
                           });
}

}  // namespace micropnp
