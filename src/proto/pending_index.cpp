#include "src/proto/pending_index.h"

#include <algorithm>
#include <bit>

namespace micropnp {

PendingIndex::PendingIndex(size_t max_entries) {
  const size_t capacity = std::bit_ceil(std::max<size_t>(16, max_entries * 2));
  cells_.resize(capacity);
  mask_ = capacity - 1;
}

size_t PendingIndex::Probe(const Ip6Address& peer, uint16_t sequence) const {
  size_t i = Home(peer, sequence);
  while (cells_[i].value != 0 &&
         (cells_[i].sequence != sequence || cells_[i].peer != peer)) {
    i = (i + 1) & mask_;
  }
  return i;
}

bool PendingIndex::Insert(const Ip6Address& peer, uint16_t sequence, uint64_t value) {
  if (value == 0 || size_ >= cells_.size() - 1) {
    return false;  // keep at least one empty cell so probes terminate
  }
  const size_t i = Probe(peer, sequence);
  if (cells_[i].value != 0) {
    return false;  // already present
  }
  cells_[i] = Cell{peer, value, sequence};
  ++size_;
  return true;
}

uint64_t PendingIndex::Find(const Ip6Address& peer, uint16_t sequence) const {
  return cells_[Probe(peer, sequence)].value;
}

bool PendingIndex::Erase(const Ip6Address& peer, uint16_t sequence) {
  size_t i = Probe(peer, sequence);
  if (cells_[i].value == 0) {
    return false;
  }
  // Backward-shift deletion: close the gap by moving down any later entry in
  // the probe chain whose home position permits it, so chains stay dense and
  // no tombstones accumulate.
  size_t j = i;
  for (;;) {
    cells_[i].value = 0;
    for (;;) {
      j = (j + 1) & mask_;
      if (cells_[j].value == 0) {
        --size_;
        return true;
      }
      const size_t home = Home(cells_[j].peer, cells_[j].sequence);
      // Skip entries whose home lies cyclically within (i, j]: moving them
      // to i would place them before their home.
      const bool home_in_gap = i <= j ? (i < home && home <= j) : (i < home || home <= j);
      if (!home_in_gap) {
        break;
      }
    }
    cells_[i] = cells_[j];
    i = j;
  }
}

}  // namespace micropnp
