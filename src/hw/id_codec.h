// Identification byte <-> resistor <-> pulse codec (Sections 3.1, 3.3).
//
// Each identification byte b in [0, 255] is represented by the b-th value of
// the E96 resistor ladder above a base resistor.  Because E-series values are
// geometric (ratio 10^(1/96) ~ 1.0243 for E96), pulse lengths form a
// geometric ladder too, and decoding reduces to a rounded log-ratio against a
// calibrated reference pulse.  This is the quantitative core of the paper's
// Section 3 argument: with parts of relative tolerance eps, discrete symbol
// levels must be geometrically spaced, so the component span (and worst-case
// pulse time) grows exponentially with the number of bits per pulse — which
// is why μPnP uses four 8-bit pulses instead of one 32-bit pulse.

#ifndef SRC_HW_ID_CODEC_H_
#define SRC_HW_ID_CODEC_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/hw/eseries.h"
#include "src/hw/multivibrator.h"

namespace micropnp {

struct IdentCircuitConfig {
  ESeries series = ESeries::kE96;
  // Resistor encoding byte 0.  3.48 kOhm is an exact E96 value; with
  // k = 1.1 and C = 10 nF this puts the shortest pulse at ~38.3 us and the
  // longest (byte 255) at ~17.6 ms, so a full 4-pulse identifier fits in a
  // 74 ms channel slot.
  Ohms base_resistor = Ohms(3480.0);
  // Factory precision of the board's reference resistor.
  double reference_tolerance = 0.001;
  // Tolerance of the four ID resistors on the peripheral.  E96 values are
  // stocked in 1 %, 0.5 % and 0.1 % grades; the 0.5 % grade keeps the
  // worst-case decode error (resistor + calibration + timer quantization)
  // inside the guard band with margin.  The pulse-count ablation sweeps this
  // parameter to locate the failure onset (~1 %), which quantifies the
  // paper's Section 3 robustness argument.
  double resistor_tolerance = 0.005;
  // Timer input-capture resolution of the measuring MCU (16 MHz -> 62.5 ns).
  Seconds measurement_tick = Seconds(62.5e-9);
  MultivibratorSpec vib;
};

// The "simple online tool" of Section 3.3: generates the resistor set that
// encodes an assigned device identifier, and decodes pulses back to bytes.
class IdentCodec {
 public:
  explicit IdentCodec(const IdentCircuitConfig& config);

  // Nominal resistor value for identification byte `b`.
  Ohms ResistorForByte(uint8_t b) const;

  // The four nominal resistors (R1..R4, Figure 4) for a device type id.
  std::array<Ohms, 4> ResistorsForId(DeviceTypeId id) const;

  // Inverse of ResistorForByte (nearest ladder value); nullopt if `r` is
  // outside the 256-level ladder.
  std::optional<uint8_t> ByteForResistor(Ohms r) const;

  // Decodes a measured pulse against a calibrated reference pulse (the pulse
  // the same multivibrator produces for the base resistor).  Returns nullopt
  // when the pulse falls outside the ladder or beyond guard distance.
  std::optional<uint8_t> DecodePulse(Seconds measured, Seconds reference) const;

  // Quantizes a physical pulse to the measuring timer's resolution.
  Seconds Quantize(Seconds t) const;

  // Geometric ratio between adjacent levels (10^(1/96) for E96).
  double level_ratio() const { return level_ratio_; }

  // Nominal pulse for byte b (with nominal k and C): the design target.
  Seconds NominalPulseForByte(uint8_t b) const;

  const IdentCircuitConfig& config() const { return config_; }

 private:
  IdentCircuitConfig config_;
  double level_ratio_;
};

// Worst-case analysis used by the pulse-count ablation (Figure 3 rationale):
// encoding `bits` bits in a single pulse with symbol levels geometrically
// spaced by `level_ratio` requires a component span of level_ratio^(2^bits).
// Returns the worst-case pulse length given the base pulse, or infinity if
// the span overflows a double.
double SinglePulseWorstCaseSeconds(double base_pulse_seconds, double level_ratio, int bits);

}  // namespace micropnp

#endif  // SRC_HW_ID_CODEC_H_
