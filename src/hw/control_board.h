// The μPnP control board (Sections 3.1, 3.2).
//
// The board sits between the host MCU and the peripheral connectors.  It
// holds one shared chain of four monostable multivibrators; each channel is
// enabled for a discrete time slot t_ch so all channels can share the chain
// (Figure 5).  Three host pins interface with the board: `start` (trigger),
// `output` (daisy-chained pulses) and an interrupt raised on connect or
// disconnect.  An interrupt power-gates the board: it only draws power from
// the moment a peripheral changes until the scan completes, which is why
// average power scales linearly with the plug/unplug rate (Figure 12).
//
// Timing/energy calibration (documented in DESIGN.md): with the default
// codec (E96 ladder, 3.48 kOhm base, k=1.1, C=10 nF), a full 3-channel scan
// plus the verification pass over the connected channel lands in the paper's
// measured 220..300 ms identification window, and the two-level power model
// (quiet vs pulse-high) lands in the 2.48..6.756 mJ energy window.

#ifndef SRC_HW_CONTROL_BOARD_H_
#define SRC_HW_CONTROL_BOARD_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/bus_kind.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/hw/id_codec.h"
#include "src/hw/multivibrator.h"

namespace micropnp {

// What physically arrives on a connector: four identification resistors
// (already manufactured, i.e. with sampled actual values) plus the bus the
// peripheral speaks.  Higher layers attach the behavioural device model.
struct PeripheralPlug {
  std::array<Ohms, 4> nominal_resistors{};
  std::array<Ohms, 4> actual_resistors{};
  BusKind bus = BusKind::kAdc;
};

// Manufactures a plug for `id`: designs the nominal resistor set and samples
// actual values with the codec's resistor tolerance.
PeripheralPlug MakePlugForId(const IdentCodec& codec, DeviceTypeId id, BusKind bus, Rng& rng);

// Identification outcome for one channel.
struct ChannelScan {
  bool occupied = false;
  // Set when all four pulses decoded cleanly; nullopt for an occupied channel
  // whose pulses fell in a guard band (caller should rescan).
  std::optional<DeviceTypeId> id;
  std::array<Seconds, 4> pulses{};
};

struct ScanResult {
  std::vector<ChannelScan> channels;
  Seconds duration;         // wall time of the identification process
  Seconds pulse_high_time;  // total time the multivibrator outputs were high
  Joules energy;            // board energy for this identification process
};

struct ControlBoardConfig {
  IdentCircuitConfig circuit;
  int num_channels = 3;
  // --- timing model ---
  Seconds wakeup_time = MilliSeconds(2.0);        // interrupt -> board powered
  Seconds channel_slot = MilliSeconds(74.0);      // t_ch, Figure 5
  Seconds verify_setup = MilliSeconds(2.0);       // per connected channel
  // --- two-level power model (see header comment) ---
  Watts power_quiet = Watts(10.95e-3);   // board on, outputs low
  Watts power_active = Watts(36.0e-3);   // multivibrator output high
  Volts supply = Volts(3.3);
};

class ControlBoard {
 public:
  // `rng` seeds the board's multivibrator manufacturing variation.
  ControlBoard(const ControlBoardConfig& config, Rng& rng);

  int num_channels() const { return config_.num_channels; }
  const IdentCodec& codec() const { return codec_; }
  const ControlBoardConfig& config() const { return config_; }

  // Plugs a peripheral into `channel`; raises the interrupt.
  Status Connect(ChannelId channel, const PeripheralPlug& plug);
  // Removes the peripheral from `channel`; raises the interrupt.
  Status Disconnect(ChannelId channel);

  bool occupied(ChannelId channel) const;
  std::optional<BusKind> bus_for_channel(ChannelId channel) const;

  // Connect/disconnect interrupt line (Section 3.2).  The handler runs
  // synchronously inside Connect()/Disconnect().
  using InterruptHandler = std::function<void()>;
  void set_interrupt_handler(InterruptHandler handler) { interrupt_handler_ = std::move(handler); }
  bool interrupt_pending() const { return interrupt_pending_; }

  // Runs the identification routine over all channels (clears the pending
  // interrupt).  Produces per-channel device ids, total duration,
  // pulse-high time and energy per the calibrated model.
  ScanResult Scan();

  // Total energy drawn by the board since construction.  The board is power
  // gated, so this only grows during scans.
  Joules lifetime_energy() const { return lifetime_energy_; }
  uint64_t scan_count() const { return scan_count_; }

 private:
  struct Channel {
    std::optional<PeripheralPlug> plug;
  };

  // Produces the four measured (quantized) pulses for a plug.
  std::array<Seconds, 4> MeasurePulses(const PeripheralPlug& plug) const;

  ControlBoardConfig config_;
  IdentCodec codec_;
  std::vector<MonostableMultivibrator> vibs_;      // 4 shared multivibrators
  std::array<Seconds, 4> calibrated_reference_{};  // factory calibration
  std::vector<Channel> channels_;
  InterruptHandler interrupt_handler_;
  bool interrupt_pending_ = false;
  Joules lifetime_energy_{0.0};
  uint64_t scan_count_ = 0;
};

}  // namespace micropnp

#endif  // SRC_HW_CONTROL_BOARD_H_
