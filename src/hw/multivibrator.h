// Monostable multivibrator model (Section 3, Figure 2).
//
// Triggered by a falling edge, a monostable multivibrator emits one pulse of
// length T = k * R * C.  The μPnP control board chains four of them so that
// each pulse triggers the next, producing the four intervals T1..T4 that
// encode a 32-bit device type identifier (Figure 3).
//
// Manufacturing variation: k and C are sampled once per multivibrator at
// construction ("manufacture") from truncated gaussians, then stay fixed —
// exactly how real parts behave.  A per-part calibration pulse measured at
// manufacture lets the decoder cancel most of that variation (ratiometric
// measurement), which is what makes 1 % resistors usable as 256-level
// symbols.

#ifndef SRC_HW_MULTIVIBRATOR_H_
#define SRC_HW_MULTIVIBRATOR_H_

#include "src/common/rng.h"
#include "src/common/units.h"

namespace micropnp {

struct MultivibratorSpec {
  // Monostable constant; 1.1 for the classic 555-style RC monostable.
  double k = 1.1;
  // Board-mounted timing capacitor (fixed per Section 3.1: "a set of
  // capacitors of fixed value are used on the control board").
  Farads c = NanoFarads(10.0);
  // Part-to-part manufacturing tolerances (relative, 1 sigma ~ tol/2.5).
  double k_tolerance = 0.0025;
  double c_tolerance = 0.005;
  // Accuracy of the one-off factory calibration of this multivibrator's
  // reference pulse (relative).
  double calibration_tolerance = 0.002;
};

class MonostableMultivibrator {
 public:
  // Samples the actual k and C for this physical part.
  MonostableMultivibrator(const MultivibratorSpec& spec, Rng& rng);

  // Pulse length for an attached resistance: T = k_actual * R * C_actual.
  Seconds PulseFor(Ohms r) const;

  // Pulse length this part would produce with *nominal* k and C — what the
  // datasheet promises.
  Seconds NominalPulseFor(Ohms r) const;

  // The factory-measured pulse for the reference resistor `r_ref`, including
  // the calibration error sampled at construction.  Decoders divide measured
  // pulses by this to cancel k and C variation.
  Seconds CalibratedReference(Ohms r_ref) const;

  double actual_k() const { return actual_k_; }
  Farads actual_c() const { return actual_c_; }

 private:
  MultivibratorSpec spec_;
  double actual_k_;
  Farads actual_c_;
  double calibration_error_;  // multiplicative, ~1.0
};

// Samples a component value with relative tolerance `tol`: gaussian with
// sigma tol/2.5, truncated to +/- tol (parts outside spec are binned out by
// the manufacturer).
double SampleToleranced(double nominal, double tol, Rng& rng);

}  // namespace micropnp

#endif  // SRC_HW_MULTIVIBRATOR_H_
