#include "src/hw/energy_model.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/hw/control_board.h"

namespace micropnp {

Joules InterconnectEnergyPerOperation(BusKind bus) {
  switch (bus) {
    case BusKind::kAdc:
      // One 10-bit conversion: ~13 ADC clocks at 125 kHz (104 us) with the
      // ADC block drawing ~0.3 mA at 3.3 V.
      return Joules(0.10e-6);
    case BusKind::kSpi:
      // 4-byte burst at 1 MHz (~32 us) with ~1.5 mA bus drive.
      return Joules(0.16e-6);
    case BusKind::kI2c:
      // 4-byte register read at 100 kHz (~0.5 ms transaction) with pull-ups
      // and MCU awake (~1.2 mA).
      return Joules(2.0e-6);
    case BusKind::kUart:
      // A 16-byte ID-20LA-style frame at 9600 baud (~16.7 ms) with the MCU
      // receiving (~0.8 mA).
      return Joules(44.0e-6);
  }
  return Joules(0.0);
}

IdentStats SampleIdentification(int samples, uint64_t seed) {
  IdentStats stats;
  stats.samples = samples;
  stats.min_duration = Seconds(1e9);
  stats.min_energy = Joules(1e9);
  double sum_duration = 0.0;
  double sum_energy = 0.0;

  Rng rng(seed);
  ControlBoardConfig config;
  ControlBoard board(config, rng);

  for (int i = 0; i < samples; ++i) {
    const DeviceTypeId id = rng.NextU32();
    PeripheralPlug plug = MakePlugForId(board.codec(), id, BusKind::kAdc, rng);
    // Paper setup: one peripheral on an otherwise empty 3-channel board.
    if (!board.Connect(0, plug).ok()) {
      continue;
    }
    ScanResult scan = board.Scan();
    (void)board.Disconnect(0);

    const ChannelScan& ch = scan.channels[0];
    if (!ch.id.has_value()) {
      ++stats.decode_failures;
    } else if (*ch.id != id) {
      ++stats.decode_errors;
    }

    stats.min_duration = std::min(stats.min_duration, scan.duration);
    stats.max_duration = std::max(stats.max_duration, scan.duration);
    stats.min_energy = std::min(stats.min_energy, scan.energy);
    stats.max_energy = std::max(stats.max_energy, scan.energy);
    sum_duration += scan.duration.value();
    sum_energy += scan.energy.value();
  }
  if (samples > 0) {
    stats.mean_duration = Seconds(sum_duration / samples);
    stats.mean_energy = Joules(sum_energy / samples);
  }
  return stats;
}

Joules UsbHostBaseline::YearlyEnergy(double changes_per_year, double comms_per_year) const {
  return Joules(idle_power().value() * kSecondsPerYear +
                energy_per_enumeration.value() * changes_per_year +
                energy_per_transfer.value() * comms_per_year);
}

YearlyEnergyPoint ComputeYearlyEnergy(double change_interval_minutes, double comm_period_seconds,
                                      BusKind bus, const IdentStats& ident,
                                      const UsbHostBaseline& usb) {
  YearlyEnergyPoint point;
  point.change_interval_minutes = change_interval_minutes;

  const double changes_per_year = kMinutesPerYear / change_interval_minutes;
  const double comms_per_year = kSecondsPerYear / comm_period_seconds;
  const double comm_energy = InterconnectEnergyPerOperation(bus).value() * comms_per_year;

  point.usb = usb.YearlyEnergy(changes_per_year, comms_per_year);
  point.upnp_mean = Joules(ident.mean_energy.value() * changes_per_year + comm_energy);
  point.upnp_min = Joules(ident.min_energy.value() * changes_per_year + comm_energy);
  point.upnp_max = Joules(ident.max_energy.value() * changes_per_year + comm_energy);
  return point;
}

}  // namespace micropnp
