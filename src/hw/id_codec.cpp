#include "src/hw/id_codec.h"

#include <cmath>
#include <limits>

namespace micropnp {

IdentCodec::IdentCodec(const IdentCircuitConfig& config) : config_(config) {
  level_ratio_ = std::pow(10.0, 1.0 / ESeriesSize(config.series));
}

Ohms IdentCodec::ResistorForByte(uint8_t b) const {
  return LadderValue(config_.series, config_.base_resistor, b);
}

std::array<Ohms, 4> IdentCodec::ResistorsForId(DeviceTypeId id) const {
  std::array<Ohms, 4> out;
  for (int i = 0; i < 4; ++i) {
    out[i] = ResistorForByte(DeviceTypeByte(id, i));
  }
  return out;
}

std::optional<uint8_t> IdentCodec::ByteForResistor(Ohms r) const {
  const int index = LadderIndex(config_.series, config_.base_resistor, r);
  if (index < 0 || index > 255) {
    return std::nullopt;
  }
  return static_cast<uint8_t>(index);
}

Seconds IdentCodec::Quantize(Seconds t) const {
  const double tick = config_.measurement_tick.value();
  if (tick <= 0.0) {
    return t;
  }
  return Seconds(std::round(t.value() / tick) * tick);
}

std::optional<uint8_t> IdentCodec::DecodePulse(Seconds measured, Seconds reference) const {
  if (measured.value() <= 0.0 || reference.value() <= 0.0) {
    return std::nullopt;
  }
  const double ratio = measured.value() / reference.value();
  const double index_f = std::log(ratio) / std::log(level_ratio_);
  const double index_rounded = std::round(index_f);
  // Guard band: reject pulses landing close to a bin boundary; the scan
  // retries, which beats silently mis-identifying the peripheral.
  if (std::fabs(index_f - index_rounded) > 0.47) {
    return std::nullopt;
  }
  if (index_rounded < -0.5 || index_rounded > 255.5) {
    return std::nullopt;
  }
  return static_cast<uint8_t>(index_rounded);
}

Seconds IdentCodec::NominalPulseForByte(uint8_t b) const {
  return PulseLength(config_.vib.k, ResistorForByte(b), config_.vib.c);
}

double SinglePulseWorstCaseSeconds(double base_pulse_seconds, double level_ratio, int bits) {
  // levels = 2^bits; worst-case pulse = base * ratio^(levels - 1).
  const double levels = std::pow(2.0, bits);
  const double log_span = (levels - 1.0) * std::log(level_ratio);
  if (log_span > 700.0) {  // e^700 ~ double overflow
    return std::numeric_limits<double>::infinity();
  }
  return base_pulse_seconds * std::exp(log_span);
}

}  // namespace micropnp
