#include "src/hw/eseries.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace micropnp {
namespace {

constexpr std::array<double, 12> kE12 = {1.0, 1.2, 1.5, 1.8, 2.2, 2.7,
                                         3.3, 3.9, 4.7, 5.6, 6.8, 8.2};

constexpr std::array<double, 24> kE24 = {1.0, 1.1, 1.2, 1.3, 1.5, 1.6, 1.8, 2.0,
                                         2.2, 2.4, 2.7, 3.0, 3.3, 3.6, 3.9, 4.3,
                                         4.7, 5.1, 5.6, 6.2, 6.8, 7.5, 8.2, 9.1};

constexpr std::array<double, 48> kE48 = {
    1.00, 1.05, 1.10, 1.15, 1.21, 1.27, 1.33, 1.40, 1.47, 1.54, 1.62, 1.69,
    1.78, 1.87, 1.96, 2.05, 2.15, 2.26, 2.37, 2.49, 2.61, 2.74, 2.87, 3.01,
    3.16, 3.32, 3.48, 3.65, 3.83, 4.02, 4.22, 4.42, 4.64, 4.87, 5.11, 5.36,
    5.62, 5.90, 6.19, 6.49, 6.81, 7.15, 7.50, 7.87, 8.25, 8.66, 9.09, 9.53};

constexpr std::array<double, 96> kE96 = {
    1.00, 1.02, 1.05, 1.07, 1.10, 1.13, 1.15, 1.18, 1.21, 1.24, 1.27, 1.30,
    1.33, 1.37, 1.40, 1.43, 1.47, 1.50, 1.54, 1.58, 1.62, 1.65, 1.69, 1.74,
    1.78, 1.82, 1.87, 1.91, 1.96, 2.00, 2.05, 2.10, 2.15, 2.21, 2.26, 2.32,
    2.37, 2.43, 2.49, 2.55, 2.61, 2.67, 2.74, 2.80, 2.87, 2.94, 3.01, 3.09,
    3.16, 3.24, 3.32, 3.40, 3.48, 3.57, 3.65, 3.74, 3.83, 3.92, 4.02, 4.12,
    4.22, 4.32, 4.42, 4.53, 4.64, 4.75, 4.87, 4.99, 5.11, 5.23, 5.36, 5.49,
    5.62, 5.76, 5.90, 6.04, 6.19, 6.34, 6.49, 6.65, 6.81, 6.98, 7.15, 7.32,
    7.50, 7.68, 7.87, 8.06, 8.25, 8.45, 8.66, 8.87, 9.09, 9.31, 9.53, 9.76};

// Decomposes a positive resistance into (decade exponent, index of nearest
// base value within the decade), measured in log space.
struct Decomposed {
  int decade;
  int index;
};

Decomposed Decompose(ESeries series, double ohms) {
  std::span<const double> base = ESeriesBaseValues(series);
  const int n = static_cast<int>(base.size());
  if (ohms < 1.0) {
    ohms = 1.0;
  }
  if (ohms > 1e8) {
    ohms = 1e8;
  }
  double lg = std::log10(ohms);
  int decade = static_cast<int>(std::floor(lg));
  double mantissa = ohms / std::pow(10.0, decade);  // [1, 10)
  // Nearest base value in log space; check neighbours across decade edges.
  int best_index = 0;
  double best_err = 1e9;
  for (int i = 0; i < n; ++i) {
    double err = std::fabs(std::log(mantissa) - std::log(base[i]));
    if (err < best_err) {
      best_err = err;
      best_index = i;
    }
  }
  // The value 10.0 (index 0 of the next decade) may be closer than base[n-1].
  double err_up = std::fabs(std::log(mantissa) - std::log(10.0));
  if (err_up < best_err) {
    return {decade + 1, 0};
  }
  return {decade, best_index};
}

double ValueAt(ESeries series, Decomposed d) {
  std::span<const double> base = ESeriesBaseValues(series);
  const int n = static_cast<int>(base.size());
  // Normalize index into [0, n).
  while (d.index < 0) {
    d.index += n;
    d.decade -= 1;
  }
  while (d.index >= n) {
    d.index -= n;
    d.decade += 1;
  }
  return base[d.index] * std::pow(10.0, d.decade);
}

}  // namespace

std::span<const double> ESeriesBaseValues(ESeries series) {
  switch (series) {
    case ESeries::kE12:
      return kE12;
    case ESeries::kE24:
      return kE24;
    case ESeries::kE48:
      return kE48;
    case ESeries::kE96:
      return kE96;
  }
  return kE96;
}

int ESeriesSize(ESeries series) { return static_cast<int>(ESeriesBaseValues(series).size()); }

double ESeriesTolerance(ESeries series) {
  switch (series) {
    case ESeries::kE12:
      return 0.10;
    case ESeries::kE24:
      return 0.05;
    case ESeries::kE48:
      return 0.02;
    case ESeries::kE96:
      return 0.01;
  }
  return 0.01;
}

Ohms NearestStandardValue(ESeries series, Ohms target) {
  return Ohms(ValueAt(series, Decompose(series, target.value())));
}

Ohms LadderValue(ESeries series, Ohms first, int index) {
  Decomposed d = Decompose(series, first.value());
  d.index += index;
  return Ohms(ValueAt(series, d));
}

int LadderIndex(ESeries series, Ohms first, Ohms r) {
  const int n = ESeriesSize(series);
  Decomposed base = Decompose(series, first.value());
  Decomposed target = Decompose(series, r.value());
  return (target.decade - base.decade) * n + (target.index - base.index);
}

}  // namespace micropnp
