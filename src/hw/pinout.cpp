#include "src/hw/pinout.h"

namespace micropnp {

std::string CommPinSignal(BusKind bus, int pin) {
  if (pin < kCommPinFirst || pin > kCommPinLast) {
    return "N/C";
  }
  const int index = pin - kCommPinFirst;  // 0..2
  switch (bus) {
    case BusKind::kAdc: {
      const char* signals[3] = {"Analog Signal", "N/C", "N/C"};
      return signals[index];
    }
    case BusKind::kI2c: {
      const char* signals[3] = {"SDA", "SCL", "N/C"};
      return signals[index];
    }
    case BusKind::kSpi: {
      const char* signals[3] = {"MOSI", "MISO", "SCK"};
      return signals[index];
    }
    case BusKind::kUart: {
      const char* signals[3] = {"TX", "RX", "N/C"};
      return signals[index];
    }
  }
  return "N/C";
}

std::array<std::string, 3> CommPinRow(BusKind bus) {
  return {CommPinSignal(bus, 10), CommPinSignal(bus, 11), CommPinSignal(bus, 12)};
}

}  // namespace micropnp
