// IEC 60063 preferred number series for resistors (E12/E24/E48/E96).
//
// μPnP peripheral identifiers are encoded with four off-the-shelf resistors
// (Section 3.1: "resistors are more precise and cost much less than
// capacitors").  The resistor-set designer picks the nearest standard E96
// (1 %) value for each identification byte.

#ifndef SRC_HW_ESERIES_H_
#define SRC_HW_ESERIES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/units.h"

namespace micropnp {

enum class ESeries {
  kE12,  // 10 % tolerance values
  kE24,  // 5 %
  kE48,  // 2 %
  kE96,  // 1 %
};

// The per-decade base values of the series (e.g. 96 entries in [1.0, 10.0)
// for E96).
std::span<const double> ESeriesBaseValues(ESeries series);

// Number of values per decade.
int ESeriesSize(ESeries series);

// Nominal manufacturing tolerance associated with the series (e.g. 0.01 for
// E96).
double ESeriesTolerance(ESeries series);

// Returns the standard value closest (in log space, as is conventional) to
// `target`.  Supports targets in [1 Ω, 100 MΩ); values outside are clamped.
Ohms NearestStandardValue(ESeries series, Ohms target);

// Returns the `index`-th value of a geometric ladder built from consecutive
// series values starting at `first` (index 0 == nearest standard value to
// `first`).  This is how μPnP's 256 identification levels map onto real
// parts: level b is simply the b-th E96 value above the base resistor.
Ohms LadderValue(ESeries series, Ohms first, int index);

// Inverse of LadderValue: the ladder index whose value is nearest to `r`.
int LadderIndex(ESeries series, Ohms first, Ohms r);

}  // namespace micropnp

#endif  // SRC_HW_ESERIES_H_
