// Energy models behind the Section 6.1 evaluation (Figure 12).
//
// The paper simulates a one-year deployment: peripherals communicate once
// every ten seconds over their native interconnect, and are plugged/unplugged
// at a configurable rate.  μPnP's board is power-gated, so its yearly energy
// is (identifications per year) x (energy per identification) plus the
// interconnect's per-communication energy.  The USB host baseline idles
// continuously at the host controller's minimum idle power.
//
// Interconnect per-operation energies are documented engineering estimates
// for the evaluation peripherals (ADC sample; I2C register read; UART frame
// at 9600 baud; SPI burst) on a 3.3 V system.  Their ordering
// (UART > I2C > SPI > ADC) produces the Figure 12 divergence of the μPnP
// curves at low change rates, where interconnect energy dominates.

#ifndef SRC_HW_ENERGY_MODEL_H_
#define SRC_HW_ENERGY_MODEL_H_

#include <cstdint>

#include "src/common/bus_kind.h"
#include "src/common/units.h"

namespace micropnp {

// Energy one peripheral communication costs on each interconnect.
Joules InterconnectEnergyPerOperation(BusKind bus);

// Statistics of the μPnP identification process gathered by simulating
// `samples` random device ids on a freshly manufactured board+peripheral.
struct IdentStats {
  Seconds min_duration;
  Seconds max_duration;
  Seconds mean_duration;
  Joules min_energy;
  Joules max_energy;
  Joules mean_energy;
  int decode_failures = 0;  // pulses landing in a guard band (rescan needed)
  int decode_errors = 0;    // decoded to the *wrong* id (should be ~0)
  int samples = 0;
};

IdentStats SampleIdentification(int samples, uint64_t seed);

// Arduino USB Host shield baseline (MAX3421E-class controller).  The paper
// uses "the minimum idle power consumption of the USB host controller",
// i.e. the controller is always powered, waiting for attach events.
struct UsbHostBaseline {
  Volts supply = Volts(3.3);
  Amps idle_current = MilliAmps(8.0);  // documented model constant
  Joules energy_per_transfer = Joules(2.0e-6);
  Joules energy_per_enumeration = Joules(150.0e-6);

  Watts idle_power() const { return Power(supply, idle_current); }

  // One-year energy with `changes_per_year` attach events and
  // `comms_per_year` data transfers.
  Joules YearlyEnergy(double changes_per_year, double comms_per_year) const;
};

// The Figure 12 simulation: one point of the μPnP curve.
struct YearlyEnergyPoint {
  double change_interval_minutes = 0.0;
  Joules usb;
  Joules upnp_mean;  // μPnP board + interconnect, mean identification energy
  Joules upnp_min;   // error bar: all-minimum resistor sets
  Joules upnp_max;   // error bar: all-maximum resistor sets
};

// Computes the yearly energy of μPnP with the given interconnect and of the
// USB baseline, for peripherals changed every `change_interval_minutes` and
// communicating every `comm_period_seconds` (paper: 10 s).  `ident` supplies
// the per-identification energy statistics.
YearlyEnergyPoint ComputeYearlyEnergy(double change_interval_minutes, double comm_period_seconds,
                                      BusKind bus, const IdentStats& ident,
                                      const UsbHostBaseline& usb);

}  // namespace micropnp

#endif  // SRC_HW_ENERGY_MODEL_H_
