#include "src/hw/multivibrator.h"

#include <algorithm>

namespace micropnp {

double SampleToleranced(double nominal, double tol, Rng& rng) {
  if (tol <= 0.0) {
    return nominal;
  }
  double dev = rng.Gaussian(0.0, tol / 2.5);
  dev = std::clamp(dev, -tol, tol);
  return nominal * (1.0 + dev);
}

MonostableMultivibrator::MonostableMultivibrator(const MultivibratorSpec& spec, Rng& rng)
    : spec_(spec),
      actual_k_(SampleToleranced(spec.k, spec.k_tolerance, rng)),
      actual_c_(Farads(SampleToleranced(spec.c.value(), spec.c_tolerance, rng))),
      calibration_error_(SampleToleranced(1.0, spec.calibration_tolerance, rng)) {}

Seconds MonostableMultivibrator::PulseFor(Ohms r) const {
  return PulseLength(actual_k_, r, actual_c_);
}

Seconds MonostableMultivibrator::NominalPulseFor(Ohms r) const {
  return PulseLength(spec_.k, r, spec_.c);
}

Seconds MonostableMultivibrator::CalibratedReference(Ohms r_ref) const {
  return PulseFor(r_ref) * calibration_error_;
}

}  // namespace micropnp
