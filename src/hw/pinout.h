// Connector pinout (Section 3.1, Table 1).
//
// The prototype uses a 19-pin mini-HDMI connector: pins 1..8 carry the
// identification circuit, pins 10..12 are multiplexed onto the communication
// bus selected after identification.

#ifndef SRC_HW_PINOUT_H_
#define SRC_HW_PINOUT_H_

#include <array>
#include <string>

#include "src/common/bus_kind.h"

namespace micropnp {

inline constexpr int kConnectorPinCount = 19;
inline constexpr int kIdentPinFirst = 1;
inline constexpr int kIdentPinLast = 8;
inline constexpr int kCommPinFirst = 10;
inline constexpr int kCommPinLast = 12;

// Signal assigned to a communication pin for a given bus (Table 1).
// Pins outside 10..12 and unconnected pins return "N/C".
std::string CommPinSignal(BusKind bus, int pin);

// All three communication pin signals for a bus, pins 10, 11, 12.
std::array<std::string, 3> CommPinRow(BusKind bus);

}  // namespace micropnp

#endif  // SRC_HW_PINOUT_H_
