#include "src/hw/control_board.h"

namespace micropnp {

PeripheralPlug MakePlugForId(const IdentCodec& codec, DeviceTypeId id, BusKind bus, Rng& rng) {
  PeripheralPlug plug;
  plug.nominal_resistors = codec.ResistorsForId(id);
  for (int i = 0; i < 4; ++i) {
    plug.actual_resistors[i] = Ohms(SampleToleranced(
        plug.nominal_resistors[i].value(), codec.config().resistor_tolerance, rng));
  }
  plug.bus = bus;
  return plug;
}

ControlBoard::ControlBoard(const ControlBoardConfig& config, Rng& rng)
    : config_(config), codec_(config.circuit), channels_(config.num_channels) {
  vibs_.reserve(4);
  for (int i = 0; i < 4; ++i) {
    vibs_.emplace_back(config.circuit.vib, rng);
    calibrated_reference_[i] = vibs_[i].CalibratedReference(config.circuit.base_resistor);
  }
}

Status ControlBoard::Connect(ChannelId channel, const PeripheralPlug& plug) {
  if (channel >= channels_.size()) {
    return OutOfRange("channel out of range");
  }
  if (channels_[channel].plug.has_value()) {
    return AlreadyExists("channel occupied");
  }
  channels_[channel].plug = plug;
  interrupt_pending_ = true;
  if (interrupt_handler_) {
    interrupt_handler_();
  }
  return OkStatus();
}

Status ControlBoard::Disconnect(ChannelId channel) {
  if (channel >= channels_.size()) {
    return OutOfRange("channel out of range");
  }
  if (!channels_[channel].plug.has_value()) {
    return NotFound("channel empty");
  }
  channels_[channel].plug.reset();
  interrupt_pending_ = true;
  if (interrupt_handler_) {
    interrupt_handler_();
  }
  return OkStatus();
}

bool ControlBoard::occupied(ChannelId channel) const {
  return channel < channels_.size() && channels_[channel].plug.has_value();
}

std::optional<BusKind> ControlBoard::bus_for_channel(ChannelId channel) const {
  if (!occupied(channel)) {
    return std::nullopt;
  }
  return channels_[channel].plug->bus;
}

std::array<Seconds, 4> ControlBoard::MeasurePulses(const PeripheralPlug& plug) const {
  std::array<Seconds, 4> pulses;
  for (int i = 0; i < 4; ++i) {
    pulses[i] = codec_.Quantize(vibs_[i].PulseFor(plug.actual_resistors[i]));
  }
  return pulses;
}

ScanResult ControlBoard::Scan() {
  ScanResult result;
  result.channels.resize(channels_.size());

  Seconds duration = config_.wakeup_time;
  Seconds pulse_high{0.0};

  // Scan pass: every channel gets a fixed t_ch slot (Figure 5) so that the
  // worst-case four-pulse sequence always fits.
  for (size_t ch = 0; ch < channels_.size(); ++ch) {
    duration += config_.channel_slot;
    ChannelScan& scan = result.channels[ch];
    if (!channels_[ch].plug.has_value()) {
      continue;
    }
    const PeripheralPlug& plug = *channels_[ch].plug;
    scan.occupied = true;
    scan.pulses = MeasurePulses(plug);
    for (const Seconds& p : scan.pulses) {
      pulse_high += p;
    }
    std::array<std::optional<uint8_t>, 4> bytes;
    bool all_ok = true;
    for (int i = 0; i < 4; ++i) {
      bytes[i] = codec_.DecodePulse(scan.pulses[i], calibrated_reference_[i]);
      all_ok = all_ok && bytes[i].has_value();
    }
    if (all_ok) {
      scan.id = MakeDeviceTypeId(*bytes[0], *bytes[1], *bytes[2], *bytes[3]);
    }
  }

  // Verification pass (connected channels only): the identification software
  // re-reads each connected channel's pulse train before committing the ID.
  for (size_t ch = 0; ch < channels_.size(); ++ch) {
    if (!channels_[ch].plug.has_value()) {
      continue;
    }
    duration += config_.verify_setup;
    for (const Seconds& p : result.channels[ch].pulses) {
      duration += p;
      pulse_high += p;
    }
  }
  // The scan-pass pulses also elapse inside the channel slots; slots already
  // cover their duration, so only the verification pass extends wall time.
  result.duration = duration;
  result.pulse_high_time = pulse_high;

  const double quiet_time = duration.value() - pulse_high.value();
  result.energy = Joules(config_.power_quiet.value() * (quiet_time > 0.0 ? quiet_time : 0.0) +
                         config_.power_active.value() * pulse_high.value());

  lifetime_energy_ += result.energy;
  ++scan_count_;
  interrupt_pending_ = false;
  return result;
}

}  // namespace micropnp
