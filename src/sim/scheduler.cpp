#include "src/sim/scheduler.h"

#include <algorithm>

namespace micropnp {

Scheduler::EventId Scheduler::ScheduleAt(SimTime when, Action action) {
  if (when < now_) {
    when = now_;
  }
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_sequence_++, id});
  actions_.emplace_back(id, std::move(action));
  ++pending_count_;
  return id;
}

bool Scheduler::Cancel(EventId id) {
  for (auto& [eid, action] : actions_) {
    if (eid == id && action != nullptr) {
      action = nullptr;  // tombstone; the queue entry is skipped when popped
      --pending_count_;
      return true;
    }
  }
  return false;
}

Scheduler::Action Scheduler::TakeAction(EventId id) {
  for (auto it = actions_.begin(); it != actions_.end(); ++it) {
    if (it->first == id) {
      Action action = std::move(it->second);
      actions_.erase(it);
      return action;
    }
  }
  return nullptr;
}

bool Scheduler::Step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    Action action = TakeAction(entry.id);
    if (action == nullptr) {
      continue;  // cancelled
    }
    now_ = entry.when;
    --pending_count_;
    ++executed_;
    action();
    return true;
  }
  return false;
}

size_t Scheduler::Run() {
  size_t count = 0;
  while (Step()) {
    ++count;
  }
  return count;
}

size_t Scheduler::RunUntil(SimTime deadline) {
  size_t count = 0;
  // Cancelled entries (tombstones) are discarded inline; Step() must not be
  // used here because it would run the next *live* event even when that
  // event lies beyond the deadline.
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Entry entry = queue_.top();
    queue_.pop();
    Action action = TakeAction(entry.id);
    if (action == nullptr) {
      continue;  // cancelled
    }
    now_ = entry.when;
    --pending_count_;
    ++executed_;
    action();
    ++count;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

}  // namespace micropnp
