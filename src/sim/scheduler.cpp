#include "src/sim/scheduler.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

namespace micropnp {

namespace {
constexpr uint64_t kNoLimit = std::numeric_limits<uint64_t>::max();
}  // namespace

Scheduler::EventId Scheduler::ScheduleAt(SimTime when, Action action) {
  if (when < now_) {
    when = now_;
  }
  // With nothing pending the wheel origin can jump straight to the clock:
  // the next insert then lands as low in the hierarchy as possible.
  if (records_.empty() && overflow_.empty()) {
    base_ns_ = now_.nanos();
  }
  const EventId id = next_id_++;
  Record& record = records_[id];
  Insert(Entry{when.nanos(), next_sequence_++, id}, record);
  record.action = std::move(action);
  record.when_ns = when.nanos();
  ++stats_.scheduled;
  return id;
}

void Scheduler::Insert(const Entry& entry, Record& record) {
  const uint64_t diff = entry.when_ns ^ base_ns_;
  if (diff == 0) {
    // Due exactly at the wheel origin: straight onto the ready list.  New
    // arrivals carry the largest sequence so appending preserves FIFO order.
    record.location = Location::kReady;
    ready_.push_back(entry);
    return;
  }
  if ((diff >> kSpanBits) != 0) {
    std::vector<Entry>& bucket = overflow_[entry.when_ns];
    record.location = Location::kOverflow;
    record.index = static_cast<uint32_t>(bucket.size());
    bucket.push_back(entry);
    return;
  }
  // Highest differing bit picks the level; the timestamp's bits at that
  // granularity pick the slot.
  const int level = (std::bit_width(diff) - 1) / kSlotBits;
  const int slot = static_cast<int>((entry.when_ns >> (level * kSlotBits)) & (kSlots - 1));
  std::vector<Entry>& vec = levels_[level].slots[slot];
  record.location = Location::kWheel;
  record.level = static_cast<uint8_t>(level);
  record.slot = static_cast<uint8_t>(slot);
  record.index = static_cast<uint32_t>(vec.size());
  vec.push_back(entry);
  levels_[level].occupied |= uint64_t{1} << slot;
}

void Scheduler::Excise(const Record& record, EventId id) {
  std::vector<Entry>* vec = nullptr;
  switch (record.location) {
    case Location::kReady:
      // Stays in the ready list; popping skips entries without a record.
      return;
    case Location::kWheel:
      vec = &levels_[record.level].slots[record.slot];
      break;
    case Location::kOverflow:
      vec = &overflow_[record.when_ns];
      break;
  }
  const size_t index = record.index;
  if (index + 1 != vec->size()) {
    (*vec)[index] = vec->back();
    records_[(*vec)[index].id].index = static_cast<uint32_t>(index);
  }
  vec->pop_back();
  (void)id;
  if (vec->empty()) {
    if (record.location == Location::kWheel) {
      levels_[record.level].occupied &= ~(uint64_t{1} << record.slot);
    } else {
      overflow_.erase(record.when_ns);
    }
  }
}

bool Scheduler::Cancel(EventId id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return false;
  }
  Excise(it->second, id);
  records_.erase(it);
  ++stats_.cancelled;
  return true;
}

void Scheduler::SortReadyBySequence() {
  std::sort(ready_.begin(), ready_.end(),
            [](const Entry& a, const Entry& b) { return a.sequence < b.sequence; });
}

bool Scheduler::AdvanceToNext(uint64_t limit_ns) {
  for (;;) {
    // Serve from the ready list first, skipping cancelled entries.
    while (ready_next_ < ready_.size()) {
      const Entry& head = ready_[ready_next_];
      if (records_.count(head.id) != 0) {
        return head.when_ns <= limit_ns;
      }
      ++ready_next_;  // cancelled after collection
    }
    ready_.clear();
    ready_next_ = 0;
    if (records_.empty()) {
      return false;
    }

    // Overflow buckets whose window the wheel has reached slot like any
    // other entry (they may even be the next event).
    while (!overflow_.empty() &&
           ((overflow_.begin()->first ^ base_ns_) >> kSpanBits) == 0) {
      std::vector<Entry> bucket = std::move(overflow_.begin()->second);
      overflow_.erase(overflow_.begin());
      for (const Entry& entry : bucket) {
        Insert(entry, records_[entry.id]);
      }
    }
    if (ready_next_ < ready_.size()) {
      // Migration landed entries due exactly at base_.  Cancellation's
      // swap-and-pop may have perturbed their bucket order, so restore FIFO
      // before serving (they all share one timestamp).
      SortReadyBySequence();
      continue;
    }

    // Lowest level with an occupied slot after the cursor holds the next
    // event (level-l entries all precede level-(l+1) entries).
    int level = -1;
    int slot = 0;
    for (int l = 0; l < kLevels; ++l) {
      const int cursor = static_cast<int>((base_ns_ >> (l * kSlotBits)) & (kSlots - 1));
      const uint64_t above =
          cursor == kSlots - 1 ? 0 : levels_[l].occupied & (~uint64_t{0} << (cursor + 1));
      if (above != 0) {
        level = l;
        slot = std::countr_zero(above);
        break;
      }
    }

    if (level < 0) {
      // Wheel exhausted: the next event (if any) is in a future overflow
      // window.  Jump the origin there and re-enter to migrate it.
      if (overflow_.empty()) {
        return false;  // unreachable: records_ non-empty implies an entry
      }
      const uint64_t when = overflow_.begin()->first;
      if (when > limit_ns) {
        return false;
      }
      base_ns_ = when;
      continue;
    }

    const int shift = level * kSlotBits;
    const uint64_t span_mask = (uint64_t{1} << (shift + kSlotBits)) - 1;
    const uint64_t slot_start = (base_ns_ & ~span_mask) | (uint64_t{uint32_t(slot)} << shift);
    if (slot_start > limit_ns) {
      return false;  // next event starts past the limit; leave the wheel be
    }
    base_ns_ = slot_start;
    std::vector<Entry>& vec = levels_[level].slots[slot];
    levels_[level].occupied &= ~(uint64_t{1} << slot);
    if (level == 0) {
      // A level-0 slot spans exactly one nanosecond: every entry is due at
      // slot_start.  Sorting by sequence restores global FIFO order.
      std::swap(ready_, vec);
      SortReadyBySequence();
      for (const Entry& entry : ready_) {
        records_[entry.id].location = Location::kReady;
      }
      ++stats_.slot_collections;
      continue;  // the ready loop serves it
    }
    // Cascade: with the origin advanced to the slot's start, every entry
    // re-slots at least one level lower (or straight onto the ready list).
    std::vector<Entry> cascade;
    std::swap(cascade, vec);
    stats_.cascaded_entries += cascade.size();
    for (const Entry& entry : cascade) {
      Insert(entry, records_[entry.id]);
    }
    if (!ready_.empty()) {
      // Entries due exactly at the slot's start (64-aligned timestamps)
      // land straight on the ready list; as above, re-sort by sequence in
      // case cancellation perturbed the slot's order.
      SortReadyBySequence();
    }
  }
}

void Scheduler::ExecuteReadyHead() {
  const Entry entry = ready_[ready_next_++];
  auto it = records_.find(entry.id);
  Action action = std::move(it->second.action);
  records_.erase(it);
  now_ = SimTime::FromNanos(entry.when_ns);
  ++executed_;
  action();
}

bool Scheduler::Step() {
  if (!AdvanceToNext(kNoLimit)) {
    return false;
  }
  ExecuteReadyHead();
  return true;
}

size_t Scheduler::Run() {
  size_t count = 0;
  while (Step()) {
    ++count;
  }
  return count;
}

size_t Scheduler::RunUntil(SimTime deadline) {
  size_t count = 0;
  while (AdvanceToNext(deadline.nanos())) {
    ExecuteReadyHead();
    ++count;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

}  // namespace micropnp
