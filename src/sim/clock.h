// Simulated time.
//
// The whole reproduction runs on a discrete-event clock with nanosecond
// resolution: hardware pulse generation, radio airtime and CPU cycle costs all
// schedule events on the same timeline, which is what makes the Table 4 /
// Section 6 timing numbers composable.

#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <compare>
#include <cstdint>
#include <string>

namespace micropnp {

// A point in simulated time, in nanoseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}
  constexpr explicit SimTime(uint64_t ns) : ns_(ns) {}

  static constexpr SimTime FromNanos(uint64_t ns) { return SimTime(ns); }
  static constexpr SimTime FromMicros(double us) {
    return SimTime(static_cast<uint64_t>(us * 1e3 + 0.5));
  }
  static constexpr SimTime FromMillis(double ms) {
    return SimTime(static_cast<uint64_t>(ms * 1e6 + 0.5));
  }
  static constexpr SimTime FromSeconds(double s) {
    return SimTime(static_cast<uint64_t>(s * 1e9 + 0.5));
  }

  constexpr uint64_t nanos() const { return ns_; }
  constexpr double micros() const { return static_cast<double>(ns_) * 1e-3; }
  constexpr double millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime d) const { return SimTime(ns_ + d.ns_); }
  constexpr SimTime operator-(SimTime d) const { return SimTime(ns_ >= d.ns_ ? ns_ - d.ns_ : 0); }
  SimTime& operator+=(SimTime d) {
    ns_ += d.ns_;
    return *this;
  }

  std::string ToString() const;  // "12.345ms"

 private:
  uint64_t ns_;
};

using SimDuration = SimTime;

}  // namespace micropnp

#endif  // SRC_SIM_CLOCK_H_
