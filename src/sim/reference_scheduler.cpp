#include "src/sim/reference_scheduler.h"

#include <utility>

namespace micropnp {

ReferenceScheduler::EventId ReferenceScheduler::ScheduleAt(SimTime when, Action action) {
  if (when < now_) {
    when = now_;
  }
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_sequence_++, id});
  actions_.emplace(id, std::move(action));
  return id;
}

bool ReferenceScheduler::Cancel(EventId id) {
  return actions_.erase(id) != 0;
}

bool ReferenceScheduler::Step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    auto it = actions_.find(entry.id);
    if (it == actions_.end()) {
      continue;  // cancelled
    }
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = entry.when;
    ++executed_;
    action();
    return true;
  }
  return false;
}

size_t ReferenceScheduler::Run() {
  size_t count = 0;
  while (Step()) {
    ++count;
  }
  return count;
}

size_t ReferenceScheduler::RunUntil(SimTime deadline) {
  size_t count = 0;
  // Cancelled entries (tombstones) are discarded inline; Step() must not be
  // used here because it would run the next *live* event even when that
  // event lies beyond the deadline.
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Entry entry = queue_.top();
    queue_.pop();
    auto it = actions_.find(entry.id);
    if (it == actions_.end()) {
      continue;  // cancelled
    }
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = entry.when;
    ++executed_;
    action();
    ++count;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

}  // namespace micropnp
