// The seed discrete-event scheduler: a binary heap of (time, sequence) keys.
//
// Kept as the obviously-correct reference implementation for the timing
// wheel's differential property test (tests/timing_wheel_test.cpp): random
// traces of ScheduleAt/ScheduleAfter/Cancel/Step/RunUntil replay against both
// schedulers and must produce identical execution order, clock values and
// executed() counts.
//
// One deliberate change from the seed: actions live in a hash map instead of
// a linearly scanned tombstone vector, so Cancel() and per-event lookup are
// O(1) instead of O(pending) — large differential traces would otherwise be
// quadratic in the reference itself.  Scheduling stays O(log pending) via the
// heap; the production Scheduler (src/sim/scheduler.h) is the O(1) wheel.

#ifndef SRC_SIM_REFERENCE_SCHEDULER_H_
#define SRC_SIM_REFERENCE_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/sim/clock.h"

namespace micropnp {

class ReferenceScheduler {
 public:
  using Action = std::function<void()>;
  using EventId = uint64_t;

  ReferenceScheduler() = default;
  ReferenceScheduler(const ReferenceScheduler&) = delete;
  ReferenceScheduler& operator=(const ReferenceScheduler&) = delete;

  SimTime now() const { return now_; }

  EventId ScheduleAt(SimTime when, Action action);
  EventId ScheduleAfter(SimDuration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  bool Cancel(EventId id);

  size_t Run();
  size_t RunUntil(SimTime deadline);
  bool Step();

  bool empty() const { return actions_.empty(); }
  size_t pending() const { return actions_.size(); }
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t sequence;
    EventId id;
    // Ordered as a max-heap by default; invert for earliest-first.
    bool operator<(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return sequence > other.sequence;
    }
  };

  SimTime now_;
  uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Entry> queue_;
  // Live actions by id; a queue entry whose id is absent was cancelled and
  // is discarded when popped.
  std::unordered_map<EventId, Action> actions_;
};

}  // namespace micropnp

#endif  // SRC_SIM_REFERENCE_SCHEDULER_H_
