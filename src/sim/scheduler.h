// Discrete-event scheduler on a hierarchical timing wheel.
//
// Events are closures ordered by (time, insertion order).  Equal-time events
// run in FIFO order, which keeps the simulation deterministic.
//
// The seed implementation was a binary heap plus a linear-scan tombstone
// vector: O(pending) per Cancel() and per executed event, which capped the
// gateway benchmarks at a few dozen Things.  This scheduler is the classic
// kernel-timer answer to mass deadlines — a hashed hierarchical timing wheel
// (Varghese & Lauck): 10 levels of 64 slots each, 1 ns resolution at level 0,
// spanning 2^60 ns (~36 years of simulated time) before overflowing to a
// sorted spill map.  Schedule and Cancel are O(1); finding the next event
// scans per-level occupancy bitmaps and cascades higher-level slots on demand,
// so an event is re-slotted at most once per level over its lifetime.
//
// Exact discrete-event semantics are preserved (and differentially tested in
// tests/timing_wheel_test.cpp against ReferenceScheduler, the seed heap):
// events reach the ready list only when they share a single timestamp —
// via a level-0 slot (which covers exactly one nanosecond) or due exactly at
// the wheel origin after a cascade or overflow migration — and every such
// batch is sorted by sequence to restore global FIFO order.  Cancelled
// events are removed from their slot immediately (swap-and-pop, with the
// id -> location table patched), so the wheel holds no tombstones and memory
// stays O(pending events); the sequence sort is what makes that reordering
// invisible.

#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/sim/clock.h"

namespace micropnp {

// Cheap monotonic probes of the wheel's algorithmic work, used by the
// linearity regression test: a schedule+cancel workload must cascade nothing,
// and total work must stay proportional to the number of operations.
struct SchedulerStats {
  uint64_t scheduled = 0;
  uint64_t cancelled = 0;
  uint64_t cascaded_entries = 0;   // entries re-slotted by a cascade
  uint64_t slot_collections = 0;   // level-0 slots moved to the ready list
};

class Scheduler {
 public:
  using Action = std::function<void()>;
  using EventId = uint64_t;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  // Schedules `action` to run at absolute time `when` (clamped to now).
  // Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, Action action);

  // Schedules `action` to run `delay` after the current time.
  EventId ScheduleAfter(SimDuration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  // Cancels a pending event.  Returns false if it already ran or is unknown.
  bool Cancel(EventId id);

  // Runs events until the queue drains.  Returns the number of events run.
  size_t Run();

  // Runs events with time <= deadline; leaves later events queued and
  // advances the clock to `deadline`.  Returns the number of events run.
  size_t RunUntil(SimTime deadline);

  // Runs a single event if one is pending.  Returns true if an event ran.
  bool Step();

  bool empty() const { return records_.empty(); }
  size_t pending() const { return records_.size(); }

  // Total events executed since construction (for sanity checks in tests).
  uint64_t executed() const { return executed_; }

  const SchedulerStats& stats() const { return stats_; }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;           // 64
  static constexpr int kLevels = 10;                      // 2^60 ns span
  static constexpr int kSpanBits = kSlotBits * kLevels;   // 60

  enum class Location : uint8_t { kWheel, kOverflow, kReady };

  struct Entry {
    uint64_t when_ns;
    uint64_t sequence;
    EventId id;
  };
  struct Level {
    uint64_t occupied = 0;  // bit s set <=> slots[s] non-empty
    std::array<std::vector<Entry>, kSlots> slots;
  };
  // Where a pending event currently lives, so Cancel() can excise it in O(1).
  struct Record {
    Action action;
    uint64_t when_ns = 0;
    Location location = Location::kReady;
    uint8_t level = 0;
    uint8_t slot = 0;
    uint32_t index = 0;  // position inside the slot / overflow bucket vector
  };

  // Slots the entry relative to base_ns_ and updates its record.
  void Insert(const Entry& entry, Record& record);
  // Removes the entry from its wheel slot or overflow bucket (swap-and-pop,
  // patching the displaced entry's record).  kReady entries stay in place and
  // are skipped when popped.
  void Excise(const Record& record, EventId id);
  // Advances the wheel (cascading as needed, never past `limit_ns`) until the
  // ready list holds a live event, or returns false if the next live event
  // lies beyond the limit (or none exists).  Does not run anything.
  bool AdvanceToNext(uint64_t limit_ns);
  // Pops the live head of the ready list and runs it (caller guarantees one
  // exists via AdvanceToNext).
  void ExecuteReadyHead();
  // Restores FIFO order among the same-timestamp entries on the ready list
  // (Excise's swap-and-pop perturbs slot/bucket order, so every batch moved
  // onto the list must be re-sorted before serving).
  void SortReadyBySequence();

  SimTime now_;
  // Wheel reference time: every pending event satisfies when >= base_ns_, and
  // slot indices are the bits of the absolute timestamp relative to this
  // origin.  Always <= now_.nanos() at public API boundaries.
  uint64_t base_ns_ = 0;
  uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::array<Level, kLevels> levels_;
  // Events more than 2^60 ns past base_: kept in a sorted spill map and
  // migrated into the wheel when base_ reaches their window.
  std::map<uint64_t, std::vector<Entry>> overflow_;
  // Events due at base_ns_, sorted by sequence, consumed front-to-back.
  std::vector<Entry> ready_;
  size_t ready_next_ = 0;
  std::unordered_map<EventId, Record> records_;
  SchedulerStats stats_;
};

}  // namespace micropnp

#endif  // SRC_SIM_SCHEDULER_H_
