// Discrete-event scheduler.
//
// Events are closures ordered by (time, insertion order).  Equal-time events
// run in FIFO order, which keeps the simulation deterministic.

#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/clock.h"

namespace micropnp {

class Scheduler {
 public:
  using Action = std::function<void()>;
  using EventId = uint64_t;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  // Schedules `action` to run at absolute time `when` (clamped to now).
  // Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, Action action);

  // Schedules `action` to run `delay` after the current time.
  EventId ScheduleAfter(SimDuration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  // Cancels a pending event.  Returns false if it already ran or is unknown.
  bool Cancel(EventId id);

  // Runs events until the queue drains.  Returns the number of events run.
  size_t Run();

  // Runs events with time <= deadline; leaves later events queued and
  // advances the clock to `deadline`.  Returns the number of events run.
  size_t RunUntil(SimTime deadline);

  // Runs a single event if one is pending.  Returns true if an event ran.
  bool Step();

  bool empty() const { return pending_count_ == 0; }
  size_t pending() const { return pending_count_; }

  // Total events executed since construction (for sanity checks in tests).
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t sequence;
    EventId id;
    // Ordered as a max-heap by default; invert for earliest-first.
    bool operator<(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return sequence > other.sequence;
    }
  };

  SimTime now_;
  uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  size_t pending_count_ = 0;
  std::priority_queue<Entry> queue_;
  // Actions stored separately so cancellation is O(1) (tombstone).
  std::vector<std::pair<EventId, Action>> actions_;

  Action TakeAction(EventId id);
};

}  // namespace micropnp

#endif  // SRC_SIM_SCHEDULER_H_
