#include "src/sim/clock.h"

#include <cstdio>

namespace micropnp {

std::string SimTime::ToString() const {
  char buf[32];
  if (ns_ < 1000ull) {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(ns_));
  } else if (ns_ < 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.3fus", micros());
  } else if (ns_ < 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.3fms", millis());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds());
  }
  return std::string(buf);
}

}  // namespace micropnp
