// Peripheral interconnect kinds encapsulated by the μPnP bus (Sections 3.1,
// Table 1).  The control board multiplexes connector pins 10..12 onto one of
// these buses once the peripheral type is identified.

#ifndef SRC_COMMON_BUS_KIND_H_
#define SRC_COMMON_BUS_KIND_H_

#include <cstdint>

namespace micropnp {

enum class BusKind : uint8_t {
  kAdc = 0,
  kI2c = 1,
  kSpi = 2,
  kUart = 3,
};

inline const char* BusKindName(BusKind kind) {
  switch (kind) {
    case BusKind::kAdc:
      return "ADC";
    case BusKind::kI2c:
      return "I2C";
    case BusKind::kSpi:
      return "SPI";
    case BusKind::kUart:
      return "UART";
  }
  return "?";
}

}  // namespace micropnp

#endif  // SRC_COMMON_BUS_KIND_H_
