// Deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (component tolerances, CSMA
// jitter, environment noise) draws from a seeded SplitMix64 stream so that
// simulations and benchmarks are reproducible run-to-run.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace micropnp {

// SplitMix64: tiny, fast, passes BigCrush when used as a 64-bit stream.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [lo, hi] (inclusive).
  uint64_t UniformInt(uint64_t lo, uint64_t hi) {
    if (hi <= lo) {
      return lo;
    }
    return lo + NextU64() % (hi - lo + 1);
  }

  // Standard normal via Box-Muller (no caching; cheap enough for simulation).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Normal with mean/stddev.
  double Gaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Derives an independent child stream (useful for giving each simulated
  // node its own stream while keeping the scenario seed stable).
  Rng Fork() { return Rng(NextU64() ^ 0xa02bdbf7bb3c0a7ull); }

 private:
  uint64_t state_;
};

}  // namespace micropnp

#endif  // SRC_COMMON_RNG_H_
