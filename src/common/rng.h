// Deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (component tolerances, CSMA
// jitter, environment noise) draws from a seeded SplitMix64 stream so that
// simulations and benchmarks are reproducible run-to-run.
//
// Threading contract (the parallel runtime depends on this):
//
//   An Rng is NOT thread-safe and must be *shard-confined*: every stream is
//   owned by exactly one shard (or by the single-threaded setup phase) and
//   only ever advanced from that shard's context.  Nothing in the codebase
//   may share one Rng across worker threads — concurrent NextU64 calls race
//   on state_ and, worse, silently destroy reproducibility.  Components that
//   exist per shard or per node (the fabric's route contexts, each Thing,
//   each Shard) derive their own independent stream at construction via
//   Fork() / Fork(salt) from a parent stream, which keeps the scenario seed
//   the single source of randomness while giving every owner a private
//   stream.  Fork(salt) is deterministic in (parent state, salt), so forking
//   N shard streams from one parent is itself reproducible.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace micropnp {

// SplitMix64: tiny, fast, passes BigCrush when used as a 64-bit stream.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [lo, hi] (inclusive).
  uint64_t UniformInt(uint64_t lo, uint64_t hi) {
    if (hi <= lo) {
      return lo;
    }
    return lo + NextU64() % (hi - lo + 1);
  }

  // Standard normal via Box-Muller (no caching; cheap enough for simulation).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Normal with mean/stddev.
  double Gaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Derives an independent child stream (useful for giving each simulated
  // node its own stream while keeping the scenario seed stable).
  Rng Fork() { return Rng(NextU64() ^ 0xa02bdbf7bb3c0a7ull); }

  // Salted fork: derives the child stream from the current state and `salt`
  // WITHOUT advancing this stream.  Used to give each shard its own
  // deterministic stream (salt = shard index) so the set of streams does not
  // depend on the order shards are constructed in.
  Rng Fork(uint64_t salt) const {
    Rng child(state_ ^ (0x9e3779b97f4a7c15ull * (salt + 0x51ed2701)));
    child.NextU64();  // decorrelate from the raw seed
    return child;
  }

 private:
  uint64_t state_;
};

}  // namespace micropnp

#endif  // SRC_COMMON_RNG_H_
