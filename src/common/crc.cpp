#include "src/common/crc.h"

#include <array>

namespace micropnp {
namespace {

constexpr std::array<uint32_t, 256> BuildCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256> kCrc32Table = BuildCrc32Table();

}  // namespace

uint16_t Crc16Ccitt(ByteSpan data) {
  uint16_t crc = 0xffff;
  for (uint8_t byte : data) {
    crc = static_cast<uint16_t>(crc ^ (static_cast<uint16_t>(byte) << 8));
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000u) {
        crc = static_cast<uint16_t>((crc << 1) ^ 0x1021u);
      } else {
        crc = static_cast<uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

uint32_t Crc32(ByteSpan data) {
  uint32_t crc = 0xffffffffu;
  for (uint8_t byte : data) {
    crc = kCrc32Table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace micropnp
