#include "src/common/tlv.h"

namespace micropnp {

Tlv Tlv::OfString(TlvType type, const std::string& s) {
  Tlv t;
  t.type = static_cast<uint8_t>(type);
  t.value.assign(s.begin(), s.end());
  if (t.value.size() > 255) {
    t.value.resize(255);
  }
  return t;
}

Tlv Tlv::OfU8(TlvType type, uint8_t v) {
  Tlv t;
  t.type = static_cast<uint8_t>(type);
  t.value = {v};
  return t;
}

Tlv Tlv::OfU16(TlvType type, uint16_t v) {
  Tlv t;
  t.type = static_cast<uint8_t>(type);
  t.value = {static_cast<uint8_t>(v >> 8), static_cast<uint8_t>(v & 0xff)};
  return t;
}

Tlv Tlv::OfU32(TlvType type, uint32_t v) {
  Tlv t;
  t.type = static_cast<uint8_t>(type);
  t.value = {static_cast<uint8_t>(v >> 24), static_cast<uint8_t>((v >> 16) & 0xff),
             static_cast<uint8_t>((v >> 8) & 0xff), static_cast<uint8_t>(v & 0xff)};
  return t;
}

std::optional<uint8_t> Tlv::AsU8() const {
  if (value.size() != 1) {
    return std::nullopt;
  }
  return value[0];
}

std::optional<uint16_t> Tlv::AsU16() const {
  if (value.size() != 2) {
    return std::nullopt;
  }
  return static_cast<uint16_t>((static_cast<uint16_t>(value[0]) << 8) | value[1]);
}

std::optional<uint32_t> Tlv::AsU32() const {
  if (value.size() != 4) {
    return std::nullopt;
  }
  return (static_cast<uint32_t>(value[0]) << 24) | (static_cast<uint32_t>(value[1]) << 16) |
         (static_cast<uint32_t>(value[2]) << 8) | static_cast<uint32_t>(value[3]);
}

const Tlv* TlvList::Find(TlvType type) const {
  for (const Tlv& t : tuples_) {
    if (t.type == static_cast<uint8_t>(type)) {
      return &t;
    }
  }
  return nullptr;
}

void TlvList::Serialize(ByteWriter& writer) const {
  writer.WriteU8(static_cast<uint8_t>(tuples_.size() > 255 ? 255 : tuples_.size()));
  size_t count = 0;
  for (const Tlv& t : tuples_) {
    if (count++ == 255) {
      break;
    }
    writer.WriteU8(t.type);
    writer.WriteU8(static_cast<uint8_t>(t.value.size()));
    writer.WriteBytes(ByteSpan(t.value.data(), t.value.size()));
  }
}

Result<TlvList> TlvList::Parse(ByteReader& reader) {
  TlvList list;
  const uint8_t count = reader.ReadU8();
  for (uint8_t i = 0; i < count; ++i) {
    Tlv t;
    t.type = reader.ReadU8();
    const uint8_t len = reader.ReadU8();
    t.value = reader.ReadBytes(len);
    if (!reader.ok()) {
      return CorruptError("truncated TLV list");
    }
    list.Add(std::move(t));
  }
  return list;
}

size_t TlvList::SerializedSize() const {
  size_t size = 1;
  for (const Tlv& t : tuples_) {
    size += 2 + t.value.size();
  }
  return size;
}

}  // namespace micropnp
