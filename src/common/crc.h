// CRC checksums used by driver images (CRC-16/CCITT-FALSE) and network frame
// integrity checks (CRC-32/ISO-HDLC).

#ifndef SRC_COMMON_CRC_H_
#define SRC_COMMON_CRC_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace micropnp {

// CRC-16/CCITT-FALSE: poly 0x1021, init 0xffff, no reflection, no xorout.
// check("123456789") == 0x29b1.
uint16_t Crc16Ccitt(ByteSpan data);

// CRC-32/ISO-HDLC (the zlib CRC): poly 0x04c11db7 reflected, init 0xffffffff,
// xorout 0xffffffff.  check("123456789") == 0xcbf43926.
uint32_t Crc32(ByteSpan data);

}  // namespace micropnp

#endif  // SRC_COMMON_CRC_H_
