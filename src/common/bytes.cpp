#include "src/common/bytes.h"

#include <algorithm>

namespace micropnp {

void ByteWriter::WriteString8(const std::string& s) {
  const size_t len = std::min<size_t>(s.size(), 255);
  WriteU8(static_cast<uint8_t>(len));
  WriteBytes(reinterpret_cast<const uint8_t*>(s.data()), len);
}

void ByteWriter::PatchU16(size_t offset, uint16_t v) {
  if (offset + 2 > buffer_.size()) {
    return;
  }
  buffer_[offset] = static_cast<uint8_t>(v >> 8);
  buffer_[offset + 1] = static_cast<uint8_t>(v & 0xff);
}

bool ByteReader::CheckAvailable(size_t len) {
  if (!ok_ || pos_ + len > data_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ByteReader::ReadU8() {
  if (!CheckAvailable(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint16_t ByteReader::ReadU16() {
  if (!CheckAvailable(2)) {
    return 0;
  }
  uint16_t v = static_cast<uint16_t>(static_cast<uint16_t>(data_[pos_]) << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

uint32_t ByteReader::ReadU32() {
  if (!CheckAvailable(4)) {
    return 0;
  }
  uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 24) |
               (static_cast<uint32_t>(data_[pos_ + 1]) << 16) |
               (static_cast<uint32_t>(data_[pos_ + 2]) << 8) | static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

uint64_t ByteReader::ReadU64() {
  uint64_t hi = ReadU32();
  uint64_t lo = ReadU32();
  return (hi << 32) | lo;
}

std::vector<uint8_t> ByteReader::ReadBytes(size_t len) {
  if (!CheckAvailable(len)) {
    return {};
  }
  std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                           data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

std::string ByteReader::ReadString8() {
  const uint8_t len = ReadU8();
  std::vector<uint8_t> raw = ReadBytes(len);
  return std::string(raw.begin(), raw.end());
}

void ByteReader::Skip(size_t len) {
  if (CheckAvailable(len)) {
    pos_ += len;
  }
}

std::string BytesToHex(ByteSpan bytes) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace micropnp
