#include "src/common/status.h"

namespace micropnp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kBusy:
      return "busy";
    case StatusCode::kCorrupt:
      return "corrupt";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace micropnp
