// Byte-order-aware serialization helpers.
//
// All μPnP wire formats (driver images, protocol messages, TLV tuples) are
// big-endian, matching network byte order on the 6LoWPAN stack.

#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace micropnp {

using ByteSpan = std::span<const uint8_t>;

// Appends big-endian encoded integers and raw bytes to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  // Adopts `reuse` as the output buffer (cleared, capacity kept), so hot
  // paths can serialize repeatedly without reallocating.
  explicit ByteWriter(std::vector<uint8_t>&& reuse) : buffer_(std::move(reuse)) {
    buffer_.clear();
  }

  void WriteU8(uint8_t v) { buffer_.push_back(v); }
  void WriteU16(uint16_t v) {
    buffer_.push_back(static_cast<uint8_t>(v >> 8));
    buffer_.push_back(static_cast<uint8_t>(v & 0xff));
  }
  void WriteU32(uint32_t v) {
    WriteU16(static_cast<uint16_t>(v >> 16));
    WriteU16(static_cast<uint16_t>(v & 0xffff));
  }
  void WriteU64(uint64_t v) {
    WriteU32(static_cast<uint32_t>(v >> 32));
    WriteU32(static_cast<uint32_t>(v & 0xffffffffu));
  }
  void WriteI8(int8_t v) { WriteU8(static_cast<uint8_t>(v)); }
  void WriteI16(int16_t v) { WriteU16(static_cast<uint16_t>(v)); }
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteBytes(ByteSpan bytes) { buffer_.insert(buffer_.end(), bytes.begin(), bytes.end()); }
  void WriteBytes(const uint8_t* data, size_t len) { WriteBytes(ByteSpan(data, len)); }
  void WriteString8(const std::string& s);  // u8 length prefix + bytes, truncates at 255

  // Overwrites a previously written big-endian u16 at `offset` (for patching
  // length fields after the payload is known).
  void PatchU16(size_t offset, uint16_t v);

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t> Take() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

// Reads big-endian encoded integers from a byte span.  All reads are
// bounds-checked; a failed read poisons the reader (ok() turns false) and
// returns zero values, so call sites may batch reads and check once.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  uint8_t ReadU8();
  uint16_t ReadU16();
  uint32_t ReadU32();
  uint64_t ReadU64();
  int8_t ReadI8() { return static_cast<int8_t>(ReadU8()); }
  int16_t ReadI16() { return static_cast<int16_t>(ReadU16()); }
  int32_t ReadI32() { return static_cast<int32_t>(ReadU32()); }
  // Copies `len` bytes out; returns an empty vector (and poisons) on underrun.
  std::vector<uint8_t> ReadBytes(size_t len);
  std::string ReadString8();
  // Skips `len` bytes.
  void Skip(size_t len);

 private:
  bool CheckAvailable(size_t len);

  ByteSpan data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Renders bytes as lowercase hex, e.g. {0xde, 0xad} -> "dead".
std::string BytesToHex(ByteSpan bytes);

}  // namespace micropnp

#endif  // SRC_COMMON_BYTES_H_
