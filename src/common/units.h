// Strongly-typed physical quantities for the hardware simulation.
//
// The identification circuit (Section 3) lives and dies by `T = k * R * C`;
// strong types keep ohms, farads, seconds and joules from being mixed up.

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <compare>
#include <cstdint>

namespace micropnp {

// A thin strong-typedef over double.  Tag types make each quantity distinct.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() : value_(0.0) {}
  constexpr explicit Quantity(double value) : value_(value) {}

  constexpr double value() const { return value_; }

  constexpr Quantity operator+(Quantity other) const { return Quantity(value_ + other.value_); }
  constexpr Quantity operator-(Quantity other) const { return Quantity(value_ - other.value_); }
  constexpr Quantity operator*(double s) const { return Quantity(value_ * s); }
  constexpr Quantity operator/(double s) const { return Quantity(value_ / s); }
  constexpr double operator/(Quantity other) const { return value_ / other.value_; }
  Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr auto operator<=>(const Quantity&) const = default;

 private:
  double value_;
};

struct OhmsTag {};
struct FaradsTag {};
struct SecondsTag {};
struct JoulesTag {};
struct WattsTag {};
struct AmpsTag {};
struct VoltsTag {};

using Ohms = Quantity<OhmsTag>;
using Farads = Quantity<FaradsTag>;
using Seconds = Quantity<SecondsTag>;
using Joules = Quantity<JoulesTag>;
using Watts = Quantity<WattsTag>;
using Amps = Quantity<AmpsTag>;
using Volts = Quantity<VoltsTag>;

// Dimension-aware combinators for the quantities we actually use.
constexpr Seconds PulseLength(double k, Ohms r, Farads c) {
  return Seconds(k * r.value() * c.value());
}
constexpr Watts Power(Volts v, Amps i) { return Watts(v.value() * i.value()); }
constexpr Joules Energy(Watts p, Seconds t) { return Joules(p.value() * t.value()); }

constexpr Ohms KiloOhms(double k) { return Ohms(k * 1e3); }
constexpr Ohms MegaOhms(double m) { return Ohms(m * 1e6); }
constexpr Farads NanoFarads(double n) { return Farads(n * 1e-9); }
constexpr Farads PicoFarads(double p) { return Farads(p * 1e-12); }
constexpr Seconds MilliSeconds(double ms) { return Seconds(ms * 1e-3); }
constexpr Seconds MicroSeconds(double us) { return Seconds(us * 1e-6); }
constexpr Amps MilliAmps(double ma) { return Amps(ma * 1e-3); }
constexpr Joules MilliJoules(double mj) { return Joules(mj * 1e-3); }

// Seconds in one Julian-ish year as used by the Figure 12 simulation: the
// paper plots "1 year energy consumption"; we use 365.25 days.
inline constexpr double kSecondsPerYear = 365.25 * 24.0 * 3600.0;
inline constexpr double kMinutesPerYear = 365.25 * 24.0 * 60.0;

}  // namespace micropnp

#endif  // SRC_COMMON_UNITS_H_
