// Type-Length-Value tuples, as used in μPnP advertisement and discovery
// messages (Section 5.2.1): "a set of type-length-value (TLV) encoded tuples
// containing extra information about each peripheral".
//
// Wire format of one tuple:  u8 type | u8 length | `length` value bytes.

#ifndef SRC_COMMON_TLV_H_
#define SRC_COMMON_TLV_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace micropnp {

// Well-known TLV types used by the reproduction.  The paper leaves the TLV
// vocabulary open; these cover what the prototype needs.
enum class TlvType : uint8_t {
  kFriendlyName = 0x01,    // UTF-8 peripheral name, e.g. "TMP36"
  kVendor = 0x02,          // UTF-8 vendor string
  kUnit = 0x03,            // UTF-8 engineering unit, e.g. "degC"
  kBusKind = 0x04,         // u8, maps to bus::BusKind
  kDriverVersion = 0x05,   // u16 driver version
  kChannel = 0x06,         // u8 physical channel the peripheral occupies
  kStreamPeriodMs = 0x07,  // u32 streaming period hint
  kLocation = 0x08,        // UTF-8 free-form deployment location
  kModelFacets = 0x09,     // u16 device-model facets (src/model/device_model.h)
};

struct Tlv {
  uint8_t type = 0;
  std::vector<uint8_t> value;

  static Tlv OfString(TlvType type, const std::string& s);
  static Tlv OfU8(TlvType type, uint8_t v);
  static Tlv OfU16(TlvType type, uint16_t v);
  static Tlv OfU32(TlvType type, uint32_t v);

  std::string AsString() const { return std::string(value.begin(), value.end()); }
  std::optional<uint8_t> AsU8() const;
  std::optional<uint16_t> AsU16() const;
  std::optional<uint32_t> AsU32() const;

  bool operator==(const Tlv& other) const = default;
};

// An ordered list of TLV tuples with serialization helpers.
class TlvList {
 public:
  TlvList() = default;

  void Add(Tlv tlv) { tuples_.push_back(std::move(tlv)); }
  void AddString(TlvType type, const std::string& s) { Add(Tlv::OfString(type, s)); }
  void AddU8(TlvType type, uint8_t v) { Add(Tlv::OfU8(type, v)); }
  void AddU16(TlvType type, uint16_t v) { Add(Tlv::OfU16(type, v)); }
  void AddU32(TlvType type, uint32_t v) { Add(Tlv::OfU32(type, v)); }

  // First tuple of the given type, if present.
  const Tlv* Find(TlvType type) const;

  const std::vector<Tlv>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  // Serializes as: u8 count | tuples...
  void Serialize(ByteWriter& writer) const;
  // Parses the same format; poisons `reader` on malformed input.
  static Result<TlvList> Parse(ByteReader& reader);

  // Total serialized size in bytes.
  size_t SerializedSize() const;

  bool operator==(const TlvList& other) const = default;

 private:
  std::vector<Tlv> tuples_;
};

}  // namespace micropnp

#endif  // SRC_COMMON_TLV_H_
