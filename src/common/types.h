// Core scalar types shared across the μPnP reproduction.
//
// The paper assigns every peripheral *type* a 32-bit identifier produced by the
// hardware identification circuit (Section 3) and mapped into the global μPnP
// address space.  Channels are the physical slots on the control board.

#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace micropnp {

// 32-bit device *type* identifier (Section 3: four pulse intervals, one byte
// each).  0x00000000 and 0xffffffff are reserved by the multicast addressing
// schema (Section 5.1): "all peripherals" and "all clients" respectively.
using DeviceTypeId = uint32_t;

inline constexpr DeviceTypeId kDeviceTypeAllPeripherals = 0x00000000u;
inline constexpr DeviceTypeId kDeviceTypeAllClients = 0xffffffffu;

// Physical channel index on a μPnP control board.  The Arduino-shield
// prototype in the paper exposes three channels (A..C, Figure 5/6).
using ChannelId = uint8_t;

inline constexpr ChannelId kInvalidChannel = 0xff;

// Sequence number carried by every protocol message (Section 5.2): "All
// messages carry a unique 16-bit unsigned sequence number".
using SequenceNumber = uint16_t;

// UDP port used by the μPnP interaction protocol (Section 5.2).
inline constexpr uint16_t kMicroPnpUdpPort = 6030;

// Returns the canonical 8-hex-digit rendering of a device type id, e.g.
// "0xad1cbe01" as printed throughout the paper.
std::string FormatDeviceTypeId(DeviceTypeId id);

// Splits a device type id into the four identification bytes B1..B4 (B1 is
// the most significant byte, produced by the first pulse T1).
inline constexpr uint8_t DeviceTypeByte(DeviceTypeId id, int index) {
  return static_cast<uint8_t>((id >> (8 * (3 - index))) & 0xffu);
}

// Recomposes a device type id from its four identification bytes.
inline constexpr DeviceTypeId MakeDeviceTypeId(uint8_t b1, uint8_t b2, uint8_t b3, uint8_t b4) {
  return (static_cast<DeviceTypeId>(b1) << 24) | (static_cast<DeviceTypeId>(b2) << 16) |
         (static_cast<DeviceTypeId>(b3) << 8) | static_cast<DeviceTypeId>(b4);
}

}  // namespace micropnp

#endif  // SRC_COMMON_TYPES_H_
