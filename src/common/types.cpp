#include "src/common/types.h"

#include <cstdio>

namespace micropnp {

std::string FormatDeviceTypeId(DeviceTypeId id) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", id);
  return std::string(buf);
}

}  // namespace micropnp
