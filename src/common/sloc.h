// Source-lines-of-code counting, used to reproduce Table 3 ("Development
// efforts and memory footprint of device drivers").
//
// The paper reports SLoC for μPnP DSL drivers and for native C drivers.  We
// count non-blank, non-comment lines, which is the conventional SLoC metric.

#ifndef SRC_COMMON_SLOC_H_
#define SRC_COMMON_SLOC_H_

#include <string>
#include <string_view>

namespace micropnp {

enum class SlocLanguage {
  kMicroPnpDsl,  // '#' line comments
  kC,            // '//' line comments and '/* ... */' block comments
};

// Counts source lines of code in `source`: lines that contain at least one
// non-whitespace character that is not part of a comment.
int CountSloc(std::string_view source, SlocLanguage language);

}  // namespace micropnp

#endif  // SRC_COMMON_SLOC_H_
