#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace micropnp {
namespace {

// Relaxed is enough: the level is a filter, not a synchronization point, and
// any thread observing a slightly stale level only logs (or drops) a line.
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* tag, const std::string& message) {
  if (level < GetLogLevel()) {
    return;
  }
  // Shard workers log concurrently.  POSIX guarantees stdio calls are
  // atomic with respect to each other (flockfile internally), so emitting
  // the whole line in ONE fprintf keeps concurrent lines from interleaving
  // mid-line; a line assembled from several calls would not be safe.
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), tag, message.c_str());
}

}  // namespace micropnp
