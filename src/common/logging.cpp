#include "src/common/logging.h"

#include <cstdio>

namespace micropnp {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* tag, const std::string& message) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), tag, message.c_str());
}

}  // namespace micropnp
