// Error model for the μPnP reproduction.
//
// The library is exception-free on all hot paths (embedded-systems idiom);
// fallible operations return Status or Result<T>.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace micropnp {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kBusy,
  kCorrupt,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
};

// Human-readable name of a status code ("ok", "deadline_exceeded", ...).
const char* StatusCodeName(StatusCode code);

// A status is a code plus an optional context message.  Cheap to copy when OK
// (empty message), explicit about failures otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "code: message".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRange(std::string msg) { return Status(StatusCode::kOutOfRange, std::move(msg)); }
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status BusyError(std::string msg) { return Status(StatusCode::kBusy, std::move(msg)); }
inline Status CorruptError(std::string msg) { return Status(StatusCode::kCorrupt, std::move(msg)); }
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status CancelledError(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return SomeStatus();` both
  // work, mirroring absl::StatusOr ergonomics.
  Result(T value) : state_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(state_).ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(state_);
  }

  T& value() {
    assert(ok());
    return std::get<T>(state_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(state_);
  }

  T value_or(T fallback) const { return ok() ? std::get<T>(state_) : std::move(fallback); }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> state_;
};

// Propagates a non-OK status from an expression, mirroring RETURN_IF_ERROR.
#define MICROPNP_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::micropnp::Status status_macro_tmp = (expr); \
    if (!status_macro_tmp.ok()) {                 \
      return status_macro_tmp;                    \
    }                                             \
  } while (false)

}  // namespace micropnp

#endif  // SRC_COMMON_STATUS_H_
