#include "src/common/sloc.h"

namespace micropnp {

int CountSloc(std::string_view source, SlocLanguage language) {
  int sloc = 0;
  bool in_block_comment = false;
  size_t pos = 0;
  while (pos <= source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = source.size();
    }
    std::string_view line = source.substr(pos, eol - pos);

    bool has_code = false;
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (in_block_comment) {
        if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (language == SlocLanguage::kMicroPnpDsl && c == '#') {
        break;  // rest of line is comment
      }
      if (language == SlocLanguage::kC && c == '/' && i + 1 < line.size()) {
        if (line[i + 1] == '/') {
          break;
        }
        if (line[i + 1] == '*') {
          in_block_comment = true;
          ++i;
          continue;
        }
      }
      if (c != ' ' && c != '\t' && c != '\r') {
        has_code = true;
      }
    }
    if (has_code) {
      ++sloc;
    }
    if (eol == source.size()) {
      break;
    }
    pos = eol + 1;
  }
  return sloc;
}

}  // namespace micropnp
