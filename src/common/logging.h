// Minimal leveled logger.  Defaults to warnings-and-up so tests and benches
// stay quiet; examples turn on info logging to narrate the scenario.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace micropnp {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kNone = 5,
};

// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr: "[level] tag: message".
void LogMessage(LogLevel level, const char* tag, const std::string& message);

// Stream-style helper: MLOG(kInfo, "net") << "joined group " << addr;
class LogStream {
 public:
  LogStream(LogLevel level, const char* tag) : level_(level), tag_(tag) {}
  ~LogStream() {
    if (level_ >= GetLogLevel()) {
      LogMessage(level_, tag_, stream_.str());
    }
  }
  template <typename T>
  LogStream& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) {
      stream_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  const char* tag_;
  std::ostringstream stream_;
};

#define MLOG(level, tag) ::micropnp::LogStream(::micropnp::LogLevel::level, tag)

}  // namespace micropnp

#endif  // SRC_COMMON_LOGGING_H_
