// Peripheral abstraction: a physical μPnP module.
//
// A peripheral couples (a) the four identification resistors that encode its
// device type (Section 3.1) with (b) a behavioural device model speaking one
// of the four interconnects.  Plugging a peripheral into a Thing connects
// both: the control board sees the resistors; the channel bus sees the
// device.

#ifndef SRC_PERIPH_PERIPHERAL_H_
#define SRC_PERIPH_PERIPHERAL_H_

#include <string>

#include "src/bus/channel_bus.h"
#include "src/common/bus_kind.h"
#include "src/common/types.h"

namespace micropnp {

// Well-known device type identifiers of the reproduction's peripherals, as
// they would appear in the global μPnP address space (Section 3.3).
inline constexpr DeviceTypeId kTmp36TypeId = 0xad1c0001;     // ADC temperature
inline constexpr DeviceTypeId kHih4030TypeId = 0xad1c0002;   // ADC humidity
inline constexpr DeviceTypeId kId20LaTypeId = 0xbe030003;    // UART RFID reader
inline constexpr DeviceTypeId kBmp180TypeId = 0x0a0b0004;    // I2C pressure
inline constexpr DeviceTypeId kRelayTypeId = 0xac700005;     // SPI relay actuator

class Peripheral {
 public:
  virtual ~Peripheral() = default;

  virtual DeviceTypeId type_id() const = 0;
  virtual BusKind bus() const = 0;
  virtual std::string name() const = 0;

  // Wires the device model onto the channel's bus port of the right kind.
  virtual void AttachTo(ChannelBus& bus) = 0;
  virtual void DetachFrom(ChannelBus& bus) = 0;
};

}  // namespace micropnp

#endif  // SRC_PERIPH_PERIPHERAL_H_
