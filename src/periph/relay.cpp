#include "src/periph/relay.h"

namespace micropnp {

void Relay::OnSelect(SimTime /*now*/) {
  byte_index_ = 0;
  command_ = 0;
}

uint8_t Relay::Exchange(uint8_t mosi_byte, SimTime /*now*/) {
  if (byte_index_++ == 0) {
    command_ = mosi_byte;
    return kReadyMarker;
  }
  switch (command_) {
    case kCmdSet: {
      const bool next = (mosi_byte != 0);
      if (next != closed_) {
        closed_ = next;
        ++switch_count_;
        if (observer_) {
          observer_(closed_);
        }
      }
      return closed_ ? 1 : 0;
    }
    case kCmdGet:
      return closed_ ? 1 : 0;
    default:
      return 0xff;  // unknown command
  }
}

}  // namespace micropnp
