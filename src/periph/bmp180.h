// BMP180 digital barometric pressure sensor (Bosch), the paper's I2C
// prototype peripheral.
//
// Full register-level model: calibration EEPROM at 0xAA..0xBF, control
// register 0xF4 (0x2E starts a temperature conversion, 0x34|oss<<6 a pressure
// conversion), results in 0xF6..0xF8, chip-id 0x55 at 0xD0, soft reset at
// 0xE0.  Conversion timing follows the datasheet; reading the output
// registers before the conversion completes returns the previous result —
// exactly the trap the datasheet warns driver authors about.

#ifndef SRC_PERIPH_BMP180_H_
#define SRC_PERIPH_BMP180_H_

#include <array>
#include <cstdint>

#include "src/bus/i2c.h"
#include "src/periph/bmp180_math.h"
#include "src/periph/environment.h"
#include "src/periph/peripheral.h"

namespace micropnp {

class Bmp180 : public Peripheral, public I2cDevice {
 public:
  static constexpr uint8_t kI2cAddress = 0x77;
  static constexpr uint8_t kChipId = 0x55;

  static constexpr uint8_t kRegCalibrationStart = 0xaa;
  static constexpr uint8_t kRegChipId = 0xd0;
  static constexpr uint8_t kRegSoftReset = 0xe0;
  static constexpr uint8_t kRegCtrlMeas = 0xf4;
  static constexpr uint8_t kRegOutMsb = 0xf6;

  static constexpr uint8_t kCmdReadTemperature = 0x2e;
  static constexpr uint8_t kCmdReadPressureBase = 0x34;  // | oss << 6
  static constexpr uint8_t kCmdSoftReset = 0xb6;

  Bmp180(const Environment& env, const Bmp180Calibration& cal = Bmp180Calibration{})
      : env_(env), cal_(cal) {}

  // Peripheral:
  DeviceTypeId type_id() const override { return kBmp180TypeId; }
  BusKind bus() const override { return BusKind::kI2c; }
  std::string name() const override { return "BMP180"; }
  void AttachTo(ChannelBus& bus) override { (void)bus.i2c().Attach(this); }
  void DetachFrom(ChannelBus& bus) override { (void)bus.i2c().Detach(this); }

  // I2cDevice:
  uint8_t address() const override { return kI2cAddress; }
  Status OnWrite(ByteSpan data, SimTime now) override;
  Result<std::vector<uint8_t>> OnRead(size_t count, SimTime now) override;

  const Bmp180Calibration& calibration() const { return cal_; }
  uint64_t conversions_started() const { return conversions_started_; }
  uint64_t premature_reads() const { return premature_reads_; }

 private:
  // Serializes calibration words big-endian into the EEPROM shadow.
  std::array<uint8_t, 22> CalibrationBytes() const;
  void LatchConversionResult(SimTime now);

  const Environment& env_;
  Bmp180Calibration cal_;
  uint8_t register_pointer_ = 0;
  uint8_t ctrl_meas_ = 0;
  bool conversion_pending_ = false;
  bool pending_is_pressure_ = false;
  int pending_oss_ = 0;
  SimTime conversion_ready_at_;
  // Latched output registers (0xF6..0xF8).
  std::array<uint8_t, 3> out_{0, 0, 0};
  int32_t last_b5_ = 0;  // device-internal; drivers must track their own B5
  uint64_t conversions_started_ = 0;
  uint64_t premature_reads_ = 0;
};

}  // namespace micropnp

#endif  // SRC_PERIPH_BMP180_H_
