// HIH-4030 analog relative-humidity sensor (Honeywell), one of the paper's
// four prototype peripherals.
//
// Transfer function (datasheet, ratiometric to supply): Vout =
// Vsupply * (0.0062 * RH + 0.16).  First-order temperature compensation:
// RH_true = RH_sensor / (1.0546 - 0.00216 * T).

#ifndef SRC_PERIPH_HIH4030_H_
#define SRC_PERIPH_HIH4030_H_

#include "src/bus/adc.h"
#include "src/periph/environment.h"
#include "src/periph/peripheral.h"

namespace micropnp {

class Hih4030 : public Peripheral, public AnalogSource {
 public:
  Hih4030(const Environment& env, Volts supply = Volts(3.3)) : env_(env), supply_(supply) {}

  DeviceTypeId type_id() const override { return kHih4030TypeId; }
  BusKind bus() const override { return BusKind::kAdc; }
  std::string name() const override { return "HIH-4030"; }
  void AttachTo(ChannelBus& bus) override { bus.adc().AttachSource(this); }
  void DetachFrom(ChannelBus& bus) override { bus.adc().DetachSource(); }

  Volts VoltageAt(SimTime now) override;

  static double VoltsForHumidity(double rh_pct, double supply_v) {
    return supply_v * (0.0062 * rh_pct + 0.16);
  }
  static double HumidityForVolts(double volts, double supply_v) {
    return (volts / supply_v - 0.16) / 0.0062;
  }
  // Temperature-compensated truth (datasheet first-order correction).
  static double CompensateForTemperature(double rh_sensor, double celsius) {
    return rh_sensor / (1.0546 - 0.00216 * celsius);
  }

 private:
  const Environment& env_;
  Volts supply_;
};

}  // namespace micropnp

#endif  // SRC_PERIPH_HIH4030_H_
