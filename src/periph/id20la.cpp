#include "src/periph/id20la.h"

namespace micropnp {
namespace {

constexpr char kHexUpper[] = "0123456789ABCDEF";

int HexDigit(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  return -1;
}

}  // namespace

std::string Id20LaPayload(const RfidCard& card) {
  std::string payload;
  payload.reserve(12);
  uint8_t checksum = 0;
  for (uint8_t byte : card) {
    payload.push_back(kHexUpper[byte >> 4]);
    payload.push_back(kHexUpper[byte & 0xf]);
    checksum ^= byte;
  }
  payload.push_back(kHexUpper[checksum >> 4]);
  payload.push_back(kHexUpper[checksum & 0xf]);
  return payload;
}

std::vector<uint8_t> BuildId20LaFrame(const RfidCard& card) {
  std::vector<uint8_t> frame;
  frame.reserve(16);
  frame.push_back(0x02);  // STX
  for (char c : Id20LaPayload(card)) {
    frame.push_back(static_cast<uint8_t>(c));
  }
  frame.push_back(0x0d);  // CR
  frame.push_back(0x0a);  // LF
  frame.push_back(0x03);  // ETX
  return frame;
}

bool ValidateId20LaPayload(const std::string& payload) {
  if (payload.size() != 12) {
    return false;
  }
  uint8_t checksum = 0;
  for (int i = 0; i < 5; ++i) {
    const int hi = HexDigit(payload[2 * i]);
    const int lo = HexDigit(payload[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    checksum ^= static_cast<uint8_t>((hi << 4) | lo);
  }
  const int chi = HexDigit(payload[10]);
  const int clo = HexDigit(payload[11]);
  if (chi < 0 || clo < 0) {
    return false;
  }
  return checksum == static_cast<uint8_t>((chi << 4) | clo);
}

bool Id20La::PresentCard(const RfidCard& card) {
  if (port_ == nullptr) {
    return false;
  }
  std::vector<uint8_t> frame = BuildId20LaFrame(card);
  port_->DeviceSendFrame(ByteSpan(frame.data(), frame.size()));
  ++frames_sent_;
  return true;
}

}  // namespace micropnp
