// TMP36 analog temperature sensor (Analog Devices), one of the paper's four
// prototype peripherals.
//
// Transfer function (datasheet): Vout = 0.5 V + 10 mV/degC, i.e. 750 mV at
// 25 degC.  Operating range -40..+125 degC.

#ifndef SRC_PERIPH_TMP36_H_
#define SRC_PERIPH_TMP36_H_

#include "src/bus/adc.h"
#include "src/periph/environment.h"
#include "src/periph/peripheral.h"

namespace micropnp {

class Tmp36 : public Peripheral, public AnalogSource {
 public:
  explicit Tmp36(const Environment& env) : env_(env) {}

  // Peripheral:
  DeviceTypeId type_id() const override { return kTmp36TypeId; }
  BusKind bus() const override { return BusKind::kAdc; }
  std::string name() const override { return "TMP36"; }
  void AttachTo(ChannelBus& bus) override { bus.adc().AttachSource(this); }
  void DetachFrom(ChannelBus& bus) override { bus.adc().DetachSource(); }

  // AnalogSource:
  Volts VoltageAt(SimTime now) override;

  // Datasheet transfer function, exposed for driver verification.
  static double VoltsForTemperature(double celsius) { return 0.5 + 0.01 * celsius; }
  static double TemperatureForVolts(double volts) { return (volts - 0.5) / 0.01; }

 private:
  const Environment& env_;
};

}  // namespace micropnp

#endif  // SRC_PERIPH_TMP36_H_
