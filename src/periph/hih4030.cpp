#include "src/periph/hih4030.h"

namespace micropnp {

Volts Hih4030::VoltageAt(SimTime now) {
  const double rh = env_.HumidityPct(now);
  return Volts(VoltsForHumidity(rh, supply_.value()));
}

}  // namespace micropnp
