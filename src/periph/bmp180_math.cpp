#include "src/periph/bmp180_math.h"

#include <cmath>

namespace micropnp {

int32_t Bmp180ComputeB5(const Bmp180Calibration& cal, int32_t ut) {
  const int32_t x1 = ((ut - static_cast<int32_t>(cal.ac6)) * static_cast<int32_t>(cal.ac5)) >> 15;
  const int32_t x2 = (static_cast<int32_t>(cal.mc) << 11) / (x1 + static_cast<int32_t>(cal.md));
  return x1 + x2;
}

int32_t Bmp180CompensateTemperature(const Bmp180Calibration& cal, int32_t ut) {
  const int32_t b5 = Bmp180ComputeB5(cal, ut);
  return (b5 + 8) >> 4;  // 0.1 degC
}

int32_t Bmp180CompensatePressure(const Bmp180Calibration& cal, int32_t up, int32_t b5, int oss) {
  const int32_t b6 = b5 - 4000;
  int32_t x1 = (static_cast<int32_t>(cal.b2) * ((b6 * b6) >> 12)) >> 11;
  int32_t x2 = (static_cast<int32_t>(cal.ac2) * b6) >> 11;
  int32_t x3 = x1 + x2;
  const int32_t b3 = ((((static_cast<int32_t>(cal.ac1) * 4) + x3) << oss) + 2) / 4;
  x1 = (static_cast<int32_t>(cal.ac3) * b6) >> 13;
  x2 = (static_cast<int32_t>(cal.b1) * ((b6 * b6) >> 12)) >> 16;
  x3 = ((x1 + x2) + 2) >> 2;
  const uint32_t b4 =
      (static_cast<uint32_t>(cal.ac4) * static_cast<uint32_t>(x3 + 32768)) >> 15;
  const uint32_t b7 = (static_cast<uint32_t>(up) - static_cast<uint32_t>(b3)) *
                      static_cast<uint32_t>(50000 >> oss);
  int32_t p;
  if (b7 < 0x80000000u) {
    p = static_cast<int32_t>((b7 * 2) / b4);
  } else {
    p = static_cast<int32_t>((b7 / b4) * 2);
  }
  x1 = (p >> 8) * (p >> 8);
  x1 = (x1 * 3038) >> 16;
  x2 = (-7357 * p) >> 16;
  p = p + ((x1 + x2 + 3791) >> 4);
  return p;
}

int32_t Bmp180RawFromTemperature(const Bmp180Calibration& cal, double celsius) {
  const int32_t target = static_cast<int32_t>(std::lround(celsius * 10.0));
  int32_t lo = 0, hi = 65535;
  while (lo < hi) {
    const int32_t mid = lo + (hi - lo) / 2;
    if (Bmp180CompensateTemperature(cal, mid) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int32_t Bmp180RawFromPressure(const Bmp180Calibration& cal, double pascals, int32_t b5, int oss) {
  const int32_t target = static_cast<int32_t>(std::lround(pascals));
  // UP is a 16+oss bit quantity.
  int32_t lo = 0, hi = (1 << (16 + oss)) - 1;
  while (lo < hi) {
    const int32_t mid = lo + (hi - lo) / 2;
    if (Bmp180CompensatePressure(cal, mid, b5, oss) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double Bmp180ConversionSeconds(bool pressure, int oss) {
  if (!pressure) {
    return 4.5e-3;
  }
  switch (oss) {
    case 0:
      return 4.5e-3;
    case 1:
      return 7.5e-3;
    case 2:
      return 13.5e-3;
    default:
      return 25.5e-3;
  }
}

double Bmp180AltitudeMeters(double pressure_pa, double sea_level_pa) {
  return 44330.0 * (1.0 - std::pow(pressure_pa / sea_level_pa, 1.0 / 5.255));
}

}  // namespace micropnp
