// Physical environment model.
//
// The evaluation peripherals sense real-world quantities; this model supplies
// deterministic, smoothly varying temperature, humidity and barometric
// pressure signals (diurnal sinusoid + incommensurate-period ripple), so
// sensor readings are realistic yet exactly reproducible.

#ifndef SRC_PERIPH_ENVIRONMENT_H_
#define SRC_PERIPH_ENVIRONMENT_H_

#include "src/sim/clock.h"

namespace micropnp {

struct EnvironmentConfig {
  double base_temperature_c = 15.0;
  double diurnal_temperature_amplitude_c = 8.0;
  double temperature_ripple_c = 0.3;

  double base_humidity_pct = 55.0;
  double diurnal_humidity_amplitude_pct = 12.0;
  double humidity_ripple_pct = 1.0;

  double base_pressure_pa = 101325.0;
  double pressure_swing_pa = 600.0;  // synoptic-scale variation
  double pressure_ripple_pa = 30.0;

  // Phase offset so different deployments see different weather.
  double phase = 0.0;
};

class Environment {
 public:
  explicit Environment(const EnvironmentConfig& config = EnvironmentConfig{}) : config_(config) {}

  double TemperatureC(SimTime now) const;
  double HumidityPct(SimTime now) const;  // clamped to [1, 99]
  double PressurePa(SimTime now) const;

  const EnvironmentConfig& config() const { return config_; }

 private:
  EnvironmentConfig config_;
};

}  // namespace micropnp

#endif  // SRC_PERIPH_ENVIRONMENT_H_
