// SPI relay actuator board.
//
// The paper motivates actuators (relay switches) as first-class peripherals;
// this module is the reproduction's writable peripheral and exercises the
// SPI leg of the μPnP bus (Table 1).  Protocol: a 2-byte SPI transaction
// [command, value]; command 0x01 sets the relay state (value 0/1), command
// 0x02 reads it back.  The device answers with [0xA5, state] (0xA5 is the
// ready marker shifted out while the command byte shifts in).

#ifndef SRC_PERIPH_RELAY_H_
#define SRC_PERIPH_RELAY_H_

#include <cstdint>
#include <functional>

#include "src/bus/spi.h"
#include "src/periph/peripheral.h"

namespace micropnp {

class Relay : public Peripheral, public SpiDevice {
 public:
  static constexpr uint8_t kCmdSet = 0x01;
  static constexpr uint8_t kCmdGet = 0x02;
  static constexpr uint8_t kReadyMarker = 0xa5;

  Relay() = default;

  DeviceTypeId type_id() const override { return kRelayTypeId; }
  BusKind bus() const override { return BusKind::kSpi; }
  std::string name() const override { return "Relay"; }
  void AttachTo(ChannelBus& bus) override { bus.spi().AttachDevice(this); }
  void DetachFrom(ChannelBus& bus) override { bus.spi().DetachDevice(); }

  // SpiDevice:
  uint8_t Exchange(uint8_t mosi_byte, SimTime now) override;
  void OnSelect(SimTime now) override;

  bool closed() const { return closed_; }
  uint64_t switch_count() const { return switch_count_; }

  // Observer for scenario assertions (e.g. "the door opened").
  using StateObserver = std::function<void(bool closed)>;
  void set_observer(StateObserver observer) { observer_ = std::move(observer); }

 private:
  bool closed_ = false;
  uint64_t switch_count_ = 0;
  // Per-transaction state machine.
  int byte_index_ = 0;
  uint8_t command_ = 0;
  StateObserver observer_;
};

}  // namespace micropnp

#endif  // SRC_PERIPH_RELAY_H_
