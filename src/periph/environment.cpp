#include "src/periph/environment.h"

#include <algorithm>
#include <cmath>

namespace micropnp {
namespace {

constexpr double kTwoPi = 6.283185307179586;
constexpr double kDaySeconds = 86400.0;

// Smooth deterministic ripple: two incommensurate sinusoids.
double Ripple(double t, double phase) {
  return 0.6 * std::sin(kTwoPi * t / 313.7 + phase) + 0.4 * std::sin(kTwoPi * t / 47.3 + 2.1 * phase);
}

}  // namespace

double Environment::TemperatureC(SimTime now) const {
  const double t = now.seconds();
  const double diurnal =
      std::sin(kTwoPi * t / kDaySeconds + config_.phase - kTwoPi / 4.0);  // coldest at t=0
  return config_.base_temperature_c + config_.diurnal_temperature_amplitude_c * diurnal +
         config_.temperature_ripple_c * Ripple(t, config_.phase);
}

double Environment::HumidityPct(SimTime now) const {
  const double t = now.seconds();
  // Humidity runs inverse to temperature over the day.
  const double diurnal = -std::sin(kTwoPi * t / kDaySeconds + config_.phase - kTwoPi / 4.0);
  const double h = config_.base_humidity_pct + config_.diurnal_humidity_amplitude_pct * diurnal +
                   config_.humidity_ripple_pct * Ripple(t, config_.phase + 1.0);
  return std::clamp(h, 1.0, 99.0);
}

double Environment::PressurePa(SimTime now) const {
  const double t = now.seconds();
  const double synoptic = std::sin(kTwoPi * t / (3.5 * kDaySeconds) + config_.phase);
  return config_.base_pressure_pa + config_.pressure_swing_pa * synoptic +
         config_.pressure_ripple_pa * Ripple(t, config_.phase + 2.0);
}

}  // namespace micropnp
