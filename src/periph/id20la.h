// ID-20LA 125 kHz RFID card reader (ID Innovations), the paper's UART
// prototype peripheral (Listing 1's driver target).
//
// ASCII output format (datasheet): when a card enters the field the module
// transmits one 16-byte frame at 9600 8N1:
//
//   STX(0x02) | 10 ASCII hex data chars | 2 ASCII hex checksum chars |
//   CR(0x0d) | LF(0x0a) | ETX(0x03)
//
// The checksum is the XOR of the five data bytes.  The paper's driver
// (Listing 1) collects the 12 payload characters, ignoring STX/ETX/CR/LF.

#ifndef SRC_PERIPH_ID20LA_H_
#define SRC_PERIPH_ID20LA_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/bus/uart.h"
#include "src/periph/peripheral.h"

namespace micropnp {

// A 5-byte card identifier.
using RfidCard = std::array<uint8_t, 5>;

// Builds the full 16-byte wire frame for a card.
std::vector<uint8_t> BuildId20LaFrame(const RfidCard& card);

// The 12 payload characters (10 data + 2 checksum) as ASCII hex.
std::string Id20LaPayload(const RfidCard& card);

// Validates a 12-character payload (10 data chars + 2 checksum chars).
bool ValidateId20LaPayload(const std::string& payload);

class Id20La : public Peripheral, public UartEndpoint {
 public:
  Id20La() = default;

  DeviceTypeId type_id() const override { return kId20LaTypeId; }
  BusKind bus() const override { return BusKind::kUart; }
  std::string name() const override { return "ID-20LA"; }
  void AttachTo(ChannelBus& bus) override {
    port_ = &bus.uart();
    port_->AttachDevice(this);
  }
  void DetachFrom(ChannelBus& bus) override {
    bus.uart().DetachDevice();
    port_ = nullptr;
  }

  // UartEndpoint: the ID-20LA is transmit-only; host bytes are ignored.
  void OnHostByte(uint8_t /*byte*/, SimTime /*now*/) override {}

  // Simulates a card entering the field: the module emits one frame.
  // Returns false if the peripheral is not attached to a port.
  bool PresentCard(const RfidCard& card);

  uint64_t frames_sent() const { return frames_sent_; }

 private:
  UartPort* port_ = nullptr;
  uint64_t frames_sent_ = 0;
};

}  // namespace micropnp

#endif  // SRC_PERIPH_ID20LA_H_
