#include "src/periph/tmp36.h"

#include <algorithm>

namespace micropnp {

Volts Tmp36::VoltageAt(SimTime now) {
  const double celsius = std::clamp(env_.TemperatureC(now), -40.0, 125.0);
  return Volts(VoltsForTemperature(celsius));
}

}  // namespace micropnp
