// BMP180 calibration structure and the normative datasheet compensation
// algorithm (Bosch BMP180 datasheet, section 3.5).
//
// This algorithm is shared: the simulated device *inverts* it to produce raw
// UT/UP values consistent with the environment's true temperature/pressure,
// and drivers (DSL and native) *apply* it to recover engineering units — so
// a correct driver reproduces the environment exactly.

#ifndef SRC_PERIPH_BMP180_MATH_H_
#define SRC_PERIPH_BMP180_MATH_H_

#include <cstdint>

namespace micropnp {

struct Bmp180Calibration {
  int16_t ac1 = 408;
  int16_t ac2 = -72;
  int16_t ac3 = -14383;
  uint16_t ac4 = 32741;
  uint16_t ac5 = 32757;
  uint16_t ac6 = 23153;
  int16_t b1 = 6190;
  int16_t b2 = 4;
  int16_t mb = -32768;
  int16_t mc = -8711;
  int16_t md = 2868;
};

// Intermediate B5 term, needed by both temperature and pressure compensation.
int32_t Bmp180ComputeB5(const Bmp180Calibration& cal, int32_t ut);

// True temperature in units of 0.1 degC from the raw value UT.
int32_t Bmp180CompensateTemperature(const Bmp180Calibration& cal, int32_t ut);

// True pressure in Pa from the raw value UP at oversampling setting `oss`
// (0..3); `b5` comes from a preceding temperature measurement.
int32_t Bmp180CompensatePressure(const Bmp180Calibration& cal, int32_t up, int32_t b5, int oss);

// Inverse transforms used by the simulated device: find the raw value whose
// compensation matches a physical truth.  Monotonic bisection.
int32_t Bmp180RawFromTemperature(const Bmp180Calibration& cal, double celsius);
int32_t Bmp180RawFromPressure(const Bmp180Calibration& cal, double pascals, int32_t b5, int oss);

// Conversion time per the datasheet: 4.5 ms for temperature; 4.5 / 7.5 /
// 13.5 / 25.5 ms for pressure at oss 0..3.
double Bmp180ConversionSeconds(bool pressure, int oss);

// Barometric altitude (international barometric formula), used by examples.
double Bmp180AltitudeMeters(double pressure_pa, double sea_level_pa = 101325.0);

}  // namespace micropnp

#endif  // SRC_PERIPH_BMP180_MATH_H_
