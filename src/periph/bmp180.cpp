#include "src/periph/bmp180.h"

namespace micropnp {
namespace {

void PutI16(std::array<uint8_t, 22>& buf, int index, int16_t v) {
  buf[index] = static_cast<uint8_t>(static_cast<uint16_t>(v) >> 8);
  buf[index + 1] = static_cast<uint8_t>(static_cast<uint16_t>(v) & 0xff);
}

void PutU16(std::array<uint8_t, 22>& buf, int index, uint16_t v) {
  buf[index] = static_cast<uint8_t>(v >> 8);
  buf[index + 1] = static_cast<uint8_t>(v & 0xff);
}

}  // namespace

std::array<uint8_t, 22> Bmp180::CalibrationBytes() const {
  std::array<uint8_t, 22> bytes{};
  PutI16(bytes, 0, cal_.ac1);
  PutI16(bytes, 2, cal_.ac2);
  PutI16(bytes, 4, cal_.ac3);
  PutU16(bytes, 6, cal_.ac4);
  PutU16(bytes, 8, cal_.ac5);
  PutU16(bytes, 10, cal_.ac6);
  PutI16(bytes, 12, cal_.b1);
  PutI16(bytes, 14, cal_.b2);
  PutI16(bytes, 16, cal_.mb);
  PutI16(bytes, 18, cal_.mc);
  PutI16(bytes, 20, cal_.md);
  return bytes;
}

Status Bmp180::OnWrite(ByteSpan data, SimTime now) {
  if (data.empty()) {
    return InvalidArgument("empty i2c write");
  }
  register_pointer_ = data[0];
  if (data.size() == 1) {
    return OkStatus();  // register pointer set for a subsequent read
  }
  const uint8_t value = data[1];
  switch (register_pointer_) {
    case kRegCtrlMeas: {
      ctrl_meas_ = value;
      const uint8_t command = value & 0x3f;
      if (command == kCmdReadTemperature) {
        pending_is_pressure_ = false;
        pending_oss_ = 0;
      } else if (command == kCmdReadPressureBase) {
        pending_is_pressure_ = true;
        pending_oss_ = (value >> 6) & 0x3;
      } else {
        return InvalidArgument("unknown ctrl_meas command");
      }
      conversion_pending_ = true;
      conversion_ready_at_ =
          now + SimTime::FromSeconds(Bmp180ConversionSeconds(pending_is_pressure_, pending_oss_));
      ++conversions_started_;
      return OkStatus();
    }
    case kRegSoftReset:
      if (value == kCmdSoftReset) {
        conversion_pending_ = false;
        out_ = {0, 0, 0};
        ctrl_meas_ = 0;
      }
      return OkStatus();
    default:
      // Other registers are read-only; the real part NACKs the data byte.
      return InvalidArgument("write to read-only register");
  }
}

void Bmp180::LatchConversionResult(SimTime now) {
  if (!conversion_pending_ || now < conversion_ready_at_) {
    return;
  }
  conversion_pending_ = false;
  ctrl_meas_ &= static_cast<uint8_t>(~0x20);  // sco bit clears on completion
  if (!pending_is_pressure_) {
    const int32_t ut = Bmp180RawFromTemperature(cal_, env_.TemperatureC(now));
    last_b5_ = Bmp180ComputeB5(cal_, ut);
    out_[0] = static_cast<uint8_t>((ut >> 8) & 0xff);
    out_[1] = static_cast<uint8_t>(ut & 0xff);
    out_[2] = 0;
  } else {
    const int32_t up = Bmp180RawFromPressure(cal_, env_.PressurePa(now), last_b5_, pending_oss_);
    // The raw value occupies the top (16 + oss) bits of the 19-bit field.
    const uint32_t shifted = static_cast<uint32_t>(up) << (8 - pending_oss_);
    out_[0] = static_cast<uint8_t>((shifted >> 16) & 0xff);
    out_[1] = static_cast<uint8_t>((shifted >> 8) & 0xff);
    out_[2] = static_cast<uint8_t>(shifted & 0xff);
  }
}

Result<std::vector<uint8_t>> Bmp180::OnRead(size_t count, SimTime now) {
  if (conversion_pending_ && now < conversion_ready_at_ && register_pointer_ == kRegOutMsb) {
    ++premature_reads_;  // caller gets the *previous* latched result
  }
  LatchConversionResult(now);

  std::vector<uint8_t> out;
  out.reserve(count);
  const std::array<uint8_t, 22> cal = CalibrationBytes();
  uint8_t reg = register_pointer_;
  for (size_t i = 0; i < count; ++i, ++reg) {
    if (reg >= kRegCalibrationStart && reg < kRegCalibrationStart + 22) {
      out.push_back(cal[reg - kRegCalibrationStart]);
    } else if (reg == kRegChipId) {
      out.push_back(kChipId);
    } else if (reg == kRegCtrlMeas) {
      // Bit 5 (sco) reads 1 while a conversion is running.
      out.push_back(static_cast<uint8_t>(ctrl_meas_ | (conversion_pending_ ? 0x20 : 0x00)));
    } else if (reg >= kRegOutMsb && reg < kRegOutMsb + 3) {
      out.push_back(out_[reg - kRegOutMsb]);
    } else {
      out.push_back(0x00);
    }
  }
  register_pointer_ = reg;
  return out;
}

}  // namespace micropnp
