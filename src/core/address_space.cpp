#include "src/core/address_space.h"

namespace micropnp {

AddressSpace::AddressSpace(const IdentCircuitConfig& circuit) : codec_(circuit) {}

Result<AddressRecord> AddressSpace::RequestProvisionalAddress(const std::string& name,
                                                              const std::string& organization,
                                                              const std::string& email,
                                                              const std::string& url) {
  if (name.empty() || organization.empty() || email.empty() || url.empty()) {
    return InvalidArgument("name, organization, email and url are all required");
  }
  while (records_.count(next_id_) != 0 || next_id_ == kDeviceTypeAllPeripherals ||
         next_id_ == kDeviceTypeAllClients) {
    ++next_id_;
  }
  return RegisterAddress(next_id_++, name, organization, email, url);
}

Result<AddressRecord> AddressSpace::RegisterAddress(DeviceTypeId id, const std::string& name,
                                                    const std::string& organization,
                                                    const std::string& email,
                                                    const std::string& url) {
  if (id == kDeviceTypeAllPeripherals || id == kDeviceTypeAllClients) {
    return InvalidArgument("reserved device type id");
  }
  auto existing = records_.find(id);
  if (existing != records_.end()) {
    if (existing->second.permanent) {
      return AlreadyExists("address is permanent and immutable");
    }
    return AlreadyExists("address already provisionally allocated");
  }
  AddressRecord record;
  record.id = id;
  record.name = name;
  record.organization = organization;
  record.email = email;
  record.url = url;
  record.resistors = codec_.ResistorsForId(id);  // the "online tool"
  records_[id] = record;
  return record;
}

Status AddressSpace::UploadDriver(DeviceTypeId id, const DriverImage& image) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return NotFound("address not allocated");
  }
  // Validation (the paper's "manual checking", automated here).
  if (image.device_id != id) {
    return InvalidArgument("driver image targets a different device type");
  }
  if (image.FindHandler(kEventInit) == nullptr || image.FindHandler(kEventDestroy) == nullptr) {
    return InvalidArgument("driver must handle init and destroy");
  }
  drivers_[id] = image;
  it->second.permanent = true;  // promotion; further driver updates allowed
  return OkStatus();
}

const AddressRecord* AddressSpace::Lookup(DeviceTypeId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

const DriverImage* AddressSpace::DriverFor(DeviceTypeId id) const {
  auto it = drivers_.find(id);
  return it == drivers_.end() ? nullptr : &it->second;
}

}  // namespace micropnp
