// Bundled μPnP DSL driver sources.
//
// These are the drivers a μPnP Manager's repository ships with (Section 3.3:
// "Provided device drivers are integrated into the µPnP repository, allowing
// for remote deployment on compatible devices").  The authoritative sources
// live in /drivers/*.updl; CMake embeds them at configure time so the
// binaries have no runtime file dependencies.

#ifndef SRC_CORE_DRIVER_SOURCES_H_
#define SRC_CORE_DRIVER_SOURCES_H_

#include <span>

#include "src/common/bus_kind.h"
#include "src/common/types.h"

namespace micropnp {

struct BundledDriver {
  const char* name;        // "TMP36", ...
  DeviceTypeId device_id;  // matches the `device` declaration in the source
  BusKind bus;
  const char* source;      // μPnP DSL text
};

// All bundled drivers (TMP36, HIH-4030, ID-20LA, BMP180, Relay).
std::span<const BundledDriver> BundledDrivers();

// Lookup by device type; nullptr when unknown.
const BundledDriver* FindBundledDriver(DeviceTypeId device_id);

}  // namespace micropnp

#endif  // SRC_CORE_DRIVER_SOURCES_H_
