// Reusable northbound model-gateway benchmark scenario.
//
// M ModelClients over per-shard ModelServers against N Things, in three
// phases:
//
//  1. Read mix (closed loop): `total_reads` property reads round-robin over
//     clients and Things, `read_window` in flight, with a write to a
//     writable (relay) Thing every `write_every`-th operation.  This is the
//     last-value-cache hot path — cold fetches and single-flight joins are
//     the only device transactions; everything else is a cache hit that
//     completes synchronously.
//  2. Hotspot: every client reads ONE Thing once — the "1M clients, one
//     sensor" scenario.  Device reads during this phase bound the
//     transaction amplification of a perfectly contended key (1 when the
//     value expired, 0 while fresh).
//  3. Fan-out: every client subscribes to one (thing, telemetry) pair
//     (clients spread round-robin over Things), the fleet streams for
//     `stream_phase_ms`, and the scenario checks the exactly-once ledger:
//     delivered == sum over fan-outs of upstream_events x subscribers.
//
// Like gateway_bench, the scenario lives in the library because three
// consumers share it: bench_model, the CI smoke step, and the determinism
// regression test.  Results split into deterministic fields (a pure
// function of the options at threads == 1) and wall-clock fields.

#ifndef SRC_CORE_MODEL_BENCH_H_
#define SRC_CORE_MODEL_BENCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace micropnp {

struct ModelBenchOptions {
  int num_things = 64;      // N; every 8th is a writable relay
  int num_clients = 1000;   // M
  int total_reads = 10000;  // phase-1 operations (reads + writes)
  int read_window = 256;    // concurrent in-flight operations
  int write_every = 16;     // every k-th op writes (0 = read-only mix)
  double ttl_ms = 1000.0;   // last-value-cache freshness budget
  uint32_t stream_period_ms = 200;
  double stream_phase_ms = 2000.0;  // phase-3 duration
  double loss_rate = 0.0;
  uint64_t seed = 2015;
  // Worker threads (runtime shards); >1 runs one ModelServer per shard on a
  // shard-pinned client, and only wall-clock fields are reported.
  int threads = 1;
};

struct ModelBenchResult {
  // --- deterministic: a pure function of ModelBenchOptions -------------------
  int num_things = 0;
  int num_clients = 0;
  int threads = 1;
  double loss_rate = 0.0;
  uint64_t seed = 0;
  uint64_t fleet_size = 0;  // Things tracked from advertisements (sum/shards)
  // Phase 1+2 cache ledger (invariants: hits + misses == reads,
  // coalesced + device_reads == misses).
  uint64_t reads = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t coalesced_reads = 0;
  uint64_t device_reads = 0;
  uint64_t read_failures = 0;
  uint64_t writes = 0;
  uint64_t device_writes = 0;
  uint64_t write_failures = 0;
  double hit_rate = 0.0;       // cache_hits / reads
  double amplification = 0.0;  // device_reads / reads (no-cache path == 1.0)
  // Phase 2 (hotspot) slice of the ledger.
  uint64_t hotspot_reads = 0;
  uint64_t hotspot_device_reads = 0;
  // Phase 3 fan-out ledger.
  uint64_t subscriptions = 0;
  uint64_t upstream_events = 0;    // (14)s received across all fan-outs
  uint64_t fanout_delivered = 0;   // subscriber callbacks invoked
  uint64_t fanout_expected = 0;    // sum of upstream_events x subscribers
  uint64_t fanout_exact = 0;       // 1 when delivered == expected
  uint64_t upstream_restarts = 0;  // re-establish attempts (loss recovery)
  double p50_ms = 0.0;             // phase-1 read latency (simulated)
  double p99_ms = 0.0;
  double sim_duration_ms = 0.0;
  uint64_t scheduler_events = 0;
  // --- wall clock: varies run to run -----------------------------------------
  double wall_seconds = 0.0;       // measured phases only (setup excluded)
  double reads_per_second = 0.0;   // phase-1+2 operations / wall_seconds
  double fanout_events_per_second = 0.0;  // deliveries / wall_seconds
};

ModelBenchResult RunModelBench(const ModelBenchOptions& options);

// {"cells": [...]} with only threads == 1 results — byte-stable for a fixed
// option set; the determinism test compares it across runs.
std::string ModelDeterministicCellsJson(const std::vector<ModelBenchResult>& results);
// {"bench": "model", "schema_version": 1, "deterministic": ..., "wall_clock": ...}
std::string ModelBenchJson(const std::vector<ModelBenchResult>& results);

}  // namespace micropnp

#endif  // SRC_CORE_MODEL_BENCH_H_
