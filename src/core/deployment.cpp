#include "src/core/deployment.h"

#include <functional>

namespace micropnp {

Deployment::Deployment(const DeploymentConfig& config)
    : config_(config),
      rng_(config.seed),
      environment_(config.environment),
      fabric_(scheduler_, config.seed ^ 0x6e657477ull, config.link) {
  if (config.num_shards > 1) {
    runtime_ = std::make_unique<ShardedRuntime>(config.num_shards, config.seed ^ 0x73686172ull,
                                                config.shard_inbox_capacity);
    fabric_.EnableSharding(runtime_->shard_pointers());
  }
  root_ = fabric_.CreateNode("border-router", NextUnicastAddress(), NodeProfile::Server(),
                             /*parent=*/nullptr);
}

Deployment::~Deployment() {
  // Workers reference the fabric and the shards; they must be parked before
  // any member destructs.
  StopShardWorkers();
}

uint32_t Deployment::ShardForAddress(const Ip6Address& address) const {
  return runtime_ ? runtime_->ShardOfHash(std::hash<Ip6Address>{}(address)) : 0;
}

Scheduler& Deployment::SchedulerForShard(uint32_t shard) {
  return runtime_ ? runtime_->shard(shard).scheduler() : scheduler_;
}

void Deployment::StartShardWorkers() {
  if (!runtime_) {
    return;
  }
  // The quantum must not exceed the minimum cross-shard event latency
  // (conservative lookahead); 0.9x leaves margin for floating-point
  // accumulation in the per-hop latency sums.
  runtime_->set_quantum_ms(0.9 * fabric_.MinCrossShardLatencyMs());
  runtime_->StartWorkers();
}

void Deployment::StopShardWorkers() {
  if (runtime_) {
    runtime_->StopWorkers();
  }
}

Ip6Address Deployment::NextUnicastAddress() {
  std::optional<Ip6Address> base = Ip6Address::Parse(config_.prefix + "::");
  Ip6Address addr = base.value_or(Ip6Address());
  addr.set_group(6, static_cast<uint16_t>(next_host_ >> 16));
  addr.set_group(7, static_cast<uint16_t>(next_host_));
  ++next_host_;
  return addr;
}

MicroPnpManager& Deployment::AddManager(const std::string& name, NetNode* parent,
                                        bool preload_bundled_drivers) {
  // The manager is infrastructure: pinned to shard 0 with the root.
  NetNode* node = fabric_.CreateNode(name, NextUnicastAddress(), NodeProfile::Server(),
                                     parent != nullptr ? parent : root_, /*shard=*/0);
  managers_.push_back(std::make_unique<MicroPnpManager>(SchedulerForShard(0), node));
  if (preload_bundled_drivers) {
    Status preloaded = managers_.back()->PreloadBundledDrivers();
    (void)preloaded;
  }
  return *managers_.back();
}

MicroPnpThing& Deployment::AddThing(const std::string& name, NetNode* parent,
                                    const ThingConfig& thing_config) {
  const Ip6Address address = NextUnicastAddress();
  // Stable affinity: the owning shard is a pure function of the address, so
  // a device keeps its shard across re-plugs and restarts.
  const uint32_t shard = ShardForAddress(address);
  NetNode* node = fabric_.CreateNode(name, address, NodeProfile::Embedded(),
                                     parent != nullptr ? parent : root_, shard);
  things_.push_back(std::make_unique<MicroPnpThing>(SchedulerForShard(shard), node,
                                                    ControlBoardConfig{}, rng_.NextU64(),
                                                    thing_config, &decode_cache_));
  return *things_.back();
}

MicroPnpClient& Deployment::AddClient(const std::string& name, NetNode* parent,
                                      size_t max_in_flight, int shard_pin) {
  uint32_t shard = 0;
  if (shard_pin >= 0 && runtime_ != nullptr) {
    shard = static_cast<uint32_t>(shard_pin) % runtime_->num_shards();
  }
  NetNode* node = fabric_.CreateNode(name, NextUnicastAddress(), NodeProfile::Server(),
                                     parent != nullptr ? parent : root_, shard);
  clients_.push_back(
      std::make_unique<MicroPnpClient>(SchedulerForShard(shard), node, max_in_flight));
  return *clients_.back();
}

NetNode* Deployment::AddRelayNode(const std::string& name, NetNode* parent) {
  return fabric_.CreateNode(name, NextUnicastAddress(), NodeProfile::Embedded(),
                            parent != nullptr ? parent : root_);
}

Tmp36& Deployment::MakeTmp36() {
  peripherals_.push_back(std::make_unique<Tmp36>(environment_));
  return static_cast<Tmp36&>(*peripherals_.back());
}

Hih4030& Deployment::MakeHih4030() {
  peripherals_.push_back(std::make_unique<Hih4030>(environment_));
  return static_cast<Hih4030&>(*peripherals_.back());
}

Id20La& Deployment::MakeId20La() {
  peripherals_.push_back(std::make_unique<Id20La>());
  return static_cast<Id20La&>(*peripherals_.back());
}

Bmp180& Deployment::MakeBmp180() {
  peripherals_.push_back(std::make_unique<Bmp180>(environment_));
  return static_cast<Bmp180&>(*peripherals_.back());
}

Relay& Deployment::MakeRelay() {
  peripherals_.push_back(std::make_unique<Relay>());
  return static_cast<Relay&>(*peripherals_.back());
}

}  // namespace micropnp
