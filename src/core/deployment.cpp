#include "src/core/deployment.h"

namespace micropnp {

Deployment::Deployment(const DeploymentConfig& config)
    : config_(config),
      rng_(config.seed),
      environment_(config.environment),
      fabric_(scheduler_, config.seed ^ 0x6e657477ull, config.link) {
  root_ = fabric_.CreateNode("border-router", NextUnicastAddress(), NodeProfile::Server(),
                             /*parent=*/nullptr);
}

Ip6Address Deployment::NextUnicastAddress() {
  std::optional<Ip6Address> base = Ip6Address::Parse(config_.prefix + "::");
  Ip6Address addr = base.value_or(Ip6Address());
  addr.set_group(6, static_cast<uint16_t>(next_host_ >> 16));
  addr.set_group(7, static_cast<uint16_t>(next_host_));
  ++next_host_;
  return addr;
}

MicroPnpManager& Deployment::AddManager(const std::string& name, NetNode* parent,
                                        bool preload_bundled_drivers) {
  NetNode* node = fabric_.CreateNode(name, NextUnicastAddress(), NodeProfile::Server(),
                                     parent != nullptr ? parent : root_);
  managers_.push_back(std::make_unique<MicroPnpManager>(scheduler_, node));
  if (preload_bundled_drivers) {
    Status preloaded = managers_.back()->PreloadBundledDrivers();
    (void)preloaded;
  }
  return *managers_.back();
}

MicroPnpThing& Deployment::AddThing(const std::string& name, NetNode* parent,
                                    const ThingConfig& thing_config) {
  NetNode* node = fabric_.CreateNode(name, NextUnicastAddress(), NodeProfile::Embedded(),
                                     parent != nullptr ? parent : root_);
  things_.push_back(std::make_unique<MicroPnpThing>(scheduler_, node, ControlBoardConfig{},
                                                    rng_.NextU64(), thing_config));
  return *things_.back();
}

MicroPnpClient& Deployment::AddClient(const std::string& name, NetNode* parent,
                                      size_t max_in_flight) {
  NetNode* node = fabric_.CreateNode(name, NextUnicastAddress(), NodeProfile::Server(),
                                     parent != nullptr ? parent : root_);
  clients_.push_back(std::make_unique<MicroPnpClient>(scheduler_, node, max_in_flight));
  return *clients_.back();
}

NetNode* Deployment::AddRelayNode(const std::string& name, NetNode* parent) {
  return fabric_.CreateNode(name, NextUnicastAddress(), NodeProfile::Embedded(),
                            parent != nullptr ? parent : root_);
}

Tmp36& Deployment::MakeTmp36() {
  peripherals_.push_back(std::make_unique<Tmp36>(environment_));
  return static_cast<Tmp36&>(*peripherals_.back());
}

Hih4030& Deployment::MakeHih4030() {
  peripherals_.push_back(std::make_unique<Hih4030>(environment_));
  return static_cast<Hih4030&>(*peripherals_.back());
}

Id20La& Deployment::MakeId20La() {
  peripherals_.push_back(std::make_unique<Id20La>());
  return static_cast<Id20La&>(*peripherals_.back());
}

Bmp180& Deployment::MakeBmp180() {
  peripherals_.push_back(std::make_unique<Bmp180>(environment_));
  return static_cast<Bmp180&>(*peripherals_.back());
}

Relay& Deployment::MakeRelay() {
  peripherals_.push_back(std::make_unique<Relay>());
  return static_cast<Relay&>(*peripherals_.back());
}

}  // namespace micropnp
