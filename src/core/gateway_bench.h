// Reusable fleet-scale gateway benchmark scenario.
//
// One manager + one gateway client serving N Things attached to the border
// router, driven closed-loop: the gateway keeps `window` reads in flight and
// each completion immediately issues the next, so the pending table sits at
// its high-water mark for the whole run — exactly the steady state the
// timing-wheel scheduler and the hashed pending table exist for.
//
// The scenario lives in the library (not the bench binary) because three
// consumers share it: bench_gateway (the human-readable sweep +
// BENCH_gateway.json), the CI bench-smoke step (tiny N, validates the JSON),
// and the determinism regression test (same seed ⇒ byte-identical
// deterministic JSON).  Results split into simulation-derived fields, which
// are a pure function of the options (seed included), and wall-clock fields
// (throughput), which are not; the JSON emitters keep the two apart so the
// deterministic half can be compared byte-for-byte.

#ifndef SRC_CORE_GATEWAY_BENCH_H_
#define SRC_CORE_GATEWAY_BENCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace micropnp {

struct GatewayBenchOptions {
  int num_things = 1000;
  // Total reads issued across the run (round-robin over the fleet).
  int total_reads = 1000;
  // Concurrent in-flight reads; the endpoint is sized with headroom above.
  int window = 128;
  double loss_rate = 0.0;
  uint64_t seed = 2015;
  double deadline_ms = 2000.0;
  int max_retransmits = 3;
  double initial_backoff_ms = 200.0;
  // Worker threads (runtime shards).  1 runs the historical single-threaded
  // scenario — deterministic, bit-identical run to run.  >1 shards the fleet
  // across per-thread schedulers and runs one pinned gateway client per
  // shard, each with its own slice of the window and read budget, so pending
  // tables never cross shards.  Multi-threaded results are wall-clock-only
  // (the interleaving is real concurrency, not a pure function of the seed).
  int threads = 1;
};

struct GatewayBenchResult {
  // --- deterministic: a pure function of GatewayBenchOptions -----------------
  int num_things = 0;
  int threads = 1;
  double loss_rate = 0.0;
  uint64_t seed = 0;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t retransmits = 0;
  uint64_t peak_in_flight = 0;   // pending-table high-water mark
  uint64_t final_in_flight = 0;  // must drain to 0
  uint64_t scheduler_events = 0; // events executed during the measured phase
  double sim_duration_ms = 0.0;  // simulated time consumed by the reads
  double p50_ms = 0.0;           // read latency percentiles (simulated)
  double p99_ms = 0.0;
  // --- wall clock: varies run to run -----------------------------------------
  double wall_seconds = 0.0;       // measured phase only (setup excluded)
  double events_per_second = 0.0;  // scheduler_events / wall_seconds
};

// Runs the scenario to completion (every read resolves: reply or deadline).
GatewayBenchResult RunGatewayBench(const GatewayBenchOptions& options);

// Serializes results as a JSON document: {"bench": ..., "schema_version": 2,
// "deterministic": {"cells": [...]}, "wall_clock": {"cells": [...]}}.
// DeterministicCellsJson emits just the deterministic object, byte-stable
// for a fixed option set — the determinism test compares it across runs.
// Only threads == 1 results appear there (and the cell format is unchanged
// from schema 1, so single-threaded output stays comparable across
// versions); every result appears in wall_clock, whose cells carry the new
// "threads" field.
std::string DeterministicCellsJson(const std::vector<GatewayBenchResult>& results);
std::string GatewayBenchJson(const std::vector<GatewayBenchResult>& results);

}  // namespace micropnp

#endif  // SRC_CORE_GATEWAY_BENCH_H_
