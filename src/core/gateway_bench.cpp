#include "src/core/gateway_bench.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "src/core/deployment.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"

namespace micropnp {

namespace {

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void AppendField(std::string& out, const char* key, uint64_t value, bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value), last ? "" : ", ");
  out += buf;
}

void AppendField(std::string& out, const char* key, double value, bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f%s", key, value, last ? "" : ", ");
  out += buf;
}

void AppendDeterministicCell(std::string& out, const GatewayBenchResult& r) {
  out += "{";
  AppendField(out, "num_things", static_cast<uint64_t>(r.num_things));
  AppendField(out, "loss_rate", r.loss_rate);
  AppendField(out, "seed", r.seed);
  AppendField(out, "issued", r.issued);
  AppendField(out, "completed", r.completed);
  AppendField(out, "deadline_exceeded", r.deadline_exceeded);
  AppendField(out, "retransmits", r.retransmits);
  AppendField(out, "peak_in_flight", r.peak_in_flight);
  AppendField(out, "final_in_flight", r.final_in_flight);
  AppendField(out, "scheduler_events", r.scheduler_events);
  AppendField(out, "sim_duration_ms", r.sim_duration_ms);
  AppendField(out, "p50_ms", r.p50_ms);
  AppendField(out, "p99_ms", r.p99_ms, /*last=*/true);
  out += "}";
}

void AppendWallClockCell(std::string& out, const GatewayBenchResult& r) {
  out += "{";
  AppendField(out, "num_things", static_cast<uint64_t>(r.num_things));
  AppendField(out, "threads", static_cast<uint64_t>(r.threads));
  AppendField(out, "loss_rate", r.loss_rate);
  AppendField(out, "wall_seconds", r.wall_seconds);
  AppendField(out, "events_per_second", r.events_per_second, /*last=*/true);
  out += "}";
}

// The multi-threaded scenario: the fleet is sharded across `threads` workers
// and each shard gets its own pinned gateway client running an independent
// closed read loop (window/threads in flight, total_reads/threads budget).
// Loop state is confined to the owning shard's worker; the main thread only
// reads it between lockstep quanta (the runtime's barriers order those
// accesses) and after the workers stop.
GatewayBenchResult RunGatewayBenchSharded(const GatewayBenchOptions& options) {
  const int threads = options.threads;
  DeploymentConfig config;
  config.seed = options.seed;
  config.num_shards = static_cast<uint32_t>(threads);
  Deployment deployment(config);
  ShardedRuntime& runtime = *deployment.runtime();
  (void)deployment.AddManager();

  RequestOptions read_options;
  read_options.deadline_ms = options.deadline_ms;
  read_options.max_retransmits = options.max_retransmits;
  read_options.initial_backoff_ms = options.initial_backoff_ms;

  struct ClientLoop {
    MicroPnpClient* client = nullptr;
    Scheduler* clock = nullptr;  // the owning shard's clock
    EndpointCounters before;
    int offset = 0;
    int budget = 0;
    int issued = 0;
    int resolved = 0;
    std::vector<double> latencies;
    std::function<void()> issue_next;
  };

  const int per_window = std::max(1, options.window / std::max(threads, 1));
  std::vector<std::unique_ptr<ClientLoop>> loops;
  loops.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    auto loop = std::make_unique<ClientLoop>();
    loop->client = &deployment.AddClient(
        "gateway-" + std::to_string(i), nullptr,
        /*max_in_flight=*/static_cast<size_t>(per_window) + 64, /*shard_pin=*/i);
    loop->clock = &runtime.shard(static_cast<uint32_t>(i)).scheduler();
    loop->offset = i;
    loop->budget = options.total_reads / threads + (i < options.total_reads % threads ? 1 : 0);
    loops.push_back(std::move(loop));
  }

  ThingConfig thing_config;
  thing_config.readvertise_min_ms = 0.0;
  Result<DriverImage> image = CompileDriver(FindBundledDriver(kTmp36TypeId)->source);
  std::vector<MicroPnpThing*> things;
  things.reserve(static_cast<size_t>(options.num_things));
  for (int i = 0; i < options.num_things; ++i) {
    MicroPnpThing& thing = deployment.AddThing("thing-" + std::to_string(i), nullptr, thing_config);
    (void)thing.PreinstallDriver(*image);
    Tmp36& sensor = deployment.MakeTmp36();
    if (thing.Plug(0, &sensor).ok()) {
      things.push_back(&thing);
    }
  }
  // Bring-up runs sequential lockstep quanta on the main thread.
  deployment.RunForMillis(1000);

  LinkModel lossy = config.link;
  lossy.loss_rate = options.loss_rate;
  deployment.fabric().set_link(lossy);

  GatewayBenchResult result;
  result.num_things = options.num_things;
  result.threads = threads;
  result.loss_rate = options.loss_rate;
  result.seed = options.seed;
  if (things.empty() || options.total_reads <= 0) {
    return result;
  }

  for (auto& loop : loops) {
    ClientLoop& state = *loop;
    state.before = state.client->endpoint().counters();
    state.issue_next = [&state, &things, threads, read_options] {
      if (state.issued >= state.budget) {
        return;
      }
      MicroPnpThing* thing =
          things[static_cast<size_t>(state.offset + state.issued * threads) % things.size()];
      ++state.issued;
      const double started_ms = state.clock->now().millis();
      state.client->Read(
          thing->node().address(), kTmp36TypeId,
          [&state, started_ms](Result<WireValue> value) {
            ++state.resolved;
            if (value.ok()) {
              state.latencies.push_back(state.clock->now().millis() - started_ms);
            }
            state.issue_next();
          },
          read_options);
    };
  }

  const uint64_t events_before = runtime.TotalExecuted();
  const double sim_start_ms = deployment.NowMillis();
  // Prime every loop's window from the main thread (workers not running yet).
  for (auto& loop : loops) {
    const int window = std::min(per_window, loop->budget);
    for (int i = 0; i < window; ++i) {
      loop->issue_next();
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  deployment.StartShardWorkers();
  const double guard_ms =
      deployment.NowMillis() +
      (static_cast<double>(options.total_reads) + 1.0) * (options.deadline_ms + 1000.0);
  auto total_resolved = [&loops] {
    int total = 0;
    for (const auto& loop : loops) {
      total += loop->resolved;
    }
    return total;
  };
  while (total_resolved() < options.total_reads && deployment.NowMillis() < guard_ms) {
    deployment.RunForMillis(500.0);
  }
  deployment.StopShardWorkers();
  const auto wall_end = std::chrono::steady_clock::now();

  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(options.total_reads));
  for (auto& loop : loops) {
    const EndpointCounters& after = loop->client->endpoint().counters();
    result.issued += static_cast<uint64_t>(loop->issued);
    result.completed += after.completed_ok - loop->before.completed_ok;
    result.deadline_exceeded += after.deadline_exceeded - loop->before.deadline_exceeded;
    result.retransmits += after.retransmits - loop->before.retransmits;
    result.peak_in_flight += after.peak_in_flight;
    result.final_in_flight += loop->client->endpoint().in_flight();
    latencies.insert(latencies.end(), loop->latencies.begin(), loop->latencies.end());
  }
  result.scheduler_events = runtime.TotalExecuted() - events_before;
  result.sim_duration_ms = deployment.NowMillis() - sim_start_ms;
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = Percentile(latencies, 0.5);
  result.p99_ms = Percentile(latencies, 0.99);
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  result.events_per_second =
      result.wall_seconds > 0.0 ? static_cast<double>(result.scheduler_events) / result.wall_seconds
                                : 0.0;
  return result;
}

}  // namespace

GatewayBenchResult RunGatewayBench(const GatewayBenchOptions& options) {
  if (options.threads > 1) {
    return RunGatewayBenchSharded(options);
  }
  DeploymentConfig config;
  config.seed = options.seed;
  Deployment deployment(config);
  (void)deployment.AddManager();
  MicroPnpClient& gateway = deployment.AddClient(
      "gateway", nullptr, /*max_in_flight=*/static_cast<size_t>(options.window) + 64);

  // Fleet bring-up on lossless links: compile once, preinstall everywhere.
  // Re-advertisement is disabled — this bench isolates the read path, and
  // 10k concurrent trickle ladders would only perturb the event counts.
  ThingConfig thing_config;
  thing_config.readvertise_min_ms = 0.0;
  Result<DriverImage> image = CompileDriver(FindBundledDriver(kTmp36TypeId)->source);
  std::vector<MicroPnpThing*> things;
  things.reserve(static_cast<size_t>(options.num_things));
  for (int i = 0; i < options.num_things; ++i) {
    MicroPnpThing& thing = deployment.AddThing("thing-" + std::to_string(i), nullptr, thing_config);
    (void)thing.PreinstallDriver(*image);
    Tmp36& sensor = deployment.MakeTmp36();
    if (thing.Plug(0, &sensor).ok()) {
      things.push_back(&thing);
    }
  }
  deployment.RunForMillis(1000);

  LinkModel lossy = config.link;
  lossy.loss_rate = options.loss_rate;
  deployment.fabric().set_link(lossy);

  RequestOptions read_options;
  read_options.deadline_ms = options.deadline_ms;
  read_options.max_retransmits = options.max_retransmits;
  read_options.initial_backoff_ms = options.initial_backoff_ms;

  GatewayBenchResult result;
  result.num_things = options.num_things;
  result.loss_rate = options.loss_rate;
  result.seed = options.seed;
  if (things.empty() || options.total_reads <= 0) {
    return result;
  }

  const EndpointCounters before = gateway.endpoint().counters();
  const uint64_t events_before = deployment.scheduler().executed();
  const double sim_start_ms = deployment.NowMillis();

  // Closed loop: each completion issues the next read, keeping `window`
  // reads in flight.  This is also the arena's reentrancy stress: the
  // follow-up read legitimately reuses the slot the completing one just
  // released.
  int issued = 0;
  int resolved = 0;
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(options.total_reads));
  std::function<void()> issue_next = [&] {
    if (issued >= options.total_reads) {
      return;
    }
    MicroPnpThing* thing = things[static_cast<size_t>(issued) % things.size()];
    ++issued;
    const double started_ms = deployment.NowMillis();
    gateway.Read(
        thing->node().address(), kTmp36TypeId,
        [&, started_ms](Result<WireValue> value) {
          ++resolved;
          if (value.ok()) {
            latencies.push_back(deployment.NowMillis() - started_ms);
          }
          issue_next();
        },
        read_options);
  };

  const auto wall_start = std::chrono::steady_clock::now();
  const int window = std::min(options.window, options.total_reads);
  for (int i = 0; i < window; ++i) {
    issue_next();
  }
  // Every read resolves by its deadline, so the loop terminates; the guard
  // only catches a lost-completion bug.
  const double guard_ms =
      deployment.NowMillis() +
      (static_cast<double>(options.total_reads) + 1.0) * (options.deadline_ms + 1000.0);
  while (resolved < options.total_reads && deployment.NowMillis() < guard_ms) {
    deployment.RunForMillis(500.0);
  }
  const auto wall_end = std::chrono::steady_clock::now();

  const EndpointCounters& after = gateway.endpoint().counters();
  result.issued = static_cast<uint64_t>(issued);
  result.completed = after.completed_ok - before.completed_ok;
  result.deadline_exceeded = after.deadline_exceeded - before.deadline_exceeded;
  result.retransmits = after.retransmits - before.retransmits;
  result.peak_in_flight = after.peak_in_flight;
  result.final_in_flight = gateway.endpoint().in_flight();
  result.scheduler_events = deployment.scheduler().executed() - events_before;
  result.sim_duration_ms = deployment.NowMillis() - sim_start_ms;
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = Percentile(latencies, 0.5);
  result.p99_ms = Percentile(latencies, 0.99);
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  result.events_per_second =
      result.wall_seconds > 0.0 ? static_cast<double>(result.scheduler_events) / result.wall_seconds
                                : 0.0;
  return result;
}

std::string DeterministicCellsJson(const std::vector<GatewayBenchResult>& results) {
  // Multi-threaded cells are excluded: their event interleaving comes from
  // real concurrency, so only wall_clock reports them.  The cell format is
  // unchanged from schema 1, keeping single-threaded output byte-comparable
  // across versions.
  std::string out = "{\"cells\": [";
  bool first = true;
  for (const GatewayBenchResult& r : results) {
    if (r.threads != 1) {
      continue;
    }
    if (!first) {
      out += ", ";
    }
    first = false;
    AppendDeterministicCell(out, r);
  }
  out += "]}";
  return out;
}

std::string GatewayBenchJson(const std::vector<GatewayBenchResult>& results) {
  std::string out = "{\"bench\": \"gateway\", \"schema_version\": 2, \"deterministic\": ";
  out += DeterministicCellsJson(results);
  out += ", \"wall_clock\": {\"cells\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    AppendWallClockCell(out, results[i]);
  }
  out += "]}}";
  return out;
}

}  // namespace micropnp
