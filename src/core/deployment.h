// Deployment: the top-level facade assembling a complete μPnP system.
//
// A Deployment owns the simulation clock, the physical environment, the
// network fabric (border router at the root of the RPL tree) and factories
// for Things, Clients, Managers and peripherals.  This is the public API the
// examples and benchmarks build on — the "five minutes to a working μPnP
// network" entry point.

#ifndef SRC_CORE_DEPLOYMENT_H_
#define SRC_CORE_DEPLOYMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/periph/bmp180.h"
#include "src/periph/environment.h"
#include "src/periph/hih4030.h"
#include "src/periph/id20la.h"
#include "src/periph/relay.h"
#include "src/periph/tmp36.h"
#include "src/proto/client.h"
#include "src/proto/manager.h"
#include "src/proto/thing.h"

namespace micropnp {

struct DeploymentConfig {
  uint64_t seed = 2015;  // EuroSys'15
  // Network prefix hosting the deployment (2001:db8::/48 as in Figure 10).
  std::string prefix = "2001:db8";
  LinkModel link;
  EnvironmentConfig environment;
};

class Deployment {
 public:
  explicit Deployment(const DeploymentConfig& config = DeploymentConfig{});

  Scheduler& scheduler() { return scheduler_; }
  Fabric& fabric() { return fabric_; }
  Environment& environment() { return environment_; }
  NetNode* root() { return root_; }

  // --- node factories --------------------------------------------------------
  // `parent == nullptr` attaches directly to the border router (one hop).
  MicroPnpManager& AddManager(const std::string& name = "manager", NetNode* parent = nullptr,
                              bool preload_bundled_drivers = true);
  MicroPnpThing& AddThing(const std::string& name, NetNode* parent = nullptr,
                          const ThingConfig& thing_config = ThingConfig{});
  MicroPnpClient& AddClient(const std::string& name, NetNode* parent = nullptr,
                            size_t max_in_flight = 64);
  // A bare relay node extending the tree (for multi-hop topologies).
  NetNode* AddRelayNode(const std::string& name, NetNode* parent = nullptr);

  // --- peripheral factories (owned by the deployment) -------------------------
  Tmp36& MakeTmp36();
  Hih4030& MakeHih4030();
  Id20La& MakeId20La();
  Bmp180& MakeBmp180();
  Relay& MakeRelay();

  // --- simulation control ------------------------------------------------------
  // Advances simulated time by `ms`.
  void RunForMillis(double ms) {
    scheduler_.RunUntil(scheduler_.now() + SimTime::FromMillis(ms));
  }
  // Runs until no events remain.
  void RunUntilIdle() { scheduler_.Run(); }
  double NowMillis() const { return scheduler_.now().millis(); }

 private:
  Ip6Address NextUnicastAddress();

  DeploymentConfig config_;
  Scheduler scheduler_;
  Rng rng_;
  Environment environment_;
  Fabric fabric_;
  NetNode* root_;
  // 32-bit so 100k-node fleets still get unique addresses (the host part
  // spans address groups 6 and 7).
  uint32_t next_host_ = 1;
  std::vector<std::unique_ptr<MicroPnpThing>> things_;
  std::vector<std::unique_ptr<MicroPnpClient>> clients_;
  std::vector<std::unique_ptr<MicroPnpManager>> managers_;
  std::vector<std::unique_ptr<Peripheral>> peripherals_;
};

}  // namespace micropnp

#endif  // SRC_CORE_DEPLOYMENT_H_
