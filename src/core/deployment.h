// Deployment: the top-level facade assembling a complete μPnP system.
//
// A Deployment owns the simulation clock, the physical environment, the
// network fabric (border router at the root of the RPL tree) and factories
// for Things, Clients, Managers and peripherals.  This is the public API the
// examples and benchmarks build on — the "five minutes to a working μPnP
// network" entry point.

#ifndef SRC_CORE_DEPLOYMENT_H_
#define SRC_CORE_DEPLOYMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/sharded_runtime.h"
#include "src/periph/bmp180.h"
#include "src/periph/environment.h"
#include "src/periph/hih4030.h"
#include "src/periph/id20la.h"
#include "src/periph/relay.h"
#include "src/periph/tmp36.h"
#include "src/proto/client.h"
#include "src/proto/manager.h"
#include "src/proto/thing.h"

namespace micropnp {

struct DeploymentConfig {
  uint64_t seed = 2015;  // EuroSys'15
  // Network prefix hosting the deployment (2001:db8::/48 as in Figure 10).
  std::string prefix = "2001:db8";
  LinkModel link;
  EnvironmentConfig environment;
  // Runtime shards (worker threads).  1 keeps the historical single-threaded
  // path (one Scheduler, bit-identical results); >1 partitions Things across
  // per-shard schedulers with stable address-hash affinity and runs them in
  // conservative lockstep (see src/core/sharded_runtime.h).
  uint32_t num_shards = 1;
  // Capacity of each shard's cross-shard MPSC inbox.
  size_t shard_inbox_capacity = 1 << 16;
};

class Deployment {
 public:
  explicit Deployment(const DeploymentConfig& config = DeploymentConfig{});
  ~Deployment();

  // Shard 0's scheduler when sharded (infrastructure — manager, clients by
  // default — is pinned there), the sole scheduler otherwise.
  Scheduler& scheduler() { return runtime_ ? runtime_->shard(0).scheduler() : scheduler_; }
  Fabric& fabric() { return fabric_; }
  Environment& environment() { return environment_; }
  NetNode* root() { return root_; }

  // The parallel runtime, or nullptr when num_shards == 1.
  ShardedRuntime* runtime() { return runtime_.get(); }
  uint32_t num_shards() const { return runtime_ ? runtime_->num_shards() : 1; }

  // --- node factories --------------------------------------------------------
  // `parent == nullptr` attaches directly to the border router (one hop).
  // Things get stable shard affinity by address hash; the manager and (by
  // default) clients are pinned to shard 0.  `shard_pin >= 0` on AddClient
  // places that client's endpoint on a specific shard, which the sharded
  // gateway bench uses to give every shard its own closed read loop.
  MicroPnpManager& AddManager(const std::string& name = "manager", NetNode* parent = nullptr,
                              bool preload_bundled_drivers = true);
  MicroPnpThing& AddThing(const std::string& name, NetNode* parent = nullptr,
                          const ThingConfig& thing_config = ThingConfig{});
  MicroPnpClient& AddClient(const std::string& name, NetNode* parent = nullptr,
                            size_t max_in_flight = 64, int shard_pin = -1);
  // A bare relay node extending the tree (for multi-hop topologies).
  NetNode* AddRelayNode(const std::string& name, NetNode* parent = nullptr);

  // --- peripheral factories (owned by the deployment) -------------------------
  Tmp36& MakeTmp36();
  Hih4030& MakeHih4030();
  Id20La& MakeId20La();
  Bmp180& MakeBmp180();
  Relay& MakeRelay();

  // --- simulation control ------------------------------------------------------
  // Advances simulated time by `ms` (lockstep quanta across shards when
  // sharded; plain scheduler run otherwise).
  void RunForMillis(double ms) {
    if (runtime_) {
      runtime_->RunForMillis(ms);
    } else {
      scheduler_.RunUntil(scheduler_.now() + SimTime::FromMillis(ms));
    }
  }
  // Runs until no events remain.
  void RunUntilIdle() {
    if (runtime_) {
      runtime_->RunUntilIdle();
    } else {
      scheduler_.Run();
    }
  }
  double NowMillis() const {
    return (runtime_ ? runtime_->now() : scheduler_.now()).millis();
  }

  // Starts/stops the worker threads (no-ops when num_shards == 1).  Between
  // Start and Stop, RunForMillis advances all shards in parallel; every
  // other Deployment method is main-thread-only.  Start derives the
  // conservative quantum from the fabric's link model.
  void StartShardWorkers();
  void StopShardWorkers();

  // Shared verify-once decoded-image store handed to every Thing.
  SharedDecodeCache& decode_cache() { return decode_cache_; }

 private:
  Ip6Address NextUnicastAddress();
  // Owning shard for a node address (0 when not sharded).
  uint32_t ShardForAddress(const Ip6Address& address) const;
  Scheduler& SchedulerForShard(uint32_t shard);

  DeploymentConfig config_;
  Scheduler scheduler_;
  Rng rng_;
  Environment environment_;
  std::unique_ptr<ShardedRuntime> runtime_;  // null when num_shards == 1
  SharedDecodeCache decode_cache_;
  Fabric fabric_;
  NetNode* root_;
  // 32-bit so 100k-node fleets still get unique addresses (the host part
  // spans address groups 6 and 7).
  uint32_t next_host_ = 1;
  std::vector<std::unique_ptr<MicroPnpThing>> things_;
  std::vector<std::unique_ptr<MicroPnpClient>> clients_;
  std::vector<std::unique_ptr<MicroPnpManager>> managers_;
  std::vector<std::unique_ptr<Peripheral>> peripherals_;
};

}  // namespace micropnp

#endif  // SRC_CORE_DEPLOYMENT_H_
