#include "src/core/model_bench.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "src/core/deployment.h"
#include "src/core/driver_sources.h"
#include "src/dsl/compiler.h"
#include "src/model/model_server.h"

namespace micropnp {

namespace {

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void AppendField(std::string& out, const char* key, uint64_t value, bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value), last ? "" : ", ");
  out += buf;
}

void AppendField(std::string& out, const char* key, double value, bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f%s", key, value, last ? "" : ", ");
  out += buf;
}

void AppendDeterministicCell(std::string& out, const ModelBenchResult& r) {
  out += "{";
  AppendField(out, "num_things", static_cast<uint64_t>(r.num_things));
  AppendField(out, "num_clients", static_cast<uint64_t>(r.num_clients));
  AppendField(out, "loss_rate", r.loss_rate);
  AppendField(out, "seed", r.seed);
  AppendField(out, "fleet_size", r.fleet_size);
  AppendField(out, "reads", r.reads);
  AppendField(out, "cache_hits", r.cache_hits);
  AppendField(out, "cache_misses", r.cache_misses);
  AppendField(out, "coalesced_reads", r.coalesced_reads);
  AppendField(out, "device_reads", r.device_reads);
  AppendField(out, "read_failures", r.read_failures);
  AppendField(out, "writes", r.writes);
  AppendField(out, "device_writes", r.device_writes);
  AppendField(out, "write_failures", r.write_failures);
  AppendField(out, "hit_rate", r.hit_rate);
  AppendField(out, "amplification", r.amplification);
  AppendField(out, "hotspot_reads", r.hotspot_reads);
  AppendField(out, "hotspot_device_reads", r.hotspot_device_reads);
  AppendField(out, "subscriptions", r.subscriptions);
  AppendField(out, "upstream_events", r.upstream_events);
  AppendField(out, "fanout_delivered", r.fanout_delivered);
  AppendField(out, "fanout_expected", r.fanout_expected);
  AppendField(out, "fanout_exact", r.fanout_exact);
  AppendField(out, "upstream_restarts", r.upstream_restarts);
  AppendField(out, "p50_ms", r.p50_ms);
  AppendField(out, "p99_ms", r.p99_ms);
  AppendField(out, "sim_duration_ms", r.sim_duration_ms);
  AppendField(out, "scheduler_events", r.scheduler_events, /*last=*/true);
  out += "}";
}

void AppendWallClockCell(std::string& out, const ModelBenchResult& r) {
  out += "{";
  AppendField(out, "num_things", static_cast<uint64_t>(r.num_things));
  AppendField(out, "num_clients", static_cast<uint64_t>(r.num_clients));
  AppendField(out, "threads", static_cast<uint64_t>(r.threads));
  AppendField(out, "loss_rate", r.loss_rate);
  AppendField(out, "wall_seconds", r.wall_seconds);
  AppendField(out, "reads_per_second", r.reads_per_second);
  AppendField(out, "fanout_events_per_second", r.fanout_events_per_second, /*last=*/true);
  out += "}";
}

struct ThingRef {
  Ip6Address address;
  DeviceTypeId device = 0;
};

// One per shard: a pinned MicroPnpClient, the ModelServer riding it, and
// this shard's slice of the ModelClients plus its closed-loop pump state.
struct ServerLoop {
  MicroPnpClient* client = nullptr;
  Scheduler* clock = nullptr;
  std::unique_ptr<ModelServer> server;
  std::vector<std::unique_ptr<ModelClient>> model_clients;
  int offset = 0;
  int budget = 0;  // phase-1 operations owned by this loop
  int issued = 0;
  int resolved = 0;
  bool pumping = false;
  int hotspot_issued = 0;
  int hotspot_resolved = 0;
  bool hotspot_pumping = false;
  std::vector<double> latencies;
  std::function<void()> pump;
};

}  // namespace

ModelBenchResult RunModelBench(const ModelBenchOptions& options) {
  const int threads = std::max(options.threads, 1);
  DeploymentConfig config;
  config.seed = options.seed;
  config.num_shards = static_cast<uint32_t>(threads);
  Deployment deployment(config);
  (void)deployment.AddManager();

  ModelServerConfig server_config;
  server_config.default_ttl_ms = options.ttl_ms;
  server_config.stream_period_ms = options.stream_period_ms;

  const int per_window = std::max(1, options.read_window / threads);
  std::vector<std::unique_ptr<ServerLoop>> loops;
  loops.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    auto loop = std::make_unique<ServerLoop>();
    loop->client = &deployment.AddClient(
        "model-gw-" + std::to_string(i), nullptr,
        /*max_in_flight=*/static_cast<size_t>(per_window) + 64,
        /*shard_pin=*/threads > 1 ? i : -1);
    loop->clock = threads > 1 ? &deployment.runtime()->shard(static_cast<uint32_t>(i)).scheduler()
                              : &deployment.scheduler();
    loop->server = std::make_unique<ModelServer>(*loop->clock, *loop->client,
                                                 ModelCatalog::BuiltIn(), server_config);
    loop->offset = i;
    loop->budget =
        options.total_reads / threads + (i < options.total_reads % threads ? 1 : 0);
    const int clients =
        options.num_clients / threads + (i < options.num_clients % threads ? 1 : 0);
    loop->model_clients.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      loop->model_clients.push_back(std::make_unique<ModelClient>(*loop->server));
    }
    loops.push_back(std::move(loop));
  }

  // Fleet bring-up: mostly TMP36 sensors, every 8th Thing a writable relay.
  // Drivers are preinstalled (the OTA path is bench_multihop's subject) and
  // re-advertisement trickle is off; the servers learn the fleet from the
  // plug-time unsolicited (1)s — the advertisement-driven tracking path.
  ThingConfig thing_config;
  thing_config.readvertise_min_ms = 0.0;
  Result<DriverImage> tmp36_image = CompileDriver(FindBundledDriver(kTmp36TypeId)->source);
  Result<DriverImage> relay_image = CompileDriver(FindBundledDriver(kRelayTypeId)->source);
  std::vector<ThingRef> things;
  std::vector<size_t> relay_things;
  things.reserve(static_cast<size_t>(options.num_things));
  for (int i = 0; i < options.num_things; ++i) {
    const bool is_relay = i % 8 == 7;
    MicroPnpThing& thing =
        deployment.AddThing("thing-" + std::to_string(i), nullptr, thing_config);
    Status plugged;
    if (is_relay) {
      (void)thing.PreinstallDriver(*relay_image);
      plugged = thing.Plug(0, &deployment.MakeRelay());
    } else {
      (void)thing.PreinstallDriver(*tmp36_image);
      plugged = thing.Plug(0, &deployment.MakeTmp36());
    }
    if (plugged.ok()) {
      if (is_relay) {
        relay_things.push_back(things.size());
      }
      things.push_back(ThingRef{thing.node().address(), is_relay ? kRelayTypeId : kTmp36TypeId});
    }
  }
  deployment.RunForMillis(1000);

  LinkModel lossy = config.link;
  lossy.loss_rate = options.loss_rate;
  deployment.fabric().set_link(lossy);

  ModelBenchResult result;
  result.num_things = options.num_things;
  result.num_clients = options.num_clients;
  result.threads = threads;
  result.loss_rate = options.loss_rate;
  result.seed = options.seed;
  for (const auto& loop : loops) {
    result.fleet_size += loop->server->fleet_size();
  }
  if (things.empty() || options.num_clients <= 0) {
    return result;
  }

  auto sum_counters = [&loops] {
    ModelServerCounters total;
    for (const auto& loop : loops) {
      const ModelServerCounters& c = loop->server->counters();
      total.reads += c.reads;
      total.cache_hits += c.cache_hits;
      total.cache_misses += c.cache_misses;
      total.coalesced_reads += c.coalesced_reads;
      total.device_reads += c.device_reads;
      total.read_failures += c.read_failures;
      total.writes += c.writes;
      total.device_writes += c.device_writes;
      total.write_failures += c.write_failures;
      total.fanout_delivered += c.fanout_delivered;
      total.upstream_events += c.upstream_events;
      total.upstream_restarts += c.upstream_restarts;
    }
    return total;
  };
  auto run_phase = [&](const std::function<bool()>& done, double guard_ms) {
    if (threads > 1) {
      deployment.StartShardWorkers();
    }
    while (!done() && deployment.NowMillis() < guard_ms) {
      deployment.RunForMillis(500.0);
    }
    if (threads > 1) {
      deployment.StopShardWorkers();
    }
  };

  const uint64_t events_before =
      threads > 1 ? deployment.runtime()->TotalExecuted() : deployment.scheduler().executed();
  const double sim_start_ms = deployment.NowMillis();

  // ---- phase 1: closed-loop read/write mix ---------------------------------
  for (auto& loop_ptr : loops) {
    ServerLoop& loop = *loop_ptr;
    loop.pump = [&loop, &things, &relay_things, &options, threads, per_window] {
      if (loop.pumping) {
        return;
      }
      // Cache hits complete synchronously, so recursing from the completion
      // callback would nest `budget` deep; the flag flattens the loop into
      // an iterative pump.
      loop.pumping = true;
      while (loop.issued < loop.budget && loop.issued - loop.resolved < per_window) {
        const int global_op = loop.offset + loop.issued * threads;
        ++loop.issued;
        ModelClient& actor =
            *loop.model_clients[static_cast<size_t>(global_op) % loop.model_clients.size()];
        const bool is_write = options.write_every > 0 && !relay_things.empty() &&
                              (global_op + 1) % options.write_every == 0;
        if (is_write) {
          const ThingRef& target = things[relay_things[static_cast<size_t>(
              global_op / options.write_every) % relay_things.size()]];
          actor.WriteValue(target.address, target.device, global_op % 2, [&loop](Status) {
            ++loop.resolved;
            loop.pump();
          });
        } else {
          const ThingRef& target = things[static_cast<size_t>(global_op) % things.size()];
          const double started_ms = loop.clock->now().millis();
          actor.ReadValue(target.address, target.device,
                          [&loop, started_ms](Result<WireValue> value) {
                            ++loop.resolved;
                            if (value.ok()) {
                              loop.latencies.push_back(loop.clock->now().millis() - started_ms);
                            }
                            loop.pump();
                          });
        }
      }
      loop.pumping = false;
    };
  }

  const auto wall_start = std::chrono::steady_clock::now();
  for (auto& loop : loops) {
    loop->pump();
  }
  auto all_resolved = [&loops] {
    for (const auto& loop : loops) {
      if (loop->resolved < loop->budget) {
        return false;
      }
    }
    return true;
  };
  const double phase1_guard =
      deployment.NowMillis() +
      (static_cast<double>(options.total_reads) + 1.0) * (2000.0 + 1000.0);
  run_phase(all_resolved, phase1_guard);

  // ---- phase 2: hotspot (every client reads one Thing once) ----------------
  const ModelServerCounters before_hotspot = sum_counters();
  const ThingRef hot = things.front();
  for (auto& loop_ptr : loops) {
    ServerLoop& loop = *loop_ptr;
    loop.pump = [&loop, &hot, per_window] {
      if (loop.hotspot_pumping) {
        return;
      }
      loop.hotspot_pumping = true;
      const int budget = static_cast<int>(loop.model_clients.size());
      while (loop.hotspot_issued < budget &&
             loop.hotspot_issued - loop.hotspot_resolved < per_window) {
        ModelClient& actor = *loop.model_clients[static_cast<size_t>(loop.hotspot_issued)];
        ++loop.hotspot_issued;
        actor.ReadValue(hot.address, hot.device, [&loop](Result<WireValue>) {
          ++loop.hotspot_resolved;
          loop.pump();
        });
      }
      loop.hotspot_pumping = false;
    };
  }
  for (auto& loop : loops) {
    loop->pump();
  }
  auto hotspot_resolved = [&loops] {
    for (const auto& loop : loops) {
      if (loop->hotspot_resolved < static_cast<int>(loop->model_clients.size())) {
        return false;
      }
    }
    return true;
  };
  run_phase(hotspot_resolved, deployment.NowMillis() + 60000.0);
  const auto wall_reads_end = std::chrono::steady_clock::now();
  const ModelServerCounters after_hotspot = sum_counters();
  result.hotspot_reads = after_hotspot.reads - before_hotspot.reads;
  result.hotspot_device_reads = after_hotspot.device_reads - before_hotspot.device_reads;

  // ---- phase 3: subscription fan-out ---------------------------------------
  int client_index = 0;
  for (auto& loop : loops) {
    for (auto& actor : loop->model_clients) {
      const ThingRef& target = things[static_cast<size_t>(client_index++) % things.size()];
      if (actor->Subscribe(target.address, target.device, [](const WireValue&) {}).ok()) {
        ++result.subscriptions;
      }
    }
  }
  const double fanout_until = deployment.NowMillis() + options.stream_phase_ms;
  const auto wall_fanout_start = std::chrono::steady_clock::now();
  run_phase([&] { return deployment.NowMillis() >= fanout_until; }, fanout_until + 1.0);
  const auto wall_end = std::chrono::steady_clock::now();

  // Snapshot the exactly-once ledger while every subscription is still
  // registered: each fan-out must have delivered every upstream event to
  // every subscriber, no more, no fewer.
  for (const auto& loop : loops) {
    for (const ModelServer::FanoutStat& stat : loop->server->FanoutStats()) {
      result.fanout_expected += stat.upstream_events * stat.subscribers;
    }
  }
  const ModelServerCounters final_counters = sum_counters();
  result.reads = final_counters.reads;
  result.cache_hits = final_counters.cache_hits;
  result.cache_misses = final_counters.cache_misses;
  result.coalesced_reads = final_counters.coalesced_reads;
  result.device_reads = final_counters.device_reads;
  result.read_failures = final_counters.read_failures;
  result.writes = final_counters.writes;
  result.device_writes = final_counters.device_writes;
  result.write_failures = final_counters.write_failures;
  result.upstream_events = final_counters.upstream_events;
  result.fanout_delivered = final_counters.fanout_delivered;
  result.fanout_exact = result.fanout_delivered == result.fanout_expected ? 1 : 0;
  result.upstream_restarts = final_counters.upstream_restarts;
  result.hit_rate =
      result.reads > 0 ? static_cast<double>(result.cache_hits) / static_cast<double>(result.reads)
                       : 0.0;
  result.amplification = result.reads > 0 ? static_cast<double>(result.device_reads) /
                                                static_cast<double>(result.reads)
                                          : 0.0;
  result.sim_duration_ms = deployment.NowMillis() - sim_start_ms;
  result.scheduler_events =
      (threads > 1 ? deployment.runtime()->TotalExecuted() : deployment.scheduler().executed()) -
      events_before;

  std::vector<double> latencies;
  for (auto& loop : loops) {
    latencies.insert(latencies.end(), loop->latencies.begin(), loop->latencies.end());
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = Percentile(latencies, 0.5);
  result.p99_ms = Percentile(latencies, 0.99);

  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  const double wall_reads = std::chrono::duration<double>(wall_reads_end - wall_start).count();
  const double wall_fanout = std::chrono::duration<double>(wall_end - wall_fanout_start).count();
  result.reads_per_second =
      wall_reads > 0.0
          ? static_cast<double>(result.reads + result.writes) / wall_reads
          : 0.0;
  result.fanout_events_per_second =
      wall_fanout > 0.0 ? static_cast<double>(result.fanout_delivered) / wall_fanout : 0.0;

  // Orderly teardown (outside the measured window): drop every subscription
  // and let the stream stops resolve.
  for (auto& loop : loops) {
    for (auto& actor : loop->model_clients) {
      actor->UnsubscribeAll();
    }
  }
  deployment.RunForMillis(3000);
  return result;
}

std::string ModelDeterministicCellsJson(const std::vector<ModelBenchResult>& results) {
  std::string out = "{\"cells\": [";
  bool first = true;
  for (const ModelBenchResult& r : results) {
    if (r.threads != 1) {
      continue;
    }
    if (!first) {
      out += ", ";
    }
    first = false;
    AppendDeterministicCell(out, r);
  }
  out += "]}";
  return out;
}

std::string ModelBenchJson(const std::vector<ModelBenchResult>& results) {
  std::string out = "{\"bench\": \"model\", \"schema_version\": 1, \"deterministic\": ";
  out += ModelDeterministicCellsJson(results);
  out += ", \"wall_clock\": {\"cells\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    AppendWallClockCell(out, results[i]);
  }
  out += "]}}";
  return out;
}

}  // namespace micropnp
