#include "src/core/sharded_runtime.h"

#include <algorithm>

namespace micropnp {

namespace {
constexpr uint64_t kMinQuantumNs = 50'000;       // 50 us
constexpr uint64_t kMaxQuantumNs = 10'000'000;   // 10 ms
}  // namespace

ShardedRuntime::ShardedRuntime(uint32_t num_shards, uint64_t seed, size_t inbox_capacity) {
  const uint32_t n = num_shards == 0 ? 1 : num_shards;
  Rng derive(seed);
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, derive.Fork(i).NextU64(), inbox_capacity));
  }
}

ShardedRuntime::~ShardedRuntime() { StopWorkers(); }

std::vector<Shard*> ShardedRuntime::shard_pointers() {
  std::vector<Shard*> out;
  out.reserve(shards_.size());
  for (auto& shard : shards_) {
    out.push_back(shard.get());
  }
  return out;
}

void ShardedRuntime::set_quantum_ms(double quantum_ms) {
  const uint64_t ns = SimTime::FromMillis(std::max(quantum_ms, 0.0)).nanos();
  quantum_ns_ = std::clamp(ns, kMinQuantumNs, kMaxQuantumNs);
}

void ShardedRuntime::StartWorkers() {
  if (workers_running() || shards_.size() < 2) {
    return;
  }
  stop_.store(false, std::memory_order_relaxed);
  const auto participants = static_cast<std::ptrdiff_t>(shards_.size() + 1);
  start_barrier_ = std::make_unique<std::barrier<>>(participants);
  end_barrier_ = std::make_unique<std::barrier<>>(participants);
  workers_.reserve(shards_.size());
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ShardedRuntime::StopWorkers() {
  if (!workers_running()) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  start_barrier_->arrive_and_wait();  // releases workers into the stop check
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  start_barrier_.reset();
  end_barrier_.reset();
}

void ShardedRuntime::WorkerLoop(uint32_t index) {
  Shard& shard = *shards_[index];
  Shard::ScopedCurrent scoped(&shard);
  while (true) {
    start_barrier_->arrive_and_wait();
    if (stop_.load(std::memory_order_relaxed)) {
      break;
    }
    RunShardQuantum(shard, quantum_end_ns_.load(std::memory_order_relaxed));
    end_barrier_->arrive_and_wait();
  }
}

void ShardedRuntime::RunShardQuantum(Shard& shard, uint64_t quantum_end_ns) {
  shard.DrainInbox();
  shard.scheduler().RunUntil(SimTime::FromNanos(quantum_end_ns));
}

void ShardedRuntime::RunQuantaTo(uint64_t target_ns) {
  uint64_t now_ns = shards_[0]->scheduler().now().nanos();
  while (now_ns < target_ns) {
    const uint64_t quantum_end = std::min(target_ns, now_ns + quantum_ns_);
    if (workers_running()) {
      quantum_end_ns_.store(quantum_end, std::memory_order_relaxed);
      start_barrier_->arrive_and_wait();
      end_barrier_->arrive_and_wait();
    } else {
      for (auto& shard : shards_) {
        Shard::ScopedCurrent scoped(shard.get());
        RunShardQuantum(*shard, quantum_end);
      }
    }
    now_ns = quantum_end;
  }
}

void ShardedRuntime::RunForMillis(double ms) {
  RunQuantaTo(shards_[0]->scheduler().now().nanos() + SimTime::FromMillis(ms).nanos());
}

bool ShardedRuntime::RunUntilIdle(double max_ms) {
  const uint64_t limit_ns =
      shards_[0]->scheduler().now().nanos() + SimTime::FromMillis(max_ms).nanos();
  while (!AllIdle()) {
    const uint64_t now_ns = shards_[0]->scheduler().now().nanos();
    if (now_ns >= limit_ns) {
      return false;
    }
    RunQuantaTo(std::min(limit_ns, now_ns + quantum_ns_));
  }
  return true;
}

bool ShardedRuntime::AllIdle() const {
  for (const auto& shard : shards_) {
    if (!shard->idle()) {
      return false;
    }
  }
  return true;
}

uint64_t ShardedRuntime::TotalExecuted() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->scheduler().executed();
  }
  return total;
}

uint64_t ShardedRuntime::TotalDroppedPosts() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->dropped_posts();
  }
  return total;
}

}  // namespace micropnp
