// ShardedRuntime: conservative lockstep coordinator for the parallel runtime.
//
// The reproduction is a discrete-event simulation, so "run it on N cores"
// means parallel discrete-event simulation.  This coordinator uses the
// classic conservative (Chandy–Misra-style) synchronous-window scheme:
//
//   * every shard owns a timing-wheel Scheduler with its own clock;
//   * simulated time advances in lockstep quanta of `quantum` width — within
//     a quantum each worker drains its MPSC inbox into its wheel and runs its
//     local events up to the quantum boundary, then waits at a barrier;
//   * the quantum is bounded by the *lookahead*: the minimum simulated
//     latency any cross-shard event can have.  In this system every
//     cross-shard event is a datagram delivery, whose latency is at least
//     sender stack processing + CSMA backoff + airtime + receiver stack
//     processing (~2 ms with the default 802.15.4 link model).  An event a
//     shard emits during quantum [t, t+q) therefore has a due time >= t+q,
//     i.e. it is always drained by the receiving shard *before* the quantum
//     that could execute it — no shard ever receives an event in its past,
//     and the parallel simulation computes the same physics as the
//     sequential one (modulo tie order of equal-timestamp events and the
//     per-shard rng streams).
//
// The same quantum loop runs in two modes:
//   * sequential (no worker threads): the calling thread plays each shard in
//     turn.  Used for deterministic bring-up and by tests.
//   * parallel (StartWorkers .. StopWorkers): one thread per shard, two
//     barrier crossings per quantum.  Workers park at the start barrier
//     between RunForMillis calls, so the coordinator may freely inspect
//     shard state whenever RunForMillis is not executing (the barrier
//     crossings give the necessary happens-before edges).

#ifndef SRC_CORE_SHARDED_RUNTIME_H_
#define SRC_CORE_SHARDED_RUNTIME_H_

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/rt/shard.h"

namespace micropnp {

class ShardedRuntime {
 public:
  ShardedRuntime(uint32_t num_shards, uint64_t seed, size_t inbox_capacity = 1 << 16);
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  Shard& shard(uint32_t index) { return *shards_[index]; }
  const Shard& shard(uint32_t index) const { return *shards_[index]; }
  std::vector<Shard*> shard_pointers();

  // Stable affinity: shard index for a precomputed address hash.
  uint32_t ShardOfHash(size_t hash) const {
    return static_cast<uint32_t>(hash % shards_.size());
  }

  // All shard clocks agree whenever the runtime is not mid-RunForMillis.
  SimTime now() const { return shards_[0]->scheduler().now(); }

  // Lookahead bound (see file comment).  Must not exceed the minimum
  // cross-shard event latency; the Deployment derives it from the fabric's
  // link model before each run.  Clamped to [50 us, 10 ms].
  void set_quantum_ms(double quantum_ms);
  double quantum_ms() const { return static_cast<double>(quantum_ns_) * 1e-6; }

  // --- worker lifecycle -------------------------------------------------------
  void StartWorkers();
  void StopWorkers();
  bool workers_running() const { return !workers_.empty(); }

  // --- lockstep execution -----------------------------------------------------
  // Advances every shard to now + ms (parallel when workers are running,
  // sequential otherwise).  On return all shard clocks equal now + ms.
  void RunForMillis(double ms);
  // Runs quanta until every shard's wheel and inbox are empty, giving up
  // after `max_ms` of simulated time.  Returns true when fully idle.
  bool RunUntilIdle(double max_ms = 600000.0);

  bool AllIdle() const;
  // Total events executed across all shards.
  uint64_t TotalExecuted() const;
  // Cross-shard posts rejected by a full inbox across all shards.
  uint64_t TotalDroppedPosts() const;

 private:
  void RunQuantaTo(uint64_t target_ns);
  void RunShardQuantum(Shard& shard, uint64_t quantum_end_ns);
  void WorkerLoop(uint32_t index);

  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t quantum_ns_ = 1'500'000;  // 1.5 ms: safe for the default link model

  std::vector<std::thread> workers_;
  // Two-phase handshake per quantum; count = workers + coordinator.
  std::unique_ptr<std::barrier<>> start_barrier_;
  std::unique_ptr<std::barrier<>> end_barrier_;
  std::atomic<uint64_t> quantum_end_ns_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace micropnp

#endif  // SRC_CORE_SHARDED_RUNTIME_H_
