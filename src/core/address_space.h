// The global μPnP address space (Section 3.3), maintained at micropnp.com.
//
// "Any party may request a provisional address by providing their: name,
// organization, email address and a link to a web resource describing the
// peripheral type.  A simple online tool then generates the resistor set
// that is required to encode the assigned device identifier. ... A
// peripheral address remains provisional until a µPnP device driver is
// uploaded for the specified peripheral and validated, at which point it
// becomes a permanent address [and] the address allocation becomes
// immutable.  However, the device drivers associated with an address may be
// updated at any time."

#ifndef SRC_CORE_ADDRESS_SPACE_H_
#define SRC_CORE_ADDRESS_SPACE_H_

#include <array>
#include <map>
#include <string>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/dsl/driver_image.h"
#include "src/hw/id_codec.h"

namespace micropnp {

struct AddressRecord {
  DeviceTypeId id = 0;
  std::string name;
  std::string organization;
  std::string email;
  std::string url;
  bool permanent = false;
  std::array<Ohms, 4> resistors{};  // the "online tool" output
};

class AddressSpace {
 public:
  explicit AddressSpace(const IdentCircuitConfig& circuit = IdentCircuitConfig{});

  // Allocates the next free identifier (skipping the reserved values) and
  // generates its resistor set.
  Result<AddressRecord> RequestProvisionalAddress(const std::string& name,
                                                  const std::string& organization,
                                                  const std::string& email,
                                                  const std::string& url);

  // Registers a specific identifier (for vendors with assigned ranges).
  Result<AddressRecord> RegisterAddress(DeviceTypeId id, const std::string& name,
                                        const std::string& organization, const std::string& email,
                                        const std::string& url);

  // Uploading a *validated* driver promotes the address to permanent.
  // Validation: the image parses, matches the address and handles
  // init/destroy.  Driver updates for permanent addresses are allowed.
  Status UploadDriver(DeviceTypeId id, const DriverImage& image);

  // Permanent addresses are immutable: attempts to re-register fail.
  const AddressRecord* Lookup(DeviceTypeId id) const;
  const DriverImage* DriverFor(DeviceTypeId id) const;
  size_t size() const { return records_.size(); }

 private:
  IdentCodec codec_;
  DeviceTypeId next_id_ = 0x00000001;
  std::map<DeviceTypeId, AddressRecord> records_;
  std::map<DeviceTypeId, DriverImage> drivers_;
};

}  // namespace micropnp

#endif  // SRC_CORE_ADDRESS_SPACE_H_
