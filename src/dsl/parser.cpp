#include "src/dsl/parser.h"

#include <unordered_map>
#include <utility>

#include "src/dsl/lexer.h"

namespace micropnp {
namespace {

bool IsTypeToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kTypeUint8:
    case TokenKind::kTypeUint16:
    case TokenKind::kTypeUint32:
    case TokenKind::kTypeInt8:
    case TokenKind::kTypeInt16:
    case TokenKind::kTypeInt32:
    case TokenKind::kTypeBool:
    case TokenKind::kTypeChar:
      return true;
    default:
      return false;
  }
}

DslType TypeFromToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kTypeUint8:
      return DslType::kUint8;
    case TokenKind::kTypeUint16:
      return DslType::kUint16;
    case TokenKind::kTypeUint32:
      return DslType::kUint32;
    case TokenKind::kTypeInt8:
      return DslType::kInt8;
    case TokenKind::kTypeInt16:
      return DslType::kInt16;
    case TokenKind::kTypeInt32:
      return DslType::kInt32;
    case TokenKind::kTypeBool:
      return DslType::kBool;
    default:
      return DslType::kChar;
  }
}

// Binding powers for precedence-climbing, loosest first.
int BinaryPrecedence(TokenKind kind) {
  switch (kind) {
    case TokenKind::kOr:
      return 1;
    case TokenKind::kAnd:
      return 2;
    case TokenKind::kPipe:
      return 3;
    case TokenKind::kCaret:
      return 4;
    case TokenKind::kAmp:
      return 5;
    case TokenKind::kEq:
    case TokenKind::kNe:
      return 6;
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
      return 7;
    case TokenKind::kShl:
    case TokenKind::kShr:
      return 8;
    case TokenKind::kPlus:
    case TokenKind::kMinus:
      return 9;
    case TokenKind::kStar:
    case TokenKind::kSlash:
    case TokenKind::kPercent:
      return 10;
    default:
      return 0;  // not a binary operator
  }
}

BinOp BinOpFromToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kOr:
      return BinOp::kLogicalOr;
    case TokenKind::kAnd:
      return BinOp::kLogicalAnd;
    case TokenKind::kPipe:
      return BinOp::kBitOr;
    case TokenKind::kCaret:
      return BinOp::kBitXor;
    case TokenKind::kAmp:
      return BinOp::kBitAnd;
    case TokenKind::kEq:
      return BinOp::kEq;
    case TokenKind::kNe:
      return BinOp::kNe;
    case TokenKind::kLt:
      return BinOp::kLt;
    case TokenKind::kLe:
      return BinOp::kLe;
    case TokenKind::kGt:
      return BinOp::kGt;
    case TokenKind::kGe:
      return BinOp::kGe;
    case TokenKind::kShl:
      return BinOp::kShl;
    case TokenKind::kShr:
      return BinOp::kShr;
    case TokenKind::kPlus:
      return BinOp::kAdd;
    case TokenKind::kMinus:
      return BinOp::kSub;
    case TokenKind::kStar:
      return BinOp::kMul;
    case TokenKind::kSlash:
      return BinOp::kDiv;
    default:
      return BinOp::kMod;
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<DriverAst> Run() {
    DriverAst ast;
    while (!AtEnd()) {
      const Token& t = Peek();
      Status s;
      switch (t.kind) {
        case TokenKind::kImport:
          s = ParseImport(ast);
          break;
        case TokenKind::kDevice:
          s = ParseDevice(ast);
          break;
        case TokenKind::kConst:
          s = ParseConst(ast);
          break;
        case TokenKind::kEvent:
        case TokenKind::kError:
          s = ParseHandler(ast);
          break;
        default:
          if (IsTypeToken(t.kind)) {
            s = ParseVarDecl(ast);
          } else {
            return ErrorAt(t, "expected declaration or handler");
          }
      }
      if (!s.ok()) {
        return s;
      }
    }
    return ast;
  }

 private:
  // ------------------------------------------------------------- helpers --
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEndOfFile; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (Check(kind)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ErrorAt(const Token& t, const std::string& message) {
    return InvalidArgument("line " + std::to_string(t.line) + ": " + message);
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!Match(kind)) {
      return ErrorAt(Peek(), std::string("expected ") + what);
    }
    return OkStatus();
  }

  // Evaluates a constant expression (literals, previously defined consts,
  // unary minus/complement, binary arithmetic).  Used by `const` and
  // `device` declarations.
  Result<int32_t> EvalConst(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLiteral:
        return e.int_value;
      case Expr::Kind::kVar: {
        auto it = const_values_.find(e.name);
        if (it == const_values_.end()) {
          return InvalidArgument("line " + std::to_string(e.line) + ": '" + e.name +
                                 "' is not a constant");
        }
        return it->second;
      }
      case Expr::Kind::kUnary: {
        Result<int32_t> v = EvalConst(*e.lhs);
        if (!v.ok()) {
          return v;
        }
        switch (e.un_op) {
          case UnOp::kNeg:
            return -*v;
          case UnOp::kBitNot:
            return ~*v;
          case UnOp::kLogicalNot:
            return *v == 0 ? 1 : 0;
        }
        return InternalError("bad unop");
      }
      case Expr::Kind::kBinary: {
        Result<int32_t> a = EvalConst(*e.lhs);
        Result<int32_t> b = EvalConst(*e.rhs);
        if (!a.ok()) {
          return a;
        }
        if (!b.ok()) {
          return b;
        }
        switch (e.bin_op) {
          case BinOp::kAdd:
            return *a + *b;
          case BinOp::kSub:
            return *a - *b;
          case BinOp::kMul:
            return *a * *b;
          case BinOp::kDiv:
            if (*b == 0) {
              return InvalidArgument("constant division by zero");
            }
            return *a / *b;
          case BinOp::kShl:
            return static_cast<int32_t>(static_cast<uint32_t>(*a) << (*b & 31));
          case BinOp::kShr:
            return static_cast<int32_t>(static_cast<uint32_t>(*a) >> (*b & 31));
          case BinOp::kBitOr:
            return *a | *b;
          case BinOp::kBitAnd:
            return *a & *b;
          case BinOp::kBitXor:
            return *a ^ *b;
          default:
            return InvalidArgument("operator not allowed in constant expression");
        }
      }
      default:
        return InvalidArgument("expression is not constant");
    }
  }

  // -------------------------------------------------------- declarations --
  Status ParseImport(DriverAst& ast) {
    Advance();  // 'import'
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorAt(Peek(), "expected library name after 'import'");
    }
    ast.imports.push_back(Advance().text);
    return Expect(TokenKind::kSemicolon, "';' after import");
  }

  Status ParseDevice(DriverAst& ast) {
    const Token& kw = Advance();  // 'device'
    if (ast.has_device_id) {
      return ErrorAt(kw, "duplicate device declaration");
    }
    Result<ExprPtr> e = ParseExpression();
    if (!e.ok()) {
      return e.status();
    }
    Result<int32_t> v = EvalConst(**e);
    if (!v.ok()) {
      return v.status();
    }
    ast.has_device_id = true;
    ast.device_id = static_cast<DeviceTypeId>(*v);
    return Expect(TokenKind::kSemicolon, "';' after device id");
  }

  Status ParseConst(DriverAst& ast) {
    Advance();  // 'const'
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorAt(Peek(), "expected constant name");
    }
    Token name = Advance();
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kAssign, "'=' in const declaration"));
    Result<ExprPtr> e = ParseExpression();
    if (!e.ok()) {
      return e.status();
    }
    Result<int32_t> v = EvalConst(**e);
    if (!v.ok()) {
      return v.status();
    }
    if (const_values_.count(name.text) != 0) {
      return ErrorAt(name, "duplicate constant '" + name.text + "'");
    }
    const_values_[name.text] = *v;
    ast.consts.push_back(ConstDecl{name.text, *v, name.line});
    return Expect(TokenKind::kSemicolon, "';' after const declaration");
  }

  Status ParseVarDecl(DriverAst& ast) {
    const DslType type = TypeFromToken(Advance().kind);
    while (true) {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAt(Peek(), "expected variable name");
      }
      Token name = Advance();
      VarDecl decl;
      decl.type = type;
      decl.name = name.text;
      decl.line = name.line;
      if (Match(TokenKind::kLBracket)) {
        Result<ExprPtr> size = ParseExpression();
        if (!size.ok()) {
          return size.status();
        }
        Result<int32_t> v = EvalConst(**size);
        if (!v.ok()) {
          return v.status();
        }
        if (*v <= 0 || *v > 255) {
          return ErrorAt(name, "array size must be in [1, 255]");
        }
        decl.array_size = *v;
        MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']' after array size"));
      }
      ast.vars.push_back(std::move(decl));
      if (Match(TokenKind::kComma)) {
        continue;
      }
      return Expect(TokenKind::kSemicolon, "';' after variable declaration");
    }
  }

  Status ParseHandler(DriverAst& ast) {
    Handler handler;
    handler.is_error = (Peek().kind == TokenKind::kError);
    handler.line = Peek().line;
    Advance();  // 'event' / 'error'
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorAt(Peek(), "expected handler name");
    }
    handler.name = Advance().text;
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after handler name"));
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        if (!IsTypeToken(Peek().kind)) {
          return ErrorAt(Peek(), "expected parameter type");
        }
        Param p;
        p.type = TypeFromToken(Advance().kind);
        if (!Check(TokenKind::kIdentifier)) {
          return ErrorAt(Peek(), "expected parameter name");
        }
        p.name = Advance().text;
        handler.params.push_back(std::move(p));
        if (!Match(TokenKind::kComma)) {
          break;
        }
      }
    }
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')' after parameters"));
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':' before handler body"));
    Result<std::vector<StmtPtr>> body = ParseBlock();
    if (!body.ok()) {
      return body.status();
    }
    handler.body = std::move(*body);
    ast.handlers.push_back(std::move(handler));
    return OkStatus();
  }

  // ------------------------------------------------------------- blocks ---
  Result<std::vector<StmtPtr>> ParseBlock() {
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kIndent, "indented block"));
    std::vector<StmtPtr> stmts;
    while (!Check(TokenKind::kDedent) && !AtEnd()) {
      Result<StmtPtr> s = ParseStatement();
      if (!s.ok()) {
        return s.status();
      }
      stmts.push_back(std::move(*s));
    }
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kDedent, "end of block"));
    if (stmts.empty()) {
      return InvalidArgument("empty block");
    }
    return stmts;
  }

  Result<StmtPtr> ParseStatement() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kSignal:
        return ParseSignal();
      case TokenKind::kReturn:
        return ParseReturn();
      case TokenKind::kIf:
        return ParseIf();
      case TokenKind::kWhile:
        return ParseWhile();
      case TokenKind::kIdentifier:
        return ParseAssignOrExpr();
      default:
        return Result<StmtPtr>(ErrorAt(t, "expected statement"));
    }
  }

  Result<StmtPtr> ParseSignal() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kSignal;
    stmt->line = Peek().line;
    Advance();  // 'signal'
    if (Match(TokenKind::kThis)) {
      stmt->signal_this = true;
    } else if (Check(TokenKind::kIdentifier)) {
      stmt->signal_target = Advance().text;
    } else {
      return Result<StmtPtr>(ErrorAt(Peek(), "expected 'this' or library name after 'signal'"));
    }
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.' in signal target"));
    if (!Check(TokenKind::kIdentifier)) {
      return Result<StmtPtr>(ErrorAt(Peek(), "expected event name"));
    }
    stmt->signal_name = Advance().text;
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after event name"));
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        Result<ExprPtr> arg = ParseExpression();
        if (!arg.ok()) {
          return arg.status();
        }
        stmt->args.push_back(std::move(*arg));
        if (!Match(TokenKind::kComma)) {
          break;
        }
      }
    }
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')' after signal arguments"));
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';' after signal"));
    return stmt;
  }

  Result<StmtPtr> ParseReturn() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kReturn;
    stmt->line = Peek().line;
    Advance();  // 'return'
    if (!Check(TokenKind::kSemicolon)) {
      Result<ExprPtr> e = ParseExpression();
      if (!e.ok()) {
        return e.status();
      }
      stmt->expr = std::move(*e);
    }
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';' after return"));
    return stmt;
  }

  Result<StmtPtr> ParseIf() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->line = Peek().line;
    Advance();  // 'if'
    while (true) {
      IfBranch branch;
      Result<ExprPtr> cond = ParseExpression();
      if (!cond.ok()) {
        return cond.status();
      }
      branch.condition = std::move(*cond);
      MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':' after condition"));
      Result<std::vector<StmtPtr>> body = ParseBlock();
      if (!body.ok()) {
        return body.status();
      }
      branch.body = std::move(*body);
      stmt->branches.push_back(std::move(branch));
      if (Match(TokenKind::kElif)) {
        continue;
      }
      break;
    }
    if (Match(TokenKind::kElse)) {
      MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':' after else"));
      Result<std::vector<StmtPtr>> body = ParseBlock();
      if (!body.ok()) {
        return body.status();
      }
      stmt->else_body = std::move(*body);
    }
    return stmt;
  }

  Result<StmtPtr> ParseWhile() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kWhile;
    stmt->line = Peek().line;
    Advance();  // 'while'
    Result<ExprPtr> cond = ParseExpression();
    if (!cond.ok()) {
      return cond.status();
    }
    stmt->condition = std::move(*cond);
    MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':' after condition"));
    Result<std::vector<StmtPtr>> body = ParseBlock();
    if (!body.ok()) {
      return body.status();
    }
    stmt->body = std::move(*body);
    return stmt;
  }

  Result<StmtPtr> ParseAssignOrExpr() {
    Token name = Advance();
    auto stmt = std::make_unique<Stmt>();
    stmt->line = name.line;

    // Optional index: name[expr] or name[expr++].
    ExprPtr index;
    if (Check(TokenKind::kLBracket)) {
      Advance();
      Result<ExprPtr> idx = ParseExpression();
      if (!idx.ok()) {
        return idx.status();
      }
      index = std::move(*idx);
      MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']' after index"));
    }

    if (Check(TokenKind::kAssign) || Check(TokenKind::kPlusAssign) ||
        Check(TokenKind::kMinusAssign)) {
      TokenKind op = Advance().kind;
      stmt->kind = Stmt::Kind::kAssign;
      stmt->target = name.text;
      stmt->index = std::move(index);
      stmt->assign_op = (op == TokenKind::kAssign)       ? AssignOp::kAssign
                        : (op == TokenKind::kPlusAssign) ? AssignOp::kAddAssign
                                                         : AssignOp::kSubAssign;
      Result<ExprPtr> value = ParseExpression();
      if (!value.ok()) {
        return value.status();
      }
      stmt->value = std::move(*value);
      MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';' after assignment"));
      return stmt;
    }

    // Bare expression statement, e.g. `idx++;`.
    if (index != nullptr) {
      return Result<StmtPtr>(ErrorAt(name, "indexed expression is not a statement"));
    }
    if (Check(TokenKind::kPlusPlus) || Check(TokenKind::kMinusMinus)) {
      const bool inc = Advance().kind == TokenKind::kPlusPlus;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kPostIncDec;
      e->line = name.line;
      e->name = name.text;
      e->increment = inc;
      stmt->kind = Stmt::Kind::kExpr;
      stmt->expr = std::move(e);
      MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';' after expression"));
      return stmt;
    }
    return Result<StmtPtr>(ErrorAt(name, "expected assignment or increment"));
  }

  // --------------------------------------------------------- expressions --
  Result<ExprPtr> ParseExpression() { return ParseBinary(1); }

  Result<ExprPtr> ParseBinary(int min_precedence) {
    Result<ExprPtr> lhs = ParseUnary();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr expr = std::move(*lhs);
    while (true) {
      const int prec = BinaryPrecedence(Peek().kind);
      if (prec < min_precedence || prec == 0) {
        return expr;
      }
      Token op = Advance();
      Result<ExprPtr> rhs = ParseBinary(prec + 1);  // left associative
      if (!rhs.ok()) {
        return rhs;
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->line = op.line;
      node->bin_op = BinOpFromToken(op.kind);
      node->lhs = std::move(expr);
      node->rhs = std::move(*rhs);
      expr = std::move(node);
    }
  }

  Result<ExprPtr> ParseUnary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kMinus || t.kind == TokenKind::kTilde ||
        t.kind == TokenKind::kBang) {
      Token op = Advance();
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand;
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->line = op.line;
      node->un_op = (op.kind == TokenKind::kMinus)   ? UnOp::kNeg
                    : (op.kind == TokenKind::kTilde) ? UnOp::kBitNot
                                                     : UnOp::kLogicalNot;
      node->lhs = std::move(*operand);
      return node;
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    auto node = std::make_unique<Expr>();
    node->line = t.line;
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        node->kind = Expr::Kind::kIntLiteral;
        node->int_value = Advance().int_value;
        return node;
      case TokenKind::kTrue:
        Advance();
        node->kind = Expr::Kind::kIntLiteral;
        node->int_value = 1;
        return node;
      case TokenKind::kFalse:
        Advance();
        node->kind = Expr::Kind::kIntLiteral;
        node->int_value = 0;
        return node;
      case TokenKind::kLParen: {
        Advance();
        Result<ExprPtr> inner = ParseExpression();
        if (!inner.ok()) {
          return inner;
        }
        MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdentifier: {
        Token name = Advance();
        if (Match(TokenKind::kLBracket)) {
          Result<ExprPtr> index = ParseExpression();
          if (!index.ok()) {
            return index;
          }
          MICROPNP_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
          node->kind = Expr::Kind::kIndex;
          node->name = name.text;
          node->lhs = std::move(*index);
          return node;
        }
        if (Check(TokenKind::kPlusPlus) || Check(TokenKind::kMinusMinus)) {
          node->increment = Advance().kind == TokenKind::kPlusPlus;
          node->kind = Expr::Kind::kPostIncDec;
          node->name = name.text;
          return node;
        }
        node->kind = Expr::Kind::kVar;
        node->name = name.text;
        return node;
      }
      default:
        return Result<ExprPtr>(ErrorAt(t, "expected expression"));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, int32_t> const_values_;
};

}  // namespace

const char* DslTypeName(DslType type) {
  switch (type) {
    case DslType::kUint8:
      return "uint8_t";
    case DslType::kUint16:
      return "uint16_t";
    case DslType::kUint32:
      return "uint32_t";
    case DslType::kInt8:
      return "int8_t";
    case DslType::kInt16:
      return "int16_t";
    case DslType::kInt32:
      return "int32_t";
    case DslType::kBool:
      return "bool";
    case DslType::kChar:
      return "char";
  }
  return "?";
}

Result<DriverAst> ParseDriver(const std::string& source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) {
    return tokens.status();
  }
  return Parser(std::move(*tokens)).Run();
}

}  // namespace micropnp
