// Tokens of the μPnP driver DSL (Section 4.1).
//
// The language is "typed and event-based [with] syntax inspired by the
// simplicity and generality of the Python programming language": '#'
// comments, colon-introduced indented blocks, semicolon-terminated
// statements (Listing 1).

#ifndef SRC_DSL_TOKEN_H_
#define SRC_DSL_TOKEN_H_

#include <cstdint>
#include <string>

namespace micropnp {

enum class TokenKind : uint8_t {
  // literals / identifiers
  kIdentifier,
  kIntLiteral,   // decimal, 0x hex, or 'c' char literal (value in int_value)
  kTrue,
  kFalse,
  // keywords
  kImport,
  kDevice,
  kConst,
  kEvent,
  kError,
  kSignal,
  kReturn,
  kIf,
  kElif,
  kElse,
  kWhile,
  kThis,
  kAnd,  // also spelled &&
  kOr,   // also spelled ||
  // type names
  kTypeUint8,
  kTypeUint16,
  kTypeUint32,
  kTypeInt8,
  kTypeInt16,
  kTypeInt32,
  kTypeBool,
  kTypeChar,
  // punctuation / operators
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kDot,
  kAssign,      // =
  kPlusAssign,  // +=
  kMinusAssign, // -=
  kPlusPlus,    // ++
  kMinusMinus,  // --
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kShl,
  kShr,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kBang,     // logical not (also spelled `not`? no - just !)
  kEq,       // ==
  kNe,       // !=
  kLt,
  kLe,
  kGt,
  kGe,
  // layout
  kIndent,
  kDedent,
  kEndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;        // identifier spelling
  int32_t int_value = 0;   // for kIntLiteral
  int line = 0;            // 1-based source line
  int column = 0;          // 1-based source column
};

const char* TokenKindName(TokenKind kind);

}  // namespace micropnp

#endif  // SRC_DSL_TOKEN_H_
