// μPnP DSL compiler: source -> compact bytecode driver image.
//
// "The µPnP DSL compiler transforms high-level device drivers into compact
// bytecode instructions, allowing for energy-efficient distribution in
// networks of IoT nodes" (Section 4.1).

#ifndef SRC_DSL_COMPILER_H_
#define SRC_DSL_COMPILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dsl/driver_image.h"

namespace micropnp {

// pc -> source-line map recorded during code generation.  One entry per
// statement, sorted by pc; the map is tooling-side only and never part of
// the wire image (drivers stay as small as Table 3 measured).
struct DriverDebugInfo {
  struct LineEntry {
    uint16_t pc = 0;  // bytecode offset of the statement's first instruction
    int line = 0;     // 1-based source line
  };
  std::vector<LineEntry> lines;

  // Source line of the statement covering `pc` (the nearest entry at or
  // before it); 0 when the map is empty.
  int LineFor(uint16_t pc) const;
};

struct CompiledDriver {
  DriverImage image;
  DriverDebugInfo debug;
};

// Compiles μPnP DSL source.  All semantic errors (unknown imports, arity
// mismatches, undeclared variables, missing init/destroy handlers, ...)
// carry source line numbers.
Result<DriverImage> CompileDriver(const std::string& source);

// Same compilation, keeping the pc -> line map for diagnostics tooling
// (updl_lint resolves analyzer findings back to driver source lines).
Result<CompiledDriver> CompileDriverWithDebugInfo(const std::string& source);

}  // namespace micropnp

#endif  // SRC_DSL_COMPILER_H_
