// μPnP DSL compiler: source -> compact bytecode driver image.
//
// "The µPnP DSL compiler transforms high-level device drivers into compact
// bytecode instructions, allowing for energy-efficient distribution in
// networks of IoT nodes" (Section 4.1).

#ifndef SRC_DSL_COMPILER_H_
#define SRC_DSL_COMPILER_H_

#include <string>

#include "src/common/status.h"
#include "src/dsl/driver_image.h"

namespace micropnp {

// Compiles μPnP DSL source.  All semantic errors (unknown imports, arity
// mismatches, undeclared variables, missing init/destroy handlers, ...)
// carry source line numbers.
Result<DriverImage> CompileDriver(const std::string& source);

}  // namespace micropnp

#endif  // SRC_DSL_COMPILER_H_
