#include "src/dsl/compiler.h"

#include <unordered_map>

#include "src/dsl/bytecode.h"
#include "src/dsl/parser.h"

namespace micropnp {
namespace {

// Resource ceilings of the embedded runtime (mirrored by the VM).
constexpr size_t kMaxScalars = 64;
constexpr size_t kMaxArrays = 8;
constexpr size_t kMaxHandlers = 24;
constexpr size_t kMaxParams = 4;

// Fixed parameter counts of the well-known events.
int WellKnownArgc(EventId id) {
  switch (id) {
    case kEventWrite:
    case kEventStream:
    case kEventNewData:
      return 1;
    default:
      return 0;  // init, destroy, read, tick and all error events
  }
}

struct GlobalInfo {
  uint8_t slot;
  DslType type;
};

struct ArrayInfo {
  uint8_t index;
  uint8_t size;
};

struct HandlerInfo {
  EventId event;
  uint8_t argc;
  bool is_error;
};

class CodeGen {
 public:
  explicit CodeGen(const DriverAst& ast) : ast_(ast) {}

  Result<DriverImage> Run() {
    MICROPNP_RETURN_IF_ERROR(CollectDeclarations());
    MICROPNP_RETURN_IF_ERROR(CollectHandlers());

    for (const Handler& h : ast_.handlers) {
      const HandlerInfo& info = handler_infos_.at(h.name);
      HandlerEntry entry;
      entry.event = info.event;
      entry.argc = info.argc;
      entry.offset = static_cast<uint16_t>(code_.size());
      image_.handlers.push_back(entry);
      MICROPNP_RETURN_IF_ERROR(EmitHandler(h));
      if (code_.size() > 0xffff) {
        return ResourceExhausted("driver code exceeds 64 KiB");
      }
    }
    image_.code = std::move(code_);
    return image_;
  }

 private:
  Status ErrorOn(int line, const std::string& message) {
    return InvalidArgument("line " + std::to_string(line) + ": " + message);
  }

  // ------------------------------------------------------------- tables ---
  Status CollectDeclarations() {
    if (!ast_.has_device_id) {
      return InvalidArgument("driver must declare its device type: 'device 0x...;'");
    }
    image_.device_id = ast_.device_id;

    for (const std::string& import : ast_.imports) {
      const NativeLibraryDesc* lib = FindNativeLibrary(import);
      if (lib == nullptr) {
        return InvalidArgument("unknown native library '" + import + "'");
      }
      if (imports_.count(import) != 0) {
        return InvalidArgument("duplicate import '" + import + "'");
      }
      imports_[import] = lib;
      image_.imports.push_back(lib->id);
    }

    for (const ConstDecl& c : ast_.consts) {
      consts_[c.name] = c.value;
    }

    for (const VarDecl& v : ast_.vars) {
      if (consts_.count(v.name) != 0 || globals_.count(v.name) != 0 ||
          arrays_.count(v.name) != 0) {
        return ErrorOn(v.line, "duplicate declaration of '" + v.name + "'");
      }
      if (v.array_size == 0) {
        if (image_.scalar_types.size() >= kMaxScalars) {
          return ErrorOn(v.line, "too many global variables (max 64)");
        }
        globals_[v.name] = GlobalInfo{static_cast<uint8_t>(image_.scalar_types.size()), v.type};
        image_.scalar_types.push_back(v.type);
      } else {
        if (v.type != DslType::kUint8 && v.type != DslType::kChar) {
          return ErrorOn(v.line, "arrays must be uint8_t or char");
        }
        if (image_.array_sizes.size() >= kMaxArrays) {
          return ErrorOn(v.line, "too many arrays (max 8)");
        }
        arrays_[v.name] =
            ArrayInfo{static_cast<uint8_t>(image_.array_sizes.size()),
                      static_cast<uint8_t>(v.array_size)};
        image_.array_sizes.push_back(static_cast<uint8_t>(v.array_size));
      }
    }
    return OkStatus();
  }

  Status CollectHandlers() {
    if (ast_.handlers.size() > kMaxHandlers) {
      return InvalidArgument("too many handlers (max 24)");
    }
    EventId next_custom = kEventCustomBase;
    bool has_init = false, has_destroy = false;
    for (const Handler& h : ast_.handlers) {
      if (handler_infos_.count(h.name) != 0) {
        return ErrorOn(h.line, "duplicate handler '" + h.name + "'");
      }
      if (h.params.size() > kMaxParams) {
        return ErrorOn(h.line, "too many parameters (max 4)");
      }
      HandlerInfo info;
      info.argc = static_cast<uint8_t>(h.params.size());
      std::optional<EventId> well_known = WellKnownEventId(h.name);
      if (well_known.has_value()) {
        info.event = *well_known;
        if (static_cast<int>(h.params.size()) != WellKnownArgc(*well_known)) {
          return ErrorOn(h.line, "handler '" + h.name + "' must take " +
                                     std::to_string(WellKnownArgc(*well_known)) + " parameter(s)");
        }
        if (IsErrorEvent(*well_known) != h.is_error) {
          return ErrorOn(h.line, h.is_error ? "'" + h.name + "' is not an error event"
                                            : "'" + h.name + "' must use the 'error' keyword");
        }
      } else {
        if (h.is_error) {
          return ErrorOn(h.line, "unknown error event '" + h.name + "'");
        }
        info.event = next_custom++;
      }
      info.is_error = h.is_error;
      handler_infos_[h.name] = info;
      has_init |= (info.event == kEventInit);
      has_destroy |= (info.event == kEventDestroy);
    }
    // Section 4.1: "All µPnP drivers must implement at least two event
    // handlers: init and destroy."
    if (!has_init || !has_destroy) {
      return InvalidArgument("driver must implement init() and destroy() handlers");
    }
    return OkStatus();
  }

  // ------------------------------------------------------------ emission --
  void Emit(Op op) { code_.push_back(static_cast<uint8_t>(op)); }
  void EmitU8(uint8_t v) { code_.push_back(v); }
  void EmitI16(int16_t v) {
    code_.push_back(static_cast<uint8_t>(static_cast<uint16_t>(v) >> 8));
    code_.push_back(static_cast<uint8_t>(static_cast<uint16_t>(v) & 0xff));
  }

  void EmitPushInt(int32_t v) {
    if (v == 0) {
      Emit(Op::kPush0);
    } else if (v == 1) {
      Emit(Op::kPush1);
    } else if (v >= -128 && v <= 127) {
      Emit(Op::kPushI8);
      EmitU8(static_cast<uint8_t>(static_cast<int8_t>(v)));
    } else if (v >= -32768 && v <= 32767) {
      Emit(Op::kPushI16);
      EmitI16(static_cast<int16_t>(v));
    } else {
      Emit(Op::kPushI32);
      code_.push_back(static_cast<uint8_t>(static_cast<uint32_t>(v) >> 24));
      code_.push_back(static_cast<uint8_t>((static_cast<uint32_t>(v) >> 16) & 0xff));
      code_.push_back(static_cast<uint8_t>((static_cast<uint32_t>(v) >> 8) & 0xff));
      code_.push_back(static_cast<uint8_t>(static_cast<uint32_t>(v) & 0xff));
    }
  }

  // Emits a jump with a to-be-patched offset; returns the operand position.
  size_t EmitJump(Op op) {
    Emit(op);
    const size_t at = code_.size();
    EmitI16(0);
    return at;
  }

  // Patches the i16 at `operand_at` to land on the current position.
  Status PatchJump(size_t operand_at, int line) {
    const ptrdiff_t delta =
        static_cast<ptrdiff_t>(code_.size()) - static_cast<ptrdiff_t>(operand_at + 2);
    if (delta < -32768 || delta > 32767) {
      return ErrorOn(line, "jump out of range");
    }
    code_[operand_at] = static_cast<uint8_t>(static_cast<uint16_t>(delta) >> 8);
    code_[operand_at + 1] = static_cast<uint8_t>(static_cast<uint16_t>(delta) & 0xff);
    return OkStatus();
  }

  // Backward jump to `target`.
  Status EmitJumpTo(Op op, size_t target, int line) {
    Emit(op);
    const ptrdiff_t delta =
        static_cast<ptrdiff_t>(target) - static_cast<ptrdiff_t>(code_.size() + 2);
    if (delta < -32768 || delta > 32767) {
      return ErrorOn(line, "jump out of range");
    }
    EmitI16(static_cast<int16_t>(delta));
    return OkStatus();
  }

  Status EmitHandler(const Handler& h) {
    params_.clear();
    for (size_t i = 0; i < h.params.size(); ++i) {
      const Param& p = h.params[i];
      if (consts_.count(p.name) != 0 || globals_.count(p.name) != 0 ||
          arrays_.count(p.name) != 0 || params_.count(p.name) != 0) {
        return ErrorOn(h.line, "parameter '" + p.name + "' shadows another name");
      }
      params_[p.name] = static_cast<uint8_t>(i);
    }
    MICROPNP_RETURN_IF_ERROR(EmitBlock(h.body));
    // Implicit end of handler — skipped when the body already ends in a
    // return statement, which would leave this kRet unreachable.
    if (h.body.empty() || h.body.back()->kind != Stmt::Kind::kReturn) {
      Emit(Op::kRet);
    }
    return OkStatus();
  }

  Status EmitBlock(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& s : stmts) {
      MICROPNP_RETURN_IF_ERROR(EmitStatement(*s));
    }
    return OkStatus();
  }

  Status EmitStatement(const Stmt& s) {
    if (s.line > 0 &&
        (debug_.lines.empty() || debug_.lines.back().line != s.line)) {
      debug_.lines.push_back(
          DriverDebugInfo::LineEntry{static_cast<uint16_t>(code_.size()), s.line});
    }
    switch (s.kind) {
      case Stmt::Kind::kAssign:
        return EmitAssign(s);
      case Stmt::Kind::kSignal:
        return EmitSignal(s);
      case Stmt::Kind::kIf:
        return EmitIf(s);
      case Stmt::Kind::kWhile:
        return EmitWhile(s);
      case Stmt::Kind::kReturn:
        return EmitReturn(s);
      case Stmt::Kind::kExpr:
        MICROPNP_RETURN_IF_ERROR(EmitExpr(*s.expr));
        Emit(Op::kPop);
        return OkStatus();
    }
    return InternalError("bad statement kind");
  }

  Status EmitAssign(const Stmt& s) {
    if (s.index != nullptr) {
      // Array element store.
      auto arr = arrays_.find(s.target);
      if (arr == arrays_.end()) {
        return ErrorOn(s.line, "'" + s.target + "' is not an array");
      }
      if (s.assign_op != AssignOp::kAssign) {
        return ErrorOn(s.line, "compound assignment is only supported on scalars");
      }
      MICROPNP_RETURN_IF_ERROR(EmitExpr(*s.index));
      MICROPNP_RETURN_IF_ERROR(EmitExpr(*s.value));
      Emit(Op::kStoreA);
      EmitU8(arr->second.index);
      return OkStatus();
    }
    auto g = globals_.find(s.target);
    if (g == globals_.end()) {
      if (params_.count(s.target) != 0) {
        return ErrorOn(s.line, "parameters are read-only");
      }
      return ErrorOn(s.line, "undeclared variable '" + s.target + "'");
    }
    if (s.assign_op != AssignOp::kAssign) {
      Emit(Op::kLoadG);
      EmitU8(g->second.slot);
    }
    MICROPNP_RETURN_IF_ERROR(EmitExpr(*s.value));
    if (s.assign_op == AssignOp::kAddAssign) {
      Emit(Op::kAdd);
    } else if (s.assign_op == AssignOp::kSubAssign) {
      Emit(Op::kSub);
    }
    Emit(Op::kStoreG);
    EmitU8(g->second.slot);
    return OkStatus();
  }

  Status EmitSignal(const Stmt& s) {
    if (s.signal_this) {
      auto it = handler_infos_.find(s.signal_name);
      if (it == handler_infos_.end()) {
        return ErrorOn(s.line, "signal target 'this." + s.signal_name + "' has no handler");
      }
      if (s.args.size() != it->second.argc) {
        return ErrorOn(s.line, "'" + s.signal_name + "' expects " +
                                   std::to_string(it->second.argc) + " argument(s)");
      }
      for (const ExprPtr& a : s.args) {
        MICROPNP_RETURN_IF_ERROR(EmitExpr(*a));
      }
      Emit(Op::kSignalSelf);
      EmitU8(it->second.event);
      return OkStatus();
    }
    auto lib_it = imports_.find(s.signal_target);
    if (lib_it == imports_.end()) {
      return ErrorOn(s.line, "library '" + s.signal_target + "' is not imported");
    }
    const NativeFunctionDesc* fn = FindNativeFunction(*lib_it->second, s.signal_name);
    if (fn == nullptr) {
      return ErrorOn(s.line, "library '" + s.signal_target + "' has no handler '" +
                                 s.signal_name + "'");
    }
    if (s.args.size() != fn->arg_count) {
      return ErrorOn(s.line, "'" + s.signal_target + "." + s.signal_name + "' expects " +
                                 std::to_string(fn->arg_count) + " argument(s)");
    }
    for (const ExprPtr& a : s.args) {
      MICROPNP_RETURN_IF_ERROR(EmitExpr(*a));
    }
    Emit(Op::kSignalLib);
    EmitU8(lib_it->second->id);
    EmitU8(fn->id);
    return OkStatus();
  }

  Status EmitIf(const Stmt& s) {
    std::vector<size_t> end_jumps;
    for (size_t i = 0; i < s.branches.size(); ++i) {
      const IfBranch& b = s.branches[i];
      MICROPNP_RETURN_IF_ERROR(EmitExpr(*b.condition));
      const size_t skip = EmitJump(Op::kJz);
      MICROPNP_RETURN_IF_ERROR(EmitBlock(b.body));
      const bool is_last = (i + 1 == s.branches.size()) && s.else_body.empty();
      // A branch that ends in `return` never falls through, so the jump over
      // the remaining branches would be unreachable.
      const bool returns = !b.body.empty() && b.body.back()->kind == Stmt::Kind::kReturn;
      if (!is_last && !returns) {
        end_jumps.push_back(EmitJump(Op::kJmp));
      }
      MICROPNP_RETURN_IF_ERROR(PatchJump(skip, s.line));
    }
    if (!s.else_body.empty()) {
      MICROPNP_RETURN_IF_ERROR(EmitBlock(s.else_body));
    }
    for (size_t j : end_jumps) {
      MICROPNP_RETURN_IF_ERROR(PatchJump(j, s.line));
    }
    return OkStatus();
  }

  Status EmitWhile(const Stmt& s) {
    const size_t loop_top = code_.size();
    MICROPNP_RETURN_IF_ERROR(EmitExpr(*s.condition));
    const size_t exit_jump = EmitJump(Op::kJz);
    MICROPNP_RETURN_IF_ERROR(EmitBlock(s.body));
    MICROPNP_RETURN_IF_ERROR(EmitJumpTo(Op::kJmp, loop_top, s.line));
    return PatchJump(exit_jump, s.line);
  }

  Status EmitReturn(const Stmt& s) {
    if (s.expr == nullptr) {
      Emit(Op::kRet);
      return OkStatus();
    }
    // `return rfid;` where rfid is an array returns the whole buffer.
    if (s.expr->kind == Expr::Kind::kVar) {
      auto arr = arrays_.find(s.expr->name);
      if (arr != arrays_.end()) {
        Emit(Op::kRetArr);
        EmitU8(arr->second.index);
        return OkStatus();
      }
    }
    MICROPNP_RETURN_IF_ERROR(EmitExpr(*s.expr));
    Emit(Op::kRetVal);
    return OkStatus();
  }

  Status EmitExpr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLiteral:
        EmitPushInt(e.int_value);
        return OkStatus();
      case Expr::Kind::kVar: {
        auto c = consts_.find(e.name);
        if (c != consts_.end()) {
          EmitPushInt(c->second);
          return OkStatus();
        }
        auto p = params_.find(e.name);
        if (p != params_.end()) {
          Emit(Op::kLoadL);
          EmitU8(p->second);
          return OkStatus();
        }
        auto g = globals_.find(e.name);
        if (g != globals_.end()) {
          Emit(Op::kLoadG);
          EmitU8(g->second.slot);
          return OkStatus();
        }
        if (arrays_.count(e.name) != 0) {
          return ErrorOn(e.line, "array '" + e.name + "' used as a scalar");
        }
        return ErrorOn(e.line, "undeclared identifier '" + e.name + "'");
      }
      case Expr::Kind::kIndex: {
        auto arr = arrays_.find(e.name);
        if (arr == arrays_.end()) {
          return ErrorOn(e.line, "'" + e.name + "' is not an array");
        }
        MICROPNP_RETURN_IF_ERROR(EmitExpr(*e.lhs));
        Emit(Op::kLoadA);
        EmitU8(arr->second.index);
        return OkStatus();
      }
      case Expr::Kind::kPostIncDec: {
        auto g = globals_.find(e.name);
        if (g == globals_.end()) {
          return ErrorOn(e.line, "'++'/'--' requires a global variable");
        }
        // [old] left on the stack; global updated.
        Emit(Op::kLoadG);
        EmitU8(g->second.slot);
        Emit(Op::kDup);
        Emit(Op::kPush1);
        Emit(e.increment ? Op::kAdd : Op::kSub);
        Emit(Op::kStoreG);
        EmitU8(g->second.slot);
        return OkStatus();
      }
      case Expr::Kind::kUnary:
        MICROPNP_RETURN_IF_ERROR(EmitExpr(*e.lhs));
        switch (e.un_op) {
          case UnOp::kNeg:
            Emit(Op::kNeg);
            break;
          case UnOp::kBitNot:
            Emit(Op::kBitNot);
            break;
          case UnOp::kLogicalNot:
            Emit(Op::kLogicalNot);
            break;
        }
        return OkStatus();
      case Expr::Kind::kBinary:
        return EmitBinary(e);
    }
    return InternalError("bad expression kind");
  }

  Status EmitBinary(const Expr& e) {
    // Short-circuit logical operators.
    if (e.bin_op == BinOp::kLogicalAnd || e.bin_op == BinOp::kLogicalOr) {
      const bool is_and = (e.bin_op == BinOp::kLogicalAnd);
      MICROPNP_RETURN_IF_ERROR(EmitExpr(*e.lhs));
      const size_t short_jump = EmitJump(is_and ? Op::kJz : Op::kJnz);
      MICROPNP_RETURN_IF_ERROR(EmitExpr(*e.rhs));
      const size_t rhs_jump = EmitJump(is_and ? Op::kJz : Op::kJnz);
      // Both operands fell through: result is 1 for and, 0 for or.
      Emit(is_and ? Op::kPush1 : Op::kPush0);
      const size_t end_jump = EmitJump(Op::kJmp);
      MICROPNP_RETURN_IF_ERROR(PatchJump(short_jump, e.line));
      MICROPNP_RETURN_IF_ERROR(PatchJump(rhs_jump, e.line));
      Emit(is_and ? Op::kPush0 : Op::kPush1);
      return PatchJump(end_jump, e.line);
    }

    MICROPNP_RETURN_IF_ERROR(EmitExpr(*e.lhs));
    MICROPNP_RETURN_IF_ERROR(EmitExpr(*e.rhs));
    switch (e.bin_op) {
      case BinOp::kAdd:
        Emit(Op::kAdd);
        break;
      case BinOp::kSub:
        Emit(Op::kSub);
        break;
      case BinOp::kMul:
        Emit(Op::kMul);
        break;
      case BinOp::kDiv:
        Emit(Op::kDiv);
        break;
      case BinOp::kMod:
        Emit(Op::kMod);
        break;
      case BinOp::kShl:
        Emit(Op::kShl);
        break;
      case BinOp::kShr:
        Emit(Op::kShr);
        break;
      case BinOp::kBitAnd:
        Emit(Op::kBitAnd);
        break;
      case BinOp::kBitOr:
        Emit(Op::kBitOr);
        break;
      case BinOp::kBitXor:
        Emit(Op::kBitXor);
        break;
      case BinOp::kEq:
        Emit(Op::kEq);
        break;
      case BinOp::kNe:
        Emit(Op::kNe);
        break;
      case BinOp::kLt:
        Emit(Op::kLt);
        break;
      case BinOp::kLe:
        Emit(Op::kLe);
        break;
      case BinOp::kGt:
        Emit(Op::kGt);
        break;
      case BinOp::kGe:
        Emit(Op::kGe);
        break;
      default:
        return InternalError("bad binary operator");
    }
    return OkStatus();
  }

  const DriverAst& ast_;
  DriverImage image_;
  DriverDebugInfo debug_;
  std::vector<uint8_t> code_;
  std::unordered_map<std::string, const NativeLibraryDesc*> imports_;
  std::unordered_map<std::string, int32_t> consts_;
  std::unordered_map<std::string, GlobalInfo> globals_;
  std::unordered_map<std::string, ArrayInfo> arrays_;
  std::unordered_map<std::string, HandlerInfo> handler_infos_;
  std::unordered_map<std::string, uint8_t> params_;

 public:
  DriverDebugInfo TakeDebugInfo() { return std::move(debug_); }
};

}  // namespace

int DriverDebugInfo::LineFor(uint16_t pc) const {
  int line = 0;
  for (const LineEntry& entry : lines) {
    if (entry.pc > pc) {
      break;  // sorted by pc: the previous entry covers this offset
    }
    line = entry.line;
  }
  return line;
}

Result<CompiledDriver> CompileDriverWithDebugInfo(const std::string& source) {
  Result<DriverAst> ast = ParseDriver(source);
  if (!ast.ok()) {
    return ast.status();
  }
  // Library constants become usable as identifiers: fold them into the
  // constant table before code generation.
  DriverAst& tree = *ast;
  for (const std::string& import : tree.imports) {
    const NativeLibraryDesc* lib = FindNativeLibrary(import);
    if (lib == nullptr) {
      continue;  // reported with a proper error by CodeGen
    }
    for (const NativeConstantDesc& c : lib->constants) {
      tree.consts.push_back(ConstDecl{std::string(c.name), c.value, 0});
    }
  }
  CodeGen gen(tree);
  Result<DriverImage> image = gen.Run();
  if (!image.ok()) {
    return image.status();
  }
  CompiledDriver out;
  out.image = std::move(*image);
  out.debug = gen.TakeDebugInfo();
  return out;
}

Result<DriverImage> CompileDriver(const std::string& source) {
  Result<CompiledDriver> compiled = CompileDriverWithDebugInfo(source);
  if (!compiled.ok()) {
    return compiled.status();
  }
  return std::move(compiled->image);
}

}  // namespace micropnp
