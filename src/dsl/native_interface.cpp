#include "src/dsl/native_interface.h"

#include <array>

namespace micropnp {
namespace {

constexpr std::array<NativeFunctionDesc, 3> kAdcFunctions = {{
    {kAdcInit, "init", 2},
    {kAdcReset, "reset", 0},
    {kAdcRead, "read", 0},
}};

constexpr std::array<NativeConstantDesc, 4> kAdcConstants = {{
    {"ADC_REF_VDD", 0},
    {"ADC_REF_INTERNAL", 1},
    {"ADC_RES_8BIT", 8},
    {"ADC_RES_10BIT", 10},
}};

constexpr std::array<NativeFunctionDesc, 5> kUartFunctions = {{
    {kUartInit, "init", 4},
    {kUartReset, "reset", 0},
    {kUartRead, "read", 0},
    {kUartWrite, "write", 1},
    {kUartStop, "stop", 0},
}};

constexpr std::array<NativeConstantDesc, 8> kUartConstants = {{
    {"USART_PARITY_NONE", 0},
    {"USART_PARITY_EVEN", 1},
    {"USART_PARITY_ODD", 2},
    {"USART_STOP_BITS_1", 1},
    {"USART_STOP_BITS_2", 2},
    {"USART_DATA_BITS_7", 7},
    {"USART_DATA_BITS_8", 8},
    {"USART_BAUD_9600", 9600},
}};

constexpr std::array<NativeFunctionDesc, 6> kI2cFunctions = {{
    {kI2cInit, "init", 1},
    {kI2cReset, "reset", 0},
    {kI2cWrite, "write", 3},
    {kI2cRead8, "read8", 2},
    {kI2cRead16, "read16", 2},
    {kI2cRead24, "read24", 2},
}};

constexpr std::array<NativeConstantDesc, 2> kI2cConstants = {{
    {"I2C_STANDARD_100KHZ", 100},
    {"I2C_FAST_400KHZ", 400},
}};

constexpr std::array<NativeFunctionDesc, 3> kSpiFunctions = {{
    {kSpiInit, "init", 2},
    {kSpiReset, "reset", 0},
    {kSpiTransfer2, "transfer2", 2},
}};

constexpr std::array<NativeConstantDesc, 5> kSpiConstants = {{
    {"SPI_MODE0", 0},
    {"SPI_MODE1", 1},
    {"SPI_MODE2", 2},
    {"SPI_MODE3", 3},
    {"SPI_CLOCK_1MHZ", 1000},
}};

constexpr std::array<NativeFunctionDesc, 3> kTimerFunctions = {{
    {kTimerStart, "start", 1},
    {kTimerStop, "stop", 0},
    {kTimerOnce, "once", 1},
}};

constexpr std::array<NativeConstantDesc, 0> kTimerConstants = {};

const std::array<NativeLibraryDesc, kLibraryCount> kLibraries = {{
    {kLibAdc, "adc", kAdcFunctions, kAdcConstants},
    {kLibUart, "uart", kUartFunctions, kUartConstants},
    {kLibI2c, "i2c", kI2cFunctions, kI2cConstants},
    {kLibSpi, "spi", kSpiFunctions, kSpiConstants},
    {kLibTimer, "timer", kTimerFunctions, kTimerConstants},
}};

}  // namespace

const NativeLibraryDesc* FindNativeLibrary(std::string_view name) {
  for (const NativeLibraryDesc& lib : kLibraries) {
    if (lib.name == name) {
      return &lib;
    }
  }
  return nullptr;
}

const NativeLibraryDesc* FindNativeLibrary(LibraryId id) {
  for (const NativeLibraryDesc& lib : kLibraries) {
    if (lib.id == id) {
      return &lib;
    }
  }
  return nullptr;
}

const NativeFunctionDesc* FindNativeFunction(const NativeLibraryDesc& lib, std::string_view name) {
  for (const NativeFunctionDesc& fn : lib.functions) {
    if (fn.name == name) {
      return &fn;
    }
  }
  return nullptr;
}

const NativeFunctionDesc* FindNativeFunction(LibraryId lib, LibraryFunctionId fn) {
  const NativeLibraryDesc* desc = FindNativeLibrary(lib);
  if (desc == nullptr) {
    return nullptr;
  }
  for (const NativeFunctionDesc& f : desc->functions) {
    if (f.id == fn) {
      return &f;
    }
  }
  return nullptr;
}

std::optional<int32_t> FindNativeConstant(const NativeLibraryDesc& lib, std::string_view name) {
  for (const NativeConstantDesc& c : lib.constants) {
    if (c.name == name) {
      return c.value;
    }
  }
  return std::nullopt;
}

}  // namespace micropnp
