// Recursive-descent parser for the μPnP driver DSL.

#ifndef SRC_DSL_PARSER_H_
#define SRC_DSL_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/dsl/ast.h"

namespace micropnp {

// Parses driver source into an AST.  Errors carry line numbers.
Result<DriverAst> ParseDriver(const std::string& source);

}  // namespace micropnp

#endif  // SRC_DSL_PARSER_H_
