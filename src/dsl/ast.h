// Abstract syntax tree of the μPnP driver DSL.
//
// A driver (Listing 1) is: a device-type declaration, imports of native
// interconnect libraries, static variable declarations, compile-time
// constants, and a set of event/error handlers containing statements.

#ifndef SRC_DSL_AST_H_
#define SRC_DSL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace micropnp {

// Storage types available to driver variables (Section 4.1: the DSL is
// typed).  All expression evaluation happens in 32-bit integers on the VM
// stack; stores truncate to the declared type, JVM-style.
enum class DslType : uint8_t {
  kUint8 = 0,
  kUint16 = 1,
  kUint32 = 2,
  kInt8 = 3,
  kInt16 = 4,
  kInt32 = 5,
  kBool = 6,
  kChar = 7,
};

const char* DslTypeName(DslType type);

// ----------------------------------------------------------- expressions ---

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kShl, kShr, kBitAnd, kBitOr, kBitXor,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogicalAnd, kLogicalOr,
};

enum class UnOp : uint8_t { kNeg, kBitNot, kLogicalNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : uint8_t {
    kIntLiteral,  // int_value
    kVar,         // name (global, param, or const)
    kIndex,       // name[index]  (lhs = index expression)
    kPostIncDec,  // name++ / name--  (value is the *old* one)
    kUnary,       // un_op applied to lhs
    kBinary,      // bin_op applied to lhs, rhs
  };

  Kind kind;
  int line = 0;
  int32_t int_value = 0;
  std::string name;
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  bool increment = true;  // kPostIncDec: ++ vs --
  ExprPtr lhs;
  ExprPtr rhs;
};

// ------------------------------------------------------------ statements ---

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class AssignOp : uint8_t { kAssign, kAddAssign, kSubAssign };

struct IfBranch {
  ExprPtr condition;
  std::vector<StmtPtr> body;
};

struct Stmt {
  enum class Kind : uint8_t {
    kAssign,   // target[index]? op= value
    kSignal,   // signal target.event(args)
    kIf,       // branches + optional else
    kWhile,    // condition + body
    kReturn,   // optional value (scalar expr or bare array name)
    kExpr,     // expression evaluated for side effects (e.g. `idx++;`)
  };

  Kind kind;
  int line = 0;

  // kAssign
  std::string target;
  ExprPtr index;  // null for scalars
  AssignOp assign_op = AssignOp::kAssign;
  ExprPtr value;

  // kSignal
  bool signal_this = false;   // signal this.<event> vs signal <lib>.<fn>
  std::string signal_target;  // library name when !signal_this
  std::string signal_name;    // event / function name
  std::vector<ExprPtr> args;

  // kIf
  std::vector<IfBranch> branches;
  std::vector<StmtPtr> else_body;

  // kWhile
  ExprPtr condition;
  std::vector<StmtPtr> body;

  // kReturn / kExpr
  ExprPtr expr;  // null for bare `return;`
};

// ----------------------------------------------------------- declarations --

struct VarDecl {
  DslType type;
  std::string name;
  int array_size = 0;  // 0 = scalar; otherwise a fixed uint8_t/char array
  int line = 0;
};

struct ConstDecl {
  std::string name;
  int32_t value = 0;
  int line = 0;
};

struct Param {
  DslType type;
  std::string name;
};

struct Handler {
  bool is_error = false;
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct DriverAst {
  bool has_device_id = false;
  DeviceTypeId device_id = 0;
  std::vector<std::string> imports;
  std::vector<ConstDecl> consts;
  std::vector<VarDecl> vars;
  std::vector<Handler> handlers;
};

}  // namespace micropnp

#endif  // SRC_DSL_AST_H_
