// Event vocabulary shared between the DSL compiler and the μPnP runtime.
//
// All I/O in μPnP is modelled as events (Section 4.1).  Well-known events
// have fixed identifiers so that the runtime, native libraries and remote
// operations (read/write/stream, Section 5.3.1) agree without any
// per-driver negotiation; driver-private events (e.g. Listing 1's
// `readDone`) are allocated from the custom range by the compiler.

#ifndef SRC_DSL_EVENTS_H_
#define SRC_DSL_EVENTS_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace micropnp {

using EventId = uint8_t;

// --- lifecycle (Section 4.1 "Control flow") --------------------------------
inline constexpr EventId kEventInit = 0x00;     // fired when driver installed
inline constexpr EventId kEventDestroy = 0x01;  // fired when unplugged

// --- remote operations (Section 5.3.1) --------------------------------------
inline constexpr EventId kEventRead = 0x02;
inline constexpr EventId kEventWrite = 0x03;   // carries one int32 argument
inline constexpr EventId kEventStream = 0x04;  // carries period (ms)

// --- native library callbacks ------------------------------------------------
inline constexpr EventId kEventNewData = 0x05;  // one int32 argument
inline constexpr EventId kEventTick = 0x06;     // timer expiry

// --- driver-private events ---------------------------------------------------
inline constexpr EventId kEventCustomBase = 0x40;

// --- error events (prioritized by the event router, Section 4.2) ------------
inline constexpr EventId kErrorBase = 0x80;
inline constexpr EventId kErrorInvalidConfiguration = 0x80;
inline constexpr EventId kErrorUartInUse = 0x81;
inline constexpr EventId kErrorTimeout = 0x82;
inline constexpr EventId kErrorBusError = 0x83;
inline constexpr EventId kErrorAdcInUse = 0x84;
inline constexpr EventId kErrorSpiInUse = 0x85;

inline constexpr bool IsErrorEvent(EventId id) { return id >= kErrorBase; }

// Maps the spellings used in driver source to well-known event ids.
// Returns nullopt for driver-private names (compiler allocates those).
std::optional<EventId> WellKnownEventId(std::string_view name);

// Human-readable name (for the disassembler); "custom" for private events.
const char* EventIdName(EventId id);

}  // namespace micropnp

#endif  // SRC_DSL_EVENTS_H_
