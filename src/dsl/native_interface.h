// Compile-time description of the native interconnect libraries.
//
// Drivers `import` libraries and signal their exported event handlers
// (Section 4.1 "Peripheral communication").  The compiler resolves
// `lib.function(...)` calls against this table; the runtime (src/rt)
// implements the same table, so the two sides agree by construction.
// Each library also exports named integer constants (e.g.
// USART_PARITY_NONE) usable anywhere an integer literal is.

#ifndef SRC_DSL_NATIVE_INTERFACE_H_
#define SRC_DSL_NATIVE_INTERFACE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace micropnp {

using LibraryId = uint8_t;
using LibraryFunctionId = uint8_t;

inline constexpr LibraryId kLibAdc = 0;
inline constexpr LibraryId kLibUart = 1;
inline constexpr LibraryId kLibI2c = 2;
inline constexpr LibraryId kLibSpi = 3;
inline constexpr LibraryId kLibTimer = 4;
inline constexpr int kLibraryCount = 5;

struct NativeFunctionDesc {
  LibraryFunctionId id;
  std::string_view name;
  uint8_t arg_count;
};

struct NativeConstantDesc {
  std::string_view name;
  int32_t value;
};

struct NativeLibraryDesc {
  LibraryId id;
  std::string_view name;
  std::span<const NativeFunctionDesc> functions;
  std::span<const NativeConstantDesc> constants;
};

// Library lookup by name ("adc", "uart", "i2c", "spi", "timer").
const NativeLibraryDesc* FindNativeLibrary(std::string_view name);
const NativeLibraryDesc* FindNativeLibrary(LibraryId id);

// Function lookup inside a library.
const NativeFunctionDesc* FindNativeFunction(const NativeLibraryDesc& lib, std::string_view name);
const NativeFunctionDesc* FindNativeFunction(LibraryId lib, LibraryFunctionId fn);

// Constant lookup across a set of imported libraries.
std::optional<int32_t> FindNativeConstant(const NativeLibraryDesc& lib, std::string_view name);

// ---- per-library function ids (shared with src/rt implementations) --------

// adc
inline constexpr LibraryFunctionId kAdcInit = 0;   // (reference, resolution_bits)
inline constexpr LibraryFunctionId kAdcReset = 1;  // ()
inline constexpr LibraryFunctionId kAdcRead = 2;   // () -> newdata(code)

// uart
inline constexpr LibraryFunctionId kUartInit = 0;   // (baud, parity, stop, data)
inline constexpr LibraryFunctionId kUartReset = 1;  // ()
inline constexpr LibraryFunctionId kUartRead = 2;   // () -> newdata(byte)...
inline constexpr LibraryFunctionId kUartWrite = 3;  // (byte)
inline constexpr LibraryFunctionId kUartStop = 4;   // () stop listening

// i2c
inline constexpr LibraryFunctionId kI2cInit = 0;    // (clock_khz)
inline constexpr LibraryFunctionId kI2cReset = 1;   // ()
inline constexpr LibraryFunctionId kI2cWrite = 2;   // (addr, reg, value)
inline constexpr LibraryFunctionId kI2cRead8 = 3;   // (addr, reg)  -> newdata
inline constexpr LibraryFunctionId kI2cRead16 = 4;  // (addr, reg)  -> newdata
inline constexpr LibraryFunctionId kI2cRead24 = 5;  // (addr, reg)  -> newdata

// spi
inline constexpr LibraryFunctionId kSpiInit = 0;      // (clock_khz, mode)
inline constexpr LibraryFunctionId kSpiReset = 1;     // ()
inline constexpr LibraryFunctionId kSpiTransfer2 = 2; // (b0, b1) -> newdata((r0<<8)|r1)

// timer
inline constexpr LibraryFunctionId kTimerStart = 0;  // (period_ms) -> tick()...
inline constexpr LibraryFunctionId kTimerStop = 1;   // ()
inline constexpr LibraryFunctionId kTimerOnce = 2;   // (delay_ms) -> single tick()

}  // namespace micropnp

#endif  // SRC_DSL_NATIVE_INTERFACE_H_
