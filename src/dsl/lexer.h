// Lexer for the μPnP driver DSL.
//
// Python-style layout: leading whitespace at the start of each logical line
// drives INDENT/DEDENT tokens; '#' starts a comment; blank lines are
// ignored.  Tabs count as 8 columns (mixing tabs and spaces inconsistently
// is an error, as in Python).

#ifndef SRC_DSL_LEXER_H_
#define SRC_DSL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dsl/token.h"

namespace micropnp {

// Tokenizes `source`.  On error returns a status naming the offending line.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace micropnp

#endif  // SRC_DSL_LEXER_H_
