#include "src/dsl/lexer.h"

#include <cctype>
#include <unordered_map>

namespace micropnp {
namespace {

const std::unordered_map<std::string, TokenKind>& KeywordTable() {
  static const auto* table = new std::unordered_map<std::string, TokenKind>{
      {"import", TokenKind::kImport},   {"device", TokenKind::kDevice},
      {"const", TokenKind::kConst},     {"event", TokenKind::kEvent},
      {"error", TokenKind::kError},     {"signal", TokenKind::kSignal},
      {"return", TokenKind::kReturn},   {"if", TokenKind::kIf},
      {"elif", TokenKind::kElif},       {"else", TokenKind::kElse},
      {"while", TokenKind::kWhile},     {"this", TokenKind::kThis},
      {"and", TokenKind::kAnd},         {"or", TokenKind::kOr},
      {"true", TokenKind::kTrue},       {"false", TokenKind::kFalse},
      {"uint8_t", TokenKind::kTypeUint8},   {"uint16_t", TokenKind::kTypeUint16},
      {"uint32_t", TokenKind::kTypeUint32}, {"int8_t", TokenKind::kTypeInt8},
      {"int16_t", TokenKind::kTypeInt16},   {"int32_t", TokenKind::kTypeInt32},
      {"bool", TokenKind::kTypeBool},       {"char", TokenKind::kTypeChar},
  };
  return *table;
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  Result<std::vector<Token>> Run() {
    indents_.push_back(0);
    while (pos_ < src_.size()) {
      Status line_status = LexLine();
      if (!line_status.ok()) {
        return line_status;
      }
    }
    // Close any open blocks.
    while (indents_.size() > 1) {
      indents_.pop_back();
      Emit(TokenKind::kDedent);
    }
    Emit(TokenKind::kEndOfFile);
    return std::move(tokens_);
  }

 private:
  void Emit(TokenKind kind, std::string text = {}, int32_t value = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.int_value = value;
    t.line = line_;
    t.column = column_;
    tokens_.push_back(std::move(t));
  }

  Status ErrorAt(const std::string& message) {
    return InvalidArgument("line " + std::to_string(line_) + ": " + message);
  }

  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char Advance() {
    char c = src_[pos_++];
    ++column_;
    return c;
  }

  bool Match(char expected) {
    if (Peek() == expected) {
      Advance();
      return true;
    }
    return false;
  }

  // Lexes one physical line, handling indentation first.
  Status LexLine() {
    // Measure indentation.
    int indent = 0;
    size_t start = pos_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == ' ') {
        ++indent;
        ++pos_;
      } else if (src_[pos_] == '\t') {
        indent += 8 - (indent % 8);
        ++pos_;
      } else {
        break;
      }
    }
    column_ = static_cast<int>(pos_ - start) + 1;

    // Blank or comment-only line: consume and ignore.
    if (pos_ >= src_.size() || src_[pos_] == '\n' || src_[pos_] == '\r' || src_[pos_] == '#') {
      SkipToEol();
      return OkStatus();
    }

    // Indentation bookkeeping.
    if (indent > indents_.back()) {
      indents_.push_back(indent);
      Emit(TokenKind::kIndent);
    } else {
      while (indent < indents_.back()) {
        indents_.pop_back();
        Emit(TokenKind::kDedent);
      }
      if (indent != indents_.back()) {
        return ErrorAt("inconsistent indentation");
      }
    }

    // Tokens until end of line.
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        Advance();
        continue;
      }
      if (c == '#') {
        SkipToEol();
        return OkStatus();
      }
      Status s = LexToken();
      if (!s.ok()) {
        return s;
      }
    }
    SkipToEol();
    return OkStatus();
  }

  void SkipToEol() {
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      ++pos_;
    }
    if (pos_ < src_.size()) {
      ++pos_;  // consume '\n'
    }
    ++line_;
    column_ = 1;
  }

  Status LexToken() {
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentifier();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber();
    }
    if (c == '\'') {
      return LexCharLiteral();
    }
    return LexOperator();
  }

  Status LexIdentifier() {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      text.push_back(Advance());
    }
    auto it = KeywordTable().find(text);
    if (it != KeywordTable().end()) {
      Emit(it->second, text);
    } else {
      Emit(TokenKind::kIdentifier, text);
    }
    return OkStatus();
  }

  Status LexNumber() {
    int64_t value = 0;
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      Advance();
      Advance();
      bool any = false;
      while (std::isxdigit(static_cast<unsigned char>(Peek()))) {
        char c = Advance();
        int digit = std::isdigit(static_cast<unsigned char>(c))
                        ? c - '0'
                        : std::tolower(static_cast<unsigned char>(c)) - 'a' + 10;
        value = value * 16 + digit;
        any = true;
        if (value > 0xffffffffll) {
          return ErrorAt("hex literal overflows 32 bits");
        }
      }
      if (!any) {
        return ErrorAt("malformed hex literal");
      }
      Emit(TokenKind::kIntLiteral, {}, static_cast<int32_t>(static_cast<uint32_t>(value)));
      return OkStatus();
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      value = value * 10 + (Advance() - '0');
      if (value > 0xffffffffll) {
        return ErrorAt("integer literal overflows 32 bits");
      }
    }
    Emit(TokenKind::kIntLiteral, {}, static_cast<int32_t>(static_cast<uint32_t>(value)));
    return OkStatus();
  }

  Status LexCharLiteral() {
    Advance();  // opening quote
    if (pos_ >= src_.size()) {
      return ErrorAt("unterminated char literal");
    }
    char c = Advance();
    if (c == '\\') {
      char esc = Advance();
      switch (esc) {
        case 'n':
          c = '\n';
          break;
        case 'r':
          c = '\r';
          break;
        case 't':
          c = '\t';
          break;
        case '0':
          c = '\0';
          break;
        case '\\':
          c = '\\';
          break;
        case '\'':
          c = '\'';
          break;
        default:
          return ErrorAt("unknown escape in char literal");
      }
    }
    if (!Match('\'')) {
      return ErrorAt("unterminated char literal");
    }
    Emit(TokenKind::kIntLiteral, {}, static_cast<int32_t>(static_cast<unsigned char>(c)));
    return OkStatus();
  }

  Status LexOperator() {
    char c = Advance();
    switch (c) {
      case '(':
        Emit(TokenKind::kLParen);
        return OkStatus();
      case ')':
        Emit(TokenKind::kRParen);
        return OkStatus();
      case '[':
        Emit(TokenKind::kLBracket);
        return OkStatus();
      case ']':
        Emit(TokenKind::kRBracket);
        return OkStatus();
      case ',':
        Emit(TokenKind::kComma);
        return OkStatus();
      case ';':
        Emit(TokenKind::kSemicolon);
        return OkStatus();
      case ':':
        Emit(TokenKind::kColon);
        return OkStatus();
      case '.':
        Emit(TokenKind::kDot);
        return OkStatus();
      case '+':
        if (Match('+')) {
          Emit(TokenKind::kPlusPlus);
        } else if (Match('=')) {
          Emit(TokenKind::kPlusAssign);
        } else {
          Emit(TokenKind::kPlus);
        }
        return OkStatus();
      case '-':
        if (Match('-')) {
          Emit(TokenKind::kMinusMinus);
        } else if (Match('=')) {
          Emit(TokenKind::kMinusAssign);
        } else {
          Emit(TokenKind::kMinus);
        }
        return OkStatus();
      case '*':
        Emit(TokenKind::kStar);
        return OkStatus();
      case '/':
        Emit(TokenKind::kSlash);
        return OkStatus();
      case '%':
        Emit(TokenKind::kPercent);
        return OkStatus();
      case '~':
        Emit(TokenKind::kTilde);
        return OkStatus();
      case '^':
        Emit(TokenKind::kCaret);
        return OkStatus();
      case '&':
        Emit(Match('&') ? TokenKind::kAnd : TokenKind::kAmp);
        return OkStatus();
      case '|':
        Emit(Match('|') ? TokenKind::kOr : TokenKind::kPipe);
        return OkStatus();
      case '!':
        Emit(Match('=') ? TokenKind::kNe : TokenKind::kBang);
        return OkStatus();
      case '=':
        Emit(Match('=') ? TokenKind::kEq : TokenKind::kAssign);
        return OkStatus();
      case '<':
        if (Match('<')) {
          Emit(TokenKind::kShl);
        } else if (Match('=')) {
          Emit(TokenKind::kLe);
        } else {
          Emit(TokenKind::kLt);
        }
        return OkStatus();
      case '>':
        if (Match('>')) {
          Emit(TokenKind::kShr);
        } else if (Match('=')) {
          Emit(TokenKind::kGe);
        } else {
          Emit(TokenKind::kGt);
        }
        return OkStatus();
      default:
        return ErrorAt(std::string("unexpected character '") + c + "'");
    }
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  std::vector<int> indents_;
  std::vector<Token> tokens_;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) { return Lexer(source).Run(); }

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "integer";
    case TokenKind::kIndent:
      return "indent";
    case TokenKind::kDedent:
      return "dedent";
    case TokenKind::kEndOfFile:
      return "end of file";
    case TokenKind::kImport:
      return "'import'";
    case TokenKind::kDevice:
      return "'device'";
    case TokenKind::kEvent:
      return "'event'";
    case TokenKind::kError:
      return "'error'";
    case TokenKind::kSignal:
      return "'signal'";
    case TokenKind::kReturn:
      return "'return'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    default:
      return "token";
  }
}

}  // namespace micropnp
