#include "src/dsl/bytecode.h"

#include <array>
#include <cstdio>

namespace micropnp {
namespace {

// Cost building blocks (AVR cycles).  The paper measures the *stack
// operations* directly: push() 11.1 us and pop() 8.9 us at 16 MHz.
constexpr uint32_t kDispatch = 160;  // fetch, decode, jump-table indirect
constexpr uint32_t kPushCost = 178;  // 11.125 us @ 16 MHz
constexpr uint32_t kPopCost = 142;   // 8.875 us @ 16 MHz
constexpr uint32_t kOperandByte = 12;

// Stack effect sentinel: the signal ops pop a per-site argument count.
constexpr int kVariablePops = -1;

struct OpInfo {
  Op op;
  const char* name;
  int operand_bytes;
  uint32_t cycles;
  int pops;
  int pushes;
};

constexpr OpInfo kOps[] = {
    {Op::kNop, "nop", 0, kDispatch, 0, 0},
    {Op::kPush0, "push.0", 0, kDispatch + kPushCost, 0, 1},
    {Op::kPush1, "push.1", 0, kDispatch + kPushCost, 0, 1},
    {Op::kPushI8, "push.i8", 1, kDispatch + kOperandByte + kPushCost, 0, 1},
    {Op::kPushI16, "push.i16", 2, kDispatch + 2 * kOperandByte + kPushCost, 0, 1},
    {Op::kPushI32, "push.i32", 4, kDispatch + 4 * kOperandByte + kPushCost, 0, 1},
    {Op::kDup, "dup", 0, kDispatch + kPushCost + 60, 1, 2},
    {Op::kPop, "pop", 0, kDispatch + kPopCost, 1, 0},
    {Op::kLoadG, "load.g", 1, kDispatch + kOperandByte + 60 + kPushCost, 0, 1},
    {Op::kStoreG, "store.g", 1, kDispatch + kOperandByte + kPopCost + 100, 1, 0},
    {Op::kLoadL, "load.l", 1, kDispatch + kOperandByte + 40 + kPushCost, 0, 1},
    {Op::kLoadA, "load.a", 1, kDispatch + kOperandByte + kPopCost + 70 + kPushCost, 1, 1},
    {Op::kStoreA, "store.a", 1, kDispatch + kOperandByte + 2 * kPopCost + 70, 2, 0},
    {Op::kAdd, "add", 0, kDispatch + 2 * kPopCost + 60 + kPushCost, 2, 1},
    {Op::kSub, "sub", 0, kDispatch + 2 * kPopCost + 60 + kPushCost, 2, 1},
    {Op::kMul, "mul", 0, kDispatch + 2 * kPopCost + 700 + kPushCost, 2, 1},
    {Op::kDiv, "div", 0, kDispatch + 2 * kPopCost + 1250 + kPushCost, 2, 1},
    {Op::kMod, "mod", 0, kDispatch + 2 * kPopCost + 1250 + kPushCost, 2, 1},
    {Op::kNeg, "neg", 0, kDispatch + kPopCost + 50 + kPushCost, 1, 1},
    {Op::kShl, "shl", 0, kDispatch + 2 * kPopCost + 150 + kPushCost, 2, 1},
    {Op::kShr, "shr", 0, kDispatch + 2 * kPopCost + 150 + kPushCost, 2, 1},
    {Op::kBitAnd, "and", 0, kDispatch + 2 * kPopCost + 60 + kPushCost, 2, 1},
    {Op::kBitOr, "or", 0, kDispatch + 2 * kPopCost + 60 + kPushCost, 2, 1},
    {Op::kBitXor, "xor", 0, kDispatch + 2 * kPopCost + 60 + kPushCost, 2, 1},
    {Op::kBitNot, "not", 0, kDispatch + kPopCost + 50 + kPushCost, 1, 1},
    {Op::kLogicalNot, "lnot", 0, kDispatch + kPopCost + 50 + kPushCost, 1, 1},
    {Op::kEq, "eq", 0, kDispatch + 2 * kPopCost + 70 + kPushCost, 2, 1},
    {Op::kNe, "ne", 0, kDispatch + 2 * kPopCost + 70 + kPushCost, 2, 1},
    {Op::kLt, "lt", 0, kDispatch + 2 * kPopCost + 70 + kPushCost, 2, 1},
    {Op::kLe, "le", 0, kDispatch + 2 * kPopCost + 70 + kPushCost, 2, 1},
    {Op::kGt, "gt", 0, kDispatch + 2 * kPopCost + 70 + kPushCost, 2, 1},
    {Op::kGe, "ge", 0, kDispatch + 2 * kPopCost + 70 + kPushCost, 2, 1},
    {Op::kJmp, "jmp", 2, kDispatch + 2 * kOperandByte + 40, 0, 0},
    {Op::kJz, "jz", 2, kDispatch + 2 * kOperandByte + kPopCost + 50, 1, 0},
    {Op::kJnz, "jnz", 2, kDispatch + 2 * kOperandByte + kPopCost + 50, 1, 0},
    {Op::kSignalSelf, "signal.self", 1, kDispatch + kOperandByte + 800, kVariablePops, 0},
    {Op::kSignalLib, "signal.lib", 2, kDispatch + 2 * kOperandByte + 700, kVariablePops, 0},
    {Op::kRet, "ret", 0, kDispatch + 30, 0, 0},
    {Op::kRetVal, "ret.val", 0, kDispatch + kPopCost + 200, 1, 0},
    {Op::kRetArr, "ret.arr", 1, kDispatch + kOperandByte + 500, 0, 0},
};

// Dense byte-indexed lookup: opcode dispatch metadata in O(1) instead of a
// linear scan over the ISA.
struct OpLut {
  std::array<const OpInfo*, 256> slots{};
  OpLut() {
    for (const OpInfo& info : kOps) {
      slots[static_cast<uint8_t>(info.op)] = &info;
    }
  }
};

const OpInfo* FindOp(Op op) {
  static const OpLut lut;
  return lut.slots[static_cast<uint8_t>(op)];
}

}  // namespace

int OpOperandBytes(Op op) {
  const OpInfo* info = FindOp(op);
  return info != nullptr ? info->operand_bytes : -1;
}

bool OpStackEffect(Op op, int* pops, int* pushes) {
  const OpInfo* info = FindOp(op);
  if (info == nullptr || info->pops == kVariablePops) {
    *pops = 0;
    *pushes = info != nullptr ? info->pushes : 0;
    return false;
  }
  *pops = info->pops;
  *pushes = info->pushes;
  return true;
}

const char* OpName(Op op) {
  const OpInfo* info = FindOp(op);
  return info != nullptr ? info->name : "invalid";
}

uint32_t OpCycleCost(Op op) {
  const OpInfo* info = FindOp(op);
  return info != nullptr ? info->cycles : kDispatch;
}

bool OpIsValid(uint8_t byte) { return FindOp(static_cast<Op>(byte)) != nullptr; }

std::string Disassemble(ByteSpan code) {
  std::string out;
  size_t pc = 0;
  char line[64];
  while (pc < code.size()) {
    const Op op = static_cast<Op>(code[pc]);
    const int operands = OpOperandBytes(op);
    if (operands < 0 || pc + 1 + operands > code.size()) {
      std::snprintf(line, sizeof(line), "%04zx  .byte 0x%02x\n", pc, code[pc]);
      out += line;
      ++pc;
      continue;
    }
    std::snprintf(line, sizeof(line), "%04zx  %-12s", pc, OpName(op));
    out += line;
    // Render operands according to shape.
    switch (op) {
      case Op::kPushI8:
        std::snprintf(line, sizeof(line), " %d", static_cast<int8_t>(code[pc + 1]));
        out += line;
        break;
      case Op::kPushI16:
      case Op::kJmp:
      case Op::kJz:
      case Op::kJnz: {
        const int16_t v = static_cast<int16_t>((code[pc + 1] << 8) | code[pc + 2]);
        std::snprintf(line, sizeof(line), " %d", v);
        out += line;
        break;
      }
      case Op::kPushI32: {
        const int32_t v = static_cast<int32_t>((static_cast<uint32_t>(code[pc + 1]) << 24) |
                                               (static_cast<uint32_t>(code[pc + 2]) << 16) |
                                               (static_cast<uint32_t>(code[pc + 3]) << 8) |
                                               code[pc + 4]);
        std::snprintf(line, sizeof(line), " %d", v);
        out += line;
        break;
      }
      case Op::kSignalLib:
        std::snprintf(line, sizeof(line), " lib=%u fn=%u", code[pc + 1], code[pc + 2]);
        out += line;
        break;
      default:
        for (int i = 0; i < operands; ++i) {
          std::snprintf(line, sizeof(line), " %u", code[pc + 1 + i]);
          out += line;
        }
    }
    out += '\n';
    pc += 1 + static_cast<size_t>(operands);
  }
  return out;
}

}  // namespace micropnp
