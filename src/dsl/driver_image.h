// Compiled driver image format.
//
// μPnP drivers are "compiled into platform-independent bytecode instructions"
// and deployed over the air (Section 4.1).  The image is the unit that
// travels the network (Table 4 measures installing an 80-byte driver) and
// what the Thing's driver manager activates.
//
// Wire layout (big-endian, CRC-16/CCITT over everything before the CRC):
//
//   u8  magic0 'u' | u8 magic1 'P' | u8 version
//   u32 device type id
//   u8  import count    | imports (u8 library id each)
//   u8  scalar count    | scalar types (u8 DslType each)
//   u8  array count     | array sizes (u8 each; element type uint8)
//   u8  handler count   | handlers (u8 event id, u8 argc, u16 code offset)
//   u16 code length     | code bytes
//   u16 crc

#ifndef SRC_DSL_DRIVER_IMAGE_H_
#define SRC_DSL_DRIVER_IMAGE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/dsl/ast.h"
#include "src/dsl/events.h"
#include "src/dsl/native_interface.h"

namespace micropnp {

inline constexpr uint8_t kDriverImageMagic0 = 'u';
inline constexpr uint8_t kDriverImageMagic1 = 'P';
inline constexpr uint8_t kDriverImageVersion = 1;

struct HandlerEntry {
  EventId event = 0;
  uint8_t argc = 0;
  uint16_t offset = 0;  // into code

  bool operator==(const HandlerEntry&) const = default;
};

struct DriverImage {
  DeviceTypeId device_id = 0;
  std::vector<LibraryId> imports;
  std::vector<DslType> scalar_types;   // global slot layout
  std::vector<uint8_t> array_sizes;    // uint8 arrays
  std::vector<HandlerEntry> handlers;
  std::vector<uint8_t> code;

  // Handler lookup; nullptr when the driver does not handle `event`.
  const HandlerEntry* FindHandler(EventId event) const;

  std::vector<uint8_t> Serialize() const;
  static Result<DriverImage> Parse(ByteSpan bytes);

  // CRC-32 of the serialized image.  Identifies a byte-identical image
  // (device id, declarations, handlers and code); the runtime's decode cache
  // keys on this so re-plugging the same device type skips verify+decode.
  uint32_t ImageCrc() const;

  // Total over-the-air size (what Table 4's "Install 80 Byte Driver" counts).
  size_t SerializedSize() const;
  // Pure bytecode size (what Table 3's "Bytes" column is closest to).
  size_t CodeSize() const { return code.size(); }

  bool operator==(const DriverImage&) const = default;
};

}  // namespace micropnp

#endif  // SRC_DSL_DRIVER_IMAGE_H_
