#include "src/dsl/events.h"

namespace micropnp {

std::optional<EventId> WellKnownEventId(std::string_view name) {
  if (name == "init") {
    return kEventInit;
  }
  if (name == "destroy") {
    return kEventDestroy;
  }
  if (name == "read") {
    return kEventRead;
  }
  if (name == "write") {
    return kEventWrite;
  }
  if (name == "stream") {
    return kEventStream;
  }
  if (name == "newdata") {
    return kEventNewData;
  }
  if (name == "tick") {
    return kEventTick;
  }
  if (name == "invalidConfiguration") {
    return kErrorInvalidConfiguration;
  }
  if (name == "uartInUse") {
    return kErrorUartInUse;
  }
  if (name == "timeOut") {
    return kErrorTimeout;
  }
  if (name == "busError") {
    return kErrorBusError;
  }
  if (name == "adcInUse") {
    return kErrorAdcInUse;
  }
  if (name == "spiInUse") {
    return kErrorSpiInUse;
  }
  return std::nullopt;
}

const char* EventIdName(EventId id) {
  switch (id) {
    case kEventInit:
      return "init";
    case kEventDestroy:
      return "destroy";
    case kEventRead:
      return "read";
    case kEventWrite:
      return "write";
    case kEventStream:
      return "stream";
    case kEventNewData:
      return "newdata";
    case kEventTick:
      return "tick";
    case kErrorInvalidConfiguration:
      return "invalidConfiguration";
    case kErrorUartInUse:
      return "uartInUse";
    case kErrorTimeout:
      return "timeOut";
    case kErrorBusError:
      return "busError";
    case kErrorAdcInUse:
      return "adcInUse";
    case kErrorSpiInUse:
      return "spiInUse";
    default:
      return "custom";
  }
}

}  // namespace micropnp
