// μPnP bytecode instruction set.
//
// "Every bytecode instruction in µPnP is 8-bits in length, followed by zero
// or more operands" (Section 4.1).  The design is JVM-inspired but
// IoT-sized: a single operand stack of 32-bit slots, driver globals
// addressed by slot index, byte arrays addressed by array index, and event
// signalling as first-class instructions.
//
// Each opcode also carries an AVR cycle cost (see CycleCost) used by the
// runtime's 16 MHz ATMega cycle model to reproduce the Section 6.2
// measurements (39.7 us per instruction on average; push 11.1 us; pop
// 8.9 us).  Costs model an 8-bit MCU interpreting 32-bit stack slots:
// dispatch overhead plus multi-byte data movement; 32-bit multiply/divide
// are software routines and dominate.

#ifndef SRC_DSL_BYTECODE_H_
#define SRC_DSL_BYTECODE_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"

namespace micropnp {

enum class Op : uint8_t {
  kNop = 0x00,
  // --- stack / constants ---
  kPush0 = 0x01,     // push 0
  kPush1 = 0x02,     // push 1
  kPushI8 = 0x03,    // +i8    push sign-extended
  kPushI16 = 0x04,   // +i16   push sign-extended
  kPushI32 = 0x05,   // +i32
  kDup = 0x06,
  kPop = 0x07,
  // --- variables ---
  kLoadG = 0x08,     // +u8 slot    push global scalar
  kStoreG = 0x09,    // +u8 slot    pop into global scalar (truncates to type)
  kLoadL = 0x0a,     // +u8 index   push handler parameter
  kLoadA = 0x0b,     // +u8 array   pop index, push element (zero-extended)
  kStoreA = 0x0c,    // +u8 array   pop value, pop index, store element
  // --- arithmetic / logic (operate on int32) ---
  kAdd = 0x10,
  kSub = 0x11,
  kMul = 0x12,
  kDiv = 0x13,       // traps on divide-by-zero
  kMod = 0x14,       // traps on divide-by-zero
  kNeg = 0x15,
  kShl = 0x16,
  kShr = 0x17,       // arithmetic shift right
  kBitAnd = 0x18,
  kBitOr = 0x19,
  kBitXor = 0x1a,
  kBitNot = 0x1b,
  kLogicalNot = 0x1c,  // 0 -> 1, nonzero -> 0
  // --- comparisons (push 1/0) ---
  kEq = 0x20,
  kNe = 0x21,
  kLt = 0x22,
  kLe = 0x23,
  kGt = 0x24,
  kGe = 0x25,
  // --- control flow ---
  kJmp = 0x28,       // +i16 relative to the byte after the operand
  kJz = 0x29,        // +i16 pop, jump if zero
  kJnz = 0x2a,       // +i16 pop, jump if nonzero
  // --- events (Section 4.1 `signal`) ---
  kSignalSelf = 0x30,  // +u8 event id; argument count from the handler table
  kSignalLib = 0x31,   // +u8 lib, +u8 fn; argument count from the lib table
  // --- handler termination ---
  kRet = 0x38,       // end of handler
  kRetVal = 0x39,    // pop, produce scalar result (Section 4.1 `return`)
  kRetArr = 0x3a,    // +u8 array: produce array contents as result

  // --- decode-time specialized forms ---
  // Emitted by Decode when the abstract interpreter proves a trap site safe
  // (src/rt/abstract_interp.h); same operands and semantics as the base
  // opcode minus the runtime check.  Deliberately absent from the opcode
  // table: never valid on the wire (OpIsValid stays false), never produced
  // by the compiler, never serialized.
  kDivUnchecked = 0x3b,
  kModUnchecked = 0x3c,
  kLoadAUnchecked = 0x3d,
  kStoreAUnchecked = 0x3e,
};

// Number of operand bytes following an opcode; -1 for unknown opcodes.
int OpOperandBytes(Op op);

// Static operand-stack effect: slots popped and pushed by one execution of
// `op`.  Returns false for the signal ops, whose pop count is per-site (the
// target handler's / native function's argument count); callers resolve
// those from the handler and library tables.  kDup is modeled as pop 1 /
// push 2 (it requires one slot on entry).
bool OpStackEffect(Op op, int* pops, int* pushes);

// Mnemonic for the disassembler.
const char* OpName(Op op);

// Modeled AVR cycles to interpret one instance of this opcode at 16 MHz
// (dispatch + execution).  See header comment.
uint32_t OpCycleCost(Op op);

// True if `op` is a defined opcode.
bool OpIsValid(uint8_t byte);

// Disassembles a code buffer into one line per instruction ("0004  push.i16
// 3300").  Used by tooling and the driver workshop example.
std::string Disassemble(ByteSpan code);

}  // namespace micropnp

#endif  // SRC_DSL_BYTECODE_H_
