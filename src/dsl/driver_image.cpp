#include "src/dsl/driver_image.h"

#include "src/common/crc.h"

namespace micropnp {

const HandlerEntry* DriverImage::FindHandler(EventId event) const {
  for (const HandlerEntry& h : handlers) {
    if (h.event == event) {
      return &h;
    }
  }
  return nullptr;
}

std::vector<uint8_t> DriverImage::Serialize() const {
  ByteWriter w;
  w.WriteU8(kDriverImageMagic0);
  w.WriteU8(kDriverImageMagic1);
  w.WriteU8(kDriverImageVersion);
  w.WriteU32(device_id);
  w.WriteU8(static_cast<uint8_t>(imports.size()));
  for (LibraryId lib : imports) {
    w.WriteU8(lib);
  }
  w.WriteU8(static_cast<uint8_t>(scalar_types.size()));
  for (DslType t : scalar_types) {
    w.WriteU8(static_cast<uint8_t>(t));
  }
  w.WriteU8(static_cast<uint8_t>(array_sizes.size()));
  for (uint8_t s : array_sizes) {
    w.WriteU8(s);
  }
  w.WriteU8(static_cast<uint8_t>(handlers.size()));
  for (const HandlerEntry& h : handlers) {
    w.WriteU8(h.event);
    w.WriteU8(h.argc);
    w.WriteU16(h.offset);
  }
  w.WriteU16(static_cast<uint16_t>(code.size()));
  w.WriteBytes(ByteSpan(code.data(), code.size()));
  const uint16_t crc = Crc16Ccitt(ByteSpan(w.bytes().data(), w.bytes().size()));
  w.WriteU16(crc);
  return w.Take();
}

uint32_t DriverImage::ImageCrc() const {
  const std::vector<uint8_t> bytes = Serialize();
  return Crc32(ByteSpan(bytes.data(), bytes.size()));
}

size_t DriverImage::SerializedSize() const {
  return 3 + 4 + 1 + imports.size() + 1 + scalar_types.size() + 1 + array_sizes.size() + 1 +
         handlers.size() * 4 + 2 + code.size() + 2;
}

Result<DriverImage> DriverImage::Parse(ByteSpan bytes) {
  if (bytes.size() < 14) {
    return CorruptError("driver image too short");
  }
  // Verify CRC over everything but the trailing two bytes.
  const uint16_t stored_crc =
      static_cast<uint16_t>((bytes[bytes.size() - 2] << 8) | bytes[bytes.size() - 1]);
  const uint16_t computed_crc = Crc16Ccitt(bytes.subspan(0, bytes.size() - 2));
  if (stored_crc != computed_crc) {
    return CorruptError("driver image CRC mismatch");
  }

  ByteReader r(bytes);
  DriverImage image;
  const uint8_t m0 = r.ReadU8();
  const uint8_t m1 = r.ReadU8();
  const uint8_t version = r.ReadU8();
  if (m0 != kDriverImageMagic0 || m1 != kDriverImageMagic1) {
    return CorruptError("bad driver image magic");
  }
  if (version != kDriverImageVersion) {
    return CorruptError("unsupported driver image version");
  }
  image.device_id = r.ReadU32();

  const uint8_t import_count = r.ReadU8();
  for (uint8_t i = 0; i < import_count; ++i) {
    image.imports.push_back(r.ReadU8());
  }
  const uint8_t scalar_count = r.ReadU8();
  for (uint8_t i = 0; i < scalar_count; ++i) {
    const uint8_t t = r.ReadU8();
    if (t > static_cast<uint8_t>(DslType::kChar)) {
      return CorruptError("bad global type");
    }
    image.scalar_types.push_back(static_cast<DslType>(t));
  }
  const uint8_t array_count = r.ReadU8();
  for (uint8_t i = 0; i < array_count; ++i) {
    image.array_sizes.push_back(r.ReadU8());
  }
  const uint8_t handler_count = r.ReadU8();
  for (uint8_t i = 0; i < handler_count; ++i) {
    HandlerEntry h;
    h.event = r.ReadU8();
    h.argc = r.ReadU8();
    h.offset = r.ReadU16();
    image.handlers.push_back(h);
  }
  const uint16_t code_len = r.ReadU16();
  image.code = r.ReadBytes(code_len);
  if (!r.ok()) {
    return CorruptError("truncated driver image");
  }
  for (const HandlerEntry& h : image.handlers) {
    if (h.offset >= image.code.size() && !image.code.empty()) {
      return CorruptError("handler offset out of range");
    }
  }
  return image;
}

}  // namespace micropnp
