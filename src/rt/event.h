// Runtime event representation.
//
// "All I/O operations in µPnP are modelled as events" (Section 4.1).  Events
// carry up to four 32-bit arguments — enough for every native-library
// callback and remote operation in the system, and small enough to stay
// fixed-size on an embedded queue.

#ifndef SRC_RT_EVENT_H_
#define SRC_RT_EVENT_H_

#include <array>
#include <cstdint>

#include "src/dsl/events.h"

namespace micropnp {

struct Event {
  EventId id = 0;
  uint8_t argc = 0;
  std::array<int32_t, 4> args{};

  static Event Of(EventId id) { return Event{id, 0, {}}; }
  static Event Of(EventId id, int32_t a0) { return Event{id, 1, {a0}}; }
  static Event Of(EventId id, int32_t a0, int32_t a1) { return Event{id, 2, {a0, a1}}; }

  bool is_error() const { return IsErrorEvent(id); }
};

// The fixed-size layout an embedded implementation would queue (id + argc +
// one 32-bit argument per slot used; we account the worst case).
inline constexpr size_t kEmbeddedEventBytes = 1 + 1 + 4 * sizeof(int32_t);

}  // namespace micropnp

#endif  // SRC_RT_EVENT_H_
