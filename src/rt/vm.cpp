#include "src/rt/vm.h"

#include <algorithm>
#include <array>

#include "src/rt/event_router.h"  // kMcuClockHz

namespace micropnp {
namespace {

// Handler parameters: declared count, clamped to the 4 local slots and to
// the arguments actually present on the event; missing ones read as zero.
std::array<int32_t, 4> BindLocals(const Event& event, uint8_t handler_argc) {
  std::array<int32_t, 4> locals{};
  const size_t count = std::min({static_cast<size_t>(handler_argc), locals.size(),
                                 static_cast<size_t>(event.argc), event.args.size()});
  for (size_t i = 0; i < count; ++i) {
    locals[i] = event.args[i];
  }
  return locals;
}

}  // namespace

Vm::Vm(std::shared_ptr<const DecodedImage> image) : decoded_(std::move(image)) {
  const DriverImage& img = decoded_->image();
  globals_.assign(img.scalar_types.size(), 0);
  arrays_.reserve(img.array_sizes.size());
  for (uint8_t size : img.array_sizes) {
    arrays_.emplace_back(size, 0);
  }
}

void Vm::set_global(size_t slot, int32_t v) {
  if (slot < globals_.size()) {
    globals_[slot] = TruncateTo(decoded_->image().scalar_types[slot], v);
  }
}

std::span<const uint8_t> Vm::array(size_t index) const {
  if (index >= arrays_.size()) {
    return {};
  }
  return std::span<const uint8_t>(arrays_[index].data(), arrays_[index].size());
}

int32_t Vm::TruncateTo(DslType type, int32_t v) {
  switch (type) {
    case DslType::kUint8:
    case DslType::kChar:
      return static_cast<int32_t>(static_cast<uint32_t>(v) & 0xffu);
    case DslType::kUint16:
      return static_cast<int32_t>(static_cast<uint32_t>(v) & 0xffffu);
    case DslType::kUint32:
    case DslType::kInt32:
      return v;
    case DslType::kInt8:
      return static_cast<int32_t>(static_cast<int8_t>(static_cast<uint32_t>(v) & 0xffu));
    case DslType::kInt16:
      return static_cast<int32_t>(static_cast<int16_t>(static_cast<uint32_t>(v) & 0xffffu));
    case DslType::kBool:
      return v != 0 ? 1 : 0;
  }
  return v;
}

double Vm::MicrosPerInstructionAtMcuClock() const {
  if (total_instructions_ == 0) {
    return 0.0;
  }
  return static_cast<double>(total_cycles_) / static_cast<double>(total_instructions_) /
         kMcuClockHz * 1e6;
}

// ---- decoded fast path ------------------------------------------------------
//
// The verifier proved: every instruction is valid and complete, every branch
// lands on an instruction inside the stream, execution cannot run off the
// end, static global/array/local indices are in range, and no path can
// overflow or underflow the operand stack.  None of that is re-checked here.

Vm::ExecResult Vm::Dispatch(const Event& event, VmHost* host) {
  const DecodedHandler* handler = decoded_->FindHandler(event.id);
  if (handler == nullptr) {
    ExecResult result;
    result.outcome = Outcome::kNoHandler;
    return result;
  }
  return handler->watchdog_safe ? DispatchImpl<false>(*handler, event, host)
                                : DispatchImpl<true>(*handler, event, host);
}

template <bool kCheckWatchdog>
Vm::ExecResult Vm::DispatchImpl(const DecodedHandler& handler, const Event& event,
                                VmHost* host) {
  ExecResult result;
  std::array<int32_t, 4> locals = BindLocals(event, handler.argc);
  std::array<int32_t, kVmStackDepth> stack;
  size_t sp = 0;  // next free slot
  const DecodedInsn* const insns = decoded_->code().data();
  size_t ip = handler.entry;

  auto trap = [&](const DecodedInsn& insn, const char* what) {
    result.outcome = Outcome::kTrap;
    result.trap = InternalError(std::string(what) + " at pc " + std::to_string(insn.pc));
  };

  for (;;) {
    const DecodedInsn& insn = insns[ip];
    ++result.instructions;
    result.cycles += insn.cycles;
    if constexpr (kCheckWatchdog) {
      if (result.instructions > kVmWatchdogInstructions) {
        trap(insn, "watchdog: handler exceeded instruction budget");
        break;
      }
    }

    size_t next_ip = ip + 1;
    int32_t a = 0, b = 0;
    switch (insn.op) {
      case Op::kNop:
        break;
      case Op::kPush0:
        stack[sp++] = 0;
        break;
      case Op::kPush1:
        stack[sp++] = 1;
        break;
      case Op::kPushI8:
      case Op::kPushI16:
      case Op::kPushI32:
        stack[sp++] = insn.imm;
        break;
      case Op::kDup:
        stack[sp] = stack[sp - 1];
        ++sp;
        break;
      case Op::kPop:
        --sp;
        break;
      case Op::kLoadG:
        stack[sp++] = globals_[insn.a];
        break;
      case Op::kStoreG:
        globals_[insn.a] = TruncateTo(static_cast<DslType>(insn.b), stack[--sp]);
        break;
      case Op::kLoadL:
        stack[sp++] = locals[insn.a];
        break;
      case Op::kLoadA: {
        a = stack[--sp];
        const std::vector<uint8_t>& arr = arrays_[insn.a];
        if (a < 0 || static_cast<size_t>(a) >= arr.size()) {
          trap(insn, "array subscript out of bounds");
          break;
        }
        stack[sp++] = arr[static_cast<size_t>(a)];
        break;
      }
      case Op::kStoreA: {
        b = stack[--sp];  // value
        a = stack[--sp];  // index
        std::vector<uint8_t>& arr = arrays_[insn.a];
        if (a < 0 || static_cast<size_t>(a) >= arr.size()) {
          trap(insn, "array subscript out of bounds");
          break;
        }
        arr[static_cast<size_t>(a)] = static_cast<uint8_t>(b & 0xff);
        break;
      }
      // Decode-time specialized forms: the abstract interpreter proved the
      // index in bounds / the divisor nonzero on every feasible path, so the
      // trap test is gone.  Value semantics are identical to the checked case.
      case Op::kLoadAUnchecked:
        a = stack[--sp];
        stack[sp++] = arrays_[insn.a][static_cast<size_t>(a)];
        break;
      case Op::kStoreAUnchecked:
        b = stack[--sp];  // value
        a = stack[--sp];  // index
        arrays_[insn.a][static_cast<size_t>(a)] = static_cast<uint8_t>(b & 0xff);
        break;
      case Op::kAdd:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = static_cast<int32_t>(static_cast<uint32_t>(a) + static_cast<uint32_t>(b));
        break;
      case Op::kSub:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = static_cast<int32_t>(static_cast<uint32_t>(a) - static_cast<uint32_t>(b));
        break;
      case Op::kMul:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = static_cast<int32_t>(static_cast<uint32_t>(a) * static_cast<uint32_t>(b));
        break;
      case Op::kDiv:
        b = stack[--sp];
        a = stack[--sp];
        if (b == 0) {
          trap(insn, "division by zero");
          break;
        }
        stack[sp++] = (a == INT32_MIN && b == -1) ? INT32_MIN : a / b;
        break;
      case Op::kMod:
        b = stack[--sp];
        a = stack[--sp];
        if (b == 0) {
          trap(insn, "division by zero");
          break;
        }
        stack[sp++] = (a == INT32_MIN && b == -1) ? 0 : a % b;
        break;
      case Op::kDivUnchecked:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = (a == INT32_MIN && b == -1) ? INT32_MIN : a / b;
        break;
      case Op::kModUnchecked:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = (a == INT32_MIN && b == -1) ? 0 : a % b;
        break;
      case Op::kNeg:
        stack[sp - 1] = static_cast<int32_t>(0u - static_cast<uint32_t>(stack[sp - 1]));
        break;
      case Op::kShl:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = static_cast<int32_t>(static_cast<uint32_t>(a) << (b & 31));
        break;
      case Op::kShr:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = a >> (b & 31);  // arithmetic
        break;
      case Op::kBitAnd:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = a & b;
        break;
      case Op::kBitOr:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = a | b;
        break;
      case Op::kBitXor:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = a ^ b;
        break;
      case Op::kBitNot:
        stack[sp - 1] = ~stack[sp - 1];
        break;
      case Op::kLogicalNot:
        stack[sp - 1] = stack[sp - 1] == 0 ? 1 : 0;
        break;
      case Op::kEq:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = (a == b);
        break;
      case Op::kNe:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = (a != b);
        break;
      case Op::kLt:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = (a < b);
        break;
      case Op::kLe:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = (a <= b);
        break;
      case Op::kGt:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = (a > b);
        break;
      case Op::kGe:
        b = stack[--sp];
        a = stack[--sp];
        stack[sp++] = (a >= b);
        break;
      case Op::kJmp:
        next_ip = static_cast<size_t>(insn.imm);
        break;
      case Op::kJz:
        if (stack[--sp] == 0) {
          next_ip = static_cast<size_t>(insn.imm);
        }
        break;
      case Op::kJnz:
        if (stack[--sp] != 0) {
          next_ip = static_cast<size_t>(insn.imm);
        }
        break;
      case Op::kSignalSelf: {
        Event e;
        e.id = insn.a;
        e.argc = insn.c;
        // Arguments were pushed left-to-right; pop them back into order.
        for (int i = static_cast<int>(insn.c) - 1; i >= 0; --i) {
          e.args[static_cast<size_t>(i)] = stack[--sp];
        }
        if (host != nullptr) {
          host->OnSelfSignal(e);
        }
        break;
      }
      case Op::kSignalLib: {
        std::array<int32_t, 4> args{};
        for (int i = static_cast<int>(insn.c) - 1; i >= 0; --i) {
          args[static_cast<size_t>(i)] = stack[--sp];
        }
        if (host != nullptr) {
          host->OnLibSignal(insn.a, insn.b, std::span<const int32_t>(args.data(), insn.c));
        }
        break;
      }
      case Op::kRet:
        total_instructions_ += result.instructions;
        total_cycles_ += result.cycles;
        return result;
      case Op::kRetVal:
        result.outcome = Outcome::kValue;
        result.value = stack[--sp];
        total_instructions_ += result.instructions;
        total_cycles_ += result.cycles;
        return result;
      case Op::kRetArr: {
        result.outcome = Outcome::kArray;
        const std::vector<uint8_t>& arr = arrays_[insn.a];
        result.array = std::span<const uint8_t>(arr.data(), arr.size());
        total_instructions_ += result.instructions;
        total_cycles_ += result.cycles;
        return result;
      }
    }
    if (result.outcome != Outcome::kDone) {
      break;  // trapped
    }
    ip = next_ip;
  }

  total_instructions_ += result.instructions;
  total_cycles_ += result.cycles;
  return result;
}

// ---- reference path ---------------------------------------------------------
//
// The seed interpreter, preserved verbatim modulo the VmHost interface and
// the locals clamp fix: walks raw bytecode, re-validating opcodes, bounds
// and stack depth on every step.  The differential test in tests/rt_test.cpp
// holds Dispatch to bit-identical accounting against this path.

Vm::ExecResult Vm::DispatchReference(const Event& event, VmHost* host) {
  const DriverImage& image = decoded_->image();
  ExecResult result;
  const HandlerEntry* handler = image.FindHandler(event.id);
  if (handler == nullptr) {
    result.outcome = Outcome::kNoHandler;
    return result;
  }

  std::array<int32_t, 4> locals = BindLocals(event, handler->argc);
  std::array<int32_t, kVmStackDepth> stack;
  size_t sp = 0;  // next free slot
  size_t pc = handler->offset;
  const std::vector<uint8_t>& code = image.code;

  auto trap = [&](const std::string& what) {
    result.outcome = Outcome::kTrap;
    result.trap = InternalError(what + " at pc " + std::to_string(pc));
  };
  auto push = [&](int32_t v) -> bool {
    if (sp >= kVmStackDepth) {
      trap("stack overflow");
      return false;
    }
    stack[sp++] = v;
    return true;
  };
  auto pop = [&](int32_t* out) -> bool {
    if (sp == 0) {
      trap("stack underflow");
      return false;
    }
    *out = stack[--sp];
    return true;
  };

  while (result.outcome == Outcome::kDone) {
    if (pc >= code.size()) {
      trap("pc out of range");
      break;
    }
    const uint8_t raw_op = code[pc];
    if (!OpIsValid(raw_op)) {
      trap("invalid opcode");
      break;
    }
    const Op op = static_cast<Op>(raw_op);
    const int operand_bytes = OpOperandBytes(op);
    if (pc + 1 + static_cast<size_t>(operand_bytes) > code.size()) {
      trap("truncated instruction");
      break;
    }
    ++result.instructions;
    result.cycles += OpCycleCost(op);
    if (result.instructions > kVmWatchdogInstructions) {
      trap("watchdog: handler exceeded instruction budget");
      break;
    }

    // Operand readers.
    auto operand_u8 = [&]() -> uint8_t { return code[pc + 1]; };
    auto operand_i16 = [&]() -> int16_t {
      return static_cast<int16_t>((code[pc + 1] << 8) | code[pc + 2]);
    };
    size_t next_pc = pc + 1 + static_cast<size_t>(operand_bytes);

    int32_t a = 0, b = 0;
    switch (op) {
      case Op::kNop:
        break;
      case Op::kPush0:
        if (!push(0)) continue;
        break;
      case Op::kPush1:
        if (!push(1)) continue;
        break;
      case Op::kPushI8:
        if (!push(static_cast<int8_t>(operand_u8()))) continue;
        break;
      case Op::kPushI16:
        if (!push(operand_i16())) continue;
        break;
      case Op::kPushI32: {
        const int32_t v = static_cast<int32_t>((static_cast<uint32_t>(code[pc + 1]) << 24) |
                                               (static_cast<uint32_t>(code[pc + 2]) << 16) |
                                               (static_cast<uint32_t>(code[pc + 3]) << 8) |
                                               code[pc + 4]);
        if (!push(v)) continue;
        break;
      }
      case Op::kDup:
        if (sp == 0) {
          trap("stack underflow");
          continue;
        }
        if (!push(stack[sp - 1])) continue;
        break;
      case Op::kPop:
        if (!pop(&a)) continue;
        break;
      case Op::kLoadG: {
        const uint8_t slot = operand_u8();
        if (slot >= globals_.size()) {
          trap("global slot out of range");
          continue;
        }
        if (!push(globals_[slot])) continue;
        break;
      }
      case Op::kStoreG: {
        const uint8_t slot = operand_u8();
        if (slot >= globals_.size()) {
          trap("global slot out of range");
          continue;
        }
        if (!pop(&a)) continue;
        globals_[slot] = TruncateTo(image.scalar_types[slot], a);
        break;
      }
      case Op::kLoadL: {
        const uint8_t index = operand_u8();
        if (index >= locals.size()) {
          trap("local index out of range");
          continue;
        }
        if (!push(locals[index])) continue;
        break;
      }
      case Op::kLoadA: {
        const uint8_t arr = operand_u8();
        if (arr >= arrays_.size()) {
          trap("array index out of range");
          continue;
        }
        if (!pop(&a)) continue;
        if (a < 0 || static_cast<size_t>(a) >= arrays_[arr].size()) {
          trap("array subscript out of bounds");
          continue;
        }
        if (!push(arrays_[arr][static_cast<size_t>(a)])) continue;
        break;
      }
      case Op::kStoreA: {
        const uint8_t arr = operand_u8();
        if (arr >= arrays_.size()) {
          trap("array index out of range");
          continue;
        }
        if (!pop(&b)) continue;  // value
        if (!pop(&a)) continue;  // index
        if (a < 0 || static_cast<size_t>(a) >= arrays_[arr].size()) {
          trap("array subscript out of bounds");
          continue;
        }
        arrays_[arr][static_cast<size_t>(a)] = static_cast<uint8_t>(b & 0xff);
        break;
      }
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kShl:
      case Op::kShr:
      case Op::kBitAnd:
      case Op::kBitOr:
      case Op::kBitXor:
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        if (!pop(&b) || !pop(&a)) continue;
        int32_t v = 0;
        bool ok = true;
        switch (op) {
          case Op::kAdd:
            v = static_cast<int32_t>(static_cast<uint32_t>(a) + static_cast<uint32_t>(b));
            break;
          case Op::kSub:
            v = static_cast<int32_t>(static_cast<uint32_t>(a) - static_cast<uint32_t>(b));
            break;
          case Op::kMul:
            v = static_cast<int32_t>(static_cast<uint32_t>(a) * static_cast<uint32_t>(b));
            break;
          case Op::kDiv:
            if (b == 0) {
              trap("division by zero");
              ok = false;
              break;
            }
            if (a == INT32_MIN && b == -1) {
              v = INT32_MIN;  // wraps, matching AVR soft-division
            } else {
              v = a / b;
            }
            break;
          case Op::kMod:
            if (b == 0) {
              trap("division by zero");
              ok = false;
              break;
            }
            if (a == INT32_MIN && b == -1) {
              v = 0;
            } else {
              v = a % b;
            }
            break;
          case Op::kShl:
            v = static_cast<int32_t>(static_cast<uint32_t>(a) << (b & 31));
            break;
          case Op::kShr:
            v = a >> (b & 31);  // arithmetic
            break;
          case Op::kBitAnd:
            v = a & b;
            break;
          case Op::kBitOr:
            v = a | b;
            break;
          case Op::kBitXor:
            v = a ^ b;
            break;
          case Op::kEq:
            v = (a == b);
            break;
          case Op::kNe:
            v = (a != b);
            break;
          case Op::kLt:
            v = (a < b);
            break;
          case Op::kLe:
            v = (a <= b);
            break;
          case Op::kGt:
            v = (a > b);
            break;
          case Op::kGe:
            v = (a >= b);
            break;
          default:
            break;
        }
        if (!ok) {
          continue;
        }
        if (!push(v)) continue;
        break;
      }
      case Op::kNeg:
        if (!pop(&a)) continue;
        if (!push(static_cast<int32_t>(0u - static_cast<uint32_t>(a)))) continue;
        break;
      case Op::kBitNot:
        if (!pop(&a)) continue;
        if (!push(~a)) continue;
        break;
      case Op::kLogicalNot:
        if (!pop(&a)) continue;
        if (!push(a == 0 ? 1 : 0)) continue;
        break;
      case Op::kJmp:
        next_pc = static_cast<size_t>(static_cast<ptrdiff_t>(next_pc) + operand_i16());
        break;
      case Op::kJz:
        if (!pop(&a)) continue;
        if (a == 0) {
          next_pc = static_cast<size_t>(static_cast<ptrdiff_t>(next_pc) + operand_i16());
        }
        break;
      case Op::kJnz:
        if (!pop(&a)) continue;
        if (a != 0) {
          next_pc = static_cast<size_t>(static_cast<ptrdiff_t>(next_pc) + operand_i16());
        }
        break;
      case Op::kSignalSelf: {
        const EventId target = operand_u8();
        const HandlerEntry* target_handler = image.FindHandler(target);
        if (target_handler == nullptr) {
          trap("signal to unhandled event");
          continue;
        }
        Event e;
        e.id = target;
        e.argc = target_handler->argc;
        // Arguments were pushed left-to-right; pop them back into order.
        for (int i = static_cast<int>(e.argc) - 1; i >= 0; --i) {
          if (!pop(&e.args[static_cast<size_t>(i)])) break;
        }
        if (result.outcome != Outcome::kDone) {
          continue;  // popped into a trap
        }
        if (host != nullptr) {
          host->OnSelfSignal(e);
        }
        break;
      }
      case Op::kSignalLib: {
        const LibraryId lib = code[pc + 1];
        const LibraryFunctionId fn = code[pc + 2];
        const NativeFunctionDesc* desc = FindNativeFunction(lib, fn);
        if (desc == nullptr) {
          trap("signal to unknown native function");
          continue;
        }
        std::array<int32_t, 4> args{};
        for (int i = static_cast<int>(desc->arg_count) - 1; i >= 0; --i) {
          if (!pop(&args[static_cast<size_t>(i)])) break;
        }
        if (result.outcome != Outcome::kDone) {
          continue;
        }
        if (host != nullptr) {
          host->OnLibSignal(lib, fn, std::span<const int32_t>(args.data(), desc->arg_count));
        }
        break;
      }
      case Op::kRet:
        total_instructions_ += result.instructions;
        total_cycles_ += result.cycles;
        return result;
      case Op::kRetVal:
        if (!pop(&a)) continue;
        result.outcome = Outcome::kValue;
        result.value = a;
        total_instructions_ += result.instructions;
        total_cycles_ += result.cycles;
        return result;
      case Op::kRetArr: {
        const uint8_t arr = operand_u8();
        if (arr >= arrays_.size()) {
          trap("array index out of range");
          continue;
        }
        result.outcome = Outcome::kArray;
        result.array = std::span<const uint8_t>(arrays_[arr].data(), arrays_[arr].size());
        total_instructions_ += result.instructions;
        total_cycles_ += result.cycles;
        return result;
      }
      case Op::kDivUnchecked:
      case Op::kModUnchecked:
      case Op::kLoadAUnchecked:
      case Op::kStoreAUnchecked:
        // Decode-time internal forms; never wire-valid, so OpIsValid already
        // rejected the raw byte above.
        trap("invalid opcode");
        continue;
    }
    pc = next_pc;
  }

  total_instructions_ += result.instructions;
  total_cycles_ += result.cycles;
  return result;
}

}  // namespace micropnp
