#include "src/rt/driver_host.h"

#include "src/common/logging.h"

namespace micropnp {

DriverHost::DriverHost(std::shared_ptr<const DecodedImage> image, int slot, Scheduler& scheduler,
                       ChannelBus& bus, EventRouter& router)
    : slot_(slot), scheduler_(scheduler), bus_(bus), router_(router), vm_(std::move(image)) {
  NativeLibContext ctx;
  ctx.scheduler = &scheduler_;
  ctx.bus = &bus_;
  ctx.router = &router_;
  ctx.driver_slot = slot_;
  ctx.energy_accumulator = &interconnect_energy_;
  for (LibraryId lib : vm_.image().imports) {
    if (lib < libs_.size()) {
      libs_[lib] = MakeNativeLibrary(lib, ctx);
    }
  }
}

NativeLibrary* DriverHost::LibraryFor(LibraryId id) {
  return id < libs_.size() ? libs_[id].get() : nullptr;
}

void DriverHost::OnSelfSignal(const Event& event) { router_.Post(slot_, event); }

void DriverHost::OnLibSignal(LibraryId lib, LibraryFunctionId fn,
                             std::span<const int32_t> args) {
  NativeLibrary* library = LibraryFor(lib);
  if (library == nullptr) {
    // Driver signalled a library it never imported; a strict embedded
    // runtime faults the driver with a configuration error.
    router_.PostError(slot_, Event::Of(kErrorInvalidConfiguration));
    return;
  }
  library->Invoke(fn, args);
}

void DriverHost::HandleEvent(const Event& event) {
  ++events_handled_;
  Vm::ExecResult result = vm_.Dispatch(event, this);

  switch (result.outcome) {
    case Vm::Outcome::kValue: {
      if (result_handler_) {
        ProducedValue v;
        v.scalar = result.value;
        result_handler_(v);
      }
      break;
    }
    case Vm::Outcome::kArray: {
      if (result_handler_) {
        // The VM result is a view into VM-owned storage; the copy happens
        // here, only when someone is listening.
        ProducedValue v;
        v.is_array = true;
        v.bytes.assign(result.array.begin(), result.array.end());
        result_handler_(v);
      }
      break;
    }
    case Vm::Outcome::kTrap:
      ++traps_;
      MLOG(kWarning, "rt") << "driver " << FormatDeviceTypeId(device_id())
                           << " trapped: " << result.trap.ToString();
      break;
    case Vm::Outcome::kDone:
    case Vm::Outcome::kNoHandler:
      break;
  }
}

void DriverHost::Teardown() {
  for (std::unique_ptr<NativeLibrary>& lib : libs_) {
    if (lib != nullptr) {
      lib->Teardown();
    }
  }
}

}  // namespace micropnp
