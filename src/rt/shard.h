// A shard: one worker thread's slice of the parallel runtime.
//
// The sharded runtime partitions Things / driver hosts across workers with
// stable affinity (hash of the device address).  Each shard owns, exclusively
// and without locks:
//
//  * a timing-wheel Scheduler — all timers and datagram deliveries for the
//    shard's nodes run here, so retransmit timers, trickle ladders, stream
//    ticks and reply matching never cross a lock;
//  * an Rng stream (see src/common/rng.h for the shard-confinement contract);
//  * a bounded MPSC inbox through which *other* shards hand it timed work
//    (cross-shard datagram deliveries, each stamped with an absolute due
//    time computed by the sender).
//
// Shard state may only be touched by its owner: the worker thread while the
// runtime is running in parallel, or whichever single thread is driving the
// sequential fallback / bring-up.  The one exception is PostAt, which is the
// multi-producer side of the inbox and safe from any thread.
//
// Ownership is tracked with a thread-local "current shard" pointer
// (Shard::Current), installed by the worker loop and by the sequential
// driver.  Cross-cutting code (the network fabric) uses it to pick the
// per-shard scratch context and to decide local-schedule vs inbox hand-off.

#ifndef SRC_RT_SHARD_H_
#define SRC_RT_SHARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/rt/mpsc_queue.h"
#include "src/sim/scheduler.h"

namespace micropnp {

// A closure to run at an absolute simulated time on the receiving shard.
struct TimedCall {
  uint64_t due_ns = 0;
  std::function<void()> fn;
};

class Shard {
 public:
  Shard(uint32_t id, uint64_t seed, size_t inbox_capacity)
      : id_(id), rng_(seed), inbox_(inbox_capacity) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  uint32_t id() const { return id_; }
  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  Rng& rng() { return rng_; }

  // --- cross-shard hand-off (any thread) -------------------------------------
  // Enqueues `fn` to run on this shard at absolute time `due_ns`.  The
  // conservative-synchronization invariant requires due_ns to lie at or past
  // the end of the quantum in which the producer runs (the fabric guarantees
  // this: cross-shard latency >= the runtime's quantum).  Returns false when
  // the inbox is full (counted; the caller treats it like a lost frame).
  bool PostAt(uint64_t due_ns, std::function<void()> fn) {
    if (inbox_.TryPush(TimedCall{due_ns, std::move(fn)})) {
      return true;
    }
    dropped_posts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // --- owner-side operations --------------------------------------------------
  // Moves every queued inbox entry into the local wheel.  Entries with a due
  // time already in the past (possible only if a producer violated the
  // lookahead contract) are clamped to "now" by the scheduler.
  size_t DrainInbox() {
    drain_buffer_.clear();
    const size_t n = inbox_.DrainInto(drain_buffer_);
    for (TimedCall& call : drain_buffer_) {
      scheduler_.ScheduleAt(SimTime::FromNanos(call.due_ns), std::move(call.fn));
    }
    drain_buffer_.clear();
    return n;
  }

  bool idle() const { return scheduler_.empty() && inbox_.size() == 0; }

  void CloseInbox() { inbox_.Close(); }

  uint64_t dropped_posts() const { return dropped_posts_.load(std::memory_order_relaxed); }
  uint64_t inbox_rejected_full() const { return inbox_.rejected_full(); }

  // --- thread-local ownership -------------------------------------------------
  // The shard whose events the calling thread is currently executing, or
  // nullptr outside any shard context (e.g. the main thread during setup).
  static Shard* Current();

  // RAII: installs `shard` as the calling thread's current shard.
  class ScopedCurrent {
   public:
    explicit ScopedCurrent(Shard* shard);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    Shard* previous_;
  };

 private:
  const uint32_t id_;
  Scheduler scheduler_;
  Rng rng_;
  MpscQueue<TimedCall> inbox_;
  std::vector<TimedCall> drain_buffer_;  // owner-only scratch
  std::atomic<uint64_t> dropped_posts_{0};
};

}  // namespace micropnp

#endif  // SRC_RT_SHARD_H_
