// Memory footprint model of the μPnP software stack (Table 2).
//
// The paper measures flash/RAM of the Contiki/AVR implementation on the
// ATMega128RFA1.  We cannot compile for AVR in this environment, so the
// reproduction derives each row from the *real dimensioning of this
// implementation* (opcode count, queue depths, stack depth, channel count,
// buffer sizes) combined with documented per-unit code-size constants for an
// 8-bit AVR target (bytes of flash per opcode handler, per ISR, per protocol
// message codec).  The per-unit constants are calibrated once against the
// paper's totals; the *structure* — what contributes, and how it scales with
// the implementation's parameters — is honest and testable.

#ifndef SRC_RT_FOOTPRINT_H_
#define SRC_RT_FOOTPRINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace micropnp {

// The evaluation platform (ATMega128RFA1 [6]).
inline constexpr size_t kPlatformFlashBytes = 128 * 1024;
inline constexpr size_t kPlatformRamBytes = 16 * 1024;

struct FootprintEntry {
  std::string component;
  size_t flash_bytes = 0;
  size_t ram_bytes = 0;

  double flash_pct() const { return 100.0 * static_cast<double>(flash_bytes) / kPlatformFlashBytes; }
  double ram_pct() const { return 100.0 * static_cast<double>(ram_bytes) / kPlatformRamBytes; }
};

// The six rows of Table 2, in the paper's order: Peripheral Controller, μPnP
// Virtual Machine, ADC Native Library, UART Native Library, I2C Native
// Library, μPnP Network Stack.
std::vector<FootprintEntry> EmbeddedFootprint();

// Sum of all rows ("Total" row of Table 2).
FootprintEntry EmbeddedFootprintTotal();

}  // namespace micropnp

#endif  // SRC_RT_FOOTPRINT_H_
