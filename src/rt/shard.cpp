#include "src/rt/shard.h"

namespace micropnp {

namespace {
thread_local Shard* t_current_shard = nullptr;
}  // namespace

Shard* Shard::Current() { return t_current_shard; }

Shard::ScopedCurrent::ScopedCurrent(Shard* shard) : previous_(t_current_shard) {
  t_current_shard = shard;
}

Shard::ScopedCurrent::~ScopedCurrent() { t_current_shard = previous_; }

}  // namespace micropnp
