#include "src/rt/native_libs.h"

namespace micropnp {

std::unique_ptr<NativeLibrary> MakeNativeLibrary(LibraryId id, const NativeLibContext& ctx) {
  switch (id) {
    case kLibAdc:
      return std::make_unique<AdcNativeLibrary>(ctx);
    case kLibUart:
      return std::make_unique<UartNativeLibrary>(ctx);
    case kLibI2c:
      return std::make_unique<I2cNativeLibrary>(ctx);
    case kLibSpi:
      return std::make_unique<SpiNativeLibrary>(ctx);
    case kLibTimer:
      return std::make_unique<TimerNativeLibrary>(ctx);
    default:
      return nullptr;
  }
}

// ------------------------------------------------------------------- adc ---

void AdcNativeLibrary::Invoke(LibraryFunctionId fn, std::span<const int32_t> args) {
  switch (fn) {
    case kAdcInit: {
      if (!ctx_.bus->IsSelected(BusKind::kAdc)) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      const int32_t resolution = args.size() > 1 ? args[1] : 10;
      if (resolution != 8 && resolution != 10 && resolution != 12) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      AdcConfig config;
      config.resolution_bits = static_cast<int>(resolution);
      ctx_.bus->adc().Configure(config);
      initialized_ = true;
      return;
    }
    case kAdcReset:
      initialized_ = false;
      return;
    case kAdcRead: {
      if (!initialized_) {
        PostErrorToDriver(kErrorAdcInUse);
        return;
      }
      Result<uint16_t> code = ctx_.bus->adc().Sample();
      if (!code.ok()) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      ChargeEnergy(BusKind::kAdc);
      const int32_t value = *code;
      // Split phase: the conversion result arrives after the ADC's
      // conversion time, as a newdata event.
      ctx_.scheduler->ScheduleAfter(ctx_.bus->adc().conversion_time(),
                                    [this, value] { PostToDriver(Event::Of(kEventNewData, value)); });
      return;
    }
    default:
      PostErrorToDriver(kErrorInvalidConfiguration);
  }
}

// ------------------------------------------------------------------ uart ---

void UartNativeLibrary::Invoke(LibraryFunctionId fn, std::span<const int32_t> args) {
  UartPort& uart = ctx_.bus->uart();
  switch (fn) {
    case kUartInit: {
      if (!ctx_.bus->IsSelected(BusKind::kUart)) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      UartConfig config;
      config.baud = args.size() > 0 ? static_cast<uint32_t>(args[0]) : 9600;
      config.parity = static_cast<UartParity>(args.size() > 1 ? args[1] : 0);
      config.stop_bits = static_cast<UartStopBits>(args.size() > 2 ? args[2] : 1);
      config.data_bits = static_cast<uint8_t>(args.size() > 3 ? args[3] : 8);
      Status status = uart.Init(config);
      if (status.code() == StatusCode::kBusy) {
        PostErrorToDriver(kErrorUartInUse);  // Listing 1: error uartInUse()
        return;
      }
      if (!status.ok()) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      claimed_ = true;
      return;
    }
    case kUartReset:
      Teardown();
      return;
    case kUartRead:
      if (!claimed_) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      listening_ = true;
      frame_open_ = false;
      uart.set_rx_handler([this](uint8_t byte) { OnByte(byte); });
      return;
    case kUartWrite: {
      if (!claimed_) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      ChargeEnergy(BusKind::kUart);
      Status status = uart.HostSend(static_cast<uint8_t>(args.size() > 0 ? args[0] & 0xff : 0));
      if (!status.ok()) {
        PostErrorToDriver(kErrorInvalidConfiguration);
      }
      return;
    }
    case kUartStop:
      listening_ = false;
      frame_open_ = false;
      ++timeout_generation_;
      uart.set_rx_handler(nullptr);
      return;
    default:
      PostErrorToDriver(kErrorInvalidConfiguration);
  }
}

void UartNativeLibrary::OnByte(uint8_t byte) {
  if (!listening_) {
    return;
  }
  ChargeEnergy(BusKind::kUart);
  if (!frame_open_) {
    frame_open_ = true;
  }
  ArmTimeout();
  PostToDriver(Event::Of(kEventNewData, static_cast<int32_t>(byte)));
}

void UartNativeLibrary::ArmTimeout() {
  const uint64_t generation = ++timeout_generation_;
  ctx_.scheduler->ScheduleAfter(SimTime::FromMillis(kInterByteTimeoutMs), [this, generation] {
    if (generation == timeout_generation_ && listening_ && frame_open_) {
      frame_open_ = false;
      PostErrorToDriver(kErrorTimeout);  // frame stalled mid-way
    }
  });
}

void UartNativeLibrary::Teardown() {
  if (claimed_) {
    ctx_.bus->uart().Reset();
    claimed_ = false;
  }
  listening_ = false;
  frame_open_ = false;
  ++timeout_generation_;
}

// ------------------------------------------------------------------- i2c ---

void I2cNativeLibrary::Invoke(LibraryFunctionId fn, std::span<const int32_t> args) {
  I2cPort& i2c = ctx_.bus->i2c();
  switch (fn) {
    case kI2cInit: {
      if (!ctx_.bus->IsSelected(BusKind::kI2c)) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      I2cConfig config;
      config.clock_hz = static_cast<uint32_t>((args.size() > 0 ? args[0] : 100) * 1000);
      i2c.Configure(config);
      initialized_ = true;
      return;
    }
    case kI2cReset:
      initialized_ = false;
      return;
    case kI2cWrite: {
      if (!initialized_) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      ChargeEnergy(BusKind::kI2c);
      const uint8_t payload[2] = {static_cast<uint8_t>(args[1] & 0xff),
                                  static_cast<uint8_t>(args[2] & 0xff)};
      Status status = i2c.Write(static_cast<uint8_t>(args[0] & 0x7f), ByteSpan(payload, 2));
      if (!status.ok()) {
        PostErrorToDriver(kErrorBusError);
      }
      return;
    }
    case kI2cRead8:
      Read(args[0], args[1], 1);
      return;
    case kI2cRead16:
      Read(args[0], args[1], 2);
      return;
    case kI2cRead24:
      Read(args[0], args[1], 3);
      return;
    default:
      PostErrorToDriver(kErrorInvalidConfiguration);
  }
}

void I2cNativeLibrary::Read(int32_t addr, int32_t reg, int bytes) {
  if (!initialized_) {
    PostErrorToDriver(kErrorInvalidConfiguration);
    return;
  }
  ChargeEnergy(BusKind::kI2c);
  I2cPort& i2c = ctx_.bus->i2c();
  const uint8_t pointer = static_cast<uint8_t>(reg & 0xff);
  Result<std::vector<uint8_t>> data =
      i2c.WriteRead(static_cast<uint8_t>(addr & 0x7f), ByteSpan(&pointer, 1),
                    static_cast<size_t>(bytes));
  if (!data.ok()) {
    PostErrorToDriver(kErrorBusError);
    return;
  }
  int32_t value = 0;
  for (uint8_t byte : *data) {
    value = static_cast<int32_t>((static_cast<uint32_t>(value) << 8) | byte);
  }
  // Result arrives after the wire time of the transaction.
  const SimDuration wire = i2c.TransactionTime(static_cast<size_t>(bytes) + 1, 2);
  ctx_.scheduler->ScheduleAfter(wire,
                                [this, value] { PostToDriver(Event::Of(kEventNewData, value)); });
}

// ------------------------------------------------------------------- spi ---

void SpiNativeLibrary::Invoke(LibraryFunctionId fn, std::span<const int32_t> args) {
  SpiPort& spi = ctx_.bus->spi();
  switch (fn) {
    case kSpiInit: {
      if (!ctx_.bus->IsSelected(BusKind::kSpi)) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      SpiConfig config;
      config.clock_hz = static_cast<uint32_t>((args.size() > 0 ? args[0] : 1000) * 1000);
      config.mode = static_cast<uint8_t>(args.size() > 1 ? args[1] & 3 : 0);
      spi.Configure(config);
      initialized_ = true;
      return;
    }
    case kSpiReset:
      initialized_ = false;
      return;
    case kSpiTransfer2: {
      if (!initialized_) {
        PostErrorToDriver(kErrorSpiInUse);
        return;
      }
      ChargeEnergy(BusKind::kSpi);
      const uint8_t tx[2] = {static_cast<uint8_t>(args[0] & 0xff),
                             static_cast<uint8_t>(args[1] & 0xff)};
      Result<std::vector<uint8_t>> rx = spi.Transfer(ByteSpan(tx, 2));
      if (!rx.ok()) {
        PostErrorToDriver(kErrorBusError);
        return;
      }
      const int32_t value = static_cast<int32_t>(((*rx)[0] << 8) | (*rx)[1]);
      ctx_.scheduler->ScheduleAfter(spi.TransferTime(2), [this, value] {
        PostToDriver(Event::Of(kEventNewData, value));
      });
      return;
    }
    default:
      PostErrorToDriver(kErrorInvalidConfiguration);
  }
}

// ----------------------------------------------------------------- timer ---

void TimerNativeLibrary::Invoke(LibraryFunctionId fn, std::span<const int32_t> args) {
  switch (fn) {
    case kTimerStart: {
      const double period_ms = args.size() > 0 ? static_cast<double>(args[0]) : 1000.0;
      if (period_ms <= 0.0) {
        PostErrorToDriver(kErrorInvalidConfiguration);
        return;
      }
      running_ = true;
      const uint64_t generation = ++generation_;
      ctx_.scheduler->ScheduleAfter(SimTime::FromMillis(period_ms),
                                    [this, generation, period_ms] { Tick(generation, period_ms); });
      return;
    }
    case kTimerStop:
      running_ = false;
      ++generation_;
      return;
    case kTimerOnce: {
      const double delay_ms = args.size() > 0 ? static_cast<double>(args[0]) : 0.0;
      const uint64_t generation = generation_;
      ctx_.scheduler->ScheduleAfter(SimTime::FromMillis(delay_ms), [this, generation] {
        if (generation == generation_) {
          PostToDriver(Event::Of(kEventTick));
        }
      });
      return;
    }
    default:
      PostErrorToDriver(kErrorInvalidConfiguration);
  }
}

void TimerNativeLibrary::Tick(uint64_t generation, double period_ms) {
  if (!running_ || generation != generation_) {
    return;
  }
  PostToDriver(Event::Of(kEventTick));
  ctx_.scheduler->ScheduleAfter(SimTime::FromMillis(period_ms),
                                [this, generation, period_ms] { Tick(generation, period_ms); });
}

void TimerNativeLibrary::Teardown() {
  running_ = false;
  ++generation_;
}

}  // namespace micropnp
