#include "src/rt/decoded_image.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <string>

#include "src/dsl/native_interface.h"
#include "src/rt/abstract_interp.h"

namespace micropnp {
namespace {

Status VerifyError(const std::string& what, size_t pc) {
  return CorruptError(what + " at pc " + std::to_string(pc));
}

// Control-flow successors of the decoded instruction at `index` (shared by
// the stack-depth fixpoint and the per-handler reachability walk).
template <typename Fn>
void ForEachSuccessor(const DecodedInsn& insn, size_t index, Fn&& fn) {
  switch (insn.op) {
    case Op::kRet:
    case Op::kRetVal:
    case Op::kRetArr:
      break;  // terminal
    case Op::kJmp:
      fn(static_cast<size_t>(insn.imm));
      break;
    case Op::kJz:
    case Op::kJnz:
      fn(static_cast<size_t>(insn.imm));
      fn(index + 1);
      break;
    default:
      fn(index + 1);
      break;
  }
}

}  // namespace

Result<DecodedImage> DecodedImage::Decode(const DriverImage& image,
                                          std::optional<uint32_t> image_crc,
                                          const DecodeOptions& options) {
  DecodedImage out;
  out.image_ = image;
  out.crc_ = image_crc.has_value() ? *image_crc : image.ImageCrc();
  const std::vector<uint8_t>& code = image.code;
  // DecodedInsn.pc and the wire format are both 16-bit; an in-memory image
  // larger than that could otherwise alias offsets during branch resolution.
  if (code.size() > UINT16_MAX) {
    return CorruptError("code larger than the 64 KiB image format allows");
  }

  // ---- pass 1: linear decode ------------------------------------------------
  // Every byte of `code` must belong to exactly one complete instruction;
  // `index_at[pc]` maps instruction-start offsets to decoded indices.
  std::vector<int32_t> index_at(code.size(), -1);
  size_t pc = 0;
  while (pc < code.size()) {
    const uint8_t raw = code[pc];
    if (!OpIsValid(raw)) {
      char hex[32];
      std::snprintf(hex, sizeof(hex), "invalid opcode 0x%02x", raw);
      return VerifyError(hex, pc);
    }
    const Op op = static_cast<Op>(raw);
    const size_t operand_bytes = static_cast<size_t>(OpOperandBytes(op));
    if (pc + 1 + operand_bytes > code.size()) {
      return VerifyError("truncated instruction", pc);
    }

    DecodedInsn insn;
    insn.op = op;
    insn.pc = static_cast<uint16_t>(pc);
    insn.cycles = OpCycleCost(op);
    switch (op) {
      case Op::kPushI8:
        insn.imm = static_cast<int8_t>(code[pc + 1]);
        break;
      case Op::kPushI16:
        insn.imm = static_cast<int16_t>((code[pc + 1] << 8) | code[pc + 2]);
        break;
      case Op::kPushI32:
        insn.imm = static_cast<int32_t>((static_cast<uint32_t>(code[pc + 1]) << 24) |
                                        (static_cast<uint32_t>(code[pc + 2]) << 16) |
                                        (static_cast<uint32_t>(code[pc + 3]) << 8) |
                                        code[pc + 4]);
        break;
      case Op::kJmp:
      case Op::kJz:
      case Op::kJnz:
        // Relative displacement; resolved to a decoded index in pass 2.
        insn.imm = static_cast<int16_t>((code[pc + 1] << 8) | code[pc + 2]);
        break;
      case Op::kSignalLib:
        insn.a = code[pc + 1];
        insn.b = code[pc + 2];
        break;
      case Op::kLoadG:
      case Op::kStoreG:
      case Op::kLoadL:
      case Op::kLoadA:
      case Op::kStoreA:
      case Op::kRetArr:
      case Op::kSignalSelf:
        insn.a = code[pc + 1];
        break;
      default:
        break;
    }
    index_at[pc] = static_cast<int32_t>(out.insns_.size());
    out.insns_.push_back(insn);
    pc += 1 + operand_bytes;
  }

  // ---- pass 2: resolve + verify every static operand ------------------------
  for (size_t i = 0; i < out.insns_.size(); ++i) {
    DecodedInsn& insn = out.insns_[i];
    switch (insn.op) {
      case Op::kJmp:
      case Op::kJz:
      case Op::kJnz: {
        const size_t operand_end = static_cast<size_t>(insn.pc) + 3;
        const ptrdiff_t target =
            static_cast<ptrdiff_t>(operand_end) + static_cast<ptrdiff_t>(insn.imm);
        if (target < 0 || static_cast<size_t>(target) >= code.size()) {
          return VerifyError("branch target out of code", insn.pc);
        }
        const int32_t target_index = index_at[static_cast<size_t>(target)];
        if (target_index < 0) {
          return VerifyError("branch target off instruction boundary", insn.pc);
        }
        insn.imm = target_index;
        break;
      }
      case Op::kLoadG:
      case Op::kStoreG:
        if (insn.a >= image.scalar_types.size()) {
          return VerifyError("global slot out of range", insn.pc);
        }
        // store.g truncates to the declared type; resolve it here so the
        // interpreter skips the slot-type lookup.
        insn.b = static_cast<uint8_t>(image.scalar_types[insn.a]);
        break;
      case Op::kLoadL:
        if (insn.a >= kMaxHandlerArgs) {
          return VerifyError("local index out of range", insn.pc);
        }
        break;
      case Op::kLoadA:
      case Op::kStoreA:
      case Op::kRetArr:
        if (insn.a >= image.array_sizes.size()) {
          return VerifyError("array index out of range", insn.pc);
        }
        break;
      case Op::kSignalSelf: {
        const HandlerEntry* target = image.FindHandler(insn.a);
        if (target == nullptr) {
          return VerifyError("signal to unhandled event", insn.pc);
        }
        if (target->argc > kMaxHandlerArgs) {
          return VerifyError("signal target takes too many arguments", insn.pc);
        }
        insn.c = target->argc;
        break;
      }
      case Op::kSignalLib: {
        const NativeFunctionDesc* desc = FindNativeFunction(insn.a, insn.b);
        if (desc == nullptr) {
          return VerifyError("signal to unknown native function", insn.pc);
        }
        if (std::find(image.imports.begin(), image.imports.end(), insn.a) ==
            image.imports.end()) {
          return VerifyError("signal to library not in imports", insn.pc);
        }
        if (desc->arg_count > kMaxHandlerArgs) {
          return VerifyError("signal target takes too many arguments", insn.pc);
        }
        insn.c = desc->arg_count;
        break;
      }
      default:
        break;
    }
    // The decoded interpreter advances by index with no bounds check, so the
    // last instruction must not fall through past the end of the stream.
    const bool falls_through =
        insn.op != Op::kRet && insn.op != Op::kRetVal && insn.op != Op::kRetArr &&
        insn.op != Op::kJmp;
    if (falls_through && i + 1 == out.insns_.size()) {
      return VerifyError("execution falls off the end of code", insn.pc);
    }
  }

  // ---- handlers -------------------------------------------------------------
  for (const HandlerEntry& h : image.handlers) {
    if (h.argc > kMaxHandlerArgs) {
      return CorruptError("handler for event " + std::to_string(h.event) + " declares " +
                          std::to_string(h.argc) + " arguments (max " +
                          std::to_string(kMaxHandlerArgs) + ")");
    }
    if (h.offset >= code.size()) {
      return CorruptError("handler offset out of range for event " + std::to_string(h.event));
    }
    if (index_at[h.offset] < 0) {
      return VerifyError("handler entry off instruction boundary", h.offset);
    }
    DecodedHandler decoded;
    decoded.event = h.event;
    decoded.argc = h.argc;
    decoded.entry = static_cast<uint32_t>(index_at[h.offset]);
    // First handler wins on duplicates, matching the seed's linear scan.
    if (out.handler_table_[h.event] < 0) {
      out.handler_table_[h.event] = static_cast<int16_t>(out.handlers_.size());
      out.handlers_.push_back(decoded);
    }
  }

  // ---- worst-case stack-depth analysis --------------------------------------
  // Abstract interpretation over entry-depth intervals [lo, hi].  The
  // interpreter runs with a fixed kVmStackDepth-slot stack and no per-push
  // bounds checks, so any path that could overflow or underflow is rejected
  // here.  Intervals only widen and are bounded, so the fixpoint is cheap.
  constexpr int kUnvisited = -1;
  struct Interval {
    int lo = kUnvisited;
    int hi = kUnvisited;
  };
  std::vector<Interval> entry(out.insns_.size());
  std::vector<int> exit_hi(out.insns_.size(), 0);  // post-instruction hi, for max_stack
  std::deque<size_t> worklist;

  auto merge = [&](size_t index, int lo, int hi) {
    Interval& in = entry[index];
    if (in.lo == kUnvisited) {
      in = {lo, hi};
      worklist.push_back(index);
    } else if (lo < in.lo || hi > in.hi) {
      in.lo = std::min(in.lo, lo);
      in.hi = std::max(in.hi, hi);
      worklist.push_back(index);
    }
  };

  for (const DecodedHandler& h : out.handlers_) {
    merge(h.entry, 0, 0);  // handlers start with an empty operand stack
  }

  while (!worklist.empty()) {
    const size_t i = worklist.front();
    worklist.pop_front();
    const DecodedInsn& insn = out.insns_[i];
    const Interval in = entry[i];

    int pops = 0;
    int pushes = 0;
    if (!OpStackEffect(insn.op, &pops, &pushes)) {
      pops = insn.c;  // signal ops: resolved per-site argument count
    }
    if (in.lo < pops) {
      return VerifyError("static stack underflow", insn.pc);
    }
    const int out_lo = in.lo - pops + pushes;
    const int out_hi = in.hi - pops + pushes;
    if (out_hi > static_cast<int>(kVmStackDepth)) {
      return VerifyError("static stack overflow", insn.pc);
    }
    exit_hi[i] = out_hi;

    ForEachSuccessor(insn, i, [&](size_t successor) { merge(successor, out_lo, out_hi); });
  }

  // Per-handler worst case: max post-instruction depth over the handler's
  // reachable instructions (intervals are final here, so plain reachability).
  for (DecodedHandler& h : out.handlers_) {
    std::vector<bool> seen(out.insns_.size(), false);
    std::deque<size_t> frontier = {h.entry};
    uint32_t deepest = 0;
    while (!frontier.empty()) {
      const size_t i = frontier.front();
      frontier.pop_front();
      if (seen[i]) {
        continue;
      }
      seen[i] = true;
      deepest = std::max(deepest, static_cast<uint32_t>(exit_hi[i]));
      ForEachSuccessor(out.insns_[i], i,
                       [&](size_t successor) { frontier.push_back(successor); });
    }
    h.max_stack = deepest;
  }

  // ---- abstract interpretation ----------------------------------------------
  // Value analysis over the structurally-verified stream (abstract_interp.h):
  // proves trap sites safe or unsafe, bounds each handler's execution, and
  // flags unreachable code / dead handlers for updl_lint.
  auto analysis = std::make_shared<ImageAnalysis>(
      AnalyzeImage(image, out.insns_, out.handlers_));
  if (options.reject_unsafe) {
    if (const Finding* error = analysis->FirstError()) {
      return CorruptError("unsafe driver image: " + error->message + " [" +
                          FindingKindName(error->kind) + " at pc " +
                          std::to_string(error->pc) + "]");
    }
  }
  if (options.elide_proven_traps) {
    for (size_t i = 0; i < out.insns_.size(); ++i) {
      DecodedInsn& insn = out.insns_[i];
      const uint8_t proof = analysis->proofs[i];
      if ((proof & kProofDivisorNonZero) != 0) {
        insn.op = insn.op == Op::kDiv ? Op::kDivUnchecked : Op::kModUnchecked;
      } else if ((proof & kProofSubscriptInBounds) != 0) {
        insn.op = insn.op == Op::kLoadA ? Op::kLoadAUnchecked : Op::kStoreAUnchecked;
      }
    }
    for (DecodedHandler& h : out.handlers_) {
      for (const HandlerWcet& wcet : analysis->wcet) {
        if (wcet.event == h.event) {
          h.watchdog_safe = wcet.under_watchdog;
          h.wcet_instructions = wcet.bounded ? wcet.instructions : 0;
          break;
        }
      }
    }
  }
  out.analysis_ = std::move(analysis);

  return out;
}

Result<std::shared_ptr<const DecodedImage>> DecodedImage::DecodeShared(
    const DriverImage& image, std::optional<uint32_t> image_crc,
    const DecodeOptions& options) {
  Result<DecodedImage> decoded = Decode(image, image_crc, options);
  if (!decoded.ok()) {
    return decoded.status();
  }
  return std::shared_ptr<const DecodedImage>(new DecodedImage(std::move(*decoded)));
}

const ImageAnalysis& DecodedImage::analysis() const { return *analysis_; }

uint32_t DecodedImage::max_stack_depth() const {
  uint32_t deepest = 0;
  for (const DecodedHandler& h : handlers_) {
    deepest = std::max(deepest, h.max_stack);
  }
  return deepest;
}

}  // namespace micropnp
