#include "src/rt/event_router.h"

namespace micropnp {

bool EventRouter::Post(int driver_slot, const Event& event) {
  if (event.is_error()) {
    return PostError(driver_slot, event);
  }
  cycles_ += kRouterEnqueueCycles;
  if (regular_.size() >= kQueueDepth) {
    ++events_dropped_;
    return false;
  }
  regular_.push_back(Entry{driver_slot, event});
  if (on_post_) {
    on_post_();
  }
  return true;
}

bool EventRouter::PostError(int driver_slot, const Event& event) {
  cycles_ += kRouterEnqueueCycles;
  if (errors_.size() >= kQueueDepth) {
    ++events_dropped_;
    return false;
  }
  errors_.push_back(Entry{driver_slot, event});
  if (on_post_) {
    on_post_();
  }
  return true;
}

bool EventRouter::DispatchOne(const Sink& sink) {
  std::deque<Entry>* queue = nullptr;
  if (!errors_.empty()) {
    queue = &errors_;
  } else if (!regular_.empty()) {
    queue = &regular_;
  } else {
    return false;
  }
  Entry entry = std::move(queue->front());
  queue->pop_front();
  cycles_ += kRouterDispatchCycles;
  ++events_dispatched_;
  sink(entry.slot, entry.event);
  return true;
}

size_t EventRouter::ProcessAll(const Sink& sink) {
  const size_t budget = pending();
  size_t count = 0;
  while (count < budget && DispatchOne(sink)) {
    ++count;
  }
  return count;
}

}  // namespace micropnp
