// The μPnP virtual machine (Section 4.2).
//
// "A virtual machine implementing a stack-based execution model executes
// driver bytecode.  This virtual machine implements a single operand stack
// and concurrency is realized through event-based programming."
//
// Handlers run to completion; there is no preemption and no locking.  The
// interpreter charges each instruction's modeled AVR cycle cost (see
// src/dsl/bytecode.h) so the Section 6.2 timing numbers can be reproduced on
// any host.

#ifndef SRC_RT_VM_H_
#define SRC_RT_VM_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/dsl/bytecode.h"
#include "src/dsl/driver_image.h"
#include "src/rt/event.h"

namespace micropnp {

// Dimensioning of the embedded VM (mirrored by the footprint model).
inline constexpr size_t kVmStackDepth = 32;
inline constexpr uint64_t kVmWatchdogInstructions = 100'000;  // runaway handler guard

class Vm {
 public:
  // What a handler execution produced.
  enum class Outcome : uint8_t {
    kDone,           // ran to completion, no result
    kValue,          // `return expr;` -> scalar result
    kArray,          // `return arr;`  -> byte-buffer result
    kNoHandler,      // driver does not handle this event
    kTrap,           // fault: bad opcode, stack violation, div/0, watchdog
  };

  struct ExecResult {
    Outcome outcome = Outcome::kDone;
    int32_t value = 0;
    std::vector<uint8_t> array;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    Status trap;  // set when outcome == kTrap
  };

  // Signal sinks: the host wires these to the event router / native libs.
  // `SelfSignal` receives driver-internal events (kSignalSelf); `LibSignal`
  // receives native library invocations (kSignalLib).
  using SelfSignal = std::function<void(const Event&)>;
  using LibSignal = std::function<void(LibraryId, LibraryFunctionId, std::span<const int32_t>)>;

  explicit Vm(const DriverImage& image);

  // Executes the handler for `event` (if any).  Arguments beyond the
  // handler's declared count are ignored; missing ones read as zero.
  ExecResult Dispatch(const Event& event, const SelfSignal& self_signal,
                      const LibSignal& lib_signal);

  // --- introspection (tests, debugger-style tooling) -----------------------
  int32_t global(size_t slot) const { return slot < globals_.size() ? globals_[slot] : 0; }
  void set_global(size_t slot, int32_t v);
  std::span<const uint8_t> array(size_t index) const;
  const DriverImage& image() const { return image_; }
  uint64_t total_instructions() const { return total_instructions_; }
  uint64_t total_cycles() const { return total_cycles_; }
  double MicrosPerInstructionAtMcuClock() const;

 private:
  // Truncates a 32-bit value to a declared storage type (JVM-style).
  static int32_t TruncateTo(DslType type, int32_t v);

  DriverImage image_;
  std::vector<int32_t> globals_;
  std::vector<std::vector<uint8_t>> arrays_;
  uint64_t total_instructions_ = 0;
  uint64_t total_cycles_ = 0;
};

}  // namespace micropnp

#endif  // SRC_RT_VM_H_
