// The μPnP virtual machine (Section 4.2).
//
// "A virtual machine implementing a stack-based execution model executes
// driver bytecode.  This virtual machine implements a single operand stack
// and concurrency is realized through event-based programming."
//
// Handlers run to completion; there is no preemption and no locking.  The
// interpreter charges each instruction's modeled AVR cycle cost (see
// src/dsl/bytecode.h) so the Section 6.2 timing numbers can be reproduced on
// any host.
//
// Execution follows a verify → decode → execute pipeline: the VM runs over a
// load-time verified DecodedImage (src/rt/decoded_image.h), so the hot loop
// performs no opcode validation, no code-bounds checks, no operand
// re-decoding and no stack-depth checks.  The only runtime traps left are
// the ones that depend on runtime state: division by zero, dynamic array
// subscripts and the watchdog.  The seed byte-walking interpreter is kept as
// DispatchReference for differential tests and benchmarks; both paths
// produce bit-identical instruction/cycle accounting.

#ifndef SRC_RT_VM_H_
#define SRC_RT_VM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/dsl/bytecode.h"
#include "src/dsl/driver_image.h"
#include "src/rt/decoded_image.h"
#include "src/rt/event.h"

namespace micropnp {

inline constexpr uint64_t kVmWatchdogInstructions = 100'000;  // runaway handler guard

// What the VM signals out of a running handler.  DriverHost implements this
// over the event router and the native libraries; tests implement it with
// recording stubs.  A plain virtual interface replaces the seed's
// per-dispatch std::function pair: no type-erased call overhead and no
// allocation to wire a host up.
class VmHost {
 public:
  virtual ~VmHost() = default;
  // A driver-internal event (kSignalSelf): route back to this driver.
  virtual void OnSelfSignal(const Event& event) = 0;
  // A native library invocation (kSignalLib).
  virtual void OnLibSignal(LibraryId lib, LibraryFunctionId fn,
                           std::span<const int32_t> args) = 0;
};

class Vm {
 public:
  // What a handler execution produced.
  enum class Outcome : uint8_t {
    kDone,       // ran to completion, no result
    kValue,      // `return expr;` -> scalar result
    kArray,      // `return arr;`  -> byte-buffer result
    kNoHandler,  // driver does not handle this event
    kTrap,       // fault: div/0, dynamic array subscript, watchdog
  };

  struct ExecResult {
    Outcome outcome = Outcome::kDone;
    int32_t value = 0;
    // kArray results view VM-owned array storage: zero-allocation on the hot
    // path.  Valid until the next Dispatch on (or mutation of) this VM; copy
    // out to keep it longer.
    std::span<const uint8_t> array;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    Status trap;  // set when outcome == kTrap
  };

  // The image is pre-verified and pre-decoded; construction cannot fail.
  explicit Vm(std::shared_ptr<const DecodedImage> image);

  // Executes the handler for `event` (if any) over the decoded stream.
  // Arguments beyond the handler's declared count (or the 4 local slots) are
  // ignored; missing ones read as zero.  `host` may be null (signals are
  // dropped).  Handlers the abstract interpreter proved under the watchdog
  // budget run without the per-instruction watchdog counter; trap sites it
  // proved safe were rewritten to unchecked opcodes at decode time.
  ExecResult Dispatch(const Event& event, VmHost* host);

  // The seed interpreter: walks the raw bytecode with per-step validity,
  // bounds and stack checks.  Kept for differential testing and the
  // decoded-vs-seed benchmark; accounting is bit-identical to Dispatch.
  ExecResult DispatchReference(const Event& event, VmHost* host);

  // --- introspection (tests, debugger-style tooling) -----------------------
  int32_t global(size_t slot) const { return slot < globals_.size() ? globals_[slot] : 0; }
  void set_global(size_t slot, int32_t v);
  std::span<const uint8_t> array(size_t index) const;
  const DriverImage& image() const { return decoded_->image(); }
  const DecodedImage& decoded() const { return *decoded_; }
  uint64_t total_instructions() const { return total_instructions_; }
  uint64_t total_cycles() const { return total_cycles_; }
  double MicrosPerInstructionAtMcuClock() const;

 private:
  // The decoded-stream hot loop.  The watchdog counter compiles out for
  // handlers with a proven execution bound.
  template <bool kCheckWatchdog>
  ExecResult DispatchImpl(const DecodedHandler& handler, const Event& event, VmHost* host);

  // Truncates a 32-bit value to a declared storage type (JVM-style).
  static int32_t TruncateTo(DslType type, int32_t v);

  std::shared_ptr<const DecodedImage> decoded_;
  std::vector<int32_t> globals_;
  std::vector<std::vector<uint8_t>> arrays_;
  uint64_t total_instructions_ = 0;
  uint64_t total_cycles_ = 0;
};

}  // namespace micropnp

#endif  // SRC_RT_VM_H_
