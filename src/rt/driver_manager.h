// The μPnP driver manager (Section 4.2).
//
// "The driver manager interfaces with the peripheral controller and keeps
// track of the peripherals and drivers that are available.  This module also
// integrates closely with the µPnP network stack and provides operations
// that enable remote deployment and removal of device drivers."
//
// Images are stored by device type id (DEPLOY/REMOVE/DISCOVER of Figure 8's
// manager API); activation binds an image to a channel as a DriverHost and
// fires init/destroy lifecycle events (Section 4.1).
//
// Installation runs the load-time verifier (src/rt/decoded_image.h): a
// malformed image is rejected with a Status at DEPLOY time — over the air or
// local — never discovered mid-handler.  Decoded images are cached keyed by
// image CRC, so re-plugging the same device type (or re-installing an
// identical image) skips verify+decode entirely and every concurrent host
// for one device type shares a single decoded stream.

#ifndef SRC_RT_DRIVER_MANAGER_H_
#define SRC_RT_DRIVER_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/rt/decoded_image.h"
#include "src/rt/driver_host.h"

namespace micropnp {

// Process-wide verify-once store of decoded driver images, shared by every
// driver manager in a deployment (across runtime shards).  A fleet of 10k
// Things installing the same driver verifies and decodes it exactly once;
// everyone else gets the shared immutable DecodedImage.
//
// Thread-safety: the mutex guards only the CRC -> image map on the install
// path.  A DecodedImage is immutable after decode, so shards execute from
// shared images lock-free; the shared_ptr control block handles lifetime.
// Hits byte-compare against the stored image so a CRC collision can never
// bypass verification.
class SharedDecodeCache {
 public:
  Result<std::shared_ptr<const DecodedImage>> GetOrDecode(const DriverImage& image, bool* hit);

  uint64_t hits() const;
  uint64_t misses() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<uint32_t, std::shared_ptr<const DecodedImage>> by_crc_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

class DriverManager {
 public:
  // Decode-cache bound: entries no longer referenced by an installed image
  // are evicted once the cache is full, so driver-version churn on a
  // long-lived node cannot grow memory without bound.
  static constexpr size_t kDecodeCacheCapacity = 32;

  // `shared_cache` (optional) is consulted before the local decode cache;
  // it must outlive the manager.  The sharded Deployment passes one cache
  // to every Thing so identical images decode once per process.
  DriverManager(Scheduler& scheduler, EventRouter& router,
                SharedDecodeCache* shared_cache = nullptr);

  // ---- driver image store (remote DEPLOY/REMOVE/DISCOVER) -----------------
  // Verifies + decodes the image; statically invalid images are rejected
  // here with the verifier's Status.
  Status InstallImage(const DriverImage& image);
  Status RemoveImage(DeviceTypeId device_id);  // fails while a host uses it
  bool HasDriverFor(DeviceTypeId device_id) const;
  const DriverImage* ImageFor(DeviceTypeId device_id) const;
  std::shared_ptr<const DecodedImage> DecodedFor(DeviceTypeId device_id) const;
  std::vector<DeviceTypeId> InstalledDrivers() const;
  // Handled-event export for the model layer; empty when no image installed.
  std::vector<EventId> HandledEventsFor(DeviceTypeId device_id) const {
    const std::shared_ptr<const DecodedImage> decoded = DecodedFor(device_id);
    return decoded == nullptr ? std::vector<EventId>{} : decoded->HandledEvents();
  }

  // ---- activation ----------------------------------------------------------
  // Binds the stored image for `device_id` to `channel`, fires init.
  Status Activate(ChannelId channel, DeviceTypeId device_id, ChannelBus& bus);
  // Fires destroy, tears down libraries, releases the slot.
  Status Deactivate(ChannelId channel);
  DriverHost* HostForChannel(ChannelId channel);
  DriverHost* HostForDevice(DeviceTypeId device_id);
  size_t active_hosts() const { return hosts_.size(); }

  // Drains the event router into the active hosts, each pump bounded to the
  // number of events pending at entry (newly posted errors may still
  // preempt within that budget); a still-busy router reschedules itself on
  // the scheduler so event storms cannot livelock a pump.  Wired to the
  // scheduler: any Post schedules a pump, so running the scheduler processes
  // events.
  size_t DispatchPending();

  EventRouter& router() { return router_; }

  // Over-the-air installs handled (Table 4's driver installation step).
  uint64_t installs() const { return installs_; }
  // Installs that reused a cached decoded image (verify+decode skipped).
  uint64_t decode_cache_hits() const { return decode_cache_hits_; }

 private:
  void SchedulePump();

  Scheduler& scheduler_;
  EventRouter& router_;
  SharedDecodeCache* shared_cache_;
  std::map<DeviceTypeId, std::shared_ptr<const DecodedImage>> images_;
  // Verified+decoded images by image CRC (hits also byte-compare, so a CRC
  // collision cannot bypass verification).  Survives RemoveImage so a
  // remove/re-deploy cycle of the same bytes is free; bounded by
  // kDecodeCacheCapacity with unused entries evicted first.
  std::map<uint32_t, std::shared_ptr<const DecodedImage>> decode_cache_;
  std::map<ChannelId, std::unique_ptr<DriverHost>> hosts_;
  bool pump_scheduled_ = false;
  uint64_t installs_ = 0;
  uint64_t decode_cache_hits_ = 0;
};

}  // namespace micropnp

#endif  // SRC_RT_DRIVER_MANAGER_H_
