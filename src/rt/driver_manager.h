// The μPnP driver manager (Section 4.2).
//
// "The driver manager interfaces with the peripheral controller and keeps
// track of the peripherals and drivers that are available.  This module also
// integrates closely with the µPnP network stack and provides operations
// that enable remote deployment and removal of device drivers."
//
// Images are stored by device type id (DEPLOY/REMOVE/DISCOVER of Figure 8's
// manager API); activation binds an image to a channel as a DriverHost and
// fires init/destroy lifecycle events (Section 4.1).

#ifndef SRC_RT_DRIVER_MANAGER_H_
#define SRC_RT_DRIVER_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/rt/driver_host.h"

namespace micropnp {

class DriverManager {
 public:
  DriverManager(Scheduler& scheduler, EventRouter& router);

  // ---- driver image store (remote DEPLOY/REMOVE/DISCOVER) -----------------
  Status InstallImage(const DriverImage& image);
  Status RemoveImage(DeviceTypeId device_id);  // fails while a host uses it
  bool HasDriverFor(DeviceTypeId device_id) const;
  const DriverImage* ImageFor(DeviceTypeId device_id) const;
  std::vector<DeviceTypeId> InstalledDrivers() const;

  // ---- activation ----------------------------------------------------------
  // Binds the stored image for `device_id` to `channel`, fires init.
  Status Activate(ChannelId channel, DeviceTypeId device_id, ChannelBus& bus);
  // Fires destroy, tears down libraries, releases the slot.
  Status Deactivate(ChannelId channel);
  DriverHost* HostForChannel(ChannelId channel);
  DriverHost* HostForDevice(DeviceTypeId device_id);
  size_t active_hosts() const { return hosts_.size(); }

  // Drains the event router into the active hosts.  Wired to the scheduler:
  // any Post schedules a pump, so running the scheduler processes events.
  size_t DispatchPending();

  EventRouter& router() { return router_; }

  // Over-the-air installs handled (Table 4's driver installation step).
  uint64_t installs() const { return installs_; }

 private:
  void SchedulePump();

  Scheduler& scheduler_;
  EventRouter& router_;
  std::map<DeviceTypeId, DriverImage> images_;
  std::map<ChannelId, std::unique_ptr<DriverHost>> hosts_;
  bool pump_scheduled_ = false;
  uint64_t installs_ = 0;
};

}  // namespace micropnp

#endif  // SRC_RT_DRIVER_MANAGER_H_
