// The peripheral controller (Section 4.2).
//
// "The peripheral controller interfaces with the µPnP control board and
// implements the hardware identification algorithm.  Peripheral connection
// or disconnection is detected based upon an interrupt.  The peripheral
// identification circuit is then activated and the timed pulse that results
// is read via a digital I/O pin."
//
// The controller owns the control board and one ChannelBus per channel.  On
// interrupt it runs the identification scan; after the scan's (simulated)
// duration it muxes each channel onto the identified peripheral's bus and
// notifies the listener (the Thing) of connects/disconnects — which drives
// driver activation and the network advertisement flow.

#ifndef SRC_RT_PERIPHERAL_CONTROLLER_H_
#define SRC_RT_PERIPHERAL_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/hw/control_board.h"
#include "src/periph/peripheral.h"
#include "src/rt/driver_manager.h"
#include "src/sim/scheduler.h"

namespace micropnp {

class PeripheralController {
 public:
  PeripheralController(Scheduler& scheduler, const ControlBoardConfig& config, Rng& rng);

  int num_channels() const { return board_.num_channels(); }
  ChannelBus& bus(ChannelId channel) { return *buses_[channel]; }
  const ControlBoard& board() const { return board_; }
  ControlBoard& board() { return board_; }

  // Physically connects/disconnects a peripheral.  The identification scan
  // runs asynchronously on the simulation clock; listeners fire when it
  // completes.
  Status Plug(ChannelId channel, Peripheral* peripheral);
  Status Unplug(ChannelId channel);

  // Identified device on a channel (nullopt before identification or when
  // empty).
  std::optional<DeviceTypeId> identified(ChannelId channel) const;
  Peripheral* peripheral(ChannelId channel);

  // Fired after each scan, once per changed channel.
  // connected=true: `id` was identified on `channel` (bus already muxed).
  // connected=false: the channel became empty.
  using ChangeListener = std::function<void(ChannelId, DeviceTypeId id, bool connected)>;
  void set_change_listener(ChangeListener listener) { listener_ = std::move(listener); }

  // Most recent scan statistics (duration/energy, Section 6.1).
  const std::optional<ScanResult>& last_scan() const { return last_scan_; }
  uint64_t scans() const { return scans_; }
  // Duration of the identification process for the most recent scan; the
  // Thing adds this to Table 4's network time for the end-to-end 488 ms
  // figure of Section 8.
  Seconds last_scan_duration() const;

 private:
  void OnInterrupt();
  void ApplyScan(const ScanResult& scan);

  Scheduler& scheduler_;
  Rng rng_;  // per-plug resistor manufacturing variation
  ControlBoard board_;
  std::vector<std::unique_ptr<ChannelBus>> buses_;
  std::vector<Peripheral*> plugged_;                    // physical presence
  std::vector<std::optional<DeviceTypeId>> identified_; // post-scan state
  ChangeListener listener_;
  bool scan_scheduled_ = false;
  std::optional<ScanResult> last_scan_;
  uint64_t scans_ = 0;
};

}  // namespace micropnp

#endif  // SRC_RT_PERIPHERAL_CONTROLLER_H_
