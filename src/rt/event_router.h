// The μPnP event router (Section 4.2).
//
// "The router implements two queues: a regular FIFO queue for event
// processing and a priority queue for dispatching error messages.  When an
// event is placed inside a queue, control is immediately transferred back to
// the originator."
//
// Events are addressed to driver slots (one slot per active driver
// instance).  DispatchOne drains the error queue before the regular queue.
// The router charges an AVR cycle cost per enqueue and per dispatch,
// calibrated so that routing one event costs ~77.79 us at 16 MHz — the
// Section 6.2 measurement.

#ifndef SRC_RT_EVENT_ROUTER_H_
#define SRC_RT_EVENT_ROUTER_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/rt/event.h"

namespace micropnp {

// Cycle model at 16 MHz: enqueue + dispatch = 1244 cycles = 77.75 us.
inline constexpr uint32_t kRouterEnqueueCycles = 420;
inline constexpr uint32_t kRouterDispatchCycles = 824;
inline constexpr double kMcuClockHz = 16e6;

class EventRouter {
 public:
  static constexpr size_t kQueueDepth = 16;  // embedded queue dimensioning

  using Sink = std::function<void(int driver_slot, const Event&)>;

  EventRouter() = default;

  // Enqueues an event; error events go to the priority queue (Event::is_error
  // decides; PostError forces it for runtime-generated faults).  Returns
  // false if the queue is full (event dropped, counted).
  bool Post(int driver_slot, const Event& event);
  bool PostError(int driver_slot, const Event& event);

  // Dispatches the highest-priority pending event into `sink`.  Errors
  // first, then FIFO.  Returns false when idle.
  bool DispatchOne(const Sink& sink);

  // Drains at most as many events as were pending at entry, so a handler
  // that re-posts on every dispatch cannot livelock the caller; leftover and
  // newly posted work waits for the next drain.  (Error events posted during
  // the drain still preempt within that budget — each one then displaces one
  // entry that was pending at entry.)  Returns the number dispatched.
  size_t ProcessAll(const Sink& sink);

  bool idle() const { return regular_.empty() && errors_.empty(); }
  size_t pending() const { return regular_.size() + errors_.size(); }

  // Invoked after every successful enqueue; the driver manager uses this to
  // schedule a dispatch pump so posts from timer/bus callbacks get processed
  // without an explicit pump call.
  using WakeupHook = std::function<void()>;
  void set_on_post(WakeupHook hook) { on_post_ = std::move(hook); }

  uint64_t events_dispatched() const { return events_dispatched_; }
  uint64_t events_dropped() const { return events_dropped_; }
  uint64_t cycles() const { return cycles_; }
  double MicrosAtMcuClock() const { return static_cast<double>(cycles_) / kMcuClockHz * 1e6; }

 private:
  struct Entry {
    int slot;
    Event event;
  };

  std::deque<Entry> regular_;
  std::deque<Entry> errors_;
  WakeupHook on_post_;
  uint64_t events_dispatched_ = 0;
  uint64_t events_dropped_ = 0;
  uint64_t cycles_ = 0;
};

}  // namespace micropnp

#endif  // SRC_RT_EVENT_ROUTER_H_
