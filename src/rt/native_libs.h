// Native interconnect libraries (Section 4.2).
//
// "A set of native interconnect libraries implement all low-level platform
// specific I/O calls ... Every library exposes its API towards drivers as a
// series of standard event handlers."
//
// Each library instance is bound to one driver slot and one channel bus.
// Invocations are split-phase: the call returns immediately; results
// (`newdata`, `tick`) and faults (error events) are posted to the event
// router addressed to the owning driver, arriving after the simulated wire /
// conversion time.

#ifndef SRC_RT_NATIVE_LIBS_H_
#define SRC_RT_NATIVE_LIBS_H_

#include <cstdint>
#include <memory>
#include <span>

#include "src/bus/channel_bus.h"
#include "src/common/units.h"
#include "src/dsl/native_interface.h"
#include "src/hw/energy_model.h"
#include "src/rt/event.h"
#include "src/rt/event_router.h"
#include "src/sim/scheduler.h"

namespace micropnp {

// Shared wiring every library needs.
struct NativeLibContext {
  Scheduler* scheduler = nullptr;
  ChannelBus* bus = nullptr;
  EventRouter* router = nullptr;
  int driver_slot = 0;
  // Interconnect energy accounting (feeds the Figure 12 "+bus" curves).
  Joules* energy_accumulator = nullptr;
};

class NativeLibrary {
 public:
  explicit NativeLibrary(const NativeLibContext& ctx) : ctx_(ctx) {}
  virtual ~NativeLibrary() = default;

  virtual LibraryId id() const = 0;
  // Handles a kSignalLib instruction.  Problems surface as error events
  // posted to the driver, not as return values (Section 4.1 error handling).
  virtual void Invoke(LibraryFunctionId fn, std::span<const int32_t> args) = 0;
  // Driver being destroyed: release claimed hardware, cancel timers.
  virtual void Teardown() {}

 protected:
  void PostToDriver(const Event& e) { ctx_.router->Post(ctx_.driver_slot, e); }
  void PostErrorToDriver(EventId error) { ctx_.router->PostError(ctx_.driver_slot, Event::Of(error)); }
  void ChargeEnergy(BusKind bus) {
    if (ctx_.energy_accumulator != nullptr) {
      *ctx_.energy_accumulator += InterconnectEnergyPerOperation(bus);
    }
  }

  NativeLibContext ctx_;
};

// Factory used by the driver host when instantiating a driver's imports.
std::unique_ptr<NativeLibrary> MakeNativeLibrary(LibraryId id, const NativeLibContext& ctx);

// --- concrete libraries (exposed for focused unit tests) --------------------

class AdcNativeLibrary : public NativeLibrary {
 public:
  using NativeLibrary::NativeLibrary;
  LibraryId id() const override { return kLibAdc; }
  void Invoke(LibraryFunctionId fn, std::span<const int32_t> args) override;
  void Teardown() override { initialized_ = false; }

 private:
  bool initialized_ = false;
};

class UartNativeLibrary : public NativeLibrary {
 public:
  // Inter-byte timeout while a frame is being assembled (Listing 1's
  // `timeOut` error).
  static constexpr double kInterByteTimeoutMs = 200.0;

  using NativeLibrary::NativeLibrary;
  LibraryId id() const override { return kLibUart; }
  void Invoke(LibraryFunctionId fn, std::span<const int32_t> args) override;
  void Teardown() override;

 private:
  void OnByte(uint8_t byte);
  void ArmTimeout();

  bool claimed_ = false;
  bool listening_ = false;
  bool frame_open_ = false;
  uint64_t timeout_generation_ = 0;
};

class I2cNativeLibrary : public NativeLibrary {
 public:
  using NativeLibrary::NativeLibrary;
  LibraryId id() const override { return kLibI2c; }
  void Invoke(LibraryFunctionId fn, std::span<const int32_t> args) override;

 private:
  void Read(int32_t addr, int32_t reg, int bytes);
  bool initialized_ = false;
};

class SpiNativeLibrary : public NativeLibrary {
 public:
  using NativeLibrary::NativeLibrary;
  LibraryId id() const override { return kLibSpi; }
  void Invoke(LibraryFunctionId fn, std::span<const int32_t> args) override;

 private:
  bool initialized_ = false;
};

class TimerNativeLibrary : public NativeLibrary {
 public:
  using NativeLibrary::NativeLibrary;
  LibraryId id() const override { return kLibTimer; }
  void Invoke(LibraryFunctionId fn, std::span<const int32_t> args) override;
  void Teardown() override;

 private:
  void Tick(uint64_t generation, double period_ms);

  uint64_t generation_ = 0;  // bumping cancels outstanding ticks
  bool running_ = false;
};

}  // namespace micropnp

#endif  // SRC_RT_NATIVE_LIBS_H_
