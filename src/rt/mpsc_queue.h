// Bounded multi-producer single-consumer queue — the only channel through
// which work crosses a shard boundary in the parallel runtime.
//
// Producers are worker threads of *other* shards handing off datagram
// deliveries (and, rarely, control closures) to the owning shard; the single
// consumer is the owning shard's worker, which drains the whole queue once
// per synchronization quantum and feeds the entries into its local timing
// wheel.  The traffic pattern is therefore bursty batch-drain, not
// item-at-a-time ping-pong, so a short critical section around a grow-free
// ring keeps producers wait-bounded without the memory-reclamation hazards of
// a lock-free list.
//
// Contract:
//  * TryPush never blocks.  A full or closed queue rejects the item (counted;
//    the caller decides whether that means "drop the frame" — the network
//    fabric treats overflow like a lost datagram, which keeps the system
//    deadlock-free even if a consumer stalls at a barrier).
//  * FIFO per producer: a producer's items are drained in the order it pushed
//    them (the queue is in fact globally FIFO in lock-acquisition order).
//  * Drain-on-shutdown: Close() fails further pushes but leaves everything
//    already queued drainable, so shutdown cannot strand accepted work.

#ifndef SRC_RT_MPSC_QUEUE_H_
#define SRC_RT_MPSC_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace micropnp {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
    items_.reserve(capacity_ < 4096 ? capacity_ : 4096);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Producer side (any thread).  Returns false — leaving the queue unchanged —
  // when the queue is full or closed; both rejections are counted.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      ++rejected_closed_;
      return false;
    }
    if (items_.size() >= capacity_) {
      ++rejected_full_;
      return false;
    }
    items_.push_back(std::move(item));
    return true;
  }

  // Consumer side (owning thread only).  Moves every queued item into `out`
  // (appended, oldest first) and returns how many were moved.
  size_t DrainInto(std::vector<T>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t n = items_.size();
    if (n == 0) {
      return 0;
    }
    if (out.empty()) {
      out.swap(items_);
    } else {
      out.reserve(out.size() + n);
      for (T& item : items_) {
        out.push_back(std::move(item));
      }
      items_.clear();
    }
    return n;
  }

  // Fails all future pushes.  Items already accepted remain drainable.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  uint64_t rejected_full() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_full_;
  }

  uint64_t rejected_closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<T> items_;
  bool closed_ = false;
  uint64_t rejected_full_ = 0;
  uint64_t rejected_closed_ = 0;
};

}  // namespace micropnp

#endif  // SRC_RT_MPSC_QUEUE_H_
