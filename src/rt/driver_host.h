// A driver host: one installed driver bound to one channel.
//
// The host owns the VM instance and the native library instances for the
// driver's imports, and implements the VmHost interface: `signal this.*`
// routes back into the event router, `signal lib.*` into the native
// libraries — a direct virtual call instead of the seed's per-dispatch
// std::function pair.  Handler results (`return` in the DSL) are surfaced
// through the result callback, which the Thing routes to a pending remote
// read, an active stream, or a local observer (Section 5.3.1).
//
// Hosts share one immutable DecodedImage per device type (see
// DriverManager's decode cache); only globals/arrays are per-host state.

#ifndef SRC_RT_DRIVER_HOST_H_
#define SRC_RT_DRIVER_HOST_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/bus/channel_bus.h"
#include "src/rt/decoded_image.h"
#include "src/rt/event_router.h"
#include "src/rt/native_libs.h"
#include "src/rt/vm.h"
#include "src/sim/scheduler.h"

namespace micropnp {

// A value a driver produced with `return`.
struct ProducedValue {
  bool is_array = false;
  int32_t scalar = 0;
  std::vector<uint8_t> bytes;
};

class DriverHost final : public VmHost {
 public:
  DriverHost(std::shared_ptr<const DecodedImage> image, int slot, Scheduler& scheduler,
             ChannelBus& bus, EventRouter& router);

  int slot() const { return slot_; }
  DeviceTypeId device_id() const { return vm_.image().device_id; }

  // Router sink entry point: executes the driver's handler for `event`.
  void HandleEvent(const Event& event);

  // --- VmHost ---------------------------------------------------------------
  void OnSelfSignal(const Event& event) override;
  void OnLibSignal(LibraryId lib, LibraryFunctionId fn,
                   std::span<const int32_t> args) override;

  using ResultHandler = std::function<void(const ProducedValue&)>;
  void set_result_handler(ResultHandler handler) { result_handler_ = std::move(handler); }

  // Releases claimed hardware (called around the destroy event).
  void Teardown();

  Vm& vm() { return vm_; }
  const Vm& vm() const { return vm_; }
  Joules interconnect_energy() const { return interconnect_energy_; }
  uint64_t traps() const { return traps_; }
  uint64_t events_handled() const { return events_handled_; }

 private:
  NativeLibrary* LibraryFor(LibraryId id);

  int slot_;
  Scheduler& scheduler_;
  ChannelBus& bus_;
  EventRouter& router_;
  Vm vm_;
  std::array<std::unique_ptr<NativeLibrary>, kLibraryCount> libs_;
  ResultHandler result_handler_;
  Joules interconnect_energy_{0.0};
  uint64_t traps_ = 0;
  uint64_t events_handled_ = 0;
};

}  // namespace micropnp

#endif  // SRC_RT_DRIVER_HOST_H_
