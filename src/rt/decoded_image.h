// Load-time verified, pre-decoded driver images.
//
// The seed interpreter re-validated opcodes, re-checked code bounds and
// re-decoded variable-width operands on every instruction.  An embedded
// runtime does that work once, at driver-install time: the image is verified
// (valid opcodes, complete operands, branch targets on instruction
// boundaries, static global/array/local indices in range, worst-case operand
// stack depth within the VM's fixed stack) and lowered into a fixed-width
// instruction stream with resolved jump targets, pre-looked-up signal
// descriptors and per-op cycle costs.  `Vm::Dispatch` then runs straight
// over the decoded stream with no per-step validity or bounds checks; only
// faults that depend on runtime state remain as traps (division by zero,
// dynamic array subscripts, the watchdog).
//
// A DecodedImage is immutable after Decode and carries no per-driver mutable
// state, so one decoded image is safely shared by every VM instance for the
// same device type (see DriverManager's CRC-keyed decode cache).

#ifndef SRC_RT_DECODED_IMAGE_H_
#define SRC_RT_DECODED_IMAGE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/dsl/bytecode.h"
#include "src/dsl/driver_image.h"

namespace micropnp {

struct ImageAnalysis;  // src/rt/abstract_interp.h

// Dimensioning of the embedded VM (mirrored by the footprint model).  The
// verifier proves every handler stays within this depth, which is what lets
// the interpreter push and pop with no per-step bounds checks.
inline constexpr size_t kVmStackDepth = 32;

// Events carry at most four arguments; handlers get the same four local
// slots.  The verifier rejects images that declare more.
inline constexpr size_t kMaxHandlerArgs = 4;

// One pre-decoded instruction.  Fixed width: the interpreter advances by
// index, never by operand size.
struct DecodedInsn {
  int32_t imm = 0;      // immediate constant; branch target as a decoded index
  uint32_t cycles = 0;  // modeled AVR cycle cost, resolved at decode time
  uint16_t pc = 0;      // original bytecode offset (trap messages, tooling)
  Op op = Op::kNop;
  uint8_t a = 0;  // first u8 operand: slot / array / local / event / lib id
  uint8_t b = 0;  // second u8 operand: lib fn id; storage type for store.g
  uint8_t c = 0;  // resolved argument count for signal ops
};

struct DecodedHandler {
  EventId event = 0;
  uint8_t argc = 0;
  bool watchdog_safe = false;  // WCET proven under the watchdog budget
  uint32_t entry = 0;          // index into code()
  uint32_t max_stack = 0;      // worst-case operand stack depth (static analysis)
  uint64_t wcet_instructions = 0;  // longest feasible path, 0 when unbounded
};

// Knobs for the abstract-interpretation stage of Decode.  The defaults are
// what the runtime wants: proven-unsafe images rejected at install time and
// proven-safe trap sites rewritten to their unchecked forms.  updl_lint
// turns `reject_unsafe` off to report every finding instead of stopping at
// the first, and the differential tests turn `elide_proven_traps` off to
// keep the fully-checked instruction stream.
struct DecodeOptions {
  bool elide_proven_traps = true;
  bool reject_unsafe = true;
};

class DecodedImage {
 public:
  // Verifies `image` and lowers it into the decoded form.  Every statically
  // detectable fault — invalid opcode, truncated instruction, branch off an
  // instruction boundary or out of code, out-of-range global/array/local
  // slot, signal to an unhandled event or unknown native function, handler
  // off an instruction boundary or with too many parameters, execution
  // falling off the end of the code, and operand stack overflow/underflow —
  // is rejected here with a Status instead of trapping mid-handler.
  // `image_crc` lets a caller that already computed DriverImage::ImageCrc()
  // (e.g. for a cache probe) avoid a second serialize+CRC pass.
  static Result<DecodedImage> Decode(const DriverImage& image,
                                     std::optional<uint32_t> image_crc = std::nullopt,
                                     const DecodeOptions& options = {});

  // Decode into shared ownership (the form DriverManager caches and every
  // DriverHost/Vm holds).
  static Result<std::shared_ptr<const DecodedImage>> DecodeShared(
      const DriverImage& image, std::optional<uint32_t> image_crc = std::nullopt,
      const DecodeOptions& options = {});

  const DriverImage& image() const { return image_; }
  std::span<const DecodedInsn> code() const { return insns_; }
  std::span<const DecodedHandler> handlers() const { return handlers_; }

  // O(1) handler lookup: a dense 256-entry table indexed by event id
  // replaces the seed's linear scan.
  const DecodedHandler* FindHandler(EventId event) const {
    const int16_t index = handler_table_[event];
    return index < 0 ? nullptr : &handlers_[static_cast<size_t>(index)];
  }

  // Event ids this image handles, in handler-table order.  This is the
  // runtime's model-metadata export: the Thing condenses it into the
  // kModelFacets TLV of its advertisements (src/model/device_model.h).
  std::vector<EventId> HandledEvents() const {
    std::vector<EventId> events;
    events.reserve(handlers_.size());
    for (const DecodedHandler& handler : handlers_) {
      events.push_back(handler.event);
    }
    return events;
  }

  // CRC-32 of the serialized image — the decode-cache key: two installs of
  // byte-identical images share one DecodedImage.
  uint32_t crc() const { return crc_; }

  // Worst-case operand stack depth across all handlers (<= kVmStackDepth by
  // construction; the verifier rejected anything deeper).
  uint32_t max_stack_depth() const;

  // The abstract-interpretation result Decode ran over the pre-specialization
  // stream: every finding (errors, warnings, notes), per-handler WCET and the
  // per-site proof bits.  Always populated, even with reject_unsafe off —
  // this is what updl_lint reports from.
  const ImageAnalysis& analysis() const;  // defined in the .cpp (complete type)

 private:
  DecodedImage() { handler_table_.fill(-1); }

  DriverImage image_;
  std::vector<DecodedInsn> insns_;
  std::vector<DecodedHandler> handlers_;
  std::array<int16_t, 256> handler_table_;
  std::shared_ptr<const ImageAnalysis> analysis_;
  uint32_t crc_ = 0;
};

}  // namespace micropnp

#endif  // SRC_RT_DECODED_IMAGE_H_
