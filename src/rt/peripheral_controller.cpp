#include "src/rt/peripheral_controller.h"

#include "src/common/logging.h"

namespace micropnp {

PeripheralController::PeripheralController(Scheduler& scheduler, const ControlBoardConfig& config,
                                           Rng& rng)
    : scheduler_(scheduler), rng_(rng.Fork()), board_(config, rng) {
  buses_.reserve(board_.num_channels());
  for (int i = 0; i < board_.num_channels(); ++i) {
    buses_.push_back(std::make_unique<ChannelBus>(scheduler_));
  }
  plugged_.assign(board_.num_channels(), nullptr);
  identified_.assign(board_.num_channels(), std::nullopt);
  board_.set_interrupt_handler([this] { OnInterrupt(); });
}

Status PeripheralController::Plug(ChannelId channel, Peripheral* peripheral) {
  if (peripheral == nullptr) {
    return InvalidArgument("null peripheral");
  }
  if (channel >= plugged_.size()) {
    return OutOfRange("channel out of range");
  }
  // Manufacture the identification plug for this peripheral instance; the
  // resistor tolerances come from the controller's seeded stream, so
  // scenarios are deterministic per deployment seed.
  PeripheralPlug plug =
      MakePlugForId(board_.codec(), peripheral->type_id(), peripheral->bus(), rng_);
  MICROPNP_RETURN_IF_ERROR(board_.Connect(channel, plug));
  plugged_[channel] = peripheral;
  peripheral->AttachTo(*buses_[channel]);
  return OkStatus();
}

Status PeripheralController::Unplug(ChannelId channel) {
  if (channel >= plugged_.size()) {
    return OutOfRange("channel out of range");
  }
  if (plugged_[channel] == nullptr) {
    return NotFound("channel empty");
  }
  MICROPNP_RETURN_IF_ERROR(board_.Disconnect(channel));
  plugged_[channel]->DetachFrom(*buses_[channel]);
  plugged_[channel] = nullptr;
  return OkStatus();
}

std::optional<DeviceTypeId> PeripheralController::identified(ChannelId channel) const {
  return channel < identified_.size() ? identified_[channel] : std::nullopt;
}

Peripheral* PeripheralController::peripheral(ChannelId channel) {
  return channel < plugged_.size() ? plugged_[channel] : nullptr;
}

Seconds PeripheralController::last_scan_duration() const {
  return last_scan_.has_value() ? last_scan_->duration : Seconds(0.0);
}

void PeripheralController::OnInterrupt() {
  if (scan_scheduled_) {
    return;  // a scan is already pending; it will observe the latest state
  }
  scan_scheduled_ = true;
  // The scan result (including its duration) is computed by the board model;
  // the controller applies it after that duration elapses on the simulation
  // clock — modelling the MCU blocked in the identification routine.
  scheduler_.ScheduleAfter(SimTime::FromNanos(0), [this] {
    ScanResult scan = board_.Scan();
    ++scans_;
    last_scan_ = scan;
    scheduler_.ScheduleAfter(SimTime::FromSeconds(scan.duration.value()),
                             [this, scan] {
                               scan_scheduled_ = false;
                               ApplyScan(scan);
                               // Plug changes racing with the scan re-raise
                               // the interrupt for another pass.
                               if (board_.interrupt_pending()) {
                                 OnInterrupt();
                               }
                             });
  });
}

void PeripheralController::ApplyScan(const ScanResult& scan) {
  for (ChannelId ch = 0; ch < scan.channels.size(); ++ch) {
    const ChannelScan& result = scan.channels[ch];
    const std::optional<DeviceTypeId> before = identified_[ch];

    if (!result.occupied) {
      buses_[ch]->Select(std::nullopt);
      identified_[ch] = std::nullopt;
      if (before.has_value() && listener_) {
        listener_(ch, *before, /*connected=*/false);
      }
      continue;
    }
    if (!result.id.has_value()) {
      // Guard-band rejection: rescan rather than act on a dubious id.
      MLOG(kDebug, "rt") << "channel " << static_cast<int>(ch) << " pulse decode rejected; rescan";
      board_.set_interrupt_handler([this] { OnInterrupt(); });
      OnInterrupt();
      continue;
    }
    if (before == *result.id) {
      continue;  // unchanged
    }
    if (before.has_value() && listener_) {
      listener_(ch, *before, /*connected=*/false);
    }
    // Mux the connector pins onto the identified peripheral's bus (Table 1).
    const std::optional<BusKind> bus = board_.bus_for_channel(ch);
    buses_[ch]->Select(bus);
    identified_[ch] = *result.id;
    if (listener_) {
      listener_(ch, *result.id, /*connected=*/true);
    }
  }
}

}  // namespace micropnp
