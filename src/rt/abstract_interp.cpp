#include "src/rt/abstract_interp.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <utility>

#include "src/dsl/events.h"
#include "src/rt/vm.h"  // kVmWatchdogInstructions

namespace micropnp {
namespace {

constexpr int64_t kMin32 = INT32_MIN;
constexpr int64_t kMax32 = INT32_MAX;

// Delayed widening: a program point may refine this many times before its
// intervals are pushed to the widening targets, so counted loops with small
// constant bounds (`while i < 12`) converge to exact intervals instead of
// jumping straight to top.
constexpr uint32_t kWidenAfterJoins = 64;

// ---- interval domain --------------------------------------------------------

// The abstract value domain: an interval plus a known-nonzero bit.  The bit
// carries the one fact a pure interval cannot represent — "any int32 except
// zero" — which is exactly what the idiomatic division guard
// `if v != 0: ... / v` establishes.
struct Interval {
  int64_t lo = kMin32;
  int64_t hi = kMax32;
  bool nz = false;  // value proven != 0 even when [lo, hi] spans zero
  bool operator==(const Interval&) const = default;
  bool Contains(int64_t v) const { return lo <= v && v <= hi && !(nz && v == 0); }
  bool Empty() const { return lo > hi || (nz && lo == 0 && hi == 0); }
  bool IsSingleton() const { return lo == hi; }
};

constexpr Interval kTop{kMin32, kMax32};
Interval Single(int64_t v) { return {v, v, false}; }
bool IsZero(Interval v) { return v.lo == 0 && v.hi == 0 && !v.nz; }
Interval Hull(Interval a, Interval b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi), a.nz && b.nz};
}
Interval Meet(Interval a, Interval b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi), a.nz || b.nz};
}

// int32 wrap semantics: a result range that cannot overflow stays exact;
// anything that might wrap widens to top.
Interval Fit(int64_t lo, int64_t hi) {
  return (lo >= kMin32 && hi <= kMax32) ? Interval{lo, hi, false} : kTop;
}

Interval TypeRange(DslType t) {
  switch (t) {
    case DslType::kUint8:
    case DslType::kChar:
      return {0, 255};
    case DslType::kUint16:
      return {0, 65535};
    case DslType::kInt8:
      return {-128, 127};
    case DslType::kInt16:
      return {-32768, 32767};
    case DslType::kBool:
      return {0, 1};
    case DslType::kUint32:  // stored bit-for-bit in an int32 slot
    case DslType::kInt32:
      return kTop;
  }
  return kTop;
}

// Transfer of Vm::TruncateTo: an in-range value is preserved, anything that
// might wrap lands somewhere in the declared-type range.
Interval StoreTruncate(DslType t, Interval v) {
  const Interval range = TypeRange(t);
  if (t == DslType::kBool) {
    if (!v.Contains(0)) return Single(1);
    if (IsZero(v)) return Single(0);
    return range;
  }
  if (v.lo >= range.lo && v.hi <= range.hi) return v;
  return range;
}

// ---- abstract values --------------------------------------------------------

enum class Src : uint8_t { kNone, kGlobal, kLocal };

// A comparison result remembers what it compared: `<slot> rel <bound>`.
// Branches on it refine the slot's interval along each edge.
struct Pred {
  bool valid = false;
  Src var = Src::kNone;
  uint8_t slot = 0;
  Op rel = Op::kEq;
  Interval bound;
  bool operator==(const Pred&) const = default;
};

struct AbstractValue {
  Interval iv;
  Src src = Src::kNone;  // cell still equals the current content of `slot`
  uint8_t slot = 0;
  Pred pred;
  bool operator==(const AbstractValue&) const = default;
};

AbstractValue FromInterval(Interval iv) {
  AbstractValue v;
  v.iv = iv;
  return v;
}

AbstractValue JoinValue(const AbstractValue& a, const AbstractValue& b) {
  AbstractValue out;
  out.iv = Hull(a.iv, b.iv);
  if (a.src == b.src && a.slot == b.slot) {
    out.src = a.src;
    out.slot = a.slot;
  }
  if (a.pred == b.pred) {
    out.pred = a.pred;
  }
  return out;
}

// Abstract machine state at one program point: exact operand-stack shape,
// one interval per global slot, one per handler local.
struct AbsState {
  bool reached = false;
  std::vector<AbstractValue> stack;
  std::vector<Interval> globals;
  std::array<Interval, kMaxHandlerArgs> locals{};
  bool operator==(const AbsState&) const = default;
};

// ---- relation helpers -------------------------------------------------------

Op MirrorRel(Op op) {  // a rel b  <=>  b mirror(rel) a
  switch (op) {
    case Op::kLt: return Op::kGt;
    case Op::kLe: return Op::kGe;
    case Op::kGt: return Op::kLt;
    case Op::kGe: return Op::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

Op NegateRel(Op op) {
  switch (op) {
    case Op::kEq: return Op::kNe;
    case Op::kNe: return Op::kEq;
    case Op::kLt: return Op::kGe;
    case Op::kLe: return Op::kGt;
    case Op::kGt: return Op::kLe;
    case Op::kGe: return Op::kLt;
    default: return op;
  }
}

// Narrow `v` assuming `v rel bound` holds.  May return an empty interval
// (the branch edge is infeasible).
Interval RefineByRel(Interval v, Op rel, Interval bound) {
  switch (rel) {
    case Op::kLt:
      v.hi = std::min(v.hi, bound.hi - 1);
      break;
    case Op::kLe:
      v.hi = std::min(v.hi, bound.hi);
      break;
    case Op::kGt:
      v.lo = std::max(v.lo, bound.lo + 1);
      break;
    case Op::kGe:
      v.lo = std::max(v.lo, bound.lo);
      break;
    case Op::kEq:
      v = Meet(v, bound);
      break;
    case Op::kNe:
      if (bound.IsSingleton()) {
        if (v.lo == bound.lo) ++v.lo;
        if (v.hi == bound.lo) --v.hi;
        if (bound.lo == 0) v.nz = true;
      }
      break;
    default:
      break;
  }
  return v;
}

// 0/1 result interval of `a rel b` over intervals.
Interval CompareResult(Op op, Interval a, Interval b) {
  bool always = false, never = false;
  switch (op) {
    case Op::kEq:
      always = a.IsSingleton() && a == b;
      never = Meet(a, b).Empty();
      break;
    case Op::kNe:
      never = a.IsSingleton() && a == b;
      always = Meet(a, b).Empty();
      break;
    case Op::kLt:
      always = a.hi < b.lo;
      never = a.lo >= b.hi;
      break;
    case Op::kLe:
      always = a.hi <= b.lo;
      never = a.lo > b.hi;
      break;
    case Op::kGt:
      always = a.lo > b.hi;
      never = a.hi <= b.lo;
      break;
    case Op::kGe:
      always = a.lo >= b.hi;
      never = a.hi < b.lo;
      break;
    default:
      break;
  }
  if (always) return Single(1);
  if (never) return Single(0);
  return {0, 1};
}

// Binary arithmetic transfer (32-bit wrap semantics via Fit).
Interval ArithResult(Op op, Interval a, Interval b) {
  switch (op) {
    case Op::kAdd:
      return Fit(a.lo + b.lo, a.hi + b.hi);
    case Op::kSub:
      return Fit(a.lo - b.hi, a.hi - b.lo);
    case Op::kMul: {
      const int64_t c[] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
      return Fit(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
    }
    case Op::kDiv: {
      if (b.Contains(0)) return kTop;  // only non-trapping executions continue
      // b is one-signed, so the quotient is monotone in each operand and the
      // extremes sit at interval corners.  INT32_MIN / -1 wraps; Fit covers it.
      const int64_t c[] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
      return Fit(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
    }
    case Op::kMod: {
      if (b.Contains(0)) return kTop;
      const int64_t m =
          std::max(b.lo < 0 ? -b.lo : b.lo, b.hi < 0 ? -b.hi : b.hi) - 1;
      Interval r{-m, m};  // sign follows the dividend
      if (a.lo >= 0) r.lo = 0;
      if (a.hi <= 0) r.hi = 0;
      return r;
    }
    case Op::kShl:
      if (b.IsSingleton()) {
        const int64_t s = b.lo & 31;
        return Fit(a.lo << s, a.hi << s);
      }
      return kTop;
    case Op::kShr:
      if (b.IsSingleton()) {
        const int64_t s = b.lo & 31;
        return {a.lo >> s, a.hi >> s};  // arithmetic shift is monotone
      }
      // Variable shift: each result lies between the operand and its sign.
      return {a.lo >= 0 ? 0 : a.lo, a.hi >= 0 ? a.hi : -1};
    case Op::kBitAnd:
      if (a.IsSingleton() && b.IsSingleton()) return Single(a.lo & b.lo);
      if (a.lo >= 0 && b.lo >= 0) return {0, std::min(a.hi, b.hi)};
      return kTop;
    case Op::kBitOr:
      if (a.IsSingleton() && b.IsSingleton()) return Single(a.lo | b.lo);
      if (a.lo >= 0 && b.lo >= 0) {
        return Fit(std::max(a.lo, b.lo), a.hi + b.hi);  // a|b <= a+b for a,b >= 0
      }
      return kTop;
    case Op::kBitXor:
      if (a.IsSingleton() && b.IsSingleton()) return Single(a.lo ^ b.lo);
      if (a.lo >= 0 && b.lo >= 0) return Fit(0, a.hi + b.hi);
      return kTop;
    default:
      return kTop;
  }
}

// Maps the decode-time unchecked forms back to their wire opcode, so the
// analysis is well-defined even over an already-specialized stream.
Op BaseOp(Op op) {
  switch (op) {
    case Op::kDivUnchecked: return Op::kDiv;
    case Op::kModUnchecked: return Op::kMod;
    case Op::kLoadAUnchecked: return Op::kLoadA;
    case Op::kStoreAUnchecked: return Op::kStoreA;
    default: return op;
  }
}

std::string HexEvent(EventId event) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%02x", event);
  return buf;
}

// ---- the analyzer -----------------------------------------------------------

class Analyzer {
 public:
  Analyzer(const DriverImage& image, std::span<const DecodedInsn> code,
           std::span<const DecodedHandler> handlers)
      : image_(image), code_(code), handlers_(handlers) {}

  ImageAnalysis Run();

 private:
  // Facts accumulated per instruction across every handler that reaches it
  // (handlers may share code; a proof must hold for all of them).
  struct SiteFacts {
    bool reachable = false;
    bool div_safe = true;
    bool sub_safe = true;
  };

  void Emit(FindingKind kind, FindingSeverity severity, EventId event, uint16_t pc,
            std::string message) {
    for (const auto& [k, p] : emitted_) {
      if (k == kind && p == pc) return;  // shared code: report a site once
    }
    emitted_.emplace_back(kind, pc);
    if (severity == FindingSeverity::kError) ++error_count_;
    out_.findings.push_back(Finding{kind, severity, event, pc, std::move(message)});
  }

  Interval* SlotRef(AbsState& s, Src src, uint8_t slot) {
    if (src == Src::kGlobal && slot < s.globals.size()) return &s.globals[slot];
    if (src == Src::kLocal && slot < s.locals.size()) return &s.locals[slot];
    return nullptr;
  }

  void KillGlobal(AbsState& s, uint8_t slot) {
    for (AbstractValue& v : s.stack) {
      if (v.src == Src::kGlobal && v.slot == slot) v.src = Src::kNone;
      if (v.pred.valid && v.pred.var == Src::kGlobal && v.pred.slot == slot) v.pred = Pred{};
    }
  }

  void KillAllGlobals(AbsState& s) {
    for (size_t g = 0; g < s.globals.size(); ++g) {
      s.globals[g] = TypeRange(image_.scalar_types[g]);
    }
    for (AbstractValue& v : s.stack) {
      if (v.src == Src::kGlobal) v.src = Src::kNone;
      if (v.pred.valid && v.pred.var == Src::kGlobal) v.pred = Pred{};
    }
  }

  void AddEdge(uint32_t from, uint32_t to) {
    std::vector<uint32_t>& out = succs_[from];
    if (std::find(out.begin(), out.end(), to) == out.end()) out.push_back(to);
  }

  void Propagate(uint32_t idx, AbsState&& incoming);
  void Flow(uint32_t from, uint32_t to, AbsState&& state) {
    AddEdge(from, to);
    Propagate(to, std::move(state));
  }

  // `taken_nonzero`: refine `state` assuming the branch condition `cond` was
  // nonzero (true) / zero (false).  Returns false when the edge is infeasible.
  bool RefineBranch(AbsState& state, const AbstractValue& cond, bool taken_nonzero) {
    if (cond.pred.valid) {
      Interval* target = SlotRef(state, cond.pred.var, cond.pred.slot);
      if (target != nullptr) {
        const Op rel = taken_nonzero ? cond.pred.rel : NegateRel(cond.pred.rel);
        const Interval refined = RefineByRel(*target, rel, cond.pred.bound);
        if (refined.Empty()) return false;
        *target = refined;
      }
      return true;
    }
    if (cond.src != Src::kNone) {
      Interval* target = SlotRef(state, cond.src, cond.slot);
      if (target != nullptr) {
        Interval refined = *target;
        if (taken_nonzero) {
          if (refined.lo == 0) ++refined.lo;
          if (refined.hi == 0) --refined.hi;
          refined.nz = true;
        } else {
          refined = Meet(refined, Single(0));
        }
        if (refined.Empty()) return false;
        *target = refined;
      }
    }
    return true;
  }

  void Step(uint32_t idx, const DecodedHandler& h);
  void AnalyzeHandler(const DecodedHandler& h);
  void StructuralHandler(const DecodedHandler& h);
  void HarvestHandler(const DecodedHandler& h);
  void FinishHandler(const DecodedHandler& h, size_t errors_before);

  const DriverImage& image_;
  std::span<const DecodedInsn> code_;
  std::span<const DecodedHandler> handlers_;

  // Per-handler scratch, rebuilt by AnalyzeHandler.
  std::vector<AbsState> in_;
  std::vector<uint32_t> joins_;
  std::vector<std::vector<uint32_t>> succs_;
  std::deque<uint32_t> worklist_;
  bool bailed_ = false;

  // Whole-image accumulators.
  ImageAnalysis out_;
  std::vector<SiteFacts> facts_;
  std::array<bool, 256> stored_global_{};
  std::array<bool, 256> signalled_event_{};
  std::vector<std::pair<FindingKind, uint16_t>> emitted_;
  size_t error_count_ = 0;
};

void Analyzer::Propagate(uint32_t idx, AbsState&& incoming) {
  AbsState& dst = in_[idx];
  if (!dst.reached) {
    dst = std::move(incoming);
    dst.reached = true;
    worklist_.push_back(idx);
    return;
  }
  if (dst.stack.size() != incoming.stack.size()) {
    // Two paths meet at different operand-stack depths.  PR-2's structural
    // verifier allows this (its depth intervals just hull); the value
    // analysis cannot model it, so the handler falls back to structural
    // facts only.
    bailed_ = true;
    return;
  }
  AbsState joined = dst;
  for (size_t i = 0; i < joined.stack.size(); ++i) {
    joined.stack[i] = JoinValue(dst.stack[i], incoming.stack[i]);
  }
  for (size_t g = 0; g < joined.globals.size(); ++g) {
    joined.globals[g] = Hull(dst.globals[g], incoming.globals[g]);
  }
  for (size_t l = 0; l < joined.locals.size(); ++l) {
    joined.locals[l] = Hull(dst.locals[l], incoming.locals[l]);
  }
  if (joined == dst) return;
  if (++joins_[idx] > kWidenAfterJoins) {
    // Widen every still-growing bound to its target so the fixpoint is
    // reached in a bounded number of steps.
    for (size_t i = 0; i < joined.stack.size(); ++i) {
      if (joined.stack[i].iv.lo < dst.stack[i].iv.lo) joined.stack[i].iv.lo = kMin32;
      if (joined.stack[i].iv.hi > dst.stack[i].iv.hi) joined.stack[i].iv.hi = kMax32;
    }
    for (size_t g = 0; g < joined.globals.size(); ++g) {
      const Interval range = TypeRange(image_.scalar_types[g]);
      if (joined.globals[g].lo < dst.globals[g].lo) joined.globals[g].lo = range.lo;
      if (joined.globals[g].hi > dst.globals[g].hi) joined.globals[g].hi = range.hi;
    }
    for (size_t l = 0; l < joined.locals.size(); ++l) {
      if (joined.locals[l].lo < dst.locals[l].lo) joined.locals[l].lo = kMin32;
      if (joined.locals[l].hi > dst.locals[l].hi) joined.locals[l].hi = kMax32;
    }
  }
  dst = std::move(joined);
  worklist_.push_back(idx);
}

void Analyzer::Step(uint32_t idx, const DecodedHandler& h) {
  const DecodedInsn& insn = code_[idx];
  const Op op = BaseOp(insn.op);
  AbsState s = in_[idx];  // transfer runs on a copy of the in-state

  int pops = 0, pushes = 0;
  if (!OpStackEffect(op, &pops, &pushes)) {
    pops = insn.c;  // signal ops: per-site argument count
  }
  if (s.stack.size() < static_cast<size_t>(pops)) {
    bailed_ = true;  // cannot happen for PR-2-verified streams; stay defensive
    return;
  }

  auto push = [&s](AbstractValue v) { s.stack.push_back(std::move(v)); };
  auto pop = [&s]() {
    AbstractValue v = std::move(s.stack.back());
    s.stack.pop_back();
    return v;
  };
  const uint32_t next = idx + 1;

  switch (op) {
    case Op::kNop:
      break;
    case Op::kPush0:
      push(FromInterval(Single(0)));
      break;
    case Op::kPush1:
      push(FromInterval(Single(1)));
      break;
    case Op::kPushI8:
    case Op::kPushI16:
    case Op::kPushI32:
      push(FromInterval(Single(insn.imm)));
      break;
    case Op::kDup:
      push(s.stack.back());
      break;
    case Op::kPop:
      pop();
      break;
    case Op::kLoadG: {
      AbstractValue v = FromInterval(s.globals[insn.a]);
      v.src = Src::kGlobal;
      v.slot = insn.a;
      push(std::move(v));
      break;
    }
    case Op::kStoreG: {
      const AbstractValue v = pop();
      s.globals[insn.a] = StoreTruncate(static_cast<DslType>(insn.b), v.iv);
      KillGlobal(s, insn.a);
      break;
    }
    case Op::kLoadL: {
      // Slots beyond the declared argc read the zero BindLocals left there.
      AbstractValue v = FromInterval(insn.a < h.argc ? s.locals[insn.a] : Single(0));
      v.src = Src::kLocal;
      v.slot = insn.a;
      push(std::move(v));
      break;
    }
    case Op::kLoadA: {
      const AbstractValue index = pop();
      const int64_t size = image_.array_sizes[insn.a];
      if (Meet(index.iv, {0, size - 1}).Empty()) {
        return;  // guaranteed trap: execution cannot continue past here
      }
      push(FromInterval({0, 255}));
      break;
    }
    case Op::kStoreA: {
      pop();  // value
      const AbstractValue index = pop();
      const int64_t size = image_.array_sizes[insn.a];
      if (Meet(index.iv, {0, size - 1}).Empty()) {
        return;  // guaranteed trap
      }
      break;
    }
    case Op::kDiv:
    case Op::kMod: {
      const AbstractValue b = pop();
      const AbstractValue a = pop();
      if (IsZero(b.iv)) {
        return;  // guaranteed trap
      }
      push(FromInterval(ArithResult(op, a.iv, b.iv)));
      break;
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kShl:
    case Op::kShr:
    case Op::kBitAnd:
    case Op::kBitOr:
    case Op::kBitXor: {
      const AbstractValue b = pop();
      const AbstractValue a = pop();
      push(FromInterval(ArithResult(op, a.iv, b.iv)));
      break;
    }
    case Op::kNeg: {
      const AbstractValue a = pop();
      push(FromInterval(Fit(-a.iv.hi, -a.iv.lo)));
      break;
    }
    case Op::kBitNot: {
      const AbstractValue a = pop();
      push(FromInterval({-1 - a.iv.hi, -1 - a.iv.lo}));
      break;
    }
    case Op::kLogicalNot: {
      const AbstractValue a = pop();
      AbstractValue r;
      if (!a.iv.Contains(0)) {
        r.iv = Single(0);
      } else if (IsZero(a.iv)) {
        r.iv = Single(1);
      } else {
        r.iv = {0, 1};
      }
      if (a.pred.valid) {
        r.pred = a.pred;
        r.pred.rel = NegateRel(a.pred.rel);
      }
      push(std::move(r));
      break;
    }
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      const AbstractValue b = pop();
      const AbstractValue a = pop();
      AbstractValue r;
      r.iv = CompareResult(op, a.iv, b.iv);
      if (a.src != Src::kNone) {
        r.pred = Pred{true, a.src, a.slot, op, b.iv};
      } else if (b.src != Src::kNone) {
        r.pred = Pred{true, b.src, b.slot, MirrorRel(op), a.iv};
      }
      push(std::move(r));
      break;
    }
    case Op::kJmp:
      Flow(idx, static_cast<uint32_t>(insn.imm), std::move(s));
      return;
    case Op::kJz:
    case Op::kJnz: {
      const AbstractValue cond = pop();
      const uint32_t zero_target = op == Op::kJz ? static_cast<uint32_t>(insn.imm) : next;
      const uint32_t nonzero_target = op == Op::kJz ? next : static_cast<uint32_t>(insn.imm);
      if (cond.iv.Contains(0)) {
        AbsState taken = s;
        if (RefineBranch(taken, cond, /*taken_nonzero=*/false)) {
          Flow(idx, zero_target, std::move(taken));
        }
      }
      if (!IsZero(cond.iv)) {
        AbsState taken = std::move(s);
        if (RefineBranch(taken, cond, /*taken_nonzero=*/true)) {
          Flow(idx, nonzero_target, std::move(taken));
        }
      }
      return;
    }
    case Op::kSignalSelf:
    case Op::kSignalLib:
      for (int i = 0; i < pops; ++i) pop();
      // The host may run arbitrary native code here; assume only that any
      // global it writes back (Vm::set_global) respects the declared type.
      KillAllGlobals(s);
      break;
    case Op::kRet:
    case Op::kRetVal:
    case Op::kRetArr:
      return;  // terminal
    default:
      break;  // unchecked forms are unreachable: BaseOp folded them away
  }
  Flow(idx, next, std::move(s));
}

void Analyzer::AnalyzeHandler(const DecodedHandler& h) {
  const size_t errors_before = error_count_;
  in_.assign(code_.size(), AbsState{});
  joins_.assign(code_.size(), 0);
  succs_.assign(code_.size(), {});
  worklist_.clear();
  bailed_ = false;

  AbsState entry;
  entry.reached = true;
  entry.globals.reserve(image_.scalar_types.size());
  for (DslType t : image_.scalar_types) {
    entry.globals.push_back(TypeRange(t));
  }
  entry.locals.fill(kTop);  // event arguments are arbitrary int32s
  Propagate(h.entry, std::move(entry));

  while (!worklist_.empty() && !bailed_) {
    const uint32_t idx = worklist_.front();
    worklist_.pop_front();
    Step(idx, h);
  }

  if (bailed_) {
    StructuralHandler(h);
  } else {
    HarvestHandler(h);
  }
  FinishHandler(h, errors_before);
}

// Extracts findings and per-site proofs from the handler's fixpoint states.
void Analyzer::HarvestHandler(const DecodedHandler& h) {
  for (uint32_t idx = 0; idx < code_.size(); ++idx) {
    if (!in_[idx].reached) continue;
    facts_[idx].reachable = true;
    const DecodedInsn& insn = code_[idx];
    const AbsState& s = in_[idx];
    switch (BaseOp(insn.op)) {
      case Op::kDiv:
      case Op::kMod: {
        const Interval divisor = s.stack.back().iv;
        if (IsZero(divisor)) {
          facts_[idx].div_safe = false;
          Emit(FindingKind::kDivisionByZero, FindingSeverity::kError, h.event, insn.pc,
               "division by zero: the divisor is always 0");
        } else if (divisor.Contains(0)) {
          facts_[idx].div_safe = false;
        }
        break;
      }
      case Op::kLoadA:
      case Op::kStoreA: {
        const Interval index = BaseOp(insn.op) == Op::kLoadA
                                   ? s.stack.back().iv
                                   : s.stack[s.stack.size() - 2].iv;
        const int64_t size = image_.array_sizes[insn.a];
        if (Meet(index, {0, size - 1}).Empty()) {
          facts_[idx].sub_safe = false;
          Emit(FindingKind::kSubscriptOutOfBounds, FindingSeverity::kError, h.event, insn.pc,
               "array subscript always out of bounds: index in [" +
                   std::to_string(index.lo) + ", " + std::to_string(index.hi) +
                   "], array size " + std::to_string(size));
        } else if (!(index.lo >= 0 && index.hi < size)) {
          facts_[idx].sub_safe = false;
        }
        break;
      }
      case Op::kLoadL:
        if (insn.a >= h.argc) {
          Emit(FindingKind::kUninitializedLocal, FindingSeverity::kError, h.event, insn.pc,
               "read of uninitialized local " + std::to_string(insn.a) +
                   ": handler for event " + HexEvent(h.event) + " takes " +
                   std::to_string(h.argc) + " argument(s)");
        }
        break;
      case Op::kLoadG:
        if (!stored_global_[insn.a]) {
          Emit(FindingKind::kUninitializedGlobal, FindingSeverity::kError, h.event, insn.pc,
               "read of global slot " + std::to_string(insn.a) +
                   " which no handler ever stores");
        }
        break;
      default:
        break;
    }
  }
}

// Fallback when the value analysis bailed: plain structural reachability.
// Every trap site the handler can reach keeps its runtime check, and only
// structural findings (uninitialized reads) are derivable.
void Analyzer::StructuralHandler(const DecodedHandler& h) {
  in_.assign(code_.size(), AbsState{});
  succs_.assign(code_.size(), {});
  std::deque<uint32_t> frontier = {h.entry};
  in_[h.entry].reached = true;
  while (!frontier.empty()) {
    const uint32_t idx = frontier.front();
    frontier.pop_front();
    const DecodedInsn& insn = code_[idx];
    auto visit = [&](uint32_t to) {
      AddEdge(idx, to);
      if (!in_[to].reached) {
        in_[to].reached = true;
        frontier.push_back(to);
      }
    };
    switch (BaseOp(insn.op)) {
      case Op::kRet:
      case Op::kRetVal:
      case Op::kRetArr:
        break;
      case Op::kJmp:
        visit(static_cast<uint32_t>(insn.imm));
        break;
      case Op::kJz:
      case Op::kJnz:
        visit(static_cast<uint32_t>(insn.imm));
        visit(idx + 1);
        break;
      default:
        visit(idx + 1);
        break;
    }
  }
  for (uint32_t idx = 0; idx < code_.size(); ++idx) {
    if (!in_[idx].reached) continue;
    facts_[idx].reachable = true;
    const DecodedInsn& insn = code_[idx];
    switch (BaseOp(insn.op)) {
      case Op::kDiv:
      case Op::kMod:
        facts_[idx].div_safe = false;
        break;
      case Op::kLoadA:
      case Op::kStoreA:
        facts_[idx].sub_safe = false;
        break;
      case Op::kLoadL:
        if (insn.a >= h.argc) {
          Emit(FindingKind::kUninitializedLocal, FindingSeverity::kError, h.event, insn.pc,
               "read of uninitialized local " + std::to_string(insn.a) +
                   ": handler for event " + HexEvent(h.event) + " takes " +
                   std::to_string(h.argc) + " argument(s)");
        }
        break;
      case Op::kLoadG:
        if (!stored_global_[insn.a]) {
          Emit(FindingKind::kUninitializedGlobal, FindingSeverity::kError, h.event, insn.pc,
               "read of global slot " + std::to_string(insn.a) +
                   " which no handler ever stores");
        }
        break;
      default:
        break;
    }
  }
  Emit(FindingKind::kAnalysisLimit, FindingSeverity::kNote, h.event, code_[h.entry].pc,
       "operand-stack depths disagree at a join in handler for event " + HexEvent(h.event) +
           "; value analysis skipped (runtime checks kept)");
}

// Return-reachability and worst-case execution bound over the handler's
// feasible subgraph (in_ / succs_ as left by the analysis or the fallback).
void Analyzer::FinishHandler(const DecodedHandler& h, size_t errors_before) {
  const size_t n = code_.size();
  std::vector<uint32_t> visited;
  for (uint32_t i = 0; i < n; ++i) {
    if (in_[i].reached) visited.push_back(i);
  }

  // Reverse reachability from every visited return.
  std::vector<std::vector<uint32_t>> preds(n);
  for (uint32_t u : visited) {
    for (uint32_t v : succs_[u]) preds[v].push_back(u);
  }
  std::vector<char> reaches_ret(n, 0);
  std::deque<uint32_t> frontier;
  for (uint32_t i : visited) {
    const Op op = BaseOp(code_[i].op);
    if (op == Op::kRet || op == Op::kRetVal || op == Op::kRetArr) {
      reaches_ret[i] = 1;
      frontier.push_back(i);
    }
  }
  while (!frontier.empty()) {
    const uint32_t i = frontier.front();
    frontier.pop_front();
    for (uint32_t p : preds[i]) {
      if (!reaches_ret[p]) {
        reaches_ret[p] = 1;
        frontier.push_back(p);
      }
    }
  }
  // No feasible path out of the handler: if no other error already explains
  // it (e.g. every path dead-ends in a provable trap), the watchdog trap is
  // guaranteed and the image is rejected.
  if (!reaches_ret[h.entry] && error_count_ == errors_before) {
    Emit(FindingKind::kWatchdogExceeded, FindingSeverity::kError, h.event, code_[h.entry].pc,
         "handler for event " + HexEvent(h.event) +
             " cannot reach a return: the watchdog trap is guaranteed after " +
             std::to_string(kVmWatchdogInstructions) + " instructions");
  }

  // WCET: longest path over the feasible subgraph when it is acyclic.
  HandlerWcet wcet;
  wcet.event = h.event;
  std::vector<uint32_t> indegree(n, 0);
  for (uint32_t u : visited) {
    for (uint32_t v : succs_[u]) ++indegree[v];
  }
  std::deque<uint32_t> ready;
  for (uint32_t i : visited) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<uint32_t> topo;
  topo.reserve(visited.size());
  while (!ready.empty()) {
    const uint32_t u = ready.front();
    ready.pop_front();
    topo.push_back(u);
    for (uint32_t v : succs_[u]) {
      if (--indegree[v] == 0) ready.push_back(v);
    }
  }
  if (topo.size() == visited.size()) {
    wcet.bounded = true;
    std::vector<uint64_t> max_instr(n, 0), max_cycles(n, 0);
    max_instr[h.entry] = 1;
    max_cycles[h.entry] = code_[h.entry].cycles;
    for (uint32_t u : topo) {
      if (max_instr[u] == 0) continue;  // not reachable from the entry
      for (uint32_t v : succs_[u]) {
        max_instr[v] = std::max(max_instr[v], max_instr[u] + 1);
        max_cycles[v] = std::max(max_cycles[v], max_cycles[u] + code_[v].cycles);
      }
      wcet.instructions = std::max(wcet.instructions, max_instr[u]);
      wcet.cycles = std::max(wcet.cycles, max_cycles[u]);
    }
    wcet.under_watchdog = wcet.instructions <= kVmWatchdogInstructions;
  }
  out_.wcet.push_back(wcet);
}

ImageAnalysis Analyzer::Run() {
  facts_.assign(code_.size(), SiteFacts{});

  // Static pre-scan: which globals are ever stored, which custom events are
  // ever signalled.  Presence anywhere in the image counts (conservative).
  for (const DecodedInsn& insn : code_) {
    if (BaseOp(insn.op) == Op::kStoreG) stored_global_[insn.a] = true;
    if (BaseOp(insn.op) == Op::kSignalSelf) signalled_event_[insn.a] = true;
  }

  for (const DecodedHandler& h : handlers_) {
    AnalyzeHandler(h);
  }

  // Instructions no handler reaches, reported one finding per run.
  for (uint32_t i = 0; i < code_.size(); ++i) {
    if (facts_[i].reachable) continue;
    uint32_t end = i;
    while (end + 1 < code_.size() && !facts_[end + 1].reachable) ++end;
    Emit(FindingKind::kUnreachableCode, FindingSeverity::kWarning, 0, code_[i].pc,
         "unreachable code: " + std::to_string(end - i + 1) + " instruction(s) at pc " +
             std::to_string(code_[i].pc) + ".." + std::to_string(code_[end].pc));
    i = end;
  }

  // Custom-event handlers nothing ever signals (well-known and error events
  // are externally triggerable and never dead).
  for (const DecodedHandler& h : handlers_) {
    if (h.event >= kEventCustomBase && !IsErrorEvent(h.event) && !signalled_event_[h.event]) {
      Emit(FindingKind::kDeadHandler, FindingSeverity::kWarning, h.event, code_[h.entry].pc,
           "handler for custom event " + HexEvent(h.event) + " is never signalled");
    }
  }

  // Fold the per-site facts into proof bits and the census.
  out_.proofs.assign(code_.size(), 0);
  for (uint32_t i = 0; i < code_.size(); ++i) {
    if (!facts_[i].reachable) continue;
    out_.proofs[i] |= kProofReachable;
    const Op op = BaseOp(code_[i].op);
    if (op == Op::kDiv || op == Op::kMod) {
      if (facts_[i].div_safe) {
        out_.proofs[i] |= kProofDivisorNonZero;
        ++out_.proven_div_sites;
      } else {
        ++out_.guarded_div_sites;
      }
    }
    if (op == Op::kLoadA || op == Op::kStoreA) {
      if (facts_[i].sub_safe) {
        out_.proofs[i] |= kProofSubscriptInBounds;
        ++out_.proven_subscript_sites;
      } else {
        ++out_.guarded_subscript_sites;
      }
    }
  }
  return std::move(out_);
}

}  // namespace

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kDivisionByZero: return "division-by-zero";
    case FindingKind::kSubscriptOutOfBounds: return "subscript-out-of-bounds";
    case FindingKind::kUninitializedLocal: return "uninitialized-local";
    case FindingKind::kUninitializedGlobal: return "uninitialized-global";
    case FindingKind::kWatchdogExceeded: return "watchdog-exceeded";
    case FindingKind::kUnreachableCode: return "unreachable-code";
    case FindingKind::kDeadHandler: return "dead-handler";
    case FindingKind::kAnalysisLimit: return "analysis-limit";
  }
  return "unknown";
}

const char* FindingSeverityName(FindingSeverity severity) {
  switch (severity) {
    case FindingSeverity::kError: return "error";
    case FindingSeverity::kWarning: return "warning";
    case FindingSeverity::kNote: return "note";
  }
  return "unknown";
}

const Finding* ImageAnalysis::FirstError() const {
  for (const Finding& f : findings) {
    if (f.severity == FindingSeverity::kError) return &f;
  }
  return nullptr;
}

ImageAnalysis AnalyzeImage(const DriverImage& image, std::span<const DecodedInsn> code,
                           std::span<const DecodedHandler> handlers) {
  if (code.empty()) {
    return ImageAnalysis{};
  }
  return Analyzer(image, code, handlers).Run();
}

}  // namespace micropnp
