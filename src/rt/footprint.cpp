#include "src/rt/footprint.h"

#include "src/dsl/bytecode.h"
#include "src/hw/eseries.h"
#include "src/rt/event.h"
#include "src/rt/event_router.h"
#include "src/rt/vm.h"

namespace micropnp {
namespace {

// Calibrated per-unit AVR code-size constants (bytes of flash).  See the
// header comment: dimensions come from this implementation; the per-unit
// sizes are the calibration knobs, chosen once to reconcile with the
// measured Contiki/AVR build of the paper.
constexpr size_t kFlashPerOpcodeHandler = 160;   // 32-bit ops on an 8-bit core
constexpr size_t kFlashVmCore = 628;             // fetch/decode loop + tables
constexpr size_t kFlashScanRoutine = 1024;       // channel FSM + pulse capture
constexpr size_t kFlashPulseDecode = 835;        // log-ratio binning (integer)
constexpr size_t kFlashConnectIsr = 192;         // interrupt + debounce
constexpr size_t kFlashAdcLib = 2034;            // incl. calibration & scaling
constexpr size_t kFlashUartLib = 466;
constexpr size_t kFlashI2cLib = 436;
constexpr size_t kFlashNetPerMessageCodec = 130; // serialize+parse per type
constexpr size_t kFlashNetCore = 984;            // groups, seq tracking, dispatch

// Counts taken from the real implementation.
constexpr size_t kOpcodeCount = 40;              // defined ops in src/dsl/bytecode.h
constexpr size_t kChannels = 3;                  // control board channels
constexpr size_t kMessageTypes = 8;              // advertisement..write ack codecs

size_t LadderTableBytes() {
  // The decode ladder stores one u16 mantissa per E96 base value.
  return static_cast<size_t>(ESeriesSize(ESeries::kE96)) * 2;
}

}  // namespace

std::vector<FootprintEntry> EmbeddedFootprint() {
  std::vector<FootprintEntry> rows;

  // --- Peripheral Controller (paper: 2243 flash / 465 RAM) ------------------
  {
    FootprintEntry e;
    e.component = "Peripheral Controller";
    e.flash_bytes = kFlashScanRoutine + kFlashPulseDecode + kFlashConnectIsr + LadderTableBytes();
    // RAM: pulse capture ring (64 edges x 4 B), per-channel id + state,
    // multivibrator calibration references, scan FSM + stack reserve.
    const size_t capture_ring = 64 * 4;
    const size_t per_channel = kChannels * (4 * 4 + 4 + 2);  // pulses + id + flags
    const size_t calibration = 4 * 8;                        // 4 vibs x (ref + scale)
    const size_t fsm_and_stack = 47 + 64;
    e.ram_bytes = capture_ring + per_channel + calibration + fsm_and_stack;
    rows.push_back(e);
  }

  // --- μPnP Virtual Machine (paper: 7028 / 450) ------------------------------
  {
    FootprintEntry e;
    e.component = "uPnP Virtual Machine";
    e.flash_bytes = kOpcodeCount * kFlashPerOpcodeHandler + kFlashVmCore;
    // RAM: operand stack, global slots, handler locals, interpreter state.
    const size_t operand_stack = kVmStackDepth * 4;  // 128
    const size_t globals = 64 * 4;                   // 256 (kMaxScalars slots)
    const size_t locals = 4 * 4;
    const size_t interp_state = 50;
    e.ram_bytes = operand_stack + globals + locals + interp_state;
    rows.push_back(e);
  }

  // --- Native libraries (paper: 2034/268, 466/15, 436/18) -------------------
  {
    FootprintEntry e;
    e.component = "ADC Native Library";
    e.flash_bytes = kFlashAdcLib;
    // RAM: oversampling accumulator + result ring + config.
    e.ram_bytes = 16 * 4 * 4 /* 16-sample ring of 4 channels */ + 12;
    rows.push_back(e);
  }
  {
    FootprintEntry e;
    e.component = "UART Native Library";
    e.flash_bytes = kFlashUartLib;
    e.ram_bytes = 12 + 3;  // config + state flags
    rows.push_back(e);
  }
  {
    FootprintEntry e;
    e.component = "I2C Native Library";
    e.flash_bytes = kFlashI2cLib;
    e.ram_bytes = 14 + 4;  // config + transaction state
    rows.push_back(e);
  }

  // --- μPnP Network Stack (paper: 2024 / 302) --------------------------------
  {
    FootprintEntry e;
    e.component = "uPnP Network Stack";
    e.flash_bytes = kFlashNetCore + kMessageTypes * kFlashNetPerMessageCodec;
    // RAM: message event queues (16 entries of id + argc + one arg + slot +
    // timestamp = 12 B), pending-op sequence table, group memberships.
    const size_t queues = EventRouter::kQueueDepth * 12;
    const size_t seq_table = 8 * 5;  // 8 pending ops x (seq + state)
    const size_t groups = 4 * 16;    // up to 4 joined groups x ipv6 address
    e.ram_bytes = queues + seq_table + groups + 6;
    rows.push_back(e);
  }
  return rows;
}

FootprintEntry EmbeddedFootprintTotal() {
  FootprintEntry total;
  total.component = "Total";
  for (const FootprintEntry& e : EmbeddedFootprint()) {
    total.flash_bytes += e.flash_bytes;
    total.ram_bytes += e.ram_bytes;
  }
  return total;
}

}  // namespace micropnp
