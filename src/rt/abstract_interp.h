// Flow-sensitive abstract interpretation over decoded driver bytecode.
//
// PR-2's load-time verifier proves *structural* properties (valid opcodes,
// branch targets, static slot ranges, worst-case operand-stack depth).  This
// analyzer proves *value* properties on top of the same decoded stream: a
// per-program-point interval domain over every operand-stack cell, global
// slot and handler local, with delayed widening over loops and branch
// refinement through comparison predicates.  It classifies every runtime
// trap site three ways:
//
//   proven safe    -> Decode rewrites the site to an unchecked form and the
//                     VM hot loop skips the trap test entirely;
//   proven unsafe  -> the image is rejected at Decode (and therefore at
//                     DriverManager::InstallImage / OTA deploy) with a
//                     structured Status, like the malformed-image path;
//   unknown        -> the runtime trap stays.
//
// Per handler it also derives a worst-case execution bound (instructions and
// modeled cycles over the feasible acyclic subgraph); handlers proven under
// the watchdog budget dispatch without the per-instruction watchdog counter.
// Whole-image passes flag unreachable instructions, handlers for custom
// events that are never signalled, and reads of never-stored globals.
//
// Soundness assumptions (documented contract of the Vm API): host callbacks
// (VmHost::OnSelfSignal / OnLibSignal) may mutate globals only through
// Vm::set_global, which truncates to the declared type — so across a signal
// instruction every global is widened back to its declared-type range.
// Handler locals are immutable during a dispatch (there is no store-local
// opcode) and missing event arguments read as zero.

#ifndef SRC_RT_ABSTRACT_INTERP_H_
#define SRC_RT_ABSTRACT_INTERP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/rt/decoded_image.h"

namespace micropnp {

enum class FindingSeverity : uint8_t {
  kError,    // provable trap or policy violation: the image is rejected
  kWarning,  // suspicious but executable: reported by updl_lint only
  kNote,     // analysis diagnostics (e.g. a handler the analyzer gave up on)
};

enum class FindingKind : uint8_t {
  kDivisionByZero,        // divisor interval is exactly [0, 0]
  kSubscriptOutOfBounds,  // index interval disjoint from [0, array size)
  kUninitializedLocal,    // load.l beyond the handler's declared argc
  kUninitializedGlobal,   // load.g of a slot no handler ever stores
  kWatchdogExceeded,      // no feasible path reaches a return: guaranteed trap
  kUnreachableCode,       // instructions no handler can reach
  kDeadHandler,           // custom-event handler that is never signalled
  kAnalysisLimit,         // value analysis bailed out (structural facts only)
};

const char* FindingKindName(FindingKind kind);
const char* FindingSeverityName(FindingSeverity severity);

struct Finding {
  FindingKind kind = FindingKind::kDivisionByZero;
  FindingSeverity severity = FindingSeverity::kError;
  // Handler the finding was discovered in; meaningful for handler-scoped
  // findings (everything except kUnreachableCode / kUninitializedGlobal,
  // which are image-level and attributed to the first handler seen).
  EventId event = 0;
  uint16_t pc = 0;  // original bytecode offset
  std::string message;
};

// Worst-case execution facts for one handler.
struct HandlerWcet {
  EventId event = 0;
  bool bounded = false;         // feasible subgraph is acyclic
  uint64_t instructions = 0;    // longest feasible path (when bounded)
  uint64_t cycles = 0;          // modeled AVR cycles along that path
  bool under_watchdog = false;  // bounded && instructions <= watchdog budget
};

// Per-instruction proof bits, parallel to DecodedImage::code().
inline constexpr uint8_t kProofReachable = 0x01;          // some handler reaches it
inline constexpr uint8_t kProofDivisorNonZero = 0x02;     // kDiv/kMod cannot trap
inline constexpr uint8_t kProofSubscriptInBounds = 0x04;  // kLoadA/kStoreA cannot trap

struct ImageAnalysis {
  std::vector<Finding> findings;  // handler order, then pc
  std::vector<HandlerWcet> wcet;  // one entry per decoded handler
  std::vector<uint8_t> proofs;    // one entry per decoded instruction

  // Trap-site census (reachable sites only).
  size_t proven_div_sites = 0;        // divisor proven nonzero
  size_t guarded_div_sites = 0;       // runtime check stays
  size_t proven_subscript_sites = 0;  // subscript proven in bounds
  size_t guarded_subscript_sites = 0;

  const Finding* FirstError() const;
  bool has_errors() const { return FirstError() != nullptr; }
};

// Runs the abstract interpretation over a decoded instruction stream.  The
// stream must be pre-specialization (wire opcodes only) — Decode calls this
// before rewriting proven-safe sites to their unchecked forms, and updl_lint
// reads the result back via DecodedImage::analysis().
ImageAnalysis AnalyzeImage(const DriverImage& image, std::span<const DecodedInsn> code,
                           std::span<const DecodedHandler> handlers);

}  // namespace micropnp

#endif  // SRC_RT_ABSTRACT_INTERP_H_
